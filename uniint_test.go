package uniint

import (
	"testing"
	"time"

	"uniint/internal/appliance"
	"uniint/internal/core"
	"uniint/internal/device"
	"uniint/internal/havi/fcm"
	"uniint/internal/situation"
	"uniint/internal/uniserver"
)

func newLampSession(t *testing.T) (*Session, *appliance.Lamp) {
	t.Helper()
	lamp := appliance.NewLamp("Desk Lamp")
	s, err := NewSession(Options{Appliances: []appliance.Appliance{lamp}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, lamp
}

func waitPower(t *testing.T, lamp *appliance.Lamp, want int, what string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, _ := lamp.Bulb().Get(fcm.CtlPower); v == want {
			return
		}
		if time.Now().After(deadline) {
			v, _ := lamp.Bulb().Get(fcm.CtlPower)
			t.Fatalf("%s: lamp power = %d, want %d", what, v, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitFrame(t *testing.T, wait func(int64) core.Frame, n int64, what string) core.Frame {
	t.Helper()
	done := make(chan core.Frame, 1)
	go func() { done <- wait(n) }()
	select {
	case f := <-done:
		return f
	case <-time.After(2 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return core.Frame{}
	}
}

// TestC1IndependentDeviceChoice reproduces the paper's first
// characteristic: "input interaction devices and output interaction
// devices are chosen independently" — here a cellular phone keypad as
// input with the television screen as output.
func TestC1IndependentDeviceChoice(t *testing.T) {
	s, lamp := newLampSession(t)

	phone := device.NewPhone("phone-1")
	tv := device.NewTVDisplay("tv-1")
	defer phone.Close()
	if err := s.Proxy.AttachInput(phone); err != nil {
		t.Fatal(err)
	}
	if err := s.Proxy.AttachOutput(tv); err != nil {
		t.Fatal(err)
	}
	if err := s.Proxy.SelectInput("phone-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Proxy.SelectOutput("tv-1"); err != nil {
		t.Fatal(err)
	}
	if s.Proxy.ActiveInput() != "phone-1" || s.Proxy.ActiveOutput() != "tv-1" {
		t.Fatal("independent selection failed")
	}

	// The TV shows the control panel...
	f := waitFrame(t, tv.WaitFrames, 1, "TV frame")
	if f.W != device.TVWidth || f.RGB == nil {
		t.Fatalf("tv frame = %+v", f)
	}

	// ...and the phone keypad drives it: focus starts on the lamp's power
	// toggle; OK flips it.
	phone.PressKey("ok")
	waitPower(t, lamp, 1, "phone-controlled power on")

	// The resulting GUI change flows back out to the TV.
	waitFrame(t, tv.WaitFrames, int64(f.Seq)+1, "TV repaint after toggle")
}

// TestC2DynamicSituationSwitch reproduces the kitchen scenario: the user
// controls an appliance with the phone; both hands become busy; the
// situation engine switches input to voice and the session continues
// uninterrupted.
func TestC2DynamicSituationSwitch(t *testing.T) {
	s, lamp := newLampSession(t)

	phone := device.NewPhone("phone-1")
	voice := device.NewVoiceInput("voice-1")
	defer phone.Close()
	defer voice.Close()
	if err := s.Proxy.AttachInput(phone); err != nil {
		t.Fatal(err)
	}
	if err := s.Proxy.AttachInput(voice); err != nil {
		t.Fatal(err)
	}
	if err := s.Proxy.AttachOutput(device.NewTVDisplay("tv-1")); err != nil {
		t.Fatal(err)
	}

	eng := situation.NewEngine(s.Proxy, situation.DefaultRules())

	// Cooking, hands free: phone selected.
	d := eng.SetSituation(situation.Situation{Location: "kitchen", Activity: "cooking"})
	if d.InputClass != "phone" {
		t.Fatalf("initial decision = %+v", d)
	}
	phone.PressKey("ok")
	waitPower(t, lamp, 1, "phone phase")

	// Hands become busy: the engine must switch to voice.
	d = eng.SetSituation(situation.Situation{Location: "kitchen", Activity: "cooking", HandsBusy: true})
	if d.InputClass != "voice" || d.InputRule != "hands-busy-voice" {
		t.Fatalf("busy decision = %+v", d)
	}
	if s.Proxy.ActiveInput() != "voice-1" {
		t.Fatalf("active input = %q", s.Proxy.ActiveInput())
	}

	// The same session keeps working through the new device.
	voice.Say("toggle")
	waitPower(t, lamp, 0, "voice phase")

	// The phone is no longer heard.
	phone.PressKey("ok")
	time.Sleep(20 * time.Millisecond)
	waitPower(t, lamp, 0, "phone silenced")

	if s.Proxy.Stats().InputSwitches < 2 {
		t.Errorf("switches = %d", s.Proxy.Stats().InputSwitches)
	}
}

// TestC3UnmodifiedApplication reproduces the third characteristic: the
// same application, written purely against the GUI toolkit, is driven by
// four different interaction devices without modification.
func TestC3UnmodifiedApplication(t *testing.T) {
	s, lamp := newLampSession(t)

	pda := device.NewPDA("pda-1")
	phone := device.NewPhone("phone-1")
	voice := device.NewVoiceInput("voice-1")
	remote := device.NewRemoteControl("remote-1")
	defer pda.Close()
	defer phone.Close()
	defer voice.Close()
	defer remote.Close()

	for _, in := range []core.InputDevice{pda, phone, voice, remote} {
		if err := s.Proxy.AttachInput(in); err != nil {
			t.Fatal(err)
		}
	}

	// Each device toggles the lamp once; power alternates 1,0,1,0.
	// Keyboard-driven devices activate the focused toggle.
	steps := []struct {
		id   string
		act  func()
		want int
	}{
		{"phone-1", func() { phone.PressKey("ok") }, 1},
		{"voice-1", func() { voice.Say("toggle") }, 0},
		{"remote-1", func() { remote.Press("ok") }, 1},
	}
	for _, st := range steps {
		if err := s.Proxy.SelectInput(st.id); err != nil {
			t.Fatal(err)
		}
		st.act()
		waitPower(t, lamp, st.want, st.id)
	}

	// The PDA uses the pointer path: tap the toggle's location. Find it
	// via the display (the app itself stays untouched).
	if err := s.Proxy.SelectInput("pda-1"); err != nil {
		t.Fatal(err)
	}
	s.Display.Render()
	foc := s.Display.Focus()
	if foc == nil {
		t.Fatal("no focused widget")
	}
	b := foc.Bounds()
	// Desktop 640×480 → PDA 320×240 is a 2:1 mapping.
	pda.Tap((b.X+4)/2, (b.Y+4)/2)
	waitPower(t, lamp, 0, "pda-1")
}

// TestSessionWithStandardHome smoke-tests the full five-appliance
// household through the facade.
func TestSessionWithStandardHome(t *testing.T) {
	home := []appliance.Appliance{
		appliance.NewTV("Living TV"),
		appliance.NewVCR("Living VCR"),
		appliance.NewAmplifier("Hi-Fi"),
		appliance.NewAircon("Bedroom AC"),
		appliance.NewLamp("Desk Lamp"),
	}
	s, err := NewSession(Options{Appliances: home})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.WaitIdle()

	if got := s.App.PanelInventory(); len(got) != 5 {
		t.Fatalf("panels = %v", got)
	}

	tv := device.NewTVDisplay("tv-out")
	if err := s.Proxy.AttachOutput(tv); err != nil {
		t.Fatal(err)
	}
	if err := s.Proxy.SelectOutput("tv-out"); err != nil {
		t.Fatal(err)
	}
	f := waitFrame(t, tv.WaitFrames, 1, "household frame")
	// The frame must contain actual GUI content (not be blank).
	distinct := map[uint32]bool{}
	for _, c := range f.RGB.Pix() {
		distinct[uint32(c)] = true
	}
	if len(distinct) < 4 {
		t.Errorf("frame looks blank: %d distinct colors", len(distinct))
	}
}

func TestSessionCloseIdempotent(t *testing.T) {
	s, _ := newLampSession(t)
	s.Close()
	s.Close()
}

// TestOptionsParkPolicyMapping pins the Options→uniserver plumbing for
// the detach-lot knobs: zero keeps the server defaults, explicit values
// pass through, and negative values disable parking entirely.
func TestOptionsParkPolicyMapping(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		wantTTL time.Duration
		wantCap int
	}{
		{"defaults", Options{}, uniserver.DefaultParkTTL, uniserver.DefaultParkCapacity},
		{"explicit", Options{ParkTTL: 5 * time.Second, ParkCapacity: 7}, 5 * time.Second, 7},
		{"negative-ttl-disables", Options{ParkTTL: -1}, 0, uniserver.DefaultParkCapacity},
		// A capacity below one disables the whole lot (the server zeroes
		// the TTL too: nothing can ever be parked).
		{"negative-capacity-disables", Options{ParkCapacity: -1}, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.opts.Width, tc.opts.Height, tc.opts.Name = 64, 48, "park-policy"
			s, err := NewSessionForHub(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			ttl, capacity := s.Server.ParkPolicy()
			if ttl != tc.wantTTL || capacity != tc.wantCap {
				t.Fatalf("ParkPolicy() = (%v, %d), want (%v, %d)",
					ttl, capacity, tc.wantTTL, tc.wantCap)
			}
		})
	}
}
