package uniint

// Federation benchmark (gated in CI alongside the macro set):
//
//	BenchmarkE2bMigrate  drain → live migration → rebalance back →
//	                     token resume through the front router
//
// One op is a full round trip of the deploy story: the node owning a
// parked session drains (the session ships to the survivor through the
// UNIMIG/1 record), the node rejoins (the rebalance ships it back), and
// the client redials through the router, resuming with an incremental
// resync. migbytes/op is the serialized session state that crossed
// between nodes.

import (
	"net"
	"testing"
	"time"

	"uniint/internal/fed"
	"uniint/internal/gfx"
	"uniint/internal/hub"
	"uniint/internal/metrics"
	"uniint/internal/rfb"
	"uniint/internal/toolkit"
	"uniint/internal/uniserver"
)

func BenchmarkE2bMigrate(b *testing.B) {
	const homeID = "migrate-home"
	display := toolkit.NewDisplay(320, 240)
	srv := uniserver.New(display, "migrate-bench")
	defer srv.Close()
	lbl := toolkit.NewLabel("migrate bench")
	root := toolkit.NewPanel(toolkit.VBox{Gap: 4, Padding: 4})
	root.Add(lbl)
	display.SetRoot(root)
	display.Render()
	full := gfx.R(0, 0, 320, 240)

	// Two member nodes sharing one memoized home stack: hub nodes are
	// stateless session fronts, migration moves only session state.
	reg := metrics.NewRegistry()
	cluster := fed.NewCluster(fed.Options{Metrics: reg})
	hubs := map[string]*hub.Hub{}
	for _, name := range []string{"alpha", "beta"} {
		h, err := hub.New(hub.Options{
			Factory: func(string) (hub.Host, error) { return srv, nil },
			Metrics: reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		hubs[name] = h
		if err := cluster.AddNode(name, h); err != nil {
			b.Fatal(err)
		}
	}
	owner, ok := cluster.Owner(homeID)
	if !ok {
		b.Fatal("no ring owner")
	}

	dial := func() net.Conn {
		sc, cc := net.Pipe()
		// goroutine-ok: bench transport; ServeConn exits with the conn.
		go func() { _ = cluster.ServeConn(sc) }()
		if err := hub.WritePreamble(cc, homeID); err != nil {
			b.Fatal(err)
		}
		return cc
	}
	waitParked := func() {
		for srv.Parked() != 1 {
			time.Sleep(20 * time.Microsecond)
		}
	}
	texts := [2]string{"state A", "state B"}

	// Prime: join through the router, full paint, leave an incremental
	// request parked, park.
	client, err := rfb.Dial(dial())
	if err != nil {
		b.Fatal(err)
	}
	token := client.Token()
	got := make(chan struct{}, 1)
	go client.Run(resumeBenchHandler{client, full, got})
	if err := client.RequestUpdate(false, full); err != nil {
		b.Fatal(err)
	}
	<-got
	client.Close()
	waitParked()

	bytes0 := reg.Counter("fed_migration_bytes_total").Value()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Detach-window damage accumulates in the parked session.
		display.Update(func() { lbl.SetText(texts[i%2]) })

		// Drain-for-deploy and rejoin: the parked session crosses the
		// serialization boundary twice.
		if err := cluster.Drain(owner); err != nil {
			b.Fatal(err)
		}
		if err := cluster.AddNode(owner, hubs[owner]); err != nil {
			b.Fatal(err)
		}

		client, err := rfb.DialResume(dial(), token)
		if err != nil {
			b.Fatal(err)
		}
		if !client.Resumed() {
			b.Fatal("resume missed after migration")
		}
		got := make(chan struct{}, 1)
		go client.Run(resumeBenchHandler{client, full, got})
		_ = client.RequestUpdate(true, full)
		<-got
		client.Close()
		waitParked()
	}
	b.StopTimer()
	shipped := reg.Counter("fed_migration_bytes_total").Value() - bytes0
	b.ReportMetric(float64(shipped)/float64(b.N), "migbytes/op")
}
