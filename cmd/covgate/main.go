// Command covgate turns the CI coverage artifact into a gate: it parses
// a Go cover profile (the coverage.out written by `go test
// -coverprofile`), computes total statement coverage, and exits non-zero
// when it falls below the committed threshold. The threshold lives in
// the Makefile (COVER_MIN) so raising it is a reviewed change, like the
// benchmark baseline.
//
//	go run ./cmd/covgate -profile coverage.out -min 70
//
// Profiles produced with -covermode set, count or atomic are all
// accepted; blocks repeated across merged profiles accumulate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// block is one profile entry's identity (file plus position span).
type block struct {
	pos string
}

type blockStat struct {
	stmts int
	count int64
}

func main() {
	profile := flag.String("profile", "coverage.out", "cover profile to parse")
	minPct := flag.Float64("min", 70, "minimum total statement coverage (percent)")
	flag.Parse()

	total, covered, err := parseProfile(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covgate: %v\n", err)
		os.Exit(2)
	}
	if total == 0 {
		fmt.Fprintln(os.Stderr, "covgate: profile contains no statements")
		os.Exit(2)
	}
	pct := 100 * float64(covered) / float64(total)
	fmt.Printf("covgate: %.1f%% of statements covered (%d/%d), threshold %.1f%%\n",
		pct, covered, total, *minPct)
	if pct < *minPct {
		fmt.Printf("covgate: FAIL — coverage %.1f%% below threshold %.1f%%\n", pct, *minPct)
		os.Exit(1)
	}
	fmt.Println("covgate: OK")
}

// parseProfile reads a cover profile and returns (total statements,
// covered statements), merging duplicate blocks across appended
// profiles.
func parseProfile(path string) (total, covered int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()

	stats := make(map[block]blockStat)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "mode:") {
			continue
		}
		// file.go:sl.sc,el.ec numstmts count
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return 0, 0, fmt.Errorf("%s:%d: malformed profile line %q", path, line, text)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0, 0, fmt.Errorf("%s:%d: bad statement count: %v", path, line, err)
		}
		count, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("%s:%d: bad hit count: %v", path, line, err)
		}
		b := block{pos: fields[0]}
		st := stats[b]
		st.stmts = stmts
		st.count += count
		stats[b] = st
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	for _, st := range stats {
		total += st.stmts
		if st.count > 0 {
			covered += st.stmts
		}
	}
	return total, covered, nil
}
