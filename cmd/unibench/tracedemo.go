package main

import (
	"fmt"
	"net"
	"os"
	"time"

	"uniint/internal/appliance"
	"uniint/internal/core"
	"uniint/internal/device"
	"uniint/internal/homeapp"
	"uniint/internal/toolkit"
	"uniint/internal/trace"
	"uniint/internal/uniserver"
)

// traceDemo runs a small fully-traced interaction workload (every
// interaction sampled) over the in-process device → proxy → server stack
// and writes the recorded spans as Chrome trace_event JSON, plus a
// slowest-interactions table on stdout. It exists so `make trace-demo`
// produces a file anyone can drop into chrome://tracing without standing
// up a hub.
func traceDemo(path string) error {
	trace.Reset()
	trace.SetSampling(1)
	defer trace.SetSampling(0)

	lamp := appliance.NewLamp("Trace Lamp")
	home := appliance.NewHome()
	if _, err := home.Add(lamp); err != nil {
		return err
	}
	home.Network().WaitIdle()
	display := toolkit.NewDisplay(320, 240)
	app := homeapp.New(home.Network(), display)
	defer app.Close()
	defer home.Close()
	srv := uniserver.New(display, "trace demo")
	defer srv.Close()

	sc, cc := net.Pipe()
	go srv.HandleConn(sc)
	proxy, err := core.Dial(cc)
	if err != nil {
		return err
	}
	go proxy.Run()
	defer proxy.Close()
	phone := device.NewPhone("phone-1")
	defer phone.Close()
	if err := proxy.AttachInput(phone); err != nil {
		return err
	}
	// The phone doubles as the output device: selecting an output makes
	// the proxy demand framebuffer updates, which is what exercises the
	// render → encode → flush half of the traced pipeline.
	if err := proxy.AttachOutput(phone); err != nil {
		return err
	}
	if err := proxy.SelectInput("phone-1"); err != nil {
		return err
	}
	if err := proxy.SelectOutput("phone-1"); err != nil {
		return err
	}

	const presses = 8
	for i := 0; i < presses; i++ {
		phone.PressKey("ok")
		// Let each interaction's update ship before the next press so the
		// demo trace shows distinct interactions, not one coalesced burst.
		time.Sleep(20 * time.Millisecond)
	}
	// Wait for the tail: each traced interaction closes with a flush span
	// once its update hits the wire.
	deadline := time.Now().Add(5 * time.Second)
	for countStage(trace.StageFlush) < presses && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	spans := trace.Snapshot()
	fmt.Printf("trace demo: %d spans over %d interactions -> %s\n",
		len(spans), countTraces(spans), path)
	fmt.Println("slowest interactions (stage breakdown):")
	for _, t := range trace.Slowest(3) {
		fmt.Printf("  trace %#x  total %v\n", t.Trace,
			time.Duration(t.Total()).Round(time.Microsecond))
		for _, s := range t.Spans {
			fmt.Printf("    %-12s %8v\n", s.Stage.String(),
				time.Duration(s.End-s.Start).Round(time.Microsecond))
		}
	}
	return nil
}

func countStage(stage trace.Stage) int {
	n := 0
	for _, s := range trace.Snapshot() {
		if s.Stage == stage {
			n++
		}
	}
	return n
}

func countTraces(spans []trace.Span) int {
	seen := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		seen[s.Trace] = true
	}
	return len(seen)
}
