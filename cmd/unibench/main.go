// Command unibench runs the experiment suite E1–E12 (DESIGN.md §4) in
// process and prints one table per experiment. EXPERIMENTS.md records a
// reference run. Use -quick for a fast smoke pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"uniint"
	"uniint/internal/appliance"
	"uniint/internal/benchfmt"
	"uniint/internal/core"
	"uniint/internal/device"
	"uniint/internal/gfx"
	"uniint/internal/havi"
	"uniint/internal/havi/fcm"
	"uniint/internal/homeapp"
	"uniint/internal/metrics"
	"uniint/internal/netsim"
	"uniint/internal/rfb"
	"uniint/internal/situation"
	"uniint/internal/toolkit"
	"uniint/internal/uniserver"
	"uniint/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "fewer repetitions")
	jsonOut := flag.Bool("json", false,
		"emit the measurement snapshot as JSON in the BENCH_BASELINE.json schema on stdout (tables go to stderr)")
	traceDemoOut := flag.String("trace-demo", "",
		"skip the suite; run a fully-traced interaction workload and write Chrome trace_event JSON to this file (open in chrome://tracing or ui.perfetto.dev)")
	flag.Parse()
	reps := 50
	if *quick {
		reps = 10
	}
	if *traceDemoOut != "" {
		if err := traceDemo(*traceDemoOut); err != nil {
			fmt.Fprintln(os.Stderr, "unibench:", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		// Tables keep printing through os.Stdout; point it at stderr so
		// stdout carries only the machine-readable snapshot.
		realOut := os.Stdout
		os.Stdout = os.Stderr
		collecting = true
		defer func() {
			b := benchfmt.Baseline{
				Schema:     benchfmt.Schema,
				Note:       fmt.Sprintf("cmd/unibench -json, %d reps", reps),
				Benchmarks: collected,
			}
			enc := json.NewEncoder(realOut)
			enc.SetIndent("", "  ")
			if err := enc.Encode(b); err != nil {
				fmt.Fprintln(os.Stderr, "unibench: encode json:", err)
				os.Exit(1)
			}
		}()
	}
	if err := run(reps); err != nil {
		fmt.Fprintln(os.Stderr, "unibench:", err)
		os.Exit(1)
	}
}

// collected accumulates per-measurement results for -json; record is a
// no-op in table-only runs.
var (
	collecting bool
	collected  []benchfmt.Result
)

// record captures one per-operation timing under a stable name shared
// with the baseline schema.
func record(name string, perOp time.Duration) {
	if collecting {
		collected = append(collected, benchfmt.Result{
			Name: name, NsPerOp: float64(perOp.Nanoseconds()),
			AllocsPerOp: -1, BytesPerOp: -1,
		})
	}
}

// recordBytes captures a bandwidth-style measurement (bytes carried by
// one operation) alongside its wall time.
func recordBytes(name string, perOp time.Duration, bytes int64) {
	if collecting {
		collected = append(collected, benchfmt.Result{
			Name: name, NsPerOp: float64(perOp.Nanoseconds()),
			AllocsPerOp: -1, BytesPerOp: float64(bytes),
		})
	}
}

func run(reps int) error {
	fmt.Println("universal interaction experiment suite (unibench)")
	fmt.Printf("repetitions per measurement: %d\n", reps)
	if err := e1(reps); err != nil {
		return err
	}
	e2(reps)
	e3(reps)
	if err := e4(reps); err != nil {
		return err
	}
	if err := e5(reps); err != nil {
		return err
	}
	if err := e6(reps); err != nil {
		return err
	}
	if err := e7(reps); err != nil {
		return err
	}
	if err := e8(); err != nil {
		return err
	}
	e9(reps)
	e10(reps)
	if err := e11(reps); err != nil {
		return err
	}
	if err := e12(reps); err != nil {
		return err
	}
	printMetrics()
	return nil
}

// printMetrics reports the process-wide instrumentation accumulated over
// the whole suite: the proxy/server hot-path counters and latency
// histograms from internal/metrics, alongside the per-experiment timings
// above.
func printMetrics() {
	fmt.Println("\n== process metrics (internal/metrics snapshot over the whole run) ==")
	snap := metrics.Default().Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-36s %12d\n", name, snap.Counters[name])
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-36s %12d\n", name, snap.Gauges[name])
	}
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		fmt.Printf("%-36s count %8d  p50 %10v  p95 %10v\n", name, h.Count,
			secs(h.Quantile(0.50)), secs(h.Quantile(0.95)))
	}
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond)
}

func e11(reps int) error {
	fmt.Println("\n== E11: end-to-end input latency over shaped links ==")
	links := []struct {
		key, name string
		opts      []netsim.Option
	}{
		{"direct", "direct (in-process)", nil},
		{"wifi", "wifi-class (5ms)", []netsim.Option{netsim.WithLatency(5 * time.Millisecond)}},
		{"bt", "bt-class (20ms)", []netsim.Option{netsim.WithLatency(20 * time.Millisecond)}},
	}
	n := max(reps/5, 5)
	fmt.Printf("%-22s %12s\n", "link", "median")
	for _, link := range links {
		lamp := appliance.NewLamp("Link Lamp")
		home := appliance.NewHome()
		if _, err := home.Add(lamp); err != nil {
			return err
		}
		home.Network().WaitIdle()
		display := toolkit.NewDisplay(640, 480)
		app := homeapp.New(home.Network(), display)
		srv := uniserver.New(display, "shaped")

		// Wrap is symmetric (shapes both directions), so one wrapped end
		// simulates the whole link.
		sc, cc := net.Pipe()
		go srv.HandleConn(sc)
		proxy, err := core.Dial(netsim.Wrap(cc, link.opts...))
		if err != nil {
			return err
		}
		go proxy.Run()
		phone := device.NewPhone("phone-1")
		if err := proxy.AttachInput(phone); err != nil {
			return err
		}
		if err := proxy.SelectInput("phone-1"); err != nil {
			return err
		}
		latch := make(chan int, 64)
		seid := lamp.Bulb().SEID()
		home.Network().Events().Subscribe(havi.EventFCMChanged, func(ev havi.Event) {
			if ev.Source == seid && ev.Key == fcm.CtlPower {
				select {
				case latch <- ev.Value:
				default:
				}
			}
		})
		var samples []time.Duration
		for i := 0; i < n; i++ {
			start := time.Now()
			phone.PressKey("ok")
			<-latch
			samples = append(samples, time.Since(start))
		}
		med, _ := stats(samples)
		record("unibench/e11/"+link.key, med)
		fmt.Printf("%-22s %12v\n", link.name, med.Round(10*time.Microsecond))
		phone.Close()
		proxy.Close()
		srv.Close()
		app.Close()
		home.Close()
	}
	return nil
}

// demandHandler keeps the demand-driven update loop rolling for e12.
type demandHandler struct {
	client *rfb.ClientConn
	region gfx.Rect
}

func (h demandHandler) Updated([]gfx.Rect) { _ = h.client.RequestUpdate(true, h.region) }
func (h demandHandler) Bell()              {}
func (h demandHandler) CutText(string)     {}

// e12 measures the input pipeline: a pointer-move flood dragging a
// slider whose appliance reaction is slow (50µs per change). The flood
// is written in 32-event batches; the server queue coalesces it under
// backpressure, so dispatches and updates land at a small fraction of
// the event rate. Latency numbers come from the input_* histograms.
func e12(reps int) error {
	fmt.Println("\n== E12: input pipeline (pointer flood -> coalesced dispatch) ==")
	display := toolkit.NewDisplay(320, 240)
	slider := toolkit.NewSlider("drag", 0, 99, 50, func(int) {
		time.Sleep(50 * time.Microsecond) // slow appliance reaction
	})
	root := toolkit.NewPanel(toolkit.VBox{Gap: 4, Padding: 6})
	root.Add(slider)
	display.SetRoot(root)
	display.Render()
	srv := uniserver.New(display, "input storm")
	defer srv.Close()
	sc, cc := net.Pipe()
	go srv.HandleConn(sc)
	client, err := rfb.Dial(cc)
	if err != nil {
		return err
	}
	defer client.Close()
	full := gfx.R(0, 0, 320, 240)
	go client.Run(demandHandler{client: client, region: full})
	if err := client.RequestUpdate(false, full); err != nil {
		return err
	}

	reg := metrics.Default()
	dispatched := reg.Counter("input_dispatched_total")
	coalesced := reg.Counter("input_coalesced_total")
	updates := reg.Counter("server_updates_sent_total")
	d0, c0, u0 := dispatched.Value(), coalesced.Value(), updates.Value()
	// The latency histograms are process-global and already hold samples
	// from E1/E11; snapshot them now so E12 reports only its own delta.
	dh0 := reg.Histogram("input_dispatch_seconds", metrics.LatencyBuckets()).Snapshot()
	uh0 := reg.Histogram("input_to_update_seconds", metrics.LatencyBuckets()).Snapshot()

	tb := slider.Bounds()
	cy := uint16(tb.Y + tb.H/2)
	if err := client.WriteEvents([]rfb.InputEvent{{IsPointer: true, Pointer: rfb.PointerEvent{
		Buttons: 1, X: uint16(tb.X + 8), Y: cy}}}); err != nil {
		return err
	}
	events := reps * 200
	batch := make([]rfb.InputEvent, 0, 32)
	start := time.Now()
	for i := 0; i < events; i++ {
		batch = append(batch, rfb.InputEvent{IsPointer: true, Pointer: rfb.PointerEvent{
			Buttons: 1, X: uint16(tb.X + 8 + i%(tb.W-16)), Y: cy}})
		if len(batch) == cap(batch) {
			if err := client.WriteEvents(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if err := client.WriteEvents(batch); err != nil {
		return err
	}
	sent := int64(events + 1)
	for dispatched.Value()-d0+coalesced.Value()-c0 < sent {
		time.Sleep(50 * time.Microsecond)
	}
	wall := time.Since(start)
	perEvent := wall / time.Duration(events)
	// The final dispatch's FramebufferUpdate ships asynchronously on the
	// writer; give it a moment so the update-side numbers include it.
	deadline := time.Now().Add(500 * time.Millisecond)
	for updates.Value() == u0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	n := float64(events)
	fmt.Printf("%-34s %12d\n", "events flooded", events)
	fmt.Printf("%-34s %12v\n", "per event (wall, incl. drain)", perEvent.Round(10*time.Nanosecond))
	fmt.Printf("%-34s %12.4f\n", "dispatched/event", float64(dispatched.Value()-d0)/n)
	fmt.Printf("%-34s %12.4f\n", "coalesced/event", float64(coalesced.Value()-c0)/n)
	fmt.Printf("%-34s %12.4f\n", "updates/event", float64(updates.Value()-u0)/n)
	record("unibench/e12/event", perEvent)

	dh := histDelta(dh0, reg.Histogram("input_dispatch_seconds", metrics.LatencyBuckets()).Snapshot())
	uh := histDelta(uh0, reg.Histogram("input_to_update_seconds", metrics.LatencyBuckets()).Snapshot())
	fmt.Printf("%-34s %12v %12v\n", "enqueue->dispatch p50/p95",
		secs(dh.Quantile(0.50)), secs(dh.Quantile(0.95)))
	fmt.Printf("%-34s %12v %12v\n", "input->update p50/p95",
		secs(uh.Quantile(0.50)), secs(uh.Quantile(0.95)))
	record("unibench/e12/dispatch-p50", secs(dh.Quantile(0.50)))
	record("unibench/e12/dispatch-p95", secs(dh.Quantile(0.95)))
	record("unibench/e12/to-update-p50", secs(uh.Quantile(0.50)))
	record("unibench/e12/to-update-p95", secs(uh.Quantile(0.95)))
	return nil
}

// histDelta returns the samples snapshot `to` gained over `from` (same
// immutable bounds), so an experiment can report quantiles over only the
// observations it produced.
func histDelta(from, to metrics.HistogramSnapshot) metrics.HistogramSnapshot {
	out := metrics.HistogramSnapshot{
		Bounds: to.Bounds,
		Counts: make([]uint64, len(to.Counts)),
		Sum:    to.Sum - from.Sum,
	}
	for i := range to.Counts {
		out.Counts[i] = to.Counts[i] - from.Counts[i]
		out.Count += out.Counts[i]
	}
	return out
}

// lampSession assembles the standard measurement stack.
func lampSession() (*uniint.Session, *appliance.Lamp, chan int, error) {
	lamp := appliance.NewLamp("Bench Lamp")
	s, err := uniint.NewSession(uniint.Options{Appliances: []appliance.Appliance{lamp}})
	if err != nil {
		return nil, nil, nil, err
	}
	latch := make(chan int, 256)
	seid := lamp.Bulb().SEID()
	s.Home.Network().Events().Subscribe(havi.EventFCMChanged, func(ev havi.Event) {
		if ev.Source == seid && ev.Key == fcm.CtlPower {
			select {
			case latch <- ev.Value:
			default:
			}
		}
	})
	return s, lamp, latch, nil
}

func stats(ds []time.Duration) (median, p95 time.Duration) {
	if len(ds) == 0 {
		return 0, 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2], sorted[len(sorted)*95/100]
}

func e1(reps int) error {
	fmt.Println("\n== E1: end-to-end input latency (device event -> appliance state change) ==")
	fmt.Printf("%-10s %12s %12s\n", "device", "median", "p95")

	type class struct {
		name string
		act  func(d devices)
	}
	classes := []class{
		{"phone", func(d devices) { d.phone.PressKey("ok") }},
		{"voice", func(d devices) { d.voice.Say("toggle") }},
		{"remote", func(d devices) { d.remote.Press("ok") }},
		{"gesture", func(d devices) { d.gesture.EmitStroke(device.StrokeTap) }},
	}
	for _, c := range classes {
		s, _, latch, err := lampSession()
		if err != nil {
			return err
		}
		d := attachAll(s)
		if err := s.Proxy.SelectInputByClass(c.name); err != nil {
			s.Close()
			return err
		}
		var samples []time.Duration
		for i := 0; i < reps; i++ {
			start := time.Now()
			c.act(d)
			<-latch
			samples = append(samples, time.Since(start))
		}
		med, p95 := stats(samples)
		record("unibench/e1/"+c.name, med)
		fmt.Printf("%-10s %12v %12v\n", c.name, med, p95)
		s.Close()
	}

	// PDA uses the pointer path.
	s, _, latch, err := lampSession()
	if err != nil {
		return err
	}
	d := attachAll(s)
	if err := s.Proxy.SelectInput("pda-1"); err != nil {
		s.Close()
		return err
	}
	s.Display.Render()
	foc := s.Display.Focus()
	b := foc.Bounds()
	var samples []time.Duration
	for i := 0; i < reps; i++ {
		start := time.Now()
		d.pda.Tap((b.X+4)/2, (b.Y+4)/2)
		<-latch
		samples = append(samples, time.Since(start))
	}
	med, p95 := stats(samples)
	record("unibench/e1/pda", med)
	fmt.Printf("%-10s %12v %12v\n", "pda", med, p95)
	s.Close()
	return nil
}

type devices struct {
	pda     *device.PDA
	phone   *device.Phone
	voice   *device.VoiceInput
	remote  *device.RemoteControl
	gesture *device.GestureInput
	tv      *device.TVDisplay
}

func attachAll(s *uniint.Session) devices {
	d := devices{
		pda:     device.NewPDA("pda-1"),
		phone:   device.NewPhone("phone-1"),
		voice:   device.NewVoiceInput("voice-1"),
		remote:  device.NewRemoteControl("remote-1"),
		gesture: device.NewGestureInput("gesture-1"),
		tv:      device.NewTVDisplay("tv-1"),
	}
	for _, in := range []core.InputDevice{d.pda, d.phone, d.voice, d.remote, d.gesture} {
		_ = s.Proxy.AttachInput(in)
	}
	for _, out := range []core.OutputDevice{d.pda, d.phone, d.tv} {
		_ = s.Proxy.AttachOutput(out)
	}
	return d
}

func e2(reps int) {
	fmt.Println("\n== E2: encoding trade-off (640x480, bytes per full-frame update) ==")
	frames := workload.Frames(640, 480)
	pf := gfx.PF32()
	encs := []int32{rfb.EncRaw, rfb.EncRRE, rfb.EncHextile, rfb.EncZlib}
	fmt.Printf("%-9s", "content")
	for _, e := range encs {
		fmt.Printf(" %14s", rfb.EncodingName(e))
	}
	fmt.Println()
	for _, content := range []string{"flat", "gui", "text", "noise"} {
		frame := frames[content]
		fmt.Printf("%-9s", content)
		for _, enc := range encs {
			var size int
			var total time.Duration
			for i := 0; i < max(reps/10, 3); i++ {
				start := time.Now()
				body, err := rfb.EncodeRectBytes(enc, frame, frame.Bounds(), pf)
				if err != nil {
					fmt.Printf(" %14s", "err")
					continue
				}
				total += time.Since(start)
				size = len(body)
			}
			avg := total / time.Duration(max(reps/10, 3))
			recordBytes(fmt.Sprintf("unibench/e2/%s/%s", content, rfb.EncodingName(enc)), avg, int64(size))
			fmt.Printf(" %8s/%5s", byteCount(size), avg.Round(100*time.Microsecond))
		}
		fmt.Println()
	}
}

func byteCount(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func e3(reps int) {
	fmt.Println("\n== E3: output plug-in conversion cost (640x480 GUI frame) ==")
	frame := workload.GUIFrame(640, 480)
	plugins := []struct {
		key, name string
		pl        core.OutputPlugin
	}{
		{"tv", "tv (passthrough 640x480x24)", device.NewTVDisplay("t").OutputPlugin()},
		{"pda", "pda (box scale to 320x240)", device.NewPDA("p").OutputPlugin()},
		{"phone", "phone (scale + dither to 96x64x1)", device.NewPhone("f").OutputPlugin()},
	}
	fmt.Printf("%-36s %12s\n", "plug-in", "per frame")
	for _, p := range plugins {
		var total time.Duration
		for i := 0; i < reps; i++ {
			start := time.Now()
			p.pl.Convert(frame)
			total += time.Since(start)
		}
		per := total / time.Duration(reps)
		record("unibench/e3/"+p.key, per)
		fmt.Printf("%-36s %12v\n", p.name, per.Round(time.Microsecond))
	}
}

func e4(reps int) error {
	fmt.Println("\n== E4: dynamic switching latency ==")
	s, _, _, err := lampSession()
	if err != nil {
		return err
	}
	defer s.Close()
	attachAll(s)

	var total time.Duration
	n := reps * 100
	ids := []string{"phone-1", "voice-1"}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := s.Proxy.SelectInput(ids[i%2]); err != nil {
			return err
		}
	}
	total = time.Since(start)
	record("unibench/e4/input-switch", total/time.Duration(n))
	fmt.Printf("%-28s %12v\n", "input switch", total/time.Duration(n))

	outIDs := []string{"pda-1", "tv-1"}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if err := s.Proxy.SelectOutput(outIDs[i%2]); err != nil {
			return err
		}
	}
	record("unibench/e4/output-switch", time.Since(start)/time.Duration(reps))
	fmt.Printf("%-28s %12v\n", "output switch (renegotiate)", time.Since(start)/time.Duration(reps))

	eng := situation.NewEngine(s.Proxy, situation.DefaultRules())
	sits := []situation.Situation{
		{Location: "kitchen", HandsBusy: true},
		{Location: "livingroom", Activity: "watching_tv", Seated: true},
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		eng.SetSituation(sits[i%2])
	}
	record("unibench/e4/situation-eval", time.Since(start)/time.Duration(reps))
	fmt.Printf("%-28s %12v\n", "situation rule evaluation", time.Since(start)/time.Duration(reps))
	return nil
}

func e5(reps int) error {
	fmt.Println("\n== E5: composed-GUI generation vs appliance count ==")
	fmt.Printf("%-12s %14s\n", "appliances", "regen+render")
	for _, n := range []int{1, 2, 4, 8, 16} {
		home := appliance.NewHome()
		for i := 0; i < n; i++ {
			var a appliance.Appliance
			switch i % 3 {
			case 0:
				a = appliance.NewTV(fmt.Sprintf("TV-%d", i))
			case 1:
				a = appliance.NewVCR(fmt.Sprintf("VCR-%d", i))
			default:
				a = appliance.NewLamp(fmt.Sprintf("Lamp-%d", i))
			}
			if _, err := home.Add(a); err != nil {
				home.Close()
				return err
			}
		}
		home.Network().WaitIdle()
		display := toolkit.NewDisplay(640, 480)
		app := homeapp.New(home.Network(), display)
		start := time.Now()
		for i := 0; i < reps; i++ {
			app.Rebuild()
			display.Render()
		}
		record(fmt.Sprintf("unibench/e5/%d-appliances", n), time.Since(start)/time.Duration(reps))
		fmt.Printf("%-12d %14v\n", n, (time.Since(start) / time.Duration(reps)).Round(time.Microsecond))
		app.Close()
		home.Close()
	}
	return nil
}

func e6(reps int) error {
	fmt.Println("\n== E6: HAVi middleware primitives ==")
	for _, n := range []int{10, 100, 1000} {
		net := havi.NewNetwork()
		for i := 0; i < n/2; i++ {
			d := havi.NewDCM(fmt.Sprintf("dev-%d", i), "lamp")
			d.AddFCM(fcm.NewLamp())
			if _, err := net.Attach(d); err != nil {
				net.Close()
				return err
			}
		}
		net.WaitIdle()
		match := map[string]string{"type": "fcm", "kind": "lamp"}
		start := time.Now()
		for i := 0; i < reps; i++ {
			net.Registry().Query(match)
		}
		record(fmt.Sprintf("unibench/e6/registry-query/%d", n), time.Since(start)/time.Duration(reps))
		fmt.Printf("registry query over %4d elements  %12v\n",
			net.Registry().Count(), (time.Since(start) / time.Duration(reps)).Round(time.Microsecond))
		net.Close()
	}

	net := havi.NewNetwork()
	defer net.Close()
	f := fcm.NewLamp()
	d := havi.NewDCM("lamp", "lamp")
	d.AddFCM(f)
	if _, err := net.Attach(d); err != nil {
		return err
	}
	msg := havi.Message{Dst: f.SEID(), Op: havi.OpGet, Key: fcm.CtlPower}
	n := reps * 1000
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := net.Messages().Call(msg); err != nil {
			return err
		}
	}
	record("unibench/e6/message-call", time.Since(start)/time.Duration(n))
	fmt.Printf("synchronous control message        %12v\n", time.Since(start)/time.Duration(n))

	for _, subs := range []int{10, 100} {
		net2 := havi.NewNetwork()
		for i := 0; i < subs; i++ {
			net2.Events().Subscribe(havi.EventFCMChanged, func(havi.Event) {})
		}
		ev := havi.Event{Type: havi.EventFCMChanged}
		start = time.Now()
		for i := 0; i < reps*10; i++ {
			net2.Events().Post(ev)
		}
		net2.WaitIdle()
		record(fmt.Sprintf("unibench/e6/event-fanout/%d", subs), time.Since(start)/time.Duration(reps*10))
		fmt.Printf("event fan-out to %3d subscribers   %12v\n",
			subs, (time.Since(start) / time.Duration(reps*10)).Round(time.Microsecond))
		net2.Close()
	}
	return nil
}

func e7(reps int) error {
	fmt.Println("\n== E7: hot plug -> GUI regeneration ==")
	home, err := appliance.StandardHome()
	if err != nil {
		return err
	}
	defer home.Close()
	display := toolkit.NewDisplay(640, 480)
	app := homeapp.New(home.Network(), display)
	defer app.Close()
	home.Network().WaitIdle()

	lamp := appliance.NewLamp("Plug Lamp")
	var attach, detach time.Duration
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := home.Add(lamp); err != nil {
			return err
		}
		home.Network().WaitIdle()
		attach += time.Since(start)

		start = time.Now()
		home.Remove(lamp)
		home.Network().WaitIdle()
		detach += time.Since(start)
	}
	record("unibench/e7/attach", attach/time.Duration(reps))
	record("unibench/e7/detach", detach/time.Duration(reps))
	fmt.Printf("attach -> GUI shows appliance   %12v\n", (attach / time.Duration(reps)).Round(time.Microsecond))
	fmt.Printf("detach -> GUI drops appliance   %12v\n", (detach / time.Duration(reps)).Round(time.Microsecond))
	return nil
}

func e8() error {
	fmt.Println("\n== E8: protocol bytes for the 30-interaction session, per output device ==")
	fmt.Printf("%-8s %6s %14s %10s\n", "output", "bpp", "bytes/session", "frames")
	for _, out := range []struct{ name, id string }{
		{"tv", "tv-1"}, {"pda", "pda-1"}, {"phone", "phone-1"},
	} {
		s, _, _, err := lampSession()
		if err != nil {
			return err
		}
		d := attachAll(s)
		if err := s.Proxy.SelectInput("phone-1"); err != nil {
			s.Close()
			return err
		}
		if err := s.Proxy.SelectOutput(out.id); err != nil {
			s.Close()
			return err
		}
		settle := func() {
			prev := int64(-1)
			for {
				cur := s.Proxy.Client().BytesReceived()
				if cur == prev {
					return
				}
				prev = cur
				time.Sleep(2 * time.Millisecond)
			}
		}
		settle()
		startBytes := s.Proxy.Client().BytesReceived()
		startFrames := s.Proxy.Stats().FramesPresented
		startTime := time.Now()
		// Settle after every step so each interaction's repaint is
		// shipped individually (damage coalescing across steps would
		// otherwise hide the per-device format differences).
		for _, st := range workload.StandardSession() {
			d.phone.PressKey(st.Arg)
			settle()
		}
		bpp := 32
		switch out.name {
		case "pda":
			bpp = 16
		case "phone":
			bpp = 8
		}
		recordBytes("unibench/e8/"+out.name, time.Since(startTime),
			s.Proxy.Client().BytesReceived()-startBytes)
		fmt.Printf("%-8s %6d %14s %10d\n", out.name, bpp,
			byteCount(int(s.Proxy.Client().BytesReceived()-startBytes)),
			s.Proxy.Stats().FramesPresented-startFrames)
		s.Close()
	}
	return nil
}

func e9(reps int) {
	fmt.Println("\n== E9: ablation — conversion at proxy (paper) vs at server, k devices ==")
	frame := workload.GUIFrame(640, 480)
	pl := device.NewPDA("p").OutputPlugin()
	pf := gfx.PF32()
	n := max(reps/10, 3)
	fmt.Printf("%-4s %16s %16s\n", "k", "proxy-side", "server-side")
	for _, k := range []int{1, 2, 4, 8} {
		var proxySide, serverSide time.Duration
		for i := 0; i < n; i++ {
			start := time.Now()
			_, _ = rfb.EncodeRectBytes(rfb.EncHextile, frame, frame.Bounds(), pf)
			for j := 0; j < k; j++ {
				pl.Convert(frame)
			}
			proxySide += time.Since(start)

			start = time.Now()
			for j := 0; j < k; j++ {
				f := pl.Convert(frame)
				_, _ = rfb.EncodeRectBytes(rfb.EncHextile, f.RGB, f.RGB.Bounds(), pf)
			}
			serverSide += time.Since(start)
		}
		record(fmt.Sprintf("unibench/e9/proxy-side/%d", k), proxySide/time.Duration(n))
		record(fmt.Sprintf("unibench/e9/server-side/%d", k), serverSide/time.Duration(n))
		fmt.Printf("%-4d %16v %16v\n", k,
			(proxySide / time.Duration(n)).Round(10*time.Microsecond),
			(serverSide / time.Duration(n)).Round(10*time.Microsecond))
	}
	fmt.Println("(proxy-side additionally spreads its k converts across k proxy hosts;")
	fmt.Println(" server-side concentrates all work on the appliance host)")
}

func e10(reps int) {
	fmt.Println("\n== E10: recognition path cost ==")
	corpus := []string{
		"next", "move down", "turn it up twice", "select",
		"please press the button", "completely unknown utterance here",
	}
	n := reps * 1000
	start := time.Now()
	for i := 0; i < n; i++ {
		device.RecognizeUtterance(corpus[i%len(corpus)])
	}
	record("unibench/e10/voice", time.Since(start)/time.Duration(n))
	fmt.Printf("voice grammar (per utterance)    %12v\n", time.Since(start)/time.Duration(n))

	stroke := make([]device.Point, 32)
	for i := range stroke {
		stroke[i] = device.Point{X: 10 + i*3, Y: 50 + (i % 3)}
	}
	start = time.Now()
	for i := 0; i < n; i++ {
		device.ClassifyStroke(stroke)
	}
	record("unibench/e10/gesture", time.Since(start)/time.Duration(n))
	fmt.Printf("gesture classifier (per stroke)  %12v\n", time.Since(start)/time.Duration(n))
}
