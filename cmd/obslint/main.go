// Command obslint enforces the observability naming contract across the
// tree: every metric registered through internal/metrics must be
// snake_case, counters must end in _total, histograms in _seconds, and
// every trace stage name must be snake_case. The rules are the Prometheus
// naming conventions the exposition endpoint promises; drift breaks
// dashboards silently, so CI runs this lint alongside staticcheck.
//
// Two opt-in modes extend the contract to documentation:
//
//	-doclint    every package must carry a package doc comment, and every
//	            exported constant must be covered by a doc comment —
//	            either its own or its const block's (a block doc covers
//	            the whole block, so enumerations like keysyms document
//	            once).
//	-mdlinks    every relative link in the markdown tree must resolve to
//	            an existing file (anchors and absolute URLs are skipped).
//
// Usage:
//
//	obslint [-doclint] [-mdlinks] [dir ...]    # defaults to the current tree
//
// The lint also guards the budgeted event runtime's core invariant: in the
// session-path packages (internal/uniserver, internal/hub, internal/rfb,
// internal/netsim) a naked `go` statement is an error — per-session
// concurrency belongs on the sched runtime (pool turns and wheel timers),
// where worker count is a process budget instead of scaling with sessions.
// A deliberate spawn (e.g. the one-goroutine-per-connection legacy Serve
// path) is annotated with a `goroutine-ok:` comment naming its reason, on
// the go statement's line or the line above.
//
// Test files are exempt (they register throwaway names on private
// registries); generated and vendored trees are skipped.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"uniint/internal/trace"
)

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

var (
	docLint = flag.Bool("doclint", false, "also require package docs and exported-constant docs")
	mdLinks = flag.Bool("mdlinks", false, "also check that relative markdown links resolve")
)

func main() {
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := 0
	for _, root := range roots {
		if err := lintTree(root, &bad); err != nil {
			fmt.Fprintln(os.Stderr, "obslint:", err)
			os.Exit(2)
		}
		if *mdLinks {
			if err := lintMarkdownTree(root, &bad); err != nil {
				fmt.Fprintln(os.Stderr, "obslint:", err)
				os.Exit(2)
			}
		}
	}
	bad += lintStageNames()
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "obslint: %d problem(s)\n", bad)
		os.Exit(1)
	}
}

func lintTree(root string, bad *int) error {
	// pkgDocs tracks, per directory, whether any non-test file carries a
	// package doc comment — the doc may live in any file of the package,
	// so the verdict is per directory, not per file.
	pkgDocs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "vendor" || name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		*bad += lintFile(path, pkgDocs)
		return nil
	})
	if err != nil {
		return err
	}
	if *docLint {
		for dir, has := range pkgDocs {
			if !has {
				fmt.Fprintf(os.Stderr, "%s: package has no package doc comment in any file\n", dir)
				*bad++
			}
		}
	}
	return nil
}

// lintFile reports naming violations in one source file: any call of the
// form <expr>.Counter("name")/Gauge("name")/Histogram("name", ...) with a
// literal name is checked against the contract. With -doclint it also
// records whether the file carries the package doc and checks exported
// constant documentation.
func lintFile(path string, pkgDocs map[string]bool) int {
	fset := token.NewFileSet()
	mode := parser.Mode(0)
	sessionPath := isSessionPath(path)
	if *docLint || sessionPath {
		mode = parser.ParseComments
	}
	f, err := parser.ParseFile(fset, path, nil, mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obslint: %s: %v\n", path, err)
		return 1
	}
	bad := 0
	if sessionPath {
		bad += lintGoStmts(fset, f, path)
	}
	if *docLint {
		dir := filepath.Dir(path)
		if _, seen := pkgDocs[dir]; !seen {
			pkgDocs[dir] = false
		}
		if f.Doc != nil {
			pkgDocs[dir] = true
		}
		bad += lintConstDocs(fset, f)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind := sel.Sel.Name
		if kind != "Counter" && kind != "Gauge" && kind != "Histogram" {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		for _, msg := range checkMetric(kind, name) {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(lit.Pos()), msg)
			bad++
		}
		return true
	})
	return bad
}

// lintConstDocs requires every exported top-level constant to be covered
// by a doc comment. Coverage is hierarchical: the const block's doc
// comment covers every name in the block (so a documented enumeration —
// keysyms, encoding ids — documents once), a ValueSpec's own doc or
// trailing line comment covers that spec, and otherwise the name is
// reported. Wire and encoding constants are the motivating case: an
// undocumented protocol constant is an undocumented wire commitment.
func lintConstDocs(fset *token.FileSet, f *ast.File) int {
	bad := 0
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		if gd.Doc != nil {
			continue // block doc covers the whole declaration
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || vs.Doc != nil || vs.Comment != nil {
				continue
			}
			for _, id := range vs.Names {
				if !id.IsExported() {
					continue
				}
				fmt.Fprintf(os.Stderr, "%s: exported constant %s has no doc comment (own, line, or const-block)\n",
					fset.Position(id.Pos()), id.Name)
				bad++
			}
		}
	}
	return bad
}

// sessionPathDirs are the packages living under the budgeted event
// runtime's goroutine discipline: session work runs as pool turns and
// wheel timers, never as per-session goroutines.
var sessionPathDirs = []string{
	"internal/uniserver", "internal/hub", "internal/rfb", "internal/netsim",
	"internal/fed",
}

func isSessionPath(path string) bool {
	dir := filepath.ToSlash(filepath.Dir(path))
	for _, d := range sessionPathDirs {
		if dir == d || strings.HasSuffix(dir, "/"+d) {
			return true
		}
	}
	return false
}

// goroutineOK marks a deliberate goroutine spawn in a session-path
// package; the comment must name the reason.
const goroutineOK = "goroutine-ok:"

// lintGoStmts flags naked `go` statements in session-path packages. A
// spawn annotated with a goroutine-ok: comment (same line or the line
// above) passes; everything else is a budget leak — it scales goroutines
// with sessions instead of riding the shared pool or wheel.
func lintGoStmts(fset *token.FileSet, f *ast.File, path string) int {
	allowed := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, goroutineOK) {
				// The whole comment group vouches for the statement that
				// follows it (and an inline marker for its own line).
				allowed[fset.Position(c.Pos()).Line] = true
				allowed[fset.Position(cg.End()).Line] = true
			}
		}
	}
	bad := 0
	ast.Inspect(f, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		line := fset.Position(gs.Pos()).Line
		if allowed[line] || allowed[line-1] {
			return true
		}
		fmt.Fprintf(os.Stderr, "%s: naked go statement in session-path package %s (run it as a pool turn or wheel timer, or annotate '// goroutine-ok: <reason>')\n",
			fset.Position(gs.Pos()), filepath.Dir(path))
		bad++
		return true
	})
	return bad
}

func checkMetric(kind, name string) []string {
	var msgs []string
	if !snakeCase.MatchString(name) {
		msgs = append(msgs, fmt.Sprintf("metric %q is not snake_case", name))
	}
	switch kind {
	case "Counter":
		if !strings.HasSuffix(name, "_total") {
			msgs = append(msgs, fmt.Sprintf("counter %q must end in _total", name))
		}
	case "Histogram":
		if !strings.HasSuffix(name, "_seconds") {
			msgs = append(msgs, fmt.Sprintf("histogram %q must end in _seconds (base-unit rule)", name))
		}
	}
	return msgs
}

// mdLinkPattern matches inline markdown links and captures the target.
// Reference-style links and autolinks are out of scope — the tree uses
// inline links only.
var mdLinkPattern = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// lintMarkdownTree checks every relative link in the tree's .md files:
// the target, resolved against the file's directory and stripped of any
// #fragment, must exist. Absolute URLs and pure-fragment links are
// skipped (the former are external, the latter need a markdown anchor
// model this lint deliberately doesn't have).
func lintMarkdownTree(root string, bad *int) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "vendor" || name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLinkPattern.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "%s: broken relative link %q (%s does not exist)\n", path, m[1], resolved)
				*bad++
			}
		}
		return nil
	})
}

// lintStageNames checks the trace stage vocabulary itself — the span
// names exported to Chrome trace JSON follow the same snake_case rule as
// metric names so the two surfaces cross-reference cleanly.
func lintStageNames() int {
	bad := 0
	for _, name := range trace.StageNames() {
		if !snakeCase.MatchString(name) {
			fmt.Fprintf(os.Stderr, "trace stage %q is not snake_case\n", name)
			bad++
		}
	}
	return bad
}
