// Command obslint enforces the observability naming contract across the
// tree: every metric registered through internal/metrics must be
// snake_case, counters must end in _total, histograms in _seconds, and
// every trace stage name must be snake_case. The rules are the Prometheus
// naming conventions the exposition endpoint promises; drift breaks
// dashboards silently, so CI runs this lint alongside staticcheck.
//
//	obslint [dir ...]    # defaults to the current directory tree
//
// Test files are exempt (they register throwaway names on private
// registries); generated and vendored trees are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"uniint/internal/trace"
)

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := 0
	for _, root := range roots {
		if err := lintTree(root, &bad); err != nil {
			fmt.Fprintln(os.Stderr, "obslint:", err)
			os.Exit(2)
		}
	}
	bad += lintStageNames()
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "obslint: %d problem(s)\n", bad)
		os.Exit(1)
	}
}

func lintTree(root string, bad *int) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "vendor" || name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		*bad += lintFile(path)
		return nil
	})
}

// lintFile reports naming violations in one source file: any call of the
// form <expr>.Counter("name")/Gauge("name")/Histogram("name", ...) with a
// literal name is checked against the contract.
func lintFile(path string) int {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obslint: %s: %v\n", path, err)
		return 1
	}
	bad := 0
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind := sel.Sel.Name
		if kind != "Counter" && kind != "Gauge" && kind != "Histogram" {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		for _, msg := range checkMetric(kind, name) {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(lit.Pos()), msg)
			bad++
		}
		return true
	})
	return bad
}

func checkMetric(kind, name string) []string {
	var msgs []string
	if !snakeCase.MatchString(name) {
		msgs = append(msgs, fmt.Sprintf("metric %q is not snake_case", name))
	}
	switch kind {
	case "Counter":
		if !strings.HasSuffix(name, "_total") {
			msgs = append(msgs, fmt.Sprintf("counter %q must end in _total", name))
		}
	case "Histogram":
		if !strings.HasSuffix(name, "_seconds") {
			msgs = append(msgs, fmt.Sprintf("histogram %q must end in _seconds (base-unit rule)", name))
		}
	}
	return msgs
}

// lintStageNames checks the trace stage vocabulary itself — the span
// names exported to Chrome trace JSON follow the same snake_case rule as
// metric names so the two surfaces cross-reference cleanly.
func lintStageNames() int {
	bad := 0
	for _, name := range trace.StageNames() {
		if !snakeCase.MatchString(name) {
			fmt.Fprintf(os.Stderr, "trace stage %q is not snake_case\n", name)
			bad++
		}
	}
	return bad
}
