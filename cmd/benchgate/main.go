// Command benchgate is the benchmark-regression gate used by CI and local
// runs. It reads `go test -bench -benchmem` output on stdin and either
//
//	(default)  compares the results against a committed baseline
//	           (BENCH_BASELINE.json) and exits non-zero on regression, or
//	-update    regenerates the baseline file from the measured results.
//
// Typical use:
//
//	go test -run NONE -bench 'E1|E2|HubRoute' -benchtime 100x -benchmem . \
//	    | go run ./cmd/benchgate -tolerance 0.75
//
//	make bench-baseline     # regenerate BENCH_BASELINE.json
//
// ns/op tolerance is generous by default in CI because wall time shifts
// with hardware; allocs/op is machine-independent and gated tightly, which
// is what pins the zero-allocation encode paths at zero. The -slowdown
// flag scales measured ns/op before comparing — a built-in way to
// demonstrate the gate failing (e.g. -slowdown 2 simulates a 2× slowdown).
package main

import (
	"flag"
	"fmt"
	"os"

	"uniint/internal/benchfmt"
)

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against or regenerate")
		tolerance    = flag.Float64("tolerance", 0.20, "relative ns/op headroom (0.20 = +20%)")
		allocTol     = flag.Float64("alloc-tolerance", 0.20, "relative allocs/op headroom")
		allocSlack   = flag.Float64("alloc-slack", 2, "absolute allocs/op allowance on top of the relative headroom")
		extraTol     = flag.Float64("extra-tolerance", 0.20, "relative headroom on custom per-op metrics (wirebytes/op, …), which are machine-independent like allocs")
		update       = flag.Bool("update", false, "write the measured results as the new baseline instead of comparing")
		note         = flag.String("note", "", "provenance note stored in the baseline on -update")
		slowdown     = flag.Float64("slowdown", 1.0, "scale measured ns/op before comparing (demo/testing of the gate itself)")
		allowMissing = flag.Bool("allow-missing", false, "do not fail when a baseline benchmark was not measured")
	)
	flag.Parse()

	results, err := benchfmt.ParseGoBench(os.Stdin)
	if err != nil {
		fatal("parse bench output: %v", err)
	}
	if len(results) == 0 {
		fatal("no benchmark results on stdin (run go test -bench ... -benchmem and pipe its output here)")
	}
	if *slowdown != 1.0 {
		for i := range results {
			results[i].NsPerOp *= *slowdown
		}
		fmt.Printf("benchgate: applying synthetic %gx slowdown to measured ns/op\n", *slowdown)
	}

	if *update {
		// The input may contain several runs of the same set (make
		// bench-baseline feeds two): keep the worst observation per
		// benchmark, so the committed ceiling covers the machine's slow
		// mode and a fast run cannot bait the gate into flapping.
		merged := results[:0]
		index := make(map[string]int, len(results))
		for _, r := range results {
			i, seen := index[r.Name]
			if !seen {
				index[r.Name] = len(merged)
				merged = append(merged, r)
				continue
			}
			if r.NsPerOp > merged[i].NsPerOp {
				merged[i].NsPerOp = r.NsPerOp
			}
			if r.AllocsPerOp > merged[i].AllocsPerOp {
				merged[i].AllocsPerOp = r.AllocsPerOp
			}
			if r.BytesPerOp > merged[i].BytesPerOp {
				merged[i].BytesPerOp = r.BytesPerOp
			}
			for unit, v := range r.Extra {
				if merged[i].Extra == nil {
					merged[i].Extra = make(map[string]float64)
				}
				if v > merged[i].Extra[unit] {
					merged[i].Extra[unit] = v
				}
			}
		}
		b := &benchfmt.Baseline{Note: *note, Benchmarks: merged}
		if err := benchfmt.WriteBaseline(*baselinePath, b); err != nil {
			fatal("write baseline: %v", err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(merged), *baselinePath)
		return
	}

	base, err := benchfmt.ReadBaseline(*baselinePath)
	if err != nil {
		fatal("read baseline: %v (regenerate with -update / make bench-baseline)", err)
	}
	regs, missing := benchfmt.Compare(base.Benchmarks, results, benchfmt.Tolerances{
		Ns:         *tolerance,
		Allocs:     *allocTol,
		AllocSlack: *allocSlack,
		Extra:      *extraTol,
	})

	fmt.Printf("benchgate: %d measured, %d baselined, ns/op tolerance +%.0f%%, allocs/op tolerance +%.0f%%+%g\n",
		len(results), len(base.Benchmarks), *tolerance*100, *allocTol*100, *allocSlack)
	for _, r := range regs {
		fmt.Printf("REGRESSION  %s\n", r)
	}
	for _, name := range missing {
		fmt.Printf("MISSING     %s (in baseline, not measured)\n", name)
	}
	failed := len(regs) > 0 || (len(missing) > 0 && !*allowMissing)
	if failed {
		fmt.Println("benchgate: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchgate: PASS")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(2)
}
