// Command uniintd is the appliance-side daemon: it assembles the home
// network (HAVi middleware + appliance simulators), runs the home
// appliance application that generates the composed control panel, and
// exports the panel's display session over the universal interaction
// protocol on a TCP listener.
//
// Connect with cmd/uniint-proxy:
//
//	uniintd -listen :5900 -appliances tv,vcr,amplifier,aircon,lamp
//	uniint-proxy -server localhost:5900
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"uniint/internal/appliance"
	"uniint/internal/homeapp"
	"uniint/internal/toolkit"
	"uniint/internal/uniserver"
)

func main() {
	listen := flag.String("listen", ":5900", "address to serve the universal interaction protocol on")
	appliances := flag.String("appliances", "tv,vcr,amplifier,aircon,lamp",
		"comma-separated appliance classes to put on the home network")
	tick := flag.Duration("tick", 200*time.Millisecond, "hardware simulation tick interval (0 disables)")
	width := flag.Int("width", 640, "desktop width")
	height := flag.Int("height", 480, "desktop height")
	flag.Parse()

	if err := run(*listen, *appliances, *tick, *width, *height); err != nil {
		fmt.Fprintln(os.Stderr, "uniintd:", err)
		os.Exit(1)
	}
}

func run(listen, classes string, tick time.Duration, width, height int) error {
	home := appliance.NewHome()
	defer home.Close()
	counts := map[string]int{}
	for _, class := range strings.Split(classes, ",") {
		class = strings.TrimSpace(class)
		if class == "" {
			continue
		}
		counts[class]++
		name := fmt.Sprintf("%s-%d", strings.ToUpper(class[:1])+class[1:], counts[class])
		a, err := appliance.New(class, name)
		if err != nil {
			return err
		}
		if _, err := home.Add(a); err != nil {
			return err
		}
		fmt.Printf("attached %-12s (%s)\n", name, class)
	}
	home.Network().WaitIdle()
	if tick > 0 {
		home.StartTicker(tick)
	}

	display := toolkit.NewDisplay(width, height)
	app := homeapp.New(home.Network(), display)
	defer app.Close()
	home.Network().WaitIdle()
	fmt.Println("control panels:", app.PanelInventory())

	server := uniserver.New(display, "uniintd home session")
	defer server.Close()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("serving universal interaction protocol on %s\n", ln.Addr())

	// Serve until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()
	select {
	case <-sig:
		fmt.Println("\nshutting down")
		ln.Close()
		<-serveErr
		return nil
	case err := <-serveErr:
		return err
	}
}
