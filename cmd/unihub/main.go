// Command unihub is the multi-home hub daemon: one process hosting many
// households' universal-interaction stacks behind a single listener.
//
// Each inbound connection opens with the routing preamble
// ("UNIHUB/1 <home-id>\n"); the hub admits the home on first use (builds
// its appliances, middleware, application and server) and hands the rest
// of the connection to that home's unmodified UniInt server. Homes idle
// past -idle are evicted; -max-homes caps residency.
//
//	unihub -listen :5900 -homes 64 -appliances tv,lamp
//	unihub -demo -homes 64 -demo-devices 2        # in-process load proof
//	unihub -peers alpha,beta,gamma -homes 64      # hub-of-hubs federation
//
// With -peers the process runs one hub node per name behind a federation
// router (internal/fed): homes spread across the nodes by rendezvous
// hash, and SIGTERM evacuates members one at a time, live-migrating
// their parked sessions to the survivors before shutdown.
//
// A plain-text metrics page (internal/metrics) is served on -metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"syscall"
	"time"

	"uniint"
	"uniint/internal/appliance"
	"uniint/internal/core"
	"uniint/internal/device"
	"uniint/internal/fed"
	"uniint/internal/hub"
	"uniint/internal/metrics"
	"uniint/internal/trace"
	"uniint/internal/workload"
)

func main() {
	listen := flag.String("listen", ":5900", "address serving preamble-routed universal interaction connections")
	metricsListen := flag.String("metrics", ":9190", "plain-text metrics endpoint address (empty disables)")
	homes := flag.Int("homes", 64, "homes to pre-admit at startup")
	classes := flag.String("appliances", "tv,lamp", "comma-separated appliance classes per home")
	shards := flag.Int("shards", 64, "registry shard count (rounded up to a power of two)")
	maxHomes := flag.Int("max-homes", 0, "resident home cap (0 = unlimited)")
	idle := flag.Duration("idle", 10*time.Minute, "evict homes idle this long (0 disables)")
	width := flag.Int("width", 320, "per-home desktop width")
	height := flag.Int("height", 240, "per-home desktop height")
	drainTimeout := flag.Duration("drain", 5*time.Second, "graceful drain window on shutdown")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the metrics address")
	pprofMutex := flag.Int("pprof-mutex", 0, "mutex profile fraction (runtime.SetMutexProfileFraction; 0 disables)")
	pprofBlock := flag.Int("pprof-block", 0, "block profile rate in ns (runtime.SetBlockProfileRate; 0 disables)")
	traceSample := flag.Int("trace-sample", 0, "trace 1 in N accepted interactions (rounded up to a power of two; 0 disables)")
	traceSlow := flag.Duration("trace-slow", 0, "log a per-stage breakdown for traced interactions slower than this (0 disables)")
	demo := flag.Bool("demo", false, "run the multi-home demo workload in process, print metrics, exit")
	demoDevices := flag.Int("demo-devices", 2, "interaction devices per home in -demo")
	demoSteps := flag.Int("demo-steps", 30, "scripted interactions per device in -demo")
	peers := flag.String("peers", "", "comma-separated federation member names: run a hub-of-hubs of in-process nodes behind one router (empty: single hub)")
	flag.Parse()

	if err := run(config{
		listen: *listen, metricsListen: *metricsListen,
		homes: *homes, classes: *classes, shards: *shards,
		maxHomes: *maxHomes, idle: *idle,
		width: *width, height: *height, drainTimeout: *drainTimeout,
		pprof: *pprofFlag, pprofMutex: *pprofMutex, pprofBlock: *pprofBlock,
		traceSample: *traceSample, traceSlow: *traceSlow,
		demo: *demo, demoDevices: *demoDevices, demoSteps: *demoSteps,
		peers: *peers,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "unihub:", err)
		os.Exit(1)
	}
}

type config struct {
	listen, metricsListen string
	homes, shards         int
	classes               string
	maxHomes              int
	idle                  time.Duration
	width, height         int
	drainTimeout          time.Duration
	pprof                 bool
	pprofMutex            int
	pprofBlock            int
	traceSample           int
	traceSlow             time.Duration
	demo                  bool
	demoDevices           int
	demoSteps             int
	peers                 string
}

// homeFactory builds one household's full stack per admission. All homes
// share one content-addressed tile cache: the hub's homes render nearly
// identical control panels, so after the first home encodes a widget body
// every other home's session ships an 8-byte reference to it.
func homeFactory(classes []string, w, h int) hub.Factory {
	tiles := uniint.NewTileCache(0)
	return func(homeID string) (hub.Host, error) {
		apps := make([]appliance.Appliance, 0, len(classes))
		for i, class := range classes {
			a, err := appliance.New(class, fmt.Sprintf("%s/%s-%d", homeID, class, i))
			if err != nil {
				return nil, err
			}
			apps = append(apps, a)
		}
		return uniint.NewSessionForHub(uniint.Options{
			Width: w, Height: h, Name: homeID, Appliances: apps,
			Tiles: tiles,
		})
	}
}

func splitClasses(s string) []string {
	var out []string
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}

func run(cfg config) error {
	classes := splitClasses(cfg.classes)
	if len(classes) == 0 {
		return fmt.Errorf("no appliance classes")
	}
	if cfg.traceSample > 0 {
		trace.SetSampling(cfg.traceSample)
		fmt.Printf("tracing 1 in %d interactions\n", trace.Sampling())
	}
	if cfg.traceSlow > 0 {
		trace.SetSlowLog(os.Stderr, cfg.traceSlow)
	}
	if cfg.pprofMutex > 0 {
		runtime.SetMutexProfileFraction(cfg.pprofMutex)
	}
	if cfg.pprofBlock > 0 {
		runtime.SetBlockProfileRate(cfg.pprofBlock)
	}
	if cfg.peers != "" {
		if cfg.demo {
			return fmt.Errorf("-demo runs a single hub; drop -peers")
		}
		return runFederated(cfg, classes)
	}
	h, err := hub.New(hub.Options{
		Factory:     homeFactory(classes, cfg.width, cfg.height),
		Shards:      cfg.shards,
		MaxHomes:    cfg.maxHomes,
		IdleTimeout: cfg.idle,
	})
	if err != nil {
		return err
	}
	defer h.Close()

	start := time.Now()
	for i := 0; i < cfg.homes; i++ {
		if _, err := h.Admit(workload.HomeID(i)); err != nil {
			return fmt.Errorf("pre-admit %s: %w", workload.HomeID(i), err)
		}
	}
	fmt.Printf("hosting %d homes (%s each) after %v\n",
		h.Homes(), cfg.classes, time.Since(start).Round(time.Millisecond))

	if cfg.demo {
		return runDemo(h, cfg)
	}

	if cfg.metricsListen != "" {
		mln, err := serveMetrics(cfg, func() map[string]any {
			return healthz(h.Homes(), h.Connections(), start)
		})
		if err != nil {
			return err
		}
		defer mln.Close()
	}

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	fmt.Printf("routing universal interaction connections on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- h.Serve(ln) }()
	select {
	case <-sig:
		fmt.Println("\ndraining")
		ln.Close()
		if err := h.Drain(cfg.drainTimeout); err != nil {
			fmt.Println(err)
		}
		<-serveErr
		return nil
	case err := <-serveErr:
		return err
	}
}

// runFederated runs the hub-of-hubs: one in-process hub node per -peers
// name behind a fed.Cluster front router on -listen. Homes pre-admit on
// their rendezvous owner; all nodes share one tile cache through the
// common factory, so cross-home deduplication spans the federation. On
// SIGTERM every member evacuates through the cluster in turn — the live
// deploy-drain path — and the survivors' hubs then drain normally.
func runFederated(cfg config, classes []string) error {
	names := splitClasses(cfg.peers)
	if len(names) == 0 {
		return fmt.Errorf("no federation members in -peers")
	}
	cluster := fed.NewCluster(fed.Options{})
	factory := homeFactory(classes, cfg.width, cfg.height)
	hubs := make(map[string]*hub.Hub, len(names))
	for _, name := range names {
		h, err := hub.New(hub.Options{
			Factory:     factory,
			Shards:      cfg.shards,
			MaxHomes:    cfg.maxHomes,
			IdleTimeout: cfg.idle,
		})
		if err != nil {
			return err
		}
		defer h.Close()
		hubs[name] = h
		if err := cluster.AddNode(name, h); err != nil {
			return err
		}
	}

	start := time.Now()
	for i := 0; i < cfg.homes; i++ {
		id := workload.HomeID(i)
		owner, ok := cluster.Owner(id)
		if !ok {
			return fmt.Errorf("no ring owner for %s", id)
		}
		if _, err := hubs[owner].Admit(id); err != nil {
			return fmt.Errorf("pre-admit %s on %s: %w", id, owner, err)
		}
	}
	fmt.Printf("federating %d homes (%s each) across %d nodes (%s) after %v\n",
		cfg.homes, cfg.classes, len(names), cfg.peers,
		time.Since(start).Round(time.Millisecond))

	if cfg.metricsListen != "" {
		// The federation probe sums residency across members and names
		// each member's share — the first thing to look at when the ring
		// is suspected of skewing.
		mln, err := serveMetrics(cfg, func() map[string]any {
			homes, conns := 0, int64(0)
			members := make(map[string]any, len(hubs))
			for name, h := range hubs {
				homes += h.Homes()
				conns += h.Connections()
				members[name] = map[string]any{
					"homes": h.Homes(), "connections": h.Connections(),
				}
			}
			out := healthz(homes, conns, start)
			out["federation"] = members
			return out
		})
		if err != nil {
			return err
		}
		defer mln.Close()
	}

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	fmt.Printf("routing universal interaction connections on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- cluster.Serve(ln) }()
	select {
	case <-sig:
		fmt.Println("\ndraining federation")
		ln.Close()
		// Evacuate members one by one — each drain live-migrates its
		// sessions to the survivors, exactly like a rolling deploy. The
		// last member has nowhere to ship to; its hub drains in place.
		for _, name := range names[:len(names)-1] {
			if err := cluster.Drain(name); err != nil {
				fmt.Println(err)
			}
		}
		if err := hubs[names[len(names)-1]].Drain(cfg.drainTimeout); err != nil {
			fmt.Println(err)
		}
		snap := metrics.Default().Snapshot()
		fmt.Printf("federation drained: %d home migrations (%d session-record bytes)\n",
			snap.Counters["fed_migrations_total"], snap.Counters["fed_migration_bytes_total"])
		<-serveErr
		return nil
	case err := <-serveErr:
		return err
	}
}

// mServerGoroutines tracks the process goroutine count, sampled whenever
// /metrics or /healthz renders. Under the budgeted event runtime it should
// track the worker budget, not the session count — a divergence here is
// the first sign of a leaked per-session goroutine.
var mServerGoroutines = metrics.Default().Gauge("server_goroutines")

// serveMetrics starts the observability listener: /metrics with content
// negotiation (JSON for tooling that asks for it, the Prometheus
// exposition format — same sample lines as the old plain-text page plus
// # TYPE headers and exemplars — for everything else), /healthz fed by
// the caller's probe closure (single-hub and federated mode summarize
// residency differently), the trace handler, and optionally pprof.
// The caller closes the returned listener on shutdown.
func serveMetrics(cfg config, hz func() map[string]any) (net.Listener, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		mServerGoroutines.Set(int64(runtime.NumGoroutine()))
		if strings.Contains(r.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = metrics.Default().WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = metrics.Default().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(hz())
	})
	mux.Handle("/debug/uniint/trace", trace.Handler())
	if cfg.pprof {
		// Profiling rides the metrics mux: `go tool pprof
		// http://host:9190/debug/pprof/profile` against a live hub.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mln, err := net.Listen("tcp", cfg.metricsListen)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	go func() { _ = http.Serve(mln, mux) }() // goroutine-ok: http.Serve blocks for the process lifetime
	fmt.Printf("metrics on http://%s/metrics\n", mln.Addr())
	if cfg.pprof {
		fmt.Printf("pprof on http://%s/debug/pprof/\n", mln.Addr())
	}
	return mln, nil
}

// healthz summarizes liveness for probes: uptime, residency, connection
// and session counts, detach-lot depth, scheduler saturation (worker
// budget, run-queue depth, goroutine count) and the build that is running.
func healthz(homes int, connections int64, start time.Time) map[string]any {
	mServerGoroutines.Set(int64(runtime.NumGoroutine()))
	snap := metrics.Default().Snapshot()
	out := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(start).Seconds(),
		"homes":          homes,
		"connections":    connections,
		"sessions":       snap.Gauges["server_sessions"],
		"parked":         snap.Gauges["session_parked"],
		"queue_depth":    snap.Gauges["input_queue_depth"],
		"goroutines":     snap.Gauges["server_goroutines"],
		"sched": map[string]any{
			"workers":      snap.Gauges["sched_workers"],
			"run_queue":    snap.Gauges["sched_queue_depth"],
			"turns":        snap.Counters["sched_turns_total"],
			"wheel_timers": snap.Gauges["sched_wheel_timers"],
		},
		"go_version":     runtime.Version(),
		"trace_sampling": trace.Sampling(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		build := map[string]string{"path": bi.Main.Path, "version": bi.Main.Version}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				build[s.Key] = s.Value
			}
		}
		out["build"] = build
	}
	return out
}

// runDemo drives the M homes × K devices workload through in-process
// pipes — the zero-network proof that one process serves the whole load —
// then prints the metrics the run produced.
func runDemo(h *hub.Hub, cfg config) error {
	loads := workload.MultiHome(workload.MultiHomeConfig{
		Homes:          cfg.homes,
		DevicesPerHome: cfg.demoDevices,
		StepsPerDevice: cfg.demoSteps,
		Seed:           1,
	})
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.homes*cfg.demoDevices)
	for _, home := range loads {
		for _, dev := range home.Devices {
			wg.Add(1)
			go func(homeID, devID string, script workload.Script) {
				defer wg.Done()
				if err := runDevice(h, homeID, devID, script); err != nil {
					errs <- fmt.Errorf("%s/%s: %w", homeID, devID, err)
				}
			}(home.HomeID, dev.DeviceID, dev.Script)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	elapsed := time.Since(start)

	steps := 0
	for _, l := range loads {
		steps += l.Steps()
	}
	fmt.Printf("demo: %d homes × %d devices × %d steps (%d interactions) in %v\n",
		cfg.homes, cfg.demoDevices, cfg.demoSteps, steps, elapsed.Round(time.Millisecond))
	fmt.Println("-- metrics --")
	return metrics.Default().WriteText(os.Stdout) // includes hub/proxy/server counters
}

// runDevice connects one phone to its home through the hub's routing
// path and replays its script.
func runDevice(h *hub.Hub, homeID, devID string, script workload.Script) error {
	client, server := net.Pipe()
	routeDone := make(chan error, 1)
	go func() { routeDone <- h.ServeConn(server) }()
	// Whatever happens below, tear the transport down and wait for the
	// routing goroutine — a leaked connection pins the home forever.
	defer func() {
		client.Close()
		<-routeDone
	}()
	if err := hub.WritePreamble(client, homeID); err != nil {
		return err
	}
	proxy, err := core.Dial(client)
	if err != nil {
		return err
	}
	phone := device.NewPhone(devID)
	defer phone.Close()
	proxyDone := make(chan error, 1)
	go func() { proxyDone <- proxy.Run() }()
	defer func() {
		proxy.Close()
		<-proxyDone
	}()
	if err := proxy.AttachInput(phone); err != nil {
		return err
	}
	if err := proxy.SelectInput(devID); err != nil {
		return err
	}
	for _, st := range script {
		phone.PressKey(st.Arg)
	}
	// Let the pipeline absorb the tail of the script: each key press is
	// press+release, i.e. two universal events.
	want := int64(2 * len(script))
	deadline := time.Now().Add(10 * time.Second)
	for proxy.Stats().UniversalSent < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	return nil
}
