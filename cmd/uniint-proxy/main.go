// Command uniint-proxy is the user-side daemon: the UniInt proxy with a
// set of simulated interaction devices and an interactive console for
// driving them. It connects to a uniintd server over TCP, or — with
// -home — to one household of a multi-home unihub.
//
//	uniint-proxy -server localhost:5900
//	uniint-proxy -server localhost:5900 -home home-0007
//
// Console commands:
//
//	devices                      list attached devices and the selection
//	in <id> | out <id>           select input/output device
//	key <name>                   phone keypad (0-9, *, #, up, down, ok)
//	say <words...>               voice utterance
//	press <button>               remote button (up/down/left/right/ok/back)
//	tap <x> <y>                  PDA stylus tap (PDA coordinates)
//	stroke <name>                gesture (tap, swipe_up, swipe_down, ...)
//	situation <loc> <activity> [hands] [seated]   drive the rule engine
//	show                         render the selected output's last frame
//	stats                        proxy counters
//	session                      resume token, reconnect/resume counters
//	quit
//
// The connection is supervised: when the link drops, the console keeps
// working while the proxy redials, presents its resume token, and
// reclaims the parked server-side session (an incremental resync rather
// than a full repaint). `session` shows how often that happened.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"uniint/internal/core"
	"uniint/internal/device"
	"uniint/internal/gfx"
	"uniint/internal/hub"
	"uniint/internal/situation"
	"uniint/internal/trace"
)

func main() {
	server := flag.String("server", "localhost:5900", "uniintd or unihub address")
	home := flag.String("home", "", "home ID when the server is a multi-home unihub")
	// Interaction trace ids are minted proxy-side, where the device event
	// is accepted — sampling must be enabled here for the server's spans
	// (and the hub's /debug/uniint/trace export) to see any interactions.
	traceSample := flag.Int("trace-sample", 0, "trace 1 in N interactions end to end (0: off)")
	flag.Parse()
	trace.SetSampling(*traceSample)
	if err := run(*server, *home); err != nil {
		fmt.Fprintln(os.Stderr, "uniint-proxy:", err)
		os.Exit(1)
	}
}

func run(addr, home string) error {
	dial := func() (net.Conn, error) {
		if home != "" {
			return hub.DialHome(addr, home) // sends the routing preamble
		}
		return net.Dial("tcp", addr)
	}
	sup, err := core.NewSupervisor(dial, core.WithBackoff(500*time.Millisecond))
	if err != nil {
		return err
	}
	defer sup.Close()

	w, h := sup.Proxy().Client().Size()
	fmt.Printf("connected to %q (%dx%d desktop)\n", sup.Proxy().Client().Name(), w, h)

	// The standard device set travels with the user.
	pda := device.NewPDA("pda")
	phone := device.NewPhone("phone")
	voice := device.NewVoiceInput("voice")
	remote := device.NewRemoteControl("remote")
	gesture := device.NewGestureInput("gesture")
	tv := device.NewTVDisplay("tv")
	defer pda.Close()
	defer phone.Close()
	defer voice.Close()
	defer remote.Close()
	defer gesture.Close()
	for _, in := range []core.InputDevice{pda, phone, voice, remote, gesture} {
		if err := sup.AttachInput(in); err != nil {
			return err
		}
	}
	for _, out := range []core.OutputDevice{pda, phone, tv} {
		if err := sup.AttachOutput(out); err != nil {
			return err
		}
	}
	if err := sup.SelectInput("pda"); err != nil {
		return err
	}
	if err := sup.SelectOutput("pda"); err != nil {
		return err
	}
	engine := situation.NewEngine(sup, situation.DefaultRules())

	latest := func() (core.Frame, bool) {
		switch sup.Proxy().ActiveOutput() {
		case "pda":
			return pda.Latest(), true
		case "phone":
			return phone.Latest(), true
		case "tv":
			return tv.Latest(), true
		}
		return core.Frame{}, false
	}

	fmt.Println("type 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	lastReconnects := int64(0)
	for {
		if n := sup.Reconnects(); n != lastReconnects {
			fmt.Printf("(link dropped; reconnected ×%d, session resumes ×%d)\n", n, sup.Resumes())
			lastReconnects = n
		}
		fmt.Printf("[in=%s out=%s]> ", sup.Proxy().ActiveInput(), sup.Proxy().ActiveOutput())
		if !sc.Scan() {
			return sc.Err()
		}
		// Re-resolve after the (blocking) read: the supervisor may have
		// swapped in a reconnected proxy while the console sat at the
		// prompt.
		proxy := sup.Proxy()
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "quit", "exit":
			return nil
		case "help":
			fmt.Println("devices | in <id> | out <id> | mirror <id> | unmirror <id> | key <k> |" +
				" say <...> | press <b> | tap <x> <y> | stroke <s> |" +
				" situation <loc> <act> [hands] [seated] | show | stats | session | quit")
		case "devices":
			fmt.Println("inputs: ", proxy.InputIDs())
			fmt.Println("outputs:", proxy.OutputIDs())
		case "in":
			if len(args) == 1 {
				reportErr(sup.SelectInput(args[0]))
			}
		case "out":
			if len(args) == 1 {
				reportErr(sup.SelectOutput(args[0]))
			}
		case "mirror":
			if len(args) == 1 {
				reportErr(proxy.AddMirror(args[0]))
			}
		case "unmirror":
			if len(args) == 1 {
				proxy.RemoveMirror(args[0])
			}
		case "key":
			for _, k := range args {
				phone.PressKey(k)
			}
		case "say":
			voice.Say(strings.Join(args, " "))
		case "press":
			for _, b := range args {
				remote.Press(b)
			}
		case "tap":
			if len(args) == 2 {
				x, _ := strconv.Atoi(args[0])
				y, _ := strconv.Atoi(args[1])
				pda.Tap(x, y)
			}
		case "stroke":
			for _, s := range args {
				gesture.EmitStroke(s)
			}
		case "situation":
			if len(args) < 2 {
				fmt.Println("usage: situation <location> <activity> [hands] [seated]")
				continue
			}
			s := situation.Situation{Location: args[0], Activity: args[1]}
			if len(args) > 2 && args[2] == "hands" {
				s.HandsBusy = true
			}
			if len(args) > 3 && args[3] == "seated" {
				s.Seated = true
			}
			d := engine.SetSituation(s)
			fmt.Printf("decision: input %q (%s) output %q (%s)\n",
				d.InputClass, d.InputRule, d.OutputClass, d.OutputRule)
		case "show":
			f, ok := latest()
			if !ok || f.Seq == 0 {
				fmt.Println("no frame yet")
				continue
			}
			if f.Bits != nil {
				fmt.Print(gfx.AsciiBitmap(f.Bits))
			} else {
				fmt.Print(gfx.Ascii(f.RGB, 100))
			}
		case "stats":
			st := proxy.Stats()
			fmt.Printf("%+v\n", st)
		case "session":
			fmt.Printf("token %s  reconnects %d  resumes %d  resumed-now %v\n",
				proxy.SessionToken(), sup.Reconnects(), sup.Resumes(), proxy.Resumed())
		default:
			fmt.Printf("unknown command %q (try 'help')\n", cmd)
		}
	}
}

func reportErr(err error) {
	if err != nil {
		fmt.Println("error:", err)
	}
}
