// Command uniint-proxy is the user-side daemon: the UniInt proxy with a
// set of simulated interaction devices and an interactive console for
// driving them. It connects to a uniintd server over TCP, or — with
// -home — to one household of a multi-home unihub.
//
//	uniint-proxy -server localhost:5900
//	uniint-proxy -server localhost:5900 -home home-0007
//
// Console commands:
//
//	devices                      list attached devices and the selection
//	in <id> | out <id>           select input/output device
//	key <name>                   phone keypad (0-9, *, #, up, down, ok)
//	say <words...>               voice utterance
//	press <button>               remote button (up/down/left/right/ok/back)
//	tap <x> <y>                  PDA stylus tap (PDA coordinates)
//	stroke <name>                gesture (tap, swipe_up, swipe_down, ...)
//	situation <loc> <activity> [hands] [seated]   drive the rule engine
//	show                         render the selected output's last frame
//	stats                        proxy counters
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"

	"uniint/internal/core"
	"uniint/internal/device"
	"uniint/internal/gfx"
	"uniint/internal/hub"
	"uniint/internal/situation"
)

func main() {
	server := flag.String("server", "localhost:5900", "uniintd or unihub address")
	home := flag.String("home", "", "home ID when the server is a multi-home unihub")
	flag.Parse()
	if err := run(*server, *home); err != nil {
		fmt.Fprintln(os.Stderr, "uniint-proxy:", err)
		os.Exit(1)
	}
}

func run(addr, home string) error {
	var conn net.Conn
	var err error
	if home != "" {
		conn, err = hub.DialHome(addr, home) // sends the routing preamble
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		return err
	}
	proxy, err := core.Dial(conn)
	if err != nil {
		return err
	}
	defer proxy.Close()
	runErr := make(chan error, 1)
	go func() { runErr <- proxy.Run() }()

	w, h := proxy.Client().Size()
	fmt.Printf("connected to %q (%dx%d desktop)\n", proxy.Client().Name(), w, h)

	// The standard device set travels with the user.
	pda := device.NewPDA("pda")
	phone := device.NewPhone("phone")
	voice := device.NewVoiceInput("voice")
	remote := device.NewRemoteControl("remote")
	gesture := device.NewGestureInput("gesture")
	tv := device.NewTVDisplay("tv")
	defer pda.Close()
	defer phone.Close()
	defer voice.Close()
	defer remote.Close()
	defer gesture.Close()
	for _, in := range []core.InputDevice{pda, phone, voice, remote, gesture} {
		if err := proxy.AttachInput(in); err != nil {
			return err
		}
	}
	for _, out := range []core.OutputDevice{pda, phone, tv} {
		if err := proxy.AttachOutput(out); err != nil {
			return err
		}
	}
	if err := proxy.SelectInput("pda"); err != nil {
		return err
	}
	if err := proxy.SelectOutput("pda"); err != nil {
		return err
	}
	engine := situation.NewEngine(proxy, situation.DefaultRules())

	latest := func() (core.Frame, bool) {
		switch proxy.ActiveOutput() {
		case "pda":
			return pda.Latest(), true
		case "phone":
			return phone.Latest(), true
		case "tv":
			return tv.Latest(), true
		}
		return core.Frame{}, false
	}

	fmt.Println("type 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("[in=%s out=%s]> ", proxy.ActiveInput(), proxy.ActiveOutput())
		if !sc.Scan() {
			return sc.Err()
		}
		select {
		case err := <-runErr:
			return fmt.Errorf("connection lost: %w", err)
		default:
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "quit", "exit":
			return nil
		case "help":
			fmt.Println("devices | in <id> | out <id> | mirror <id> | unmirror <id> | key <k> |" +
				" say <...> | press <b> | tap <x> <y> | stroke <s> |" +
				" situation <loc> <act> [hands] [seated] | show | stats | quit")
		case "devices":
			fmt.Println("inputs: ", proxy.InputIDs())
			fmt.Println("outputs:", proxy.OutputIDs())
		case "in":
			if len(args) == 1 {
				reportErr(proxy.SelectInput(args[0]))
			}
		case "out":
			if len(args) == 1 {
				reportErr(proxy.SelectOutput(args[0]))
			}
		case "mirror":
			if len(args) == 1 {
				reportErr(proxy.AddMirror(args[0]))
			}
		case "unmirror":
			if len(args) == 1 {
				proxy.RemoveMirror(args[0])
			}
		case "key":
			for _, k := range args {
				phone.PressKey(k)
			}
		case "say":
			voice.Say(strings.Join(args, " "))
		case "press":
			for _, b := range args {
				remote.Press(b)
			}
		case "tap":
			if len(args) == 2 {
				x, _ := strconv.Atoi(args[0])
				y, _ := strconv.Atoi(args[1])
				pda.Tap(x, y)
			}
		case "stroke":
			for _, s := range args {
				gesture.EmitStroke(s)
			}
		case "situation":
			if len(args) < 2 {
				fmt.Println("usage: situation <location> <activity> [hands] [seated]")
				continue
			}
			s := situation.Situation{Location: args[0], Activity: args[1]}
			if len(args) > 2 && args[2] == "hands" {
				s.HandsBusy = true
			}
			if len(args) > 3 && args[3] == "seated" {
				s.Seated = true
			}
			d := engine.SetSituation(s)
			fmt.Printf("decision: input %q (%s) output %q (%s)\n",
				d.InputClass, d.InputRule, d.OutputClass, d.OutputRule)
		case "show":
			f, ok := latest()
			if !ok || f.Seq == 0 {
				fmt.Println("no frame yet")
				continue
			}
			if f.Bits != nil {
				fmt.Print(gfx.AsciiBitmap(f.Bits))
			} else {
				fmt.Print(gfx.Ascii(f.RGB, 100))
			}
		case "stats":
			st := proxy.Stats()
			fmt.Printf("%+v\n", st)
		default:
			fmt.Printf("unknown command %q (try 'help')\n", cmd)
		}
	}
}

func reportErr(err error) {
	if err != nil {
		fmt.Println("error:", err)
	}
}
