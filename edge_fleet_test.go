package uniint_test

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"uniint"
	"uniint/internal/hub"
	"uniint/internal/leakcheck"
	"uniint/internal/metrics"
	"uniint/internal/workload"
)

// TestHubThousandIdleEdgeSessions is the acceptance test for the budgeted
// event runtime: one hub hosting 1000 idle edge sessions across 10 homes
// on a 4-worker pool, with the process goroutine count independent of the
// session count. Every session is attached through hub.AttachEdge over a
// goroutine-free event pipe (workload.IdleFleet), so any per-session
// goroutine anywhere in the stack fails the bounded assertion.
func TestHubThousandIdleEdgeSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-session fleet")
	}
	leakcheck.Check(t, 0)
	const homes, sessions, workers = 10, 1000, 4

	pool := uniint.NewWorkerPool(workers)
	defer pool.Close()
	h, err := hub.New(hub.Options{
		Factory: func(homeID string) (hub.Host, error) {
			return uniint.NewSessionForHub(uniint.Options{
				Width: 64, Height: 48, Name: homeID,
				Pool: pool,
			})
		},
		Pool:    pool,
		Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Build the households first: homes own legitimate goroutines
	// (middleware delivery, appliance simulators), and those must not be
	// charged to the per-session budget under test.
	ids := make([]string, homes)
	for i := range ids {
		ids[i] = fmt.Sprintf("home-%03d", i)
		if _, err := h.Admit(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	base := runtime.NumGoroutine()

	i := 0
	clients, err := workload.IdleFleet(sessions, func(conn net.Conn) error {
		id := ids[i%homes]
		i++
		return h.AttachEdge(id, conn)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Homes(); got != homes {
		t.Fatalf("Homes() = %d, want %d", got, homes)
	}
	if got := h.Connections(); got != int64(sessions) {
		t.Fatalf("Conns() = %d, want %d", got, sessions)
	}

	// The claim under test: 1000 idle sessions add no goroutines beyond
	// transient pool turns. The bound is a small constant over the
	// pre-fleet baseline — nothing proportional to the session count.
	leakcheck.Assert(t, base+8, "1k idle hub edge sessions")

	// Disconnect the fleet; every unpin must land so hub accounting
	// returns to zero and Close does not spin on phantom connections.
	for _, c := range clients {
		c.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for h.Connections() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Conns() = %d after fleet close", h.Connections())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHubAttachEdgeUnknownFallbacks exercises the edge attach error paths:
// a home type without edge support and a non-readiness connection.
func TestHubAttachEdgeErrors(t *testing.T) {
	h, err := hub.New(hub.Options{
		Factory: func(string) (hub.Host, error) { return hub.AdaptConnHandler(plainHome{}), nil },
		Metrics: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	a, b := net.Pipe()
	defer a.Close()
	if err := h.AttachEdge("x", b); err != hub.ErrNoEdge {
		t.Fatalf("AttachEdge on non-edge home = %v, want ErrNoEdge", err)
	}
}

type plainHome struct{}

func (plainHome) HandleConn(conn net.Conn) error { conn.Close(); return nil }
func (plainHome) Close()                         {}
