package uniint

// Input-pipeline benchmarks (the up-path counterpart of the E2b update
// benchmarks): client-side event batching, proxy-side move coalescing,
// and the server-side queue/dispatch path under a pointer-move flood.
//
//	BenchmarkInputBatch     one wire write per event vs per 64-event batch
//	BenchmarkInputCoalesce  proxy InjectBatch collapsing a drag flood
//	BenchmarkInputFlood     flood vs a slow appliance: coalesced dispatch,
//	                        0 allocs/op, updates/op ≪ events/op
//	BenchmarkE2bInput       InputStorm across M hub-hosted homes, e2e

import (
	"fmt"
	"net"
	"testing"
	"time"

	"uniint/internal/core"
	"uniint/internal/gfx"
	"uniint/internal/hub"
	"uniint/internal/metrics"
	"uniint/internal/rfb"
	"uniint/internal/toolkit"
	"uniint/internal/uniserver"
	"uniint/internal/workload"
)

// discardHandler is a protocol server endpoint that accepts everything
// and does nothing — the input write path in isolation.
type discardHandler struct{}

func (discardHandler) KeyEvent(rfb.KeyEvent)           {}
func (discardHandler) PointerEvent(rfb.PointerEvent)   {}
func (discardHandler) UpdateRequest(rfb.UpdateRequest) {}
func (discardHandler) CutText(string)                  {}

// discardServerClient returns a handshaked client whose peer discards
// all traffic.
func discardServerClient(b *testing.B) *rfb.ClientConn {
	b.Helper()
	sc, cc := net.Pipe()
	go func() {
		s, err := rfb.NewServerConn(sc, 640, 480, "discard")
		if err != nil {
			return
		}
		_ = s.Serve(discardHandler{})
	}()
	client, err := rfb.Dial(cc)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	return client
}

// BenchmarkInputBatch isolates the client write path: one transport
// write per event versus one per 64-event batch. The gap is the syscall
// amortization a translated burst gets for free.
func BenchmarkInputBatch(b *testing.B) {
	ev := rfb.InputEvent{IsPointer: true, Pointer: rfb.PointerEvent{Buttons: 1, X: 10, Y: 20}}
	b.Run("single", func(b *testing.B) {
		client := discardServerClient(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := client.SendPointer(ev.Pointer); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch64", func(b *testing.B) {
		client := discardServerClient(b)
		evs := make([]rfb.InputEvent, 64)
		for i := range evs {
			evs[i] = ev
			evs[i].Pointer.X = uint16(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += len(evs) {
			n := len(evs)
			if rest := b.N - i; rest < n {
				n = rest
			}
			if err := client.WriteEvents(evs[:n]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// stormPlugin is a zero-allocation input plug-in: it translates the raw
// pointer vocabulary into universal events on a reused slice (legal: the
// proxy consumes the slice before the next Translate).
type stormPlugin struct {
	out [1]core.UniEvent
}

func (p *stormPlugin) Name() string  { return "storm" }
func (p *stormPlugin) Bind(w, h int) {}
func (p *stormPlugin) Translate(ev core.RawEvent) []core.UniEvent {
	var mask uint8
	if ev.Down {
		mask = 1
	}
	p.out[0] = core.PointerTo(ev.X, ev.Y, mask)
	return p.out[:]
}

// stormDevice pairs the plug-in with an inert event channel (benchmarks
// drive it through InjectBatch).
type stormDevice struct {
	id string
	pl *stormPlugin
	ch chan core.RawEvent
}

func (d *stormDevice) ID() string                    { return d.id }
func (d *stormDevice) Class() string                 { return "storm" }
func (d *stormDevice) InputPlugin() core.InputPlugin { return d.pl }
func (d *stormDevice) Events() <-chan core.RawEvent  { return d.ch }

// BenchmarkInputCoalesce measures the proxy coalescer on a drag burst:
// press + 62 intermediate moves + release injected as one batch. The
// burst collapses to 3 wire events and one transport write; steady state
// allocates nothing.
func BenchmarkInputCoalesce(b *testing.B) {
	client := discardServerClient(b)
	proxy := core.NewProxy(client)
	dev := &stormDevice{id: "storm-1", pl: &stormPlugin{}, ch: make(chan core.RawEvent)}
	if err := proxy.AttachInput(dev); err != nil {
		b.Fatal(err)
	}
	if err := proxy.SelectInput("storm-1"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(proxy.Close)

	burst := make([]core.RawEvent, 64)
	burst[0] = core.RawEvent{Kind: "ptr", X: 0, Y: 50, Down: true}
	for i := 1; i < 63; i++ {
		burst[i] = core.RawEvent{Kind: "ptr", X: i * 4, Y: 50, Down: true}
	}
	burst[63] = core.RawEvent{Kind: "ptr", X: 255, Y: 50, Down: false}

	if err := proxy.InjectBatch("storm-1", burst); err != nil { // warm
		b.Fatal(err)
	}
	st0 := proxy.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := proxy.InjectBatch("storm-1", burst); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := proxy.Stats()
	n := float64(b.N)
	b.ReportMetric(float64(len(burst)), "events/op")
	b.ReportMetric(float64(st.UniversalSent-st0.UniversalSent)/n, "forwarded/op")
	b.ReportMetric(float64(st.EventsCoalesced-st0.EventsCoalesced)/n, "coalesced/op")
	b.ReportMetric(float64(st.BatchesFlushed-st0.BatchesFlushed)/n, "writes/op")
}

// BenchmarkInputFlood is the acceptance benchmark for the input→update
// control pipeline: a pointer-move flood drags a slider whose appliance
// reaction is slow (50µs per change, a HAVi round-trip stand-in). One op
// is one move written to the wire. The read loop absorbs the flood, the
// per-session queue coalesces it under the backpressure, and dispatch +
// updates land at a small fraction of the event rate with zero
// steady-state allocations.
func BenchmarkInputFlood(b *testing.B) {
	display := toolkit.NewDisplay(320, 240)
	slider := toolkit.NewSlider("drag", 0, 99, 50, func(int) {
		time.Sleep(50 * time.Microsecond) // slow appliance reaction
	})
	root := toolkit.NewPanel(toolkit.VBox{Gap: 4, Padding: 6})
	root.Add(slider)
	display.SetRoot(root)
	display.Render()

	srv := uniserver.New(display, "flood")
	defer srv.Close()
	sc, cc := net.Pipe()
	go srv.HandleConn(sc)
	client, err := rfb.Dial(cc)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	full := gfx.R(0, 0, 320, 240)
	go client.Run(rearmHandler{client: client, region: full})
	if err := client.RequestUpdate(false, full); err != nil {
		b.Fatal(err)
	}

	reg := metrics.Default()
	queued := reg.Counter("input_queued_total")
	dispatched := reg.Counter("input_dispatched_total")
	coalesced := reg.Counter("input_coalesced_total")
	updates := reg.Counter("server_updates_sent_total")
	drainTo := func(disp0, coal0, target int64) {
		for dispatched.Value()-disp0+coalesced.Value()-coal0 < target {
			time.Sleep(50 * time.Microsecond)
		}
	}

	// Grab the slider; every subsequent move is a drag.
	tb := slider.Bounds()
	cy := uint16(tb.Y + tb.H/2)
	disp0, coal0 := dispatched.Value(), coalesced.Value()
	press := []rfb.InputEvent{{IsPointer: true, Pointer: rfb.PointerEvent{
		Buttons: 1, X: uint16(tb.X + 8), Y: cy}}}
	if err := client.WriteEvents(press); err != nil {
		b.Fatal(err)
	}

	var sent int64 = 1
	batch := make([]rfb.InputEvent, 0, 32)
	seq := 0
	move := func() {
		seq++
		batch = append(batch, rfb.InputEvent{IsPointer: true, Pointer: rfb.PointerEvent{
			Buttons: 1, X: uint16(tb.X + 8 + seq%(tb.W-16)), Y: cy}})
		if len(batch) == cap(batch) {
			if err := client.WriteEvents(batch); err != nil {
				b.Fatal(err)
			}
			sent += int64(len(batch))
			batch = batch[:0]
		}
	}
	// Warm the whole path (pools, queue storage, timers) and drain.
	for i := 0; i < 256; i++ {
		move()
	}
	if err := client.WriteEvents(batch); err != nil {
		b.Fatal(err)
	}
	sent += int64(len(batch))
	batch = batch[:0]
	drainTo(disp0, coal0, sent)

	q0, d0, c0, u0 := queued.Value(), dispatched.Value(), coalesced.Value(), updates.Value()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		move()
	}
	if len(batch) > 0 {
		if err := client.WriteEvents(batch); err != nil {
			b.Fatal(err)
		}
	}
	drainTo(d0, c0, int64(b.N))
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(queued.Value()-q0)/n, "events/op")
	b.ReportMetric(float64(dispatched.Value()-d0)/n, "dispatched/op")
	b.ReportMetric(float64(coalesced.Value()-c0)/n, "coalesced/op")
	b.ReportMetric(float64(updates.Value()-u0)/n, "updates/op")
}

// BenchmarkE2bInput drives the InputStorm workload end to end — wire →
// read loop → queue → dispatch → widget drag → damage → clipped repaint →
// adaptive encode — across M hub-hosted homes. One op is one storm step.
func BenchmarkE2bInput(b *testing.B) {
	for _, homes := range []int{1, 16} {
		b.Run(fmt.Sprintf("%d-homes", homes), func(b *testing.B) {
			sessions := make(map[string]*HubSession, homes)
			h, err := hub.New(hub.Options{
				Metrics: metrics.NewRegistry(),
				Factory: func(homeID string) (hub.Host, error) {
					s, err := NewSessionForHub(Options{Width: 320, Height: 240, Name: homeID})
					if err != nil {
						return nil, err
					}
					sessions[homeID] = s
					return s, nil
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()

			clients := make([]*rfb.ClientConn, homes)
			full := gfx.R(0, 0, 320, 240)
			for i := 0; i < homes; i++ {
				id := fmt.Sprintf("storm-home-%d", i)
				if _, err := h.Admit(id); err != nil {
					b.Fatal(err)
				}
				// Each home's panel: a column of sliders to drag.
				root := toolkit.NewPanel(toolkit.VBox{Gap: 4, Padding: 6})
				for j := 0; j < 4; j++ {
					root.Add(toolkit.NewSlider(fmt.Sprintf("ch %d", j), 0, 99, 50, nil))
				}
				sessions[id].Display.SetRoot(root)

				clientSide, serverSide := net.Pipe()
				go h.ServeConn(serverSide)
				if err := hub.WritePreamble(clientSide, id); err != nil {
					b.Fatal(err)
				}
				client, err := rfb.Dial(clientSide)
				if err != nil {
					b.Fatal(err)
				}
				defer client.Close()
				go client.Run(rearmHandler{client: client, region: full})
				if err := client.RequestUpdate(false, full); err != nil {
					b.Fatal(err)
				}
				clients[i] = client
			}

			reg := metrics.Default()
			queued := reg.Counter("input_queued_total")
			dispatched := reg.Counter("input_dispatched_total")
			coalesced := reg.Counter("input_coalesced_total")
			updates := reg.Counter("server_updates_sent_total")

			// The storm walks the upper half of the panel, where the
			// sliders are laid out.
			storm := workload.NewInputStorm(homes, 320, 120, 16, 23)
			wire := make([]rfb.InputEvent, 1)
			var sent int64
			step := func() {
				st := storm.Next()
				if st.Pointer() {
					wire[0] = rfb.InputEvent{IsPointer: true, Pointer: rfb.PointerEvent{
						Buttons: st.Buttons, X: uint16(st.X), Y: uint16(st.Y)}}
				} else {
					wire[0] = rfb.InputEvent{Key: rfb.KeyEvent{Down: st.Down, Key: st.Key}}
				}
				if err := clients[st.Home].WriteEvents(wire); err != nil {
					b.Fatal(err)
				}
				sent++
			}
			d0, c0 := dispatched.Value(), coalesced.Value()
			for i := 0; i < 128; i++ { // warm pools, queues, renderers
				step()
			}
			for dispatched.Value()-d0+coalesced.Value()-c0 < sent {
				time.Sleep(50 * time.Microsecond)
			}

			q0, u0 := queued.Value(), updates.Value()
			d0, c0 = dispatched.Value(), coalesced.Value()
			sent = 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
			for dispatched.Value()-d0+coalesced.Value()-c0 < sent {
				time.Sleep(50 * time.Microsecond)
			}
			b.StopTimer()
			n := float64(b.N)
			b.ReportMetric(float64(queued.Value()-q0)/n, "events/op")
			b.ReportMetric(float64(dispatched.Value()-d0)/n, "dispatched/op")
			b.ReportMetric(float64(coalesced.Value()-c0)/n, "coalesced/op")
			b.ReportMetric(float64(updates.Value()-u0)/n, "updates/op")
		})
	}
}
