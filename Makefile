# uniint build / verify / benchmark-gate targets.
#
# The benchmark-regression gate compares `go test -bench` output against
# the committed BENCH_BASELINE.json (schema: internal/benchfmt). CI runs
# `make bench-gate`; regenerate the baseline with `make bench-baseline`
# after an intentional performance change.

GO       ?= go
# Benchmarks gated in CI: the input hot path, the encoding suite (whose
# allocs/op pins the zero-allocation contract), the pooled/adaptive
# pipeline, hub routing, the damage-clipped render path (whose
# allocs/op pins the zero-allocation incremental-render contract and whose
# ns/op pins the ≥10x widget-vs-full-repaint win), and the session
# footprint (whose bytes/session and goroutines/session pin the budgeted
# event runtime — the goroutines/session baseline is 0, with no headroom).
GATE_BENCH ?= BenchmarkE1InputLatency|BenchmarkE2Encoding|BenchmarkE2bPooled|BenchmarkE2bAdaptive|BenchmarkHubRoute|BenchmarkRenderFull|BenchmarkResume|BenchmarkE2bRoam|BenchmarkE2bMigrate|BenchmarkE2bWire|BenchmarkSessionFootprint
BENCHTIME  ?= 100x
# Packages holding gated benchmarks: the root end-to-end suite plus the
# event runtime (timer-wheel re-arm). Patterns that match nothing in a
# package are simply skipped there.
BENCH_PKGS ?= . ./internal/sched
# Sub-100µs benchmarks run with many more iterations: at 100x a ~3µs/op
# bench measures a ~0.3ms window, where a single scheduler preemption on a
# shared runner blows through NS_TOL. 10000x widens the window ~100x and
# averages the noise out; these benches are all fast, so the extra wall
# time is small. The Input* set pins the batched/coalesced input pipeline
# at zero allocations per event end to end (wire write, read loop, queue,
# dispatch).
GATE_BENCH_MICRO ?= BenchmarkRenderWidget|BenchmarkRenderText|BenchmarkE2bRender|BenchmarkInputBatch|BenchmarkInputCoalesce|BenchmarkInputFlood|BenchmarkE2bInput|BenchmarkTraceOverhead|BenchmarkTimerWheel
BENCHTIME_MICRO  ?= 10000x
# ns/op headroom: generous because wall time shifts with hardware, still
# far under the 2x-regression class the gate exists to catch. allocs/op is
# machine-independent and stays tight (+20%, +2 absolute).
NS_TOL     ?= 0.75
# Custom */op metric headroom (wirebytes/op, updates/op, dispatches/op):
# some of these are timing-coupled ratios (updates per event depends on
# coalescing races), so they get ns-class headroom. The deterministic
# ones (wirebytes/op replays a fixed step cycle) regress by multiples
# when they regress at all, so +50% still catches the real class.
EXTRA_TOL  ?= 0.50

# Coverage gate: cmd/covgate parses the coverage profile and fails below
# this committed threshold (current total is ~73.6%; the margin absorbs
# run-to-run jitter without letting real regressions through). Raising it
# is a reviewed change, like the benchmark baseline.
COVER_MIN ?= 70

.PHONY: all build test vet race fmt-check cover cover-gate soak bench bench-out bench-gate bench-baseline profile obslint docs-check trace-demo

all: build test

# cover writes the coverage profile the gate consumes.
cover:
	$(GO) test -race -coverprofile=coverage.out -covermode=atomic ./...

# cover-gate fails (exit 1) when total statement coverage in coverage.out
# drops below COVER_MIN.
cover-gate:
	$(GO) run ./cmd/covgate -profile coverage.out -min $(COVER_MIN)

# soak runs the seeded chaos test (roam workload through netsim fault
# injection, race detector on). Override the knobs for a longer local
# run, e.g.:  SOAK_SEED=7 SOAK_HOPS=40 SOAK_DEVICES=8 make soak
soak:
	$(GO) test -race -run TestChaosSoak -v -count=1 .

build:
	$(GO) build ./...

# obslint enforces the observability naming contract (snake_case metric
# names, _total counters, _seconds histograms, snake_case trace stages).
# CI runs it in the staticcheck job.
obslint:
	$(GO) run ./cmd/obslint .

# docs-check keeps the documentation honest: the wire-spec coverage test
# (every msg*/Enc* constant in internal/rfb must be named in
# docs/WIRE.md), the doc lint (every package and exported constant
# documented) and the markdown relative-link check.
docs-check:
	$(GO) test -run TestWireDocCoversAllConstants -count=1 .
	$(GO) run ./cmd/obslint -doclint -mdlinks .

# trace-demo records a fully-sampled interaction workload and writes
# trace.json — drop it into chrome://tracing or ui.perfetto.dev to see
# per-stage spans from device event to pixels on the wire.
trace-demo:
	$(GO) run ./cmd/unibench -trace-demo trace.json

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run NONE -bench . -benchtime $(BENCHTIME) -benchmem .

# bench-out runs exactly the gated benchmark set (macro pass + micro pass)
# and prints raw results.
bench-out:
	@{ $(GO) test -run NONE -bench '$(GATE_BENCH)' -benchtime $(BENCHTIME) -benchmem $(BENCH_PKGS) && \
	   $(GO) test -run NONE -bench '$(GATE_BENCH_MICRO)' -benchtime $(BENCHTIME_MICRO) -benchmem $(BENCH_PKGS) ; }

# bench-gate fails (exit 1) when the measured results regress beyond the
# tolerances against BENCH_BASELINE.json.
bench-gate:
	@{ $(GO) test -run NONE -bench '$(GATE_BENCH)' -benchtime $(BENCHTIME) -benchmem $(BENCH_PKGS) && \
	   $(GO) test -run NONE -bench '$(GATE_BENCH_MICRO)' -benchtime $(BENCHTIME_MICRO) -benchmem $(BENCH_PKGS) ; } \
		| $(GO) run ./cmd/benchgate -tolerance $(NS_TOL) -extra-tolerance $(EXTRA_TOL)

# bench-baseline regenerates BENCH_BASELINE.json from two local runs of
# the gated set; benchgate -update keeps the worst observation per
# benchmark, so the committed ceiling covers the machine's slow mode and
# a lucky fast run cannot produce a baseline the next run flaps against.
bench-baseline:
	@{ $(GO) test -run NONE -bench '$(GATE_BENCH)' -benchtime $(BENCHTIME) -benchmem $(BENCH_PKGS) && \
	   $(GO) test -run NONE -bench '$(GATE_BENCH_MICRO)' -benchtime $(BENCHTIME_MICRO) -benchmem $(BENCH_PKGS) && \
	   $(GO) test -run NONE -bench '$(GATE_BENCH)' -benchtime $(BENCHTIME) -benchmem $(BENCH_PKGS) && \
	   $(GO) test -run NONE -bench '$(GATE_BENCH_MICRO)' -benchtime $(BENCHTIME_MICRO) -benchmem $(BENCH_PKGS) ; } \
		| $(GO) run ./cmd/benchgate -update -note "make bench-baseline, benchtime $(BENCHTIME)/$(BENCHTIME_MICRO), worst of 2 runs"

# profile captures CPU and allocation profiles of the render/encode hot
# path. Inspect with `go tool pprof cpu.prof` (or mem.prof). For a live
# hub, start unihub with -pprof and point pprof at the metrics address.
PROFILE_BENCH ?= BenchmarkRenderWidget|BenchmarkE2bRender
profile:
	$(GO) test -run NONE -bench '$(PROFILE_BENCH)' -benchtime 2000x -benchmem \
		-cpuprofile cpu.prof -memprofile mem.prof .
	@echo "profiles written: cpu.prof mem.prof — view with 'go tool pprof cpu.prof'"
