# uniint build / verify / benchmark-gate targets.
#
# The benchmark-regression gate compares `go test -bench` output against
# the committed BENCH_BASELINE.json (schema: internal/benchfmt). CI runs
# `make bench-gate`; regenerate the baseline with `make bench-baseline`
# after an intentional performance change.

GO       ?= go
# Benchmarks gated in CI: the input hot path, the encoding suite (whose
# allocs/op pins the zero-allocation contract), the pooled/adaptive
# pipeline and hub routing.
GATE_BENCH ?= BenchmarkE1InputLatency|BenchmarkE2Encoding|BenchmarkE2bPooled|BenchmarkE2bAdaptive|BenchmarkHubRoute
BENCHTIME  ?= 100x
# ns/op headroom: generous because wall time shifts with hardware, still
# far under the 2x-regression class the gate exists to catch. allocs/op is
# machine-independent and stays tight (+20%, +2 absolute).
NS_TOL     ?= 0.75

.PHONY: all build test vet race fmt-check bench bench-out bench-gate bench-baseline

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run NONE -bench . -benchtime $(BENCHTIME) -benchmem .

# bench-out runs exactly the gated benchmark set and prints raw results.
bench-out:
	$(GO) test -run NONE -bench '$(GATE_BENCH)' -benchtime $(BENCHTIME) -benchmem .

# bench-gate fails (exit 1) when the measured results regress beyond the
# tolerances against BENCH_BASELINE.json.
bench-gate:
	$(GO) test -run NONE -bench '$(GATE_BENCH)' -benchtime $(BENCHTIME) -benchmem . \
		| $(GO) run ./cmd/benchgate -tolerance $(NS_TOL)

# bench-baseline regenerates BENCH_BASELINE.json from a local run.
bench-baseline:
	$(GO) test -run NONE -bench '$(GATE_BENCH)' -benchtime $(BENCHTIME) -benchmem . \
		| $(GO) run ./cmd/benchgate -update -note "make bench-baseline, benchtime $(BENCHTIME)"
