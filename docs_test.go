package uniint

// Documentation coverage test (PR 7): docs/WIRE.md claims to specify
// the complete wire protocol, so the claim is enforced mechanically —
// every message-type constant (msg*) and encoding constant (Enc*)
// declared in internal/rfb must appear, by its literal Go name, in the
// spec, along with the cross-package protocol constants the spec is
// built around. Adding a message or encoding without documenting it
// fails this test; so does renaming one without updating the spec.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wireConstPattern selects the protocol-vocabulary constants: message
// type bytes (msgX), encoding ids (EncX), and migration-record fields
// (MigX). Helper constants (scratch sizes, thresholds) are deliberately
// out of scope — they are implementation policy, not wire shape.
var wireConstPattern = regexp.MustCompile(`^(msg|Enc|Mig)[A-Z]`)

// extraWireConstants are protocol constants outside the msg*/Enc*
// naming scheme (or outside internal/rfb entirely) that the spec must
// still name: the handshake version, the token and preamble bounds, the
// hub wildcard, and the mirrored tile-window capacity — all of which
// are wire-compatibility-critical.
var extraWireConstants = []string{
	"ProtocolVersion", // internal/rfb: handshake version string
	"MaxTokenLen",     // internal/rfb: resume token length bound
	"tileWindowCap",   // internal/rfb: mirrored LRU capacity (protocol constant)
	"MaxPreambleLen",  // internal/hub: routing line bound
	"TokenHome",       // internal/hub: token-routing wildcard
}

// rfbWireConstants parses internal/rfb (non-test files) and returns
// every top-level const name matching wireConstPattern.
func rfbWireConstants(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, filepath.Join("internal", "rfb"), func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parsing internal/rfb: %v", err)
	}
	var names []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, id := range vs.Names {
						if wireConstPattern.MatchString(id.Name) {
							names = append(names, id.Name)
						}
					}
				}
			}
		}
	}
	if len(names) < 10 {
		t.Fatalf("found only %d msg*/Enc* constants in internal/rfb — the parser filter is broken", len(names))
	}
	return names
}

func TestWireDocCoversAllConstants(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "WIRE.md"))
	if err != nil {
		t.Fatalf("reading wire spec: %v", err)
	}
	spec := string(doc)

	var missing []string
	for _, name := range append(rfbWireConstants(t), extraWireConstants...) {
		// Literal-name match: the spec writes constants verbatim
		// (usually in backticks), so a plain substring check suffices
		// and stays robust to formatting.
		if !strings.Contains(spec, name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		t.Errorf("docs/WIRE.md does not mention: %s — the wire spec must name every protocol constant",
			strings.Join(missing, ", "))
	}
}
