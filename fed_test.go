package uniint

// Federation end-to-end test (ISSUE 10 acceptance): a seeded run loses
// its link mid-interaction, the session parks, and — while the client is
// still inside its redial backoff — the federation drains the hub node
// that owns the home, live-migrating the parked session (serialized
// through the UNIMIG/1 wire record) to the surviving node. The client
// redials through the front router with nothing but the home-id
// preamble, lands on the survivor, resumes with an incremental resync
// strictly smaller than its cold join, and finishes byte-identical to an
// uninterrupted control run.

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"uniint/internal/fed"
	"uniint/internal/gfx"
	"uniint/internal/hub"
	"uniint/internal/metrics"
)

// fedFixture fronts one resumeStack home with a hub-of-hubs cluster of
// the given member names. Every member's hub shares a memoized factory
// returning the same underlying server: the appliance network lives in
// the house, hub nodes are stateless session fronts, and migration moves
// only session state — which is exactly what the byte-identity assertion
// pins down.
type fedFixture struct {
	st      *resumeStack
	cluster *fed.Cluster
	metrics *metrics.Registry
	homeID  string
}

func newFedFixture(t *testing.T, homeID string, backoff time.Duration, nodes ...string) *fedFixture {
	t.Helper()
	fx := &fedFixture{
		st:      newResumeDisplay(t, nil),
		metrics: metrics.NewRegistry(),
		homeID:  homeID,
	}
	fx.cluster = fed.NewCluster(fed.Options{Metrics: fx.metrics})
	for _, name := range nodes {
		h, err := hub.New(hub.Options{
			Factory: func(string) (hub.Host, error) { return fx.st.srv, nil },
			Metrics: fx.metrics,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(h.Close)
		if err := fx.cluster.AddNode(name, h); err != nil {
			t.Fatal(err)
		}
	}
	fx.st.connect(backoff, func(conn net.Conn) { _ = fx.cluster.ServeConn(conn) }, homeID)
	return fx
}

func TestFederationLiveMigrationByteIdentical(t *testing.T) {
	const homeID, seed, presses = "fed-kitchen", 20260807, 24
	rng := rand.New(rand.NewSource(seed))
	dropAt := presses/4 + rng.Intn(presses/2) // mid-interaction, seeded

	counters := metrics.Default()
	migratedOut0 := counters.Counter("session_migrated_out_total").Value()
	migratedIn0 := counters.Counter("session_migrated_in_total").Value()

	// Control run: same interactions, same mid-session label mutation,
	// routed through a single-node federation, no failure, no migration.
	ctl := newFedFixture(t, homeID, 50*time.Millisecond, "solo")
	ctl.st.awaitTraffic()
	ctl.st.settle()
	for i := 1; i <= presses; i++ {
		ctl.st.press(i)
		if i == dropAt {
			ctl.st.settle()
			ctl.st.display.Update(func() { ctl.st.lbl.SetText("away message") })
		}
	}
	ctl.st.settle()
	controlShadow := ctl.st.shadow()

	// Migrated run: two member nodes; the long backoff keeps the client
	// away while the owner drains.
	fx := newFedFixture(t, homeID, 300*time.Millisecond, "alpha", "beta")
	st := fx.st
	st.awaitTraffic()
	st.settle()
	initialBytes := st.sup.Proxy().Client().BytesReceived() // cold join: full paint
	for i := 1; i <= dropAt; i++ {
		st.press(i)
	}
	st.settle()

	owner, ok := fx.cluster.Owner(homeID)
	if !ok {
		t.Fatal("no ring owner")
	}
	st.dropLink()
	// Detach-window damage lands while nobody is connected.
	st.display.Update(func() { st.lbl.SetText("away message") })
	waitCond(t, "session parked", func() bool { return st.srv.Parked() >= 1 })

	// Drain-for-deploy: the owner leaves the ring and its parked session
	// ships to the survivor before the client's backoff expires.
	if err := fx.cluster.Drain(owner); err != nil {
		t.Fatalf("Drain(%s): %v", owner, err)
	}
	if got := fx.metrics.Counter("fed_migrations_total").Value(); got < 1 {
		t.Fatalf("fed_migrations_total = %d, want >= 1", got)
	}
	if got := fx.metrics.Counter("fed_migration_bytes_total").Value(); got <= 0 {
		t.Fatalf("fed_migration_bytes_total = %d, want > 0", got)
	}
	if after, _ := fx.cluster.Owner(homeID); after == owner {
		t.Fatalf("home still owned by drained node %s", owner)
	}

	waitCond(t, "reconnect", func() bool { return st.sup.Reconnects() == 1 })
	if got := st.sup.Resumes(); got != 1 {
		t.Fatalf("Resumes() = %d, want 1", got)
	}
	st.awaitTraffic() // the resync for the detach-window damage
	st.settle()

	// Incremental resync, not a full repaint: post-migration traffic stays
	// strictly under the cold join's initial full paint.
	resyncBytes := st.sup.Proxy().Client().BytesReceived()
	if resyncBytes >= initialBytes {
		t.Errorf("resync received %d bytes; cold join full paint was %d — looks like a full repaint",
			resyncBytes, initialBytes)
	}

	for i := dropAt + 1; i <= presses; i++ {
		st.press(i)
	}
	st.settle()

	// Zero lost, zero duplicated semantic input events across the move.
	if got := st.clicks(); got != presses {
		t.Fatalf("clicks = %d, want exactly %d", got, presses)
	}

	// Byte-identical outcome: the resumed shadow matches the live display
	// and the uninterrupted control run, pixel for pixel, despite the
	// session having crossed nodes through the migration record.
	full := gfx.R(0, 0, 320, 240)
	if !st.shadow().Equal(st.display.Snapshot(full)) {
		t.Error("migrated shadow framebuffer diverged from the display")
	}
	if !st.shadow().Equal(controlShadow) {
		t.Error("migrated run not byte-identical to uninterrupted control run")
	}

	// The session crossed the serialization boundary exactly once.
	if d := counters.Counter("session_migrated_out_total").Value() - migratedOut0; d != 1 {
		t.Errorf("session_migrated_out_total delta = %d, want 1", d)
	}
	if d := counters.Counter("session_migrated_in_total").Value() - migratedIn0; d != 1 {
		t.Errorf("session_migrated_in_total delta = %d, want 1", d)
	}
}
