package uniint

// Session-resilience end-to-end test (ISSUE 5 acceptance): a seeded run
// drops the link mid-interaction, the supervisor reconnects with the
// resume token, and the revived session receives only the damage
// accumulated while detached — finishing byte-identical to an
// uninterrupted control run, with zero lost (or duplicated) semantic
// input events.

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uniint/internal/core"
	"uniint/internal/device"
	"uniint/internal/gfx"
	"uniint/internal/hub"
	"uniint/internal/metrics"
	"uniint/internal/netsim"
	"uniint/internal/toolkit"
	"uniint/internal/trace"
	"uniint/internal/uniserver"
)

// resumeStack is a droppable supervised session over a control panel
// whose state is a deterministic function of the confirmed click count.
type resumeStack struct {
	t       *testing.T
	display *toolkit.Display
	srv     *uniserver.Server
	lbl     *toolkit.Label
	clicks  func() int

	mu   sync.Mutex
	link *netsim.Conn

	sup   *core.Supervisor
	phone *device.Phone
}

func newResumeStack(t *testing.T) *resumeStack {
	return newResumeStackTuned(t, 50*time.Millisecond, nil)
}

// newResumeStackTuned exposes the supervisor's redial backoff and a
// decorator around the button's click handler. The trace park/resume
// test uses both: the decorator stalls the dispatcher mid-interaction
// and the wide backoff keeps the park window open while it does.
func newResumeStackTuned(t *testing.T, backoff time.Duration, wrap func(inner func()) func()) *resumeStack {
	t.Helper()
	st := newResumeDisplay(t, wrap)
	st.connect(backoff, func(conn net.Conn) { st.srv.HandleConn(conn) }, "")
	return st
}

// newResumeDisplay builds the server side of the stack — display,
// widgets, uniserver — without connecting a supervisor, so tests can
// route the connection through something other than a direct dial (the
// federation e2e fronts it with a hub-of-hubs router).
func newResumeDisplay(t *testing.T, wrap func(inner func()) func()) *resumeStack {
	t.Helper()
	st := &resumeStack{t: t, display: toolkit.NewDisplay(320, 240)}
	st.srv = uniserver.New(st.display, "resume-e2e")
	t.Cleanup(st.srv.Close)

	var mu sync.Mutex
	clicks := 0
	handler := func() { mu.Lock(); clicks++; mu.Unlock() }
	if wrap != nil {
		handler = wrap(handler)
	}
	btn := toolkit.NewButton("Toggle", handler)
	st.clicks = func() int { mu.Lock(); defer mu.Unlock(); return clicks }
	st.lbl = toolkit.NewLabel("count 000")
	root := toolkit.NewPanel(toolkit.VBox{Gap: 4, Padding: 4})
	root.Add(btn)
	root.Add(st.lbl)
	st.display.SetRoot(root)
	st.display.Render()
	return st
}

// connect attaches a supervised device pair dialing through serve (the
// server side of each connection). A non-empty preamble home-id makes
// every dial open with the hub routing preamble — the resume token is
// not the dialer's concern; it rides the protocol handshake.
func (st *resumeStack) connect(backoff time.Duration, serve func(net.Conn), preambleHome string) {
	t := st.t
	t.Helper()
	dial := func() (net.Conn, error) {
		sc, cc := net.Pipe()
		go serve(sc)
		if preambleHome != "" {
			if err := hub.WritePreamble(cc, preambleHome); err != nil {
				cc.Close()
				return nil, err
			}
		}
		link := netsim.Wrap(cc)
		st.mu.Lock()
		st.link = link
		st.mu.Unlock()
		return link, nil
	}
	sup, err := core.NewSupervisor(dial, core.WithBackoff(backoff))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sup.Close)
	st.sup = sup
	st.phone = device.NewPhone("phone-1")
	t.Cleanup(st.phone.Close)
	if err := sup.AttachInput(st.phone); err != nil {
		t.Fatal(err)
	}
	if err := sup.AttachOutput(device.NewTVDisplay("tv-1")); err != nil {
		t.Fatal(err)
	}
	if err := sup.SelectInput("phone-1"); err != nil {
		t.Fatal(err)
	}
	if err := sup.SelectOutput("tv-1"); err != nil {
		t.Fatal(err)
	}
}

func (st *resumeStack) dropLink() {
	st.mu.Lock()
	link := st.link
	st.mu.Unlock()
	link.DropLink()
}

// settle waits for protocol quiescence on the current connection: the
// byte counter must hold still across several polls (a single quiet poll
// is not quiescence when the peer is mid-render under -race).
func (st *resumeStack) settle() {
	prev, stable := int64(-1), 0
	for stable < 3 {
		cur := st.sup.Proxy().Client().BytesReceived()
		if cur == prev {
			stable++
		} else {
			stable = 0
			prev = cur
		}
		time.Sleep(3 * time.Millisecond)
	}
}

// awaitTraffic blocks until the current connection has received at least
// one update, so a following settle measures a completed exchange rather
// than one that has not started.
func (st *resumeStack) awaitTraffic() {
	waitCond(st.t, "update traffic", func() bool {
		return st.sup.Proxy().Client().UpdatesReceived() >= 1
	})
}

// press delivers one confirmed semantic interaction: a phone "ok" that
// must land as exactly one click, with the label repainted to the new
// count. Retries cover presses swallowed by a dying link; the exact-count
// assertion at the end catches any duplication.
func (st *resumeStack) press(n int) {
	st.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for st.clicks() < n {
		st.phone.PressKey("ok")
		for i := 0; i < 20 && st.clicks() < n; i++ {
			time.Sleep(2 * time.Millisecond)
		}
		if time.Now().After(deadline) {
			st.t.Fatalf("click %d never landed", n)
		}
	}
	st.display.Update(func() { st.lbl.SetText(labelFor(st.clicks())) })
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func labelFor(n int) string {
	return "count " + string([]byte{byte('0' + n/100%10), byte('0' + n/10%10), byte('0' + n%10)})
}

func (st *resumeStack) shadow() *gfx.Framebuffer {
	return st.sup.Proxy().Client().Snapshot(gfx.R(0, 0, 320, 240))
}

func TestResumeShipsOnlyDetachDamageByteIdentical(t *testing.T) {
	const seed, presses = 20260726, 24
	rng := rand.New(rand.NewSource(seed))
	dropAt := presses/4 + rng.Intn(presses/2) // mid-interaction, seeded

	counters := metrics.Default()
	parked0 := counters.Counter("session_parked_total").Value()
	resumed0 := counters.Counter("session_resumed_total").Value()

	// Control run: the same interactions, the same mid-session label
	// mutation, no failure.
	control := newResumeStack(t)
	control.awaitTraffic()
	control.settle()
	for i := 1; i <= presses; i++ {
		control.press(i)
		if i == dropAt {
			control.settle()
			control.display.Update(func() { control.lbl.SetText("away message") })
		}
	}
	control.settle()
	controlShadow := control.shadow()

	// Faulted run: the link dies after the seeded interaction, the
	// server-side state mutates while nobody is connected, and the
	// session resumes.
	st := newResumeStack(t)
	st.awaitTraffic()
	st.settle()
	initialBytes := st.sup.Proxy().Client().BytesReceived() // cold join: full paint
	for i := 1; i <= dropAt; i++ {
		st.press(i)
	}
	st.settle()
	st.dropLink()
	// Detach-window damage: the label changes while nobody is connected
	// (the supervisor is still inside its redial backoff).
	st.display.Update(func() { st.lbl.SetText("away message") })
	waitCond(t, "reconnect", func() bool { return st.sup.Reconnects() == 1 })
	if got := st.sup.Resumes(); got != 1 {
		t.Fatalf("Resumes() = %d, want 1", got)
	}
	st.awaitTraffic() // the resync for the detach-window damage
	st.settle()

	// The resumed connection shipped an incremental resync of the
	// detach-window damage, not a full repaint: its traffic stays under
	// the cold join's initial full paint. (The margin is thin by design:
	// the wire tier's dictionary-zlib compresses the cold join's full
	// paint to a few hundred bytes, while the resync pays tile-install
	// bodies for a fresh tile window — so "well under half" no longer
	// separates the two, but strictly-cheaper still does.)
	resyncBytes := st.sup.Proxy().Client().BytesReceived()
	if resyncBytes >= initialBytes {
		t.Errorf("resync received %d bytes; cold join full paint was %d — looks like a full repaint",
			resyncBytes, initialBytes)
	}

	for i := dropAt + 1; i <= presses; i++ {
		st.press(i)
	}
	st.settle()

	// Zero lost, zero duplicated semantic input events.
	if got := st.clicks(); got != presses {
		t.Fatalf("clicks = %d, want exactly %d", got, presses)
	}

	// Byte-identical outcome: shadow matches the live display, and the
	// faulted run matches the uninterrupted control run pixel for pixel.
	full := gfx.R(0, 0, 320, 240)
	if !st.shadow().Equal(st.display.Snapshot(full)) {
		t.Error("resumed shadow framebuffer diverged from the display")
	}
	if !st.shadow().Equal(controlShadow) {
		t.Error("faulted run not byte-identical to uninterrupted control run")
	}

	if d := counters.Counter("session_parked_total").Value() - parked0; d < 1 {
		t.Errorf("session_parked_total delta = %d, want >= 1", d)
	}
	if d := counters.Counter("session_resumed_total").Value() - resumed0; d < 1 {
		t.Errorf("session_resumed_total delta = %d, want >= 1", d)
	}
}

// TestTraceSpansSurviveParkResume (ISSUE 6 satellite): a traced
// interaction that is still queued when its link dies keeps its trace id
// across the park window. The replayed dispatch and the resulting
// update flush land under the same id as the pre-drop proxy and wire
// spans; a park span explains the gap, and the queue span straddles it.
//
// The stall is engineered, not raced: the first press's click handler
// blocks on a gate (holding the display lock), so the second press's
// traced events queue behind it in the server's input queue. The link
// then drops, the gate opens, the dispatcher exits with the second
// press undispatched, and retire parks it for the resume to replay.
func TestTraceSpansSurviveParkResume(t *testing.T) {
	trace.Reset()
	trace.SetSampling(1)
	defer trace.Reset()
	defer trace.SetSampling(0)

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var gate atomic.Bool
	gate.Store(true) // only the first click stalls; the replay must not
	wrap := func(inner func()) func() {
		return func() {
			if gate.CompareAndSwap(true, false) {
				entered <- struct{}{}
				<-release
			}
			inner()
		}
	}
	st := newResumeStackTuned(t, 250*time.Millisecond, wrap)
	st.awaitTraffic()
	st.settle()

	queued0 := metrics.Default().Counter("input_queued_total").Value()
	st.phone.PressKey("ok") // press A: its key-down blocks in the gate
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatcher never reached the gated click handler")
	}
	st.phone.PressKey("ok") // press B: queues behind the stalled dispatcher
	waitCond(t, "press B queued server-side", func() bool {
		return metrics.Default().Counter("input_queued_total").Value()-queued0 >= 4
	})

	st.dropLink()
	// Let the dead link surface in the read loop (closing the session's
	// quit channel) before opening the gate: the dispatcher must see the
	// stop before taking another batch, so press B stays queued and
	// retire parks it. The 250ms redial backoff leaves ample room.
	time.Sleep(20 * time.Millisecond)
	close(release)

	waitCond(t, "reconnect", func() bool { return st.sup.Reconnects() == 1 })
	if got := st.sup.Resumes(); got != 1 {
		t.Fatalf("Resumes() = %d, want 1", got)
	}
	waitCond(t, "replayed click", func() bool { return st.clicks() == 2 })

	// The parked interaction: one trace id carries a park span and the
	// flush of the post-resume update.
	var parked map[trace.Stage]trace.Span
	waitCond(t, "parked interaction flushed", func() bool {
		for _, spans := range spansByTrace(trace.Snapshot()) {
			if _, ok := spans[trace.StagePark]; !ok {
				continue
			}
			if _, ok := spans[trace.StageFlush]; !ok {
				continue
			}
			parked = spans
			return true
		}
		return false
	})
	for _, stg := range []trace.Stage{
		trace.StageProxyFlush, trace.StageWire, trace.StageQueue,
		trace.StageDispatch, trace.StageRender, trace.StageEncode,
	} {
		if _, ok := parked[stg]; !ok {
			t.Fatalf("parked trace missing %s span", stg)
		}
	}
	park := parked[trace.StagePark]
	// The wire span closed before the park began (the event arrived on
	// the dying connection); the queue span straddles the whole detach
	// window; dispatch ran after the resume reclaimed the session.
	if wire := parked[trace.StageWire]; wire.End > park.Start {
		t.Errorf("wire span ends %d, after park start %d", wire.End, park.Start)
	}
	if q := parked[trace.StageQueue]; q.Start > park.Start || q.End < park.End {
		t.Errorf("queue span [%d, %d] does not straddle park window [%d, %d]",
			q.Start, q.End, park.Start, park.End)
	}
	if d := parked[trace.StageDispatch]; d.Start < park.End {
		t.Errorf("dispatch span starts %d, before park end %d", d.Start, park.End)
	}

	// The resume recorded its own lifecycle span (fresh id) covering the
	// detach window.
	resumes := 0
	for _, s := range trace.Snapshot() {
		if s.Stage == trace.StageResume {
			resumes++
		}
	}
	if resumes != 1 {
		t.Errorf("resume spans = %d, want 1", resumes)
	}
}
