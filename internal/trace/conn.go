package trace

import "net"

// routedConn annotates a connection with the hub-route span recorded
// while the hub read the preamble and resolved the home. The hub routes
// connections, not events, so the route latency is measured once here and
// attached to every traced interaction that later arrives on the
// connection — with its original (earlier) timestamps, explaining the gap
// before an interaction's first pipeline span.
type routedConn struct {
	net.Conn
	start, end int64
}

// WithRoute wraps conn so RouteSpan can recover the routing span
// downstream. start and end are UnixNano timestamps of the hub's
// preamble-to-handoff window.
func WithRoute(conn net.Conn, start, end int64) net.Conn {
	return &routedConn{Conn: conn, start: start, end: end}
}

// RouteSpan returns the routing span attached by WithRoute, if any.
func RouteSpan(conn net.Conn) (start, end int64, ok bool) {
	rc, ok := conn.(*routedConn)
	if !ok {
		return 0, 0, false
	}
	return rc.start, rc.end, true
}
