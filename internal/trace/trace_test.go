package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func reset(t *testing.T) {
	t.Helper()
	Reset()
	SetSampling(0)
	SetSlowLog(nil, 0)
	t.Cleanup(func() {
		Reset()
		SetSampling(0)
		SetSlowLog(nil, 0)
	})
}

func TestDisabledStartReturnsZero(t *testing.T) {
	reset(t)
	if Enabled() {
		t.Fatal("Enabled() = true with sampling off")
	}
	for i := 0; i < 100; i++ {
		if id := Start(); id != 0 {
			t.Fatalf("Start() = %d with sampling disabled, want 0", id)
		}
	}
	Record(0, StageWire, 1, 2) // must be a no-op, not a panic
	if got := Snapshot(); len(got) != 0 {
		t.Fatalf("Snapshot() after zero-id Record = %d spans, want 0", len(got))
	}
}

func TestSamplingRateOneTracesEverything(t *testing.T) {
	reset(t)
	SetSampling(1)
	if !Enabled() || Sampling() != 1 {
		t.Fatalf("Enabled()=%v Sampling()=%d, want true/1", Enabled(), Sampling())
	}
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		id := Start()
		if id == 0 {
			t.Fatalf("Start() = 0 at rate 1 (iteration %d)", i)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %d", id)
		}
		seen[id] = true
	}
}

func TestSamplingRateRoundsUpToPowerOfTwo(t *testing.T) {
	reset(t)
	SetSampling(50) // rounds to 64
	if got := Sampling(); got != 64 {
		t.Fatalf("Sampling() after SetSampling(50) = %d, want 64", got)
	}
	hits := 0
	for i := 0; i < 64*8; i++ {
		if Start() != 0 {
			hits++
		}
	}
	if hits != 8 {
		t.Fatalf("sampled %d of 512 at 1/64, want exactly 8", hits)
	}
}

func TestRecordSnapshotRoundTrip(t *testing.T) {
	reset(t)
	SetSampling(1)
	id := Start()
	base := time.Now().UnixNano()
	Record(id, StageQueue, base, base+100)
	Record(id, StageDispatch, base+100, base+250)
	got := Snapshot()
	if len(got) != 2 {
		t.Fatalf("Snapshot() = %d spans, want 2", len(got))
	}
	if got[0].Stage != StageQueue || got[1].Stage != StageDispatch {
		t.Fatalf("span order = %v, %v; want queue then dispatch", got[0].Stage, got[1].Stage)
	}
	if got[0].Trace != id || got[1].Trace != id {
		t.Fatalf("trace ids = %d, %d; want %d", got[0].Trace, got[1].Trace, id)
	}
	if got[1].Duration() != 150*time.Nanosecond {
		t.Fatalf("dispatch duration = %v, want 150ns", got[1].Duration())
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	reset(t)
	SetSampling(1)
	id := Start()
	total := ringShards*ringSize + 64
	for i := 0; i < total; i++ {
		Record(id, StageRender, int64(i+1), int64(i+2))
	}
	got := Snapshot()
	// id is fixed, so everything lands in one shard: exactly ringSize
	// survive and they are the newest ringSize.
	if len(got) != ringSize {
		t.Fatalf("Snapshot() = %d spans after overflow, want %d", len(got), ringSize)
	}
	for _, s := range got {
		if s.Start <= int64(total-ringSize) {
			t.Fatalf("stale span start=%d survived overwrite", s.Start)
		}
	}
}

func TestConcurrentRecordAndSnapshotAreRaceFree(t *testing.T) {
	reset(t)
	SetSampling(1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := Start()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
					Record(id, Stage(i%int64(numStages)), i, i+1)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		for _, s := range Snapshot() {
			if s.Trace == 0 {
				t.Error("Snapshot() returned a zero-trace span")
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestChromeTraceExportIsValidJSON(t *testing.T) {
	reset(t)
	SetSampling(1)
	id := Start()
	base := time.Now().UnixNano()
	Record(id, StageWire, base, base+1500)
	Record(id, StageFlush, base+2000, base+9000)

	var sb strings.Builder
	if err := WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "wire" || ev.Ph != "X" || ev.Tid != id {
		t.Fatalf("event 0 = %+v, want wire/X/tid=%d", ev, id)
	}
	if ev.Ts != 0 || ev.Dur != 1.5 {
		t.Fatalf("event 0 ts=%v dur=%v, want rebased 0 and 1.5µs", ev.Ts, ev.Dur)
	}
	if doc.TraceEvents[1].Ts != 2.0 {
		t.Fatalf("event 1 ts=%v, want 2µs after base", doc.TraceEvents[1].Ts)
	}
}

func TestSlowestRanksByWallTime(t *testing.T) {
	reset(t)
	SetSampling(1)
	fast, slow := Start(), Start()
	Record(fast, StageQueue, 1000, 2000)
	Record(fast, StageFlush, 2000, 3000)
	Record(slow, StageQueue, 1000, 2000)
	Record(slow, StageFlush, 90000, 99000)

	got := Slowest(5)
	if len(got) != 2 {
		t.Fatalf("Slowest(5) = %d traces, want 2", len(got))
	}
	if got[0].Trace != slow || got[0].Total() != 98000 {
		t.Fatalf("slowest = trace %d total %d, want trace %d total 98000",
			got[0].Trace, got[0].Total(), slow)
	}
	if got := Slowest(1); len(got) != 1 || got[0].Trace != slow {
		t.Fatalf("Slowest(1) did not truncate to the slowest trace")
	}
}

func TestHandlerServesJSONAndSlowest(t *testing.T) {
	reset(t)
	SetSampling(1)
	id := Start()
	Record(id, StageRender, 1000, 51000)
	Record(id, StageFlush, 51000, 60000)

	h := Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/uniint/trace", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("trace endpoint body is not JSON: %v", err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/uniint/trace?slowest=3", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "render") || !strings.Contains(body, "total_ms=") {
		t.Fatalf("slowest view missing stage breakdown:\n%s", body)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/uniint/trace?slowest=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("slowest=bogus status = %d, want 400", rec.Code)
	}
}

func TestSlowLogEmitsOverBudgetBreakdown(t *testing.T) {
	reset(t)
	SetSampling(1)
	var buf strings.Builder
	var mu sync.Mutex
	SetSlowLog(lockedWriter{&mu, &buf}, 5*time.Millisecond)

	fast := Start()
	base := time.Now().UnixNano()
	Record(fast, StageQueue, base, base+int64(time.Millisecond))
	Record(fast, StageFlush, base+int64(time.Millisecond), base+2*int64(time.Millisecond))

	slow := Start()
	Record(slow, StageQueue, base, base+int64(8*time.Millisecond))
	Record(slow, StageFlush, base+int64(8*time.Millisecond), base+int64(9*time.Millisecond))

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if strings.Count(out, "slow_interaction") != 1 {
		t.Fatalf("want exactly one slow_interaction line, got:\n%s", out)
	}
	for _, want := range []string{"total_ms=9.000", "queue_ms=8.000", "flush_ms=1.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow log missing %q:\n%s", want, out)
		}
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestRouteSpanRoundTrip(t *testing.T) {
	if _, _, ok := RouteSpan(nil); ok {
		t.Fatal("RouteSpan(nil) = ok")
	}
	wrapped := WithRoute(nil, 7, 11)
	s, e, ok := RouteSpan(wrapped)
	if !ok || s != 7 || e != 11 {
		t.Fatalf("RouteSpan = %d,%d,%v; want 7,11,true", s, e, ok)
	}
}

func TestStageNamesAreSnakeCase(t *testing.T) {
	names := StageNames()
	if len(names) != int(numStages) {
		t.Fatalf("StageNames() = %d names, want %d", len(names), numStages)
	}
	for _, n := range names {
		for _, r := range n {
			if !(r == '_' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')) {
				t.Errorf("stage name %q is not snake_case", n)
			}
		}
	}
	if Stage(200).String() != "unknown" {
		t.Error("out-of-range Stage.String() should be \"unknown\"")
	}
}
