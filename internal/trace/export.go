package trace

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WriteChromeTrace exports every stable span currently in the rings as
// Chrome trace_event JSON (the "JSON Array Format" that chrome://tracing
// and Perfetto load directly): one complete event (ph "X") per span, with
// the trace id as the tid so each interaction renders as its own track.
// Timestamps are microseconds, rebased to the earliest span so the viewer
// opens at t=0.
func WriteChromeTrace(w io.Writer) error {
	return writeChromeTrace(w, Snapshot())
}

func writeChromeTrace(w io.Writer, spans []Span) error {
	base := int64(0)
	for _, s := range spans {
		if base == 0 || s.Start < base {
			base = s.Start
		}
	}
	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	for i, s := range spans {
		if i > 0 {
			b.WriteByte(',')
		}
		// ts/dur are float microseconds in the spec; emit 0.001 µs
		// resolution so nanosecond-scale stages stay visible.
		fmt.Fprintf(&b,
			`{"name":%q,"ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"trace":"%#x"}}`,
			s.Stage.String(),
			float64(s.Start-base)/1e3,
			float64(s.End-s.Start)/1e3,
			s.Trace, s.Trace)
	}
	b.WriteString(`],"displayTimeUnit":"ns"}`)
	_, err := io.WriteString(w, b.String())
	return err
}

// TraceSummary aggregates one interaction's spans for the slowest view.
type TraceSummary struct {
	Trace uint64
	// Start is the earliest recorded stage start, End the latest stage
	// end; Total their difference (pre-pipeline spans like hub_route and
	// park are included, so Total is wall time the user experienced).
	Start, End int64
	Spans      []Span
}

// Total returns the interaction's end-to-end wall time in nanoseconds.
func (t TraceSummary) Total() int64 { return t.End - t.Start }

// Slowest groups the current ring contents by trace id and returns the n
// interactions with the largest end-to-end wall time, slowest first.
func Slowest(n int) []TraceSummary {
	return slowest(Snapshot(), n)
}

func slowest(spans []Span, n int) []TraceSummary {
	byID := make(map[uint64]*TraceSummary)
	order := make([]*TraceSummary, 0, 16)
	for _, s := range spans {
		t := byID[s.Trace]
		if t == nil {
			t = &TraceSummary{Trace: s.Trace, Start: s.Start, End: s.End}
			byID[s.Trace] = t
			order = append(order, t)
		}
		if s.Start < t.Start {
			t.Start = s.Start
		}
		if s.End > t.End {
			t.End = s.End
		}
		t.Spans = append(t.Spans, s)
	}
	// Selection by total, descending (cold path: simple shell sort).
	for gap := len(order) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(order); i++ {
			j := i
			for j >= gap && order[j].Total() > order[j-gap].Total() {
				order[j], order[j-gap] = order[j-gap], order[j]
				j -= gap
			}
		}
	}
	if n > 0 && len(order) > n {
		order = order[:n]
	}
	out := make([]TraceSummary, len(order))
	for i, t := range order {
		out[i] = *t
	}
	return out
}

// Handler serves the trace debug surface:
//
//	GET /debug/uniint/trace            → Chrome trace_event JSON of the rings
//	GET /debug/uniint/trace?slowest=K  → per-stage text breakdown of the K
//	                                     slowest interactions on record
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if q := r.URL.Query().Get("slowest"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n <= 0 {
				http.Error(w, "slowest: want a positive integer", http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeSlowest(w, slowest(Snapshot(), n))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		_ = WriteChromeTrace(w)
	})
}

func writeSlowest(w io.Writer, traces []TraceSummary) {
	fmt.Fprintf(w, "sampling=1/%d traces=%d\n", max(Sampling(), 1), len(traces))
	for i, t := range traces {
		fmt.Fprintf(w, "#%d trace=%#x total_ms=%.3f\n", i+1, t.Trace,
			float64(t.Total())/1e6)
		for _, s := range t.Spans {
			fmt.Fprintf(w, "   %-11s start_us=%-12.3f dur_ms=%.3f\n",
				s.Stage.String(), float64(s.Start-t.Start)/1e3,
				float64(s.Duration())/1e6)
		}
	}
}
