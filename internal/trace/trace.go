// Package trace is a dependency-free, sampling, per-interaction span
// recorder for the universal-interaction pipeline: one 64-bit trace id
// minted when the proxy accepts a device event (or when a session parks or
// resumes), carried through the proxy flusher, the wire, the hub's routing
// preamble, the server's input queue, the dispatcher, the damage-clipped
// repaint, the adaptive encode and the final SendPrepared flush — with one
// fixed-size span recorded per stage.
//
// Cost model. With sampling disabled (the default), Start is a single
// atomic load returning 0, and every Record call branches out on the zero
// id — the instrumented hot paths keep their zero-allocation contracts
// (BENCH_BASELINE.json gates them; BenchmarkTraceOverhead pins this
// package's own cost). With sampling enabled, a sampled interaction costs
// one atomic counter bump per candidate plus, per stage, a handful of
// atomic stores into a pre-allocated ring slot: no locks, no heap
// allocation, on any recording path.
//
// Storage. Spans land in a fixed set of sharded ring buffers (the shard is
// picked from the trace id, so one flooding interaction cannot evict
// everything else). Slots are written under a per-slot sequence counter
// (seqlock): Snapshot can drain the rings concurrently with writers and
// simply skips a slot caught mid-write. The rings are a debugging surface,
// not an audit log — the oldest spans are overwritten when a ring wraps.
package trace

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage of an interaction.
type Stage uint8

// Pipeline stages in causal order. The names (String) are the span names
// exported to the Chrome trace viewer and the slow-interaction log; they
// follow the repo's snake_case naming contract (cmd/obslint enforces it).
const (
	// StageProxyFlush covers plug-in translation, batching and coalescing
	// in the proxy, up to the batched transport write.
	StageProxyFlush Stage = iota
	// StageWire covers the client's transport write to the server's parse
	// (the trace-context wire extension carries the send timestamp).
	StageWire
	// StageHubRoute covers the hub's preamble read and home resolution.
	// The hub routes connections, not events, so this span is recorded
	// once at connect time and attached to each traced interaction with
	// its original (earlier) timestamps — it precedes the pipeline rather
	// than nesting inside it.
	StageHubRoute
	// StageQueue covers the server-side input queue: enqueue by the read
	// loop to pickup by the dispatcher.
	StageQueue
	// StageDispatch covers injection into the window system (widget
	// callbacks included).
	StageDispatch
	// StageRender covers the damage-clipped repaint the injection caused.
	StageRender
	// StageEncode covers adaptive encoding of the resulting update.
	StageEncode
	// StageFlush covers the SendPrepared transmit of the encoded update.
	StageFlush
	// StagePark marks the detach window a queued interaction survived in
	// the detach lot (recorded on resume, spanning park to reclaim — it
	// explains the queue-to-dispatch gap of a resumed trace).
	StagePark
	// StageResume is a session-lifecycle span: a parked session was
	// reclaimed (recorded under its own sampled trace id).
	StageResume
	// StageMigrate is a session-lifecycle span: a parked session was
	// shipped between federation nodes (export on the source node to
	// install on the target; recorded under its own sampled trace id).
	StageMigrate

	numStages
)

var stageNames = [numStages]string{
	"proxy_flush", "wire", "hub_route", "queue", "dispatch",
	"render", "encode", "flush", "park", "resume", "migrate",
}

// String returns the span name exported for the stage.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames lists every span name this package can record (the
// observability name lint walks it).
func StageNames() []string {
	out := make([]string, numStages)
	for i := range stageNames {
		out[i] = stageNames[i]
	}
	return out
}

// Span is one recorded stage of one interaction. Start and End are
// time.Time UnixNano values from the recording process's clock (every
// stage of the in-process pipeline shares it, so cross-stage ordering is
// meaningful).
type Span struct {
	Trace uint64
	Start int64
	End   int64
	Stage Stage
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Ring geometry. Power-of-two sizes keep the index math to a mask. Eight
// shards x 1024 slots holds the spans of the last ~1000 sampled
// interactions — plenty for a debug drain — in ~300 KiB of fixed storage.
const (
	ringShards = 8
	ringSize   = 1024
)

// slot stores one span entirely in atomics, guarded by a per-slot
// sequence counter: odd while a writer is mid-store, even when stable.
// Two writers can collide on a slot only after a full ring lap between
// their index claims; the loser's span is garbled but the seqlock keeps
// the drain race-free, which is the contract that matters for a
// lossy debug ring.
type slot struct {
	seq   atomic.Uint64
	trace atomic.Uint64
	start atomic.Int64
	end   atomic.Int64
	stage atomic.Uint32
}

type ring struct {
	pos atomic.Uint64
	// Pad the write cursor onto its own cache line so shards do not
	// false-share.
	_     [56]byte
	slots [ringSize]slot
}

var rings [ringShards]ring

// Sampling state. sampleRate == 0 means disabled; otherwise it is the
// power-of-two rate and an interaction is sampled when the global
// candidate counter lands on a multiple of it.
var (
	sampleRate atomic.Uint64
	sampleSeq  atomic.Uint64
	idSeq      atomic.Uint64
)

// Enabled reports whether any sampling is active. Pipeline code uses it
// to gate optional work (timestamping, connection wrapping) that only
// matters when traces can exist.
func Enabled() bool { return sampleRate.Load() != 0 }

// SetSampling sets the sampling rate: one traced interaction per rate
// candidates (rounded up to a power of two). rate 1 traces everything;
// rate <= 0 disables tracing, restoring the single-atomic-load fast path.
func SetSampling(rate int) {
	if rate <= 0 {
		sampleRate.Store(0)
		return
	}
	r := uint64(1)
	for r < uint64(rate) {
		r <<= 1
	}
	sampleRate.Store(r)
}

// Sampling returns the effective sampling rate (0 when disabled).
func Sampling() int { return int(sampleRate.Load()) }

// Start enters one interaction in the sampling lottery: it returns a new
// nonzero trace id when the interaction is sampled and 0 otherwise. With
// sampling disabled the cost is one atomic load. The zero id is the
// universal "untraced" sentinel — every Record call ignores it, so
// callers thread the returned id unconditionally.
func Start() uint64 {
	r := sampleRate.Load()
	if r == 0 {
		return 0
	}
	if sampleSeq.Add(1)&(r-1) != 0 {
		return 0
	}
	return newID()
}

// newID mints a fresh trace id (sequential, never zero) and claims the
// interaction's slot in the active-trace table.
func newID() uint64 {
	id := idSeq.Add(1)
	at := &active[id&(activeSlots-1)]
	at.id.Store(id)
	for i := range at.start {
		at.start[i].Store(0)
		at.end[i].Store(0)
	}
	return id
}

// Record stores one span for trace id. A zero id is a no-op (the
// untraced fast path: one predictable branch). start and end are
// time.Time UnixNano values.
func Record(id uint64, stage Stage, start, end int64) {
	if id == 0 || stage >= numStages {
		return
	}
	r := &rings[id&(ringShards-1)]
	sl := &r.slots[(r.pos.Add(1)-1)&(ringSize-1)]
	sl.seq.Add(1) // odd: write in progress
	sl.trace.Store(id)
	sl.start.Store(start)
	sl.end.Store(end)
	sl.stage.Store(uint32(stage))
	sl.seq.Add(1) // even: stable
	noteActive(id, stage, start, end)
}

// Now returns the timestamp Record expects (time.Now().UnixNano()).
func Now() int64 { return time.Now().UnixNano() }

// Snapshot drains a copy of every stable span currently in the rings,
// ordered by start time. It does not consume them: the rings keep
// overwriting oldest-first. Safe to call concurrently with recording.
func Snapshot() []Span {
	out := make([]Span, 0, 256)
	for ri := range rings {
		r := &rings[ri]
		for si := range r.slots {
			sl := &r.slots[si]
			for try := 0; try < 2; try++ {
				s1 := sl.seq.Load()
				if s1 == 0 || s1&1 != 0 {
					break // never written, or a writer is mid-store
				}
				sp := Span{
					Trace: sl.trace.Load(),
					Start: sl.start.Load(),
					End:   sl.end.Load(),
					Stage: Stage(sl.stage.Load()),
				}
				if sl.seq.Load() != s1 {
					continue // torn read: a writer landed mid-copy
				}
				if sp.Trace != 0 {
					out = append(out, sp)
				}
				break
			}
		}
	}
	sortSpans(out)
	return out
}

// Reset clears the rings, the active-trace table and the counters.
// Intended for tests; concurrent recorders may leave a handful of fresh
// spans behind.
func Reset() {
	for ri := range rings {
		r := &rings[ri]
		r.pos.Store(0)
		for si := range r.slots {
			sl := &r.slots[si]
			sl.seq.Store(0)
			sl.trace.Store(0)
		}
	}
	for i := range active {
		active[i].id.Store(0)
	}
	sampleSeq.Store(0)
}

// --- active-trace table and the slow-interaction log -----------------------

// activeSlots bounds the per-trace stage table used for slow-trace
// detection. Slots are claimed by trace id modulo the table size; a newer
// trace landing on an in-flight trace's slot simply evicts it from slow
// logging (lossy by design — the ring spans are unaffected).
const activeSlots = 128

type activeTrace struct {
	id    atomic.Uint64
	start [numStages]atomic.Int64
	end   [numStages]atomic.Int64
}

var active [activeSlots]activeTrace

// slowThresholdNS > 0 arms the slow-interaction log.
var (
	slowThresholdNS atomic.Int64
	slowMu          sync.Mutex
	slowWriter      io.Writer
)

// SetSlowLog arms (or, with a nil writer or non-positive threshold,
// disarms) the slow-interaction log: every sampled interaction whose
// total latency — flush completion minus its earliest recorded stage
// start — meets the threshold emits one structured line with the
// per-stage breakdown.
func SetSlowLog(w io.Writer, threshold time.Duration) {
	slowMu.Lock()
	slowWriter = w
	slowMu.Unlock()
	if w == nil || threshold <= 0 {
		slowThresholdNS.Store(0)
		return
	}
	slowThresholdNS.Store(int64(threshold))
}

func noteActive(id uint64, stage Stage, start, end int64) {
	at := &active[id&(activeSlots-1)]
	if at.id.Load() != id {
		return // slot reclaimed by a newer trace
	}
	at.start[stage].Store(start)
	at.end[stage].Store(end)
	if stage == StageFlush {
		maybeLogSlow(at, id, end)
	}
}

// maybeLogSlow runs on flush completion of a sampled trace (the slow
// path by definition: the interaction is over). Allocation here is fine.
func maybeLogSlow(at *activeTrace, id uint64, flushEnd int64) {
	th := slowThresholdNS.Load()
	if th == 0 {
		return
	}
	first := int64(0)
	for i := 0; i < int(numStages); i++ {
		s := at.start[i].Load()
		if s != 0 && (first == 0 || s < first) {
			first = s
		}
	}
	if first == 0 || flushEnd-first < th {
		return
	}
	line := fmt.Sprintf("slow_interaction trace=%#x total_ms=%.3f", id,
		float64(flushEnd-first)/1e6)
	for i := 0; i < int(numStages); i++ {
		s, e := at.start[i].Load(), at.end[i].Load()
		if s == 0 && e == 0 {
			continue
		}
		line += fmt.Sprintf(" %s_ms=%.3f", Stage(i), float64(e-s)/1e6)
	}
	slowMu.Lock()
	w := slowWriter
	if w != nil {
		fmt.Fprintln(w, line)
	}
	slowMu.Unlock()
}

func sortSpans(spans []Span) {
	// Insertion-sort-free: spans come out ring by ring, nearly unordered —
	// use a simple comparison sort without pulling in package sort's
	// interface allocations (sort.Slice closure allocates once; fine, but
	// a local implementation keeps the package surface honest about its
	// zero-dependency hot path... the drain is a cold path, so clarity
	// wins: shell sort over (Start, Trace, Stage).
	n := len(spans)
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			j := i
			for j >= gap && spanLess(spans[j], spans[j-gap]) {
				spans[j], spans[j-gap] = spans[j-gap], spans[j]
				j -= gap
			}
		}
	}
}

func spanLess(a, b Span) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Trace != b.Trace {
		return a.Trace < b.Trace
	}
	return a.Stage < b.Stage
}
