package sched

import (
	"sync"
	"time"

	"uniint/internal/metrics"
)

// Wheel instruments: armed timers (gauge) and fired callbacks (counter).
var (
	mWheelTimers = metrics.Default().Gauge("sched_wheel_timers")
	mWheelFires  = metrics.Default().Counter("sched_wheel_fires_total")
)

// Wheel geometry: wheelLevels levels of wheelSlots slots each. Level 0
// spans tick × wheelSlots; each higher level spans wheelSlots times the
// level below. With the 1ms default tick the wheel covers ~4.6 hours —
// far past any timeout in the system (park TTLs, idle eviction, appliance
// ticks, handshake bounds).
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelLevels = 4
	wheelMask   = wheelSlots - 1
)

// DefaultTick is the wheel granularity used by NewWheel(0) and the shared
// process wheel. Timers never fire early; they fire at most one tick (plus
// scheduling latency) late.
const DefaultTick = time.Millisecond

// Wheel is a hierarchical timer wheel: every armed timer in the process
// costs O(1) memory and the whole wheel is driven by a single goroutine
// holding ONE runtime timer, however many timers are armed. The driver
// starts when the first timer arms and exits when the last one fires or
// stops, so an idle wheel holds no goroutine at all.
//
// Callbacks run on the driver goroutine and must not block for long — a
// slow callback delays every other timer on the wheel. Heavy periodic work
// should kick a Pool task instead of running inline.
type Wheel struct {
	mu      sync.Mutex
	tick    time.Duration
	epoch   time.Time
	cur     int64 // ticks fully processed since epoch
	slots   [wheelLevels][wheelSlots]*Timer
	pending int
	running bool          // driver goroutine live
	rearm   chan struct{} // cap 1: wake the driver to recompute its sleep

	// fired recycles the due-timer collection batch across driver wakeups.
	fired []*Timer
}

// NewWheel creates a wheel with the given granularity (0 selects
// DefaultTick). The driver goroutine starts lazily on first arm.
func NewWheel(tick time.Duration) *Wheel {
	if tick <= 0 {
		tick = DefaultTick
	}
	return &Wheel{tick: tick, epoch: time.Now(), rearm: make(chan struct{}, 1)}
}

var (
	sharedOnce  sync.Once
	sharedWheel *Wheel
)

// Shared returns the process-wide wheel. Everything periodic in the
// process — detach-lot sweeps, hub idle eviction, appliance simulation
// ticks, handshake timeouts — shares it, so the whole process holds O(1)
// runtime timers no matter how many homes, sessions and appliances it
// hosts. Because the driver exits when the wheel empties, using the shared
// wheel never leaks a goroutine past the last armed timer.
func Shared() *Wheel {
	sharedOnce.Do(func() { sharedWheel = NewWheel(0) })
	return sharedWheel
}

// Timer is one armed callback on a Wheel. Stop and Reset are safe from any
// goroutine, including the callback itself.
type Timer struct {
	w       *Wheel
	fn      func()
	when    int64 // absolute due tick
	period  int64 // ticks between fires; 0 for one-shot
	gen     uint64
	fireGen uint64 // gen snapshot at fire collection; mismatch suppresses fn
	linked  bool
	next    *Timer
	prev    *Timer
	level   int
	slot    int
}

// Pending returns the number of armed timers (tests and health surfaces).
func (w *Wheel) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pending
}

// AfterFunc arms fn to run once after d. The returned timer can be
// stopped or reset like time.AfterFunc's.
func (w *Wheel) AfterFunc(d time.Duration, fn func()) *Timer {
	t := &Timer{w: w, fn: fn}
	w.mu.Lock()
	w.armLocked(t, d)
	w.mu.Unlock()
	w.kickDriver()
	return t
}

// Every arms fn to run every d until the timer is stopped. The first fire
// is one period out. Fires never overlap (the driver is one goroutine);
// a fire that outruns the period delays subsequent fires rather than
// stacking them.
func (w *Wheel) Every(d time.Duration, fn func()) *Timer {
	t := &Timer{w: w, fn: fn}
	w.mu.Lock()
	t.period = w.ticksFor(d)
	w.armLocked(t, d)
	w.mu.Unlock()
	w.kickDriver()
	return t
}

// Stop disarms the timer and reports whether it was armed. A fire that was
// collected but has not started running is suppressed; one whose callback
// already started is past stopping (like time.Timer.Stop, Stop does not
// wait for the callback).
func (t *Timer) Stop() bool {
	w := t.w
	w.mu.Lock()
	t.gen++ // invalidates an in-flight fire collection
	t.period = 0
	was := t.linked
	if t.linked {
		w.unlinkLocked(t)
		w.pending--
		mWheelTimers.Dec()
	}
	emptied := w.pending == 0 && w.running
	w.mu.Unlock()
	if emptied {
		// Wake the driver so it notices the empty wheel and exits now,
		// instead of sleeping out the stopped timer's deadline — a wheel
		// with nothing armed should hold no goroutine promptly.
		select {
		case w.rearm <- struct{}{}:
		default:
		}
	}
	return was
}

// Reset re-arms the timer for d from now, whether or not it was still
// armed, preserving its periodic interval if it had one.
func (t *Timer) Reset(d time.Duration) {
	w := t.w
	w.mu.Lock()
	t.gen++
	if t.linked {
		w.unlinkLocked(t)
		w.pending--
		mWheelTimers.Dec()
	}
	w.armLocked(t, d)
	w.mu.Unlock()
	w.kickDriver()
}

// ticksFor converts a duration to a tick count, rounding up and clamping
// to at least one tick so a timer never fires early or immediately-in-past.
func (w *Wheel) ticksFor(d time.Duration) int64 {
	if d <= 0 {
		return 1
	}
	n := (int64(d) + int64(w.tick) - 1) / int64(w.tick)
	if n < 1 {
		n = 1
	}
	return n
}

// nowTick returns the tick index the wall clock has reached.
func (w *Wheel) nowTick() int64 { return int64(time.Since(w.epoch) / w.tick) }

// armLocked links t to fire no earlier than d from now: the due tick is
// the ceiling of the absolute due instant, so a timer can be late by up to
// one tick but never early. w.mu held.
func (w *Wheel) armLocked(t *Timer, d time.Duration) {
	if d < 0 {
		d = 0
	}
	due := time.Since(w.epoch) + d
	when := (int64(due) + int64(w.tick) - 1) / int64(w.tick)
	if when <= w.cur {
		when = w.cur + 1
	}
	t.when = when
	w.placeLocked(t)
	w.pending++
	mWheelTimers.Inc()
}

// placeLocked links t into the slot for its due tick. The level is chosen
// by the distance from the processed cursor: near timers go to level 0
// (exact tick), far ones to coarser levels and cascade down as the cursor
// approaches. w.mu held.
func (w *Wheel) placeLocked(t *Timer) {
	delta := t.when - w.cur
	if delta < 1 {
		delta = 1
		t.when = w.cur + 1
	}
	level := 0
	span := int64(wheelSlots)
	for level < wheelLevels-1 && delta >= span {
		level++
		span <<= wheelBits
	}
	slot := int((t.when >> (uint(level) * wheelBits)) & wheelMask)
	t.level, t.slot, t.linked = level, slot, true
	head := w.slots[level][slot]
	t.next = head
	t.prev = nil
	if head != nil {
		head.prev = t
	}
	w.slots[level][slot] = t
}

func (w *Wheel) unlinkLocked(t *Timer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		w.slots[t.level][t.slot] = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	t.next, t.prev, t.linked = nil, nil, false
}

// kickDriver ensures the driver goroutine is running and recomputing its
// sleep after an arm/reset.
func (w *Wheel) kickDriver() {
	w.mu.Lock()
	if w.pending == 0 {
		w.mu.Unlock()
		return
	}
	if !w.running {
		w.running = true
		w.mu.Unlock()
		go w.drive()
		return
	}
	w.mu.Unlock()
	select {
	case w.rearm <- struct{}{}:
	default:
	}
}

// drive is the wheel's single goroutine: advance the cursor to the wall
// clock, cascade coarse slots down, fire due timers, sleep until the next
// one. It exits when the wheel empties (and is restarted by the next arm).
func (w *Wheel) drive() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		w.mu.Lock()
		fired := w.advanceLocked()
		if w.pending == 0 && len(fired) == 0 {
			w.running = false
			w.mu.Unlock()
			return
		}
		sleep := w.nextSleepLocked()
		w.mu.Unlock()

		for _, t := range fired {
			w.mu.Lock()
			live := t.gen == t.fireGen
			w.mu.Unlock()
			if live {
				mWheelFires.Inc()
				t.fn()
			}
		}
		if len(fired) > 0 {
			// Firing took time (and periodic timers re-armed): loop to
			// re-advance before sleeping.
			w.recycleFired(fired)
			continue
		}

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(sleep)
		select {
		case <-timer.C:
		case <-w.rearm:
		}
	}
}

// advanceLocked processes every tick up to the wall clock: cascading
// higher-level slots as their boundaries pass and collecting due level-0
// timers. Periodic timers re-arm immediately. Returns the batch to fire
// (in recycled storage; hand back via recycleFired).
func (w *Wheel) advanceLocked() []*Timer {
	fired := w.fired[:0]
	w.fired = nil
	now := w.nowTick()
	for w.cur < now {
		w.cur++
		cur := w.cur
		// Cascade: when the cursor enters a new level-N slot span, pull
		// that level's current slot down (timers re-place to finer levels).
		for level := 1; level < wheelLevels; level++ {
			shift := uint(level) * wheelBits
			if cur&((1<<shift)-1) != 0 {
				break
			}
			slot := int((cur >> shift) & wheelMask)
			head := w.slots[level][slot]
			w.slots[level][slot] = nil
			for head != nil {
				next := head.next
				head.next, head.prev, head.linked = nil, nil, false
				if head.when <= cur {
					head.when = cur // due: land in the current level-0 pass
				}
				w.placeLocked(head)
				head = next
			}
		}
		slot := int(cur & wheelMask)
		head := w.slots[0][slot]
		for head != nil {
			next := head.next
			if head.when == cur {
				w.unlinkLocked(head)
				if head.period > 0 {
					head.when = cur + head.period
					w.placeLocked(head)
				} else {
					w.pending--
					mWheelTimers.Dec()
				}
				head.fireGen = head.gen
				fired = append(fired, head)
			}
			head = next
		}
	}
	return fired
}

// recycleFired returns a fire batch's storage for the next advance.
func (w *Wheel) recycleFired(batch []*Timer) {
	for i := range batch {
		batch[i] = nil
	}
	w.mu.Lock()
	if w.fired == nil {
		w.fired = batch[:0]
	}
	w.mu.Unlock()
}

// nextSleepLocked computes how long the driver may sleep: until the next
// level-0 timer if one is due before the next level-1 cascade boundary,
// otherwise to that boundary (so coarse timers are always cascaded down in
// time, never skipped past). w.mu held.
func (w *Wheel) nextSleepLocked() time.Duration {
	next := ((w.cur >> wheelBits) + 1) << wheelBits // next cascade boundary
	for tick := w.cur + 1; tick <= next; tick++ {
		found := false
		for t := w.slots[0][int(tick&wheelMask)]; t != nil; t = t.next {
			if t.when == tick {
				found = true
				break
			}
		}
		if found {
			next = tick
			break
		}
	}
	due := w.epoch.Add(time.Duration(next) * w.tick)
	sleep := time.Until(due)
	if sleep < w.tick {
		sleep = w.tick
	}
	return sleep
}
