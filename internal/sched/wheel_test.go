package sched

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestAfterFuncFiresOnceNeverEarly(t *testing.T) {
	w := NewWheel(time.Millisecond)
	const d = 20 * time.Millisecond
	start := time.Now()
	fired := make(chan time.Duration, 1)
	w.AfterFunc(d, func() { fired <- time.Since(start) })
	select {
	case lat := <-fired:
		if lat < d {
			t.Fatalf("fired early: %v < %v", lat, d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
	if n := w.Pending(); n != 0 {
		t.Fatalf("Pending() = %d after one-shot fire, want 0", n)
	}
}

func TestCoarseTimersCascadeOnTime(t *testing.T) {
	// Durations past one level-0 revolution (64 ticks) land on coarser
	// levels and must cascade down — firing close to schedule, not at the
	// next full revolution.
	w := NewWheel(time.Millisecond)
	for _, d := range []time.Duration{70 * time.Millisecond, 130 * time.Millisecond, 300 * time.Millisecond} {
		start := time.Now()
		fired := make(chan time.Duration, 1)
		w.AfterFunc(d, func() { fired <- time.Since(start) })
		select {
		case lat := <-fired:
			if lat < d {
				t.Fatalf("%v timer fired early at %v", d, lat)
			}
			if lat > d+d/2+50*time.Millisecond {
				t.Fatalf("%v timer fired way late at %v (cascade missed?)", d, lat)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%v timer never fired", d)
		}
	}
}

func TestTimerStop(t *testing.T) {
	w := NewWheel(time.Millisecond)
	var fired atomic.Int32
	tm := w.AfterFunc(30*time.Millisecond, func() { fired.Add(1) })
	if !tm.Stop() {
		t.Fatal("Stop() = false for an armed timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true")
	}
	time.Sleep(60 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatal("stopped timer fired")
	}
	if n := w.Pending(); n != 0 {
		t.Fatalf("Pending() = %d after Stop, want 0", n)
	}
}

func TestTimerReset(t *testing.T) {
	w := NewWheel(time.Millisecond)
	start := time.Now()
	fired := make(chan time.Duration, 1)
	tm := w.AfterFunc(10*time.Millisecond, func() { fired <- time.Since(start) })
	const d = 60 * time.Millisecond
	tm.Reset(d)
	select {
	case lat := <-fired:
		if lat < d {
			t.Fatalf("reset timer fired at %v, want >= %v", lat, d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reset timer never fired")
	}
	// Reset re-arms even after firing.
	tm.Reset(10 * time.Millisecond)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("re-armed timer never fired")
	}
}

func TestEveryFiresPeriodicallyUntilStop(t *testing.T) {
	w := NewWheel(time.Millisecond)
	var fires atomic.Int32
	tm := w.Every(5*time.Millisecond, func() { fires.Add(1) })
	waitFor(t, "3 periodic fires", func() bool { return fires.Load() >= 3 })
	tm.Stop()
	n := fires.Load()
	time.Sleep(30 * time.Millisecond)
	if got := fires.Load(); got != n {
		t.Fatalf("periodic timer fired %d more times after Stop", got-n)
	}
	if p := w.Pending(); p != 0 {
		t.Fatalf("Pending() = %d after stopping periodic timer, want 0", p)
	}
}

func TestDriverExitsWhenWheelEmpties(t *testing.T) {
	w := NewWheel(time.Millisecond)
	before := runtime.NumGoroutine()
	done := make(chan struct{})
	w.AfterFunc(5*time.Millisecond, func() { close(done) })
	<-done
	waitFor(t, "driver goroutine exit", func() bool {
		runtime.Gosched()
		return runtime.NumGoroutine() <= before
	})
}

func TestManyTimersOneDriver(t *testing.T) {
	// 10k armed timers must cost one goroutine (the driver), not 10k.
	w := NewWheel(time.Millisecond)
	base := runtime.NumGoroutine()
	var fires atomic.Int32
	timers := make([]*Timer, 10000)
	for i := range timers {
		timers[i] = w.AfterFunc(time.Duration(1+i%50)*100*time.Millisecond, func() { fires.Add(1) })
	}
	if n := w.Pending(); n != 10000 {
		t.Fatalf("Pending() = %d, want 10000", n)
	}
	if g := runtime.NumGoroutine(); g > base+2 {
		t.Fatalf("10k armed timers spawned %d goroutines, want O(1)", g-base)
	}
	for _, tm := range timers {
		tm.Stop()
	}
	if n := w.Pending(); n != 0 {
		t.Fatalf("Pending() = %d after stopping all, want 0", n)
	}
}

func TestStopFromCallbackAndSelfReset(t *testing.T) {
	w := NewWheel(time.Millisecond)
	var fires atomic.Int32
	var tm *Timer
	armed := make(chan struct{})
	tm = w.Every(3*time.Millisecond, func() {
		if fires.Add(1) == 2 {
			<-armed // ensure tm is assigned
			tm.Stop()
		}
	})
	close(armed)
	waitFor(t, "self-stop", func() bool { return fires.Load() >= 2 })
	time.Sleep(20 * time.Millisecond)
	if got := fires.Load(); got != 2 {
		t.Fatalf("timer fired %d times after stopping itself, want 2", got)
	}
}

func TestSharedWheelSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared() returned different wheels")
	}
	done := make(chan struct{})
	Shared().AfterFunc(2*time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("shared wheel never fired")
	}
}

// BenchmarkTimerWheel is a gated bench: the cost of re-arming a timer on a
// busy wheel (the handshake-timeout / sweep-reschedule hot path). Must stay
// allocation-free.
func BenchmarkTimerWheel(b *testing.B) {
	w := NewWheel(time.Millisecond)
	// Populate the wheel so re-arm traverses realistic slot chains.
	bg := make([]*Timer, 512)
	for i := range bg {
		bg[i] = w.AfterFunc(time.Duration(i+1)*time.Hour/512, func() {})
	}
	tm := w.AfterFunc(time.Hour, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(time.Duration(1+i%1000) * time.Millisecond)
	}
	b.StopTimer()
	tm.Stop()
	for _, t := range bg {
		t.Stop()
	}
}
