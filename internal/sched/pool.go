// Package sched is the budgeted event runtime behind the connection path:
// a shared worker pool draining a run-queue of session "turns", and a
// hierarchical timer wheel absorbing the process's periodic work.
//
// The goroutines-per-session model the paper's scale assumes (a handful of
// sessions per home) breaks down at 100k+ sessions per process: stacks,
// per-session timers and pinned scratch dominate memory while almost every
// session is idle. sched inverts the model — sessions become Tasks whose
// state machine (idle → queued → running → re-queued) guarantees a task is
// on the run-queue at most once, a fixed-size worker set executes turns,
// and all timers in the process collapse onto O(1) OS timers via Wheel.
// Idle cost per session drops to the task struct; CPU cost stays where the
// work is.
package sched

import (
	"runtime"
	"sync"
	"time"

	"uniint/internal/metrics"
)

// Run-queue instruments. Queue lag (enqueue → worker pickup) is the
// scheduler-saturation signal: a deep queue with low lag is a burst, low
// depth with high lag means the workers are pinned by slow turns.
var (
	mQueueDepth = metrics.Default().Gauge("sched_queue_depth")
	mWorkers    = metrics.Default().Gauge("sched_workers")
	mTurns      = metrics.Default().Counter("sched_turns_total")
	mQueueLag   = metrics.Default().Histogram("sched_queue_lag_seconds", metrics.LatencyBuckets())
)

// Pool is a fixed-size worker set draining an unbounded FIFO run-queue of
// Tasks. Enqueueing never blocks (the protocol read path kicks tasks), so
// backpressure from slow turns shows up as queue depth and lag, never as a
// stalled producer.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*Task // FIFO; head compacted lazily
	head   int
	closed bool
	wg     sync.WaitGroup

	workers int
}

// DefaultWorkers is the worker count used when NewPool is given n <= 0:
// one turn executor per P, floored so small containers still overlap a
// blocked turn (a slow transport write) with runnable ones.
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	return n
}

// NewPool starts a pool with n workers (n <= 0 selects DefaultWorkers).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = DefaultWorkers()
	}
	p := &Pool{workers: n}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	mWorkers.Add(int64(n))
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Queued returns the current run-queue depth (tasks waiting for a worker).
func (p *Pool) Queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.q) - p.head
}

// NewTask binds fn as a task's turn. fn is executed by pool workers, one
// turn at a time (never concurrently with itself), each time the task is
// kicked. Turns should do a bounded batch of work and return; work arriving
// mid-turn re-queues the task instead of being lost.
func (p *Pool) NewTask(fn func()) *Task {
	return &Task{pool: p, fn: fn}
}

// Go runs fn once on the pool — the one-shot convenience for work that is
// not a recurring session turn (park compression, deferred teardown).
func (p *Pool) Go(fn func()) {
	p.NewTask(fn).Kick()
}

// Close stops the workers after the queue drains and waits for in-flight
// turns to return. Tasks kicked after Close never run.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	mWorkers.Add(int64(-p.workers))
}

// push appends t to the run-queue (t.state already queued).
func (p *Pool) push(t *Task) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.q = append(p.q, t)
	p.cond.Signal()
	p.mu.Unlock()
	mQueueDepth.Inc()
}

// pop blocks for the next queued task, returning nil at close.
func (p *Pool) pop() *Task {
	p.mu.Lock()
	for {
		if p.head < len(p.q) {
			t := p.q[p.head]
			p.q[p.head] = nil
			p.head++
			if p.head == len(p.q) {
				p.q = p.q[:0]
				p.head = 0
			} else if p.head > 64 && p.head*2 > len(p.q) {
				n := copy(p.q, p.q[p.head:])
				for i := n; i < len(p.q); i++ {
					p.q[i] = nil
				}
				p.q = p.q[:n]
				p.head = 0
			}
			p.mu.Unlock()
			mQueueDepth.Dec()
			return t
		}
		if p.closed {
			p.mu.Unlock()
			return nil
		}
		p.cond.Wait()
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		t := p.pop()
		if t == nil {
			return
		}
		t.run()
	}
}

// Task states. A task is on the run-queue iff its state is taskQueued, so
// a session is queued at most once no matter how many kicks land on it.
const (
	taskIdle int8 = iota
	taskQueued
	taskRunning
	taskStopped
)

// Task is one unit of schedulable session work (a writer, a dispatcher, a
// read pump). Kick marks it runnable; the pool executes its turn function.
// The state machine collapses redundant kicks: idle → queued (enqueued),
// queued → queued (no-op), running → re-queued after the turn returns.
type Task struct {
	pool *Pool
	fn   func()

	mu      sync.Mutex
	cond    *sync.Cond // lazily created; waited on by Stop while running
	state   int8
	rerun   bool // kicked while running: re-queue after the turn
	stopReq bool
	enqAt   int64 // UnixNano at enqueue, for the queue-lag histogram
}

// Kick marks the task runnable. Safe from any goroutine, never blocks,
// allocation-free; redundant kicks coalesce.
func (t *Task) Kick() {
	t.mu.Lock()
	if t.stopReq || t.state == taskStopped {
		t.mu.Unlock()
		return
	}
	switch t.state {
	case taskIdle:
		t.state = taskQueued
		t.enqAt = time.Now().UnixNano()
		t.mu.Unlock()
		t.pool.push(t)
	case taskRunning:
		t.rerun = true
		t.mu.Unlock()
	default: // queued: already on the run-queue
		t.mu.Unlock()
	}
}

// Stop prevents further turns and waits for an in-flight one to return:
// after Stop, the task's fn is not running and will never run again.
// Must not be called from the task's own turn (it would wait on itself).
func (t *Task) Stop() {
	t.mu.Lock()
	t.stopReq = true
	for t.state == taskRunning {
		if t.cond == nil {
			t.cond = sync.NewCond(&t.mu)
		}
		t.cond.Wait()
	}
	t.state = taskStopped
	t.mu.Unlock()
}

// run executes one turn (pool worker).
func (t *Task) run() {
	t.mu.Lock()
	if t.state != taskQueued || t.stopReq {
		// Stopped (or stop-requested) while waiting in the queue.
		if t.stopReq && t.state == taskQueued {
			t.state = taskIdle
		}
		t.mu.Unlock()
		return
	}
	t.state = taskRunning
	t.rerun = false
	lag := time.Now().UnixNano() - t.enqAt
	t.mu.Unlock()
	mQueueLag.Observe(float64(lag) / 1e9)
	mTurns.Inc()

	t.fn()

	t.mu.Lock()
	rerun := t.rerun && !t.stopReq
	t.rerun = false
	if rerun {
		t.state = taskQueued
		t.enqAt = time.Now().UnixNano()
	} else {
		t.state = taskIdle
	}
	if t.cond != nil {
		t.cond.Broadcast()
	}
	t.mu.Unlock()
	if rerun {
		t.pool.push(t)
	}
}
