package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolRunsKickedTask(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var ran atomic.Int32
	task := p.NewTask(func() { ran.Add(1) })
	task.Kick()
	waitFor(t, "turn to run", func() bool { return ran.Load() == 1 })
}

func TestTaskNeverRunsConcurrently(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var inTurn, maxInTurn, turns atomic.Int32
	task := p.NewTask(func() {
		n := inTurn.Add(1)
		if m := maxInTurn.Load(); n > m {
			maxInTurn.CompareAndSwap(m, n)
		}
		time.Sleep(100 * time.Microsecond)
		inTurn.Add(-1)
		turns.Add(1)
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				task.Kick()
			}
		}()
	}
	wg.Wait()
	waitFor(t, "queue to drain", func() bool { return p.Queued() == 0 })
	task.Stop()
	if got := maxInTurn.Load(); got != 1 {
		t.Fatalf("turn ran concurrently with itself: max in-turn = %d", got)
	}
	if turns.Load() == 0 {
		t.Fatal("no turns ran")
	}
}

func TestKicksCoalesceWhileQueued(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	gate := make(chan struct{})
	var blockerIn = make(chan struct{})
	// Pin the single worker so the task under test stays queued.
	p.Go(func() { close(blockerIn); <-gate })
	<-blockerIn

	var turns atomic.Int32
	task := p.NewTask(func() { turns.Add(1) })
	for i := 0; i < 100; i++ {
		task.Kick()
	}
	if got := p.Queued(); got != 1 {
		t.Fatalf("100 kicks queued the task %d times, want 1", got)
	}
	close(gate)
	waitFor(t, "coalesced turn", func() bool { return turns.Load() > 0 })
	time.Sleep(10 * time.Millisecond)
	if got := turns.Load(); got != 1 {
		t.Fatalf("coalesced kicks ran %d turns, want 1", got)
	}
}

func TestKickDuringTurnReruns(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	var turns atomic.Int32
	var task *Task
	task = p.NewTask(func() {
		if turns.Add(1) == 1 {
			entered <- struct{}{}
			<-release
		}
	})
	task.Kick()
	<-entered
	task.Kick() // lands mid-turn: must re-queue, not be lost
	task.Kick() // and coalesce with the one above
	close(release)
	waitFor(t, "rerun turn", func() bool { return turns.Load() == 2 })
	time.Sleep(10 * time.Millisecond)
	if got := turns.Load(); got != 2 {
		t.Fatalf("mid-turn kicks ran %d turns total, want 2", got)
	}
}

func TestStopWaitsForInFlightTurn(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	entered := make(chan struct{})
	release := make(chan struct{})
	var done atomic.Bool
	task := p.NewTask(func() {
		close(entered)
		<-release
		done.Store(true)
	})
	task.Kick()
	<-entered
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(release)
	}()
	task.Stop()
	if !done.Load() {
		t.Fatal("Stop returned while the turn was still running")
	}
	task.Kick() // must be a no-op after Stop
	time.Sleep(5 * time.Millisecond)
	if p.Queued() != 0 {
		t.Fatal("kick after Stop enqueued the task")
	}
}

func TestPoolGoRunsEachOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var ran atomic.Int32
	for i := 0; i < 64; i++ {
		p.Go(func() { ran.Add(1) })
	}
	waitFor(t, "one-shots", func() bool { return ran.Load() == 64 })
}

func TestPoolCloseDrainsQueue(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int32
	for i := 0; i < 32; i++ {
		p.Go(func() { ran.Add(1) })
	}
	p.Close()
	if got := ran.Load(); got != 32 {
		t.Fatalf("Close drained %d of 32 queued one-shots", got)
	}
	p.Close() // idempotent
}

func TestDefaultWorkersFloor(t *testing.T) {
	if DefaultWorkers() < 4 {
		t.Fatalf("DefaultWorkers() = %d, want >= 4", DefaultWorkers())
	}
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != DefaultWorkers() {
		t.Fatalf("NewPool(0).Workers() = %d, want %d", p.Workers(), DefaultWorkers())
	}
}
