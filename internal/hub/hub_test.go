package hub

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uniint/internal/metrics"
	"uniint/internal/rfb"
)

// stubHome is a minimal ConnHandler: echoes one byte per connection and
// records lifecycle. Factories wrap it with AdaptConnHandler.
type stubHome struct {
	id     string
	closed atomic.Bool
	served atomic.Int64
}

func (s *stubHome) HandleConn(conn net.Conn) error {
	defer conn.Close()
	s.served.Add(1)
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err != nil {
		return err
	}
	_, err := conn.Write(buf)
	return err
}

func (s *stubHome) Close() { s.closed.Store(true) }

// stubFactory counts creations per id.
type stubFactory struct {
	mu      sync.Mutex
	created map[string]int
	homes   map[string]*stubHome
}

func newStubFactory() *stubFactory {
	return &stubFactory{created: make(map[string]int), homes: make(map[string]*stubHome)}
}

func (f *stubFactory) factory(id string) (Host, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.created[id]++
	h := &stubHome{id: id}
	f.homes[id] = h
	return AdaptConnHandler(h), nil
}

func (f *stubFactory) creations(id string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.created[id]
}

func (f *stubFactory) home(id string) *stubHome {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.homes[id]
}

func newTestHub(t *testing.T, opts Options) (*Hub, *stubFactory) {
	t.Helper()
	f := newStubFactory()
	if opts.Factory == nil {
		opts.Factory = f.factory
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	h, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h, f
}

func TestAdmitOnce(t *testing.T) {
	h, f := newTestHub(t, Options{Shards: 4})
	a, err := h.Admit("home-1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Admit("home-1")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second admission returned a different home")
	}
	if got := f.creations("home-1"); got != 1 {
		t.Fatalf("factory ran %d times, want 1", got)
	}
	if h.Homes() != 1 {
		t.Fatalf("Homes() = %d, want 1", h.Homes())
	}
}

func TestAdmitConcurrentSingleCreation(t *testing.T) {
	h, f := newTestHub(t, Options{Shards: 8})
	const workers, homes = 32, 16
	var wg sync.WaitGroup
	errs := make(chan error, workers*homes)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < homes; i++ {
				if _, err := h.Admit(fmt.Sprintf("home-%03d", i)); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if h.Homes() != homes {
		t.Fatalf("Homes() = %d, want %d", h.Homes(), homes)
	}
	for i := 0; i < homes; i++ {
		id := fmt.Sprintf("home-%03d", i)
		if got := f.creations(id); got != 1 {
			t.Fatalf("%s created %d times, want 1", id, got)
		}
	}
	if got := len(h.HomeIDs()); got != homes {
		t.Fatalf("HomeIDs() has %d entries, want %d", got, homes)
	}
}

func TestGetDoesNotAdmit(t *testing.T) {
	h, _ := newTestHub(t, Options{})
	if _, err := h.Get("nope"); !errors.Is(err, ErrUnknownHome) {
		t.Fatalf("Get on absent home: %v, want ErrUnknownHome", err)
	}
	if h.Homes() != 0 {
		t.Fatal("Get must not admit")
	}
	if _, err := h.Admit("yes"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get("yes"); err != nil {
		t.Fatalf("Get after admit: %v", err)
	}
}

func TestMaxHomes(t *testing.T) {
	h, _ := newTestHub(t, Options{MaxHomes: 2})
	for i := 0; i < 2; i++ {
		if _, err := h.Admit(fmt.Sprintf("h%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Admit("h2"); !errors.Is(err, ErrFull) {
		t.Fatalf("third admission: %v, want ErrFull", err)
	}
	// Resident homes stay reachable at capacity.
	if _, err := h.Admit("h0"); err != nil {
		t.Fatalf("resident admission at capacity: %v", err)
	}
	// Eviction frees a slot.
	if !h.Evict("h0") {
		t.Fatal("evict failed")
	}
	if _, err := h.Admit("h2"); err != nil {
		t.Fatalf("admission after eviction: %v", err)
	}
}

func TestRouteServesConnection(t *testing.T) {
	h, f := newTestHub(t, Options{})
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- h.Route("home-a", server) }()

	if _, err := client.Write([]byte{0x42}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := client.Read(buf); err != nil || buf[0] != 0x42 {
		t.Fatalf("echo: %v %x", err, buf)
	}
	client.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := f.home("home-a").served.Load(); got != 1 {
		t.Fatalf("served = %d, want 1", got)
	}
	if h.Connections() != 0 {
		t.Fatalf("connections = %d after disconnect, want 0", h.Connections())
	}
}

func TestServeConnPreambleRouting(t *testing.T) {
	h, f := newTestHub(t, Options{})
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- h.ServeConn(server) }()

	if err := WritePreamble(client, "home-42"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write([]byte{7}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := client.Read(buf); err != nil || buf[0] != 7 {
		t.Fatalf("echo through preamble routing: %v %x", err, buf)
	}
	client.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if f.home("home-42") == nil {
		t.Fatal("preamble did not admit home-42")
	}
}

func TestServeConnBadPreamble(t *testing.T) {
	h, _ := newTestHub(t, Options{})
	for _, line := range []string{"GARBAGE home-1\n", "UNIHUB/1 \n", strings.Repeat("x", 400)} {
		client, server := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- h.ServeConn(server) }()
		go func() {
			client.Write([]byte(line))
			client.Close()
		}()
		if err := <-done; !errors.Is(err, ErrBadPreamble) {
			t.Fatalf("line %q: %v, want ErrBadPreamble", line[:min(len(line), 20)], err)
		}
	}
	if h.Homes() != 0 {
		t.Fatal("bad preambles must not admit homes")
	}
}

func TestPreambleRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WritePreamble(&sb, "kitchen-home"); err != nil {
		t.Fatal(err)
	}
	id, token, err := ReadPreamble(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if id != "kitchen-home" || token != "" {
		t.Fatalf("round trip = %q token %q", id, token)
	}
	// The reader must not consume past the newline.
	r := strings.NewReader(sb.String() + "PROTO")
	if _, _, err := ReadPreamble(r); err != nil {
		t.Fatal(err)
	}
	rest := make([]byte, 5)
	if _, err := r.Read(rest); err != nil || string(rest) != "PROTO" {
		t.Fatalf("preamble over-read: %q %v", rest, err)
	}
	if err := WritePreamble(&sb, "has space"); err == nil {
		t.Fatal("home id with space must be rejected")
	}
	if err := WritePreamble(&sb, ""); err == nil {
		t.Fatal("empty home id must be rejected")
	}
}

func TestPreambleTokenRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := WritePreambleToken(&sb, "home-7", "deadbeef"); err != nil {
		t.Fatal(err)
	}
	id, token, err := ReadPreamble(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if id != "home-7" || token != "deadbeef" {
		t.Fatalf("round trip = %q token %q", id, token)
	}
	// Token routing wildcard.
	sb.Reset()
	if err := WritePreambleToken(&sb, TokenHome, "deadbeef"); err != nil {
		t.Fatal(err)
	}
	if id, token, err = ReadPreamble(strings.NewReader(sb.String())); err != nil || id != TokenHome || token != "deadbeef" {
		t.Fatalf("token-route round trip = %q %q %v", id, token, err)
	}
	// Malformed variants.
	if err := WritePreambleToken(&sb, TokenHome, ""); err == nil {
		t.Fatal("token routing without a token must be rejected")
	}
	if err := WritePreambleToken(&sb, "home-7", "has space"); err == nil {
		t.Fatal("token with space must be rejected")
	}
	if _, _, err := ReadPreamble(strings.NewReader("UNIHUB/1 home-7 a b\n")); err == nil {
		t.Fatal("two token fields must be rejected")
	}
	if _, _, err := ReadPreamble(strings.NewReader("UNIHUB/1 ~\n")); err == nil {
		t.Fatal("bare token-route wildcard must be rejected")
	}
}

func TestEvictPinnedHomeRefused(t *testing.T) {
	h, f := newTestHub(t, Options{})
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- h.Route("busy", server) }()
	// Wait for the connection to pin the home.
	deadline := time.Now().Add(2 * time.Second)
	for h.Connections() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection never pinned")
		}
		time.Sleep(time.Millisecond)
	}
	if h.Evict("busy") {
		t.Fatal("evicted a home with a live connection")
	}
	if f.home("busy").closed.Load() {
		t.Fatal("home closed while pinned")
	}
	client.Close()
	<-done
	if !h.Evict("busy") {
		t.Fatal("eviction after disconnect failed")
	}
	if !f.home("busy").closed.Load() {
		t.Fatal("evicted home not closed")
	}
}

func TestIdleSweep(t *testing.T) {
	h, f := newTestHub(t, Options{IdleTimeout: 10 * time.Millisecond})
	if _, err := h.Admit("sleepy"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	h.sweep()
	if h.Homes() != 0 {
		t.Fatalf("idle home survived sweep: %d resident", h.Homes())
	}
	if !f.home("sleepy").closed.Load() {
		t.Fatal("swept home not closed")
	}
	// Re-admission after eviction works.
	if _, err := h.Admit("sleepy"); err != nil {
		t.Fatal(err)
	}
	if got := f.creations("sleepy"); got != 2 {
		t.Fatalf("creations = %d, want 2", got)
	}
}

func TestDrainRejectsNewHomes(t *testing.T) {
	h, _ := newTestHub(t, Options{})
	if _, err := h.Admit("resident"); err != nil {
		t.Fatal(err)
	}
	if err := h.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Admit("newcomer"); !errors.Is(err, ErrDraining) {
		t.Fatalf("admission while draining: %v, want ErrDraining", err)
	}
	// Resident homes keep serving while draining.
	if _, err := h.Admit("resident"); err != nil {
		t.Fatalf("resident lookup while draining: %v", err)
	}
}

func TestCloseShutsHomesAndRejects(t *testing.T) {
	h, f := newTestHub(t, Options{})
	for i := 0; i < 5; i++ {
		if _, err := h.Admit(fmt.Sprintf("h%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	h.Close()
	for i := 0; i < 5; i++ {
		if !f.home(fmt.Sprintf("h%d", i)).closed.Load() {
			t.Fatalf("h%d not closed", i)
		}
	}
	if h.Homes() != 0 {
		t.Fatalf("Homes() = %d after Close", h.Homes())
	}
	if _, err := h.Admit("late"); !errors.Is(err, ErrClosed) {
		t.Fatalf("admission after close: %v, want ErrClosed", err)
	}
	h.Close() // idempotent
}

func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 16}, {1, 1}, {3, 4}, {16, 16}, {17, 32}, {100, 128},
	} {
		opts := Options{Factory: func(string) (Host, error) { return AdaptConnHandler(&stubHome{}), nil },
			Shards: tc.in, Metrics: metrics.NewRegistry()}
		h, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(h.shards); got != tc.want {
			t.Fatalf("Shards %d → %d shards, want %d", tc.in, got, tc.want)
		}
		h.Close()
	}
}

func TestConcurrentRouteAndEvict(t *testing.T) {
	h, _ := newTestHub(t, Options{Shards: 4})
	const homes = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Evictor hammers all homes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for i := 0; i < homes; i++ {
					h.Evict(fmt.Sprintf("h%d", i))
				}
			}
		}
	}()
	// Routers keep connecting.
	var served atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("h%d", (w+i)%homes)
				client, server := net.Pipe()
				done := make(chan error, 1)
				go func() { done <- h.Route(id, server) }()
				client.Write([]byte{1})
				buf := make([]byte, 1)
				if _, err := client.Read(buf); err == nil {
					served.Add(1)
				}
				client.Close()
				<-done
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no connection survived route/evict churn")
	}
}

func TestHubMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	h, _ := newTestHub(t, Options{Metrics: reg})
	if _, err := h.Admit("m1"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Admit("m1"); err != nil {
		t.Fatal(err)
	}
	h.Evict("m1")
	s := reg.Snapshot()
	if s.Counters["hub_admissions_total"] != 1 {
		t.Fatalf("admissions = %d", s.Counters["hub_admissions_total"])
	}
	if s.Counters["hub_route_hits_total"] != 1 || s.Counters["hub_route_misses_total"] != 1 {
		t.Fatalf("hits/misses = %d/%d", s.Counters["hub_route_hits_total"], s.Counters["hub_route_misses_total"])
	}
	if s.Counters["hub_evictions_total"] != 1 {
		t.Fatalf("evictions = %d", s.Counters["hub_evictions_total"])
	}
	if s.Gauges["hub_homes"] != 0 {
		t.Fatalf("hub_homes gauge = %d, want 0", s.Gauges["hub_homes"])
	}
}

func TestAdmitRacingCloseLeaksNothing(t *testing.T) {
	// Homes admitted concurrently with Close must either fail admission
	// or end up closed — never resident in a closed hub.
	for round := 0; round < 20; round++ {
		f := newStubFactory()
		h, err := New(Options{Factory: f.factory, Metrics: metrics.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					_, _ = h.Admit(fmt.Sprintf("r%d-w%d-h%d", round, w, i))
				}
			}(w)
		}
		h.Close()
		wg.Wait()
		if got := h.Homes(); got != 0 {
			t.Fatalf("round %d: %d homes resident after Close", round, got)
		}
		f.mu.Lock()
		for id, home := range f.homes {
			if !home.closed.Load() {
				t.Fatalf("round %d: %s created but never closed", round, id)
			}
		}
		f.mu.Unlock()
	}
}

func TestFactoryErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	h, _ := newTestHub(t, Options{Factory: func(id string) (Host, error) {
		return nil, boom
	}})
	if _, err := h.Admit("x"); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if h.Homes() != 0 {
		t.Fatal("failed admission left a resident home")
	}
}

// parkingHome is a stubHome extended to the full Host surface with a
// controllable one-slot detach lot for eviction and migration tests.
type parkingHome struct {
	stubHome
	parked atomic.Int64
	token  atomic.Value // string
}

func (p *parkingHome) AttachEdge(conn net.Conn, onClose func()) error {
	conn.Close()
	return ErrNoEdge
}

func (p *parkingHome) Parked() int { return int(p.parked.Load()) }

func (p *parkingHome) HasParked(token string) bool {
	if p.parked.Load() == 0 {
		return false
	}
	t, _ := p.token.Load().(string)
	return t == token
}

func (p *parkingHome) ParkedTokens() []string {
	if p.parked.Load() == 0 {
		return nil
	}
	t, _ := p.token.Load().(string)
	if t == "" {
		return nil
	}
	return []string{t}
}

func (p *parkingHome) ExportParked(token string) (*rfb.MigrationRecord, bool) {
	if !p.HasParked(token) || !p.claim() {
		return nil, false
	}
	return &rfb.MigrationRecord{Token: token, W: 8, H: 8}, true
}

func (p *parkingHome) ImportParked(rec *rfb.MigrationRecord) error {
	p.token.Store(rec.Token)
	p.parked.Store(1)
	return nil
}

func (p *parkingHome) DetachSessions(time.Duration) error { return nil }

// claim simulates a resume: the parked session leaves the lot for a live
// connection.
func (p *parkingHome) claim() bool {
	return p.parked.CompareAndSwap(1, 0)
}

func TestEvictSkipsParkedHome(t *testing.T) {
	reg := metrics.NewRegistry()
	home := &parkingHome{}
	h, err := New(Options{Metrics: reg, Factory: func(id string) (Host, error) { return home, nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Admit("parked-home"); err != nil {
		t.Fatal(err)
	}

	home.parked.Store(1)
	if h.Evict("parked-home") {
		t.Fatal("evicted a home with a parked session")
	}
	if home.closed.Load() {
		t.Fatal("park-skipped home must stay open")
	}
	if got := reg.Counter("hub_evictions_skipped_parked_total").Value(); got != 1 {
		t.Fatalf("skip counter = %d, want 1", got)
	}

	home.parked.Store(0)
	if !h.Evict("parked-home") {
		t.Fatal("empty-lot home should evict")
	}
}

// TestEvictionRacingResumeClaim hammers Evict against connections that
// claim the parked session (the resume path): whatever interleaving the
// scheduler produces, the home is never evicted while the session is
// parked or its claimant is being served — the claim either lands on the
// resident home or the connection routes to a re-admitted one.
func TestEvictionRacingResumeClaim(t *testing.T) {
	for round := 0; round < 50; round++ {
		reg := metrics.NewRegistry()
		var mu sync.Mutex
		var homes []*parkingHome
		h, err := New(Options{Metrics: reg, Factory: func(id string) (Host, error) {
			ph := &parkingHome{}
			mu.Lock()
			homes = append(homes, ph)
			mu.Unlock()
			return ph, nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Admit("race-home"); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		first := homes[0]
		mu.Unlock()
		first.parked.Store(1)

		evictDone := make(chan bool, 1)
		go func() {
			// Sweep-style eviction pressure.
			ok := false
			for i := 0; i < 100 && !ok; i++ {
				ok = h.Evict("race-home")
			}
			evictDone <- ok
		}()

		// The resume claim: route a connection that claims the parked
		// session during "handshake" (inside HandleConn).
		sc, cc := net.Pipe()
		routeDone := make(chan error, 1)
		go func() { routeDone <- h.Route("race-home", sc) }()
		go func() {
			buf := make([]byte, 1)
			cc.Write([]byte{1})
			cc.Read(buf)
			cc.Close()
		}()
		<-routeDone
		<-evictDone

		// Invariant: the claimant was served by a live home — the echo
		// completed (Route returned after HandleConn) and whichever home
		// served it was not closed underneath the connection.
		mu.Lock()
		served := int64(0)
		for _, ph := range homes {
			served += ph.served.Load()
		}
		mu.Unlock()
		if served != 1 {
			t.Fatalf("round %d: claimant served %d times, want 1", round, served)
		}
		h.Close()
	}
}

// TestDrainRacesAdmitAndTokenResume pins the drain-window contract: a
// draining hub refuses NEW admissions, but resident homes keep routing
// (the lookup fast path precedes the draining check) and a token resume
// for a parked session still lands — a deploy must not strand the
// clients it is waiting for.
func TestDrainRacesAdmitAndTokenResume(t *testing.T) {
	reg := metrics.NewRegistry()
	var mu sync.Mutex
	homes := map[string]*parkingHome{}
	h, err := New(Options{Metrics: reg, Factory: func(id string) (Host, error) {
		ph := &parkingHome{}
		mu.Lock()
		homes[id] = ph
		mu.Unlock()
		return ph, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Admit("resident"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	resident := homes["resident"]
	mu.Unlock()
	resident.parked.Store(1)
	resident.token.Store("tok-drain")

	// A connection that stays open keeps Drain spinning: its HandleConn
	// blocks reading the byte we deliberately withhold.
	held, heldServer := net.Pipe()
	heldDone := make(chan error, 1)
	go func() { heldDone <- h.Route("resident", heldServer) }()
	deadline := time.Now().Add(2 * time.Second)
	for h.Connections() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("held connection never pinned")
		}
		time.Sleep(time.Millisecond)
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- h.Drain(5 * time.Second) }()
	// Drain sets the flag before it waits; poll with fresh ids until an
	// admission observes it (an id that slips in pre-flag would otherwise
	// satisfy every later lookup from the fast path).
	slipped := 0
	for i := 0; ; i++ {
		_, err := h.Admit(fmt.Sprintf("newcomer-%d", i))
		if errors.Is(err, ErrDraining) {
			break
		}
		if err == nil {
			slipped++ // admitted before the flag landed
		}
		if time.Now().After(deadline) {
			t.Fatal("admission never saw the draining flag")
		}
		time.Sleep(time.Millisecond)
	}

	// Resident homes still route mid-drain.
	c1, s1 := net.Pipe()
	done1 := make(chan error, 1)
	go func() { done1 <- h.Route("resident", s1) }()
	c1.Write([]byte{5})
	buf := make([]byte, 1)
	if _, err := c1.Read(buf); err != nil || buf[0] != 5 {
		t.Fatalf("resident route mid-drain: %v %x", err, buf)
	}
	c1.Close()
	if err := <-done1; err != nil {
		t.Fatalf("mid-drain route: %v", err)
	}

	// A token resume lands mid-drain.
	c2, s2 := net.Pipe()
	done2 := make(chan error, 1)
	go func() { done2 <- h.ServeConn(s2) }()
	if err := WritePreambleToken(c2, TokenHome, "tok-drain"); err != nil {
		t.Fatal(err)
	}
	c2.Write([]byte{6})
	if _, err := c2.Read(buf); err != nil || buf[0] != 6 {
		t.Fatalf("token resume mid-drain: %v %x", err, buf)
	}
	c2.Close()
	if err := <-done2; err != nil {
		t.Fatalf("mid-drain token resume: %v", err)
	}

	// Releasing the held connection lets the drain finish clean.
	held.Close()
	<-heldDone
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := reg.Counter("hub_admissions_total").Value(); got != int64(1+slipped) {
		t.Fatalf("admissions = %d, want %d (resident + pre-flag stragglers)", got, 1+slipped)
	}
	// The flag outlives the wait: a post-drain newcomer is still refused.
	if _, err := h.Admit("late-newcomer"); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain admission: %v, want ErrDraining", err)
	}
}

func TestTokenRoutingFindsParkingHome(t *testing.T) {
	reg := metrics.NewRegistry()
	homes := map[string]*parkingHome{}
	h, err := New(Options{Metrics: reg, Factory: func(id string) (Host, error) {
		ph := &parkingHome{}
		homes[id] = ph
		return ph, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for _, id := range []string{"home-a", "home-b", "home-c"} {
		if _, err := h.Admit(id); err != nil {
			t.Fatal(err)
		}
	}
	homes["home-b"].parked.Store(1)
	homes["home-b"].token.Store("tok-42")

	// A TokenHome preamble lands on the home parking the session.
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- h.ServeConn(server) }()
	if err := WritePreambleToken(client, TokenHome, "tok-42"); err != nil {
		t.Fatal(err)
	}
	client.Write([]byte{9})
	buf := make([]byte, 1)
	if _, err := client.Read(buf); err != nil || buf[0] != 9 {
		t.Fatalf("echo through token routing: %v %x", err, buf)
	}
	client.Close()
	<-done
	if got := homes["home-b"].served.Load(); got != 1 {
		t.Fatalf("owner served %d, want 1", got)
	}
	if got := reg.Counter("hub_token_routes_total").Value(); got != 1 {
		t.Fatalf("hub_token_routes_total = %d, want 1", got)
	}

	// An unknown token is rejected without admitting anything.
	client2, server2 := net.Pipe()
	done2 := make(chan error, 1)
	go func() { done2 <- h.ServeConn(server2) }()
	if err := WritePreambleToken(client2, TokenHome, "no-such"); err != nil {
		t.Fatal(err)
	}
	if err := <-done2; !errors.Is(err, ErrUnknownHome) {
		t.Fatalf("unknown token: %v, want ErrUnknownHome", err)
	}
	client2.Close()
	if got := reg.Counter("hub_token_route_misses_total").Value(); got != 1 {
		t.Fatalf("hub_token_route_misses_total = %d, want 1", got)
	}
}
