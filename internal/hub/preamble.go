package hub

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
)

// The routing preamble is the one hub-specific wire addition: before the
// universal-interaction handshake begins, the connecting proxy sends a
// single line naming the home it wants,
//
//	UNIHUB/1 <home-id>\n
//
// and the hub routes the connection to that home's stack. Everything
// after the newline is the unmodified protocol, so the per-home servers
// stay unchanged (the paper's "we need not modify existing servers"
// claim survives multi-tenancy).
const (
	preambleMagic = "UNIHUB/1 "
	// MaxPreambleLen bounds the preamble line, magic and newline
	// included — a cheap defence against garbage connections.
	MaxPreambleLen = 256
)

// ErrBadPreamble reports a malformed routing preamble.
var ErrBadPreamble = errors.New("hub: bad routing preamble")

// WritePreamble sends the routing line for homeID on conn.
func WritePreamble(conn io.Writer, homeID string) error {
	if homeID == "" || strings.ContainsAny(homeID, " \n") {
		return fmt.Errorf("%w: invalid home id %q", ErrBadPreamble, homeID)
	}
	line := preambleMagic + homeID + "\n"
	if len(line) > MaxPreambleLen {
		return fmt.Errorf("%w: home id too long", ErrBadPreamble)
	}
	_, err := io.WriteString(conn, line)
	return err
}

// ReadPreamble consumes the routing line from conn and returns the home
// ID. It reads byte-at-a-time up to MaxPreambleLen so no protocol bytes
// beyond the newline are buffered away from the home's server.
func ReadPreamble(conn io.Reader) (string, error) {
	var line []byte
	var b [1]byte
	for len(line) < MaxPreambleLen {
		if _, err := io.ReadFull(conn, b[:]); err != nil {
			return "", fmt.Errorf("%w: %v", ErrBadPreamble, err)
		}
		if b[0] == '\n' {
			s := string(line)
			if !strings.HasPrefix(s, preambleMagic) {
				return "", fmt.Errorf("%w: missing magic", ErrBadPreamble)
			}
			id := s[len(preambleMagic):]
			if id == "" {
				return "", fmt.Errorf("%w: empty home id", ErrBadPreamble)
			}
			return id, nil
		}
		line = append(line, b[0])
	}
	return "", fmt.Errorf("%w: line too long", ErrBadPreamble)
}

// DialHome connects to a hub at addr, sends the routing preamble for
// homeID and returns the connection ready for the protocol handshake
// (pass it to core.Dial).
func DialHome(addr, homeID string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := WritePreamble(conn, homeID); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}
