package hub

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
)

// The routing preamble is the one hub-specific wire addition: before the
// universal-interaction handshake begins, the connecting proxy sends a
// single line naming the home it wants,
//
//	UNIHUB/1 <home-id>\n
//	UNIHUB/1 <home-id> <token>\n
//
// and the hub routes the connection to that home's stack. The optional
// second field is the session resume token; a reconnecting device that
// no longer knows (or trusts) its home ID may send TokenHome ("~") as
// the home field, and the hub routes to whichever resident home holds
// the parked session for that token. Everything after the newline is the
// unmodified protocol, so the per-home servers stay unchanged (the
// paper's "we need not modify existing servers" claim survives
// multi-tenancy).
const (
	preambleMagic = "UNIHUB/1 "
	// MaxPreambleLen bounds the preamble line, magic and newline
	// included — a cheap defence against garbage connections.
	MaxPreambleLen = 256
	// TokenHome is the home-ID wildcard for token routing: "route me to
	// the home that parked my session".
	TokenHome = "~"
)

// ErrBadPreamble reports a malformed routing preamble.
var ErrBadPreamble = errors.New("hub: bad routing preamble")

// WritePreamble sends the routing line for homeID on conn.
func WritePreamble(conn io.Writer, homeID string) error {
	return WritePreambleToken(conn, homeID, "")
}

// WritePreambleToken sends the routing line carrying a session resume
// token. homeID may be TokenHome to route by token alone.
func WritePreambleToken(conn io.Writer, homeID, token string) error {
	if homeID == "" || strings.ContainsAny(homeID, " \n") {
		return fmt.Errorf("%w: invalid home id %q", ErrBadPreamble, homeID)
	}
	if strings.ContainsAny(token, " \n") {
		return fmt.Errorf("%w: invalid token %q", ErrBadPreamble, token)
	}
	if homeID == TokenHome && token == "" {
		return fmt.Errorf("%w: token routing needs a token", ErrBadPreamble)
	}
	line := preambleMagic + homeID
	if token != "" {
		line += " " + token
	}
	line += "\n"
	if len(line) > MaxPreambleLen {
		return fmt.Errorf("%w: preamble too long", ErrBadPreamble)
	}
	_, err := io.WriteString(conn, line)
	return err
}

// ReadPreamble consumes the routing line from conn and returns the home
// ID and the resume token ("" when absent). It reads byte-at-a-time up
// to MaxPreambleLen so no protocol bytes beyond the newline are buffered
// away from the home's server.
func ReadPreamble(conn io.Reader) (homeID, token string, err error) {
	var line []byte
	var b [1]byte
	for len(line) < MaxPreambleLen {
		if _, err := io.ReadFull(conn, b[:]); err != nil {
			return "", "", fmt.Errorf("%w: %v", ErrBadPreamble, err)
		}
		if b[0] == '\n' {
			s := string(line)
			if !strings.HasPrefix(s, preambleMagic) {
				return "", "", fmt.Errorf("%w: missing magic", ErrBadPreamble)
			}
			id := s[len(preambleMagic):]
			if sp := strings.IndexByte(id, ' '); sp >= 0 {
				id, token = id[:sp], id[sp+1:]
				if token == "" || strings.ContainsRune(token, ' ') {
					return "", "", fmt.Errorf("%w: malformed token field", ErrBadPreamble)
				}
			}
			if id == "" {
				return "", "", fmt.Errorf("%w: empty home id", ErrBadPreamble)
			}
			if id == TokenHome && token == "" {
				return "", "", fmt.Errorf("%w: token routing needs a token", ErrBadPreamble)
			}
			return id, token, nil
		}
		line = append(line, b[0])
	}
	return "", "", fmt.Errorf("%w: line too long", ErrBadPreamble)
}

// DialHome connects to a hub at addr, sends the routing preamble for
// homeID and returns the connection ready for the protocol handshake
// (pass it to core.Dial).
func DialHome(addr, homeID string) (net.Conn, error) {
	return DialHomeToken(addr, homeID, "")
}

// DialHomeToken is DialHome carrying a session resume token (homeID may
// be TokenHome to route by token alone). The connection is ready for the
// protocol handshake — pass it to core.DialResume with the same token to
// reclaim the parked session.
func DialHomeToken(addr, homeID, token string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := WritePreambleToken(conn, homeID, token); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}
