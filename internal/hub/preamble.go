package hub

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
)

// The routing preamble is the one hub-specific wire addition: before the
// universal-interaction handshake begins, the connecting proxy sends a
// single line naming the home it wants,
//
//	UNIHUB/1 <home-id>\n
//	UNIHUB/1 <home-id> <token>\n
//
// and the hub routes the connection to that home's stack. The optional
// second field is the session resume token; a reconnecting device that
// no longer knows (or trusts) its home ID may send TokenHome ("~") as
// the home field, and the hub routes to whichever resident home holds
// the parked session for that token. Everything after the newline is the
// unmodified protocol, so the per-home servers stay unchanged (the
// paper's "we need not modify existing servers" claim survives
// multi-tenancy).
const (
	preambleMagic = "UNIHUB/1 "
	// MaxPreambleLen bounds the preamble line, magic and newline
	// included — a cheap defence against garbage connections.
	MaxPreambleLen = 256
	// TokenHome is the home-ID wildcard for token routing: "route me to
	// the home that parked my session".
	TokenHome = "~"
)

// ErrBadPreamble reports a malformed routing preamble.
var ErrBadPreamble = errors.New("hub: bad routing preamble")

// Preamble is the parsed UNIHUB/1 routing line: the home the connection
// wants, plus an optional session resume token. It is the single
// parse/format authority for the preamble wire format — the hub's
// ServeConn, the proxy-side dial helpers, and the federation front
// router all speak through it, so none of them can drift from
// docs/WIRE.md independently.
type Preamble struct {
	// HomeID names the home to route to; TokenHome ("~") routes by
	// Token alone.
	HomeID string
	// Token is the session resume token ("" when absent). Required when
	// HomeID is TokenHome.
	Token string
}

// validate reports whether p can be encoded as a legal routing line.
func (p Preamble) validate() error {
	if p.HomeID == "" || strings.ContainsAny(p.HomeID, " \n") {
		return fmt.Errorf("%w: invalid home id %q", ErrBadPreamble, p.HomeID)
	}
	if strings.ContainsAny(p.Token, " \n") {
		return fmt.Errorf("%w: invalid token %q", ErrBadPreamble, p.Token)
	}
	if p.HomeID == TokenHome && p.Token == "" {
		return fmt.Errorf("%w: token routing needs a token", ErrBadPreamble)
	}
	return nil
}

// String renders the routing line without the trailing newline,
// e.g. "UNIHUB/1 living-room" or "UNIHUB/1 ~ 6f1a…". It does not
// validate; use WriteTo to encode onto a connection.
func (p Preamble) String() string {
	if p.Token != "" {
		return preambleMagic + p.HomeID + " " + p.Token
	}
	return preambleMagic + p.HomeID
}

// WriteTo validates p and writes the newline-terminated routing line to
// w, implementing io.WriterTo.
func (p Preamble) WriteTo(w io.Writer) (int64, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	line := p.String() + "\n"
	if len(line) > MaxPreambleLen {
		return 0, fmt.Errorf("%w: preamble too long", ErrBadPreamble)
	}
	n, err := io.WriteString(w, line)
	return int64(n), err
}

// ParsePreamble consumes the routing line from r. It reads byte-at-a-time
// up to MaxPreambleLen so no protocol bytes beyond the newline are
// buffered away from the home's server.
func ParsePreamble(r io.Reader) (Preamble, error) {
	var line []byte
	var b [1]byte
	for len(line) < MaxPreambleLen {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return Preamble{}, fmt.Errorf("%w: %v", ErrBadPreamble, err)
		}
		if b[0] == '\n' {
			s := string(line)
			if !strings.HasPrefix(s, preambleMagic) {
				return Preamble{}, fmt.Errorf("%w: missing magic", ErrBadPreamble)
			}
			p := Preamble{HomeID: s[len(preambleMagic):]}
			if sp := strings.IndexByte(p.HomeID, ' '); sp >= 0 {
				p.HomeID, p.Token = p.HomeID[:sp], p.HomeID[sp+1:]
				if p.Token == "" || strings.ContainsRune(p.Token, ' ') {
					return Preamble{}, fmt.Errorf("%w: malformed token field", ErrBadPreamble)
				}
			}
			if p.HomeID == "" {
				return Preamble{}, fmt.Errorf("%w: empty home id", ErrBadPreamble)
			}
			if p.HomeID == TokenHome && p.Token == "" {
				return Preamble{}, fmt.Errorf("%w: token routing needs a token", ErrBadPreamble)
			}
			return p, nil
		}
		line = append(line, b[0])
	}
	return Preamble{}, fmt.Errorf("%w: line too long", ErrBadPreamble)
}

// WritePreamble sends the routing line for homeID on conn.
func WritePreamble(conn io.Writer, homeID string) error {
	return WritePreambleToken(conn, homeID, "")
}

// WritePreambleToken sends the routing line carrying a session resume
// token. homeID may be TokenHome to route by token alone.
func WritePreambleToken(conn io.Writer, homeID, token string) error {
	_, err := Preamble{HomeID: homeID, Token: token}.WriteTo(conn)
	return err
}

// ReadPreamble consumes the routing line from conn and returns the home
// ID and the resume token ("" when absent). It is ParsePreamble in the
// original two-value shape.
func ReadPreamble(conn io.Reader) (homeID, token string, err error) {
	p, err := ParsePreamble(conn)
	if err != nil {
		return "", "", err
	}
	return p.HomeID, p.Token, nil
}

// DialHome connects to a hub at addr, sends the routing preamble for
// homeID and returns the connection ready for the protocol handshake
// (pass it to core.Dial).
func DialHome(addr, homeID string) (net.Conn, error) {
	return DialHomeToken(addr, homeID, "")
}

// DialHomeToken is DialHome carrying a session resume token (homeID may
// be TokenHome to route by token alone). The connection is ready for the
// protocol handshake — pass it to core.DialResume with the same token to
// reclaim the parked session.
func DialHomeToken(addr, homeID, token string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := WritePreambleToken(conn, homeID, token); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}
