package hub

import (
	"errors"
	"net"
	"time"

	"uniint/internal/rfb"
)

// Host is the hub's one hosting contract: everything the hub (and the
// federation layer above it) ever asks of a resident home. It replaces
// the former trio of Home + optional EdgeHome + optional SessionParker —
// with one interface there is nothing left for the hub to type-assert,
// so a home cannot accidentally opt out of a capability by a method
// signature typo.
//
// Exactly when the hub calls each method:
//
//   - HandleConn: once per routed blocking-transport connection
//     (Hub.Route / Hub.ServeConn); blocks for the connection's life.
//   - AttachEdge: once per routed readiness-driven connection
//     (Hub.AttachEdge); returns after the handshake, the session then
//     runs on the home's worker pool and onClose fires once when it
//     retires. A home without an edge path returns ErrNoEdge.
//   - Parked: on every eviction attempt (idle sweep, explicit Evict) —
//     a home with sessions waiting in its detach lot is not idle — and
//     by the federation layer sizing a migration.
//   - HasParked: on token routing (TokenHome preambles) while the hub
//     scans resident homes for the one parking a session token.
//   - ParkedTokens / ExportParked / ImportParked: only on the federation
//     migration path — enumerate the detach lot, extract one parked
//     session as a portable record, install a shipped record. A home
//     without a lot returns nil / (nil, false) / an error.
//   - DetachSessions: on federation drain — force-disconnect every live
//     session so it parks, then wait (bounded by timeout) until the
//     home has no live sessions.
//   - Close: once, on eviction or hub shutdown; after it returns the
//     hub drops its reference.
//
// uniint.HubSession is the production implementation; plain
// connection-serving homes wrap themselves with AdaptConnHandler.
type Host interface {
	// HandleConn serves one proxy connection until the peer disconnects.
	HandleConn(conn net.Conn) error
	// AttachEdge handshakes a readiness-driven connection and returns;
	// the session runs on the home's pool and onClose fires once when it
	// retires. Homes without an edge path return ErrNoEdge.
	AttachEdge(conn net.Conn, onClose func()) error
	// Parked returns the number of sessions waiting in the detach lot.
	Parked() int
	// HasParked reports whether the lot holds a live session for token.
	HasParked(token string) bool
	// ParkedTokens lists the lot's resume tokens (order unspecified).
	ParkedTokens() []string
	// ExportParked removes the parked session for token from the lot and
	// returns it as a portable migration record, or (nil, false) when the
	// token is absent, claimed, or expired.
	ExportParked(token string) (*rfb.MigrationRecord, bool)
	// ImportParked installs a migration record into the lot, making the
	// session resumable here.
	ImportParked(rec *rfb.MigrationRecord) error
	// DetachSessions disconnects every live session (each parks itself
	// under its resume token) and waits up to timeout for the home to
	// quiesce.
	DetachSessions(timeout time.Duration) error
	// Close tears the home's stack down.
	Close()
}

// ErrNoEdge reports a home without a readiness-driven edge path.
var ErrNoEdge = errors.New("hub: home does not support edge attach")

// ErrNoLot reports a migration operation on a home without a detach lot.
var ErrNoLot = errors.New("hub: home has no detach lot")

// ConnHandler is the minimal home: it serves blocking connections and
// shuts down. Wrap one with AdaptConnHandler to host it on a hub.
type ConnHandler interface {
	HandleConn(conn net.Conn) error
	Close()
}

// AdaptConnHandler lifts a plain connection-serving home to the full
// Host contract: edge attach reports ErrNoEdge, the detach lot is
// permanently empty, and migration is unsupported. Use it for simple or
// legacy homes that only implement HandleConn/Close.
func AdaptConnHandler(h ConnHandler) Host { return connHandlerHost{h} }

type connHandlerHost struct{ ConnHandler }

func (connHandlerHost) AttachEdge(conn net.Conn, onClose func()) error {
	conn.Close()
	return ErrNoEdge
}
func (connHandlerHost) Parked() int            { return 0 }
func (connHandlerHost) HasParked(string) bool  { return false }
func (connHandlerHost) ParkedTokens() []string { return nil }
func (connHandlerHost) ExportParked(string) (*rfb.MigrationRecord, bool) {
	return nil, false
}
func (connHandlerHost) ImportParked(*rfb.MigrationRecord) error { return ErrNoLot }
func (connHandlerHost) DetachSessions(time.Duration) error      { return nil }
