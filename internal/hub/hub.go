// Package hub is the multi-tenant home hub: one process hosting many
// households' universal-interaction stacks behind a single listener.
//
// The paper's prototype serves one home to one user; the hub is the layer
// that hosts thousands of those single-home units. It owns a sharded
// registry of hub-hosted sessions (power-of-two shard count, per-shard
// mutex for writes, a lock-free copy-on-write read path for routing),
// routes inbound proxy connections to the right home by home ID, and
// manages per-home lifecycle: admission on first use, idle eviction, and
// graceful drain.
//
// The hub is deliberately ignorant of what a home is — it hosts anything
// implementing Host (plain connection handlers lift themselves with
// AdaptConnHandler). The root uniint package provides the production
// implementation (uniint.NewSessionForHub); tests substitute stubs.
//
// Homes hosted by one hub typically share a single content-addressed tile
// cache (uniint.Options.Tiles), so the Nth identical control panel encodes
// once and later sessions ship cache references. The cache is keyed by
// content hash, not by home, so it survives idle eviction of the homes
// that populated it.
package hub

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"uniint/internal/metrics"
	"uniint/internal/sched"
	"uniint/internal/trace"
)

// Errors returned by the hub.
var (
	ErrClosed      = errors.New("hub: closed")
	ErrFull        = errors.New("hub: at home capacity")
	ErrUnknownHome = errors.New("hub: unknown home")
	ErrDraining    = errors.New("hub: draining")
)

// Factory builds the Host for a home ID on admission. Homes that only
// implement HandleConn/Close wrap themselves with AdaptConnHandler.
type Factory func(homeID string) (Host, error)

// Options configures a Hub.
type Options struct {
	// Factory builds homes on admission (required).
	Factory Factory
	// Shards is the registry shard count, rounded up to a power of two
	// (default 16). More shards spread admission contention.
	Shards int
	// MaxHomes caps resident homes; 0 means unlimited. Admissions beyond
	// the cap fail with ErrFull.
	MaxHomes int
	// IdleTimeout evicts homes with no connections and no activity for
	// this long; 0 disables eviction.
	IdleTimeout time.Duration
	// SweepInterval is the eviction janitor period (default
	// IdleTimeout/4, minimum 1s). Ignored when IdleTimeout is 0.
	SweepInterval time.Duration
	// Metrics receives the hub's instruments (default metrics.Default()).
	Metrics *metrics.Registry
	// Pool is the worker pool hosted homes should run their session turns
	// on (exposed via Hub.Pool for the factory to plumb through). Nil: the
	// hub creates one sized sched.DefaultWorkers and closes it on Close.
	Pool *sched.Pool
}

// entry is one resident home.
type entry struct {
	id   string
	home Host

	refs     atomic.Int64 // connections currently routed to the home
	lastUsed atomic.Int64 // unix nanos of last admission/route/disconnect
	evicted  atomic.Bool  // set once, under the owning shard's mutex
}

func (e *entry) touch() { e.lastUsed.Store(time.Now().UnixNano()) }

// shard is one registry partition. Writers (admit, evict) take mu and
// publish a fresh map; readers load the map pointer atomically and never
// lock — the routing path is lock-free.
type shard struct {
	mu    sync.Mutex
	homes atomic.Pointer[map[string]*entry]
}

func (sh *shard) snapshot() map[string]*entry {
	if m := sh.homes.Load(); m != nil {
		return *m
	}
	return nil
}

// publish replaces the shard map with a copy that has id set to e
// (or removed when e is nil). Callers hold sh.mu.
func (sh *shard) publish(id string, e *entry) {
	old := sh.snapshot()
	next := make(map[string]*entry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if e == nil {
		delete(next, id)
	} else {
		next[id] = e
	}
	sh.homes.Store(&next)
}

// Hub hosts many homes in one process.
type Hub struct {
	opts   Options
	shards []shard
	mask   uint64

	resident atomic.Int64 // homes currently resident (admission control)
	conns    atomic.Int64 // live routed connections (hub-local; the gauge may be shared)
	closed   atomic.Bool
	draining atomic.Bool

	// The eviction janitor is a periodic timer on the shared wheel that
	// kicks a pool task: N hubs (or thousands of idle homes) cost O(1)
	// runtime timers and zero dedicated goroutines. The task state machine
	// keeps sweeps from ever overlapping.
	janitorTimer *sched.Timer
	sweepTask    *sched.Task

	pool    *sched.Pool
	ownPool bool

	// Pre-resolved instruments (hot path: no registry lookups).
	mHomes        *metrics.Gauge
	mConns        *metrics.Gauge
	mAdmissions   *metrics.Counter
	mEvictions    *metrics.Counter
	mRouteHits    *metrics.Counter
	mRouteMisses  *metrics.Counter
	mRejects      *metrics.Counter
	mTokenRoutes  *metrics.Counter
	mTokenMisses  *metrics.Counter
	mParkSkips    *metrics.Counter
	mReleases     *metrics.Counter
	mRouteSeconds *metrics.Histogram
}

// New creates a hub. Options.Factory is required.
func New(opts Options) (*Hub, error) {
	if opts.Factory == nil {
		return nil, errors.New("hub: Options.Factory is required")
	}
	if opts.Shards <= 0 {
		opts.Shards = 16
	}
	shards := nextPow2(opts.Shards)
	if opts.Metrics == nil {
		opts.Metrics = metrics.Default()
	}
	h := &Hub{
		opts:   opts,
		shards: make([]shard, shards),
		mask:   uint64(shards - 1),

		mHomes:        opts.Metrics.Gauge("hub_homes"),
		mConns:        opts.Metrics.Gauge("hub_connections"),
		mAdmissions:   opts.Metrics.Counter("hub_admissions_total"),
		mEvictions:    opts.Metrics.Counter("hub_evictions_total"),
		mRouteHits:    opts.Metrics.Counter("hub_route_hits_total"),
		mRouteMisses:  opts.Metrics.Counter("hub_route_misses_total"),
		mRejects:      opts.Metrics.Counter("hub_rejects_total"),
		mTokenRoutes:  opts.Metrics.Counter("hub_token_routes_total"),
		mTokenMisses:  opts.Metrics.Counter("hub_token_route_misses_total"),
		mParkSkips:    opts.Metrics.Counter("hub_evictions_skipped_parked_total"),
		mReleases:     opts.Metrics.Counter("hub_releases_total"),
		mRouteSeconds: opts.Metrics.Histogram("hub_route_seconds", metrics.LatencyBuckets()),
	}
	h.pool = opts.Pool
	if h.pool == nil {
		h.pool = sched.NewPool(0)
		h.ownPool = true
	}
	if opts.IdleTimeout > 0 {
		sweep := opts.SweepInterval
		if sweep <= 0 {
			sweep = opts.IdleTimeout / 4
		}
		if sweep < time.Second {
			sweep = time.Second
		}
		h.sweepTask = h.pool.NewTask(h.sweep)
		h.janitorTimer = sched.Shared().Every(sweep, h.sweepTask.Kick)
	}
	return h, nil
}

// Pool returns the worker pool hosted homes share for their session turns.
// Factories plumb it into the home stacks they build.
func (h *Hub) Pool() *sched.Pool { return h.pool }

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// hashID is FNV-1a over the home ID: allocation-free and well mixed for
// the short string keys homes use.
func hashID(id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

func (h *Hub) shardFor(id string) *shard { return &h.shards[hashID(id)&h.mask] }

// lookup is the lock-free read path: an atomic map-pointer load plus a
// map read. No mutex is ever taken for a resident home.
func (h *Hub) lookup(id string) *entry {
	return h.shardFor(id).snapshot()[id]
}

// Get returns the resident home for id without admitting, or
// ErrUnknownHome.
func (h *Hub) Get(id string) (Host, error) {
	if e := h.lookup(id); e != nil {
		return e.home, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrUnknownHome, id)
}

// Admit returns the home for id, creating it via the factory on first
// use. Concurrent admissions of the same ID yield one home.
func (h *Hub) Admit(id string) (Host, error) {
	if e := h.lookup(id); e != nil {
		h.mRouteHits.Inc()
		e.touch()
		return e.home, nil
	}
	h.mRouteMisses.Inc()
	if h.closed.Load() {
		h.mRejects.Inc()
		return nil, ErrClosed
	}
	if h.draining.Load() {
		h.mRejects.Inc()
		return nil, ErrDraining
	}

	sh := h.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Re-check lifecycle under the lock: a Close or Drain that ran after
	// the fast-path check must not have a home published behind it.
	if h.closed.Load() {
		h.mRejects.Inc()
		return nil, ErrClosed
	}
	if h.draining.Load() {
		h.mRejects.Inc()
		return nil, ErrDraining
	}
	if e := sh.snapshot()[id]; e != nil { // lost the admission race
		e.touch()
		return e.home, nil
	}
	if h.opts.MaxHomes > 0 && h.resident.Load() >= int64(h.opts.MaxHomes) {
		h.mRejects.Inc()
		return nil, fmt.Errorf("%w (%d homes)", ErrFull, h.opts.MaxHomes)
	}
	home, err := h.opts.Factory(id)
	if err != nil {
		return nil, fmt.Errorf("hub: admit %s: %w", id, err)
	}
	e := &entry{id: id, home: home}
	e.touch()
	sh.publish(id, e)
	h.resident.Add(1)
	h.mHomes.Inc()
	h.mAdmissions.Inc()
	return home, nil
}

// Route admits (if needed) and serves one connection on the home's stack,
// blocking until the peer disconnects. The home is pinned against
// eviction while the connection is live: the refcount is incremented
// first and the eviction flag checked after, the mirror image of Evict's
// flag-then-refcount order, so one side always observes the other.
func (h *Hub) Route(id string, conn net.Conn) error {
	start := time.Now()
	for attempt := 0; attempt < 4; attempt++ {
		if _, err := h.Admit(id); err != nil {
			conn.Close()
			return err
		}
		e := h.lookup(id)
		if e == nil { // evicted between Admit and lookup; re-admit
			continue
		}
		// Pin before checking the flags. conns.Add precedes the closed
		// check, so any pin that observes closed==false is ordered before
		// Close's store of closed — Close's connection wait (which starts
		// after that store) cannot read zero while this pin is live. A
		// plain atomic counter, unlike sync.WaitGroup, tolerates a late
		// pin racing the wait: it just bounces off the flag check below.
		e.refs.Add(1)
		h.conns.Add(1)
		if e.evicted.Load() || h.closed.Load() {
			h.conns.Add(-1)
			e.refs.Add(-1)
			if h.closed.Load() {
				conn.Close()
				return ErrClosed
			}
			continue // lost to a concurrent eviction; re-admit
		}
		h.mConns.Inc()
		h.mRouteSeconds.ObserveDuration(time.Since(start))
		defer func() {
			e.refs.Add(-1)
			e.touch()
			h.mConns.Dec()
			h.conns.Add(-1)
		}()
		return e.home.HandleConn(conn)
	}
	conn.Close()
	return fmt.Errorf("%w: %s (admission/eviction livelock)", ErrUnknownHome, id)
}

// AttachEdge admits (if needed) the home for id and attaches one
// readiness-driven connection to it, returning as soon as the handshake
// completes — the session then lives on the home's worker pool with no
// routing goroutine. The home entry stays pinned against eviction (the
// same refs protocol Route uses) until the session retires, at which
// point the home's completion callback unpins it.
func (h *Hub) AttachEdge(id string, conn net.Conn) error {
	start := time.Now()
	for attempt := 0; attempt < 4; attempt++ {
		if _, err := h.Admit(id); err != nil {
			conn.Close()
			return err
		}
		e := h.lookup(id)
		if e == nil { // evicted between Admit and lookup; re-admit
			continue
		}
		e.refs.Add(1)
		h.conns.Add(1)
		if e.evicted.Load() || h.closed.Load() {
			h.conns.Add(-1)
			e.refs.Add(-1)
			if h.closed.Load() {
				conn.Close()
				return ErrClosed
			}
			continue
		}
		h.mConns.Inc()
		h.mRouteSeconds.ObserveDuration(time.Since(start))
		unpin := func() {
			e.refs.Add(-1)
			e.touch()
			h.mConns.Dec()
			h.conns.Add(-1)
		}
		if err := e.home.AttachEdge(conn, unpin); err != nil {
			unpin() // the home closed conn; the session never started
			return err
		}
		return nil
	}
	conn.Close()
	return fmt.Errorf("%w: %s (admission/eviction livelock)", ErrUnknownHome, id)
}

// PreambleTimeout bounds how long ServeConn waits for the routing
// preamble, so a silent client cannot park a routing goroutine forever.
const PreambleTimeout = 10 * time.Second

// ServeConn reads the routing preamble from conn and routes it. It blocks
// for the life of the connection; Serve runs it per accepted connection.
// A TokenHome preamble routes by resume token: the hub finds the
// resident home whose detach lot holds the session.
func (h *Hub) ServeConn(conn net.Conn) error {
	t0 := time.Now()
	_ = conn.SetReadDeadline(t0.Add(PreambleTimeout))
	p, err := ParsePreamble(conn)
	if err != nil {
		conn.Close()
		return err
	}
	_ = conn.SetReadDeadline(time.Time{})
	return h.servePreamble(p, conn, t0)
}

// ServePreamble routes a connection whose preamble was already consumed
// (and parsed into p) by a front router — the federation layer reads the
// line once, picks a member node, and hands the still-virgin protocol
// stream here. It blocks for the life of the connection.
func (h *Hub) ServePreamble(p Preamble, conn net.Conn) error {
	return h.servePreamble(p, conn, time.Now())
}

func (h *Hub) servePreamble(p Preamble, conn net.Conn, t0 time.Time) error {
	id := p.HomeID
	if id == TokenHome {
		owner, ok := h.FindToken(p.Token)
		if !ok {
			h.mTokenMisses.Inc()
			h.mRejects.Inc()
			conn.Close()
			return fmt.Errorf("%w: no home holds session token", ErrUnknownHome)
		}
		h.mTokenRoutes.Inc()
		id = owner
	}
	// The hub routes connections, not events: annotate the connection
	// with its preamble-to-handoff window so the server can attach a
	// hub_route span to every traced interaction arriving on it.
	if trace.Enabled() {
		conn = trace.WithRoute(conn, t0.UnixNano(), time.Now().UnixNano())
	}
	return h.Route(id, conn)
}

// FindToken scans resident homes for the one parking the session
// token. O(resident homes), but only on the roam-back path — a
// reconnecting device that knows its home ID never gets here. The
// federation router uses it to locate a parked session across nodes.
func (h *Hub) FindToken(token string) (string, bool) {
	for i := range h.shards {
		for id, e := range h.shards[i].snapshot() {
			if e.home.HasParked(token) {
				return id, true
			}
		}
	}
	return "", false
}

// Serve accepts connections from ln until the listener closes.
func (h *Hub) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		// goroutine-ok: Serve is the blocking-transport accept loop; routed
		// conns are served by HandleConn, which blocks for the conn's life.
		go func() { _ = h.ServeConn(conn) }()
	}
}

// Evict removes the home when it is resident, has no live connections
// and parks no disconnected sessions. It reports whether an eviction
// happened. The home's Close runs outside the shard lock.
//
// The parked check is race-free against a resume claim: a session's
// parked count only drops during a routed connection's handshake, and
// Route pins the refcount before the handshake starts — so an eviction
// observing refs == 0 sees every completed park, and any in-flight
// resume still shows up as either a pin or a parked session.
func (h *Hub) Evict(id string) bool {
	sh := h.shardFor(id)
	sh.mu.Lock()
	e := sh.snapshot()[id]
	if e == nil {
		sh.mu.Unlock()
		return false
	}
	// Flag first, then check the pin count (Route pins then checks the
	// flag): whichever side runs second sees the other and backs off.
	e.evicted.Store(true)
	if e.refs.Load() > 0 {
		e.evicted.Store(false)
		sh.mu.Unlock()
		return false
	}
	if e.home.Parked() > 0 {
		// Park-aware: a home with a detached session waiting for its
		// roaming owner is not idle. The lot's TTL empties it eventually,
		// after which eviction proceeds.
		e.evicted.Store(false)
		sh.mu.Unlock()
		h.mParkSkips.Inc()
		return false
	}
	sh.publish(id, nil)
	h.resident.Add(-1)
	sh.mu.Unlock()

	e.home.Close()
	h.mHomes.Dec()
	h.mEvictions.Inc()
	return true
}

// Release removes the home from the registry without closing it,
// transferring ownership to the caller: the federation layer evacuates a
// node by exporting the home's parked sessions, releasing the entry here
// and deciding itself whether the underlying host (which may be shared
// infrastructure living outside the hub process) should close. Like
// Evict it refuses while connections are pinned, but it ignores parked
// sessions — the caller is expected to have exported them. Returns the
// host and true on success.
func (h *Hub) Release(id string) (Host, bool) {
	sh := h.shardFor(id)
	sh.mu.Lock()
	e := sh.snapshot()[id]
	if e == nil {
		sh.mu.Unlock()
		return nil, false
	}
	// Same flag-then-refcount protocol as Evict: whichever of
	// Release/Route runs second sees the other and backs off.
	e.evicted.Store(true)
	if e.refs.Load() > 0 {
		e.evicted.Store(false)
		sh.mu.Unlock()
		return nil, false
	}
	sh.publish(id, nil)
	h.resident.Add(-1)
	sh.mu.Unlock()

	h.mHomes.Dec()
	h.mReleases.Inc()
	return e.home, true
}

// sweep evicts every home idle beyond IdleTimeout with no connections.
// It runs as a pool turn, kicked by the janitor's wheel timer.
func (h *Hub) sweep() {
	cutoff := time.Now().Add(-h.opts.IdleTimeout).UnixNano()
	for i := range h.shards {
		for id, e := range h.shards[i].snapshot() {
			if e.refs.Load() == 0 && e.lastUsed.Load() < cutoff {
				h.Evict(id)
			}
		}
	}
}

// Homes returns the number of resident homes.
func (h *Hub) Homes() int { return int(h.resident.Load()) }

// Connections returns the number of live routed connections on this hub
// (hub-local state — independent of registry sharing across hubs).
func (h *Hub) Connections() int64 { return h.conns.Load() }

// HomeIDs lists resident home IDs (order unspecified).
func (h *Hub) HomeIDs() []string {
	var out []string
	for i := range h.shards {
		for id := range h.shards[i].snapshot() {
			out = append(out, id)
		}
	}
	return out
}

// Drain stops new admissions and waits up to timeout for live
// connections to finish naturally. It returns nil when the hub went
// quiet, or an error with the number of connections still open. Either
// way the hub still needs Close to release homes.
func (h *Hub) Drain(timeout time.Duration) error {
	h.draining.Store(true)
	deadline := time.Now().Add(timeout)
	for {
		if h.Connections() == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("hub: drain timeout with %d connections open", h.Connections())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close stops the janitor, closes every home (which disconnects their
// sessions), and waits for routed connections to unwind.
func (h *Hub) Close() {
	if h.closed.Swap(true) {
		return
	}
	if h.janitorTimer != nil {
		h.janitorTimer.Stop()
		h.sweepTask.Stop()
	}
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		entries := sh.snapshot()
		for _, e := range entries {
			// Same protocol as Evict: flag first so an in-flight Route
			// that pinned a stale snapshot entry bounces off it.
			e.evicted.Store(true)
		}
		empty := map[string]*entry{}
		sh.homes.Store(&empty)
		sh.mu.Unlock()
		for _, e := range entries {
			e.home.Close()
			h.resident.Add(-1)
			h.mHomes.Dec()
		}
	}
	// Wait for routed connections to unwind (closing the homes above
	// disconnects their sessions, so HandleConn calls return promptly).
	for h.conns.Load() > 0 {
		time.Sleep(time.Millisecond)
	}
	if h.ownPool {
		h.pool.Close()
	}
}
