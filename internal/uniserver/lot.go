package uniserver

import (
	"crypto/rand"
	"encoding/hex"
	"time"

	"uniint/internal/gfx"
	"uniint/internal/metrics"
	"uniint/internal/rfb"
	"uniint/internal/sched"
	"uniint/internal/trace"
)

// The detach lot is the server half of session resilience: when a proxy's
// link dies, the session's server-side state — accumulated damage, the
// parked update request, undispatched input events — is parked under its
// resume token instead of being torn down. A reconnecting client that
// presents the token reclaims the parked state and receives an
// incremental resync (only the damage accumulated while detached); a
// token that never returns expires after the park TTL. The lot is
// bounded: at capacity the oldest parked session is expired to make room.
//
// Accounting invariant: session_parked_total + session_migrated_in_total
// == session_resumed_total + session_expired_total +
// session_migrated_out_total + session_parked (gauge) whenever no park,
// claim, or migration is in flight — federation moves a parked entry
// between lots as one migrated-out/migrated-in pair. Input events carried
// through a park window are counted (input_dispatched_total /
// input_abandoned_total) when their session resumes or expires, not at
// detach time.
var (
	mSessParked     = metrics.Default().Counter("session_parked_total")
	mSessResumed    = metrics.Default().Counter("session_resumed_total")
	mSessResumeMiss = metrics.Default().Counter("session_resume_miss_total")
	mSessExpired    = metrics.Default().Counter("session_expired_total")
	mSessParkedNow  = metrics.Default().Gauge("session_parked")
	mDetachSeconds  = metrics.Default().Histogram("session_detach_seconds", metrics.DurationBuckets())
)

// Parked-memory accounting: lot_parked_bytes is the resident size of every
// parked session's shadow state (raw while freshly parked, deflated once
// the compression turn lands); lot_parked_bytes_compressed is the portion
// held cold. Both move under lotMu wherever entries enter or leave.
var (
	mLotParkedBytes     = metrics.Default().Gauge("lot_parked_bytes")
	mLotParkedBytesComp = metrics.Default().Gauge("lot_parked_bytes_compressed")
)

// Default detach-lot policy: how long a disconnected session waits for
// its owner to return, and how many may wait per server. Both are
// per-server (per-home under the hub), so a hub hosting M homes parks at
// most M×DefaultParkCapacity sessions.
const (
	DefaultParkTTL      = 45 * time.Second
	DefaultParkCapacity = 64
)

// parkedSession is one disconnected session waiting in the lot.
type parkedSession struct {
	token   string
	w, h    int  // session geometry at detach; must still match to resume
	claimed bool // a resume handshake is in flight (guarded by lotMu)

	dirty       *gfx.Damage // damage accumulated before and during detach
	dirtySpare  []gfx.Rect
	pending     rfb.UpdateRequest // parked incremental request, if any
	hasPending  bool
	events      []inputEvent // undispatched input at detach, replayed on resume
	lastPtrMask uint8
	ws          *rfb.WireState // wire model; Reset (not rebuilt) on resume

	// Cold storage: a pool turn deflates the shadow shortly after parking
	// (compressParked), replacing ws with packed. compressing is non-nil
	// while that turn is reading ws off-lock; a claim landing mid-pack
	// waits on it so the resumed session never races the snapshot read.
	// All three fields are guarded by lotMu.
	packed      *rfb.PackedShadow
	compressing chan struct{}

	// migrated marks an entry installed by ImportParked — its resume's
	// first shipped update is the federation resync, counted into
	// fed_resync_bytes_total.
	migrated bool

	parkedAt time.Time
	deadline time.Time
}

// residentBytes returns the lot-gauge contribution of ps: resident bytes
// and the compressed portion. Call with lotMu held.
func (ps *parkedSession) residentBytes() (resident, compressed int64) {
	if ps.packed != nil {
		n := int64(ps.packed.CompressedBytes())
		return n, n
	}
	if ps.ws != nil {
		return int64(ps.ws.ShadowBytes()), 0
	}
	return 0, 0
}

// lotBytesAdd moves the parked-memory gauges by sign×ps's current
// footprint. Call with lotMu held, at every lot insert (+1) and remove
// (-1).
func lotBytesAdd(ps *parkedSession, sign int64) {
	r, c := ps.residentBytes()
	mLotParkedBytes.Add(sign * r)
	mLotParkedBytesComp.Add(sign * c)
}

// newSessionToken issues an opaque 96-bit resume token. Token space is
// per-server, so collisions are astronomically unlikely; a failure of the
// system randomness source degrades to a session without resume.
func newSessionToken() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return hex.EncodeToString(b[:])
}

// claimParked marks the parked session for token as claimed and returns
// it, or nil when the token is unknown, already claimed, expired, or
// parked with a different geometry (the display resized while detached —
// the shadow framebuffer the client kept no longer matches, so the
// resume must fail into a fresh session and full repaint).
//
// The entry STAYS in the lot, still accumulating pump damage, until the
// handshake completes and the new session atomically takes its place
// (finishClaim) — or the handshake fails and the claim is released
// (releaseClaim). Nothing is counted resumed here; a claim is not yet a
// resume.
func (s *Server) claimParked(token string, w, h int) *parkedSession {
	now := time.Now()
	s.lotMu.Lock()
	ps := s.lot[token]
	if ps == nil || ps.claimed {
		s.lotMu.Unlock()
		return nil
	}
	if now.After(ps.deadline) || ps.w != w || ps.h != h {
		delete(s.lot, token)
		mSessParkedNow.Dec()
		lotBytesAdd(ps, -1)
		s.lotMu.Unlock()
		s.expire(ps, now)
		return nil
	}
	ps.claimed = true
	packing := ps.compressing
	s.lotMu.Unlock()
	if packing != nil {
		// A compression turn is mid-read on the shadow this claim is about
		// to hand to a live session. Wait it out (it is bounded CPU work);
		// claimed is already set, so its install check will discard the
		// snapshot and the resume proceeds on the uncompressed state.
		<-packing
	}
	return ps
}

// releaseClaim undoes a claim whose handshake failed: the session goes
// back to waiting out its TTL (no counters move). Safe when the entry
// was drained underneath the claim (server shutdown).
func (s *Server) releaseClaim(ps *parkedSession) {
	s.lotMu.Lock()
	back := s.lot[ps.token] == ps
	repack := back && ps.packed == nil
	if back {
		ps.claimed = false
		// The janitor skips claimed entries (and may have disarmed while
		// this one was the only resident): re-arm for its deadline so a
		// released claim still expires on time.
		s.scheduleSweepLocked(ps.deadline)
	}
	s.lotMu.Unlock()
	if repack {
		// The claim that aborted the first compression turn fell through;
		// the entry is waiting out its TTL again, so re-freeze it.
		s.pool.Go(func() { s.compressParked(ps) })
	}
}

// expire settles the accounting for a parked session that will never be
// claimed. Call without lotMu held.
func (s *Server) expire(ps *parkedSession, now time.Time) {
	mSessExpired.Inc()
	mDetachSeconds.ObserveDuration(now.Sub(ps.parkedAt))
	if len(ps.events) > 0 {
		mInputAbandoned.Add(int64(len(ps.events)))
	}
}

// register installs a freshly handshaked session into the live set and,
// for a resume, atomically swaps the claimed lot entry's state into it.
// It reports false when the server is closing (the caller tears the
// connection down). The whole swap runs under s.pumpMu, so no render
// pump can fire between "entry leaves the lot" and "session receives
// damage" — the window in which rects would otherwise vanish.
func (s *Server) register(sess *session, reclaimed *parkedSession) bool {
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if reclaimed != nil {
			s.releaseClaim(reclaimed) // drainLot settles (or settled) it
		}
		return false
	}
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	if reclaimed != nil {
		s.lotMu.Lock()
		if s.lot[reclaimed.token] != reclaimed {
			// Drained underneath the claim (only shutdown does this —
			// and closed above catches that first); bail defensively.
			s.lotMu.Unlock()
			s.mu.Lock()
			delete(s.sessions, sess)
			s.mu.Unlock()
			return false
		}
		delete(s.lot, reclaimed.token)
		mSessParkedNow.Dec()
		lotBytesAdd(reclaimed, -1)
		s.lotMu.Unlock()
		sess.adopt(reclaimed)
		mSessResumed.Inc()
		mDetachSeconds.ObserveDuration(time.Since(reclaimed.parkedAt))
		// A resume is itself a traceable session-lifecycle interaction:
		// its span covers the whole detach window, under a fresh id.
		if tid := trace.Start(); tid != 0 {
			trace.Record(tid, trace.StageResume,
				reclaimed.parkedAt.UnixNano(), time.Now().UnixNano())
		}
	}
	return true
}

// retire removes a dead connection's session from the live set and
// parks its state in the lot. It reports whether the state was parked
// (false: parking disabled, server closed, or the session never got a
// token — the caller settles the input-event leftovers). events are the
// undispatched input events drained after the dispatcher exited.
//
// Removal and parking are one pumpMu critical section: a pump either
// runs before (offering damage to the still-registered session) or
// after (offering it to the lot entry) — no rect falls between the two
// structures.
func (s *Server) retire(sess *session, events []inputEvent) bool {
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()
	s.mu.Lock()
	delete(s.sessions, sess)
	closed := s.closed
	s.mu.Unlock()
	if s.parkTTL <= 0 || sess.token == "" || closed {
		return false
	}

	// The outbox holds damage a request already claimed but the writer
	// never shipped (or shipped into a dying transport): fold it back
	// into the dirty set so the resync re-covers it.
	sess.mu.Lock()
	for _, r := range sess.outbox.TakeInto(nil) {
		sess.dirty.Add(r)
	}
	now := time.Now()
	ps := &parkedSession{
		token:       sess.token,
		w:           sess.bounds.W,
		h:           sess.bounds.H,
		dirty:       sess.dirty,
		dirtySpare:  sess.dirtySpare,
		pending:     sess.pending,
		hasPending:  sess.hasPending,
		events:      events,
		lastPtrMask: sess.lastPtrMask,
		ws:          sess.ws,
		parkedAt:    now,
		deadline:    now.Add(s.parkTTL),
	}
	sess.dirty = nil // state moved; the session object is dead
	sess.dirtySpare = nil

	s.lotMu.Lock()
	if s.lot == nil {
		s.lot = make(map[string]*parkedSession)
	}
	// Capacity: expire the oldest unclaimed entry. Claimed entries are
	// mid-handshake and about to leave the lot on their own; evicting
	// one would strand its resume.
	var oldest *parkedSession
	if len(s.lot) >= s.parkCap {
		for _, e := range s.lot {
			if !e.claimed && (oldest == nil || e.parkedAt.Before(oldest.parkedAt)) {
				oldest = e
			}
		}
		if oldest != nil {
			delete(s.lot, oldest.token)
			mSessParkedNow.Dec()
			lotBytesAdd(oldest, -1)
		}
	}
	s.lot[ps.token] = ps
	lotBytesAdd(ps, +1)
	s.scheduleSweepLocked(ps.deadline)
	s.lotMu.Unlock()
	sess.mu.Unlock()

	if oldest != nil {
		s.expire(oldest, now)
	}
	mSessParked.Inc()
	mSessParkedNow.Inc()
	// Freeze the parked state cold off the critical path: a pool turn
	// deflates the shadow and swaps it in, unless a claim gets there
	// first. (On a closing pool the turn simply never runs; the raw state
	// stays resident until the lot drains.)
	s.pool.Go(func() { s.compressParked(ps) })
	return true
}

// compressParked is the pool turn that moves one parked session's shadow
// into cold storage. It reads the WireState outside lotMu (packing is
// bounded but not trivial CPU work), then installs the packed form only
// if the entry is still parked and unclaimed — a claim that lands mid-
// pack wins, waits for the read to finish (claimParked), and resumes on
// the uncompressed state.
func (s *Server) compressParked(ps *parkedSession) {
	s.lotMu.Lock()
	if s.lot[ps.token] != ps || ps.claimed || ps.ws == nil {
		s.lotMu.Unlock()
		return
	}
	done := make(chan struct{})
	ps.compressing = done
	ws := ps.ws
	s.lotMu.Unlock()

	packed, err := ws.Pack()

	s.lotMu.Lock()
	ps.compressing = nil
	if err == nil && s.lot[ps.token] == ps && !ps.claimed {
		lotBytesAdd(ps, -1)
		ps.ws = nil
		ps.packed = packed
		lotBytesAdd(ps, +1)
	}
	s.lotMu.Unlock()
	close(done)
}

// adopt seeds a fresh session with reclaimed parked state. It runs before
// the session's writer and dispatcher start.
func (c *session) adopt(ps *parkedSession) {
	c.dirty = ps.dirty
	c.dirtySpare = ps.dirtySpare
	c.pending = ps.pending
	c.hasPending = ps.hasPending
	c.lastPtrMask = ps.lastPtrMask
	c.fedResync = ps.migrated
	if ps.ws == nil && ps.packed != nil {
		// The shadow went cold while parked: thaw it. A decode failure
		// (impossible short of memory corruption) falls back to the fresh
		// WireState the session was built with — the resync degrades to a
		// full repaint instead of failing the resume.
		if ws, err := ps.packed.Unpack(c.srv.tiles); err == nil {
			ps.ws = ws
		}
	}
	if ps.ws != nil {
		// Reuse the parked wire model's storage, but distrust its content:
		// the reconnecting client's tile memory is fresh (tile memory does
		// not survive a reconnect, only the shadow framebuffer does — and
		// whether the client actually adopted its old shadow is unknowable
		// here), so the tile window clears and CopyRect stays off until a
		// full repaint revalidates the shadow.
		c.ws = ps.ws
		c.ws.Reset()
	}
	// Traced events that sat out the detach window get a park span —
	// detach to reclaim — under their own id, so the gap between their
	// queue enqueue and eventual dispatch is explained in the export.
	if trace.Enabled() {
		p0, now := ps.parkedAt.UnixNano(), time.Now().UnixNano()
		for i := range ps.events {
			if t := ps.events[i].trace; t != 0 {
				trace.Record(t, trace.StagePark, p0, now)
			}
		}
	}
	c.inq.preload(ps.events)
}

// scheduleSweepLocked arms the lot janitor for the given deadline if no
// earlier sweep is already scheduled. The janitor is a timer on the shared
// wheel, so a process full of detach lots holds O(1) runtime timers.
// lotMu must be held.
func (s *Server) scheduleSweepLocked(deadline time.Time) {
	d := time.Until(deadline) + time.Millisecond
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if s.lotTimer == nil {
		s.lotTimer = sched.Shared().AfterFunc(d, s.sweepLot)
		s.lotSweepAt = deadline
		return
	}
	if deadline.Before(s.lotSweepAt) {
		s.lotTimer.Reset(d)
		s.lotSweepAt = deadline
	}
}

// sweepLot expires every parked session past its deadline and re-arms the
// janitor for the earliest remaining one. Claimed entries are skipped —
// a resume handshake is mid-flight and will remove or release them.
func (s *Server) sweepLot() {
	now := time.Now()
	var expired []*parkedSession
	s.lotMu.Lock()
	var next time.Time
	for tok, ps := range s.lot {
		if ps.claimed {
			continue
		}
		if now.After(ps.deadline) {
			delete(s.lot, tok)
			mSessParkedNow.Dec()
			lotBytesAdd(ps, -1)
			expired = append(expired, ps)
			continue
		}
		if next.IsZero() || ps.deadline.Before(next) {
			next = ps.deadline
		}
	}
	if next.IsZero() {
		s.lotTimer = nil
	} else {
		s.lotSweepAt = next
		s.lotTimer.Reset(time.Until(next) + time.Millisecond)
	}
	s.lotMu.Unlock()
	for _, ps := range expired {
		s.expire(ps, now)
	}
}

// drainLot expires everything parked (server shutdown). It takes pumpMu
// so it serializes with retire: a retire that read closed == false has
// finished inserting before the drain snapshots the lot, and one that
// runs after the drain reads closed == true and parks nothing — no
// entry or armed janitor timer can leak into a drained lot.
func (s *Server) drainLot() {
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()
	now := time.Now()
	s.lotMu.Lock()
	if s.lotTimer != nil {
		s.lotTimer.Stop()
		s.lotTimer = nil
	}
	lot := s.lot
	s.lot = nil
	if n := len(lot); n > 0 {
		mSessParkedNow.Add(int64(-n))
		for _, ps := range lot {
			lotBytesAdd(ps, -1)
		}
	}
	s.lotMu.Unlock()
	for _, ps := range lot {
		s.expire(ps, now)
	}
}

// addParkedDamage offers freshly rendered damage to every parked session.
// Runs under s.pumpMu (from pump), keeping it ordered against park.
func (s *Server) addParkedDamage(rects []gfx.Rect) {
	s.lotMu.Lock()
	for _, ps := range s.lot {
		for _, r := range rects {
			ps.dirty.Add(r)
		}
	}
	s.lotMu.Unlock()
}

// Parked returns the number of sessions currently waiting in the detach
// lot. The hub's idle eviction consults it (via uniint.HubSession) so a
// home with a parked session is not evicted out from under a roaming
// user.
func (s *Server) Parked() int {
	s.lotMu.Lock()
	defer s.lotMu.Unlock()
	return len(s.lot)
}

// HasParked reports whether the lot holds a live (unexpired) session for
// token — the hub's token-routing probe.
func (s *Server) HasParked(token string) bool {
	s.lotMu.Lock()
	defer s.lotMu.Unlock()
	ps := s.lot[token]
	return ps != nil && !time.Now().After(ps.deadline)
}
