package uniserver

import (
	"errors"
	"net"
	"sync"

	"uniint/internal/gfx"
	"uniint/internal/rfb"
	"uniint/internal/sched"
	"uniint/internal/trace"
)

// The edge (readiness-driven) session path: AttachEdge serves a connection
// with ZERO steady-state goroutines. Where HandleConn parks a goroutine in
// a blocking read loop for the session's life, an edge session is three
// pool tasks — read, write, dispatch — kicked by the transport's readiness
// callback and the damage pump. A process hosting 100k idle edge sessions
// runs the same O(workers) goroutines as one hosting ten.

// edgeTransport is the readiness contract AttachEdge requires of its
// connection (netsim.EventConn satisfies it): arrival is signalled through
// a callback and buffered bytes are drained without blocking.
type edgeTransport interface {
	net.Conn
	// OnReadable installs the arrival callback; it must also fire at close.
	OnReadable(func())
	// ReadAvailable copies buffered bytes without blocking: (0, nil) means
	// drained-but-open, (0, io.EOF) means closed and drained.
	ReadAvailable(p []byte) (int, error)
}

// ErrNotEdge reports a conn without the readiness interface AttachEdge
// needs (OnReadable + ReadAvailable).
var ErrNotEdge = errors.New("uniserver: conn is not readiness-driven (need OnReadable/ReadAvailable)")

// edgeReadBudget bounds the bytes one read turn consumes before
// re-queueing itself, so a flooding client shares workers fairly with
// every other session instead of pinning one.
const edgeReadBudget = 64 << 10

// edgeBufPool holds the per-turn read scratch. Like turnScratch, it is
// checked out per turn, so read-buffer memory is O(concurrent read turns),
// not O(sessions).
var edgeBufPool = sync.Pool{
	New: func() any { b := make([]byte, 8<<10); return &b },
}

// AttachEdge handshakes and serves one readiness-driven connection, then
// returns — the session's life continues on the server's worker pool with
// no goroutine of its own. The handshake blocks the caller (bounded by
// HandshakeTimeout; brief when the client pipelined its hello, see
// rfb.ClientHello). onClose, if non-nil, runs once after the session has
// fully retired — the hub passes its entry unpin here. Resume-token
// semantics are identical to HandleConn: a live token reclaims the parked
// session, disconnects park in the detach lot.
func (s *Server) AttachEdge(conn net.Conn, onClose func()) error {
	et, ok := conn.(edgeTransport)
	if !ok {
		conn.Close()
		return ErrNotEdge
	}
	w, h := s.display.Size()
	routeStart, routeEnd, _ := trace.RouteSpan(conn)
	var reclaimed *parkedSession
	ex := func(presented string) (string, bool) {
		if s.parkTTL > 0 && presented != "" {
			if ps := s.claimParked(presented, w, h); ps != nil {
				reclaimed = ps
				return presented, true
			}
			mSessResumeMiss.Inc()
		}
		return newSessionToken(), false
	}
	hsTimer := sched.Shared().AfterFunc(HandshakeTimeout, func() { conn.Close() })
	rc, err := rfb.NewEdgeServerConn(conn, w, h, s.name, ex)
	hsTimer.Stop()
	if err != nil {
		if reclaimed != nil {
			s.releaseClaim(reclaimed)
		}
		return err
	}
	sess := &session{
		srv:        s,
		conn:       rc,
		token:      rc.Token(),
		routeStart: routeStart,
		routeEnd:   routeEnd,
		dirty:      gfx.NewDamage(gfx.R(0, 0, w, h), 16),
		outbox:     gfx.NewDamage(gfx.R(0, 0, w, h), 16),
		bounds:     gfx.R(0, 0, w, h),
		ws:         rfb.NewWireState(s.tiles, w, h),
		edge:       et,
		onClose:    onClose,
	}
	sess.writeTask = s.pool.NewTask(sess.writerTurn)
	sess.dispatchTask = s.pool.NewTask(sess.dispatchTurn)
	sess.readTask = s.pool.NewTask(sess.readTurn)
	// The session joins the server's connection wait group so Close blocks
	// until the teardown turn has fully retired it — the same guarantee
	// HandleConn's blocking call gives for free.
	s.wg.Add(1)
	resumed := reclaimed != nil
	if !s.register(sess, reclaimed) {
		s.wg.Done()
		rc.Close()
		return errors.New("uniserver: server closed")
	}
	mSessions.Inc()
	if resumed {
		sess.satisfyParkedRequest()
		sess.wake()
		sess.wakeDispatch()
	}
	// Readiness wiring last: the callback fires immediately if bytes (or a
	// close) already arrived, and the explicit kick covers messages the
	// client pipelined behind its handshake, which the handshake reader
	// left in the connection's feed buffer.
	et.OnReadable(sess.readTask.Kick)
	sess.readTask.Kick()
	return nil
}

// readTurn is the edge session's read task: drain the transport's buffered
// bytes through the incremental parser, dispatching messages to the same
// ServerHandler methods the blocking read loop would. On transport close
// or a protocol error it runs the session teardown inline — the turn-based
// equivalent of HandleConn returning.
func (c *session) readTurn() {
	if c.dead {
		return
	}
	bp := edgeBufPool.Get().(*[]byte)
	buf := *bp
	total := 0
	for {
		n, err := c.edge.ReadAvailable(buf)
		if n > 0 {
			total += n
			if ferr := c.conn.Feed(buf[:n], c); ferr != nil {
				err = ferr
			}
		}
		if err != nil {
			edgeBufPool.Put(bp)
			c.teardownEdge()
			return
		}
		if n == 0 {
			edgeBufPool.Put(bp)
			return // drained; the next readiness callback kicks us
		}
		if total >= edgeReadBudget {
			edgeBufPool.Put(bp)
			c.readTask.Kick() // running → rerun: back of the queue
			return
		}
	}
}

// teardownEdge retires an edge session (read turn only). It mirrors the
// tail of HandleConn: stop the sibling tasks, drain the input queue, and
// retire into the detach lot. The read task stops itself by flag — a task
// must never Stop from its own turn — and later kicks land on the dead
// check. Whether state parks or dies follows retire's usual rules.
func (c *session) teardownEdge() {
	c.dead = true
	mSessions.Dec()
	c.conn.Close()
	c.writeTask.Stop()
	c.dispatchTask.Stop()
	leftovers := c.inq.take()
	if !c.srv.retire(c, leftovers) && len(leftovers) > 0 {
		mInputAbandoned.Add(int64(len(leftovers)))
	}
	c.srv.wg.Done()
	if c.onClose != nil {
		c.onClose()
	}
}
