package uniserver

import (
	"net"
	"runtime"
	"testing"
	"time"

	"uniint/internal/leakcheck"
	"uniint/internal/netsim"
	"uniint/internal/rfb"
	"uniint/internal/sched"
	"uniint/internal/toolkit"
	"uniint/internal/workload"
)

// edgeWire builds a server and attaches one edge session over an event
// pipe, with the client hello (optionally carrying a resume token)
// pipelined so AttachEdge never blocks. It returns the client end with
// the server's handshake output still buffered.
func edgeWire(t *testing.T, srv *Server, token string) *netsim.EventConn {
	t.Helper()
	client, server := netsim.EventPipe()
	if _, err := client.Write(rfb.ClientHello(token)); err != nil {
		t.Fatal(err)
	}
	if err := srv.AttachEdge(server, nil); err != nil {
		t.Fatal(err)
	}
	return client
}

// readServerInit drains and parses the server handshake from an edge
// client: version + security word + ServerInit, returning the resumed
// verdict and the issued session token.
func readServerInit(t *testing.T, client *netsim.EventConn) (resumed bool, token string) {
	t.Helper()
	var hs []byte
	buf := make([]byte, 512)
	deadline := time.Now().Add(2 * time.Second)
	for {
		n, err := client.ReadAvailable(buf)
		hs = append(hs, buf[:n]...)
		if err != nil {
			t.Fatalf("handshake read: %v", err)
		}
		// version(12) + security(4) + w,h(4) + pf(16) + namelen(4).
		if len(hs) >= 40 {
			nameLen := int(uint32(hs[36])<<24 | uint32(hs[37])<<16 | uint32(hs[38])<<8 | uint32(hs[39]))
			if len(hs) >= 40+nameLen+2 {
				rest := hs[40+nameLen:]
				resumed = rest[0] == 1
				tl := int(rest[1])
				if len(rest) >= 2+tl {
					return resumed, string(rest[2 : 2+tl])
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("incomplete server handshake after %d bytes", len(hs))
		}
		if n == 0 {
			time.Sleep(time.Millisecond)
		}
	}
}

func TestAttachEdgeServesUpdates(t *testing.T) {
	leakcheck.Check(t, 0)
	display := toolkit.NewDisplay(160, 120)
	srv := New(display, "edge test")
	defer srv.Close()

	client := edgeWire(t, srv, "")
	resumed, token := readServerInit(t, client)
	if resumed || token == "" {
		t.Fatalf("fresh session: resumed=%v token=%q", resumed, token)
	}

	// A full-frame request must produce a framebuffer update with zero
	// client goroutines: write the request, wait for update bytes.
	req := []byte{3, 0, 0, 0, 0, 0, 0, 160, 0, 120}
	if _, err := client.Write(req); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "framebuffer update", func() bool { return client.Buffered() > 0 })
	client.Close()
}

func TestAttachEdgeRejectsBlockingConn(t *testing.T) {
	display := toolkit.NewDisplay(32, 24)
	srv := New(display, "edge test")
	defer srv.Close()
	a, b := net.Pipe()
	defer a.Close()
	if err := srv.AttachEdge(b, nil); err != ErrNotEdge {
		t.Fatalf("AttachEdge(net.Pipe) = %v, want ErrNotEdge", err)
	}
}

func TestEdgeDisconnectParksAndResumes(t *testing.T) {
	leakcheck.Check(t, 0)
	display := toolkit.NewDisplay(160, 120)
	srv := New(display, "edge test")
	defer srv.Close()

	client := edgeWire(t, srv, "")
	_, token := readServerInit(t, client)

	// Type a key so the parked state carries input accounting.
	key := []byte{4, 1, 0, 0, 0, 0, 0, 0x61}
	if _, err := client.Write(key); err != nil {
		t.Fatal(err)
	}
	client.Close()
	waitFor(t, "session parked", func() bool { return srv.Parked() == 1 })
	if !srv.HasParked(token) {
		t.Fatalf("HasParked(%q) = false after park", token)
	}

	// Resume with the issued token on a fresh edge connection.
	client2 := edgeWire(t, srv, token)
	defer client2.Close()
	resumed, token2 := readServerInit(t, client2)
	if !resumed || token2 != token {
		t.Fatalf("resume: resumed=%v token=%q want %q", resumed, token2, token)
	}
	waitFor(t, "lot emptied", func() bool { return srv.Parked() == 0 })

	// The onClose hook runs once after the resumed session retires.
	closed := make(chan struct{})
	client3, server3 := netsim.EventPipe()
	client3.Write(rfb.ClientHello(""))
	if err := srv.AttachEdge(server3, func() { close(closed) }); err != nil {
		t.Fatal(err)
	}
	readServerInit(t, client3)
	client3.Close()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("onClose not invoked after edge disconnect")
	}
}

func TestEdgeCloseLeavesNoGoroutines(t *testing.T) {
	leakcheck.Check(t, 0)
	display := toolkit.NewDisplay(160, 120)
	srv := New(display, "edge test", WithParkTTL(0))
	clients := make([]*netsim.EventConn, 0, 8)
	for i := 0; i < 8; i++ {
		clients = append(clients, edgeWire(t, srv, ""))
	}
	// Close with every session still attached: Close must disconnect them,
	// wait out the teardown turns and join its own pool workers.
	srv.Close()
	for _, c := range clients {
		c.Close()
	}
}

func TestThousandIdleEdgeSessionsBoundedGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-session fleet")
	}
	leakcheck.Check(t, 0)
	const sessions, workers = 1000, 4
	display := toolkit.NewDisplay(32, 24)
	pool := sched.NewPool(workers)
	defer pool.Close()
	srv := New(display, "edge fleet", WithPool(pool), WithParkTTL(0))
	defer srv.Close()

	base := runtime.NumGoroutine()
	clients, err := workload.IdleFleet(sessions, func(conn net.Conn) error {
		return srv.AttachEdge(conn, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Sessions(); got != sessions {
		t.Fatalf("Sessions() = %d, want %d", got, sessions)
	}
	// The core budget claim: goroutine count is independent of session
	// count. base already includes the pool's workers; the fleet may add
	// at most transient turns (absorbed by Assert's settle loop) — allow
	// a small constant, nothing proportional to the 1000 sessions.
	leakcheck.Assert(t, base+8, "1k idle edge sessions")

	for _, c := range clients {
		c.Close()
	}
	waitFor(t, "fleet retired", func() bool { return srv.Sessions() == 0 })
}
