package uniserver

import (
	"sync"
	"testing"
	"time"

	"uniint/internal/leakcheck"
	"uniint/internal/metrics"
	"uniint/internal/toolkit"
)

// parkedEntry fetches the single lot entry (the tests park exactly one
// session at a time).
func parkedEntry(t *testing.T, s *Server) *parkedSession {
	t.Helper()
	s.lotMu.Lock()
	defer s.lotMu.Unlock()
	if len(s.lot) != 1 {
		t.Fatalf("lot holds %d entries, want 1", len(s.lot))
	}
	for _, ps := range s.lot {
		return ps
	}
	return nil
}

func lotGauges() (resident, compressed int64) {
	snap := metrics.Default().Snapshot()
	return snap.Gauges["lot_parked_bytes"], snap.Gauges["lot_parked_bytes_compressed"]
}

func TestParkedSessionCompresses(t *testing.T) {
	leakcheck.Check(t, 0)
	display := toolkit.NewDisplay(160, 120)
	srv := New(display, "park compress")
	defer srv.Close()

	r0, c0 := lotGauges()
	client := edgeWire(t, srv, "")
	_, token := readServerInit(t, client)
	client.Close()
	waitFor(t, "session parked", func() bool { return srv.Parked() == 1 })

	raw := int64(160 * 120 * 4)
	// The compression turn runs async on the server's pool; wait for the
	// packed form to land, observable through the gauges.
	waitFor(t, "parked shadow compressed", func() bool {
		_, c := lotGauges()
		return c > c0
	})
	r1, c1 := lotGauges()
	if r1-r0 != c1-c0 {
		t.Fatalf("resident %d != compressed %d after pack", r1-r0, c1-c0)
	}
	if (c1-c0)*3 > raw {
		t.Fatalf("compressed to %d bytes of %d raw: under the 3x floor", c1-c0, raw)
	}

	// Resume on the cold state: the thawed shadow must serve a working
	// session, and the gauges must return to their baseline.
	client2 := edgeWire(t, srv, token)
	defer client2.Close()
	resumed, _ := readServerInit(t, client2)
	if !resumed {
		t.Fatal("resume on compressed parked session failed")
	}
	waitFor(t, "lot emptied", func() bool { return srv.Parked() == 0 })
	r2, c2 := lotGauges()
	if r2 != r0 || c2 != c0 {
		t.Fatalf("gauges %d/%d after resume, want %d/%d", r2, c2, r0, c0)
	}
}

func TestResumeMidCompressionNeverTorn(t *testing.T) {
	// The claim/pack race: a resume landing while the compression turn is
	// mid-read must wait the read out and adopt intact state. The race
	// window is forced by invoking the compression turn concurrently with
	// the claim, many rounds, under -race in CI.
	leakcheck.Check(t, 0)
	display := toolkit.NewDisplay(64, 48)
	srv := New(display, "park race")
	defer srv.Close()

	for round := 0; round < 25; round++ {
		client := edgeWire(t, srv, "")
		_, token := readServerInit(t, client)
		client.Close()
		waitFor(t, "session parked", func() bool { return srv.Parked() == 1 })
		ps := parkedEntry(t, srv)

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.compressParked(ps) // may double-run against the pool's turn: idempotent
		}()
		reclaimed := srv.claimParked(token, 64, 48)
		wg.Wait()
		if reclaimed == nil {
			t.Fatalf("round %d: claim lost a parked session", round)
		}
		// Whatever the interleaving, the claimed entry holds exactly one
		// usable shadow: raw, or cold and thawable.
		srv.lotMu.Lock()
		ws, packed := reclaimed.ws, reclaimed.packed
		srv.lotMu.Unlock()
		if ws == nil {
			if packed == nil {
				t.Fatalf("round %d: claimed entry has neither raw nor packed shadow", round)
			}
			thawed, err := packed.Unpack(nil)
			if err != nil || thawed.ShadowBytes() != 64*48*4 {
				t.Fatalf("round %d: thaw failed: %v", round, err)
			}
		}
		srv.releaseClaim(reclaimed)
		// Drain the lot for the next round via the sweep-on-expire path:
		// claim it again and finish through a real resume.
		client2 := edgeWire(t, srv, token)
		resumed, _ := readServerInit(t, client2)
		if !resumed {
			t.Fatalf("round %d: post-race resume failed", round)
		}
		client2.Close()
		waitFor(t, "round parked again", func() bool { return srv.Parked() == 1 })
		// Expire it so the next round starts from an empty lot (settling
		// the park accounting the way the janitor would).
		srv.lotMu.Lock()
		drained := make([]*parkedSession, 0, 1)
		for tok, e := range srv.lot {
			delete(srv.lot, tok)
			mSessParkedNow.Dec()
			lotBytesAdd(e, -1)
			drained = append(drained, e)
		}
		srv.lotMu.Unlock()
		for _, e := range drained {
			srv.expire(e, time.Now())
		}
	}
}
