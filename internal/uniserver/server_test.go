package uniserver

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"uniint/internal/gfx"
	"uniint/internal/rfb"
	"uniint/internal/toolkit"
)

// recorder implements rfb.ClientHandler for tests.
type recorder struct {
	mu      sync.Mutex
	updates int
	gotUpd  chan struct{}
}

func newRecorder() *recorder { return &recorder{gotUpd: make(chan struct{}, 64)} }

func (r *recorder) Updated(rects []gfx.Rect) {
	r.mu.Lock()
	r.updates++
	r.mu.Unlock()
	select {
	case r.gotUpd <- struct{}{}:
	default:
	}
}
func (r *recorder) Bell()          {}
func (r *recorder) CutText(string) {}

// wire builds display+server+connected client.
func wire(t *testing.T, opts ...Option) (*toolkit.Display, *Server, *rfb.ClientConn, *recorder) {
	t.Helper()
	display := toolkit.NewDisplay(160, 120)
	srv := New(display, "test session", opts...)

	sc, cc := net.Pipe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.HandleConn(sc) }()
	client, err := rfb.Dial(cc)
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	runDone := make(chan struct{})
	go func() { client.Run(rec); close(runDone) }()
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		select {
		case <-runDone:
		case <-time.After(2 * time.Second):
			t.Error("client run loop stuck")
		}
		select {
		case <-serveErr:
		case <-time.After(2 * time.Second):
			t.Error("server handler stuck")
		}
	})
	return display, srv, client, rec
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHandshakeAnnouncesDisplayGeometry(t *testing.T) {
	_, srv, client, _ := wire(t)
	w, h := client.Size()
	if w != 160 || h != 120 {
		t.Errorf("size = %dx%d", w, h)
	}
	if client.Name() != "test session" {
		t.Errorf("name = %q", client.Name())
	}
	waitFor(t, "session registration", func() bool { return srv.Sessions() == 1 })
}

func TestFullUpdateRequest(t *testing.T) {
	display, _, client, rec := wire(t)
	root := toolkit.NewPanel(toolkit.VBox{Gap: 2, Padding: 2})
	root.Add(toolkit.NewLabel("hello world"))
	display.SetRoot(root)

	if err := client.RequestUpdate(false, gfx.R(0, 0, 160, 120)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "full update", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 1
	})
	// Shadow framebuffer matches the display.
	want := display.Snapshot(gfx.R(0, 0, 160, 120))
	got := client.Snapshot(gfx.R(0, 0, 160, 120))
	if !got.Equal(want) {
		t.Error("client shadow does not match display content")
	}
}

func TestIncrementalParksUntilDamage(t *testing.T) {
	display, _, client, rec := wire(t)
	// Drain initial state with a full update.
	client.RequestUpdate(false, gfx.R(0, 0, 160, 120))
	waitFor(t, "initial update", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 1
	})

	// Incremental request with no damage: nothing should arrive.
	client.RequestUpdate(true, gfx.R(0, 0, 160, 120))
	time.Sleep(20 * time.Millisecond)
	rec.mu.Lock()
	before := rec.updates
	rec.mu.Unlock()
	if before != 1 {
		t.Fatalf("unexpected update while clean: %d", before)
	}

	// Now damage the display: the parked request must complete.
	lbl := toolkit.NewLabel("news")
	root := toolkit.NewPanel(toolkit.VBox{})
	root.Add(lbl)
	display.SetRoot(root)
	waitFor(t, "parked update", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 2
	})
}

func TestInputEventsReachWidgets(t *testing.T) {
	display, _, client, _ := wire(t)
	clicks := 0
	var mu sync.Mutex
	btn := toolkit.NewButton("go", func() { mu.Lock(); clicks++; mu.Unlock() })
	root := toolkit.NewPanel(toolkit.VBox{Gap: 2, Padding: 2})
	root.Add(btn)
	display.SetRoot(root)
	display.Render()

	b := btn.Bounds()
	x, y := uint16(b.X+2), uint16(b.Y+2)
	if err := client.SendPointer(rfb.PointerEvent{Buttons: 1, X: x, Y: y}); err != nil {
		t.Fatal(err)
	}
	if err := client.SendPointer(rfb.PointerEvent{Buttons: 0, X: x, Y: y}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "pointer click", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return clicks == 1
	})

	// Keyboard path: Enter activates the focused button.
	if err := client.SendKey(rfb.KeyEvent{Down: true, Key: rfb.KeyReturn}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "key click", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return clicks == 2
	})
}

func TestInteractionProducesIncrementalUpdate(t *testing.T) {
	// The classic thin-client round trip: press a button, the visual
	// pressed-state change flows back as an update.
	display, _, client, rec := wire(t)
	btn := toolkit.NewButton("go", nil)
	root := toolkit.NewPanel(toolkit.VBox{Gap: 2, Padding: 2})
	root.Add(btn)
	display.SetRoot(root)
	display.Render()

	client.RequestUpdate(false, gfx.R(0, 0, 160, 120))
	waitFor(t, "initial", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 1
	})
	client.RequestUpdate(true, gfx.R(0, 0, 160, 120))

	b := btn.Bounds()
	client.SendPointer(rfb.PointerEvent{Buttons: 1, X: uint16(b.X + 2), Y: uint16(b.Y + 2)})
	waitFor(t, "press repaint", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 2
	})
}

func TestMultipleSessionsSeeSameDesktop(t *testing.T) {
	display, srv, client1, rec1 := wire(t)

	// Second client on the same server.
	sc, cc := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.HandleConn(sc) }()
	client2, err := rfb.Dial(cc)
	if err != nil {
		t.Fatal(err)
	}
	rec2 := newRecorder()
	go func() { client2.Run(rec2) }()
	defer client2.Close()

	waitFor(t, "two sessions", func() bool { return srv.Sessions() == 2 })

	root := toolkit.NewPanel(toolkit.VBox{})
	root.Add(toolkit.NewLabel("shared"))
	display.SetRoot(root)

	client1.RequestUpdate(false, gfx.R(0, 0, 160, 120))
	client2.RequestUpdate(false, gfx.R(0, 0, 160, 120))
	waitFor(t, "both updated", func() bool {
		rec1.mu.Lock()
		u1 := rec1.updates
		rec1.mu.Unlock()
		rec2.mu.Lock()
		u2 := rec2.updates
		rec2.mu.Unlock()
		return u1 >= 1 && u2 >= 1
	})
	if !client1.Snapshot(gfx.R(0, 0, 160, 120)).Equal(client2.Snapshot(gfx.R(0, 0, 160, 120))) {
		t.Error("sessions diverged")
	}
}

func TestServeAcceptLoop(t *testing.T) {
	display := toolkit.NewDisplay(64, 64)
	srv := New(display, "accept test")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client, err := rfb.Dial(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(client.Name(), "accept") {
		t.Errorf("name = %q", client.Name())
	}
	client.Close()
	ln.Close()
	select {
	case <-serveDone:
	case <-time.After(2 * time.Second):
		t.Fatal("serve did not return after listener close")
	}
	srv.Close()
}

// slowConn delays every read, simulating a narrow client link so writes
// from the server back up and the coalescing path engages.
type slowConn struct {
	net.Conn
	delay time.Duration
}

func (s *slowConn) Read(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.Conn.Read(p)
}

// TestBackpressureCoalescesUpdates: a burst of pipelined full-region
// requests against a slow client must be answered with FEWER updates than
// requests — while one write is in flight, later requested damage merges
// into the pending outbox and ships as one coalesced FramebufferUpdate —
// and the final shadow framebuffer must still match the display.
func TestBackpressureCoalescesUpdates(t *testing.T) {
	display := toolkit.NewDisplay(160, 120)
	srv := New(display, "coalesce test")
	root := toolkit.NewPanel(toolkit.VBox{Gap: 2, Padding: 2})
	root.Add(toolkit.NewLabel("backpressure"))
	display.SetRoot(root)

	sc, cc := net.Pipe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.HandleConn(sc) }()
	client, err := rfb.Dial(&slowConn{Conn: cc, delay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	runDone := make(chan struct{})
	go func() { client.Run(rec); close(runDone) }()
	defer func() {
		client.Close()
		srv.Close()
		<-runDone
		<-serveErr
	}()

	const burst = 12
	before := mRectsCoalesced.Value()
	for i := 0; i < burst; i++ {
		if err := client.RequestUpdate(false, gfx.R(0, 0, 160, 120)); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until every request has been answered or folded into a
	// coalesced reply: updates stop growing once the outbox drains.
	waitFor(t, "replies to settle", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 1 && int64(rec.updates)+(mRectsCoalesced.Value()-before) >= burst
	})
	time.Sleep(20 * time.Millisecond) // let any straggler land
	rec.mu.Lock()
	got := rec.updates
	rec.mu.Unlock()
	if got >= burst {
		t.Errorf("no coalescing: %d updates for %d pipelined requests", got, burst)
	}
	if mRectsCoalesced.Value() == before {
		t.Error("coalesced-rects counter did not move")
	}
	if !client.Snapshot(gfx.R(0, 0, 160, 120)).Equal(display.Snapshot(gfx.R(0, 0, 160, 120))) {
		t.Error("shadow diverged from display after coalesced replies")
	}
}

func TestEmptyRegionRequestGetsEmptyReply(t *testing.T) {
	_, _, client, rec := wire(t)
	// A non-incremental request for a region entirely off-screen must
	// still be answered (with zero rectangles), keeping request/reply
	// pairing intact for demand-driven clients.
	if err := client.RequestUpdate(false, gfx.R(5000, 5000, 10, 10)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "empty reply", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates == 1
	})
	if client.UpdatesReceived() != 1 {
		t.Errorf("updates = %d", client.UpdatesReceived())
	}
}

// TestPartialRegionRetainsOutsideDamage: damage outside a request's region
// must survive for a later request instead of being dropped — a
// spec-compliant client that polls sub-regions must eventually see every
// damaged pixel.
func TestPartialRegionRetainsOutsideDamage(t *testing.T) {
	display, _, client, rec := wire(t)
	top := toolkit.NewLabel("top strip")
	bottom := toolkit.NewLabel("bottom strip")
	root := toolkit.NewPanel(toolkit.Fixed{})
	root.Add(top, bottom)
	top.SetBounds(gfx.R(10, 10, 80, 12))
	bottom.SetBounds(gfx.R(10, 100, 80, 12))
	display.SetRoot(root)

	client.RequestUpdate(false, gfx.R(0, 0, 160, 120))
	waitFor(t, "initial full update", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 1
	})

	// Damage both strips.
	display.Update(func() {
		top.SetText("top CHANGED")
		bottom.SetText("bottom CHANGED")
	})

	// Ask only for the top half: the reply covers the top strip, the
	// bottom strip's damage must go back to the dirty set.
	client.RequestUpdate(true, gfx.R(0, 0, 160, 60))
	waitFor(t, "top-half update", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 2
	})

	// A full-screen incremental request must now deliver the bottom strip
	// (the old path dropped it, parking this request forever).
	client.RequestUpdate(true, gfx.R(0, 0, 160, 120))
	waitFor(t, "bottom strip update", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 3
	})
	if !client.Snapshot(gfx.R(0, 0, 160, 120)).Equal(display.Snapshot(gfx.R(0, 0, 160, 120))) {
		t.Error("shadow diverged: out-of-region damage was lost")
	}
}

// TestDamageOutsideParkedRegionStaysParked: new damage entirely outside a
// parked incremental request's region must not unpark it with an empty
// reply, and must still be collectable by a matching request.
func TestDamageOutsideParkedRegionStaysParked(t *testing.T) {
	display, _, client, rec := wire(t)
	bottom := toolkit.NewLabel("bottom")
	root := toolkit.NewPanel(toolkit.Fixed{})
	root.Add(bottom)
	bottom.SetBounds(gfx.R(10, 100, 80, 12))
	display.SetRoot(root)

	client.RequestUpdate(false, gfx.R(0, 0, 160, 120))
	waitFor(t, "initial", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 1
	})

	// Park a request for the (clean) top half, then damage the bottom.
	client.RequestUpdate(true, gfx.R(0, 0, 160, 50))
	time.Sleep(10 * time.Millisecond)
	display.Update(func() { bottom.SetText("bottom CHANGED") })
	time.Sleep(20 * time.Millisecond)
	rec.mu.Lock()
	got := rec.updates
	rec.mu.Unlock()
	if got != 1 {
		t.Fatalf("out-of-region damage answered a parked request: %d updates", got)
	}

	// A full request collects the bottom damage; the top-half request
	// stays parked (one reply, not two).
	client.RequestUpdate(true, gfx.R(0, 0, 160, 120))
	waitFor(t, "bottom damage", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 2
	})
}

// TestResizeUnderLiveSession: shrinking the display while a proxy is
// connected must not crash the encoder — updates are clipped to the live
// framebuffer, and every request still gets a reply.
func TestResizeUnderLiveSession(t *testing.T) {
	display, _, client, rec := wire(t)
	root := toolkit.NewPanel(toolkit.VBox{Gap: 2, Padding: 2})
	root.Add(toolkit.NewLabel("before resize"))
	display.SetRoot(root)

	client.RequestUpdate(false, gfx.R(0, 0, 160, 120))
	waitFor(t, "pre-resize update", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 1
	})

	// Shrink under the session; the client still requests its handshake
	// geometry.
	display.Resize(80, 60)
	client.RequestUpdate(false, gfx.R(0, 0, 160, 120))
	waitFor(t, "post-shrink update", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 2
	})

	// Grow again and make sure the pipeline still answers.
	display.Resize(160, 120)
	client.RequestUpdate(false, gfx.R(0, 0, 160, 120))
	waitFor(t, "post-grow update", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 3
	})
	if !client.Snapshot(gfx.R(0, 0, 160, 120)).Equal(display.Snapshot(gfx.R(0, 0, 160, 120))) {
		t.Error("shadow diverged after resize cycle")
	}
}
