package uniserver

import (
	"net"
	"sync"
	"testing"
	"time"

	"uniint/internal/gfx"
	"uniint/internal/metrics"
	"uniint/internal/rfb"
	"uniint/internal/toolkit"
)

// rectRecorder captures the rectangles of every update.
type rectRecorder struct {
	mu      sync.Mutex
	updates int
	rects   []gfx.Rect
}

func (r *rectRecorder) Updated(rects []gfx.Rect) {
	r.mu.Lock()
	r.updates++
	r.rects = append(r.rects, rects...)
	r.mu.Unlock()
}
func (r *rectRecorder) Bell()          {}
func (r *rectRecorder) CutText(string) {}

func (r *rectRecorder) snapshot() (int, []gfx.Rect) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.updates, append([]gfx.Rect(nil), r.rects...)
}

// lotHarness is a server whose clients can disconnect and return.
type lotHarness struct {
	t       *testing.T
	display *toolkit.Display
	srv     *Server
}

func newLotHarness(t *testing.T, opts ...Option) *lotHarness {
	t.Helper()
	h := &lotHarness{t: t, display: toolkit.NewDisplay(160, 120)}
	h.srv = New(h.display, "lot test", opts...)
	t.Cleanup(h.srv.Close)
	return h
}

// connect dials the server presenting token (may be ""), runs the read
// loop into a fresh recorder, and returns the client.
func (h *lotHarness) connect(token string) (*rfb.ClientConn, *rectRecorder) {
	h.t.Helper()
	sc, cc := net.Pipe()
	go h.srv.HandleConn(sc)
	client, err := rfb.DialResume(cc, token)
	if err != nil {
		h.t.Fatal(err)
	}
	rec := &rectRecorder{}
	go client.Run(rec)
	return client, rec
}

func counter(name string) int64 { return metrics.Default().Counter(name).Value() }
func gauge(name string) int64   { return metrics.Default().Gauge(name).Value() }

// TestParkAndResumeShipsOnlyDetachDamage is the heart of the detach lot:
// a session that disconnects with an incremental request parked comes
// back under its token and receives exactly the damage that accumulated
// while it was away — without re-requesting, because the parked
// update-request state machine survived the disconnect too.
func TestParkAndResumeShipsOnlyDetachDamage(t *testing.T) {
	h := newLotHarness(t)
	lbl := toolkit.NewLabel("steady")
	root := toolkit.NewPanel(toolkit.VBox{Gap: 2, Padding: 2})
	root.Add(lbl)
	h.display.SetRoot(root)

	parked0 := counter("session_parked_total")
	resumed0 := counter("session_resumed_total")

	client, rec := h.connect("")
	token := client.Token()
	if token == "" {
		t.Fatal("server issued no session token")
	}
	if client.Resumed() {
		t.Fatal("fresh session must not report resumed")
	}
	// Sync up, then park an incremental request (no damage pending).
	client.RequestUpdate(false, gfx.R(0, 0, 160, 120))
	waitFor(t, "initial update", func() bool { u, _ := rec.snapshot(); return u >= 1 })
	client.RequestUpdate(true, gfx.R(0, 0, 160, 120))
	time.Sleep(10 * time.Millisecond) // let the request park

	// The link dies; the session parks.
	client.Close()
	waitFor(t, "session parked", func() bool { return h.srv.Parked() == 1 })
	if d := counter("session_parked_total") - parked0; d != 1 {
		t.Fatalf("session_parked_total delta = %d, want 1", d)
	}

	// Detach-window damage: the label repaints while nobody is connected.
	h.display.Update(func() { lbl.SetText("while away") })

	// The owner returns. The parked request and the detach damage pair up
	// during resume: the resync arrives with no new request from us.
	client2, rec2 := h.connect(token)
	defer client2.Close()
	if !client2.Resumed() {
		t.Fatal("reconnect with live token must resume")
	}
	if client2.Token() != token {
		t.Fatalf("resumed session re-keyed: %q != %q", client2.Token(), token)
	}
	waitFor(t, "resync update", func() bool { u, _ := rec2.snapshot(); return u >= 1 })
	_, rects := rec2.snapshot()
	full := gfx.R(0, 0, 160, 120)
	area := 0
	for _, r := range rects {
		area += r.Area()
		if r == full {
			t.Fatal("resync shipped a full-screen rect; wanted only detach damage")
		}
	}
	if area == 0 || area >= full.Area()/2 {
		t.Fatalf("resync area = %d px, want small non-zero (full screen = %d)", area, full.Area())
	}
	if d := counter("session_resumed_total") - resumed0; d != 1 {
		t.Fatalf("session_resumed_total delta = %d, want 1", d)
	}
	if h.srv.Parked() != 0 {
		t.Fatal("lot should be empty after resume")
	}
}

// TestResumeMissFallsBackToFreshSession: an unknown token joins cold and
// is counted as a miss, and the fresh session still works.
func TestResumeMissFallsBackToFreshSession(t *testing.T) {
	h := newLotHarness(t)
	miss0 := counter("session_resume_miss_total")
	client, rec := h.connect("no-such-token")
	defer client.Close()
	if client.Resumed() {
		t.Fatal("unknown token must not resume")
	}
	if client.Token() == "" || client.Token() == "no-such-token" {
		t.Fatalf("fresh token not issued: %q", client.Token())
	}
	if d := counter("session_resume_miss_total") - miss0; d != 1 {
		t.Fatalf("session_resume_miss_total delta = %d, want 1", d)
	}
	client.RequestUpdate(false, gfx.R(0, 0, 160, 120))
	waitFor(t, "fresh session serves", func() bool { u, _ := rec.snapshot(); return u >= 1 })
}

// TestParkTTLExpires: a parked session not reclaimed within the TTL is
// expired by the lot janitor and a late resume misses.
func TestParkTTLExpires(t *testing.T) {
	h := newLotHarness(t, WithParkTTL(30*time.Millisecond))
	expired0 := counter("session_expired_total")

	client, _ := h.connect("")
	token := client.Token()
	client.Close()
	waitFor(t, "session parked", func() bool { return h.srv.Parked() == 1 })
	waitFor(t, "session expired", func() bool { return h.srv.Parked() == 0 })
	if d := counter("session_expired_total") - expired0; d != 1 {
		t.Fatalf("session_expired_total delta = %d, want 1", d)
	}

	client2, _ := h.connect(token)
	defer client2.Close()
	if client2.Resumed() {
		t.Fatal("expired token must not resume")
	}
}

// TestParkCapacityEvictsOldest: the lot is bounded; the oldest parked
// session is expired to make room.
func TestParkCapacityEvictsOldest(t *testing.T) {
	h := newLotHarness(t, WithParkCapacity(2))
	expired0 := counter("session_expired_total")

	var tokens []string
	for i := 0; i < 3; i++ {
		client, _ := h.connect("")
		tokens = append(tokens, client.Token())
		client.Close()
		waitFor(t, "session parked", func() bool { return h.srv.Parked() >= min(i+1, 2) })
		time.Sleep(2 * time.Millisecond) // order parkedAt stamps
	}
	if h.srv.Parked() != 2 {
		t.Fatalf("lot holds %d, want capacity 2", h.srv.Parked())
	}
	if d := counter("session_expired_total") - expired0; d != 1 {
		t.Fatalf("session_expired_total delta = %d, want 1", d)
	}
	if h.srv.HasParked(tokens[0]) {
		t.Fatal("oldest session should have been evicted")
	}
	if !h.srv.HasParked(tokens[1]) || !h.srv.HasParked(tokens[2]) {
		t.Fatal("newer sessions should survive the capacity eviction")
	}
}

// TestResumeReplaysQueuedInput: input events still undispatched at
// disconnect ride through the park window and dispatch after resume —
// zero lost semantic events.
func TestResumeReplaysQueuedInput(t *testing.T) {
	h := newLotHarness(t)
	block := make(chan struct{})
	unblock := sync.OnceFunc(func() { close(block) })
	defer unblock()
	entered := make(chan struct{}, 1)
	clicks := 0
	var clickMu sync.Mutex
	btn := toolkit.NewButton("stall", func() {
		clickMu.Lock()
		clicks++
		clickMu.Unlock()
		select {
		case entered <- struct{}{}:
		default:
		}
		<-block
	})
	root := toolkit.NewPanel(toolkit.VBox{Gap: 2, Padding: 2})
	root.Add(btn)
	h.display.SetRoot(root)
	h.display.Render()

	client, _ := h.connect("")
	token := client.Token()

	// First click stalls the dispatcher; the following presses sit in the
	// queue when the link dies.
	b := btn.Bounds()
	client.SendPointer(rfb.PointerEvent{Buttons: 1, X: uint16(b.X + 2), Y: uint16(b.Y + 2)})
	client.SendPointer(rfb.PointerEvent{Buttons: 0, X: uint16(b.X + 2), Y: uint16(b.Y + 2)})
	<-entered
	for i := 0; i < 3; i++ {
		client.SendPointer(rfb.PointerEvent{Buttons: 1, X: uint16(b.X + 2), Y: uint16(b.Y + 2)})
		client.SendPointer(rfb.PointerEvent{Buttons: 0, X: uint16(b.X + 2), Y: uint16(b.Y + 2)})
	}
	waitFor(t, "events queued", func() bool { return gauge("input_queue_depth") > 0 })

	// Kill the link with the queue loaded, then lift the stall: quit is
	// already signalled, so the dispatcher finishes only its in-flight
	// batch and the rest of the queue parks with the session.
	client.Close()
	unblock()
	waitFor(t, "session parked", func() bool { return h.srv.Parked() == 1 })

	// Resume: the parked events must dispatch on the revived session.
	client2, _ := h.connect(token)
	defer client2.Close()
	if !client2.Resumed() {
		t.Fatal("resume failed")
	}
	waitFor(t, "replayed clicks", func() bool {
		clickMu.Lock()
		defer clickMu.Unlock()
		return clicks == 4
	})
}

// TestGeometryChangeWhileParkedMisses: a display resize invalidates the
// parked session (the client's kept shadow no longer matches) — the
// reconnect joins cold instead of resuming into the wrong geometry.
func TestGeometryChangeWhileParkedMisses(t *testing.T) {
	h := newLotHarness(t)
	client, _ := h.connect("")
	token := client.Token()
	client.Close()
	waitFor(t, "session parked", func() bool { return h.srv.Parked() == 1 })

	h.display.Resize(200, 150)
	client2, _ := h.connect(token)
	defer client2.Close()
	if client2.Resumed() {
		t.Fatal("resume across a geometry change must miss")
	}
	if w, h2 := client2.Size(); w != 200 || h2 != 150 {
		t.Fatalf("fresh session geometry = %dx%d", w, h2)
	}
	if h.srv.Parked() != 0 {
		t.Fatal("stale parked session should be gone")
	}
}

// TestCloseDrainsLot: server shutdown expires everything parked and
// zeroes the gauge.
func TestCloseDrainsLot(t *testing.T) {
	h := newLotHarness(t)
	g0 := gauge("session_parked")
	client, _ := h.connect("")
	client.Close()
	waitFor(t, "session parked", func() bool { return h.srv.Parked() == 1 })
	h.srv.Close()
	if h.srv.Parked() != 0 {
		t.Fatal("lot not drained on close")
	}
	if g := gauge("session_parked"); g != g0 {
		t.Fatalf("session_parked gauge = %d, want %d", g, g0)
	}
}
