package uniserver

import (
	"sync"
	"time"

	"uniint/internal/metrics"
	"uniint/internal/rfb"
	"uniint/internal/toolkit"
	"uniint/internal/trace"
)

// Input-pipeline instruments (server half). The accounting invariant:
// every event offered to a queue ends in exactly one bucket, so
// input_queued_total == input_dispatched_total + input_coalesced_total
// + input_dropped_total (hard-cap sheds) + input_abandoned_total (still
// queued when the session died) whenever input_queue_depth is zero.
var (
	mInputQueued      = metrics.Default().Counter("input_queued_total")
	mInputCoalesced   = metrics.Default().Counter("input_coalesced_total")
	mInputDispatched  = metrics.Default().Counter("input_dispatched_total")
	mInputOverflow    = metrics.Default().Counter("input_queue_overflow_total")
	mInputDropped     = metrics.Default().Counter("input_dropped_total")
	mInputAbandoned   = metrics.Default().Counter("input_abandoned_total")
	mInputQueueDepth  = metrics.Default().Gauge("input_queue_depth")
	mInputDispatchSec = metrics.Default().Histogram("input_dispatch_seconds", metrics.LatencyBuckets())
	mInputToUpdateSec = metrics.Default().Histogram("input_to_update_seconds", metrics.LatencyBuckets())
)

// inputQueueBound is the per-session depth at which the queue starts
// reclaiming space from pointer moves. Pure moves always collapse to at
// most one entry per run via tail coalescing, so the bound is only ever
// approached by streams of semantic events (key presses, button
// transitions) — which are kept past it (counted as overflow) up to the
// hard cap.
const inputQueueBound = 256

// inputQueueHardCap is the absolute per-session depth limit. Reaching it
// requires thousands of non-coalescable events against a dispatcher that
// never drains — a hostile or broken client — so further events are
// dropped (and counted in input_dropped_total) rather than letting one
// session grow memory without bound.
const inputQueueHardCap = 4096

// inputEvent is one universal input event parked between the protocol
// read loop and the dispatch goroutine.
type inputEvent struct {
	enq     int64  // time.Now().UnixNano() at enqueue
	trace   uint64 // sampled interaction id (0: untraced)
	key     rfb.KeyEvent
	ptr     rfb.PointerEvent
	pointer bool
	move    bool // pointer event that changes no buttons (coalescable)
}

// inputQueue is the bounded per-session input queue decoupling event
// dispatch from the protocol read loop. Enqueue never blocks: under
// backpressure (a slow home app or HAVi round-trip holding the display
// lock) pointer moves coalesce latest-wins, so the read loop keeps
// draining framebuffer requests no matter how stalled dispatch is.
type inputQueue struct {
	mu    sync.Mutex
	buf   []inputEvent
	spare []inputEvent // recycled dispatch storage (ping-pong)
}

// put enqueues one event. A pure pointer move lands in one of three ways:
// replacing a pure-move tail with the same mask (the common backpressure
// coalesce), appending, or — at the bound — evicting the oldest pure move
// in the queue (dropping an intermediate position is semantically the
// same collapse tail coalescing performs). Key events and button
// transitions are appended past the bound if they must (counted as
// overflow) until the hard cap, where the event is dropped and counted.
func (q *inputQueue) put(ev inputEvent) {
	mInputQueued.Inc()
	q.mu.Lock()
	if q.buf == nil {
		// Reclaim recycled storage left by a previous take/recycle pair so
		// the steady-state enqueue path stops allocating.
		q.buf = q.spare[:0]
		q.spare = nil
	}
	if ev.move && len(q.buf) > 0 {
		if t := &q.buf[len(q.buf)-1]; t.pointer && t.move && t.ptr.Buttons == ev.ptr.Buttons {
			// Keep the tail's enqueue time: the coalesced entry stands in
			// for the whole run, and latency is measured from its start.
			// A traced position folding into an untraced tail hands its
			// id over, so the surviving entry carries the trace.
			t.ptr = ev.ptr
			if t.trace == 0 {
				t.trace = ev.trace
			}
			q.mu.Unlock()
			mInputCoalesced.Inc()
			return
		}
	}
	evicted := false
	if len(q.buf) >= inputQueueBound {
		// Reclaim space by shedding the oldest *historical* position run —
		// never a transition, a key, or the pointer's latest position.
		evicted = q.evictMoveLocked()
		if !evicted {
			if len(q.buf) >= inputQueueHardCap {
				// All-semantic queue at the absolute limit: shed the
				// event rather than grow without bound. The old
				// synchronous path would have stalled the read loop here;
				// a counted drop keeps the session (and its framebuffer
				// requests) alive instead.
				q.mu.Unlock()
				mInputDropped.Inc()
				return
			}
			mInputOverflow.Inc()
		}
	}
	q.buf = append(q.buf, ev)
	q.mu.Unlock()
	if evicted {
		mInputCoalesced.Inc()
	} else {
		mInputQueueDepth.Inc()
	}
}

// evictMoveLocked removes the oldest pure-move entry, sparing the most
// recent one: the pointer's latest known position always survives even
// under bound pressure — only historical hover/drag runs (positions the
// stream has already moved past) are shed. Reports whether an entry was
// evicted. q.mu must be held.
func (q *inputQueue) evictMoveLocked() bool {
	oldest, newest := -1, -1
	for i := range q.buf {
		if q.buf[i].pointer && q.buf[i].move {
			if oldest < 0 {
				oldest = i
			}
			newest = i
		}
	}
	if oldest < 0 || oldest == newest {
		return false
	}
	copy(q.buf[oldest:], q.buf[oldest+1:])
	q.buf = q.buf[:len(q.buf)-1]
	return true
}

// preload seeds the queue with events carried through a park window.
// They were already counted into input_queued_total when they first
// entered a queue, so only the depth gauge moves; they settle into
// dispatched (on resume) or abandoned (at expiry) like any queued event.
func (q *inputQueue) preload(events []inputEvent) {
	if len(events) == 0 {
		return
	}
	q.mu.Lock()
	if len(q.buf) == 0 {
		q.buf = events
	} else {
		q.buf = append(events, q.buf...)
	}
	q.mu.Unlock()
	mInputQueueDepth.Add(int64(len(events)))
}

// take drains the queue into recycled storage. Hand the batch back with
// recycle once dispatched so the steady-state path stops allocating.
func (q *inputQueue) take() []inputEvent {
	q.mu.Lock()
	out := q.buf
	if q.spare != nil {
		q.buf = q.spare[:0]
		q.spare = nil
	} else {
		q.buf = nil
	}
	q.mu.Unlock()
	if len(out) > 0 {
		mInputQueueDepth.Add(int64(-len(out)))
	}
	return out
}

// recycle returns dispatch storage for the next take.
func (q *inputQueue) recycle(batch []inputEvent) {
	q.mu.Lock()
	if q.spare == nil {
		q.spare = batch[:0]
	}
	q.mu.Unlock()
}

// depth returns the number of queued events (tests and drain checks).
func (q *inputQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// dispatchTurn is the dispatch task's turn: it owns input injection for
// one session, draining the queue into the window system so a stalled
// widget callback can never block the protocol read loop (the input-side
// sibling of writerTurn). One turn dispatches one drained batch; events
// enqueued mid-turn kick the task again and dispatch on the next turn.
func (c *session) dispatchTurn() {
	// Events still queued when the session dies are drained by HandleConn
	// after the task is stopped (Serve has returned by then, so no put
	// races the final drain): they carry into the detach lot for replay
	// on resume, or count as abandoned when parking is off.
	batch := c.inq.take()
	if len(batch) == 0 {
		return
	}
	// Stamp the oldest outstanding input so the writer can close the
	// input→damage→update latency loop when the resulting
	// FramebufferUpdate ships.
	c.inputMark.CompareAndSwap(0, batch[0].enq)
	for i := range batch {
		ev := &batch[i]
		t0 := int64(0)
		if ev.trace != 0 {
			t0 = time.Now().UnixNano()
			// The queue span: read-loop enqueue to dispatcher pickup.
			// For an event replayed across a park window it straddles
			// the detach (the park span explains it).
			trace.Record(ev.trace, trace.StageQueue, ev.enq, t0)
		}
		if ev.pointer {
			c.srv.display.InjectPointerTraced(int(ev.ptr.X), int(ev.ptr.Y), ev.ptr.Buttons, ev.trace)
		} else {
			c.srv.display.InjectKeyTraced(ev.key.Down, toolkit.Key(ev.key.Key), ev.trace)
		}
		mInputDispatched.Inc()
		now := time.Now().UnixNano()
		if ev.trace != 0 {
			trace.Record(ev.trace, trace.StageDispatch, t0, now)
			mInputDispatchSec.ObserveExemplar(float64(now-ev.enq)/1e9, ev.trace)
		} else {
			mInputDispatchSec.Observe(float64(now-ev.enq) / 1e9)
		}
	}
	c.inq.recycle(batch)
}
