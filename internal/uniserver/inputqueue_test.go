package uniserver

import (
	"sync"
	"testing"

	"uniint/internal/gfx"
	"uniint/internal/metrics"
	"uniint/internal/rfb"
	"uniint/internal/toolkit"
)

func mv(x, y int, buttons uint8) inputEvent {
	return inputEvent{pointer: true, move: true,
		ptr: rfb.PointerEvent{Buttons: buttons, X: uint16(x), Y: uint16(y)}}
}

func trans(x, y int, buttons uint8) inputEvent {
	return inputEvent{pointer: true,
		ptr: rfb.PointerEvent{Buttons: buttons, X: uint16(x), Y: uint16(y)}}
}

func key(k uint32, down bool) inputEvent {
	return inputEvent{key: rfb.KeyEvent{Down: down, Key: k}}
}

// TestInputQueueCoalescesMoves pins the queue semantics: runs of pure
// moves collapse latest-wins, while transitions and keys are kept in
// order with their own payloads.
func TestInputQueueCoalescesMoves(t *testing.T) {
	var q inputQueue
	q.put(mv(1, 1, 0))
	q.put(mv(2, 2, 0)) // coalesces into previous
	q.put(mv(3, 3, 0)) // coalesces again
	q.put(trans(4, 4, 1))
	q.put(mv(5, 5, 1)) // drag move: new run (tail is a transition)
	q.put(mv(6, 6, 1)) // coalesces
	q.put(key('k', true))
	q.put(mv(7, 7, 1)) // run broken by the key: kept
	q.put(trans(7, 7, 0))

	batch := q.take()
	want := []inputEvent{
		mv(3, 3, 0), trans(4, 4, 1), mv(6, 6, 1), key('k', true), mv(7, 7, 1), trans(7, 7, 0),
	}
	if len(batch) != len(want) {
		t.Fatalf("batch = %d events, want %d: %+v", len(batch), len(want), batch)
	}
	for i := range want {
		got := batch[i]
		got.enq = 0
		if got != want[i] {
			t.Errorf("event %d: want %+v got %+v", i, want[i], got)
		}
	}
}

// TestInputQueueBoundEvictsMovesNotSemantics: at the bound, the queue
// reclaims space by dropping the oldest *historical* pure move
// (semantically a coalesce); key events, button transitions and the
// pointer's latest position are never evicted — semantic overflow is
// kept past the bound and counted instead.
func TestInputQueueBoundEvictsMovesNotSemantics(t *testing.T) {
	overflow0 := metrics.Default().Counter("input_queue_overflow_total").Value()
	var q inputQueue
	// Two position runs separated by a key, then semantic traffic up to
	// the bound. Alternate key codes so nothing coalesces.
	q.put(mv(9, 9, 0)) // historical run
	q.put(key(1, true))
	q.put(mv(8, 8, 0)) // the pointer's latest position
	for i := 3; i < inputQueueBound; i++ {
		q.put(key(uint32(i), true))
	}
	if got := q.depth(); got != inputQueueBound {
		t.Fatalf("depth = %d, want %d", got, inputQueueBound)
	}
	// The next key evicts the historical move instead of dropping
	// anything semantic — depth stays at the bound.
	q.put(key('z', true))
	if got := q.depth(); got != inputQueueBound {
		t.Fatalf("depth after evicting put = %d, want %d", got, inputQueueBound)
	}
	// With only the latest position left, semantic puts must spare it:
	// the queue grows past the bound and counts overflow instead.
	q.put(key('y', true))
	if got := q.depth(); got != inputQueueBound+1 {
		t.Fatalf("depth after overflow put = %d, want %d", got, inputQueueBound+1)
	}
	if d := metrics.Default().Counter("input_queue_overflow_total").Value() - overflow0; d != 1 {
		t.Errorf("overflow delta = %d, want 1", d)
	}
	batch := q.take()
	var moves []inputEvent
	for _, ev := range batch {
		if ev.pointer {
			moves = append(moves, ev)
		}
	}
	if len(moves) != 1 || moves[0].ptr.X != 8 {
		t.Errorf("surviving moves = %+v, want only the latest position (8,8)", moves)
	}
	if batch[len(batch)-1].key.Key != 'y' {
		t.Errorf("last event = %+v, want key 'y'", batch[len(batch)-1])
	}
}

// TestInputQueueHardCapShedsCounted: a semantic flood against a dead
// dispatcher is bounded — at the hard cap further events are shed and
// counted, so one hostile session cannot grow memory without bound.
func TestInputQueueHardCapShedsCounted(t *testing.T) {
	dropped0 := metrics.Default().Counter("input_dropped_total").Value()
	var q inputQueue
	for i := 0; i < inputQueueHardCap+500; i++ {
		q.put(key(uint32(i), true))
	}
	if got := q.depth(); got != inputQueueHardCap {
		t.Errorf("depth = %d, want hard cap %d", got, inputQueueHardCap)
	}
	if d := metrics.Default().Counter("input_dropped_total").Value() - dropped0; d != 500 {
		t.Errorf("dropped delta = %d, want 500", d)
	}
}

// TestTeardownZeroesQueueDepth: a session dying with events still queued
// must not leave a permanent residue in the input_queue_depth gauge; with
// parking disabled the leftovers are counted as abandoned (with parking
// on they carry into the detach lot instead — lot_test.go).
func TestTeardownZeroesQueueDepth(t *testing.T) {
	display, srv, client, _ := wire(t, WithParkTTL(0))
	block := make(chan struct{})
	unblock := sync.OnceFunc(func() { close(block) })
	defer unblock()
	entered := make(chan struct{}, 1)
	btn := toolkit.NewButton("stall", func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-block
	})
	root := toolkit.NewPanel(toolkit.VBox{Gap: 2, Padding: 2})
	root.Add(btn)
	display.SetRoot(root)
	display.Render()

	snap := func(name string) int64 { return metrics.Default().Counter(name).Value() }
	depth := metrics.Default().Gauge("input_queue_depth")
	depth0 := depth.Value()
	queued0 := snap("input_queued_total")
	dispatched0 := snap("input_dispatched_total")
	coalesced0 := snap("input_coalesced_total")
	dropped0 := snap("input_dropped_total")
	abandoned0 := snap("input_abandoned_total")

	// Stall the dispatcher inside the click, then pile up key events the
	// session will never dispatch.
	b := btn.Bounds()
	client.SendPointer(rfb.PointerEvent{Buttons: 1, X: uint16(b.X + 2), Y: uint16(b.Y + 2)})
	client.SendPointer(rfb.PointerEvent{Buttons: 0, X: uint16(b.X + 2), Y: uint16(b.Y + 2)})
	<-entered
	for i := 0; i < 50; i++ {
		if err := client.SendKey(rfb.KeyEvent{Down: i%2 == 0, Key: uint32('a' + i%20)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "events queued", func() bool { return depth.Value() > depth0 })

	// Tear the connection down with the queue still loaded, then let the
	// stalled callback return: the dispatcher sees quit, the session
	// retires (it stays in the session set until its goroutines unwind),
	// whatever the dispatcher did not reach is abandoned, and the depth
	// gauge returns to baseline.
	client.Close()
	unblock()
	waitFor(t, "session gone", func() bool { return srv.Sessions() == 0 })
	waitFor(t, "depth gauge restored", func() bool { return depth.Value() == depth0 })
	// The accounting identity at depth == 0: every queued event ended in
	// exactly one bucket — dispatched before quit won the race, or
	// abandoned at retirement. Nothing is silently lost either way.
	queued := snap("input_queued_total") - queued0
	settled := (snap("input_dispatched_total") - dispatched0) +
		(snap("input_coalesced_total") - coalesced0) +
		(snap("input_dropped_total") - dropped0) +
		(snap("input_abandoned_total") - abandoned0)
	if queued == 0 || queued != settled {
		t.Errorf("accounting identity broken: queued %d, settled %d", queued, settled)
	}
}

// TestInputQueueSteadyStateAllocFree pins the alloc-free drain contract:
// once warmed, enqueue/take/recycle cycles allocate nothing.
func TestInputQueueSteadyStateAllocFree(t *testing.T) {
	var q inputQueue
	cycle := func() {
		q.put(trans(1, 1, 1))
		for i := 0; i < 30; i++ {
			q.put(mv(i, i, 1))
		}
		q.put(trans(2, 2, 0))
		q.put(key('k', true))
		q.recycle(q.take())
	}
	cycle() // warm the ping-pong storage
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Errorf("allocs per enqueue/dispatch cycle = %v, want 0", allocs)
	}
}

// TestStalledDispatchDoesNotBlockReadLoop is the input-side sibling of
// the toolkit's encode-doesn't-block-input test: with the dispatcher
// stalled inside a widget callback (a slow home app holding the display
// lock mid HAVi round-trip), the protocol read loop must keep draining
// pointer floods, key events and framebuffer requests, coalescing moves
// under the backpressure.
func TestStalledDispatchDoesNotBlockReadLoop(t *testing.T) {
	display, _, client, _ := wire(t)
	block := make(chan struct{})
	var mu sync.Mutex
	clicks := 0
	btn := toolkit.NewButton("slow appliance", func() {
		mu.Lock()
		clicks++
		mu.Unlock()
		<-block // the appliance stalls with the display lock held
	})
	root := toolkit.NewPanel(toolkit.VBox{Gap: 2, Padding: 2})
	root.Add(btn)
	display.SetRoot(root)
	display.Render()

	snap := func(name string) int64 { return metrics.Default().Counter(name).Value() }
	ptr0 := snap("server_pointer_events_total")
	key0 := snap("server_key_events_total")
	coal0 := snap("input_coalesced_total")
	disp0 := snap("input_dispatched_total")

	b := btn.Bounds()
	x, y := uint16(b.X+2), uint16(b.Y+2)
	// Click: the release dispatch enters the callback and stalls.
	if err := client.SendPointer(rfb.PointerEvent{Buttons: 1, X: x, Y: y}); err != nil {
		t.Fatal(err)
	}
	if err := client.SendPointer(rfb.PointerEvent{Buttons: 0, X: x, Y: y}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "callback entered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return clicks == 1
	})

	// Flood the stalled session. Every event must be read and queued
	// while dispatch is frozen.
	const moves = 200
	for i := 0; i < moves; i++ {
		if err := client.SendPointer(rfb.PointerEvent{Buttons: 0, X: uint16(i), Y: y}); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.SendKey(rfb.KeyEvent{Down: true, Key: rfb.KeyTab}); err != nil {
		t.Fatal(err)
	}
	// Framebuffer requests are read and parked without blocking either.
	for i := 0; i < 4; i++ {
		if err := client.RequestUpdate(true, gfx.R(0, 0, 160, 120)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "read loop drains flood while dispatch stalled", func() bool {
		return snap("server_pointer_events_total")-ptr0 >= moves+2 &&
			snap("server_key_events_total")-key0 >= 1
	})
	// Backpressure coalesced the move flood down to O(1) pending entries.
	if got := snap("input_coalesced_total") - coal0; got < moves-10 {
		t.Errorf("coalesced = %d, want ≈%d (flood must collapse)", got, moves-1)
	}

	close(block)           // appliance recovers; the queue drains in order
	const sent = moves + 3 // press, release, flood, Tab
	waitFor(t, "queue drained", func() bool {
		drained := snap("input_dispatched_total") - disp0 + snap("input_coalesced_total") - coal0
		return drained >= sent
	})
	mu.Lock()
	if clicks != 1 {
		t.Errorf("clicks = %d after recovery", clicks)
	}
	mu.Unlock()
}

// TestInputToUpdateLatencyObserved pins the end-to-end histogram: an
// input-driven repaint must record a sample in input_to_update_seconds.
func TestInputToUpdateLatencyObserved(t *testing.T) {
	display, _, client, rec := wire(t)
	btn := toolkit.NewButton("go", nil)
	root := toolkit.NewPanel(toolkit.VBox{Gap: 2, Padding: 2})
	root.Add(btn)
	display.SetRoot(root)
	display.Render()

	hist := metrics.Default().Histogram("input_to_update_seconds", metrics.LatencyBuckets())
	count0 := hist.Count()

	client.RequestUpdate(false, gfx.R(0, 0, 160, 120))
	waitFor(t, "initial update", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 1
	})
	client.RequestUpdate(true, gfx.R(0, 0, 160, 120))
	b := btn.Bounds()
	client.SendPointer(rfb.PointerEvent{Buttons: 1, X: uint16(b.X + 2), Y: uint16(b.Y + 2)})
	waitFor(t, "input-driven update", func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return rec.updates >= 2
	})
	waitFor(t, "latency sample", func() bool { return hist.Count() > count0 })
}

// TestDispatchRunsOffReadLoop sanity-checks ordering across the queue: a
// mixed burst written in one WriteEvents batch lands on the widget tree
// in wire order.
func TestDispatchRunsOffReadLoop(t *testing.T) {
	display, _, client, _ := wire(t)
	var mu sync.Mutex
	var order []string
	mk := func(name string) *toolkit.Button {
		return toolkit.NewButton(name, func() { mu.Lock(); order = append(order, name); mu.Unlock() })
	}
	first, second := mk("first"), mk("second")
	root := toolkit.NewPanel(toolkit.VBox{Gap: 2, Padding: 2})
	root.Add(first, second)
	display.SetRoot(root)
	display.Render()

	click := func(b gfx.Rect) []rfb.InputEvent {
		x, y := uint16(b.X+2), uint16(b.Y+2)
		return []rfb.InputEvent{
			{IsPointer: true, Pointer: rfb.PointerEvent{Buttons: 1, X: x, Y: y}},
			{IsPointer: true, Pointer: rfb.PointerEvent{Buttons: 0, X: x, Y: y}},
		}
	}
	burst := append(click(first.Bounds()), click(second.Bounds())...)
	if err := client.WriteEvents(burst); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both clicks dispatched", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 2
	})
	mu.Lock()
	defer mu.Unlock()
	if order[0] != "first" || order[1] != "second" {
		t.Errorf("dispatch order = %v", order)
	}
}
