package uniserver

import (
	"errors"
	"fmt"
	"time"

	"uniint/internal/gfx"
	"uniint/internal/metrics"
	"uniint/internal/rfb"
)

// Session migration is the lot's federation surface: a parked session is
// already a small self-contained object (compressed shadow + resume token
// + queued input + parked request), so moving a home between hub nodes is
// export here, a byte blob on the wire, import there. The exported entry
// leaves this lot permanently — it is counted migrated-out, the target
// counts it migrated-in, and the pair keeps the process-wide lot
// accounting invariant (lot.go) balanced.
var (
	mSessMigratedOut = metrics.Default().Counter("session_migrated_out_total")
	mSessMigratedIn  = metrics.Default().Counter("session_migrated_in_total")
	// fed_resync_bytes_total sums the first update shipped to each client
	// that resumed a MIGRATED session — the wire cost of catching a
	// shipped session up, which stays incremental (far below a full
	// repaint) when migration preserved the shadow correctly.
	mFedResyncBytes = metrics.Default().Counter("fed_resync_bytes_total")
)

// ParkedTokens lists the resume tokens currently waiting in the detach
// lot (order unspecified). The federation layer enumerates a home's
// parked sessions with it before migrating them.
func (s *Server) ParkedTokens() []string {
	s.lotMu.Lock()
	defer s.lotMu.Unlock()
	out := make([]string, 0, len(s.lot))
	for tok := range s.lot {
		out = append(out, tok)
	}
	return out
}

// ExportParked removes the parked session for token from the lot and
// returns it as a portable migration record, or (nil, false) when the
// token is unknown, mid-resume (claimed), or expired. The entry is gone
// from this lot on success — the caller owns its fate; a record that is
// never imported anywhere abandons the session exactly like an expiry
// would have.
func (s *Server) ExportParked(token string) (*rfb.MigrationRecord, bool) {
	now := time.Now()
	s.lotMu.Lock()
	ps := s.lot[token]
	if ps == nil || ps.claimed {
		s.lotMu.Unlock()
		return nil, false
	}
	if now.After(ps.deadline) {
		delete(s.lot, token)
		mSessParkedNow.Dec()
		lotBytesAdd(ps, -1)
		s.lotMu.Unlock()
		s.expire(ps, now)
		return nil, false
	}
	// Claim-style extraction: mark the entry so no resume handshake or
	// janitor touches it, then wait out a compression turn mid-read on
	// the shadow (same protocol as claimParked).
	ps.claimed = true
	packing := ps.compressing
	s.lotMu.Unlock()
	if packing != nil {
		<-packing
	}
	s.lotMu.Lock()
	if s.lot[token] != ps {
		// Drained underneath the claim (server shutdown): the lot already
		// settled the entry.
		s.lotMu.Unlock()
		return nil, false
	}
	delete(s.lot, token)
	mSessParkedNow.Dec()
	lotBytesAdd(ps, -1)
	s.lotMu.Unlock()

	// The record ships the shadow in its cold form; a freshly parked
	// entry whose compression turn has not landed yet packs here.
	shadow := ps.packed
	if shadow == nil && ps.ws != nil {
		if p, err := ps.ws.Pack(); err == nil {
			shadow = p
		}
	}
	rec := &rfb.MigrationRecord{
		Token: ps.token,
		W:     ps.w, H: ps.h,
		Shadow:       shadow,
		Dirty:        ps.dirty.TakeInto(nil),
		Pending:      ps.pending,
		HasPending:   ps.hasPending,
		LastPtrMask:  ps.lastPtrMask,
		RemainingTTL: ps.deadline.Sub(now),
		DetachedFor:  now.Sub(ps.parkedAt),
	}
	if shadow != nil {
		rec.PF, rec.PFSet = shadow.PixelFormat()
	}
	for _, ev := range ps.events {
		// Enqueue timestamps and trace ids are node-local; the target
		// restamps on import.
		rec.Events = append(rec.Events, rfb.MigEvent{
			Pointer: ev.pointer, Move: ev.move, Key: ev.key, Ptr: ev.ptr,
		})
	}
	mSessMigratedOut.Inc()
	return rec, true
}

// ImportParked installs a migration record into this server's detach
// lot, making the shipped session resumable here. The entry keeps the
// remaining TTL it left the source with (migration never extends a
// session's life) and its shadow stays cold until a resume thaws it.
func (s *Server) ImportParked(rec *rfb.MigrationRecord) error {
	if rec == nil || rec.Token == "" {
		return errors.New("uniserver: import: empty migration record")
	}
	if s.parkTTL <= 0 {
		return errors.New("uniserver: import: parking disabled on this server")
	}
	now := time.Now()
	ttl := rec.RemainingTTL
	if ttl < time.Millisecond {
		// Expired (or nearly) in transit: install anyway with an immediate
		// deadline so the janitor settles it through the normal expiry
		// accounting rather than the record silently vanishing.
		ttl = time.Millisecond
	}
	ps := &parkedSession{
		token: rec.Token,
		w:     rec.W, h: rec.H,
		dirty:       gfx.NewDamage(gfx.R(0, 0, rec.W, rec.H), 16),
		pending:     rec.Pending,
		hasPending:  rec.HasPending,
		lastPtrMask: rec.LastPtrMask,
		packed:      rec.Shadow,
		migrated:    true,
		parkedAt:    now.Add(-rec.DetachedFor),
		deadline:    now.Add(ttl),
	}
	for _, r := range rec.Dirty {
		ps.dirty.Add(r)
	}
	enq := now.UnixNano()
	for _, ev := range rec.Events {
		ps.events = append(ps.events, inputEvent{
			enq: enq, key: ev.Key, ptr: ev.Ptr, pointer: ev.Pointer, move: ev.Move,
		})
	}

	// Same critical-section shape as retire: pumpMu orders the insert
	// against drainLot, and the lot insert handles capacity by expiring
	// the oldest unclaimed resident.
	s.pumpMu.Lock()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		s.pumpMu.Unlock()
		return errors.New("uniserver: import: server closed")
	}
	s.lotMu.Lock()
	if s.lot == nil {
		s.lot = make(map[string]*parkedSession)
	}
	var oldest *parkedSession
	if len(s.lot) >= s.parkCap {
		for _, e := range s.lot {
			if !e.claimed && (oldest == nil || e.parkedAt.Before(oldest.parkedAt)) {
				oldest = e
			}
		}
		if oldest != nil {
			delete(s.lot, oldest.token)
			mSessParkedNow.Dec()
			lotBytesAdd(oldest, -1)
		}
	}
	s.lot[ps.token] = ps
	lotBytesAdd(ps, +1)
	s.scheduleSweepLocked(ps.deadline)
	s.lotMu.Unlock()
	s.pumpMu.Unlock()

	if oldest != nil {
		s.expire(oldest, now)
	}
	mSessMigratedIn.Inc()
	mSessParkedNow.Inc()
	return nil
}

// DetachSessions force-disconnects every live session — each parks
// itself in the lot under its resume token, exactly as if its link had
// dropped — and waits up to timeout for the server to quiesce. It is the
// federation drain hook: after it returns nil, every session this home
// holds is a parked (exportable) entry.
func (s *Server) DetachSessions(timeout time.Duration) error {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.conn.Close()
	}
	deadline := time.Now().Add(timeout)
	for s.Sessions() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("uniserver: detach timeout with %d sessions live", s.Sessions())
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// ParkPolicy returns the effective detach-lot policy: the park TTL
// (0: parking disabled) and the lot capacity.
func (s *Server) ParkPolicy() (ttl time.Duration, capacity int) {
	return s.parkTTL, s.parkCap
}
