// Package uniserver implements the UniInt server of the paper: the server
// half of the thin-client system, run where the home appliance application
// executes. It exports a toolkit display session over the universal
// interaction protocol — shipping framebuffer rectangles to the UniInt
// proxy on demand and injecting the proxy's universal keyboard/mouse
// events into the window system.
//
// Matching the paper's claim that "we need not modify existing servers of
// thin-client systems", the server contains no knowledge of interaction
// devices: all device heterogeneity is handled by the proxy.
package uniserver

import (
	"errors"
	"net"
	"sync"
	"time"

	"uniint/internal/gfx"
	"uniint/internal/metrics"
	"uniint/internal/rfb"
	"uniint/internal/toolkit"
)

// Process-wide instruments, resolved once so the hot paths touch only
// atomics. Under the multi-home hub these aggregate across every home's
// server in the process.
var (
	mSessions      = metrics.Default().Gauge("server_sessions")
	mKeyEvents     = metrics.Default().Counter("server_key_events_total")
	mPointerEvents = metrics.Default().Counter("server_pointer_events_total")
	mUpdatesSent   = metrics.Default().Counter("server_updates_sent_total")
	mUpdateBytes   = metrics.Default().Counter("server_update_bytes_total")
	mUpdateDrops   = metrics.Default().Counter("server_update_drops_total")
	mEncodeSeconds = metrics.Default().Histogram("server_encode_seconds", metrics.LatencyBuckets())
)

// Server exports one display session to any number of proxy connections.
type Server struct {
	display *toolkit.Display
	name    string

	mu       sync.Mutex
	sessions map[*session]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// New creates a server for the given display. name is announced to
// clients during the handshake.
func New(display *toolkit.Display, name string) *Server {
	s := &Server{
		display:  display,
		name:     name,
		sessions: make(map[*session]struct{}),
	}
	display.OnDamage(s.pump)
	return s
}

// Display returns the served display.
func (s *Server) Display() *toolkit.Display { return s.display }

// HandleConn performs the protocol handshake on conn and serves it until
// the peer disconnects. It blocks; callers typically run it on its own
// goroutine (Serve does).
func (s *Server) HandleConn(conn net.Conn) error {
	w, h := s.display.Size()
	rc, err := rfb.NewServerConn(conn, w, h, s.name)
	if err != nil {
		return err
	}
	sess := &session{
		srv:        s,
		conn:       rc,
		dirty:      gfx.NewDamage(gfx.R(0, 0, w, h), 16),
		bounds:     gfx.R(0, 0, w, h),
		out:        make(chan *rfb.PreparedUpdate, 8),
		quit:       make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		rc.Close()
		return errors.New("uniserver: server closed")
	}
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	mSessions.Inc()

	go sess.writeLoop()
	err = rc.Serve(sess)

	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	mSessions.Dec()
	rc.Close()
	close(sess.quit)
	<-sess.writerDone
	return err
}

// Serve accepts proxy connections from ln until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.HandleConn(conn)
		}()
	}
}

// Close disconnects every session and waits for handlers started by Serve.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.conn.Close()
	}
	s.wg.Wait()
}

// Sessions returns the number of connected proxies.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// pump runs after the display accumulated new damage: render once, then
// offer the fresh rectangles to every session.
func (s *Server) pump() {
	rects := s.display.Render()
	if len(rects) == 0 {
		return
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.addDirty(rects)
	}
}

// session is one proxy connection: per-client dirty tracking plus the
// demand-driven update state machine of the protocol.
//
// Updates are transmitted by a dedicated writer goroutine. This keeps the
// read loop (and the GUI goroutines firing damage hooks) from ever
// blocking on a slow transport — without it, a synchronous in-process
// pipe can form a cycle: the read loop blocks writing an update, the peer
// blocks writing a request, and neither side drains the other.
type session struct {
	srv    *Server
	conn   *rfb.ServerConn
	bounds gfx.Rect

	out        chan *rfb.PreparedUpdate
	quit       chan struct{}
	writerDone chan struct{}

	mu      sync.Mutex
	dirty   *gfx.Damage
	pending *rfb.UpdateRequest // outstanding incremental request
}

// writeLoop owns all update transmission for the session.
func (c *session) writeLoop() {
	defer close(c.writerDone)
	for {
		select {
		case prep := <-c.out:
			if err := c.conn.SendPrepared(prep); err != nil {
				// Transport failure: the read loop will observe it and
				// tear the session down; keep draining so enqueuers
				// never block on a dead session.
				mUpdateDrops.Inc()
				continue
			}
			mUpdatesSent.Inc()
			mUpdateBytes.Add(int64(prep.Size()))
		case <-c.quit:
			return
		}
	}
}

var _ rfb.ServerHandler = (*session)(nil)

// KeyEvent implements rfb.ServerHandler: universal input → window system.
func (c *session) KeyEvent(ev rfb.KeyEvent) {
	mKeyEvents.Inc()
	c.srv.display.InjectKey(ev.Down, toolkit.Key(ev.Key))
}

// PointerEvent implements rfb.ServerHandler.
func (c *session) PointerEvent(ev rfb.PointerEvent) {
	mPointerEvents.Inc()
	c.srv.display.InjectPointer(int(ev.X), int(ev.Y), ev.Buttons)
}

// CutText implements rfb.ServerHandler (ignored; appliances do not paste).
func (c *session) CutText(string) {}

// UpdateRequest implements rfb.ServerHandler. Non-incremental requests are
// answered immediately with the full region; incremental requests are
// answered when damage exists, otherwise parked until damage arrives.
func (c *session) UpdateRequest(req rfb.UpdateRequest) {
	// Ensure pending damage from before this connection is rendered.
	c.srv.pump()
	if !req.Incremental {
		c.mu.Lock()
		c.dirty.Take() // full resend supersedes pending damage
		c.pending = nil
		c.mu.Unlock()
		region := req.Region.Intersect(c.bounds)
		if region.Empty() {
			// Every non-incremental request gets exactly one reply.
			_ = c.conn.SendEmptyUpdate()
			return
		}
		c.send([]gfx.Rect{region})
		return
	}
	c.mu.Lock()
	if c.dirty.Empty() {
		c.pending = &req
		c.mu.Unlock()
		return
	}
	rects := c.dirty.Take()
	c.mu.Unlock()
	c.send(clipAll(rects, req.Region))
}

// addDirty accumulates fresh damage and satisfies a parked request.
func (c *session) addDirty(rects []gfx.Rect) {
	c.mu.Lock()
	for _, r := range rects {
		c.dirty.Add(r)
	}
	if c.pending == nil || c.dirty.Empty() {
		c.mu.Unlock()
		return
	}
	req := *c.pending
	c.pending = nil
	out := clipAll(c.dirty.Take(), req.Region)
	c.mu.Unlock()
	c.send(out)
}

// send encodes under the display lock and hands the result to the writer
// goroutine.
func (c *session) send(rects []gfx.Rect) {
	urs := make([]rfb.UpdateRect, 0, len(rects))
	enc := c.conn.PreferredEncoding()
	for _, r := range rects {
		if !r.Empty() {
			urs = append(urs, rfb.UpdateRect{Rect: r, Encoding: enc})
		}
	}
	if len(urs) == 0 {
		return
	}
	var (
		prep *rfb.PreparedUpdate
		err  error
	)
	start := time.Now()
	c.srv.display.WithFramebuffer(func(fb *gfx.Framebuffer) {
		prep, err = c.conn.PrepareUpdate(fb, urs)
	})
	mEncodeSeconds.ObserveDuration(time.Since(start))
	if err != nil {
		return // encoding failure: drop the update, connection stays up
	}
	select {
	case c.out <- prep:
	case <-c.quit: // session torn down: drop
	}
}

func clipAll(rects []gfx.Rect, clip gfx.Rect) []gfx.Rect {
	out := rects[:0]
	for _, r := range rects {
		r = r.Intersect(clip)
		if !r.Empty() {
			out = append(out, r)
		}
	}
	return out
}
