// Package uniserver implements the UniInt server of the paper: the server
// half of the thin-client system, run where the home appliance application
// executes. It exports a toolkit display session over the universal
// interaction protocol — shipping framebuffer rectangles to the UniInt
// proxy on demand and injecting the proxy's universal keyboard/mouse
// events into the window system.
//
// Matching the paper's claim that "we need not modify existing servers of
// thin-client systems", the server contains no knowledge of interaction
// devices: all device heterogeneity is handled by the proxy.
package uniserver

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"uniint/internal/gfx"
	"uniint/internal/metrics"
	"uniint/internal/rfb"
	"uniint/internal/sched"
	"uniint/internal/toolkit"
	"uniint/internal/trace"
)

// Process-wide instruments, resolved once so the hot paths touch only
// atomics. Under the multi-home hub these aggregate across every home's
// server in the process.
var (
	mSessions       = metrics.Default().Gauge("server_sessions")
	mKeyEvents      = metrics.Default().Counter("server_key_events_total")
	mPointerEvents  = metrics.Default().Counter("server_pointer_events_total")
	mUpdatesSent    = metrics.Default().Counter("server_updates_sent_total")
	mUpdateBytes    = metrics.Default().Counter("server_update_bytes_total")
	mUpdateDrops    = metrics.Default().Counter("server_update_drops_total")
	mRectsCoalesced = metrics.Default().Counter("server_rects_coalesced_total")
	mEncodeSeconds  = metrics.Default().Histogram("server_encode_seconds", metrics.LatencyBuckets())
)

// Server exports one display session to any number of proxy connections.
type Server struct {
	display *toolkit.Display
	name    string

	// pool executes all session turns (writer drains, input dispatch,
	// deferred teardown). Owned by the server unless injected with
	// WithPool — the hub injects one pool for every home, which is the
	// point: worker count is a per-process budget, not a per-session cost.
	pool    *sched.Pool
	ownPool bool

	mu       sync.Mutex
	sessions map[*session]struct{}
	closed   bool
	wg       sync.WaitGroup

	// pumpMu serializes render pumps; pumpBuf/pumpSess recycle the rect
	// and session-snapshot storage so the damage→render→distribute path
	// allocates nothing in steady state.
	pumpMu   sync.Mutex
	pumpBuf  []gfx.Rect
	pumpSess []*session

	// tiles is the shared content-addressed tile store the wire tier
	// publishes encoded tile bodies to (nil: no cross-session sharing;
	// each session still runs its own tile window).
	tiles *rfb.TileCache

	// The detach lot (lot.go): disconnected sessions parked under their
	// resume token, waiting out parkTTL for the owner to return.
	parkTTL    time.Duration
	parkCap    int
	lotMu      sync.Mutex
	lot        map[string]*parkedSession
	lotTimer   *sched.Timer // janitor on the shared wheel, armed on demand
	lotSweepAt time.Time
}

// HandshakeTimeout bounds the protocol handshake, so a stalled peer can
// neither park a handler goroutine forever nor pin a claimed detach-lot
// entry past reclaim.
const HandshakeTimeout = 10 * time.Second

// Option configures a Server.
type Option func(*Server)

// WithParkTTL sets how long a disconnected session stays reclaimable in
// the detach lot (default DefaultParkTTL; <= 0 disables parking and every
// disconnect tears the session down, the pre-resilience behaviour).
func WithParkTTL(d time.Duration) Option {
	return func(s *Server) { s.parkTTL = d }
}

// WithParkCapacity bounds the detach lot (default DefaultParkCapacity;
// at capacity the oldest parked session is expired to make room).
func WithParkCapacity(n int) Option {
	return func(s *Server) { s.parkCap = n }
}

// WithTileCache installs a shared content-addressed tile store: sessions
// publish freshly encoded tile bodies to it and reuse bodies other
// sessions already paid to encode. Passing the SAME cache to many servers
// (the hub does, one per home) extends the sharing across homes — the
// tentpole of the wire-efficiency tier, since a hub's homes render nearly
// identical control panels. Nil (the default) disables sharing; tile
// references within a session still work.
func WithTileCache(tc *rfb.TileCache) Option {
	return func(s *Server) { s.tiles = tc }
}

// WithPool runs the server's session turns on a shared worker pool instead
// of a private one. The caller keeps ownership: Server.Close will not close
// an injected pool. The hub passes one pool to every home it hosts, making
// the worker count a process-wide budget.
func WithPool(p *sched.Pool) Option {
	return func(s *Server) { s.pool = p }
}

// New creates a server for the given display. name is announced to
// clients during the handshake.
func New(display *toolkit.Display, name string, opts ...Option) *Server {
	s := &Server{
		display:  display,
		name:     name,
		sessions: make(map[*session]struct{}),
		parkTTL:  DefaultParkTTL,
		parkCap:  DefaultParkCapacity,
	}
	for _, o := range opts {
		o(s)
	}
	if s.parkCap < 1 {
		s.parkTTL = 0
	}
	if s.pool == nil {
		s.pool = sched.NewPool(0)
		s.ownPool = true
	}
	display.OnDamage(s.pump)
	return s
}

// Pool returns the worker pool executing this server's session turns.
func (s *Server) Pool() *sched.Pool { return s.pool }

// Display returns the served display.
func (s *Server) Display() *toolkit.Display { return s.display }

// HandleConn performs the protocol handshake on conn and serves it until
// the peer disconnects. It blocks; callers typically run it on its own
// goroutine (Serve does).
//
// A client presenting a live resume token reclaims its parked session
// during the handshake: the preserved damage, update-request state and
// input queue carry over, so the resync ships only what changed while the
// link was down. On disconnect the session parks in the detach lot
// (unless parking is disabled or the server is closing).
func (s *Server) HandleConn(conn net.Conn) error {
	w, h := s.display.Size()
	// A hub-routed connection carries its routing span (preamble read +
	// home resolution); remember it so every traced interaction arriving
	// on this connection can attach the hub_route stage.
	routeStart, routeEnd, _ := trace.RouteSpan(conn)
	var reclaimed *parkedSession
	ex := func(presented string) (string, bool) {
		if s.parkTTL > 0 && presented != "" {
			if ps := s.claimParked(presented, w, h); ps != nil {
				reclaimed = ps
				return presented, true
			}
			mSessResumeMiss.Inc()
		}
		return newSessionToken(), false
	}
	// The handshake is bounded: a peer that stalls mid-handshake (after
	// presenting a resume token, say) must fail within the deadline so
	// its claim releases and the parked session stays reclaimable —
	// unbounded, a half-open link would hold the claim forever (the lot
	// janitor skips claimed entries). The bound is a wheel timer, not a
	// conn deadline: a process full of mid-handshake peers arms O(1) OS
	// timers, and transports without deadline support work too.
	hsTimer := sched.Shared().AfterFunc(HandshakeTimeout, func() { conn.Close() })
	rc, err := rfb.NewServerConnToken(conn, w, h, s.name, ex)
	hsTimer.Stop()
	if err != nil {
		if reclaimed != nil {
			// Claimed during the handshake, but the handshake failed to
			// complete: the session goes back to waiting in the lot.
			s.releaseClaim(reclaimed)
		}
		return err
	}
	sess := &session{
		srv:        s,
		conn:       rc,
		token:      rc.Token(),
		routeStart: routeStart,
		routeEnd:   routeEnd,
		dirty:      gfx.NewDamage(gfx.R(0, 0, w, h), 16),
		outbox:     gfx.NewDamage(gfx.R(0, 0, w, h), 16),
		bounds:     gfx.R(0, 0, w, h),
		ws:         rfb.NewWireState(s.tiles, w, h),
	}
	// The tasks exist before the session is visible to the pump, so a
	// damage kick arriving mid-register always has a target.
	sess.writeTask = s.pool.NewTask(sess.writerTurn)
	sess.dispatchTask = s.pool.NewTask(sess.dispatchTurn)
	// register atomically swaps a reclaimed lot entry into the live
	// session set (under the pump mutex, so no damage falls between the
	// lot and the session) and adopts its state.
	resumed := reclaimed != nil
	if !s.register(sess, reclaimed) {
		rc.Close()
		return errors.New("uniserver: server closed")
	}
	mSessions.Inc()

	if resumed {
		// Reclaimed state may already have work: a parked request plus
		// detach-window damage ships the resync without waiting for the
		// client's first request, and replayed input events dispatch now.
		sess.satisfyParkedRequest()
		sess.wake()
		sess.wakeDispatch()
	}
	err = rc.Serve(sess)

	mSessions.Dec()
	rc.Close()
	sess.writeTask.Stop()
	sess.dispatchTask.Stop()
	// The session's turns are over: retire it — one atomic step that
	// removes it from the pump set and parks the remaining state for a
	// reconnect (or settles the accounting when parking is off). Damage
	// pumped until that step still lands on the session and carries into
	// the lot with it.
	leftovers := sess.inq.take()
	if !s.retire(sess, leftovers) && len(leftovers) > 0 {
		mInputAbandoned.Add(int64(len(leftovers)))
	}
	return err
}

// Serve accepts proxy connections from ln until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.wg.Add(1)
		// goroutine-ok: Serve is the blocking-transport entry point — one
		// goroutine per accepted conn is its documented cost; goroutine-free
		// sessions use AttachEdge.
		go func() {
			defer s.wg.Done()
			_ = s.HandleConn(conn)
		}()
	}
}

// Close disconnects every session and waits for handlers started by Serve.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.conn.Close()
	}
	s.wg.Wait()
	s.drainLot()
	if s.ownPool {
		s.pool.Close()
	}
}

// Sessions returns the number of connected proxies.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// pump runs after the display accumulated new damage: render once, then
// offer the fresh rectangles to every session. Pumps are serialized so the
// recycled rect buffer is never handed out twice concurrently.
func (s *Server) pump() {
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()
	rects, tid := s.display.RenderTraceInto(s.pumpBuf)
	s.pumpBuf = rects
	if len(rects) == 0 {
		return
	}
	// Snapshot the session set so s.mu is not held across the per-session
	// coalescing work (connection setup/teardown stays unblocked).
	s.mu.Lock()
	sessions := s.pumpSess[:0]
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.addDirty(rects)
		if tid != 0 {
			// This render carries a traced interaction's damage: mark the
			// session so the flush that ships it closes the trace. First
			// trace wins until a flush clears the mark (inputMark pattern).
			sess.traceMark.CompareAndSwap(0, tid)
		}
	}
	s.pumpSess = sessions
	// Parked sessions accumulate the same damage: it is exactly what the
	// incremental resync ships when their owner reconnects.
	s.addParkedDamage(rects)
}

// session is one proxy connection: per-client dirty tracking plus the
// demand-driven update state machine of the protocol.
//
// Updates are transmitted by the session's writer task — turns on the
// server's worker pool, never the read loop. This keeps the read loop
// (and the GUI goroutines firing damage hooks) from ever blocking on a
// slow transport — without it, a synchronous in-process pipe can form a
// cycle: the read loop blocks writing an update, the peer blocks writing
// a request, and neither side drains the other.
//
// The writer drains an outbox damage set rather than a queue of encoded
// updates: while a write is in flight on a slow transport, every newly
// requested rectangle merges into the pending gfx.Damage and the next
// flush ships the coalesced region as ONE FramebufferUpdate. Backpressure
// therefore reduces update count instead of growing a queue, and pixels
// are encoded at most once per flush no matter how many damage events
// landed on them.
type session struct {
	srv    *Server
	conn   *rfb.ServerConn
	token  string // resume token; keys the detach lot on disconnect
	bounds gfx.Rect

	// The session's schedulable work, as run-queue tasks on srv.pool: a
	// kick (wake/wakeDispatch) marks the task runnable, the pool runs the
	// turn, and the task state machine guarantees at-most-once queueing no
	// matter how many kicks land. An idle session holds no goroutine and
	// no timer here — just these two structs.
	writeTask    *sched.Task
	dispatchTask *sched.Task

	// Edge (readiness-driven) sessions only — nil/zero for HandleConn
	// sessions: edge is the non-blocking transport, readTask drains it on
	// readiness kicks, onClose runs once after retirement (the hub's entry
	// unpin), and dead marks a torn-down session so late kicks no-op.
	// dead is read-turn-only state; turn serialization orders its accesses.
	edge     edgeTransport
	readTask *sched.Task
	onClose  func()
	dead     bool

	// Input events are dispatched by a dedicated goroutine draining inq
	// (see inputqueue.go), the input-side twin of the writer: a home app
	// stalling inside a widget callback — a synchronous HAVi round trip —
	// can no longer stop the read loop from draining framebuffer
	// requests. lastPtrMask is read-loop-only state marking pure moves;
	// inputMark carries the oldest undispatched input's enqueue time into
	// the writer for the input→damage→update latency histogram.
	inq         inputQueue
	lastPtrMask uint8
	inputMark   atomic.Int64

	// routeStart/routeEnd hold the hub's routing span for this connection
	// (zero when not hub-routed); traceMark carries the sampled trace id
	// of the render the writer is about to ship (set by the pump, cleared
	// on successful flush — the inputMark pattern for trace ids).
	routeStart, routeEnd int64
	traceMark            atomic.Uint64

	// reqs parks protocol update requests for the writer, which pumps
	// the renderer and runs the request state machine in arrival order.
	// Requests used to be processed synchronously on the read loop, which
	// took the display widget lock there — so a dispatch stalled inside a
	// widget callback blocked framebuffer-request reads, exactly the
	// coupling the input queue exists to remove. reqs/reqSpare are
	// guarded by mu and ping-pong so the steady state allocates nothing.
	reqs     []rfb.UpdateRequest
	reqSpare []rfb.UpdateRequest

	mu         sync.Mutex
	dirty      *gfx.Damage       // damage with no outstanding request yet
	dirtySpare []gfx.Rect        // recycled storage ping-ponged through dirty.TakeInto
	pending    rfb.UpdateRequest // parked incremental request
	hasPending bool
	outbox     *gfx.Damage // requested damage awaiting the writer
	owedEmpty  int         // zero-rect replies owed (empty-region requests)

	// fedResync marks a session resumed from a MIGRATED lot entry: the
	// first update it ships is the cross-node resync, counted into
	// fed_resync_bytes_total. Writer-turn-only after adopt seeds it.
	fedResync bool

	// ws is the wire tier's model of the client (shadow framebuffer +
	// tile window); writer-turn-only. Unlike turn scratch it is client
	// STATE, not scratch — it parks with the session and is Reset
	// whenever the model can no longer be trusted (resume, encode error,
	// failed send). Drain and encode scratch is NOT pinned here: writer
	// turns check a turnScratch out of the central pool, so that memory
	// scales with concurrent turns, not sessions.
	ws *rfb.WireState
}

// turnScratch is the rect-drain and update-assembly scratch a writer turn
// checks out for its duration. Pooled centrally: O(workers) of it exists
// however many sessions are parked on the run-queue.
type turnScratch struct {
	rects []gfx.Rect
	urs   []rfb.UpdateRect
}

var turnScratchPool = sync.Pool{New: func() any { return new(turnScratch) }}

// enqueue merges requested rectangles into the outbox and wakes the
// writer. Rectangles landing while the outbox is non-empty are coalescing
// with an update the writer has not shipped yet — the backpressure path.
func (c *session) enqueue(rects []gfx.Rect) {
	c.mu.Lock()
	coalescing := !c.outbox.Empty()
	n := 0
	for _, r := range rects {
		if !r.Empty() {
			c.outbox.Add(r)
			n++
		}
	}
	c.mu.Unlock()
	if n == 0 {
		return
	}
	if coalescing {
		mRectsCoalesced.Add(int64(n))
	}
	c.wake()
}

func (c *session) wake() { c.writeTask.Kick() }

// writerTurn is the writer task's turn: it owns all update transmission
// for the session. One turn processes the parked protocol requests, drains
// the outbox (and owed empty replies), encodes under the display lock with
// pooled scratch, and ships one FramebufferUpdate. Work arriving mid-turn
// kicks the task again, so the pool re-queues it — nothing is lost and
// nothing busy-waits.
func (c *session) writerTurn() {
	ts := turnScratchPool.Get().(*turnScratch)
	// Process parked protocol requests first: render pending damage on
	// the writer's time, never the read loop's — the pump takes the
	// display widget lock, and a stalled widget callback must only delay
	// updates, not request reads. The resulting rects land in the outbox
	// before it drains below, so they ship within this same turn.
	c.mu.Lock()
	reqs := c.reqs
	if c.reqSpare != nil {
		c.reqs = c.reqSpare[:0]
		c.reqSpare = nil
	} else {
		c.reqs = nil
	}
	c.mu.Unlock()
	if len(reqs) > 0 {
		// Ensure damage from before these requests is rendered.
		c.srv.pump()
		for _, req := range reqs {
			c.processRequest(req)
		}
	}
	c.mu.Lock()
	if c.reqSpare == nil {
		c.reqSpare = reqs[:0]
	}
	rects := c.outbox.TakeInto(ts.rects[:0])
	empties := c.owedEmpty
	c.owedEmpty = 0
	c.mu.Unlock()
	for i := 0; i < empties; i++ {
		if err := c.conn.SendEmptyUpdate(); err != nil {
			mUpdateDrops.Inc()
		} else {
			mUpdatesSent.Inc()
		}
	}
	if len(rects) > 0 {
		c.flush(rects, ts)
	}
	ts.rects = rects
	turnScratchPool.Put(ts)
}

// flush encodes the coalesced rectangles (adaptive per-rect encoding on
// pooled scratch) and transmits them as one FramebufferUpdate.
func (c *session) flush(rects []gfx.Rect, ts *turnScratch) {
	var (
		prep *rfb.PreparedUpdate
		err  error
	)
	tid := c.traceMark.Load()
	start := time.Now()
	c.srv.display.WithFramebuffer(func(fb *gfx.Framebuffer) {
		// The session's geometry is fixed at handshake, but the display
		// may have been resized since: clip to the live framebuffer so
		// the encoder never walks outside it.
		urs := ts.urs[:0]
		for _, r := range rects {
			r = r.Intersect(fb.Bounds())
			if r.Empty() {
				continue
			}
			urs = append(urs, rfb.UpdateRect{Rect: r, Encoding: rfb.EncAdaptive})
		}
		ts.urs = urs
		if len(urs) == 0 {
			return
		}
		prep, err = c.conn.PrepareUpdateWire(fb, urs, c.ws)
	})
	encDur := time.Since(start)
	if tid != 0 {
		encEnd := start.UnixNano() + int64(encDur)
		trace.Record(tid, trace.StageEncode, start.UnixNano(), encEnd)
		mEncodeSeconds.ObserveExemplar(encDur.Seconds(), tid)
	} else {
		mEncodeSeconds.ObserveDuration(encDur)
	}
	if prep == nil && err == nil {
		// Everything clipped away (display shrunk under the session):
		// answer with an empty update to keep request/reply pairing.
		if c.conn.SendEmptyUpdate() != nil {
			mUpdateDrops.Inc()
		} else {
			mUpdatesSent.Inc()
		}
		return
	}
	if err != nil {
		return // encoding failure: drop the update, connection stays up
	}
	size := prep.Size()
	sendT0 := int64(0)
	if tid != 0 {
		sendT0 = time.Now().UnixNano()
	}
	if err := c.conn.SendPrepared(prep); err != nil {
		// Transport failure: the read loop will observe it and tear the
		// session down. The pixels were consumed from the dirty set but
		// never reached the client — put them back, so the state that
		// parks in the detach lot is complete and the resync after a
		// resume re-covers them instead of leaving the client stale.
		// The wire model assumed the client applied this update (the
		// shadow and tile window were committed during prepare); the
		// client's true state is now unknown, so distrust the model.
		mUpdateDrops.Inc()
		c.ws.Reset()
		c.mu.Lock()
		for _, r := range rects {
			c.dirty.Add(r)
		}
		c.mu.Unlock()
		return
	}
	mUpdatesSent.Inc()
	mUpdateBytes.Add(int64(size))
	if c.fedResync {
		c.fedResync = false
		mFedResyncBytes.Add(int64(size))
	}
	// Close the input→damage→update loop: this update is the first to
	// ship since an input event was dispatched, so it (approximately)
	// carries that input's visual consequence.
	if mark := c.inputMark.Swap(0); mark != 0 {
		v := float64(time.Now().UnixNano()-mark) / 1e9
		if tid != 0 {
			mInputToUpdateSec.ObserveExemplar(v, tid)
		} else {
			mInputToUpdateSec.Observe(v)
		}
	}
	if tid != 0 {
		// The flush span completes the interaction (pixels on the wire);
		// clear the mark only now, so a failed send leaves the trace open
		// for the retried update that actually ships the damage.
		trace.Record(tid, trace.StageFlush, sendT0, time.Now().UnixNano())
		c.traceMark.Store(0)
	}
}

var _ rfb.ServerHandler = (*session)(nil)

// KeyEvent implements rfb.ServerHandler: universal input → input queue →
// window system. The read loop only enqueues; dispatchLoop injects.
func (c *session) KeyEvent(ev rfb.KeyEvent) {
	mKeyEvents.Inc()
	now := time.Now().UnixNano()
	tid := c.takeEventTrace(now)
	c.inq.put(inputEvent{enq: now, trace: tid, key: ev})
	c.wakeDispatch()
}

// PointerEvent implements rfb.ServerHandler. An event that changes no
// buttons relative to the previous pointer event on this connection is a
// pure move — the only kind the queue may coalesce under backpressure.
func (c *session) PointerEvent(ev rfb.PointerEvent) {
	mPointerEvents.Inc()
	now := time.Now().UnixNano()
	tid := c.takeEventTrace(now)
	c.inq.put(inputEvent{enq: now, trace: tid, ptr: ev, pointer: true, move: move(c, ev)})
	c.wakeDispatch()
}

func move(c *session, ev rfb.PointerEvent) bool {
	m := ev.Buttons == c.lastPtrMask
	c.lastPtrMask = ev.Buttons
	return m
}

// takeEventTrace consumes the trace context the wire attached to the
// event currently being dispatched (read-loop-synchronous). For a traced
// event it closes the wire span — client transport write to server parse,
// one clock, in-process — and attaches the connection's hub_route span
// under the interaction's id with its true (earlier) timestamps.
func (c *session) takeEventTrace(now int64) uint64 {
	tid, sent := c.conn.TakeTraceContext()
	if tid == 0 {
		return 0
	}
	trace.Record(tid, trace.StageWire, sent, now)
	if c.routeEnd != 0 {
		trace.Record(tid, trace.StageHubRoute, c.routeStart, c.routeEnd)
	}
	return tid
}

func (c *session) wakeDispatch() { c.dispatchTask.Kick() }

// CutText implements rfb.ServerHandler (ignored; appliances do not paste).
func (c *session) CutText(string) {}

// UpdateRequest implements rfb.ServerHandler: park the request for the
// writer and return. The read loop neither blocks on the transport nor
// takes the display widget lock — both the render pump and the request
// state machine run on the writer goroutine (processRequest).
func (c *session) UpdateRequest(req rfb.UpdateRequest) {
	c.mu.Lock()
	c.reqs = append(c.reqs, req)
	c.mu.Unlock()
	c.wake()
}

// processRequest runs the request state machine (writer goroutine).
// Non-incremental requests are answered with the full region; incremental
// requests are answered when damage exists, otherwise parked until damage
// arrives. All replies flow through the writer's coalescing outbox.
func (c *session) processRequest(req rfb.UpdateRequest) {
	if !req.Incremental {
		region := req.Region.Intersect(c.bounds)
		c.mu.Lock()
		// The full-region resend supersedes pending damage inside it;
		// damage outside the requested region stays collectable by a
		// later request instead of being dropped.
		drained := c.drainDirtyLocked(region)
		c.hasPending = false
		if region.Empty() {
			// Every non-incremental request gets exactly one reply, even
			// when the region clips to nothing.
			c.owedEmpty++
			c.mu.Unlock()
			c.recycleDirty(drained)
			c.wake()
			return
		}
		c.mu.Unlock()
		c.recycleDirty(drained) // contents unused: region covers them
		c.enqueue([]gfx.Rect{region})
		return
	}
	c.mu.Lock()
	rects := c.drainDirtyLocked(req.Region)
	if len(rects) == 0 {
		// No damage inside the requested region (pending damage outside
		// it, if any, went back to the dirty set): park the request.
		c.pending = req
		c.hasPending = true
		c.mu.Unlock()
		c.recycleDirty(rects)
		return
	}
	c.mu.Unlock()
	c.enqueue(rects)
	c.recycleDirty(rects)
}

// drainDirtyLocked drains the dirty set for a request covering region:
// parts inside region are returned clipped (in recycled storage), parts
// outside are re-added to the dirty set so a later request still collects
// them. c.mu must be held; hand the storage back via recycleDirty once the
// rectangles are consumed.
func (c *session) drainDirtyLocked(region gfx.Rect) []gfx.Rect {
	taken := c.takeDirtyLocked()
	out := taken[:0]
	var tmp [4]gfx.Rect
	for _, r := range taken {
		in := r.Intersect(region)
		if in != r { // some of r lies outside the requested region
			for _, rest := range r.SubtractInto(tmp[:0], region) {
				c.dirty.Add(rest)
			}
		}
		if !in.Empty() {
			out = append(out, in)
		}
	}
	return out
}

// takeDirtyLocked drains the dirty set into recycled storage (c.mu held).
// Once the returned rectangles are consumed, hand the storage back with
// recycleDirty so the steady-state request path stops allocating.
func (c *session) takeDirtyLocked() []gfx.Rect {
	spare := c.dirtySpare
	c.dirtySpare = nil
	return c.dirty.TakeInto(spare)
}

func (c *session) recycleDirty(rects []gfx.Rect) {
	c.mu.Lock()
	if c.dirtySpare == nil {
		c.dirtySpare = rects
	}
	c.mu.Unlock()
}

// satisfyParkedRequest runs the pending-request satisfaction step for a
// freshly resumed session: a request parked before the disconnect plus
// damage accumulated while detached is a pairing addDirty normally
// resolves on arrival, but here both halves arrive together out of the
// lot.
func (c *session) satisfyParkedRequest() {
	c.mu.Lock()
	if !c.hasPending || c.dirty.Empty() {
		c.mu.Unlock()
		return
	}
	out := c.drainDirtyLocked(c.pending.Region)
	if len(out) == 0 {
		c.mu.Unlock()
		c.recycleDirty(out)
		return
	}
	c.hasPending = false
	c.mu.Unlock()
	c.enqueue(out)
	c.recycleDirty(out)
}

// addDirty accumulates fresh damage and satisfies a parked request.
func (c *session) addDirty(rects []gfx.Rect) {
	c.mu.Lock()
	hadDirty := !c.dirty.Empty()
	for _, r := range rects {
		c.dirty.Add(r)
	}
	if !c.hasPending || c.dirty.Empty() {
		coalesced := !c.hasPending && hadDirty && len(rects) > 0
		c.mu.Unlock()
		if coalesced {
			// No request is waiting and damage was already pending: the
			// client is lagging the screen, so these rects merge into
			// the accumulated set and will ship together — coalesced —
			// on the next request. (A single rect landing on a clean
			// session is just normal demand-driven flow and is not
			// counted.)
			mRectsCoalesced.Add(int64(len(rects)))
		}
		return
	}
	out := c.drainDirtyLocked(c.pending.Region)
	if len(out) == 0 {
		// The new damage lies entirely outside the parked request's
		// region: it stays in the dirty set, the request stays parked.
		c.mu.Unlock()
		c.recycleDirty(out)
		return
	}
	c.hasPending = false
	c.mu.Unlock()
	c.enqueue(out)
	c.recycleDirty(out)
}
