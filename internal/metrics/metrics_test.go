package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("events_total") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("sessions")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.02, 0.2, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	want := []uint64{1, 1, 1, 2} // last is the +Inf overflow bucket
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if math.Abs(s.Sum-5.2225) > 1e-9 {
		t.Fatalf("sum = %g, want 5.2225", s.Sum)
	}
	if m := s.Mean(); math.Abs(m-5.2225/5) > 1e-9 {
		t.Fatalf("mean = %g", m)
	}
}

func TestHistogramBoundaryLandsInBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // exactly on a bound: belongs to that bucket (le semantics)
	s := h.Snapshot()
	if s.Counts[0] != 1 {
		t.Fatalf("counts = %v, want the sample in bucket le=1", s.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram(LatencyBuckets())
	for i := 0; i < 1000; i++ {
		h.ObserveDuration(time.Duration(i) * time.Microsecond) // 0..1ms uniform
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 100e-6 || p50 > 900e-6 {
		t.Fatalf("p50 = %g, want ~500µs", p50)
	}
	if q := s.Quantile(0.99); q < p50 {
		t.Fatalf("p99 %g < p50 %g", q, p50)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile should be 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(LatencyBuckets())
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(seed*i%100) * 1e-5)
			}
		}(w + 1)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	var sum uint64
	s := h.Snapshot()
	for _, c := range s.Counts {
		sum += c
	}
	if sum != workers*per {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*per)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("homes").Set(64)
	h := r.Histogram("route_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"a_total 1\n",
		"b_total 2\n",
		"homes 64\n",
		"route_seconds_bucket{le=\"0.001\"} 1\n",
		"route_seconds_bucket{le=\"0.01\"} 1\n",
		"route_seconds_bucket{le=\"+Inf\"} 2\n",
		"route_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Fatal("counters not sorted by name")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(1)
	s1 := r.Snapshot()
	c.Add(10)
	if s1.Counters["x"] != 1 {
		t.Fatal("snapshot mutated after capture")
	}
	if r.Snapshot().Counters["x"] != 11 {
		t.Fatal("registry did not advance")
	}
}

func TestDefaultRegistryShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return the same registry")
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("encode_bytes_total").Add(42)
	r.Gauge("sessions").Set(3)
	h := r.Histogram("encode_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count uint64  `json:"count"`
			Sum   float64 `json:"sum"`
			P95   float64 `json:"p95"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if out.Counters["encode_bytes_total"] != 42 || out.Gauges["sessions"] != 3 {
		t.Fatalf("scalar values wrong: %+v", out)
	}
	hj, ok := out.Histograms["encode_seconds"]
	if !ok || hj.Count != 2 || hj.Sum != 0.5005 {
		t.Fatalf("histogram summary wrong: %+v", hj)
	}
}

func TestHistogramMaxAndOverflowQuantile(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01})
	s := h.Snapshot()
	if s.Max != 0 {
		t.Fatalf("empty histogram Max = %g, want 0", s.Max)
	}
	h.Observe(0.0005)
	h.Observe(7.5) // overflow bucket
	s = h.Snapshot()
	if s.Max != 7.5 {
		t.Fatalf("Max = %g, want 7.5", s.Max)
	}
	// p99 lands in the +Inf bucket: it must report the max observed
	// sample, not clamp to the last finite bound (the old behaviour
	// understated the tail by orders of magnitude).
	if q := s.Quantile(0.99); q != 7.5 {
		t.Fatalf("overflow quantile = %g, want Max (7.5)", q)
	}
	// A snapshot built by hand without Max keeps the old clamp.
	legacy := HistogramSnapshot{Bounds: []float64{0.01}, Counts: []uint64{0, 4}, Count: 4}
	if q := legacy.Quantile(0.99); q != 0.01 {
		t.Fatalf("legacy overflow quantile = %g, want last bound", q)
	}
}

func TestObserveExemplar(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01})
	h.ObserveExemplar(0.002, 0) // trace 0: plain Observe, no exemplar
	s := h.Snapshot()
	if s.ExemplarTrace != 0 {
		t.Fatalf("untraced observation left an exemplar: %+v", s)
	}
	before := time.Now().UnixNano()
	h.ObserveExemplar(0.005, 0xbeef)
	s = h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.ExemplarTrace != 0xbeef || s.ExemplarValue != 0.005 {
		t.Fatalf("exemplar = trace %#x value %g, want 0xbeef 0.005", s.ExemplarTrace, s.ExemplarValue)
	}
	if s.ExemplarAt < before {
		t.Fatalf("exemplar timestamp %d predates the observation (%d)", s.ExemplarAt, before)
	}
	h.ObserveExemplar(0.02, 0xcafe) // newest traced sample wins
	if s = h.Snapshot(); s.ExemplarTrace != 0xcafe {
		t.Fatalf("exemplar not replaced: %#x", s.ExemplarTrace)
	}
}

func TestWritePrometheusCumulativeLe(t *testing.T) {
	r := NewRegistry()
	r.Counter("frames_total").Add(9)
	r.Gauge("sessions").Set(2)
	h := r.Histogram("route_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.002)
	h.Observe(0.02)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE frames_total counter\nframes_total 9\n",
		"# TYPE sessions gauge\nsessions 2\n",
		"# TYPE route_seconds histogram\n",
		// le buckets are cumulative: each line includes every smaller bucket.
		"route_seconds_bucket{le=\"0.001\"} 1\n",
		"route_seconds_bucket{le=\"0.01\"} 2\n",
		"route_seconds_bucket{le=\"0.1\"} 3\n",
		"route_seconds_bucket{le=\"+Inf\"} 4\n",
		"route_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusExemplarSuffix(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("input_to_update_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.ObserveExemplar(0.002, 0x1f)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The exemplar rides the bucket line the sample was counted into
	// (le="0.01" for 0.002), not the +Inf line.
	var exLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "# {trace_id=") {
			if exLine != "" {
				t.Fatalf("exemplar on more than one line:\n%s", out)
			}
			exLine = line
		}
	}
	if exLine == "" {
		t.Fatalf("no exemplar suffix in output:\n%s", out)
	}
	if !strings.HasPrefix(exLine, `input_to_update_seconds_bucket{le="0.01"} 2 # {trace_id="0x1f"} 0.002 `) {
		t.Fatalf("exemplar line = %q", exLine)
	}
}

func TestEscapeLabel(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"line\nbreak", `line\nbreak`},
		{"all\\\"\n", `all\\\"\n`},
	} {
		if got := escapeLabel(tc.in); got != tc.want {
			t.Fatalf("escapeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
