package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("events_total") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("sessions")
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.02, 0.2, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	want := []uint64{1, 1, 1, 2} // last is the +Inf overflow bucket
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if math.Abs(s.Sum-5.2225) > 1e-9 {
		t.Fatalf("sum = %g, want 5.2225", s.Sum)
	}
	if m := s.Mean(); math.Abs(m-5.2225/5) > 1e-9 {
		t.Fatalf("mean = %g", m)
	}
}

func TestHistogramBoundaryLandsInBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // exactly on a bound: belongs to that bucket (le semantics)
	s := h.Snapshot()
	if s.Counts[0] != 1 {
		t.Fatalf("counts = %v, want the sample in bucket le=1", s.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram(LatencyBuckets())
	for i := 0; i < 1000; i++ {
		h.ObserveDuration(time.Duration(i) * time.Microsecond) // 0..1ms uniform
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 100e-6 || p50 > 900e-6 {
		t.Fatalf("p50 = %g, want ~500µs", p50)
	}
	if q := s.Quantile(0.99); q < p50 {
		t.Fatalf("p99 %g < p50 %g", q, p50)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile should be 0")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(LatencyBuckets())
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(seed*i%100) * 1e-5)
			}
		}(w + 1)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	var sum uint64
	s := h.Snapshot()
	for _, c := range s.Counts {
		sum += c
	}
	if sum != workers*per {
		t.Fatalf("bucket sum = %d, want %d", sum, workers*per)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("homes").Set(64)
	h := r.Histogram("route_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"a_total 1\n",
		"b_total 2\n",
		"homes 64\n",
		"route_seconds_bucket{le=\"0.001\"} 1\n",
		"route_seconds_bucket{le=\"0.01\"} 1\n",
		"route_seconds_bucket{le=\"+Inf\"} 2\n",
		"route_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Fatal("counters not sorted by name")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(1)
	s1 := r.Snapshot()
	c.Add(10)
	if s1.Counters["x"] != 1 {
		t.Fatal("snapshot mutated after capture")
	}
	if r.Snapshot().Counters["x"] != 11 {
		t.Fatal("registry did not advance")
	}
}

func TestDefaultRegistryShared(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return the same registry")
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("encode_bytes_total").Add(42)
	r.Gauge("sessions").Set(3)
	h := r.Histogram("encode_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count uint64  `json:"count"`
			Sum   float64 `json:"sum"`
			P95   float64 `json:"p95"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if out.Counters["encode_bytes_total"] != 42 || out.Gauges["sessions"] != 3 {
		t.Fatalf("scalar values wrong: %+v", out)
	}
	hj, ok := out.Histograms["encode_seconds"]
	if !ok || hj.Count != 2 || hj.Sum != 0.5005 {
		t.Fatalf("histogram summary wrong: %+v", hj)
	}
}
