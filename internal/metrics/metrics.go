// Package metrics is a dependency-free instrumentation subsystem for the
// hot paths of the universal-interaction stack: atomic counters and
// gauges, fixed-bucket latency histograms, and a registry that exports
// everything as a snapshot or a plain-text page (the format understood by
// Prometheus-style scrapers, written by hand to keep the package free of
// third-party dependencies).
//
// Hot paths pre-resolve instrument pointers once (package init or
// construction time) and then touch only atomics, so recording a sample
// costs a handful of nanoseconds and never takes a lock.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that may go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Bucket upper bounds are set at
// construction and never change, so observation is lock-free: a binary
// search over the bounds plus two atomic adds.
type Histogram struct {
	bounds  []float64       // ascending upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Uint64 // len(bounds)+1
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, updated by CAS
	maxBits atomic.Uint64 // float64 bits of the largest sample; -Inf until first Observe

	// Exemplar: the most recent traced sample (ObserveExemplar with a
	// non-zero trace id). The three fields are independent atomics; a
	// reader racing a writer can see a torn triplet, which is acceptable
	// for a debugging aid that links metrics to traces best-effort.
	exVal   atomic.Uint64 // float64 bits
	exTrace atomic.Uint64
	exAt    atomic.Int64 // unix nanoseconds
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one sample and, when traceID is non-zero,
// remembers it as the histogram's exemplar: a concrete traced interaction
// a scraper can pivot to from the aggregate series. With traceID zero it
// is exactly Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	h.Observe(v)
	if traceID == 0 {
		return
	}
	h.exVal.Store(math.Float64bits(v))
	h.exAt.Store(time.Now().UnixNano())
	h.exTrace.Store(traceID)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures the histogram state. Count is derived from the
// summed bucket counts, not the separate total atomic, so the cumulative
// bucket series is monotone even when the snapshot races an Observe
// mid-update (bucket incremented, total not yet).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	if m := math.Float64frombits(h.maxBits.Load()); !math.IsInf(m, -1) {
		s.Max = m
	}
	if tid := h.exTrace.Load(); tid != 0 {
		s.ExemplarTrace = tid
		s.ExemplarValue = math.Float64frombits(h.exVal.Load())
		s.ExemplarAt = h.exAt.Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts has one
// more element than Bounds; the last element is the +Inf overflow bucket.
// Max is the largest sample ever observed (0 when empty). The Exemplar
// fields describe the most recent traced sample (ExemplarTrace 0: none).
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
	Max    float64

	ExemplarValue float64
	ExemplarTrace uint64
	ExemplarAt    int64
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket. A quantile landing in the +Inf overflow
// bucket returns the largest sample observed (Max) rather than the last
// finite bound: the bound would understate a tail that by definition
// exceeds it, and Max is the tightest upper estimate the histogram holds.
// (Snapshots built by hand without Max fall back to the last bound.)
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) { // overflow bucket
			if len(s.Bounds) > 0 {
				if last := s.Bounds[len(s.Bounds)-1]; s.Max < last {
					return last
				}
			}
			return s.Max
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observed value.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// LatencyBuckets returns the default latency bounds in seconds: 10 µs to
// ~5 s, doubling — wide enough for the in-process fast path and the
// simulated Bluetooth-class links alike.
func LatencyBuckets() []float64 {
	out := make([]float64, 0, 20)
	for v := 10e-6; v < 5.0; v *= 2 {
		out = append(out, v)
	}
	return out
}

// DurationBuckets returns long-duration bounds in seconds: 1 ms to
// ~17 min, doubling — sized for lifecycle spans (detach windows, drain
// waits) rather than hot-path latencies.
func DurationBuckets() []float64 {
	out := make([]float64, 0, 21)
	for v := 1e-3; v < 1024; v *= 2 {
		out = append(out, v)
	}
	return out
}

// SizeBuckets returns byte-size bounds: 64 B to 16 MB, quadrupling.
func SizeBuckets() []float64 {
	out := make([]float64, 0, 10)
	for v := 64.0; v <= 16*1024*1024; v *= 4 {
		out = append(out, v)
	}
	return out
}

// Registry is a named collection of instruments. Lookup is read-locked;
// hot paths should resolve instruments once and keep the pointers.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by the built-in
// instrumentation (proxy, server, hub).
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures every instrument. Instruments are sampled
// individually, not atomically as a set.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteText renders the registry in the plain-text exposition format:
// one "name value" line per counter/gauge, and the cumulative
// bucket/sum/count triplet per histogram. Lines are sorted by name so the
// output is diff-stable.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		p("%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		p("%s %d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		var cum uint64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			p("%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
		}
		p("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		p("%s_sum %g\n", name, h.Sum)
		p("%s_count %d\n", name, h.Count)
	}
	return err
}

// WriteJSON renders the registry snapshot as one JSON object with
// "counters", "gauges" and "histograms" members — the machine-readable
// sibling of WriteText, used by tooling that ingests a metrics snapshot
// (benchmark reports, the hub daemon's scrape page). Histograms are
// summarized as {count, sum, p50, p95, p99}.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	type histJSON struct {
		Count uint64  `json:"count"`
		Sum   float64 `json:"sum"`
		P50   float64 `json:"p50"`
		P95   float64 `json:"p95"`
		P99   float64 `json:"p99"`
	}
	out := struct {
		Counters   map[string]int64    `json:"counters"`
		Gauges     map[string]int64    `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: make(map[string]histJSON, len(s.Histograms)),
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = histJSON{
			Count: h.Count,
			Sum:   h.Sum,
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WritePrometheus renders the registry in the Prometheus/OpenMetrics
// exposition format: a "# TYPE" header per family, the cumulative
// le-bucket series per histogram, and — when a histogram holds a traced
// exemplar — an OpenMetrics exemplar suffix on the bucket line containing
// it ("... # {trace_id=\"0x…\"} value timestamp"). Label values are
// escaped per the spec (backslash, quote, newline). Families are sorted
// by name so the output is diff-stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		p("# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		p("# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		p("# TYPE %s histogram\n", name)
		// The exemplar annotates the first bucket whose upper bound
		// admits it — the bucket the sample was counted into.
		exBucket := -1
		if h.ExemplarTrace != 0 {
			exBucket = sort.SearchFloat64s(h.Bounds, h.ExemplarValue)
		}
		var cum uint64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			p("%s_bucket{le=\"%s\"} %d", name, escapeLabel(formatBound(b)), cum)
			if i == exBucket {
				p("%s", exemplarSuffix(h))
			}
			p("\n")
		}
		p("%s_bucket{le=\"+Inf\"} %d", name, h.Count)
		if exBucket == len(h.Bounds) {
			p("%s", exemplarSuffix(h))
		}
		p("\n%s_sum %g\n%s_count %d\n", name, h.Sum, name, h.Count)
	}
	return err
}

// exemplarSuffix renders the OpenMetrics exemplar annotation for a bucket
// line: " # {trace_id=\"0x…\"} value timestamp_seconds".
func exemplarSuffix(h HistogramSnapshot) string {
	return fmt.Sprintf(" # {trace_id=\"0x%x\"} %g %.3f",
		h.ExemplarTrace, h.ExemplarValue, float64(h.ExemplarAt)/1e9)
}

// escapeLabel escapes a label value per the Prometheus exposition format:
// backslash, double quote and newline become \\, \" and \n.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
