// Package leakcheck is a dependency-free goroutine-leak assertion for
// tests: snapshot the goroutine count at the start, verify at cleanup
// that it settled back. The budgeted event runtime's core claim — worker
// count is a process budget, session count is free — is only credible if
// teardown provably returns to baseline, so the runtime's tests register
// this on every server/hub lifecycle.
package leakcheck

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// settleTimeout bounds how long the cleanup waits for goroutines that are
// legitimately mid-exit (pool workers joining, a wheel driver noticing an
// empty wheel) before declaring a leak.
const settleTimeout = 5 * time.Second

// Check records the current goroutine count and registers a cleanup that
// fails the test if the count has not returned to that baseline (within
// slack) by the end. Call it before constructing the system under test.
//
// slack absorbs goroutines the test legitimately leaves behind — e.g. a
// process-shared pool that outlives the test. Pass 0 for strict checks.
func Check(t testing.TB, slack int) {
	t.Helper()
	base := settledCount()
	t.Cleanup(func() {
		deadline := time.Now().Add(settleTimeout)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base+slack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d at cleanup, baseline %d (slack %d)\n%s",
			n, base, slack, stacks())
	})
}

// Assert verifies, mid-test, that the current goroutine count is at most
// limit — the "goroutines independent of session count" check. It retries
// briefly so a just-finished turn's worker handoff does not flake it.
func Assert(t testing.TB, limit int, what string) {
	t.Helper()
	deadline := time.Now().Add(settleTimeout)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= limit {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Errorf("%s: %d goroutines, want <= %d\n%s", what, n, limit, stacks())
}

// settledCount samples the goroutine count after letting transient
// goroutines from earlier tests finish exiting.
func settledCount() int {
	prev := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(2 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n >= prev {
			return n
		}
		prev = n
	}
	return prev
}

func stacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return fmt.Sprintf("--- all stacks ---\n%s", buf[:n])
}
