package situation

import "testing"

// Wildcard semantics of Condition.Matches: empty strings and nil bool
// pointers are "don't care" terms, while set pointers constrain exactly —
// Bool(false) is a real constraint, not a wildcard.

func TestNilBoolPointersAreWildcards(t *testing.T) {
	c := Condition{} // HandsBusy and Seated both nil
	for _, s := range []Situation{
		{HandsBusy: true, Seated: true},
		{HandsBusy: true, Seated: false},
		{HandsBusy: false, Seated: true},
		{HandsBusy: false, Seated: false},
	} {
		if !c.Matches(s) {
			t.Errorf("nil pointers must match %+v", s)
		}
	}
}

func TestSetBoolPointersConstrainExactly(t *testing.T) {
	tests := []struct {
		name string
		c    Condition
		s    Situation
		want bool
	}{
		{"HandsBusy false matches false", Condition{HandsBusy: Bool(false)}, Situation{}, true},
		{"HandsBusy false rejects true", Condition{HandsBusy: Bool(false)}, Situation{HandsBusy: true}, false},
		{"HandsBusy true rejects false", Condition{HandsBusy: Bool(true)}, Situation{}, false},
		{"Seated false matches false", Condition{Seated: Bool(false)}, Situation{}, true},
		{"Seated false rejects true", Condition{Seated: Bool(false)}, Situation{Seated: true}, false},
		{"Seated true rejects false", Condition{Seated: Bool(true)}, Situation{}, false},
		{"both set both match", Condition{HandsBusy: Bool(true), Seated: Bool(false)},
			Situation{HandsBusy: true}, true},
		{"both set one fails", Condition{HandsBusy: Bool(true), Seated: Bool(true)},
			Situation{HandsBusy: true}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.c.Matches(tt.s); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEmptyStringWildcards(t *testing.T) {
	tests := []struct {
		name string
		c    Condition
		s    Situation
		want bool
	}{
		{"empty location matches any", Condition{Activity: "cooking"},
			Situation{Location: "garage", Activity: "cooking"}, true},
		{"empty activity matches any", Condition{Location: "kitchen"},
			Situation{Location: "kitchen", Activity: "whatever"}, true},
		{"empty condition matches empty situation", Condition{}, Situation{}, true},
		// A set condition term never matches the empty situation string:
		// an unknown location is not "kitchen".
		{"set location rejects empty situation", Condition{Location: "kitchen"}, Situation{}, false},
		{"set activity rejects empty situation", Condition{Activity: "cooking"}, Situation{}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.c.Matches(tt.s); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

// Tie-breaking between equally specific rules: same priority, both
// matching — declaration order decides, independently per slot.

func TestEqualPriorityTieBreaksByDeclarationOrder(t *testing.T) {
	sel := &fakeSelector{}
	rules := []Rule{
		{Name: "first", Priority: 5, When: Condition{Location: "kitchen"},
			InputClass: "voice", OutputClass: "tv"},
		{Name: "second", Priority: 5, When: Condition{Location: "kitchen"},
			InputClass: "phone", OutputClass: "phone"},
	}
	e := NewEngine(sel, rules)
	d := e.SetSituation(Situation{Location: "kitchen"})
	if d.InputRule != "first" || d.InputClass != "voice" {
		t.Errorf("input tie broke to %q/%q, want first/voice", d.InputRule, d.InputClass)
	}
	if d.OutputRule != "first" || d.OutputClass != "tv" {
		t.Errorf("output tie broke to %q/%q, want first/tv", d.OutputRule, d.OutputClass)
	}
}

func TestEqualPriorityTieFallsToSecondOnFailure(t *testing.T) {
	// The declaration-order winner's device is missing: the engine must
	// fall to the equally specific runner-up, and record the failure.
	sel := &fakeSelector{refuse: map[string]bool{"voice": true}}
	rules := []Rule{
		{Name: "first", Priority: 5, InputClass: "voice"},
		{Name: "second", Priority: 5, InputClass: "phone"},
	}
	e := NewEngine(sel, rules)
	d := e.SetSituation(Situation{})
	if d.InputRule != "second" || d.InputClass != "phone" {
		t.Errorf("tie fallback chose %q/%q, want second/phone", d.InputRule, d.InputClass)
	}
	if d.InputErr == nil {
		t.Error("first rule's failure must be recorded")
	}
}

func TestMoreSpecificRuleLosesToHigherPriority(t *testing.T) {
	// Specificity does not beat priority: a fully wildcarded
	// higher-priority rule wins over a precisely matching lower one.
	sel := &fakeSelector{}
	rules := []Rule{
		{Name: "precise", Priority: 1,
			When: Condition{Location: "kitchen", Activity: "cooking",
				HandsBusy: Bool(true), Seated: Bool(false)},
			InputClass: "phone"},
		{Name: "wildcard", Priority: 2, InputClass: "pda"},
	}
	e := NewEngine(sel, rules)
	d := e.SetSituation(Situation{Location: "kitchen", Activity: "cooking", HandsBusy: true})
	if d.InputRule != "wildcard" {
		t.Errorf("winner = %q, want the higher-priority wildcard rule", d.InputRule)
	}
}

func TestInputAndOutputTiesResolveIndependently(t *testing.T) {
	// One slot's winner failing must not drag the other slot with it.
	sel := &fakeSelector{refuse: map[string]bool{"tv": true}}
	rules := []Rule{
		{Name: "first", Priority: 5, InputClass: "voice", OutputClass: "tv"},
		{Name: "second", Priority: 5, InputClass: "phone", OutputClass: "phone"},
	}
	e := NewEngine(sel, rules)
	d := e.SetSituation(Situation{})
	if d.InputRule != "first" || d.InputClass != "voice" {
		t.Errorf("input = %q/%q, want first/voice", d.InputRule, d.InputClass)
	}
	if d.OutputRule != "second" || d.OutputClass != "phone" {
		t.Errorf("output = %q/%q, want second/phone", d.OutputRule, d.OutputClass)
	}
	if d.OutputErr == nil {
		t.Error("tv failure must be recorded")
	}
}
