package situation

import (
	"errors"
	"sync"
	"testing"
)

// fakeSelector records selections and can refuse specific classes.
type fakeSelector struct {
	mu      sync.Mutex
	inputs  []string
	outputs []string
	refuse  map[string]bool
}

var errNoDevice = errors.New("no such device")

func (f *fakeSelector) SelectInputByClass(class string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refuse[class] {
		return errNoDevice
	}
	f.inputs = append(f.inputs, class)
	return nil
}

func (f *fakeSelector) SelectOutputByClass(class string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refuse[class] {
		return errNoDevice
	}
	f.outputs = append(f.outputs, class)
	return nil
}

func (f *fakeSelector) lastInput() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.inputs) == 0 {
		return ""
	}
	return f.inputs[len(f.inputs)-1]
}

func (f *fakeSelector) lastOutput() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.outputs) == 0 {
		return ""
	}
	return f.outputs[len(f.outputs)-1]
}

func TestConditionMatching(t *testing.T) {
	tests := []struct {
		name string
		c    Condition
		s    Situation
		want bool
	}{
		{"empty matches anything", Condition{}, Situation{Location: "kitchen"}, true},
		{"location match", Condition{Location: "kitchen"}, Situation{Location: "kitchen"}, true},
		{"location mismatch", Condition{Location: "kitchen"}, Situation{Location: "office"}, false},
		{"hands busy true", Condition{HandsBusy: Bool(true)}, Situation{HandsBusy: true}, true},
		{"hands busy false required", Condition{HandsBusy: Bool(false)}, Situation{HandsBusy: true}, false},
		{"combined", Condition{Location: "sofa", Seated: Bool(true)},
			Situation{Location: "sofa", Seated: true}, true},
		{"combined partial fail", Condition{Location: "sofa", Seated: Bool(true)},
			Situation{Location: "sofa"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.c.Matches(tt.s); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDefaultRulesScenarios(t *testing.T) {
	tests := []struct {
		name    string
		s       Situation
		wantIn  string
		wantOut string
	}{
		{"cooking with hands busy", Situation{Location: "kitchen", Activity: "cooking", HandsBusy: true},
			"voice", "phone"},
		{"kitchen hands free", Situation{Location: "kitchen"},
			"phone", "phone"},
		{"sofa tv", Situation{Location: "livingroom", Activity: "watching_tv", Seated: true},
			"remote", "tv"},
		{"living room standing", Situation{Location: "livingroom"},
			"pda", "tv"},
		{"office", Situation{Location: "office"},
			"pda", "pda"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sel := &fakeSelector{}
			e := NewEngine(sel, DefaultRules())
			d := e.SetSituation(tt.s)
			if d.InputClass != tt.wantIn || sel.lastInput() != tt.wantIn {
				t.Errorf("input = %q (rule %q), want %q", d.InputClass, d.InputRule, tt.wantIn)
			}
			if d.OutputClass != tt.wantOut || sel.lastOutput() != tt.wantOut {
				t.Errorf("output = %q (rule %q), want %q", d.OutputClass, d.OutputRule, tt.wantOut)
			}
		})
	}
}

func TestFallthroughWhenDeviceMissing(t *testing.T) {
	// Voice preferred but no voice device attached: the engine must fall
	// through to the next matching rule instead of leaving no input.
	sel := &fakeSelector{refuse: map[string]bool{"voice": true}}
	e := NewEngine(sel, DefaultRules())
	d := e.SetSituation(Situation{Location: "kitchen", HandsBusy: true})
	if d.InputClass != "phone" {
		t.Errorf("fallback input = %q", d.InputClass)
	}
	if d.InputErr == nil {
		t.Error("first failure should be recorded")
	}
	if !errors.Is(d.InputErr, errNoDevice) {
		t.Errorf("recorded err = %v", d.InputErr)
	}
}

func TestPriorityOrderingAndStability(t *testing.T) {
	sel := &fakeSelector{}
	rules := []Rule{
		{Name: "low", Priority: 1, InputClass: "pda"},
		{Name: "high", Priority: 10, InputClass: "voice"},
		{Name: "high-second", Priority: 10, InputClass: "remote"},
	}
	e := NewEngine(sel, rules)
	d := e.SetSituation(Situation{})
	if d.InputRule != "high" {
		t.Errorf("winning rule = %q (ties must resolve by declaration order)", d.InputRule)
	}
	// Engine must not have mutated the caller's slice.
	if rules[0].Name != "low" {
		t.Error("caller's rule slice reordered")
	}
}

func TestHistoryAccumulates(t *testing.T) {
	sel := &fakeSelector{}
	e := NewEngine(sel, DefaultRules())
	e.SetSituation(Situation{Location: "kitchen"})
	e.SetSituation(Situation{Location: "office"})
	h := e.History()
	if len(h) != 2 {
		t.Fatalf("history = %d", len(h))
	}
	if h[0].Situation.Location != "kitchen" || h[1].Situation.Location != "office" {
		t.Errorf("history order wrong: %+v", h)
	}
	if e.Situation().Location != "office" {
		t.Errorf("current = %+v", e.Situation())
	}
}

func TestRuleWithoutSlotLeavesOtherDecisionsAlone(t *testing.T) {
	// A rule constraining only output must not block input fallthrough.
	sel := &fakeSelector{}
	rules := []Rule{
		{Name: "out-only", Priority: 10, OutputClass: "tv"},
		{Name: "in-only", Priority: 5, InputClass: "remote"},
	}
	e := NewEngine(sel, rules)
	d := e.SetSituation(Situation{})
	if d.InputClass != "remote" || d.OutputClass != "tv" {
		t.Errorf("decision = %+v", d)
	}
	if d.InputRule != "in-only" || d.OutputRule != "out-only" {
		t.Errorf("rules = %q/%q", d.InputRule, d.OutputRule)
	}
}

func TestNoMatchingRuleLeavesSelectionEmpty(t *testing.T) {
	sel := &fakeSelector{}
	rules := []Rule{{Name: "kitchen-only", When: Condition{Location: "kitchen"}, InputClass: "phone"}}
	e := NewEngine(sel, rules)
	d := e.SetSituation(Situation{Location: "office"})
	if d.InputClass != "" || d.InputRule != "" {
		t.Errorf("decision = %+v", d)
	}
	if len(sel.inputs) != 0 {
		t.Error("selector called despite no matching rule")
	}
}
