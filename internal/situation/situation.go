// Package situation implements the user-context side of the paper's second
// characteristic: "suitable input/output interaction devices [are chosen]
// according to a user's preference. Also, these interaction devices are
// dynamically changed according to the user's current situation."
//
// A Situation models what the prototype's sensors would report (location,
// activity, hands busy, seated); preference Rules map situations to
// preferred device classes; the Engine evaluates the rules whenever the
// situation changes and re-selects devices on the UniInt proxy.
package situation

import (
	"sort"
	"sync"
)

// Situation is the user's current context.
type Situation struct {
	// Location is the room: "kitchen", "livingroom", "office", …
	Location string
	// Activity is what the user is doing: "cooking", "watching_tv",
	// "idle", …
	Activity string
	// HandsBusy reports whether both hands are occupied (the paper's
	// trigger for switching to voice input).
	HandsBusy bool
	// Seated reports whether the user is sitting (sofa scenario).
	Seated bool
}

// Condition matches situations; zero-valued fields match anything.
type Condition struct {
	Location  string
	Activity  string
	HandsBusy *bool
	Seated    *bool
}

// Matches reports whether s satisfies every non-wildcard term.
func (c Condition) Matches(s Situation) bool {
	if c.Location != "" && c.Location != s.Location {
		return false
	}
	if c.Activity != "" && c.Activity != s.Activity {
		return false
	}
	if c.HandsBusy != nil && *c.HandsBusy != s.HandsBusy {
		return false
	}
	if c.Seated != nil && *c.Seated != s.Seated {
		return false
	}
	return true
}

// Bool returns a pointer for use in Condition literals.
func Bool(b bool) *bool { return &b }

// Rule is one user preference: when the condition holds, prefer these
// device classes. Input and output are decided independently (paper
// characteristic C1): a rule may set either or both.
type Rule struct {
	Name        string
	When        Condition
	InputClass  string // "" = this rule does not constrain input
	OutputClass string // "" = this rule does not constrain output
	Priority    int    // higher wins; ties resolve by declaration order
}

// Selector is the device-switching surface the engine drives; the UniInt
// proxy implements it.
type Selector interface {
	SelectInputByClass(class string) error
	SelectOutputByClass(class string) error
}

// Decision records one evaluation: which rules chose the input and output
// and whether the switches succeeded. A non-nil InputErr/OutputErr with a
// non-empty class means a higher-priority preference failed (device not
// attached) and the engine fell back; the class fields are authoritative.
type Decision struct {
	Situation   Situation
	InputRule   string
	InputClass  string
	InputErr    error
	OutputRule  string
	OutputClass string
	OutputErr   error
}

// Engine evaluates preference rules against the current situation and
// drives a Selector.
type Engine struct {
	sel Selector

	mu      sync.Mutex
	rules   []Rule // sorted by priority, descending, stable
	current Situation
	history []Decision
}

// NewEngine creates an engine over the given rules (evaluated by
// descending priority).
func NewEngine(sel Selector, rules []Rule) *Engine {
	sorted := make([]Rule, len(rules))
	copy(sorted, rules)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Priority > sorted[j].Priority
	})
	return &Engine{sel: sel, rules: sorted}
}

// Situation returns the engine's current situation.
func (e *Engine) Situation() Situation {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.current
}

// History returns all decisions made so far.
func (e *Engine) History() []Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Decision, len(e.history))
	copy(out, e.history)
	return out
}

// Rules returns the evaluation order.
func (e *Engine) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Rule, len(e.rules))
	copy(out, e.rules)
	return out
}

// SetSituation installs the new situation, evaluates the rules and
// switches devices. It returns the decision taken. Selection failures
// (e.g. no device of the preferred class is attached) are recorded in the
// decision; the engine then falls through to the next matching rule for
// that slot, so the user always keeps a working device when one exists.
func (e *Engine) SetSituation(s Situation) Decision {
	e.mu.Lock()
	e.current = s
	rules := e.rules
	e.mu.Unlock()

	d := Decision{Situation: s}

	for _, r := range rules {
		if d.InputClass != "" || r.InputClass == "" || !r.When.Matches(s) {
			continue
		}
		err := e.sel.SelectInputByClass(r.InputClass)
		if err != nil {
			if d.InputErr == nil {
				d.InputErr = err // remember the first failure
			}
			continue
		}
		d.InputRule, d.InputClass = r.Name, r.InputClass
	}
	for _, r := range rules {
		if d.OutputClass != "" || r.OutputClass == "" || !r.When.Matches(s) {
			continue
		}
		err := e.sel.SelectOutputByClass(r.OutputClass)
		if err != nil {
			if d.OutputErr == nil {
				d.OutputErr = err
			}
			continue
		}
		d.OutputRule, d.OutputClass = r.Name, r.OutputClass
	}

	e.mu.Lock()
	e.history = append(e.history, d)
	e.mu.Unlock()
	return d
}

// DefaultRules encodes the paper's motivating scenarios:
//
//   - both hands busy (cooking) → voice input (paper §1 and §2.1)
//   - watching TV from the sofa → remote controller + TV display
//   - in the kitchen → phone keypad in hand, phone display
//   - in the living room → prefer the TV screen as output
//   - otherwise → the PDA for both directions
func DefaultRules() []Rule {
	return []Rule{
		{Name: "hands-busy-voice", Priority: 100,
			When:       Condition{HandsBusy: Bool(true)},
			InputClass: "voice"},
		{Name: "sofa-remote", Priority: 90,
			When:        Condition{Activity: "watching_tv", Seated: Bool(true)},
			InputClass:  "remote",
			OutputClass: "tv"},
		{Name: "kitchen-phone", Priority: 50,
			When:        Condition{Location: "kitchen"},
			InputClass:  "phone",
			OutputClass: "phone"},
		{Name: "livingroom-tv", Priority: 40,
			When:        Condition{Location: "livingroom"},
			OutputClass: "tv"},
		{Name: "default-pda", Priority: 0,
			InputClass:  "pda",
			OutputClass: "pda"},
	}
}
