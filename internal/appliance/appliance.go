// Package appliance provides simulated networked home appliances: each one
// bundles a HAVi device control module (DCM), its functional component
// modules (FCMs) and a discrete-time simulation of the underlying hardware
// (tape transport motion, thermal drift, clock time).
//
// The paper's prototype controls real audio/visual appliances through the
// authors' HAVi home computing system; these simulators stand in for the
// hardware while exercising identical middleware code paths (registration,
// discovery, control messages, change events).
package appliance

import (
	"fmt"
	"sync"
	"time"

	"uniint/internal/havi"
	"uniint/internal/sched"
)

// Appliance is one simulated device.
type Appliance interface {
	// Name returns the human-readable device name.
	Name() string
	// Class returns the appliance class ("tv", "vcr", …).
	Class() string
	// DCM returns the device's control module for network attachment.
	DCM() *havi.DCM
	// Tick advances the hardware simulation by one time unit.
	Tick()
}

// Home assembles a household: the middleware network, its appliances and
// an optional real-time ticker driving the hardware simulations.
type Home struct {
	net *havi.Network

	mu         sync.Mutex
	appliances []Appliance
	guids      map[Appliance]havi.GUID

	tickMu    sync.Mutex
	tickRun   sync.Mutex // held across each wheel-fired advance; StopTicker's barrier
	tickTimer *sched.Timer
}

// NewHome creates a household with a fresh middleware network.
func NewHome() *Home {
	return &Home{
		net:   havi.NewNetwork(),
		guids: make(map[Appliance]havi.GUID),
	}
}

// Network returns the household middleware.
func (h *Home) Network() *havi.Network { return h.net }

// Add attaches an appliance to the home network (plugging it into the
// bus). Returns the assigned GUID.
func (h *Home) Add(a Appliance) (havi.GUID, error) {
	guid, err := h.net.Attach(a.DCM())
	if err != nil {
		return 0, fmt.Errorf("add %s: %w", a.Name(), err)
	}
	h.mu.Lock()
	h.appliances = append(h.appliances, a)
	h.guids[a] = guid
	h.mu.Unlock()
	return guid, nil
}

// Remove unplugs an appliance from the bus. The appliance object survives
// and can be re-added (same GUID), like re-seating a cable.
func (h *Home) Remove(a Appliance) {
	h.mu.Lock()
	guid, ok := h.guids[a]
	if ok {
		for i, x := range h.appliances {
			if x == a {
				h.appliances = append(h.appliances[:i], h.appliances[i+1:]...)
				break
			}
		}
		delete(h.guids, a)
	}
	h.mu.Unlock()
	if ok {
		h.net.Detach(guid)
	}
}

// Appliances returns the currently attached appliances.
func (h *Home) Appliances() []Appliance {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Appliance, len(h.appliances))
	copy(out, h.appliances)
	return out
}

// Advance ticks every appliance n times (deterministic simulation step for
// tests and benchmarks).
func (h *Home) Advance(n int) {
	for i := 0; i < n; i++ {
		for _, a := range h.Appliances() {
			a.Tick()
		}
	}
}

// StartTicker begins advancing the simulation in real time, once per
// interval. Stop with StopTicker or Close.
//
// The tick is a periodic timer on the shared wheel rather than a dedicated
// ticker goroutine: a process hosting 10k ticking homes (or one home with
// 10k appliances) holds O(1) runtime timers and zero ticker goroutines.
func (h *Home) StartTicker(interval time.Duration) {
	h.tickMu.Lock()
	defer h.tickMu.Unlock()
	if h.tickTimer != nil {
		return // already running
	}
	h.tickRun.Lock() // tickTimer is read under tickRun by tickOnce
	h.tickTimer = sched.Shared().Every(interval, h.tickOnce)
	h.tickRun.Unlock()
}

func (h *Home) tickOnce() {
	h.tickRun.Lock()
	// Re-check under tickRun: a fire dispatched just as StopTicker ran
	// must not advance after StopTicker returned.
	if h.tickTimer != nil {
		h.Advance(1)
	}
	h.tickRun.Unlock()
}

// StopTicker halts the real-time simulation; an in-flight advance is
// waited out, so no Tick runs after StopTicker returns.
func (h *Home) StopTicker() {
	h.tickMu.Lock()
	defer h.tickMu.Unlock()
	if h.tickTimer == nil {
		return
	}
	h.tickTimer.Stop()
	h.tickRun.Lock() // barrier: wait out an advance already running
	h.tickTimer = nil
	h.tickRun.Unlock()
}

// Close stops the ticker and shuts the middleware down.
func (h *Home) Close() {
	h.StopTicker()
	h.net.Close()
}
