package appliance

import (
	"fmt"

	"uniint/internal/havi"
	"uniint/internal/havi/fcm"
)

// TV is a television: tuner + display + built-in speaker amplifier.
type TV struct {
	name    string
	dcm     *havi.DCM
	tuner   *havi.BaseFCM
	display *havi.BaseFCM
	speaker *havi.BaseFCM
}

var _ Appliance = (*TV)(nil)

// NewTV builds a television simulator.
func NewTV(name string) *TV {
	t := &TV{
		name:    name,
		dcm:     havi.NewDCM(name, "tv"),
		tuner:   fcm.NewTuner(),
		display: fcm.NewAVDisplay(),
		speaker: fcm.NewAmplifier(),
	}
	t.dcm.AddFCM(t.tuner)
	t.dcm.AddFCM(t.display)
	t.dcm.AddFCM(t.speaker)
	return t
}

// Name implements Appliance.
func (t *TV) Name() string { return t.name }

// Class implements Appliance.
func (t *TV) Class() string { return "tv" }

// DCM implements Appliance.
func (t *TV) DCM() *havi.DCM { return t.dcm }

// Tick implements Appliance; a TV has no time-dependent mechanics.
func (t *TV) Tick() {}

// Tuner exposes the tuner FCM (tests and scenario scripts).
func (t *TV) Tuner() *havi.BaseFCM { return t.tuner }

// Display exposes the display FCM.
func (t *TV) Display() *havi.BaseFCM { return t.display }

// Speaker exposes the speaker amplifier FCM.
func (t *TV) Speaker() *havi.BaseFCM { return t.speaker }

// VCR is a video cassette recorder with a transport deck and timer clock.
type VCR struct {
	name  string
	dcm   *havi.DCM
	deck  *havi.BaseFCM
	clock *havi.BaseFCM
}

var _ Appliance = (*VCR)(nil)

// NewVCR builds a VCR simulator.
func NewVCR(name string) *VCR {
	v := &VCR{
		name:  name,
		dcm:   havi.NewDCM(name, "vcr"),
		deck:  fcm.NewVCR(),
		clock: fcm.NewClock(),
	}
	v.dcm.AddFCM(v.deck)
	v.dcm.AddFCM(v.clock)
	return v
}

// Name implements Appliance.
func (v *VCR) Name() string { return v.name }

// Class implements Appliance.
func (v *VCR) Class() string { return "vcr" }

// DCM implements Appliance.
func (v *VCR) DCM() *havi.DCM { return v.dcm }

// Tick implements Appliance: the tape moves, the clock advances, and an
// armed timer starts recording when its programmed time arrives.
func (v *VCR) Tick() {
	fcm.TickVCR(v.deck)
	fcm.TickClock(v.clock)
	fcm.CheckVCRTimer(v.deck, v.clock)
}

// Deck exposes the transport FCM.
func (v *VCR) Deck() *havi.BaseFCM { return v.deck }

// Clock exposes the timer clock FCM.
func (v *VCR) Clock() *havi.BaseFCM { return v.clock }

// Amplifier is a standalone audio amplifier.
type Amplifier struct {
	name string
	dcm  *havi.DCM
	amp  *havi.BaseFCM
}

var _ Appliance = (*Amplifier)(nil)

// NewAmplifier builds an amplifier simulator.
func NewAmplifier(name string) *Amplifier {
	a := &Amplifier{
		name: name,
		dcm:  havi.NewDCM(name, "amplifier"),
		amp:  fcm.NewAmplifier(),
	}
	a.dcm.AddFCM(a.amp)
	return a
}

// Name implements Appliance.
func (a *Amplifier) Name() string { return a.name }

// Class implements Appliance.
func (a *Amplifier) Class() string { return "amplifier" }

// DCM implements Appliance.
func (a *Amplifier) DCM() *havi.DCM { return a.dcm }

// Tick implements Appliance; amplifiers have no mechanics.
func (a *Amplifier) Tick() {}

// Amp exposes the amplifier FCM.
func (a *Amplifier) Amp() *havi.BaseFCM { return a.amp }

// Aircon is an air conditioner with a thermal simulation.
type Aircon struct {
	name string
	dcm  *havi.DCM
	unit *havi.BaseFCM
}

var _ Appliance = (*Aircon)(nil)

// NewAircon builds an air-conditioner simulator.
func NewAircon(name string) *Aircon {
	a := &Aircon{
		name: name,
		dcm:  havi.NewDCM(name, "aircon"),
		unit: fcm.NewAircon(),
	}
	a.dcm.AddFCM(a.unit)
	return a
}

// Name implements Appliance.
func (a *Aircon) Name() string { return a.name }

// Class implements Appliance.
func (a *Aircon) Class() string { return "aircon" }

// DCM implements Appliance.
func (a *Aircon) DCM() *havi.DCM { return a.dcm }

// Tick implements Appliance: the room temperature moves.
func (a *Aircon) Tick() { fcm.TickAircon(a.unit) }

// Unit exposes the air-conditioner FCM.
func (a *Aircon) Unit() *havi.BaseFCM { return a.unit }

// Lamp is a dimmable light.
type Lamp struct {
	name string
	dcm  *havi.DCM
	bulb *havi.BaseFCM
}

var _ Appliance = (*Lamp)(nil)

// NewLamp builds a lamp simulator.
func NewLamp(name string) *Lamp {
	l := &Lamp{
		name: name,
		dcm:  havi.NewDCM(name, "lamp"),
		bulb: fcm.NewLamp(),
	}
	l.dcm.AddFCM(l.bulb)
	return l
}

// Name implements Appliance.
func (l *Lamp) Name() string { return l.name }

// Class implements Appliance.
func (l *Lamp) Class() string { return "lamp" }

// DCM implements Appliance.
func (l *Lamp) DCM() *havi.DCM { return l.dcm }

// Tick implements Appliance; lamps have no mechanics.
func (l *Lamp) Tick() {}

// Bulb exposes the lamp FCM.
func (l *Lamp) Bulb() *havi.BaseFCM { return l.bulb }

// StandardHome builds the household used by the examples and benchmarks:
// a TV, a VCR, an amplifier, an air conditioner and a lamp, all attached.
func StandardHome() (*Home, error) {
	h := NewHome()
	for _, a := range []Appliance{
		NewTV("Living TV"),
		NewVCR("Living VCR"),
		NewAmplifier("Hi-Fi Amp"),
		NewAircon("Bedroom AC"),
		NewLamp("Desk Lamp"),
	} {
		if _, err := h.Add(a); err != nil {
			h.Close()
			return nil, err
		}
	}
	return h, nil
}

// New builds an appliance of the named class ("tv", "vcr", "amplifier",
// "aircon", "lamp", with common aliases). The class vocabulary is shared
// by uniintd's -appliances flag and the hub's per-home factories.
func New(class, name string) (Appliance, error) {
	switch class {
	case "tv":
		return NewTV(name), nil
	case "vcr":
		return NewVCR(name), nil
	case "amplifier", "amp":
		return NewAmplifier(name), nil
	case "aircon", "ac":
		return NewAircon(name), nil
	case "lamp", "light":
		return NewLamp(name), nil
	default:
		return nil, fmt.Errorf("appliance: unknown class %q", class)
	}
}
