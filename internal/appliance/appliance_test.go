package appliance

import (
	"testing"
	"time"

	"uniint/internal/havi"
	"uniint/internal/havi/fcm"
)

func TestStandardHome(t *testing.T) {
	h, err := StandardHome()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	h.Network().WaitIdle()

	if got := len(h.Appliances()); got != 5 {
		t.Fatalf("appliances = %d", got)
	}
	dcms := h.Network().Registry().Query(map[string]string{"type": "dcm"})
	if len(dcms) != 5 {
		t.Fatalf("registered DCMs = %d", len(dcms))
	}
	// The TV contributes three FCMs, the VCR two, others one each.
	fcms := h.Network().Registry().Query(map[string]string{"type": "fcm"})
	if len(fcms) != 3+2+1+1+1 {
		t.Fatalf("registered FCMs = %d", len(fcms))
	}
}

func TestHomeRemoveAndReadd(t *testing.T) {
	h := NewHome()
	defer h.Close()
	lamp := NewLamp("L1")
	if _, err := h.Add(lamp); err != nil {
		t.Fatal(err)
	}
	h.Network().WaitIdle()
	if h.Network().Registry().Count() != 2 {
		t.Fatalf("count = %d", h.Network().Registry().Count())
	}
	h.Remove(lamp)
	h.Network().WaitIdle()
	if h.Network().Registry().Count() != 0 {
		t.Fatalf("count after remove = %d", h.Network().Registry().Count())
	}
	// Re-adding keeps the GUID.
	guid1 := lamp.DCM().GUID()
	guid2, err := h.Add(lamp)
	if err != nil {
		t.Fatal(err)
	}
	if guid1 != guid2 {
		t.Errorf("guid changed across replug: %s → %s", guid1, guid2)
	}
}

func TestAdvanceDrivesMechanics(t *testing.T) {
	h := NewHome()
	defer h.Close()
	vcr := NewVCR("V")
	ac := NewAircon("A")
	if _, err := h.Add(vcr); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Add(ac); err != nil {
		t.Fatal(err)
	}
	vcr.Deck().Set(fcm.CtlPower, 1)
	vcr.Deck().Do(fcm.VCRLoad)
	vcr.Deck().Do(fcm.VCRPlay)
	ac.Unit().Set(fcm.CtlPower, 1)
	ac.Unit().Set(fcm.AirconMode, fcm.ModeCool)
	ac.Unit().Set(fcm.AirconTarget, 20)

	h.Advance(8)
	if c, _ := vcr.Deck().Get(fcm.VCRCounter); c != 8 {
		t.Errorf("counter = %d", c)
	}
	if r, _ := ac.Unit().Get(fcm.AirconRoom); r != 20 {
		t.Errorf("room = %d", r)
	}
	if m, _ := vcr.Clock().Get(fcm.ClockMinute); m != 8 {
		t.Errorf("minute = %d", m)
	}
}

func TestTickerLifecycle(t *testing.T) {
	h := NewHome()
	defer h.Close()
	vcr := NewVCR("V")
	if _, err := h.Add(vcr); err != nil {
		t.Fatal(err)
	}
	vcr.Deck().Set(fcm.CtlPower, 1)
	vcr.Deck().Do(fcm.VCRLoad)
	vcr.Deck().Do(fcm.VCRPlay)

	h.StartTicker(time.Millisecond)
	h.StartTicker(time.Millisecond) // double start is a no-op
	deadline := time.Now().Add(2 * time.Second)
	for {
		if c, _ := vcr.Deck().Get(fcm.VCRCounter); c >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ticker did not advance the simulation")
		}
		time.Sleep(time.Millisecond)
	}
	h.StopTicker()
	h.StopTicker() // double stop is a no-op
	c1, _ := vcr.Deck().Get(fcm.VCRCounter)
	time.Sleep(10 * time.Millisecond)
	c2, _ := vcr.Deck().Get(fcm.VCRCounter)
	if c1 != c2 {
		t.Error("simulation advanced after StopTicker")
	}
}

func TestApplianceClassesAndFCMKinds(t *testing.T) {
	tests := []struct {
		a     Appliance
		class string
		kinds []string
	}{
		{NewTV("t"), "tv", []string{"tuner", "display", "amplifier"}},
		{NewVCR("v"), "vcr", []string{"vcr", "clock"}},
		{NewAmplifier("a"), "amplifier", []string{"amplifier"}},
		{NewAircon("c"), "aircon", []string{"aircon"}},
		{NewLamp("l"), "lamp", []string{"lamp"}},
	}
	for _, tt := range tests {
		if tt.a.Class() != tt.class {
			t.Errorf("%s class = %q", tt.a.Name(), tt.a.Class())
		}
		fcms := tt.a.DCM().FCMs()
		if len(fcms) != len(tt.kinds) {
			t.Errorf("%s has %d FCMs, want %d", tt.a.Name(), len(fcms), len(tt.kinds))
			continue
		}
		for i, k := range tt.kinds {
			if fcms[i].Kind() != k {
				t.Errorf("%s fcm %d = %q, want %q", tt.a.Name(), i, fcms[i].Kind(), k)
			}
		}
	}
}

func TestControlThroughMiddleware(t *testing.T) {
	// End-to-end: discover the lamp via registry, flip power via message.
	h := NewHome()
	defer h.Close()
	lamp := NewLamp("Desk")
	if _, err := h.Add(lamp); err != nil {
		t.Fatal(err)
	}
	h.Network().WaitIdle()

	entries := h.Network().Registry().Query(map[string]string{"type": "fcm", "kind": "lamp"})
	if len(entries) != 1 {
		t.Fatalf("lamp FCMs found = %d", len(entries))
	}
	if _, err := h.Network().Messages().Call(havi.Message{
		Dst: entries[0].SEID, Op: havi.OpSet, Key: fcm.CtlPower, Value: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if v, _ := lamp.Bulb().Get(fcm.CtlPower); v != 1 {
		t.Error("lamp did not turn on via middleware")
	}
}
