package workload

import "math/rand"

// Input storm: the pointer-flood workload for the input→update control
// pipeline. Continuous-input modalities — a stylus sweeping a PDA panel,
// gestural control, spatial trackers — produce long runs of pointer moves
// punctuated by press/release transitions and the occasional key event.
// InputStorm scripts that mixture deterministically across M hub-hosted
// homes, so benchmarks can drive the proxy batching, the wire, the
// per-session input queue and the dispatch path with a realistic shape:
// mostly coalescable moves, with the semantic events (transitions, keys)
// a correct pipeline must never lose.

// InputKind tags one scripted input step.
type InputKind int

// Step kinds. Moves are the flood material (coalescable); presses,
// releases and keys are semantic and must survive every coalescing stage.
const (
	InputMove InputKind = iota
	InputPress
	InputRelease
	InputKey
)

// InputStep is one scripted universal input event in one home.
type InputStep struct {
	Home    int       // home index in [0, Homes)
	Kind    InputKind // move / press / release / key
	X, Y    int       // pointer position (pointer kinds)
	Buttons uint8     // button mask after the event (pointer kinds)
	Key     uint32    // keysym (InputKey)
	Down    bool      // key direction (InputKey)
}

// Pointer reports whether the step is a pointer event.
func (s InputStep) Pointer() bool { return s.Kind != InputKey }

// InputStorm generates a deterministic pointer-flood stream: per home, a
// random-walk pointer sweeps the panel; every MovesPerGesture moves the
// stream inserts a press (starting a drag run) or the matching release,
// and roughly one gesture in four ends with a key tap (the keypad
// modality sharing the session).
type InputStorm struct {
	Homes int // number of homes the storm is spread over
	W, H  int // panel geometry the pointer walks

	// MovesPerGesture is the length of each pure-move run between button
	// transitions — the coalescing opportunity per gesture.
	MovesPerGesture int

	rng   *rand.Rand
	x, y  []int  // per-home pointer position
	down  []bool // per-home button state
	run   []int  // per-home moves remaining in the current run
	keyUp []int  // per-home pending key-release (keysym+1, 0 = none)
}

// NewInputStorm builds a storm over homes panels of w×h pixels,
// deterministic under seed.
func NewInputStorm(homes, w, h, movesPerGesture int, seed int64) *InputStorm {
	if homes < 1 {
		homes = 1
	}
	if movesPerGesture < 1 {
		movesPerGesture = 16
	}
	s := &InputStorm{
		Homes:           homes,
		W:               w,
		H:               h,
		MovesPerGesture: movesPerGesture,
		rng:             rand.New(rand.NewSource(seed)),
		x:               make([]int, homes),
		y:               make([]int, homes),
		down:            make([]bool, homes),
		run:             make([]int, homes),
		keyUp:           make([]int, homes),
	}
	for i := 0; i < homes; i++ {
		s.x[i] = w / 2
		s.y[i] = h / 2
		s.run[i] = movesPerGesture
	}
	return s
}

// Next returns the next scripted step.
func (s *InputStorm) Next() InputStep {
	home := s.rng.Intn(s.Homes)
	if k := s.keyUp[home]; k != 0 { // finish the pending key tap first
		s.keyUp[home] = 0
		return InputStep{Home: home, Kind: InputKey, Key: uint32(k - 1), Down: false}
	}
	if s.run[home] > 0 { // pure move: random walk, clamped to the panel
		s.run[home]--
		s.x[home] = clamp(s.x[home]+s.rng.Intn(17)-8, 0, s.W-1)
		s.y[home] = clamp(s.y[home]+s.rng.Intn(17)-8, 0, s.H-1)
		var mask uint8
		if s.down[home] {
			mask = 1
		}
		return InputStep{Home: home, Kind: InputMove, X: s.x[home], Y: s.y[home], Buttons: mask}
	}
	// Run exhausted: transition (press or release), or a key tap after
	// roughly one gesture in four.
	s.run[home] = s.MovesPerGesture
	if !s.down[home] && s.rng.Intn(4) == 0 {
		key := uint32('0' + s.rng.Intn(10))
		s.keyUp[home] = int(key) + 1
		return InputStep{Home: home, Kind: InputKey, Key: key, Down: true}
	}
	s.down[home] = !s.down[home]
	kind := InputRelease
	var mask uint8
	if s.down[home] {
		kind = InputPress
		mask = 1
	}
	return InputStep{Home: home, Kind: kind, X: s.x[home], Y: s.y[home], Buttons: mask}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
