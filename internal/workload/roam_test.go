package workload

import (
	"reflect"
	"testing"
)

func TestRoamDeterministic(t *testing.T) {
	cfg := RoamConfig{Homes: 8, Devices: 4, Hops: 6, StepsPerVisit: 5, Seed: 42}
	a, b := Roam(cfg), Roam(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must yield identical itineraries")
	}
	cfg.Seed = 43
	if reflect.DeepEqual(a, Roam(cfg)) {
		t.Fatal("different seeds should yield different itineraries")
	}
}

func TestRoamEveryHopMoves(t *testing.T) {
	for _, plan := range Roam(RoamConfig{Homes: 3, Devices: 8, Hops: 10, Seed: 7}) {
		if len(plan.Visits) != 10 {
			t.Fatalf("%s: %d visits, want 10", plan.DeviceID, len(plan.Visits))
		}
		for i := 1; i < len(plan.Visits); i++ {
			if plan.Visits[i].HomeID == plan.Visits[i-1].HomeID {
				t.Fatalf("%s: hop %d stayed at %s", plan.DeviceID, i, plan.Visits[i].HomeID)
			}
		}
		if plan.Steps() != 10*6 {
			t.Fatalf("%s: %d steps, want %d", plan.DeviceID, plan.Steps(), 60)
		}
	}
}

func TestRoamSingleHomeDegenerate(t *testing.T) {
	plans := Roam(RoamConfig{Homes: 1, Devices: 2, Hops: 3, Seed: 1})
	for _, plan := range plans {
		for _, v := range plan.Visits {
			if v.HomeID != HomeID(0) {
				t.Fatalf("single-home roam visited %s", v.HomeID)
			}
		}
	}
}
