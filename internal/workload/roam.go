package workload

import (
	"fmt"
	"math/rand"
)

// Roaming load generation: the workload behind the session-resilience
// experiments. A device carried through the house (or between houses)
// connects to whatever home hub is nearby, interacts, loses the link,
// and reconnects somewhere else — the paper's "control appliances in a
// uniform way at any places" exercised as a failure-path storm.

// RoamConfig sizes a roaming workload.
type RoamConfig struct {
	// Homes is the number of hub-hosted households the devices hop
	// across (M).
	Homes int
	// Devices is the number of roaming interaction devices.
	Devices int
	// Hops is the number of visits each device makes (default 4). Each
	// hop after the first moves to a different home than the previous
	// visit, so every hop crosses a disconnect/reconnect boundary.
	Hops int
	// StepsPerVisit is the scripted interaction length at each stop
	// (default 6 — a quick adjustment, not a full session).
	StepsPerVisit int
	// Seed makes the hop sequences and scripts deterministic.
	Seed int64
}

// RoamVisit is one stop of a roaming device: a home and the interaction
// performed there.
type RoamVisit struct {
	// HomeID is the hub routing key of the visited home.
	HomeID string
	// Script is the interaction performed while connected.
	Script Script
}

// RoamPlan is one device's full itinerary.
type RoamPlan struct {
	// DeviceID is unique across the workload ("roam-00", "roam-01", …).
	DeviceID string
	// Visits is the ordered hop sequence.
	Visits []RoamVisit
}

// Steps counts the scripted interactions across all visits.
func (p RoamPlan) Steps() int {
	n := 0
	for _, v := range p.Visits {
		n += len(v.Script)
	}
	return n
}

// Roam expands a config into per-device hop itineraries. Consecutive
// visits always differ in home (when Homes > 1), so every hop exercises
// the disconnect/reconnect path; scripts are seeded per device and hop.
func Roam(cfg RoamConfig) []RoamPlan {
	if cfg.Homes <= 0 {
		cfg.Homes = 1
	}
	if cfg.Hops <= 0 {
		cfg.Hops = 4
	}
	if cfg.StepsPerVisit <= 0 {
		cfg.StepsPerVisit = 6
	}
	out := make([]RoamPlan, 0, cfg.Devices)
	for d := 0; d < cfg.Devices; d++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(d)*7_919))
		plan := RoamPlan{DeviceID: fmt.Sprintf("roam-%02d", d)}
		cur := rng.Intn(cfg.Homes)
		for hop := 0; hop < cfg.Hops; hop++ {
			if hop > 0 && cfg.Homes > 1 {
				// Hop somewhere else: draw from the other M-1 homes.
				next := rng.Intn(cfg.Homes - 1)
				if next >= cur {
					next++
				}
				cur = next
			}
			scriptSeed := cfg.Seed + int64(d)*1_000_003 + int64(hop)*10_007
			plan.Visits = append(plan.Visits, RoamVisit{
				HomeID: HomeID(cur),
				Script: RandomSession(cfg.StepsPerVisit, scriptSeed),
			})
		}
		out = append(out, plan)
	}
	return out
}
