package workload

import (
	"testing"

	"uniint/internal/toolkit"
)

func TestUISceneBuildsRequestedWidgets(t *testing.T) {
	s := NewUIScene(16)
	if got := len(s.Toggles) + len(s.Labels) + len(s.Sliders) + len(s.Progress); got != 16 {
		t.Fatalf("mutable widgets = %d, want 16", got)
	}
	if s.NumFlappy != 16 {
		t.Fatalf("NumFlappy = %d", s.NumFlappy)
	}
	d := toolkit.NewDisplay(320, 240)
	d.SetRoot(s.Root)
	if rects := d.Render(); len(rects) == 0 {
		t.Fatal("scene did not damage the display")
	}
	// Minimum scene clamps to one widget.
	if tiny := NewUIScene(0); tiny.NumFlappy != 1 {
		t.Fatalf("clamped scene = %d widgets", tiny.NumFlappy)
	}
}

func TestUIChurnDeterministicAndInRange(t *testing.T) {
	a := NewUIChurn(4, 16, 11)
	b := NewUIChurn(4, 16, 11)
	for i := 0; i < 500; i++ {
		sa, sb := a.Next(), b.Next()
		if sa != sb {
			t.Fatalf("step %d: streams diverge: %+v vs %+v", i, sa, sb)
		}
		if sa.Home < 0 || sa.Home >= 4 {
			t.Fatalf("home out of range: %+v", sa)
		}
		if sa.Value < 0 || sa.Value > 100 {
			t.Fatalf("value out of range: %+v", sa)
		}
	}
}

func TestUIChurnEchoesAreNoops(t *testing.T) {
	scenes := make([]*UIScene, 3)
	displays := make([]*toolkit.Display, 3)
	for i := range scenes {
		scenes[i] = NewUIScene(16)
		displays[i] = toolkit.NewDisplay(320, 240)
		displays[i].SetRoot(scenes[i].Root)
		displays[i].Render()
	}
	c := NewUIChurn(3, 16, 5)
	echoes, applied := 0, 0
	for i := 0; i < 800; i++ {
		st := c.Next()
		d := displays[st.Home]
		d.Render() // drain before, so we can attribute damage to this step
		d.Update(func() {
			if !c.Apply(scenes[st.Home], st) {
				t.Fatalf("step %d: no widget for %+v", i, st)
			}
		})
		if st.Echo {
			echoes++
			if d.Dirty() {
				t.Fatalf("echo step %d (%+v) posted damage", i, st)
			}
		} else {
			applied++
		}
	}
	if echoes == 0 {
		t.Fatal("stream produced no echo steps in 800 draws")
	}
	if applied == 0 {
		t.Fatal("stream produced no real steps")
	}
}

func TestUIChurnApplyOutOfRange(t *testing.T) {
	s := NewUIScene(4) // one widget of each kind
	c := NewUIChurn(1, 32, 1)
	// A stream built for a larger scene reports false rather than panicking.
	miss := false
	for i := 0; i < 200; i++ {
		st := c.Next()
		if !c.Apply(s, st) {
			miss = true
		}
	}
	if !miss {
		t.Fatal("expected some out-of-range slots against the small scene")
	}
}

// TestUIChurnNonEchoStepsAlwaysChangeState: a non-echo step must mutate
// its widget — otherwise benchmarks driving the stream measure no-ops.
func TestUIChurnNonEchoStepsAlwaysChangeState(t *testing.T) {
	scene := NewUIScene(16)
	d := toolkit.NewDisplay(320, 240)
	d.SetRoot(scene.Root)
	d.Render()

	c := NewUIChurn(1, 16, 3)
	for i := 0; i < 1000; i++ {
		st := c.Next()
		if st.Echo {
			continue
		}
		d.Render() // drain, so damage is attributable to this step
		d.Update(func() {
			if !c.Apply(scene, st) {
				t.Fatalf("step %d: no widget for %+v", i, st)
			}
		})
		if !d.Dirty() {
			t.Fatalf("non-echo step %d (%+v) was a no-op", i, st)
		}
	}
}
