// Package workload provides the deterministic content generators and
// scripted interaction sessions behind the experiment suite (DESIGN.md
// §4): frame classes for encoding benchmarks, damage patterns, and the
// canonical 30-interaction session replayed against each output device for
// the bandwidth experiment E8.
package workload

import (
	"math/rand"

	"uniint/internal/gfx"
)

// GUIFrame paints a control-panel-like frame: flat fills, bevels and text
// — the content class the universal interaction protocol actually carries.
func GUIFrame(w, h int) *gfx.Framebuffer {
	f := gfx.NewFramebuffer(w, h)
	f.Clear(gfx.LightGray)
	f.Fill(gfx.R(0, 0, w, 18), gfx.Navy)
	gfx.DrawText(f, 6, 5, "Home Appliance Control Panel", gfx.White)
	cols := max(w/160, 1)
	for i := 0; i < cols*3; i++ {
		x := 8 + (i%cols)*(w/cols)
		y := 28 + (i/cols)*52
		panel := gfx.R(x, y, w/cols-16, 44)
		f.Fill(panel, gfx.Gray)
		f.Bevel(panel, false)
		gfx.DrawText(f, panel.X+6, panel.Y+6, "Power  Volume  Play", gfx.Black)
		bar := gfx.R(panel.X+6, panel.Y+24, panel.W-12, 10)
		f.Fill(bar, gfx.White)
		f.Fill(gfx.R(bar.X, bar.Y, bar.W*(i+1)/(cols*3+1), bar.H), gfx.Blue)
		f.Border(bar, gfx.DarkGray)
	}
	return f
}

// NoiseFrame paints seeded uniform noise: the incompressible worst case
// for the run-length encodings.
func NoiseFrame(w, h int, seed int64) *gfx.Framebuffer {
	rng := rand.New(rand.NewSource(seed))
	f := gfx.NewFramebuffer(w, h)
	pix := f.Pix()
	for i := range pix {
		pix[i] = gfx.Color(rng.Uint32() & 0xFFFFFF)
	}
	return f
}

// TextFrame paints dense terminal-style text: many small high-contrast
// glyphs, the hardest realistic content for tile encodings.
func TextFrame(w, h int, seed int64) *gfx.Framebuffer {
	rng := rand.New(rand.NewSource(seed))
	f := gfx.NewFramebuffer(w, h)
	f.Clear(gfx.Black)
	line := make([]byte, w/gfx.GlyphW)
	for y := 0; y+gfx.GlyphH <= h; y += gfx.GlyphH {
		for i := range line {
			line[i] = byte(0x21 + rng.Intn(0x5D))
		}
		gfx.DrawText(f, 0, y, string(line), gfx.Green)
	}
	return f
}

// FlatFrame paints a single solid color: the best case for every
// encoding.
func FlatFrame(w, h int) *gfx.Framebuffer {
	f := gfx.NewFramebuffer(w, h)
	f.Clear(gfx.Blue)
	return f
}

// Frames returns the named content classes at the given geometry.
func Frames(w, h int) map[string]*gfx.Framebuffer {
	return map[string]*gfx.Framebuffer{
		"flat":  FlatFrame(w, h),
		"gui":   GUIFrame(w, h),
		"text":  TextFrame(w, h, 11),
		"noise": NoiseFrame(w, h, 42),
	}
}

// WidgetDamage generates n widget-sized dirty rectangles inside bounds —
// the damage pattern of incremental updates (button repaints, slider
// knobs), as opposed to full-frame refreshes.
func WidgetDamage(bounds gfx.Rect, n int, seed int64) []gfx.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]gfx.Rect, 0, n)
	for i := 0; i < n; i++ {
		w := 40 + rng.Intn(80)
		h := 12 + rng.Intn(20)
		x := bounds.X + rng.Intn(max(bounds.W-w, 1))
		y := bounds.Y + rng.Intn(max(bounds.H-h, 1))
		out = append(out, gfx.R(x, y, w, h))
	}
	return out
}

// Step is one scripted user interaction, dispatched by device class.
type Step struct {
	// Device selects the input class: "pda", "phone", "voice", "remote",
	// "gesture".
	Device string
	// Action is device-specific: "tap" (pda, X/Y), "key" (phone, Arg),
	// "say" (voice, Arg), "press" (remote, Arg), "stroke" (gesture, Arg).
	Action string
	Arg    string
	X, Y   int
}

// Script is an ordered interaction session.
type Script []Step

// StandardSession is the canonical 30-interaction session used by
// experiment E8: a realistic mix of focus navigation, activations and
// value adjustments, expressed for a keypad-class device (every step uses
// the phone so the same script is comparable across output devices).
func StandardSession() Script {
	var s Script
	add := func(key string, times int) {
		for i := 0; i < times; i++ {
			s = append(s, Step{Device: "phone", Action: "key", Arg: key})
		}
	}
	add("#", 3)  // tab to the third control
	add("ok", 1) // activate
	add("6", 5)  // nudge a slider right five times
	add("#", 2)  // move on
	add("ok", 2) // toggle twice
	add("4", 3)  // slider left
	add("#", 4)  // traverse
	add("ok", 1) // activate
	add("2", 4)  // focus up
	add("ok", 1) // activate
	add("6", 2)  // adjust
	add("ok", 2) // two more activations
	return s     // 30 steps total
}

// Len returns the number of steps (sanity helper for tests).
func (s Script) Len() int { return len(s) }
