package workload

import (
	"fmt"
	"math/rand"
)

// Multi-home load generation: the workload behind the hub experiments.
// A MultiHomeConfig describes M homes × K devices; MultiHome expands it
// into per-home, per-device scripted interaction sessions, deterministic
// under a seed so benchmark runs are reproducible.

// MultiHomeConfig sizes a multi-home workload.
type MultiHomeConfig struct {
	// Homes is the number of households (M).
	Homes int
	// DevicesPerHome is the number of interaction devices per home (K,
	// default 1).
	DevicesPerHome int
	// StepsPerDevice is the scripted session length per device
	// (default 30, the canonical session length).
	StepsPerDevice int
	// Seed makes the generated scripts deterministic. Homes and devices
	// get distinct derived seeds so no two scripts are identical.
	Seed int64
}

// DeviceLoad is one device's scripted session within a home.
type DeviceLoad struct {
	// DeviceID is unique within the home ("dev-00", "dev-01", …).
	DeviceID string
	// Script is the device's interaction session.
	Script Script
}

// HomeLoad is one home's share of a multi-home workload.
type HomeLoad struct {
	// HomeID is the hub routing key.
	HomeID string
	// Devices holds one scripted session per interaction device.
	Devices []DeviceLoad
}

// Steps counts the scripted interactions across all devices.
func (h HomeLoad) Steps() int {
	n := 0
	for _, d := range h.Devices {
		n += len(d.Script)
	}
	return n
}

// HomeID formats the canonical hub home ID for index i.
func HomeID(i int) string { return fmt.Sprintf("home-%04d", i) }

// MultiHome expands a config into per-home device scripts.
func MultiHome(cfg MultiHomeConfig) []HomeLoad {
	if cfg.DevicesPerHome <= 0 {
		cfg.DevicesPerHome = 1
	}
	if cfg.StepsPerDevice <= 0 {
		cfg.StepsPerDevice = 30
	}
	out := make([]HomeLoad, 0, cfg.Homes)
	for m := 0; m < cfg.Homes; m++ {
		home := HomeLoad{HomeID: HomeID(m)}
		for k := 0; k < cfg.DevicesPerHome; k++ {
			seed := cfg.Seed + int64(m)*1_000_003 + int64(k)*10_007
			home.Devices = append(home.Devices, DeviceLoad{
				DeviceID: fmt.Sprintf("dev-%02d", k),
				Script:   RandomSession(cfg.StepsPerDevice, seed),
			})
		}
		out = append(out, home)
	}
	return out
}

// sessionKeys is the weighted key mix of a realistic control-panel
// session: mostly focus traversal and activation, with value nudges.
var sessionKeys = []struct {
	key    string
	weight int
}{
	{"#", 30},  // focus next
	{"ok", 25}, // activate
	{"6", 15},  // value right
	{"4", 10},  // value left
	{"2", 10},  // focus up
	{"8", 10},  // focus down
}

// RandomSession generates a seeded phone-keypad interaction session of
// the given length, drawn from the weighted key mix. Every step uses the
// phone class so scripts replay identically across output devices, like
// StandardSession.
func RandomSession(steps int, seed int64) Script {
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for _, k := range sessionKeys {
		total += k.weight
	}
	s := make(Script, 0, steps)
	for i := 0; i < steps; i++ {
		n := rng.Intn(total)
		for _, k := range sessionKeys {
			if n < k.weight {
				s = append(s, Step{Device: "phone", Action: "key", Arg: k.key})
				break
			}
			n -= k.weight
		}
	}
	return s
}
