package workload

import (
	"fmt"
	"math/rand"

	"uniint/internal/gfx"
)

// Screen churn: the output-side stress workload for the update pipeline.
// A churn scenario is a fixed set of mutating screen regions ("spots" —
// tickers, meters, clocks on a busy control panel) plus a seeded step
// stream; each step repaints one spot with fresh content. Replaying the
// stream as fast as the pipeline drains it exercises damage tracking,
// adaptive encoding and backpressure coalescing with a realistic damage
// shape (many small, hot rectangles instead of full-frame refreshes).

// ChurnSpot is one mutating region of a churn scenario.
type ChurnSpot struct {
	// Rect is the spot's screen region.
	Rect gfx.Rect
	// Kind selects the painted content: "meter" (a filling bar),
	// "ticker" (high-contrast text-like stripes) or "blink" (a flat
	// fill alternating colors).
	Kind string
}

// ChurnStep is one scripted mutation: repaint spot #Spot with value Value
// (the meaning of the value depends on the spot's kind; for label-backed
// scenarios use Text).
type ChurnStep struct {
	Spot  int
	Value int
	// Text is a rendered form of Value for widget-backed replays
	// (label.SetText and friends).
	Text string
}

// ScreenChurn is a deterministic screen-churn scenario.
type ScreenChurn struct {
	Spots []ChurnSpot

	rng  *rand.Rand
	step int
}

// NewScreenChurn builds a scenario with n spots laid out inside bounds,
// deterministic under seed.
func NewScreenChurn(bounds gfx.Rect, n int, seed int64) *ScreenChurn {
	if n < 1 {
		n = 1
	}
	rng := rand.New(rand.NewSource(seed))
	kinds := []string{"meter", "ticker", "blink"}
	c := &ScreenChurn{rng: rng}
	for _, r := range WidgetDamage(bounds, n, seed+1) {
		c.Spots = append(c.Spots, ChurnSpot{
			Rect: r,
			Kind: kinds[rng.Intn(len(kinds))],
		})
	}
	return c
}

// Next returns the next scripted mutation.
func (c *ScreenChurn) Next() ChurnStep {
	spot := c.rng.Intn(len(c.Spots))
	v := c.step
	c.step++
	return ChurnStep{
		Spot:  spot,
		Value: v,
		Text:  fmt.Sprintf("%s %04d", c.Spots[spot].Kind, v%10000),
	}
}

// Apply paints one step directly into fb and returns the damaged rect —
// the framebuffer-level replay used when no widget toolkit is in the
// loop (encoder and hub benchmarks).
func (c *ScreenChurn) Apply(fb *gfx.Framebuffer, st ChurnStep) gfx.Rect {
	s := c.Spots[st.Spot]
	r := s.Rect.Intersect(fb.Bounds())
	if r.Empty() {
		return r
	}
	switch s.Kind {
	case "meter":
		fb.Fill(r, gfx.White)
		fill := r
		fill.W = r.W * (st.Value%100 + 1) / 100
		fb.Fill(fill, gfx.Blue)
		fb.Border(r, gfx.DarkGray)
	case "ticker":
		fb.Fill(r, gfx.Black)
		// High-contrast vertical stripes shifting per step: text-like
		// content without a font dependency.
		for x := r.X + st.Value%3; x < r.MaxX(); x += 3 {
			fb.VLine(x, r.Y, r.H, gfx.Green)
		}
	default: // blink
		colors := []gfx.Color{gfx.Red, gfx.Yellow, gfx.Navy, gfx.LightGray}
		fb.Fill(r, colors[st.Value%len(colors)])
	}
	return r
}

// Run replays steps mutations into fb, invoking flush after each with the
// damaged rect. It returns the damaged rects' total area — a checksum-ish
// figure for tests and reports.
func (c *ScreenChurn) Run(fb *gfx.Framebuffer, steps int, flush func(gfx.Rect)) int {
	area := 0
	for i := 0; i < steps; i++ {
		r := c.Apply(fb, c.Next())
		area += r.Area()
		if flush != nil {
			flush(r)
		}
	}
	return area
}
