package workload

import (
	"testing"

	"uniint/internal/gfx"
)

func TestScreenChurnDeterministic(t *testing.T) {
	bounds := gfx.R(0, 0, 320, 240)
	a := NewScreenChurn(bounds, 8, 42)
	b := NewScreenChurn(bounds, 8, 42)
	if len(a.Spots) != 8 || len(b.Spots) != 8 {
		t.Fatalf("spots = %d/%d, want 8", len(a.Spots), len(b.Spots))
	}
	for i := 0; i < 100; i++ {
		sa, sb := a.Next(), b.Next()
		if sa != sb {
			t.Fatalf("step %d diverged: %+v vs %+v", i, sa, sb)
		}
	}
}

func TestScreenChurnApplyDamagesOnlySpot(t *testing.T) {
	bounds := gfx.R(0, 0, 160, 120)
	c := NewScreenChurn(bounds, 4, 7)
	fb := gfx.NewFramebuffer(160, 120)
	ref := fb.Clone()
	st := c.Next()
	r := c.Apply(fb, st)
	if r.Empty() {
		t.Fatal("apply damaged nothing")
	}
	if !c.Spots[st.Spot].Rect.Intersect(bounds).ContainsRect(r) {
		t.Errorf("damage %+v outside spot %+v", r, c.Spots[st.Spot].Rect)
	}
	diff := fb.DiffRect(ref)
	if !r.ContainsRect(diff) {
		t.Errorf("pixels changed outside reported damage: diff %+v, reported %+v", diff, r)
	}
}

func TestScreenChurnRun(t *testing.T) {
	c := NewScreenChurn(gfx.R(0, 0, 160, 120), 4, 1)
	fb := gfx.NewFramebuffer(160, 120)
	flushes := 0
	area := c.Run(fb, 25, func(r gfx.Rect) {
		if r.Empty() {
			t.Error("flush with empty rect")
		}
		flushes++
	})
	if flushes != 25 {
		t.Errorf("flushes = %d, want 25", flushes)
	}
	if area <= 0 {
		t.Error("no damage area accumulated")
	}
}
