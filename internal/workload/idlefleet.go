package workload

import (
	"net"

	"uniint/internal/netsim"
	"uniint/internal/rfb"
)

// Idle fleet: the memory- and scheduling-footprint workload. The paper's
// deployment shape — every appliance-filled home reachable at all times,
// almost every session quiet — means a hub's cost is dominated by what an
// IDLE session holds, not by what an active one does. IdleFleet builds
// that population: n sessions that complete the handshake over
// goroutine-free event pipes and then go silent, so footprint benchmarks
// and leak tests can measure bytes/session and goroutines/session with
// nothing else moving.

// IdleFleet attaches n idle edge sessions through attach (typically
// Server.AttachEdge or Hub.AttachEdge wrapped to pick a home). Each
// session's client half is fully scripted — hello pipelined before the
// attach, ServerInit drained after — so the fleet adds zero client
// goroutines. The returned client conns keep the sessions alive; close
// them to disconnect (sessions then park or retire per server policy).
// On error the already-attached sessions are closed before returning.
func IdleFleet(n int, attach func(conn net.Conn) error) ([]net.Conn, error) {
	clients := make([]net.Conn, 0, n)
	var scratch [512]byte
	for i := 0; i < n; i++ {
		client, server := netsim.EventPipe()
		// Pipelined client hello: the server-side handshake inside attach
		// never blocks waiting on the peer.
		if _, err := client.Write(rfb.ClientHello("")); err != nil {
			client.Close()
			closeAll(clients)
			return nil, err
		}
		if err := attach(server); err != nil {
			client.Close()
			closeAll(clients)
			return nil, err
		}
		// Discard the server's handshake output so idle buffers stay empty.
		for {
			m, err := client.ReadAvailable(scratch[:])
			if m == 0 || err != nil {
				break
			}
		}
		clients = append(clients, client)
	}
	return clients, nil
}

func closeAll(conns []net.Conn) {
	for _, c := range conns {
		c.Close()
	}
}
