package workload

import "testing"

// TestInputStormDeterministic: identical seeds produce identical streams.
func TestInputStormDeterministic(t *testing.T) {
	a := NewInputStorm(4, 320, 240, 16, 11)
	b := NewInputStorm(4, 320, 240, 16, 11)
	for i := 0; i < 5000; i++ {
		if sa, sb := a.Next(), b.Next(); sa != sb {
			t.Fatalf("step %d diverged: %+v vs %+v", i, sa, sb)
		}
	}
}

// TestInputStormShape checks the stream's structural invariants: presses
// and releases alternate per home, moves carry the current drag mask,
// key taps pair down/up, positions stay on the panel, and moves dominate
// (it is a flood workload).
func TestInputStormShape(t *testing.T) {
	const homes = 3
	s := NewInputStorm(homes, 320, 240, 8, 7)
	down := make([]bool, homes)
	keyHeld := make([]bool, homes)
	counts := map[InputKind]int{}
	for i := 0; i < 20000; i++ {
		st := s.Next()
		counts[st.Kind]++
		if st.Home < 0 || st.Home >= homes {
			t.Fatalf("step %d: home %d out of range", i, st.Home)
		}
		switch st.Kind {
		case InputPress:
			if down[st.Home] {
				t.Fatalf("step %d: double press", i)
			}
			down[st.Home] = true
			if st.Buttons != 1 {
				t.Fatalf("step %d: press mask %d", i, st.Buttons)
			}
		case InputRelease:
			if !down[st.Home] {
				t.Fatalf("step %d: release without press", i)
			}
			down[st.Home] = false
			if st.Buttons != 0 {
				t.Fatalf("step %d: release mask %d", i, st.Buttons)
			}
		case InputMove:
			want := uint8(0)
			if down[st.Home] {
				want = 1
			}
			if st.Buttons != want {
				t.Fatalf("step %d: move mask %d during down=%v", i, st.Buttons, down[st.Home])
			}
			if st.X < 0 || st.X >= 320 || st.Y < 0 || st.Y >= 240 {
				t.Fatalf("step %d: position (%d,%d) off panel", i, st.X, st.Y)
			}
		case InputKey:
			if st.Down == keyHeld[st.Home] {
				t.Fatalf("step %d: key %v while held=%v", i, st.Down, keyHeld[st.Home])
			}
			keyHeld[st.Home] = st.Down
		}
	}
	if counts[InputMove] < 10*counts[InputPress] {
		t.Errorf("not a flood: %d moves vs %d presses", counts[InputMove], counts[InputPress])
	}
	if counts[InputPress] == 0 || counts[InputKey] == 0 {
		t.Errorf("missing semantic traffic: %v", counts)
	}
}
