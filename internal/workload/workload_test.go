package workload

import (
	"testing"

	"uniint/internal/gfx"
)

func TestFrameClassesGeometryAndDeterminism(t *testing.T) {
	for name, f := range Frames(160, 120) {
		if f.W() != 160 || f.H() != 120 {
			t.Errorf("%s geometry = %dx%d", name, f.W(), f.H())
		}
	}
	// Seeded generators are reproducible.
	if !NoiseFrame(64, 64, 7).Equal(NoiseFrame(64, 64, 7)) {
		t.Error("noise frame not deterministic")
	}
	if NoiseFrame(64, 64, 7).Equal(NoiseFrame(64, 64, 8)) {
		t.Error("noise seeds collide")
	}
	if !TextFrame(64, 64, 3).Equal(TextFrame(64, 64, 3)) {
		t.Error("text frame not deterministic")
	}
}

func TestFrameClassesHaveExpectedComplexity(t *testing.T) {
	distinct := func(f *gfx.Framebuffer) int {
		seen := map[gfx.Color]bool{}
		for _, c := range f.Pix() {
			seen[c] = true
		}
		return len(seen)
	}
	flat := distinct(FlatFrame(160, 120))
	gui := distinct(GUIFrame(160, 120))
	noise := distinct(NoiseFrame(160, 120, 1))
	if flat != 1 {
		t.Errorf("flat colors = %d", flat)
	}
	if gui <= flat || gui >= 1000 {
		t.Errorf("gui colors = %d (should be few but >1)", gui)
	}
	if noise < 10000 {
		t.Errorf("noise colors = %d (should be ~unique)", noise)
	}
}

func TestWidgetDamageInBounds(t *testing.T) {
	bounds := gfx.R(0, 0, 640, 480)
	rects := WidgetDamage(bounds, 50, 9)
	if len(rects) != 50 {
		t.Fatalf("rects = %d", len(rects))
	}
	for _, r := range rects {
		if !bounds.ContainsRect(r) {
			t.Errorf("damage %+v escapes bounds", r)
		}
		if r.Area() == 0 || r.Area() > 120*32 {
			t.Errorf("damage %+v is not widget-sized", r)
		}
	}
}

func TestStandardSessionShape(t *testing.T) {
	s := StandardSession()
	if s.Len() != 30 {
		t.Fatalf("session length = %d, want 30", s.Len())
	}
	for i, st := range s {
		if st.Device != "phone" || st.Action != "key" || st.Arg == "" {
			t.Errorf("step %d malformed: %+v", i, st)
		}
	}
}

func TestAsciiRendering(t *testing.T) {
	f := GUIFrame(160, 120)
	art := gfx.Ascii(f, 40)
	if len(art) == 0 {
		t.Fatal("empty ascii art")
	}
	lines := 0
	for _, c := range art {
		if c == '\n' {
			lines++
		}
	}
	if lines < 5 || lines > 40 {
		t.Errorf("ascii art lines = %d", lines)
	}
	b := gfx.NewBitmap(16, 8)
	b.Set(0, 0, true)
	b.Set(0, 1, true)
	ba := gfx.AsciiBitmap(b)
	if ba[0] != '#' {
		t.Errorf("bitmap art starts with %q", ba[0])
	}
}
