package workload

import "testing"

func TestMultiHomeShape(t *testing.T) {
	loads := MultiHome(MultiHomeConfig{Homes: 8, DevicesPerHome: 3, StepsPerDevice: 12, Seed: 7})
	if len(loads) != 8 {
		t.Fatalf("homes = %d, want 8", len(loads))
	}
	seen := map[string]bool{}
	for _, h := range loads {
		if seen[h.HomeID] {
			t.Fatalf("duplicate home id %s", h.HomeID)
		}
		seen[h.HomeID] = true
		if len(h.Devices) != 3 {
			t.Fatalf("%s has %d devices, want 3", h.HomeID, len(h.Devices))
		}
		if h.Steps() != 3*12 {
			t.Fatalf("%s steps = %d, want 36", h.HomeID, h.Steps())
		}
		for _, d := range h.Devices {
			if len(d.Script) != 12 {
				t.Fatalf("%s/%s script len = %d, want 12", h.HomeID, d.DeviceID, len(d.Script))
			}
			for _, st := range d.Script {
				if st.Device != "phone" || st.Action != "key" || st.Arg == "" {
					t.Fatalf("bad step %+v", st)
				}
			}
		}
	}
}

func TestMultiHomeDefaults(t *testing.T) {
	loads := MultiHome(MultiHomeConfig{Homes: 2})
	if len(loads) != 2 || len(loads[0].Devices) != 1 || len(loads[0].Devices[0].Script) != 30 {
		t.Fatalf("defaults not applied: %+v", loads)
	}
}

func TestMultiHomeDeterministicAndDistinct(t *testing.T) {
	a := MultiHome(MultiHomeConfig{Homes: 4, DevicesPerHome: 2, StepsPerDevice: 20, Seed: 42})
	b := MultiHome(MultiHomeConfig{Homes: 4, DevicesPerHome: 2, StepsPerDevice: 20, Seed: 42})
	for i := range a {
		for j := range a[i].Devices {
			for k := range a[i].Devices[j].Script {
				if a[i].Devices[j].Script[k] != b[i].Devices[j].Script[k] {
					t.Fatal("same seed produced different scripts")
				}
			}
		}
	}
	// Distinct homes should not replay the identical script (seeds are
	// derived per home/device).
	same := true
	for k := range a[0].Devices[0].Script {
		if a[0].Devices[0].Script[k] != a[1].Devices[0].Script[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two homes generated identical scripts")
	}
}

func TestHomeIDFormat(t *testing.T) {
	if HomeID(7) != "home-0007" || HomeID(123) != "home-0123" {
		t.Fatalf("HomeID format: %s %s", HomeID(7), HomeID(123))
	}
}
