package workload

import (
	"fmt"
	"math/rand"

	"uniint/internal/toolkit"
)

// UI churn: the widget-level stress workload for the damage-clipped
// renderer. Where ScreenChurn mutates framebuffer pixels directly, UIChurn
// flips real toolkit widgets — toggles, labels, sliders, progress bars —
// across many homes' displays, driving the full widget → damage → clipped
// repaint → encode pipeline with the damage shape a hub full of busy
// control panels produces. The step stream deliberately includes no-op
// echoes (an appliance re-reporting an unchanged state), which a correct
// pipeline must swallow without posting damage.

// UIScene is one home's control-panel widget tree plus handles to its
// mutable widgets, in a fixed round-robin order (toggle, label, slider,
// progress, toggle, …).
type UIScene struct {
	Root      *toolkit.Panel
	Toggles   []*toolkit.Toggle
	Labels    []*toolkit.Label
	Sliders   []*toolkit.Slider
	Progress  []*toolkit.ProgressBar
	NumFlappy int // total mutable widgets
}

// NewUIScene builds a deterministic control-panel tree with n mutable
// widgets grouped into titled appliance panels (plus one static label per
// panel, as real composed GUIs have). Attach it with Display.SetRoot.
func NewUIScene(n int) *UIScene {
	if n < 1 {
		n = 1
	}
	s := &UIScene{Root: toolkit.NewPanel(toolkit.Grid{Cols: 2, Gap: 4, Padding: 6})}
	var panel *toolkit.Panel
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			panel = toolkit.NewPanel(toolkit.VBox{Gap: 2, Padding: 4})
			panel.SetTitle(fmt.Sprintf("Appliance %d", i/4))
			panel.Add(toolkit.NewLabel("status: ready"))
			s.Root.Add(panel)
		}
		switch i % 4 {
		case 0:
			w := toolkit.NewToggle(fmt.Sprintf("Power %d", i), false, nil)
			s.Toggles = append(s.Toggles, w)
			panel.Add(w)
		case 1:
			w := toolkit.NewLabel(fmt.Sprintf("ticker %d: ----", i))
			s.Labels = append(s.Labels, w)
			panel.Add(w)
		case 2:
			w := toolkit.NewSlider(fmt.Sprintf("Level %d", i), 0, 100, 50, nil)
			s.Sliders = append(s.Sliders, w)
			panel.Add(w)
		default:
			w := toolkit.NewProgressBar(0)
			s.Progress = append(s.Progress, w)
			panel.Add(w)
		}
	}
	s.NumFlappy = n
	return s
}

// UIStepKind selects which widget family a step mutates.
type UIStepKind int

// Step kinds.
const (
	UIToggle UIStepKind = iota
	UILabel
	UISlider
	UIProgress
)

// UIStep is one scripted widget mutation in one home.
type UIStep struct {
	Home  int        // home index in [0, Homes)
	Index int        // widget index within the kind's slice (pre-reduced)
	Kind  UIStepKind // widget family
	On    bool       // toggle target state
	Text  string     // label text
	Value int        // slider/progress value
	// Echo marks a no-op repeat of the previous state for this widget —
	// the appliance state echo a correct pipeline swallows damage-free.
	Echo bool
}

// UIChurn generates a deterministic stream of widget flips spread across M
// homes × N widgets. Roughly one step in eight is a no-op echo.
type UIChurn struct {
	Homes   int
	Widgets int // mutable widgets per home

	rng   *rand.Rand
	step  int
	last  map[[2]int]UIStep // last step per (home, widget slot)
	texts map[int]string    // interned ticker strings, keyed by their seed
}

// NewUIChurn builds a churn stream over homes × widgetsPerHome widgets,
// deterministic under seed.
func NewUIChurn(homes, widgetsPerHome int, seed int64) *UIChurn {
	if homes < 1 {
		homes = 1
	}
	if widgetsPerHome < 1 {
		widgetsPerHome = 1
	}
	return &UIChurn{
		Homes:   homes,
		Widgets: widgetsPerHome,
		rng:     rand.New(rand.NewSource(seed)),
		last:    make(map[[2]int]UIStep),
		texts:   make(map[int]string),
	}
}

// Next returns the next scripted mutation.
func (c *UIChurn) Next() UIStep {
	home := c.rng.Intn(c.Homes)
	slot := c.rng.Intn(c.Widgets)
	key := [2]int{home, slot}
	if prev, ok := c.last[key]; ok && c.rng.Intn(8) == 0 {
		prev.Echo = true
		return prev // re-deliver the unchanged state
	}
	v := c.step
	c.step++
	st := UIStep{
		Home:  home,
		Index: slot / 4,
		Kind:  UIStepKind(slot % 4),
		On:    v%2 == 0,
		Value: v % 101,
	}
	// A non-echo step must actually change the widget, or the benchmarks
	// built on this stream silently measure no-ops: flip relative to the
	// slot's last applied state rather than the global step parity.
	if prev, ok := c.last[key]; ok {
		st.On = !prev.On
		if st.Value == prev.Value {
			st.Value = (st.Value + 1) % 101
		}
	} else {
		// First touch of this slot: diverge from NewUIScene's initial
		// widget state (toggles off, sliders at 50, progress at 0).
		st.On = true
		switch st.Kind {
		case UISlider:
			if st.Value == 50 {
				st.Value = 51
			}
		case UIProgress:
			if st.Value == 0 {
				st.Value = 1
			}
		}
	}
	// Intern the ticker text: the key space is small (value×home×slot),
	// so steady-state benchmark loops built on this stream reuse strings
	// instead of charging a Sprintf allocation to the measured pipeline.
	tk := 97*st.Value + home*7 + slot
	text, ok := c.texts[tk]
	if !ok {
		text = fmt.Sprintf("ticker %04d", tk)
		c.texts[tk] = text
	}
	st.Text = text
	c.last[key] = st
	return st
}

// Apply mutates the scene's widget named by st. Callers own the display
// lock (wrap in Display.Update). It returns false when the scene has no
// widget in that slot (smaller scene than the stream was built for).
func (c *UIChurn) Apply(s *UIScene, st UIStep) bool {
	switch st.Kind {
	case UIToggle:
		if st.Index >= len(s.Toggles) {
			return false
		}
		s.Toggles[st.Index].SetOn(st.On)
	case UILabel:
		if st.Index >= len(s.Labels) {
			return false
		}
		s.Labels[st.Index].SetText(st.Text)
	case UISlider:
		if st.Index >= len(s.Sliders) {
			return false
		}
		s.Sliders[st.Index].SetValue(st.Value)
	default:
		if st.Index >= len(s.Progress) {
			return false
		}
		s.Progress[st.Index].SetValue(st.Value)
	}
	return true
}
