package workload

import (
	"reflect"
	"testing"
)

func TestFederationDeterministic(t *testing.T) {
	cfg := FederationConfig{
		Nodes: 3, Homes: 12, Devices: 5, Hops: 6,
		StepsPerVisit: 4, Joins: 2, Drains: 2, Seed: 99,
	}
	a, b := Federation(cfg), Federation(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config+seed produced different plans")
	}
	if len(a.Nodes) != 3 || a.Nodes[0] != NodeID(0) {
		t.Fatalf("initial ring = %v", a.Nodes)
	}
	if len(a.Plans) != 5 {
		t.Fatalf("device plans = %d", len(a.Plans))
	}
	if a.Steps() != 5*6*4 {
		t.Fatalf("Steps() = %d, want %d", a.Steps(), 5*6*4)
	}
}

func TestFederationTopologySchedule(t *testing.T) {
	cfg := FederationConfig{
		Nodes: 2, Homes: 8, Devices: 3, Hops: 5,
		Joins: 1, Drains: 2, Seed: 7,
	}
	plan := Federation(cfg)
	if len(plan.Topology) != 3 {
		t.Fatalf("topology events = %d, want 3", len(plan.Topology))
	}
	members := cfg.Nodes
	joined := map[string]bool{}
	for _, n := range plan.Nodes {
		joined[n] = true
	}
	lastHop := 0
	for i, ev := range plan.Topology {
		if ev.AfterHop < lastHop {
			t.Fatalf("event %d out of order: hop %d after %d", i, ev.AfterHop, lastHop)
		}
		lastHop = ev.AfterHop
		if ev.AfterHop < 1 || ev.AfterHop >= cfg.Hops {
			t.Fatalf("event %d at hop %d, outside (0, %d)", i, ev.AfterHop, cfg.Hops)
		}
		switch ev.Kind {
		case "join":
			if joined[ev.Node] {
				t.Fatalf("event %d joins already-member %s", i, ev.Node)
			}
			joined[ev.Node] = true
			members++
		case "drain":
			if !joined[ev.Node] {
				t.Fatalf("event %d drains non-member %s", i, ev.Node)
			}
			members--
			if members < 1 {
				t.Fatalf("event %d drains the last member", i)
			}
		default:
			t.Fatalf("event %d has kind %q", i, ev.Kind)
		}
	}
}

func TestFederationSharesRoamItineraries(t *testing.T) {
	// Same seed → federation devices walk the identical itinerary a plain
	// roam workload generates, so runs are comparable.
	fed := Federation(FederationConfig{Nodes: 2, Homes: 6, Devices: 4, Hops: 3, StepsPerVisit: 5, Seed: 42})
	roam := Roam(RoamConfig{Homes: 6, Devices: 4, Hops: 3, StepsPerVisit: 5, Seed: 42})
	if !reflect.DeepEqual(fed.Plans, roam) {
		t.Fatal("federation itineraries diverge from the roam generator")
	}
}
