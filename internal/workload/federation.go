package workload

import (
	"fmt"
	"math/rand"
)

// Federation load generation: the workload behind the hub-of-hubs
// experiments. A FederationConfig describes N hub nodes fronting M homes
// while K devices roam — and, interleaved with the roaming, a schedule
// of topology events (node joins, drain-for-deploy evacuations) that
// force the federation's rebalance and live-migration paths while
// sessions are in flight.

// TopologyEvent is one scheduled membership change.
type TopologyEvent struct {
	// AfterHop schedules the event once every device has completed this
	// many hops (0: before any interaction).
	AfterHop int
	// Kind is "join" (the node enters the ring, pulling its rendezvous
	// slice of homes in) or "drain" (the node evacuates every resident
	// home and leaves).
	Kind string
	// Node is the member joining or draining.
	Node string
}

// FederationConfig sizes a federated workload.
type FederationConfig struct {
	// Nodes is the number of hub nodes in the initial ring (N).
	Nodes int
	// Homes is the number of households spread across the ring (M).
	Homes int
	// Devices is the number of roaming interaction devices (K).
	Devices int
	// Hops is the number of visits each device makes (default 4).
	Hops int
	// StepsPerVisit is the scripted interaction length per stop
	// (default 6).
	StepsPerVisit int
	// Joins schedules this many extra nodes joining mid-run (spread
	// evenly over the hop timeline).
	Joins int
	// Drains schedules this many drain-for-deploy evacuations mid-run
	// (round-robin over the initial nodes, spread over the timeline).
	Drains int
	// Seed makes itineraries, scripts, and the event schedule
	// deterministic.
	Seed int64
}

// FederationPlan is the expanded workload: the initial ring membership,
// one roaming itinerary per device, and the topology-event schedule.
type FederationPlan struct {
	// Nodes is the initial ring membership.
	Nodes []string
	// Plans is the per-device roaming itinerary (home IDs shared with
	// the Roam workload, so the same supervisors drive both).
	Plans []RoamPlan
	// Topology is the event schedule, ordered by AfterHop.
	Topology []TopologyEvent
}

// Steps counts scripted interactions across every device.
func (p FederationPlan) Steps() int {
	n := 0
	for _, dp := range p.Plans {
		n += dp.Steps()
	}
	return n
}

// NodeID formats the canonical federation node name for index i
// ("node-00", "node-01", …) — joins continue the sequence past the
// initial ring.
func NodeID(i int) string { return fmt.Sprintf("node-%02d", i) }

// Federation expands a config into a deterministic federated workload.
// Roaming itineraries reuse the Roam generator (same derived seeds, so a
// federation run is comparable to a plain roam run over the same
// config); topology events interleave joins and drains evenly across the
// hop timeline, never draining below one member.
func Federation(cfg FederationConfig) FederationPlan {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Hops <= 0 {
		cfg.Hops = 4
	}
	plan := FederationPlan{
		Plans: Roam(RoamConfig{
			Homes:         cfg.Homes,
			Devices:       cfg.Devices,
			Hops:          cfg.Hops,
			StepsPerVisit: cfg.StepsPerVisit,
			Seed:          cfg.Seed,
		}),
	}
	for i := 0; i < cfg.Nodes; i++ {
		plan.Nodes = append(plan.Nodes, NodeID(i))
	}

	events := cfg.Joins + cfg.Drains
	if events == 0 {
		return plan
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed_fed))
	// Spread events over hops 1..Hops-1 (an event at hop h fires after
	// every device's h-th visit, so each one lands between interaction
	// waves rather than before or after the whole run).
	members := cfg.Nodes
	nextJoin := cfg.Nodes
	drainFrom := 0
	joins, drains := cfg.Joins, cfg.Drains
	for i := 0; i < events; i++ {
		hop := 1 + (i*(cfg.Hops-1))/events
		if hop >= cfg.Hops {
			hop = cfg.Hops - 1
		}
		// Interleave: pick randomly among the remaining event kinds, but
		// never drain the last member.
		drainOK := drains > 0 && members > 1
		doJoin := joins > 0 && (!drainOK || rng.Intn(joins+drains) < joins)
		if doJoin {
			plan.Topology = append(plan.Topology, TopologyEvent{
				AfterHop: hop, Kind: "join", Node: NodeID(nextJoin),
			})
			nextJoin++
			members++
			joins--
		} else if drainOK {
			plan.Topology = append(plan.Topology, TopologyEvent{
				AfterHop: hop, Kind: "drain", Node: NodeID(drainFrom),
			})
			drainFrom++
			members--
			drains--
		}
	}
	return plan
}
