package toolkit

import (
	"testing"

	"uniint/internal/gfx"
)

func TestDisplayAccessors(t *testing.T) {
	d := NewDisplay(120, 80)
	if w, h := d.Size(); w != 120 || h != 80 {
		t.Errorf("size = %dx%d", w, h)
	}
	if d.Root() == nil {
		t.Error("fresh display should have a root panel")
	}
	ran := false
	d.WithFramebuffer(func(fb *gfx.Framebuffer) {
		ran = fb.W() == 120
	})
	if !ran {
		t.Error("WithFramebuffer did not expose the framebuffer")
	}
}

func TestDisplayUpdateFiresDamageHooks(t *testing.T) {
	d := NewDisplay(100, 100)
	lbl := NewLabel("a")
	root := NewPanel(VBox{})
	root.Add(lbl)
	d.SetRoot(root)
	d.Render()

	fired := 0
	d.OnDamage(func() { fired++ })
	d.Update(func() { lbl.SetText("b") })
	if fired != 1 {
		t.Errorf("damage hooks fired %d times", fired)
	}
	if !d.Dirty() {
		t.Error("update should leave the display dirty")
	}
}

func TestFocusWidgetProgrammatic(t *testing.T) {
	d := NewDisplay(100, 100)
	b1 := NewButton("1", nil)
	b2 := NewButton("2", nil)
	root := NewPanel(VBox{})
	root.Add(b1, b2)
	d.SetRoot(root)
	d.FocusWidget(b2)
	if d.Focus() != Widget(b2) {
		t.Error("programmatic focus failed")
	}
	if !b2.Focused() || b1.Focused() {
		t.Error("focus flags inconsistent")
	}
}

func TestTitledPanelRendersTitle(t *testing.T) {
	d := NewDisplay(200, 100)
	p := NewPanel(VBox{Padding: 4})
	p.SetTitle("Living TV")
	p.SetBackground(gfx.White)
	p.Add(NewLabel("content"))
	d.SetRoot(p)
	d.Render()
	if p.Title() != "Living TV" {
		t.Errorf("title = %q", p.Title())
	}
	// The title area must contain dark (text) pixels over the light
	// background.
	snap := d.Snapshot(gfx.R(0, 0, 200, gfx.GlyphH))
	dark := 0
	for _, c := range snap.Pix() {
		if c == gfx.Black {
			dark++
		}
	}
	if dark == 0 {
		t.Error("title text not rendered")
	}
	// A titled panel reserves vertical space for the title.
	_, hPlain := NewPanel(VBox{Padding: 4}).PreferredSize()
	_, hTitled := p.PreferredSize()
	if hTitled <= hPlain {
		t.Error("titled panel should be taller")
	}
}

func TestFixedLayoutKeepsManualBounds(t *testing.T) {
	d := NewDisplay(200, 200)
	p := NewPanel(Fixed{})
	b := NewButton("here", nil)
	p.Add(b)
	b.SetBounds(gfx.R(42, 17, 60, 20))
	d.SetRoot(p)
	d.Render()
	if b.Bounds() != gfx.R(42, 17, 60, 20) {
		t.Errorf("fixed layout moved the widget: %+v", b.Bounds())
	}
	// Preferred reports the bounding box.
	w, h := Fixed{}.Preferred(p.Children())
	if w != 102 || h != 37 {
		t.Errorf("fixed preferred = %dx%d", w, h)
	}
}

func TestLayoutPreferredSizes(t *testing.T) {
	mk := func() []Widget {
		return []Widget{NewButton("aa", nil), NewButton("bbbb", nil)}
	}
	// VBox: width = max, height = sum + gaps.
	vw, vh := VBox{Gap: 3, Padding: 2}.Preferred(mk())
	children := mk()
	w1, h1 := children[0].PreferredSize()
	w2, h2 := children[1].PreferredSize()
	if vw != max(w1, w2)+4 || vh != h1+h2+3+4 {
		t.Errorf("vbox preferred = %dx%d", vw, vh)
	}
	// HBox: width = sum + gaps, height = max.
	hw, hh := HBox{Gap: 3, Padding: 2}.Preferred(mk())
	if hw != w1+w2+3+4 || hh != max(h1, h2)+4 {
		t.Errorf("hbox preferred = %dx%d", hw, hh)
	}
	// Grid with one column stacks rows.
	gw, gh := Grid{Cols: 1, Gap: 2}.Preferred(mk())
	if gw < max(w1, w2) || gh < h1+h2 {
		t.Errorf("grid preferred = %dx%d", gw, gh)
	}
	// Invisible children are excluded everywhere.
	kids := mk()
	kids[1].(*Button).SetVisible(false)
	vw2, _ := VBox{Padding: 2}.Preferred(kids)
	if vw2 != w1+4 {
		t.Errorf("invisible child counted: %d", vw2)
	}
}

func TestLabelAlignmentAndColor(t *testing.T) {
	d := NewDisplay(120, 30)
	l := NewLabel("x")
	l.SetColor(gfx.Red)
	root := NewPanel(VBox{})
	root.Add(l)
	d.SetRoot(root)
	d.Render()
	if l.Text() != "x" {
		t.Errorf("text = %q", l.Text())
	}
	findRed := func() (minX, maxX int) {
		minX, maxX = 1<<30, -1
		d.WithFramebuffer(func(fb *gfx.Framebuffer) {
			for y := 0; y < 30; y++ {
				for x := 0; x < 120; x++ {
					if fb.At(x, y) == gfx.Red {
						if x < minX {
							minX = x
						}
						if x > maxX {
							maxX = x
						}
					}
				}
			}
		})
		return minX, maxX
	}
	leftMin, _ := findRed()

	l.SetAlign(AlignRight)
	d.Render()
	_, rightMax := findRed()
	if rightMax <= leftMin {
		t.Error("right-aligned text should sit to the right of left-aligned")
	}
	l.SetAlign(AlignCenter)
	d.Render()
	cMin, cMax := findRed()
	mid := (cMin + cMax) / 2
	if mid < l.Bounds().W/2-10 || mid > l.Bounds().W/2+10 {
		t.Errorf("centered text midpoint = %d of %d", mid, l.Bounds().W)
	}
}

func TestSliderStepAndProgressPaint(t *testing.T) {
	d := NewDisplay(200, 60)
	s := NewSlider("T", 0, 100, 50, nil)
	s.SetStep(10)
	s.SetStep(0) // ignored
	pb := NewProgressBar(50)
	root := NewPanel(VBox{Gap: 2})
	root.Add(s, pb)
	d.SetRoot(root)
	d.Render()

	d.InjectKey(true, KeyRight)
	if s.Value() != 60 {
		t.Errorf("step-10 right = %d", s.Value())
	}
	// Progress bar paints a blue fill proportional to value.
	snap := d.Snapshot(pb.Bounds())
	blue := 0
	for _, c := range snap.Pix() {
		if c == gfx.Blue {
			blue++
		}
	}
	total := pb.Bounds().Area()
	if blue < total*30/100 || blue > total*60/100 {
		t.Errorf("50%% bar painted %d of %d blue", blue, total)
	}
}

func TestButtonAndToggleLabels(t *testing.T) {
	b := NewButton("play", nil)
	if b.Label() != "play" {
		t.Errorf("label = %q", b.Label())
	}
	b.SetLabel("stop")
	b.SetLabel("stop") // no-op path
	if b.Label() != "stop" {
		t.Errorf("label = %q", b.Label())
	}
	tg := NewToggle("pwr", true, nil)
	tg.SetLabel("power")
	if !tg.On() {
		t.Error("initial state lost")
	}
	if !tg.Enabled() {
		t.Error("widgets start enabled")
	}
}

func TestDisabledWidgetRejectsInput(t *testing.T) {
	d := NewDisplay(100, 50)
	clicks := 0
	b := NewButton("x", func() { clicks++ })
	root := NewPanel(VBox{})
	root.Add(b)
	d.SetRoot(root)
	d.Render()
	b.SetEnabled(false)
	bb := b.Bounds()
	d.Click(bb.X+2, bb.Y+2)
	d.InjectKey(true, KeyEnter)
	if clicks != 0 {
		t.Errorf("disabled button fired %d times", clicks)
	}
	if b.Focusable() {
		t.Error("disabled button should not be focusable")
	}
}

func TestKeyEventPrintable(t *testing.T) {
	if !(KeyEvent{Key: 'a'}).Printable() {
		t.Error("'a' should be printable")
	}
	if (KeyEvent{Key: KeyEnter}).Printable() {
		t.Error("Enter should not be printable")
	}
}

func TestPanelRemoveAbsentIsNoop(t *testing.T) {
	p := NewPanel(VBox{})
	b := NewButton("x", nil)
	p.Remove(b) // not present: must not panic
	p.Add(b)
	p.Remove(b)
	if len(p.Children()) != 0 {
		t.Error("remove failed")
	}
}

func TestGridDefaultsToOneColumn(t *testing.T) {
	g := Grid{} // Cols 0 → treated as 1
	kids := []Widget{NewButton("a", nil), NewButton("b", nil)}
	g.Arrange(gfx.R(0, 0, 100, 100), kids)
	if kids[0].Bounds().Y == kids[1].Bounds().Y {
		t.Error("one-column grid should stack vertically")
	}
	if w, h := g.Preferred(nil); w != 0 || h != 0 {
		t.Errorf("empty grid preferred = %dx%d", w, h)
	}
}
