package toolkit

import "uniint/internal/gfx"

// Panel is the container widget. It owns a Layout, an optional title
// (drawn as a group box) and a background color.
type Panel struct {
	widgetBase
	children   []Widget
	layout     Layout
	title      string
	background gfx.Color
	border     bool
}

var _ Widget = (*Panel)(nil)

// NewPanel creates an empty container using the given layout.
func NewPanel(layout Layout) *Panel {
	if layout == nil {
		layout = VBox{Gap: 4, Padding: 4}
	}
	return &Panel{
		widgetBase: newWidgetBase(),
		layout:     layout,
		background: gfx.LightGray,
	}
}

// SetTitle draws the panel as a titled group box.
func (p *Panel) SetTitle(t string) {
	if p.title == t {
		return
	}
	p.title = t
	p.border = t != ""
	p.Invalidate()
}

// Title returns the panel title.
func (p *Panel) Title() string { return p.title }

// SetBackground changes the fill color.
func (p *Panel) SetBackground(c gfx.Color) {
	if p.background == c {
		return
	}
	p.background = c
	p.Invalidate()
}

// Add appends children and relayouts.
func (p *Panel) Add(ws ...Widget) {
	p.children = append(p.children, ws...)
	if p.display != nil {
		for _, w := range ws {
			attachTree(w, p.display)
		}
	}
	p.Relayout()
}

// Remove detaches a child (and its subtree) from the panel.
func (p *Panel) Remove(w Widget) {
	for i, c := range p.children {
		if c == w {
			p.children = append(p.children[:i], p.children[i+1:]...)
			p.Relayout()
			return
		}
	}
}

// Clear removes every child.
func (p *Panel) Clear() {
	p.children = nil
	p.Relayout()
}

// Children implements Widget.
func (p *Panel) Children() []Widget { return p.children }

// contentRect is the area available to children (inside title/border).
func (p *Panel) contentRect() gfx.Rect {
	r := p.bounds
	if p.border {
		r = r.Inset(2)
		r.Y += gfx.GlyphH
		r.H -= gfx.GlyphH
	}
	return r
}

// Relayout re-runs the layout over current bounds and repaints.
func (p *Panel) Relayout() {
	p.layout.Arrange(p.contentRect(), p.children)
	p.Invalidate()
}

// SetBounds implements Widget; it also re-arranges children.
func (p *Panel) SetBounds(r gfx.Rect) {
	p.widgetBase.SetBounds(r)
	p.layout.Arrange(p.contentRect(), p.children)
}

// PreferredSize implements Widget.
func (p *Panel) PreferredSize() (int, int) {
	w, h := p.layout.Preferred(p.children)
	if p.border {
		w += 4
		h += 4 + gfx.GlyphH
	}
	return w, h
}

// Paint implements Widget.
func (p *Panel) Paint(g gfx.Painter) {
	g.Fill(p.bounds, p.background)
	if p.border {
		box := p.bounds
		box.Y += gfx.GlyphH / 2
		box.H -= gfx.GlyphH / 2
		g.Border(box, gfx.DarkGray)
		if p.title != "" {
			tw := gfx.TextWidth(p.title)
			tx := p.bounds.X + 8
			g.Fill(gfx.R(tx-2, p.bounds.Y, tw+4, gfx.GlyphH), p.background)
			g.DrawText(tx, p.bounds.Y, p.title, gfx.Black)
		}
	}
}

// attach implements Widget, wiring the whole subtree.
func (p *Panel) attach(d *Display) {
	p.widgetBase.attach(d)
	for _, c := range p.children {
		attachTree(c, d)
	}
}
