package toolkit

import "uniint/internal/gfx"

// Layout arranges the children of a Panel within its content rectangle.
type Layout interface {
	// Arrange assigns bounds to each visible child.
	Arrange(content gfx.Rect, children []Widget)
	// Preferred computes the size the children need under this layout.
	Preferred(children []Widget) (w, h int)
}

// VBox stacks children vertically. Children receive their preferred height
// and the full content width.
type VBox struct {
	Gap     int // pixels between children
	Padding int // pixels around the content
}

var _ Layout = VBox{}

// Arrange implements Layout.
func (l VBox) Arrange(content gfx.Rect, children []Widget) {
	content = content.Inset(l.Padding)
	y := content.Y
	for _, c := range children {
		if !c.Visible() {
			continue
		}
		_, ph := c.PreferredSize()
		c.SetBounds(gfx.R(content.X, y, content.W, ph))
		y += ph + l.Gap
	}
}

// Preferred implements Layout.
func (l VBox) Preferred(children []Widget) (int, int) {
	w, h, n := 0, 0, 0
	for _, c := range children {
		if !c.Visible() {
			continue
		}
		pw, ph := c.PreferredSize()
		w = max(w, pw)
		h += ph
		n++
	}
	if n > 1 {
		h += (n - 1) * l.Gap
	}
	return w + 2*l.Padding, h + 2*l.Padding
}

// HBox lays children out horizontally. Children receive their preferred
// width and the full content height.
type HBox struct {
	Gap     int
	Padding int
}

var _ Layout = HBox{}

// Arrange implements Layout.
func (l HBox) Arrange(content gfx.Rect, children []Widget) {
	content = content.Inset(l.Padding)
	x := content.X
	for _, c := range children {
		if !c.Visible() {
			continue
		}
		pw, _ := c.PreferredSize()
		c.SetBounds(gfx.R(x, content.Y, pw, content.H))
		x += pw + l.Gap
	}
}

// Preferred implements Layout.
func (l HBox) Preferred(children []Widget) (int, int) {
	w, h, n := 0, 0, 0
	for _, c := range children {
		if !c.Visible() {
			continue
		}
		pw, ph := c.PreferredSize()
		w += pw
		h = max(h, ph)
		n++
	}
	if n > 1 {
		w += (n - 1) * l.Gap
	}
	return w + 2*l.Padding, h + 2*l.Padding
}

// Grid arranges children in rows of Cols equal-width cells. Row height is
// the tallest preferred height in that row.
type Grid struct {
	Cols    int
	Gap     int
	Padding int
}

var _ Layout = Grid{}

func (l Grid) cols() int {
	if l.Cols < 1 {
		return 1
	}
	return l.Cols
}

// Arrange implements Layout.
func (l Grid) Arrange(content gfx.Rect, children []Widget) {
	content = content.Inset(l.Padding)
	cols := l.cols()
	vis := make([]Widget, 0, len(children))
	for _, c := range children {
		if c.Visible() {
			vis = append(vis, c)
		}
	}
	if len(vis) == 0 {
		return
	}
	cellW := (content.W - (cols-1)*l.Gap) / cols
	y := content.Y
	for row := 0; row*cols < len(vis); row++ {
		rowH := 0
		for col := 0; col < cols && row*cols+col < len(vis); col++ {
			_, ph := vis[row*cols+col].PreferredSize()
			rowH = max(rowH, ph)
		}
		for col := 0; col < cols && row*cols+col < len(vis); col++ {
			x := content.X + col*(cellW+l.Gap)
			vis[row*cols+col].SetBounds(gfx.R(x, y, cellW, rowH))
		}
		y += rowH + l.Gap
	}
}

// Preferred implements Layout.
func (l Grid) Preferred(children []Widget) (int, int) {
	cols := l.cols()
	cellW, totalH, rowH, n := 0, 0, 0, 0
	for _, c := range children {
		if !c.Visible() {
			continue
		}
		pw, ph := c.PreferredSize()
		cellW = max(cellW, pw)
		rowH = max(rowH, ph)
		n++
		if n%cols == 0 {
			totalH += rowH + l.Gap
			rowH = 0
		}
	}
	if n == 0 {
		return 2 * l.Padding, 2 * l.Padding
	}
	if n%cols != 0 {
		totalH += rowH + l.Gap
	}
	totalH -= l.Gap
	rows := (n + cols - 1) / cols
	_ = rows
	w := cols*cellW + (cols-1)*l.Gap
	return w + 2*l.Padding, totalH + 2*l.Padding
}

// Fixed is a no-op layout: children keep whatever bounds were set manually.
type Fixed struct{}

var _ Layout = Fixed{}

// Arrange implements Layout (no-op).
func (Fixed) Arrange(gfx.Rect, []Widget) {}

// Preferred implements Layout by reporting the bounding box of children.
func (Fixed) Preferred(children []Widget) (int, int) {
	var u gfx.Rect
	for _, c := range children {
		if c.Visible() {
			u = u.Union(c.Bounds())
		}
	}
	return u.MaxX(), u.MaxY()
}
