package toolkit

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"uniint/internal/gfx"
)

// fullRepaint paints the display's tree from scratch into a fresh
// framebuffer — the oracle the incremental renderer must match.
func fullRepaint(d *Display) *gfx.Framebuffer {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fbMu.Lock()
	w, h := d.fb.W(), d.fb.H()
	d.fbMu.Unlock()
	ref := gfx.NewFramebuffer(w, h)
	if d.root != nil {
		paintClipped(d.root, gfx.NewPainter(ref), ref.Bounds())
	}
	return ref
}

// randTree builds a random widget tree and returns every mutable leaf.
type randLeaves struct {
	labels   []*Label
	buttons  []*Button
	toggles  []*Toggle
	sliders  []*Slider
	progress []*ProgressBar
	panels   []*Panel
	widgets  []Widget
}

func buildRandTree(rng *rand.Rand, depth int, leaves *randLeaves) Widget {
	if depth > 0 && rng.Intn(3) == 0 {
		var layout Layout
		switch rng.Intn(4) {
		case 0:
			layout = VBox{Gap: rng.Intn(4), Padding: rng.Intn(4)}
		case 1:
			layout = HBox{Gap: rng.Intn(4), Padding: rng.Intn(4)}
		case 2:
			layout = Grid{Cols: 1 + rng.Intn(3), Gap: rng.Intn(3), Padding: rng.Intn(3)}
		default:
			layout = Fixed{}
		}
		p := NewPanel(layout)
		if rng.Intn(2) == 0 {
			p.SetTitle(fmt.Sprintf("Group %d", rng.Intn(10)))
		}
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			p.Add(buildRandTree(rng, depth-1, leaves))
		}
		leaves.panels = append(leaves.panels, p)
		leaves.widgets = append(leaves.widgets, p)
		return p
	}
	var w Widget
	switch rng.Intn(5) {
	case 0:
		l := NewLabel(fmt.Sprintf("label %d", rng.Intn(100)))
		leaves.labels = append(leaves.labels, l)
		w = l
	case 1:
		b := NewButton(fmt.Sprintf("btn %d", rng.Intn(100)), nil)
		leaves.buttons = append(leaves.buttons, b)
		w = b
	case 2:
		t := NewToggle(fmt.Sprintf("tgl %d", rng.Intn(100)), rng.Intn(2) == 0, nil)
		leaves.toggles = append(leaves.toggles, t)
		w = t
	case 3:
		s := NewSlider(fmt.Sprintf("sld %d", rng.Intn(100)), 0, 100, rng.Intn(101), nil)
		leaves.sliders = append(leaves.sliders, s)
		w = s
	default:
		p := NewProgressBar(rng.Intn(101))
		leaves.progress = append(leaves.progress, p)
		w = p
	}
	leaves.widgets = append(leaves.widgets, w)
	return w
}

// mutate applies one random widget mutation or input event.
func mutate(rng *rand.Rand, d *Display, lv *randLeaves) {
	w, h := d.Size()
	switch rng.Intn(12) {
	case 0:
		if len(lv.labels) > 0 {
			l := lv.labels[rng.Intn(len(lv.labels))]
			d.Update(func() {
				l.SetText(fmt.Sprintf("label %d", rng.Intn(8)))
				l.SetAlign(Align(rng.Intn(3)))
			})
		}
	case 1:
		if len(lv.labels) > 0 {
			l := lv.labels[rng.Intn(len(lv.labels))]
			colors := []gfx.Color{gfx.Black, gfx.Red, gfx.Navy}
			d.Update(func() { l.SetColor(colors[rng.Intn(len(colors))]) })
		}
	case 2:
		if len(lv.toggles) > 0 {
			t := lv.toggles[rng.Intn(len(lv.toggles))]
			d.Update(func() { t.SetOn(rng.Intn(2) == 0) })
		}
	case 3:
		if len(lv.sliders) > 0 {
			s := lv.sliders[rng.Intn(len(lv.sliders))]
			d.Update(func() { s.SetValue(rng.Intn(101)) })
		}
	case 4:
		if len(lv.progress) > 0 {
			p := lv.progress[rng.Intn(len(lv.progress))]
			d.Update(func() { p.SetValue(rng.Intn(101)) })
		}
	case 5:
		if len(lv.buttons) > 0 {
			b := lv.buttons[rng.Intn(len(lv.buttons))]
			d.Update(func() { b.SetLabel(fmt.Sprintf("btn %d", rng.Intn(8))) })
		}
	case 6:
		if len(lv.panels) > 0 {
			p := lv.panels[rng.Intn(len(lv.panels))]
			colors := []gfx.Color{gfx.LightGray, gfx.White, gfx.Gray}
			d.Update(func() { p.SetBackground(colors[rng.Intn(len(colors))]) })
		}
	case 7:
		wdg := lv.widgets[rng.Intn(len(lv.widgets))]
		d.Update(func() {
			if base, ok := wdg.(interface{ SetVisible(bool) }); ok {
				base.SetVisible(rng.Intn(4) != 0) // mostly visible
			}
		})
	case 8:
		wdg := lv.widgets[rng.Intn(len(lv.widgets))]
		d.Update(func() {
			if base, ok := wdg.(interface{ SetEnabled(bool) }); ok {
				base.SetEnabled(rng.Intn(4) != 0)
			}
		})
	case 9:
		d.InjectPointer(rng.Intn(w), rng.Intn(h), 1)
		d.InjectPointer(rng.Intn(w), rng.Intn(h), 0)
	case 10:
		keys := []Key{KeyTab, KeyUp, KeyDown, KeyLeft, KeyRight, KeyEnter, KeySpace}
		d.InjectKey(true, keys[rng.Intn(len(keys))])
	default:
		// No-op echo: re-deliver current state; must post no damage.
		if len(lv.toggles) > 0 {
			t := lv.toggles[rng.Intn(len(lv.toggles))]
			d.Update(func() { t.SetOn(t.On()) })
		}
	}
}

// TestIncrementalRenderMatchesFullRepaint is the equivalence property the
// damage-clipped renderer must hold: after any sequence of widget updates
// and input events, rendering only the damaged rectangles leaves the
// framebuffer byte-identical to a from-scratch full repaint.
func TestIncrementalRenderMatchesFullRepaint(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			w, h := 80+rng.Intn(400), 60+rng.Intn(300)
			d := NewDisplay(w, h)
			var lv randLeaves
			root := NewPanel(VBox{Gap: 2, Padding: 3})
			n := 2 + rng.Intn(4)
			for i := 0; i < n; i++ {
				root.Add(buildRandTree(rng, 2, &lv))
			}
			lv.panels = append(lv.panels, root)
			d.SetRoot(root)
			d.Render()

			for step := 0; step < 120; step++ {
				mutate(rng, d, &lv)
				if rng.Intn(3) == 0 {
					d.Render() // interleave partial drains
				}
				if step%10 == 9 {
					d.Render()
					ref := fullRepaint(d)
					equal := false
					d.WithFramebuffer(func(fb *gfx.Framebuffer) { equal = fb.Equal(ref) })
					if !equal {
						t.Fatalf("step %d: incremental framebuffer diverged from full repaint (diff %+v)",
							step, diffAgainst(d, ref))
					}
				}
			}
		})
	}
}

func diffAgainst(d *Display, ref *gfx.Framebuffer) gfx.Rect {
	var r gfx.Rect
	d.WithFramebuffer(func(fb *gfx.Framebuffer) { r = fb.DiffRect(ref) })
	return r
}

// TestRenderRepaintsOnlyDamage pins the O(widget) contract: a one-toggle
// update must repaint rectangles totalling far less than the screen.
func TestRenderRepaintsOnlyDamage(t *testing.T) {
	d := NewDisplay(640, 480)
	root := NewPanel(Grid{Cols: 2, Gap: 4, Padding: 6})
	toggles := make([]*Toggle, 12)
	for i := range toggles {
		toggles[i] = NewToggle(fmt.Sprintf("Power %d", i), false, nil)
		root.Add(toggles[i])
	}
	d.SetRoot(root)
	d.Render()

	d.Update(func() { toggles[3].SetOn(true) })
	rects := d.Render()
	if len(rects) == 0 {
		t.Fatal("no damage after toggle flip")
	}
	area := 0
	for _, r := range rects {
		area += r.Area()
		if !r.Overlaps(toggles[3].Bounds()) {
			t.Errorf("damage rect %+v does not touch the flipped toggle", r)
		}
	}
	if screen := 640 * 480; area > screen/10 {
		t.Fatalf("one-widget update repainted %d px of %d — not incremental", area, screen)
	}
}

// TestNoopUpdatesPostNoDamage is the state-echo satellite: setters handed
// the value a widget already holds must not damage the display or wake
// damage hooks.
func TestNoopUpdatesPostNoDamage(t *testing.T) {
	d := NewDisplay(200, 150)
	lbl := NewLabel("ready")
	tg := NewToggle("Power", true, nil)
	sl := NewSlider("Vol", 0, 100, 40, nil)
	pb := NewProgressBar(70)
	pan := NewPanel(VBox{})
	pan.SetTitle("Box")
	pan.SetBackground(gfx.White)
	pan.Add(lbl, tg, sl, pb)
	d.SetRoot(pan)
	d.Render()

	fired := 0
	d.OnDamage(func() { fired++ })
	d.Update(func() {
		lbl.SetText("ready")
		lbl.SetAlign(AlignLeft)
		lbl.SetColor(gfx.Black)
		tg.SetOn(true)
		tg.SetLabel("Power")
		sl.SetValue(40)
		pb.SetValue(70)
		pan.SetTitle("Box")
		pan.SetBackground(gfx.White)
	})
	if fired != 0 {
		t.Fatalf("no-op state echo fired %d damage hooks", fired)
	}
	if d.Dirty() {
		t.Fatal("no-op state echo left the display dirty")
	}
	// A real change still fires exactly once per Update batch.
	d.Update(func() { tg.SetOn(false) })
	if fired != 1 {
		t.Fatalf("real change fired %d hooks, want 1", fired)
	}
}

// TestRepeatedInvalidateCoalesces pins the per-widget dirty flag: N
// invalidations between renders produce bounded damage, and the widget can
// invalidate again after a render.
func TestRepeatedInvalidateCoalesces(t *testing.T) {
	d := NewDisplay(200, 150)
	lbl := NewLabel("x")
	root := NewPanel(VBox{})
	root.Add(lbl)
	d.SetRoot(root)
	d.Render()

	for i := 0; i < 100; i++ {
		d.Update(func() { lbl.SetText(fmt.Sprintf("t%d", i)) })
	}
	rects := d.Render()
	if len(rects) != 1 {
		t.Fatalf("100 updates of one label produced %d damage rects", len(rects))
	}
	d.Update(func() { lbl.SetText("after") })
	if !d.Dirty() {
		t.Fatal("widget could not re-invalidate after a render")
	}
}

// TestEncodeDoesNotBlockInput pins the split-lock contract: while a reader
// holds the framebuffer (a slow encode in flight), input injection and
// widget mutation must still complete.
func TestEncodeDoesNotBlockInput(t *testing.T) {
	d := NewDisplay(200, 150)
	tg := NewToggle("Power", false, nil)
	root := NewPanel(VBox{})
	root.Add(tg)
	d.SetRoot(root)
	d.Render()

	entered := make(chan struct{})
	release := make(chan struct{})
	go d.WithFramebuffer(func(fb *gfx.Framebuffer) {
		close(entered)
		<-release
	})
	<-entered

	done := make(chan struct{})
	go func() {
		b := tg.Bounds()
		d.Click(b.X+2, b.Y+2)
		d.InjectKey(true, KeyTab)
		d.Update(func() { tg.SetLabel("still responsive") })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("input path blocked while the framebuffer was held for encoding")
	}
	close(release)
	if !tg.On() {
		t.Fatal("click was lost")
	}
}

// TestInvalidateAllForcesFullRepaint exercises the full-damage path.
func TestInvalidateAllForcesFullRepaint(t *testing.T) {
	d := NewDisplay(100, 80)
	d.Render()
	d.InvalidateAll()
	rects := d.Render()
	if len(rects) != 1 || rects[0] != gfx.R(0, 0, 100, 80) {
		t.Fatalf("InvalidateAll damage = %+v", rects)
	}
}

// TestResize rebuilds the framebuffer and re-lays-out the tree.
func TestResize(t *testing.T) {
	d := NewDisplay(100, 80)
	lbl := NewLabel("hi")
	root := NewPanel(VBox{Padding: 2})
	root.Add(lbl)
	d.SetRoot(root)
	d.Render()

	d.Resize(320, 240)
	if w, h := d.Size(); w != 320 || h != 240 {
		t.Fatalf("size after resize = %dx%d", w, h)
	}
	rects := d.Render()
	if len(rects) != 1 || rects[0] != gfx.R(0, 0, 320, 240) {
		t.Fatalf("resize damage = %+v", rects)
	}
	if root.Bounds() != gfx.R(0, 0, 320, 240) {
		t.Fatalf("root not re-laid-out: %+v", root.Bounds())
	}
	ref := fullRepaint(d)
	equal := false
	d.WithFramebuffer(func(fb *gfx.Framebuffer) { equal = fb.Equal(ref) })
	if !equal {
		t.Fatal("post-resize framebuffer diverged from full repaint")
	}
}

// TestRenderIntoReusesStorage pins the zero-allocation render contract at
// the API level.
func TestRenderIntoReusesStorage(t *testing.T) {
	d := NewDisplay(200, 150)
	tg := NewToggle("Power", false, nil)
	root := NewPanel(VBox{})
	root.Add(tg)
	d.SetRoot(root)
	d.Render()

	buf := make([]gfx.Rect, 0, 16)
	on := false
	allocs := testing.AllocsPerRun(200, func() {
		on = !on
		d.Update(func() { tg.SetOn(on) })
		buf = d.RenderInto(buf)
		if len(buf) == 0 {
			t.Fatal("no damage")
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state widget update allocated %.1f/op, want 0", allocs)
	}
}
