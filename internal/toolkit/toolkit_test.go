package toolkit

import (
	"testing"

	"uniint/internal/gfx"
)

func newTestDisplay(t *testing.T) *Display {
	t.Helper()
	return NewDisplay(200, 150)
}

func TestDisplayInitialRender(t *testing.T) {
	d := newTestDisplay(t)
	rects := d.Render()
	if len(rects) == 0 {
		t.Fatal("fresh display should be fully damaged")
	}
	if rects[0] != gfx.R(0, 0, 200, 150) {
		t.Errorf("initial damage = %+v", rects[0])
	}
	if again := d.Render(); again != nil {
		t.Errorf("second render should be clean, got %+v", again)
	}
}

func TestButtonClickByPointer(t *testing.T) {
	d := newTestDisplay(t)
	clicks := 0
	btn := NewButton("Press", func() { clicks++ })
	root := NewPanel(VBox{Gap: 4, Padding: 4})
	root.Add(btn)
	d.SetRoot(root)
	d.Render()

	b := btn.Bounds()
	if b.Empty() {
		t.Fatal("button was not laid out")
	}
	d.Click(b.X+b.W/2, b.Y+b.H/2)
	if clicks != 1 {
		t.Fatalf("clicks = %d, want 1", clicks)
	}
	// Press inside, release outside: no click.
	d.InjectPointer(b.X+1, b.Y+1, 1)
	d.InjectPointer(b.X-50, b.Y-50, 0)
	if clicks != 1 {
		t.Fatalf("release outside should not fire, clicks = %d", clicks)
	}
}

func TestButtonClickByKeyboard(t *testing.T) {
	d := newTestDisplay(t)
	clicks := 0
	btn := NewButton("OK", func() { clicks++ })
	root := NewPanel(VBox{})
	root.Add(btn)
	d.SetRoot(root)

	if d.Focus() != Widget(btn) {
		t.Fatal("first focusable should receive focus")
	}
	d.InjectKey(true, KeyEnter)
	d.InjectKey(false, KeyEnter)
	if clicks != 1 {
		t.Fatalf("keyboard clicks = %d, want 1", clicks)
	}
	d.InjectKey(true, KeySpace)
	if clicks != 2 {
		t.Fatalf("space clicks = %d, want 2", clicks)
	}
}

func TestFocusTraversal(t *testing.T) {
	d := newTestDisplay(t)
	b1 := NewButton("1", nil)
	b2 := NewButton("2", nil)
	b3 := NewButton("3", nil)
	root := NewPanel(VBox{})
	root.Add(b1, b2, b3)
	d.SetRoot(root)

	if d.Focus() != Widget(b1) {
		t.Fatal("focus should start at first widget")
	}
	d.InjectKey(true, KeyTab)
	if d.Focus() != Widget(b2) {
		t.Fatal("tab should advance focus")
	}
	d.InjectKey(true, KeyDown)
	if d.Focus() != Widget(b3) {
		t.Fatal("down should advance focus")
	}
	d.InjectKey(true, KeyTab)
	if d.Focus() != Widget(b1) {
		t.Fatal("focus should wrap around")
	}
	d.InjectKey(true, KeyUp)
	if d.Focus() != Widget(b3) {
		t.Fatal("up should move focus backward (wrapping)")
	}
}

func TestFocusSkipsInvisibleAndDisabled(t *testing.T) {
	d := newTestDisplay(t)
	b1 := NewButton("1", nil)
	b2 := NewButton("2", nil)
	b3 := NewButton("3", nil)
	b2.SetVisible(false)
	b3.SetEnabled(false)
	root := NewPanel(VBox{})
	root.Add(b1, b2, b3)
	d.SetRoot(root)

	d.InjectKey(true, KeyTab)
	if d.Focus() != Widget(b1) {
		t.Fatalf("focus should stay on the only eligible widget")
	}
}

func TestToggleFlip(t *testing.T) {
	d := newTestDisplay(t)
	var last bool
	fired := 0
	tg := NewToggle("Power", false, func(on bool) { last = on; fired++ })
	root := NewPanel(VBox{})
	root.Add(tg)
	d.SetRoot(root)
	d.Render()

	b := tg.Bounds()
	d.Click(b.X+2, b.Y+2)
	if !tg.On() || !last || fired != 1 {
		t.Fatalf("after click: on=%v last=%v fired=%d", tg.On(), last, fired)
	}
	// Programmatic set must not fire the callback.
	tg.SetOn(false)
	if fired != 1 {
		t.Fatalf("SetOn fired the callback")
	}
	// Keyboard flip.
	d.InjectKey(true, KeyEnter)
	if !tg.On() || fired != 2 {
		t.Fatalf("keyboard flip: on=%v fired=%d", tg.On(), fired)
	}
}

func TestSliderKeyboardAndPointer(t *testing.T) {
	d := newTestDisplay(t)
	var got []int
	s := NewSlider("Vol", 0, 10, 5, func(v int) { got = append(got, v) })
	root := NewPanel(VBox{})
	root.Add(s)
	d.SetRoot(root)
	d.Render()

	d.InjectKey(true, KeyRight)
	d.InjectKey(true, KeyRight)
	d.InjectKey(true, KeyLeft)
	if s.Value() != 6 {
		t.Fatalf("value = %d, want 6", s.Value())
	}
	if len(got) != 3 {
		t.Fatalf("changes = %v", got)
	}
	// Clamping at the edges.
	for i := 0; i < 20; i++ {
		d.InjectKey(true, KeyRight)
	}
	if s.Value() != 10 {
		t.Fatalf("value should clamp at max, got %d", s.Value())
	}
	// Pointer: click at the far right of the track.
	tr := s.track()
	d.Click(tr.MaxX()-1, tr.Y+1)
	if s.Value() != 10 {
		t.Fatalf("pointer at track end should keep max, got %d", s.Value())
	}
	d.Click(tr.X, tr.Y+1)
	if s.Value() != 0 {
		t.Fatalf("pointer at track start should give min, got %d", s.Value())
	}
}

func TestSliderProgrammaticSetDoesNotFire(t *testing.T) {
	fired := 0
	s := NewSlider("x", 0, 100, 0, func(int) { fired++ })
	s.SetValue(55)
	if s.Value() != 55 || fired != 0 {
		t.Fatalf("value=%d fired=%d", s.Value(), fired)
	}
	s.SetValue(-10)
	if s.Value() != 0 {
		t.Fatalf("clamp low failed: %d", s.Value())
	}
	s.SetValue(1000)
	if s.Value() != 100 {
		t.Fatalf("clamp high failed: %d", s.Value())
	}
}

func TestProgressBarClamp(t *testing.T) {
	p := NewProgressBar(150)
	if p.Value() != 100 {
		t.Errorf("value = %d", p.Value())
	}
	p.SetValue(-5)
	if p.Value() != 0 {
		t.Errorf("value = %d", p.Value())
	}
}

func TestLabelRendering(t *testing.T) {
	d := newTestDisplay(t)
	l := NewLabel("hello")
	root := NewPanel(VBox{})
	root.Add(l)
	d.SetRoot(root)
	d.Render()
	// The label area must contain some non-background pixels.
	snap := d.Snapshot(l.Bounds())
	found := false
	for _, c := range snap.Pix() {
		if c == gfx.Black {
			found = true
			break
		}
	}
	if !found {
		t.Error("label text not rendered")
	}
	l.SetText("changed")
	if !d.Dirty() {
		t.Error("SetText should damage the display")
	}
}

func TestPanelRemoveAndClear(t *testing.T) {
	d := newTestDisplay(t)
	root := NewPanel(VBox{})
	b1 := NewButton("1", nil)
	b2 := NewButton("2", nil)
	root.Add(b1, b2)
	d.SetRoot(root)
	root.Remove(b1)
	if len(root.Children()) != 1 || root.Children()[0] != Widget(b2) {
		t.Fatalf("children after remove = %v", root.Children())
	}
	root.Clear()
	if len(root.Children()) != 0 {
		t.Fatal("clear failed")
	}
	d.RefreshFocus()
	if d.Focus() != nil {
		t.Fatal("focus should drop when tree empties")
	}
}

func TestNestedPanelsHitTesting(t *testing.T) {
	d := newTestDisplay(t)
	outer := NewPanel(VBox{Gap: 2, Padding: 2})
	inner := NewPanel(HBox{Gap: 2, Padding: 2})
	clicks := 0
	btn := NewButton("deep", func() { clicks++ })
	inner.Add(btn)
	outer.Add(NewLabel("header"), inner)
	d.SetRoot(outer)
	d.Render()

	b := btn.Bounds()
	if b.Empty() {
		t.Fatal("nested button not laid out")
	}
	d.Click(b.X+1, b.Y+1)
	if clicks != 1 {
		t.Fatalf("nested click = %d", clicks)
	}
}

func TestGridLayoutGeometry(t *testing.T) {
	d := NewDisplay(300, 200)
	grid := NewPanel(Grid{Cols: 2, Gap: 4, Padding: 4})
	buttons := make([]*Button, 5)
	for i := range buttons {
		buttons[i] = NewButton("B", nil)
		grid.Add(buttons[i])
	}
	d.SetRoot(grid)
	d.Render()
	// Row 0: buttons 0 and 1 share a y coordinate; button 2 sits below.
	if buttons[0].Bounds().Y != buttons[1].Bounds().Y {
		t.Error("row members should align")
	}
	if buttons[2].Bounds().Y <= buttons[0].Bounds().Y {
		t.Error("next row should be below")
	}
	if buttons[0].Bounds().X >= buttons[1].Bounds().X {
		t.Error("columns should advance left to right")
	}
	// No overlaps among the five buttons.
	for i := 0; i < len(buttons); i++ {
		for j := i + 1; j < len(buttons); j++ {
			if buttons[i].Bounds().Overlaps(buttons[j].Bounds()) {
				t.Errorf("buttons %d and %d overlap", i, j)
			}
		}
	}
}

func TestDamageHookFires(t *testing.T) {
	d := newTestDisplay(t)
	btn := NewButton("x", nil)
	root := NewPanel(VBox{})
	root.Add(btn)
	d.SetRoot(root)
	d.Render()

	fired := 0
	d.OnDamage(func() { fired++ })
	d.Click(btn.Bounds().X+1, btn.Bounds().Y+1)
	if fired == 0 {
		t.Fatal("damage hook should fire on interaction")
	}
}

func TestHiddenWidgetNotHit(t *testing.T) {
	d := newTestDisplay(t)
	clicks := 0
	btn := NewButton("x", func() { clicks++ })
	root := NewPanel(VBox{})
	root.Add(btn)
	d.SetRoot(root)
	d.Render()
	b := btn.Bounds()
	btn.SetVisible(false)
	d.Click(b.X+1, b.Y+1)
	if clicks != 0 {
		t.Fatal("hidden widget should not receive clicks")
	}
}

func BenchmarkRenderControlPanel(b *testing.B) {
	d := NewDisplay(640, 480)
	root := NewPanel(Grid{Cols: 2, Gap: 4, Padding: 6})
	for i := 0; i < 8; i++ {
		p := NewPanel(VBox{Gap: 2, Padding: 4})
		p.SetTitle("Appliance")
		p.Add(NewToggle("Power", false, nil),
			NewSlider("Volume", 0, 100, 50, nil),
			NewButton("Play", nil))
		root.Add(p)
	}
	d.SetRoot(root)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.WithFramebuffer(func(fb *gfx.Framebuffer) {}) // keep lock pattern hot
		d.Render()
		// Re-damage everything each iteration.
		d.SetRoot(root)
	}
}
