package toolkit

import "uniint/internal/gfx"

// Align controls horizontal text alignment.
type Align int

// Alignment values.
const (
	AlignLeft Align = iota
	AlignCenter
	AlignRight
)

// Label is a static single-line text widget.
type Label struct {
	widgetBase
	text  string
	align Align
	color gfx.Color
}

var _ Widget = (*Label)(nil)

// NewLabel creates a left-aligned black label.
func NewLabel(text string) *Label {
	return &Label{widgetBase: newWidgetBase(), text: text, color: gfx.Black}
}

// SetText updates the label's text.
func (l *Label) SetText(t string) {
	if l.text == t {
		return
	}
	l.text = t
	l.Invalidate()
}

// Text returns the current text.
func (l *Label) Text() string { return l.text }

// SetAlign changes the horizontal alignment.
func (l *Label) SetAlign(a Align) {
	if l.align == a {
		return
	}
	l.align = a
	l.Invalidate()
}

// SetColor changes the text color.
func (l *Label) SetColor(c gfx.Color) {
	if l.color == c {
		return
	}
	l.color = c
	l.Invalidate()
}

// PreferredSize implements Widget.
func (l *Label) PreferredSize() (int, int) {
	return gfx.TextWidth(l.text) + 2, gfx.TextHeight() + 2
}

// Paint implements Widget.
func (l *Label) Paint(g gfx.Painter) {
	x := l.bounds.X + 1
	switch l.align {
	case AlignCenter:
		x = gfx.CenterTextX(l.bounds.X, l.bounds.W, l.text)
	case AlignRight:
		x = l.bounds.MaxX() - gfx.TextWidth(l.text) - 1
	}
	y := l.bounds.Y + (l.bounds.H-gfx.TextHeight())/2 + 1
	g.DrawText(x, y, l.text, l.color)
}

// Button is a push button firing OnClick when activated by pointer or by
// keyboard (Enter/Space while focused — the path keypad devices use).
type Button struct {
	widgetBase
	label   string
	pressed bool
	// OnClick is invoked on activation (with the display lock held; do not
	// call back into the display synchronously).
	OnClick func()
}

var _ Widget = (*Button)(nil)

// NewButton creates a button with a label and click handler.
func NewButton(label string, onClick func()) *Button {
	return &Button{widgetBase: newWidgetBase(), label: label, OnClick: onClick}
}

// SetLabel updates the button text.
func (b *Button) SetLabel(s string) {
	if b.label == s {
		return
	}
	b.label = s
	b.Invalidate()
}

// Label returns the button text.
func (b *Button) Label() string { return b.label }

// PreferredSize implements Widget.
func (b *Button) PreferredSize() (int, int) {
	return gfx.TextWidth(b.label) + 14, gfx.TextHeight() + 8
}

// Focusable implements Widget.
func (b *Button) Focusable() bool { return b.enabled }

// Paint implements Widget.
func (b *Button) Paint(g gfx.Painter) {
	bg := gfx.Gray
	if b.pressed {
		bg = gfx.DarkGray
	}
	g.Fill(b.bounds, bg)
	g.Bevel(b.bounds, b.pressed)
	fg := gfx.Black
	if !b.enabled {
		fg = gfx.Gray
	} else if b.pressed {
		fg = gfx.White
	}
	x := gfx.CenterTextX(b.bounds.X, b.bounds.W, b.label)
	y := b.bounds.Y + (b.bounds.H-gfx.TextHeight())/2 + 1
	g.In(b.bounds.Inset(2)).DrawText(x, y, b.label, fg)
	if b.focused {
		g.Border(b.bounds.Inset(2), gfx.Navy)
	}
}

// HandleMouse implements Widget: press shows the pressed state, release
// inside fires the click.
func (b *Button) HandleMouse(ev MouseEvent) bool {
	if !b.enabled {
		return false
	}
	switch ev.Kind {
	case MousePress:
		b.pressed = true
		b.Invalidate()
		return true
	case MouseRelease:
		was := b.pressed
		b.pressed = false
		b.Invalidate()
		if was && b.bounds.Contains(ev.X, ev.Y) {
			b.fire()
		}
		return true
	}
	return false
}

// HandleKey implements Widget: Enter or Space activates.
func (b *Button) HandleKey(ev KeyEvent) bool {
	if !b.enabled || !ev.Down {
		return false
	}
	if ev.Key == KeyEnter || ev.Key == KeySpace {
		b.pressed = true
		b.Invalidate()
		b.pressed = false
		b.fire()
		return true
	}
	return false
}

func (b *Button) fire() {
	if b.OnClick != nil {
		b.OnClick()
	}
}

// Toggle is a two-state switch (power buttons, mute, …).
type Toggle struct {
	widgetBase
	label string
	on    bool
	// OnChange is invoked with the new state after it flips.
	OnChange func(on bool)
}

var _ Widget = (*Toggle)(nil)

// NewToggle creates a toggle in the given initial state.
func NewToggle(label string, on bool, onChange func(bool)) *Toggle {
	return &Toggle{widgetBase: newWidgetBase(), label: label, on: on, OnChange: onChange}
}

// On reports the current state.
func (t *Toggle) On() bool { return t.on }

// SetOn sets the state programmatically (appliance state pushed into the
// GUI); the OnChange callback is NOT invoked, preventing feedback loops.
func (t *Toggle) SetOn(on bool) {
	if t.on == on {
		return
	}
	t.on = on
	t.Invalidate()
}

// SetLabel updates the toggle's label.
func (t *Toggle) SetLabel(s string) {
	if t.label == s {
		return
	}
	t.label = s
	t.Invalidate()
}

// PreferredSize implements Widget.
func (t *Toggle) PreferredSize() (int, int) {
	return gfx.TextWidth(t.label) + 34, gfx.TextHeight() + 8
}

// Focusable implements Widget.
func (t *Toggle) Focusable() bool { return t.enabled }

// Paint implements Widget.
func (t *Toggle) Paint(g gfx.Painter) {
	g.Fill(t.bounds, gfx.LightGray)
	// Indicator lamp.
	lamp := gfx.R(t.bounds.X+4, t.bounds.Y+(t.bounds.H-10)/2, 16, 10)
	if t.on {
		g.Fill(lamp, gfx.Green)
	} else {
		g.Fill(lamp, gfx.DarkGray)
	}
	g.Border(lamp, gfx.Black)
	fg := gfx.Black
	if !t.enabled {
		fg = gfx.Gray
	}
	y := t.bounds.Y + (t.bounds.H-gfx.TextHeight())/2 + 1
	g.DrawText(t.bounds.X+26, y, t.label, fg)
	if t.focused {
		g.Border(t.bounds.Inset(1), gfx.Navy)
	}
}

// HandleMouse implements Widget.
func (t *Toggle) HandleMouse(ev MouseEvent) bool {
	if !t.enabled || ev.Kind != MouseRelease || !t.bounds.Contains(ev.X, ev.Y) {
		return ev.Kind == MousePress && t.enabled
	}
	t.flip()
	return true
}

// HandleKey implements Widget.
func (t *Toggle) HandleKey(ev KeyEvent) bool {
	if !t.enabled || !ev.Down {
		return false
	}
	if ev.Key == KeyEnter || ev.Key == KeySpace {
		t.flip()
		return true
	}
	return false
}

func (t *Toggle) flip() {
	t.on = !t.on
	t.Invalidate()
	if t.OnChange != nil {
		t.OnChange(t.on)
	}
}
