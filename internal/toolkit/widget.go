package toolkit

import "uniint/internal/gfx"

// Widget is a node of the user-interface tree. All methods are invoked with
// the owning Display's lock held; widgets never need their own locking.
type Widget interface {
	// Bounds returns the widget's rectangle in display coordinates.
	Bounds() gfx.Rect
	// SetBounds positions the widget; containers call this during layout.
	SetBounds(r gfx.Rect)
	// PreferredSize reports the size the widget would like to occupy.
	PreferredSize() (w, h int)
	// Paint draws the widget into g. The painter's clip is (widget bounds ∩
	// damage rect): a widget may be asked to repaint any sub-rectangle of
	// itself, and nothing it draws can land outside its own bounds. Parents
	// paint before children.
	Paint(g gfx.Painter)
	// Children returns the widget's children (nil for leaves).
	Children() []Widget
	// HandleMouse processes a pointer event already known to hit this
	// widget; returns true when consumed.
	HandleMouse(ev MouseEvent) bool
	// HandleKey processes a keyboard event delivered to the focused
	// widget; returns true when consumed.
	HandleKey(ev KeyEvent) bool
	// Focusable reports whether the widget participates in keyboard focus
	// traversal (the navigation path used by keypad-only devices).
	Focusable() bool
	// SetFocused is called by the display as focus moves.
	SetFocused(bool)
	// Visible reports whether the widget should be painted and hit.
	Visible() bool
	// attach wires the widget (and subtree) to a display for invalidation.
	attach(d *Display)
}

// widgetBase carries the state shared by every widget. Concrete widgets
// embed it (unexported, so the embedding is invisible in the public API).
type widgetBase struct {
	bounds  gfx.Rect
	display *Display
	hidden  bool
	focused bool
	enabled bool

	// dirtyGen is the display damage generation in which this widget last
	// posted its full bounds as damage — the per-widget dirty flag. While
	// it matches the display's current generation, further Invalidate
	// calls are no-ops: the widget's area is already fully covered by
	// pending damage. The renderer bumps the generation when it drains
	// damage, which implicitly "cleans" every widget at once.
	dirtyGen uint64
}

func newWidgetBase() widgetBase { return widgetBase{enabled: true} }

// Bounds returns the widget's rectangle in display coordinates.
func (b *widgetBase) Bounds() gfx.Rect { return b.bounds }

// SetBounds positions the widget and invalidates both old and new areas.
func (b *widgetBase) SetBounds(r gfx.Rect) {
	if b.bounds == r {
		return
	}
	old := b.bounds
	b.bounds = r
	b.invalidate(old)
	b.invalidate(r)
	b.markDirty()
}

// Children returns nil; containers override.
func (b *widgetBase) Children() []Widget { return nil }

// HandleMouse ignores the event; interactive widgets override.
func (b *widgetBase) HandleMouse(MouseEvent) bool { return false }

// HandleKey ignores the event; interactive widgets override.
func (b *widgetBase) HandleKey(KeyEvent) bool { return false }

// Focusable is false by default; interactive widgets override.
func (b *widgetBase) Focusable() bool { return false }

// SetFocused records focus state and repaints.
func (b *widgetBase) SetFocused(f bool) {
	if b.focused == f {
		return
	}
	b.focused = f
	b.Invalidate()
}

// Visible reports whether the widget should be painted.
func (b *widgetBase) Visible() bool { return !b.hidden }

// SetVisible shows or hides the widget.
func (b *widgetBase) SetVisible(v bool) {
	if b.hidden == !v {
		return
	}
	b.hidden = !v
	b.Invalidate()
}

// Enabled reports whether the widget accepts input.
func (b *widgetBase) Enabled() bool { return b.enabled }

// SetEnabled toggles input acceptance.
func (b *widgetBase) SetEnabled(v bool) {
	if b.enabled == v {
		return
	}
	b.enabled = v
	b.Invalidate()
}

// Focused reports whether the widget currently holds keyboard focus.
func (b *widgetBase) Focused() bool { return b.focused }

// Invalidate marks the widget's area as needing repaint. Repeated calls
// between renders are free: once the widget's bounds are in the pending
// damage set, further invalidations short-circuit on the dirty flag.
func (b *widgetBase) Invalidate() {
	if b.display == nil {
		return
	}
	if b.dirtyGen == b.display.gen {
		return // bounds already fully damaged since the last render
	}
	b.dirtyGen = b.display.gen
	b.display.addDamage(b.bounds)
}

func (b *widgetBase) invalidate(r gfx.Rect) {
	if b.display != nil {
		b.display.addDamage(r)
	}
}

// markDirty records that the widget's current bounds are covered by
// pending damage without posting anything (callers already did).
func (b *widgetBase) markDirty() {
	if b.display != nil {
		b.dirtyGen = b.display.gen
	}
}

func (b *widgetBase) attach(d *Display) {
	b.display = d
	b.dirtyGen = 0
}

// attachTree wires w and all descendants to d.
func attachTree(w Widget, d *Display) {
	w.attach(d)
	for _, c := range w.Children() {
		attachTree(c, d)
	}
}

// widgetAt returns the deepest visible widget containing (x, y), or nil.
func widgetAt(w Widget, x, y int) Widget {
	if w == nil || !w.Visible() || !w.Bounds().Contains(x, y) {
		return nil
	}
	children := w.Children()
	for i := len(children) - 1; i >= 0; i-- { // later children paint on top
		if hit := widgetAt(children[i], x, y); hit != nil {
			return hit
		}
	}
	return w
}

// collectFocusables appends, in paint order, every visible focusable widget.
func collectFocusables(w Widget, out []Widget) []Widget {
	if w == nil || !w.Visible() {
		return out
	}
	if w.Focusable() {
		out = append(out, w)
	}
	for _, c := range w.Children() {
		out = collectFocusables(c, out)
	}
	return out
}
