package toolkit

import (
	"sync"

	"uniint/internal/gfx"
)

// Display is a window-system session: a framebuffer, a widget tree, a
// focus chain and a pointer grab. It is the unit the UniInt server exports
// over the universal interaction protocol.
//
// Display methods are safe for concurrent use. Widget callbacks (OnClick
// and friends) run with the display lock held; they must not call Display
// methods synchronously — hand work off to another goroutine instead.
type Display struct {
	mu      sync.Mutex
	fb      *gfx.Framebuffer
	damage  *gfx.Damage
	root    Widget
	focus   Widget
	grab    Widget // widget holding the pointer between press and release
	buttons uint8  // last observed pointer button mask
	px, py  int    // last pointer position

	// damageHooks are run (without the lock) after new damage appears;
	// the UniInt server uses this to answer pending incremental requests.
	hookMu      sync.Mutex
	damageHooks []func()
}

// NewDisplay creates a display with a w×h framebuffer and an empty root.
func NewDisplay(w, h int) *Display {
	d := &Display{
		fb:     gfx.NewFramebuffer(w, h),
		damage: gfx.NewDamage(gfx.R(0, 0, w, h), 16),
	}
	root := NewPanel(VBox{Gap: 4, Padding: 4})
	d.SetRoot(root)
	return d
}

// Size returns the framebuffer geometry.
func (d *Display) Size() (w, h int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fb.W(), d.fb.H()
}

// SetRoot installs the root widget, sizes it to the display, resets focus
// to the first focusable widget and marks everything dirty.
func (d *Display) SetRoot(w Widget) {
	d.mu.Lock()
	d.root = w
	if w != nil {
		attachTree(w, d)
		w.SetBounds(d.fb.Bounds())
	}
	d.focus = nil
	d.grab = nil
	d.focusFirstLocked()
	d.damage.AddAll()
	d.mu.Unlock()
	d.notifyDamage()
}

// Root returns the current root widget.
func (d *Display) Root() Widget {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.root
}

// OnDamage registers fn to run whenever new damage is recorded. fn runs on
// the goroutine that caused the damage, without the display lock.
func (d *Display) OnDamage(fn func()) {
	d.hookMu.Lock()
	defer d.hookMu.Unlock()
	d.damageHooks = append(d.damageHooks, fn)
}

func (d *Display) notifyDamage() {
	d.hookMu.Lock()
	hooks := make([]func(), len(d.damageHooks))
	copy(hooks, d.damageHooks)
	d.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// addDamage is called by widgets (with the lock already held).
func (d *Display) addDamage(r gfx.Rect) { d.damage.Add(r) }

// Render repaints the widget tree if dirty and returns the damage
// rectangles that were refreshed (nil when nothing changed).
func (d *Display) Render() []gfx.Rect {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.renderLocked()
}

func (d *Display) renderLocked() []gfx.Rect {
	if d.damage.Empty() {
		return nil
	}
	rects := d.damage.Take()
	if d.root != nil {
		paintTree(d.root, d.fb)
	}
	return rects
}

func paintTree(w Widget, fb *gfx.Framebuffer) {
	if !w.Visible() {
		return
	}
	w.Paint(fb)
	for _, c := range w.Children() {
		paintTree(c, fb)
	}
}

// Update runs fn with the display lock held and fires damage hooks
// afterwards. Any code mutating widgets from outside an event callback
// (e.g. the home application reacting to appliance state changes) must go
// through Update. fn must not call other Display methods.
func (d *Display) Update(fn func()) {
	d.mu.Lock()
	fn()
	d.mu.Unlock()
	d.notifyDamage()
}

// WithFramebuffer runs fn with the framebuffer locked. The UniInt server
// uses this to encode update rectangles without copying. fn must not call
// back into the display.
func (d *Display) WithFramebuffer(fn func(fb *gfx.Framebuffer)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fn(d.fb)
}

// Snapshot renders pending damage and returns a copy of region r.
func (d *Display) Snapshot(r gfx.Rect) *gfx.Framebuffer {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.renderLocked()
	return d.fb.SubImage(r)
}

// Dirty reports whether undrawn damage is pending.
func (d *Display) Dirty() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.damage.Empty()
}

// --- input injection -----------------------------------------------------

// InjectPointer translates a universal pointer state (position + button
// mask) into press/release/move events for the widget tree. It implements
// the pointer half of the universal input event vocabulary.
func (d *Display) InjectPointer(x, y int, buttons uint8) {
	d.mu.Lock()
	prev := d.buttons
	d.buttons = buttons
	d.px, d.py = x, y

	pressed := buttons&1 != 0 && prev&1 == 0
	released := buttons&1 == 0 && prev&1 != 0

	switch {
	case pressed:
		target := widgetAt(d.root, x, y)
		d.grab = target
		if target != nil {
			if target.Focusable() {
				d.setFocusLocked(target)
			}
			target.HandleMouse(MouseEvent{Kind: MousePress, X: x, Y: y})
		}
	case released:
		if d.grab != nil {
			d.grab.HandleMouse(MouseEvent{Kind: MouseRelease, X: x, Y: y})
			d.grab = nil
		}
	default:
		if d.grab != nil {
			d.grab.HandleMouse(MouseEvent{Kind: MouseMove, X: x, Y: y})
		}
	}
	d.mu.Unlock()
	d.notifyDamage()
}

// Click is a convenience for tests and input plug-ins that synthesize a
// full press+release at (x, y).
func (d *Display) Click(x, y int) {
	d.InjectPointer(x, y, 1)
	d.InjectPointer(x, y, 0)
}

// InjectKey delivers a universal keyboard event. Tab (and Down) move focus
// forward, Up moves focus backward, everything else goes to the focused
// widget. This keyboard-only navigation path is what keypad devices (cell
// phones, remote controls) are translated into by their input plug-ins.
func (d *Display) InjectKey(down bool, key Key) {
	d.mu.Lock()
	ev := KeyEvent{Down: down, Key: key}

	// Focused widget gets the first chance (a slider consumes Left/Right).
	if d.focus != nil && d.focus.HandleKey(ev) {
		d.mu.Unlock()
		d.notifyDamage()
		return
	}
	if down {
		switch key {
		case KeyTab, KeyDown:
			d.moveFocusLocked(+1)
		case KeyUp:
			d.moveFocusLocked(-1)
		}
	}
	d.mu.Unlock()
	d.notifyDamage()
}

// --- focus ---------------------------------------------------------------

// Focus returns the currently focused widget (nil when none).
func (d *Display) Focus() Widget {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.focus
}

// FocusWidget programmatically moves focus to w (must be in the tree).
func (d *Display) FocusWidget(w Widget) {
	d.mu.Lock()
	d.setFocusLocked(w)
	d.mu.Unlock()
	d.notifyDamage()
}

func (d *Display) setFocusLocked(w Widget) {
	if d.focus == w {
		return
	}
	if d.focus != nil {
		d.focus.SetFocused(false)
	}
	d.focus = w
	if w != nil {
		w.SetFocused(true)
	}
}

func (d *Display) focusFirstLocked() {
	focusables := collectFocusables(d.root, nil)
	if len(focusables) > 0 {
		d.setFocusLocked(focusables[0])
	} else {
		d.setFocusLocked(nil)
	}
}

func (d *Display) moveFocusLocked(dir int) {
	focusables := collectFocusables(d.root, nil)
	if len(focusables) == 0 {
		d.setFocusLocked(nil)
		return
	}
	idx := -1
	for i, w := range focusables {
		if w == d.focus {
			idx = i
			break
		}
	}
	if idx < 0 {
		d.setFocusLocked(focusables[0])
		return
	}
	idx = (idx + dir + len(focusables)) % len(focusables)
	d.setFocusLocked(focusables[idx])
}

// RefreshFocus re-validates focus after the tree changed (e.g. the home
// application regenerated the composed panel).
func (d *Display) RefreshFocus() {
	d.mu.Lock()
	focusables := collectFocusables(d.root, nil)
	found := false
	for _, w := range focusables {
		if w == d.focus {
			found = true
			break
		}
	}
	if !found {
		d.focusFirstLocked()
	}
	d.mu.Unlock()
	d.notifyDamage()
}
