package toolkit

import (
	"sync"
	"time"

	"uniint/internal/gfx"
	"uniint/internal/metrics"
	"uniint/internal/trace"
)

// Render-path instruments. repainted vs full pixels is the damage-clipped
// renderer's win: one-widget updates repaint O(widget) pixels where the
// pre-incremental renderer repainted the whole screen.
var (
	mRenderFrames  = metrics.Default().Counter("render_frames_total")
	mRenderPx      = metrics.Default().Counter("render_px_repainted_total")
	mRenderFullPx  = metrics.Default().Counter("render_px_full_total")
	mRenderVisited = metrics.Default().Counter("render_widgets_visited_total")
	mRenderPainted = metrics.Default().Counter("render_widgets_painted_total")
)

// Display is a window-system session: a framebuffer, a widget tree, a
// focus chain and a pointer grab. It is the unit the UniInt server exports
// over the universal interaction protocol.
//
// Display methods are safe for concurrent use. Widget callbacks (OnClick
// and friends) run with the display lock held; they must not call Display
// methods synchronously — hand work off to another goroutine instead.
//
// Two locks split the session: mu guards the widget tree, damage and input
// state; fbMu guards the framebuffer pixels (always acquired after mu).
// Readers that only need pixels — the encode path shipping rectangles to a
// proxy — take fbMu alone, so a slow encode never blocks the input/event
// path, and painting (which needs both) is damage-bounded and brief.
type Display struct {
	mu      sync.Mutex
	damage  *gfx.Damage
	scratch []gfx.Rect // ping-pongs with the damage tracker via TakeInto
	gen     uint64     // damage generation; see widgetBase.dirtyGen
	notify  bool       // new damage since the last hook firing
	root    Widget
	focus   Widget
	grab    Widget // widget holding the pointer between press and release
	buttons uint8  // last observed pointer button mask
	px, py  int    // last pointer position

	// injectTrace tags damage produced while a traced input event is being
	// injected; renderTrace latches the id of the last traced render until
	// RenderTraceInto hands it to the update pipeline. Both under mu.
	injectTrace uint64
	renderTrace uint64

	fbMu sync.Mutex
	fb   *gfx.Framebuffer

	// damageHooks are run (without the locks) after new damage appears;
	// the UniInt server uses this to answer pending incremental requests.
	hookMu      sync.Mutex
	damageHooks []func()
}

// NewDisplay creates a display with a w×h framebuffer and an empty root.
func NewDisplay(w, h int) *Display {
	d := &Display{
		fb:     gfx.NewFramebuffer(w, h),
		damage: gfx.NewDamage(gfx.R(0, 0, w, h), 16),
		gen:    1,
	}
	root := NewPanel(VBox{Gap: 4, Padding: 4})
	d.SetRoot(root)
	return d
}

// Size returns the framebuffer geometry.
func (d *Display) Size() (w, h int) {
	d.fbMu.Lock()
	defer d.fbMu.Unlock()
	return d.fb.W(), d.fb.H()
}

// SetRoot installs the root widget, sizes it to the display, resets focus
// to the first focusable widget and marks everything dirty — one of the two
// events (with Resize) still paid for with a full-tree repaint.
func (d *Display) SetRoot(w Widget) {
	d.mu.Lock()
	d.root = w
	if w != nil {
		attachTree(w, d)
		w.SetBounds(d.fbBounds())
	}
	d.focus = nil
	d.grab = nil
	d.focusFirstLocked()
	d.damage.AddAll()
	d.notify = true
	d.mu.Unlock()
	d.notifyDamage()
}

// Resize replaces the framebuffer with a w×h one, re-lays-out the root and
// marks everything dirty.
func (d *Display) Resize(w, h int) {
	d.mu.Lock()
	d.fbMu.Lock()
	d.fb = gfx.NewFramebuffer(w, h)
	d.fbMu.Unlock()
	d.damage.Resize(gfx.R(0, 0, w, h))
	if d.root != nil {
		d.root.SetBounds(gfx.R(0, 0, w, h))
	}
	d.notify = true
	d.mu.Unlock()
	d.notifyDamage()
}

// fbBounds returns the framebuffer bounds (callers hold mu but not fbMu).
func (d *Display) fbBounds() gfx.Rect {
	d.fbMu.Lock()
	defer d.fbMu.Unlock()
	return d.fb.Bounds()
}

// Root returns the current root widget.
func (d *Display) Root() Widget {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.root
}

// OnDamage registers fn to run whenever new damage is recorded. fn runs on
// the goroutine that caused the damage, without the display lock.
func (d *Display) OnDamage(fn func()) {
	d.hookMu.Lock()
	defer d.hookMu.Unlock()
	d.damageHooks = append(d.damageHooks, fn)
}

// notifyDamage fires the damage hooks — but only when damage actually
// arrived since the last firing. No-op state echoes from appliances (a
// SetOn(true) on an already-on toggle, a SetText with the same string)
// post no damage and therefore wake nobody.
func (d *Display) notifyDamage() {
	d.mu.Lock()
	fire := d.notify
	d.notify = false
	d.mu.Unlock()
	if !fire {
		return
	}
	d.hookMu.Lock()
	hooks := d.damageHooks
	d.hookMu.Unlock()
	// hooks is only ever appended to under hookMu; iterating the snapshot
	// header without a copy is safe (a hook registered concurrently just
	// misses this round).
	for _, fn := range hooks {
		fn()
	}
}

// addDamage is called by widgets (with the lock already held).
func (d *Display) addDamage(r gfx.Rect) {
	r = r.Intersect(d.damage.ClipBounds())
	if r.Empty() {
		return
	}
	d.damage.Add(r)
	if d.injectTrace != 0 {
		// Damage caused while a traced event is mid-injection belongs to
		// that interaction; the tag rides the damage set to the render.
		d.damage.MarkTrace(d.injectTrace)
	}
	d.notify = true
}

// InvalidateAll marks the whole display dirty, forcing a full repaint on
// the next render (e.g. after an output device switch).
func (d *Display) InvalidateAll() {
	d.mu.Lock()
	d.damage.AddAll()
	d.notify = true
	d.mu.Unlock()
	d.notifyDamage()
}

// Render repaints the damaged parts of the widget tree and returns a copy
// of the refreshed rectangles (nil when nothing changed). Hot paths that
// must not allocate use RenderInto instead.
func (d *Display) Render() []gfx.Rect {
	d.mu.Lock()
	defer d.mu.Unlock()
	rects := d.renderLocked()
	if rects == nil {
		return nil
	}
	out := make([]gfx.Rect, len(rects))
	copy(out, rects)
	return out
}

// RenderInto is Render with caller-owned result storage: the refreshed
// rectangles are appended to dst[:0] and returned. With a recycled dst the
// steady-state render path performs zero allocations.
func (d *Display) RenderInto(dst []gfx.Rect) []gfx.Rect {
	d.mu.Lock()
	defer d.mu.Unlock()
	rects := d.renderLocked()
	if len(rects) == 0 {
		return dst[:0]
	}
	return append(dst[:0], rects...)
}

// RenderTraceInto is RenderInto additionally returning-and-clearing the
// trace id of the traced interaction whose damage this render (or a
// recent one whose rects are still undistributed) repainted — 0 when the
// repainted damage was untraced. One lock acquisition covers both, so
// the traced path costs the update pump nothing extra.
func (d *Display) RenderTraceInto(dst []gfx.Rect) ([]gfx.Rect, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rects := d.renderLocked()
	tid := d.renderTrace
	d.renderTrace = 0
	if len(rects) == 0 {
		return dst[:0], tid
	}
	return append(dst[:0], rects...), tid
}

// renderLocked drains the damage set and repaints only widgets whose
// bounds intersect a damage rectangle, with painting clipped to that
// rectangle. Full-tree repaint is just the special case of one damage rect
// covering the screen (SetRoot/Resize). The returned slice is internal
// scratch: valid only until the next render, callers copy under mu.
func (d *Display) renderLocked() []gfx.Rect {
	if d.damage.Empty() {
		return nil
	}
	// Ping-pong two buffers through the tracker: rects was accumulated
	// damage, d.scratch re-arms the tracker, and rects becomes the next
	// re-arm after this render. Nothing escapes mu, so nothing races.
	tid := d.damage.TakeTrace()
	t0 := int64(0)
	if tid != 0 {
		t0 = time.Now().UnixNano()
	}
	rects := d.damage.TakeInto(d.scratch)
	d.scratch = rects
	d.gen++ // every widget's dirty flag is now stale ("clean")
	var visited, painted, px int64
	if d.root != nil {
		d.fbMu.Lock()
		p := gfx.NewPainter(d.fb)
		for _, r := range rects {
			v, n := paintClipped(d.root, p, r)
			visited += int64(v)
			painted += int64(n)
			// Damage rects may partially overlap (the tracker only merges
			// exact covers); overlap pixels are painted once per rect, so
			// summing areas reports pixels *painted*, the actual work.
			px += int64(r.Intersect(d.fb.Bounds()).Area())
		}
		mRenderFullPx.Add(int64(d.fb.Bounds().Area()))
		d.fbMu.Unlock()
	}
	mRenderFrames.Inc()
	mRenderPx.Add(px)
	mRenderVisited.Add(visited)
	mRenderPainted.Add(painted)
	if tid != 0 {
		// This repaint covered a traced interaction's damage: record the
		// render span and latch the id for RenderTraceInto's caller.
		trace.Record(tid, trace.StageRender, t0, time.Now().UnixNano())
		d.renderTrace = tid
	}
	return rects
}

// paintClipped walks the tree under damage rectangle clip: every visible
// widget intersecting clip repaints, restricted to (its bounds ∩ clip).
// Subtrees are not pruned on a parent miss — layouts like Fixed allow
// children outside their parent's bounds — but the per-node cost of a miss
// is a rectangle test, not pixels.
func paintClipped(w Widget, p gfx.Painter, clip gfx.Rect) (visited, painted int) {
	if !w.Visible() {
		return 0, 0
	}
	visited = 1
	if sub := p.In(clip).In(w.Bounds()); !sub.Empty() {
		w.Paint(sub)
		painted = 1
	}
	for _, c := range w.Children() {
		v, n := paintClipped(c, p, clip)
		visited += v
		painted += n
	}
	return visited, painted
}

// Update runs fn with the display lock held and fires damage hooks
// afterwards (only if fn actually damaged something). Any code mutating
// widgets from outside an event callback (e.g. the home application
// reacting to appliance state changes) must go through Update. fn must not
// call other Display methods.
func (d *Display) Update(fn func()) {
	d.mu.Lock()
	fn()
	d.mu.Unlock()
	d.notifyDamage()
}

// WithFramebuffer runs fn with the framebuffer locked. The UniInt server
// uses this to encode update rectangles without copying. Only the pixel
// lock is held: input injection and widget mutation proceed while fn runs,
// renders wait. fn must not call back into the display.
func (d *Display) WithFramebuffer(fn func(fb *gfx.Framebuffer)) {
	d.fbMu.Lock()
	defer d.fbMu.Unlock()
	fn(d.fb)
}

// Snapshot renders pending damage and returns a copy of region r.
func (d *Display) Snapshot(r gfx.Rect) *gfx.Framebuffer {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.renderLocked()
	d.fbMu.Lock()
	defer d.fbMu.Unlock()
	return d.fb.SubImage(r)
}

// Dirty reports whether undrawn damage is pending.
func (d *Display) Dirty() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.damage.Empty()
}

// --- input injection -----------------------------------------------------

// InjectPointer translates a universal pointer state (position + button
// mask) into press/release/move events for the widget tree. It implements
// the pointer half of the universal input event vocabulary.
func (d *Display) InjectPointer(x, y int, buttons uint8) {
	d.InjectPointerTraced(x, y, buttons, 0)
}

// InjectPointerTraced is InjectPointer attributing any damage the
// injection produces to the sampled interaction tid (0 = untraced — the
// plain InjectPointer path, at no extra cost).
func (d *Display) InjectPointerTraced(x, y int, buttons uint8, tid uint64) {
	d.mu.Lock()
	d.injectTrace = tid
	prev := d.buttons
	d.buttons = buttons
	d.px, d.py = x, y

	pressed := buttons&1 != 0 && prev&1 == 0
	released := buttons&1 == 0 && prev&1 != 0

	switch {
	case pressed:
		target := widgetAt(d.root, x, y)
		d.grab = target
		if target != nil {
			if target.Focusable() {
				d.setFocusLocked(target)
			}
			target.HandleMouse(MouseEvent{Kind: MousePress, X: x, Y: y})
		}
	case released:
		if d.grab != nil {
			d.grab.HandleMouse(MouseEvent{Kind: MouseRelease, X: x, Y: y})
			d.grab = nil
		}
	default:
		if d.grab != nil {
			d.grab.HandleMouse(MouseEvent{Kind: MouseMove, X: x, Y: y})
		}
	}
	d.injectTrace = 0
	d.mu.Unlock()
	d.notifyDamage()
}

// Click is a convenience for tests and input plug-ins that synthesize a
// full press+release at (x, y).
func (d *Display) Click(x, y int) {
	d.InjectPointer(x, y, 1)
	d.InjectPointer(x, y, 0)
}

// InjectKey delivers a universal keyboard event. Tab (and Down) move focus
// forward, Up moves focus backward, everything else goes to the focused
// widget. This keyboard-only navigation path is what keypad devices (cell
// phones, remote controls) are translated into by their input plug-ins.
func (d *Display) InjectKey(down bool, key Key) {
	d.InjectKeyTraced(down, key, 0)
}

// InjectKeyTraced is InjectKey attributing any damage the injection
// produces to the sampled interaction tid (0 = untraced).
func (d *Display) InjectKeyTraced(down bool, key Key, tid uint64) {
	d.mu.Lock()
	d.injectTrace = tid
	ev := KeyEvent{Down: down, Key: key}

	// Focused widget gets the first chance (a slider consumes Left/Right).
	if d.focus != nil && d.focus.HandleKey(ev) {
		d.injectTrace = 0
		d.mu.Unlock()
		d.notifyDamage()
		return
	}
	if down {
		switch key {
		case KeyTab, KeyDown:
			d.moveFocusLocked(+1)
		case KeyUp:
			d.moveFocusLocked(-1)
		}
	}
	d.injectTrace = 0
	d.mu.Unlock()
	d.notifyDamage()
}

// --- focus ---------------------------------------------------------------

// Focus returns the currently focused widget (nil when none).
func (d *Display) Focus() Widget {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.focus
}

// FocusWidget programmatically moves focus to w (must be in the tree).
func (d *Display) FocusWidget(w Widget) {
	d.mu.Lock()
	d.setFocusLocked(w)
	d.mu.Unlock()
	d.notifyDamage()
}

func (d *Display) setFocusLocked(w Widget) {
	if d.focus == w {
		return
	}
	if d.focus != nil {
		d.focus.SetFocused(false)
	}
	d.focus = w
	if w != nil {
		w.SetFocused(true)
	}
}

func (d *Display) focusFirstLocked() {
	focusables := collectFocusables(d.root, nil)
	if len(focusables) > 0 {
		d.setFocusLocked(focusables[0])
	} else {
		d.setFocusLocked(nil)
	}
}

func (d *Display) moveFocusLocked(dir int) {
	focusables := collectFocusables(d.root, nil)
	if len(focusables) == 0 {
		d.setFocusLocked(nil)
		return
	}
	idx := -1
	for i, w := range focusables {
		if w == d.focus {
			idx = i
			break
		}
	}
	if idx < 0 {
		d.setFocusLocked(focusables[0])
		return
	}
	idx = (idx + dir + len(focusables)) % len(focusables)
	d.setFocusLocked(focusables[idx])
}

// RefreshFocus re-validates focus after the tree changed (e.g. the home
// application regenerated the composed panel).
func (d *Display) RefreshFocus() {
	d.mu.Lock()
	focusables := collectFocusables(d.root, nil)
	found := false
	for _, w := range focusables {
		if w == d.focus {
			found = true
			break
		}
	}
	if !found {
		d.focusFirstLocked()
	}
	d.mu.Unlock()
	d.notifyDamage()
}
