package toolkit

import (
	"strconv"

	"uniint/internal/gfx"
)

// Slider is a horizontal value control (volume, channel, temperature).
// Pointer devices drag the knob; keypad devices use Left/Right arrows.
type Slider struct {
	widgetBase
	label    string
	min, max int
	value    int
	step     int
	dragging bool
	// OnChange is invoked after the value changes through user input.
	OnChange func(v int)
}

var _ Widget = (*Slider)(nil)

// NewSlider creates a slider over [min, max] with the given initial value.
func NewSlider(label string, minV, maxV, value int, onChange func(int)) *Slider {
	if maxV < minV {
		maxV = minV
	}
	s := &Slider{
		widgetBase: newWidgetBase(),
		label:      label,
		min:        minV,
		max:        maxV,
		step:       1,
		OnChange:   onChange,
	}
	s.value = s.clamp(value)
	return s
}

// SetStep sets the keyboard increment (defaults to 1).
func (s *Slider) SetStep(st int) {
	if st > 0 {
		s.step = st
	}
}

// Value returns the current value.
func (s *Slider) Value() int { return s.value }

// SetValue sets the value programmatically without firing OnChange.
func (s *Slider) SetValue(v int) {
	v = s.clamp(v)
	if v == s.value {
		return
	}
	s.value = v
	s.Invalidate()
}

func (s *Slider) clamp(v int) int {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// PreferredSize implements Widget.
func (s *Slider) PreferredSize() (int, int) {
	return gfx.TextWidth(s.label) + 120, gfx.TextHeight() + 10
}

// Focusable implements Widget.
func (s *Slider) Focusable() bool { return s.enabled }

// track returns the groove rectangle.
func (s *Slider) track() gfx.Rect {
	lw := gfx.TextWidth(s.label) + 6
	vw := gfx.TextWidth(strconv.Itoa(s.max)) + 6
	r := s.bounds
	return gfx.R(r.X+lw, r.Y+r.H/2-2, r.W-lw-vw-6, 4)
}

// Paint implements Widget.
func (s *Slider) Paint(g gfx.Painter) {
	g.Fill(s.bounds, gfx.LightGray)
	y := s.bounds.Y + (s.bounds.H-gfx.TextHeight())/2 + 1
	g.DrawText(s.bounds.X+2, y, s.label, gfx.Black)
	tr := s.track()
	g.Fill(tr, gfx.White)
	g.Border(tr, gfx.DarkGray)
	// Knob position.
	span := s.max - s.min
	kx := tr.X
	if span > 0 {
		kx = tr.X + (s.value-s.min)*(tr.W-6)/span
	}
	knob := gfx.R(kx, tr.Y-4, 6, 12)
	g.Fill(knob, gfx.Gray)
	g.Bevel(knob, false)
	// Value readout.
	val := strconv.Itoa(s.value)
	g.DrawText(s.bounds.MaxX()-gfx.TextWidth(val)-2, y, val, gfx.Navy)
	if s.focused {
		g.Border(s.bounds, gfx.Navy)
	}
}

// HandleMouse implements Widget: click or drag on the track sets the value.
func (s *Slider) HandleMouse(ev MouseEvent) bool {
	if !s.enabled {
		return false
	}
	switch ev.Kind {
	case MousePress:
		s.dragging = true
		s.moveTo(ev.X)
		return true
	case MouseMove:
		if s.dragging {
			s.moveTo(ev.X)
			return true
		}
	case MouseRelease:
		if s.dragging {
			s.dragging = false
			s.moveTo(ev.X)
			return true
		}
	}
	return false
}

func (s *Slider) moveTo(x int) {
	tr := s.track()
	if tr.W <= 6 {
		return
	}
	span := s.max - s.min
	v := s.min + (x-tr.X)*span/(tr.W-6)
	s.apply(s.clamp(v))
}

// HandleKey implements Widget: Left/Right adjust by one step.
func (s *Slider) HandleKey(ev KeyEvent) bool {
	if !s.enabled || !ev.Down {
		return false
	}
	switch ev.Key {
	case KeyLeft:
		s.apply(s.clamp(s.value - s.step))
		return true
	case KeyRight:
		s.apply(s.clamp(s.value + s.step))
		return true
	}
	return false
}

func (s *Slider) apply(v int) {
	if v == s.value {
		return
	}
	s.value = v
	s.Invalidate()
	if s.OnChange != nil {
		s.OnChange(v)
	}
}

// ProgressBar is a read-only percentage display (tape position, preheat).
type ProgressBar struct {
	widgetBase
	value int // 0..100
}

var _ Widget = (*ProgressBar)(nil)

// NewProgressBar creates a bar at the given percentage.
func NewProgressBar(value int) *ProgressBar {
	p := &ProgressBar{widgetBase: newWidgetBase()}
	p.SetValue(value)
	return p
}

// Value returns the percentage.
func (p *ProgressBar) Value() int { return p.value }

// SetValue sets the percentage (clamped to 0..100).
func (p *ProgressBar) SetValue(v int) {
	if v < 0 {
		v = 0
	}
	if v > 100 {
		v = 100
	}
	if v == p.value {
		return
	}
	p.value = v
	p.Invalidate()
}

// PreferredSize implements Widget.
func (p *ProgressBar) PreferredSize() (int, int) { return 120, 12 }

// Paint implements Widget.
func (p *ProgressBar) Paint(g gfx.Painter) {
	g.Fill(p.bounds, gfx.White)
	fill := p.bounds
	fill.W = p.bounds.W * p.value / 100
	g.Fill(fill, gfx.Blue)
	g.Border(p.bounds, gfx.DarkGray)
}
