package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"uniint/internal/gfx"
	"uniint/internal/metrics"
	"uniint/internal/rfb"
	"uniint/internal/trace"
)

// Process-wide instruments, resolved once so the hot paths touch only
// atomics. Under the multi-home hub these aggregate across every proxy in
// the process; per-proxy numbers stay available via Stats.
var (
	mRawEvents      = metrics.Default().Counter("proxy_raw_events_total")
	mDroppedRaw     = metrics.Default().Counter("proxy_dropped_events_total")
	mUniSent        = metrics.Default().Counter("proxy_universal_events_total")
	mFrames         = metrics.Default().Counter("proxy_frames_presented_total")
	mPresentSeconds = metrics.Default().Histogram("proxy_present_seconds", metrics.LatencyBuckets())

	// Input-pipeline instruments (proxy half). Batches are transport
	// writes: input_batched_events_total / input_batches_total is the
	// events-per-syscall win, input_coalesced_proxy_total the moves that
	// never even reached the wire.
	mInputBatches       = metrics.Default().Counter("input_batches_total")
	mInputBatchedEvents = metrics.Default().Counter("input_batched_events_total")
	mInputProxyCoalesce = metrics.Default().Counter("input_coalesced_proxy_total")
	mInputForwardErrors = metrics.Default().Counter("input_forward_errors_total")
	mInputPumpStops     = metrics.Default().Counter("input_pump_stops_total")
)

// Errors returned by proxy device management.
var (
	ErrUnknownDevice = errors.New("core: unknown device")
	ErrDuplicateID   = errors.New("core: duplicate device id")
	ErrNoSuchClass   = errors.New("core: no attached device of class")
	ErrProxyClosed   = errors.New("core: proxy closed")
	ErrNilPlugin     = errors.New("core: device supplied no plug-in")
	ErrNotRunning    = errors.New("core: proxy not running")
)

// Proxy is the UniInt proxy: one universal-interaction client connection
// plus the attached interaction devices and their plug-in modules.
type Proxy struct {
	client *rfb.ClientConn

	mu        sync.Mutex
	inputs    map[string]*inputBinding
	outputs   map[string]*outputBinding
	activeIn  string
	activeOut string
	mirrors   map[string]bool // extra output devices fed alongside the primary
	closed    bool

	// activeInput mirrors activeIn as a binding pointer, updated under mu
	// but readable without it: the event pumps take an atomic snapshot per
	// raw event, so a pointer flood on a non-selected device never
	// contends SelectInput/AttachOutput on the proxy mutex.
	activeInput atomic.Pointer[inputBinding]

	// inMu serializes translation+forwarding of input events and doubles
	// as the switch barrier (the presentMu pattern, input side): after
	// SelectInput or DetachInput returns, no event from a just-deselected
	// or detached device is still in flight. It also guards flusher.
	inMu    sync.Mutex
	flusher inputFlusher

	running atomic.Bool
	rearm   chan struct{}
	wg      sync.WaitGroup

	// presentMu serializes output presentation so mirror/selection
	// changes can wait out an in-flight presentation (strict "no frames
	// after return" semantics for RemoveMirror).
	presentMu sync.Mutex
	// Presentation scratch, guarded by presentMu: the present path runs
	// once per framebuffer update on every session, so its working set
	// is reused instead of reallocated (the update pipeline's
	// zero-allocation discipline, proxy side).
	presentTargets []*outputBinding
	presentFrames  []Frame

	stats proxyStats
}

type inputBinding struct {
	dev    InputDevice
	plugin InputPlugin
	stop   chan struct{}
}

type outputBinding struct {
	dev    OutputDevice
	plugin OutputPlugin
	seq    atomic.Uint64
}

type proxyStats struct {
	rawEvents     atomic.Int64
	droppedRaw    atomic.Int64
	uniSent       atomic.Int64
	coalesced     atomic.Int64
	batches       atomic.Int64
	forwardErrors atomic.Int64
	frames        atomic.Int64
	inSwitches    atomic.Int64
	outSwitches   atomic.Int64
	convertFails  atomic.Int64
}

// Stats is a snapshot of proxy counters.
type Stats struct {
	RawEvents       int64 // device events received (all attached devices)
	DroppedRaw      int64 // events from non-selected devices, discarded
	UniversalSent   int64 // universal events forwarded to the server
	EventsCoalesced int64 // pointer moves absorbed before reaching the wire
	BatchesFlushed  int64 // batched transport writes carrying the above
	ForwardErrors   int64 // events lost to connection write failures
	FramesPresented int64 // converted frames delivered to output devices
	InputSwitches   int64
	OutputSwitches  int64
	BytesToServer   int64
	BytesFromServer int64
}

// NewProxy wraps an already-handshaked client connection.
func NewProxy(client *rfb.ClientConn) *Proxy {
	return &Proxy{
		client:  client,
		inputs:  make(map[string]*inputBinding),
		outputs: make(map[string]*outputBinding),
		mirrors: make(map[string]bool),
		rearm:   make(chan struct{}, 1),
	}
}

// Dial connects to a UniInt server over conn and returns the proxy.
func Dial(conn net.Conn) (*Proxy, error) {
	return DialResume(conn, "")
}

// DialResume is Dial presenting a resume token from a previous session:
// a server that still holds the parked session reclaims it and ships
// only the damage accumulated while the link was down. Resumed reports
// the verdict; SessionToken carries the token for the next reconnect.
func DialResume(conn net.Conn, token string) (*Proxy, error) {
	client, err := rfb.DialResume(conn, token)
	if err != nil {
		return nil, fmt.Errorf("core: dial server: %w", err)
	}
	c := NewProxy(client)
	// Advertise the compact encodings the proxy can decode, wire-tier
	// first: tile references/installs and dictionary-zlib save the most
	// bytes, then the content-adaptive set.
	if err := client.SetEncodings([]int32{
		rfb.EncTileRef, rfb.EncTileInstall, rfb.EncZlibDict,
		rfb.EncHextile, rfb.EncRRE, rfb.EncZlib, rfb.EncCopyRect, rfb.EncRaw,
	}); err != nil {
		client.Close()
		return nil, err
	}
	return c, nil
}

// SessionToken returns the resume token the server issued for this
// session ("" when the server issues none). Present it to DialResume
// after a link failure to reclaim the server-side session.
func (p *Proxy) SessionToken() string { return p.client.Token() }

// Resumed reports whether this connection reclaimed a parked server-side
// session.
func (p *Proxy) Resumed() bool { return p.client.Resumed() }

// Client exposes the underlying protocol connection (stats, testing).
func (p *Proxy) Client() *rfb.ClientConn { return p.client }

// Run drives the protocol read loop until the connection closes. It must
// be called exactly once, typically on its own goroutine.
//
// Incremental update requests are re-armed by a helper goroutine rather
// than from the read loop itself, so the read loop never contends on the
// connection's write path — a requirement for deadlock freedom over fully
// synchronous transports (net.Pipe).
func (p *Proxy) Run() error {
	p.running.Store(true)
	defer p.running.Store(false)
	quit := make(chan struct{})
	done := make(chan struct{})
	go p.rearmLoop(quit, done)
	err := p.client.Run(proxyHandler{p})
	// The read loop is the proxy's heartbeat: once it exits the session is
	// over, so close the transport to unblock any peer writer.
	p.client.Close()
	close(quit)
	<-done
	return err
}

// rearmLoop issues one incremental FramebufferUpdateRequest per signal.
func (p *Proxy) rearmLoop(quit, done chan struct{}) {
	defer close(done)
	w, h := p.client.Size()
	full := gfx.R(0, 0, w, h)
	for {
		select {
		case <-p.rearm:
			// Errors mean the connection is going down; Run reports it.
			_ = p.client.RequestUpdate(true, full)
		case <-quit:
			return
		}
	}
}

// Close tears down the connection and stops all device pumps.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, b := range p.inputs {
		close(b.stop)
	}
	p.mu.Unlock()
	p.client.Close()
	p.wg.Wait()
}

// Stats returns a snapshot of the proxy counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		RawEvents:       p.stats.rawEvents.Load(),
		DroppedRaw:      p.stats.droppedRaw.Load(),
		UniversalSent:   p.stats.uniSent.Load(),
		EventsCoalesced: p.stats.coalesced.Load(),
		BatchesFlushed:  p.stats.batches.Load(),
		ForwardErrors:   p.stats.forwardErrors.Load(),
		FramesPresented: p.stats.frames.Load(),
		InputSwitches:   p.stats.inSwitches.Load(),
		OutputSwitches:  p.stats.outSwitches.Load(),
		BytesToServer:   p.client.BytesSent(),
		BytesFromServer: p.client.BytesReceived(),
	}
}

// --- device attachment ----------------------------------------------------

// AttachInput registers an input device. The device's plug-in module is
// received ("transmitted" in the paper's terms) here; a pump goroutine
// starts draining the device's event stream immediately so that switching
// to it later is instantaneous.
func (p *Proxy) AttachInput(d InputDevice) error {
	plugin := d.InputPlugin()
	if plugin == nil {
		return fmt.Errorf("%w: input %s", ErrNilPlugin, d.ID())
	}
	w, h := p.client.Size()
	plugin.Bind(w, h)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrProxyClosed
	}
	if _, dup := p.inputs[d.ID()]; dup {
		p.mu.Unlock()
		return fmt.Errorf("%w: input %s", ErrDuplicateID, d.ID())
	}
	b := &inputBinding{dev: d, plugin: plugin, stop: make(chan struct{})}
	p.inputs[d.ID()] = b
	p.mu.Unlock()

	p.wg.Add(1)
	go p.pumpInput(b)
	return nil
}

// DetachInput stops and removes an input device. Detaching the selected
// device leaves no input selected. When DetachInput returns, no event
// from the device is still being translated or forwarded: the detach
// barrier waits out in-flight work (the RemoveMirror pattern).
func (p *Proxy) DetachInput(id string) error {
	p.mu.Lock()
	b, ok := p.inputs[id]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: input %s", ErrUnknownDevice, id)
	}
	delete(p.inputs, id)
	if p.activeIn == id {
		p.activeIn = ""
		p.activeInput.Store(nil)
	}
	p.mu.Unlock()
	close(b.stop)
	p.inputBarrier()
	return nil
}

// inputBarrier waits out any in-flight translation/forward so selection
// and detachment changes are strict: once the mutating call returns, no
// event admitted under the old selection is still on its way upstream.
func (p *Proxy) inputBarrier() {
	p.inMu.Lock() // barrier: drain any in-flight translation/forward
	p.inMu.Unlock()
}

// AttachOutput registers an output device and receives its plug-in module.
func (p *Proxy) AttachOutput(d OutputDevice) error {
	plugin := d.OutputPlugin()
	if plugin == nil {
		return fmt.Errorf("%w: output %s", ErrNilPlugin, d.ID())
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrProxyClosed
	}
	if _, dup := p.outputs[d.ID()]; dup {
		return fmt.Errorf("%w: output %s", ErrDuplicateID, d.ID())
	}
	p.outputs[d.ID()] = &outputBinding{dev: d, plugin: plugin}
	return nil
}

// DetachOutput removes an output device.
func (p *Proxy) DetachOutput(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.outputs[id]; !ok {
		return fmt.Errorf("%w: output %s", ErrUnknownDevice, id)
	}
	delete(p.outputs, id)
	if p.activeOut == id {
		p.activeOut = ""
	}
	return nil
}

// InputIDs lists attached input devices.
func (p *Proxy) InputIDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.inputs))
	for id := range p.inputs {
		out = append(out, id)
	}
	return out
}

// OutputIDs lists attached output devices.
func (p *Proxy) OutputIDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.outputs))
	for id := range p.outputs {
		out = append(out, id)
	}
	return out
}

// --- selection and switching (C1, C2) --------------------------------------

// SelectInput makes the named device the session's input. Events from all
// other input devices are discarded while it is selected. The switch is
// strict: when SelectInput returns, no event from the previously selected
// device is still being translated or forwarded (the selection barrier
// covers in-flight work, mirroring RemoveMirror's presentMu pattern).
func (p *Proxy) SelectInput(id string) error {
	p.mu.Lock()
	b, ok := p.inputs[id]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: input %s", ErrUnknownDevice, id)
	}
	changed := p.activeIn != id
	if changed {
		p.activeIn = id
		p.activeInput.Store(b)
		p.stats.inSwitches.Add(1)
	}
	p.mu.Unlock()
	if changed {
		p.inputBarrier()
	}
	return nil
}

// SelectOutput makes the named device the session's display. The proxy
// renegotiates the wire pixel format to the device's preference and
// demands a full update so the new device starts with a complete frame.
func (p *Proxy) SelectOutput(id string) error {
	p.mu.Lock()
	b, ok := p.outputs[id]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: output %s", ErrUnknownDevice, id)
	}
	changed := p.activeOut != id
	p.activeOut = id
	p.mu.Unlock()

	if changed {
		p.stats.outSwitches.Add(1)
		return p.negotiateOutput(b, false)
	}
	return nil
}

// negotiateOutput renegotiates the wire pixel format for the output
// binding and demands a repaint — full for a user-visible device switch,
// incremental on a resumed restore (the server preserved the session and
// ships only the detach-window damage).
func (p *Proxy) negotiateOutput(b *outputBinding, incremental bool) error {
	if err := p.client.SetPixelFormat(b.plugin.PixelFormat()); err != nil {
		return err
	}
	w, h := p.client.Size()
	return p.client.RequestUpdate(incremental, gfx.R(0, 0, w, h))
}

// restoreOutput re-applies an output selection on a rebuilt connection
// (the Supervisor's reconnect path). Unlike SelectOutput it always
// renegotiates — the new connection has no negotiated state yet — and on
// a resumed session requests incrementally instead of forcing the full
// repaint a cold rejoin needs.
func (p *Proxy) restoreOutput(id string, resumed bool) error {
	p.mu.Lock()
	b, ok := p.outputs[id]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: output %s", ErrUnknownDevice, id)
	}
	p.activeOut = id
	p.mu.Unlock()
	return p.negotiateOutput(b, resumed)
}

// SelectInputByClass selects the first attached input device of the given
// class (deterministically: lowest id wins).
func (p *Proxy) SelectInputByClass(class string) error {
	id, ok := p.findByClass(class, true)
	if !ok {
		return fmt.Errorf("%w: input class %q", ErrNoSuchClass, class)
	}
	return p.SelectInput(id)
}

// SelectOutputByClass selects the first attached output device of the
// given class.
func (p *Proxy) SelectOutputByClass(class string) error {
	id, ok := p.findByClass(class, false)
	if !ok {
		return fmt.Errorf("%w: output class %q", ErrNoSuchClass, class)
	}
	return p.SelectOutput(id)
}

func (p *Proxy) findByClass(class string, input bool) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	best := ""
	if input {
		for id, b := range p.inputs {
			if b.dev.Class() == class && (best == "" || id < best) {
				best = id
			}
		}
	} else {
		for id, b := range p.outputs {
			if b.dev.Class() == class && (best == "" || id < best) {
				best = id
			}
		}
	}
	return best, best != ""
}

// AddMirror feeds the named attached output device with converted frames
// in addition to the primary output — the extension scenario where the TV
// shows the panel for everyone in the room while the user's PDA shows it
// too. The wire pixel format stays the primary device's preference;
// mirrors convert from the shared shadow framebuffer.
func (p *Proxy) AddMirror(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.outputs[id]; !ok {
		return fmt.Errorf("%w: output %s", ErrUnknownDevice, id)
	}
	p.mirrors[id] = true
	return nil
}

// RemoveMirror stops mirroring to the device. When it returns, no
// further frames reach the device: an in-flight presentation (which
// snapshots its targets before converting) is waited out.
func (p *Proxy) RemoveMirror(id string) {
	p.mu.Lock()
	delete(p.mirrors, id)
	p.mu.Unlock()
	p.presentMu.Lock() // barrier: drain any in-flight presentation
	p.presentMu.Unlock()
}

// Mirrors lists the devices currently mirrored.
func (p *Proxy) Mirrors() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.mirrors))
	for id := range p.mirrors {
		out = append(out, id)
	}
	return out
}

// ActiveInput returns the selected input device id ("" when none).
func (p *Proxy) ActiveInput() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.activeIn
}

// ActiveOutput returns the selected output device id ("" when none).
func (p *Proxy) ActiveOutput() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.activeOut
}

// --- input pipeline ---------------------------------------------------------

// pumpInput drains one device's event stream for the lifetime of its
// attachment. Events are translated and forwarded only while the device is
// selected; otherwise they are counted and dropped, keeping the device's
// channel from backing up across switches. The selection check is an
// atomic snapshot — a pointer flood on a non-selected device takes no
// lock at all.
//
// Forwarding is batched: an event plus whatever burst queued up behind it
// is translated into one coalescing batch and shipped with one transport
// write. A forward failure is fatal for the connection (the buffered
// writer sticks its error), so the pump counts the loss and stops instead
// of silently discarding every subsequent event.
func (p *Proxy) pumpInput(b *inputBinding) {
	defer p.wg.Done()
	for {
		select {
		case ev, ok := <-b.dev.Events():
			if !ok {
				return
			}
			cont, fatal := p.pumpConsume(b, ev)
			if !cont {
				if fatal {
					mInputPumpStops.Inc()
				}
				return
			}
		case <-b.stop:
			return
		}
	}
}

// pumpConsume handles one raw event plus any burst already queued behind
// it, forwarding the whole run as one batched flush. cont reports whether
// the pump should keep running; fatal marks a connection write failure
// (as opposed to orderly device shutdown).
func (p *Proxy) pumpConsume(b *inputBinding, ev RawEvent) (cont, fatal bool) {
	p.stats.rawEvents.Add(1)
	mRawEvents.Inc()
	if p.activeInput.Load() != b {
		p.stats.droppedRaw.Add(1)
		mDroppedRaw.Inc()
		return true, false
	}
	p.inMu.Lock()
	defer p.inMu.Unlock()
	// Re-check under the barrier mutex: a switch that completed between
	// the atomic snapshot and the lock has already returned to its caller,
	// so this event must no longer be forwarded.
	if p.activeInput.Load() != b {
		p.stats.droppedRaw.Add(1)
		mDroppedRaw.Inc()
		return true, false
	}
	// The sampling lottery runs here, where the proxy accepts a device
	// event for forwarding: a sampled interaction's id rides the head
	// event through batching, the wire, and the whole server pipeline.
	tid := trace.Start()
	t0 := int64(0)
	if tid != 0 {
		t0 = trace.Now()
	}
	for _, ue := range b.plugin.Translate(ev) {
		p.flusher.add(ue, tid)
	}
	// Burst batching: fold events that already arrived behind this one
	// into the same batch, so a pointer flood becomes one write. While
	// inMu is held a concurrent switch cannot complete, so the events
	// are still legitimately from the selected device.
	alive := true
	for alive && !p.flusher.full() {
		select {
		case next, ok := <-b.dev.Events():
			if !ok {
				alive = false
				break
			}
			p.stats.rawEvents.Add(1)
			mRawEvents.Inc()
			for _, ue := range b.plugin.Translate(next) {
				p.flusher.add(ue, 0)
			}
		case <-b.stop:
			alive = false
		default:
			if err := p.finishFlush(tid, t0); err != nil {
				return false, true
			}
			return alive, false
		}
	}
	if err := p.finishFlush(tid, t0); err != nil {
		return false, true
	}
	return alive, false
}

// finishFlush ships the pending batch and, when the batch carried a
// sampled interaction, records its proxy_flush span — acceptance to
// transport write, translation and coalescing included.
func (p *Proxy) finishFlush(tid uint64, t0 int64) error {
	err := p.flushLocked()
	if tid != 0 && err == nil {
		trace.Record(tid, trace.StageProxyFlush, t0, trace.Now())
	}
	return err
}

// flushLocked ships the pending batch (inMu held) and settles the stats:
// forwarded events count as sent, events lost to a write error count as
// forward errors — never silently dropped.
func (p *Proxy) flushLocked() error {
	sent, coalesced, err := p.flusher.flush(p.client)
	if coalesced > 0 {
		p.stats.coalesced.Add(coalesced)
		mInputProxyCoalesce.Add(coalesced)
	}
	if sent == 0 {
		return err
	}
	if err != nil {
		p.stats.forwardErrors.Add(sent)
		mInputForwardErrors.Add(sent)
		return err
	}
	p.stats.uniSent.Add(sent)
	mUniSent.Add(sent)
	p.stats.batches.Add(1)
	mInputBatches.Inc()
	mInputBatchedEvents.Add(sent)
	return nil
}

// Inject translates and forwards one event as if it came from the named
// attached device; used by scripted scenarios and benchmarks to bypass the
// device channel (the pump path is exercised by the device simulators).
func (p *Proxy) Inject(deviceID string, ev RawEvent) error {
	return p.inject(deviceID, 1, func(b *inputBinding, tid uint64) {
		for _, ue := range b.plugin.Translate(ev) {
			p.flusher.add(ue, tid)
		}
	})
}

// InjectBatch translates and forwards a burst of events from the named
// attached device as one coalescing batch: consecutive pointer moves
// collapse to their final position and the whole burst ships with a
// single transport write.
func (p *Proxy) InjectBatch(deviceID string, evs []RawEvent) error {
	return p.inject(deviceID, int64(len(evs)), func(b *inputBinding, tid uint64) {
		for _, ev := range evs {
			for _, ue := range b.plugin.Translate(ev) {
				p.flusher.add(ue, tid)
				tid = 0 // only the head event of a batch carries the trace
			}
		}
	})
}

// inject resolves the device, applies the selection barrier and runs
// translate (which feeds the flusher) under it, then flushes once. n is
// the raw-event count the call carries, so drop accounting matches the
// selected path's per-event counting.
func (p *Proxy) inject(deviceID string, n int64, translate func(b *inputBinding, tid uint64)) error {
	p.mu.Lock()
	b, ok := p.inputs[deviceID]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: input %s", ErrUnknownDevice, deviceID)
	}
	if n <= 0 {
		return nil
	}
	if p.activeInput.Load() != b {
		p.stats.rawEvents.Add(n)
		mRawEvents.Add(n)
		p.stats.droppedRaw.Add(n)
		mDroppedRaw.Add(n)
		return nil
	}
	p.inMu.Lock()
	defer p.inMu.Unlock()
	p.stats.rawEvents.Add(n)
	mRawEvents.Add(n)
	if p.activeInput.Load() != b { // deselected between snapshot and barrier
		p.stats.droppedRaw.Add(n)
		mDroppedRaw.Add(n)
		return nil
	}
	tid := trace.Start()
	t0 := int64(0)
	if tid != 0 {
		t0 = trace.Now()
	}
	translate(b, tid)
	return p.finishFlush(tid, t0)
}

// --- output pipeline ---------------------------------------------------------

// proxyHandler adapts the protocol callbacks onto the proxy.
type proxyHandler struct{ p *Proxy }

var _ rfb.ClientHandler = proxyHandler{}

// Updated implements rfb.ClientHandler: convert the fresh shadow
// framebuffer for the selected output device, present it, and keep the
// demand-driven update loop rolling by signalling the re-arm goroutine
// (classic thin-client viewer behaviour, off the read path).
func (h proxyHandler) Updated(rects []gfx.Rect) {
	h.p.presentCurrent()
	select {
	case h.p.rearm <- struct{}{}:
	default: // a re-arm is already pending
	}
}

// Bell implements rfb.ClientHandler (ignored).
func (proxyHandler) Bell() {}

// CutText implements rfb.ClientHandler (ignored).
func (proxyHandler) CutText(string) {}

// presentCurrent converts the shadow framebuffer with the active output
// plug-in (and each mirror's plug-in) and delivers the frames. Presents
// are serialized: the target snapshot and the deliveries happen under
// presentMu so RemoveMirror can use it as a barrier.
func (p *Proxy) presentCurrent() {
	p.presentMu.Lock()
	defer p.presentMu.Unlock()
	p.mu.Lock()
	targets := p.presentTargets[:0]
	if b := p.outputs[p.activeOut]; b != nil {
		targets = append(targets, b)
	}
	for id := range p.mirrors {
		if id == p.activeOut {
			continue
		}
		if b := p.outputs[id]; b != nil {
			targets = append(targets, b)
		}
	}
	p.presentTargets = targets
	p.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	start := time.Now()
	frames := p.presentFrames[:0]
	for range targets {
		frames = append(frames, Frame{})
	}
	p.presentFrames = frames
	p.client.WithFramebuffer(func(fb *gfx.Framebuffer) {
		for i, b := range targets {
			frames[i] = b.plugin.Convert(fb)
		}
	})
	for i, b := range targets {
		frames[i].Seq = b.seq.Add(1)
		b.dev.Present(frames[i])
		p.stats.frames.Add(1)
		mFrames.Inc()
	}
	mPresentSeconds.ObserveDuration(time.Since(start))
}

// RefreshOutput forces a full-frame conversion and presentation without
// waiting for server damage (used right after attaching a display).
func (p *Proxy) RefreshOutput() { p.presentCurrent() }
