package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// DialFunc produces a fresh transport to the UniInt server.
type DialFunc func() (net.Conn, error)

// Supervisor keeps a universal-interaction session alive across transport
// failures: it remembers the attached devices and the current selection,
// and when the proxy's connection dies it redials, rebuilds the proxy,
// re-attaches every device (each re-transmits its plug-in module) and
// restores the selection. The user's devices keep working; at worst they
// miss the frames sent while the link was down.
//
// Reconnects are resume-aware: the supervisor carries the session token
// the server issued and presents it on every redial. When the server
// still holds the parked session (uniserver's detach lot), the rebuilt
// proxy adopts the previous connection's shadow framebuffer and demands
// only an incremental update — the resync carries just the damage
// accumulated while the link was down, not a full repaint.
//
// The paper's user roams between home, office and public spaces; session
// continuity across links is the practical face of "control appliances in
// a uniform way at any places".
type Supervisor struct {
	dial    DialFunc
	backoff time.Duration
	maxTry  int // 0 = retry forever

	mu      sync.Mutex
	proxy   *Proxy
	inputs  []InputDevice
	outputs []OutputDevice
	selIn   string
	selOut  string
	token   string // resume token presented on the next redial
	closed  bool

	stop chan struct{}
	done chan struct{}

	reconnects atomic.Int64
	resumes    atomic.Int64
	lastErr    atomic.Value // errBox
}

// errBox wraps errors for atomic.Value, which requires every store to
// carry the same concrete type (connection errors do not).
type errBox struct{ err error }

// SupervisorOption configures a Supervisor.
type SupervisorOption func(*Supervisor)

// WithBackoff sets the delay between redial attempts (default 10 ms —
// in-process transports recover instantly; real deployments pass larger
// values).
func WithBackoff(d time.Duration) SupervisorOption {
	return func(s *Supervisor) { s.backoff = d }
}

// WithMaxRetries bounds consecutive failed redials before the supervisor
// gives up (0 = forever).
func WithMaxRetries(n int) SupervisorOption {
	return func(s *Supervisor) { s.maxTry = n }
}

// NewSupervisor dials the first connection and starts supervising.
func NewSupervisor(dial DialFunc, opts ...SupervisorOption) (*Supervisor, error) {
	s := &Supervisor{
		dial:    dial,
		backoff: 10 * time.Millisecond,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	proxy, err := s.connect()
	if err != nil {
		return nil, err
	}
	s.proxy = proxy
	s.token = proxy.SessionToken()
	go s.supervise()
	return s, nil
}

func (s *Supervisor) connect() (*Proxy, error) {
	conn, err := s.dial()
	if err != nil {
		return nil, fmt.Errorf("core: supervisor dial: %w", err)
	}
	s.mu.Lock()
	token := s.token
	s.mu.Unlock()
	return DialResume(conn, token)
}

// Proxy returns the currently live proxy. The pointer changes across
// reconnects; callers needing stability should go through the Supervisor's
// own device/selection methods.
func (s *Supervisor) Proxy() *Proxy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.proxy
}

// Reconnects reports how many times the session has been re-established.
func (s *Supervisor) Reconnects() int64 { return s.reconnects.Load() }

// Resumes reports how many reconnects reclaimed the parked server-side
// session (incremental resync) rather than rejoining cold.
func (s *Supervisor) Resumes() int64 { return s.resumes.Load() }

// LastError returns the most recent connection error (nil before any).
func (s *Supervisor) LastError() error {
	if v := s.lastErr.Load(); v != nil {
		return v.(errBox).err
	}
	return nil
}

func (s *Supervisor) setErr(err error) { s.lastErr.Store(errBox{err}) }

// AttachInput attaches the device now and on every future reconnect.
func (s *Supervisor) AttachInput(d InputDevice) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrProxyClosed
	}
	if err := s.proxy.AttachInput(d); err != nil {
		return err
	}
	s.inputs = append(s.inputs, d)
	return nil
}

// AttachOutput attaches the device now and on every future reconnect.
func (s *Supervisor) AttachOutput(d OutputDevice) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrProxyClosed
	}
	if err := s.proxy.AttachOutput(d); err != nil {
		return err
	}
	s.outputs = append(s.outputs, d)
	return nil
}

// SelectInput selects the device and remembers the choice across
// reconnects.
func (s *Supervisor) SelectInput(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.proxy.SelectInput(id); err != nil {
		return err
	}
	s.selIn = id
	return nil
}

// SelectOutput selects the device and remembers the choice across
// reconnects.
func (s *Supervisor) SelectOutput(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.proxy.SelectOutput(id); err != nil {
		return err
	}
	s.selOut = id
	return nil
}

// SelectInputByClass implements situation.Selector against the supervised
// session.
func (s *Supervisor) SelectInputByClass(class string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.proxy.SelectInputByClass(class); err != nil {
		return err
	}
	s.selIn = s.proxy.ActiveInput()
	return nil
}

// SelectOutputByClass implements situation.Selector.
func (s *Supervisor) SelectOutputByClass(class string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.proxy.SelectOutputByClass(class); err != nil {
		return err
	}
	s.selOut = s.proxy.ActiveOutput()
	return nil
}

// Close stops supervising and tears the live session down.
func (s *Supervisor) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	proxy := s.proxy
	s.mu.Unlock()
	close(s.stop)
	proxy.Close()
	<-s.done
}

// supervise runs the proxy, rebuilding the session whenever it fails.
func (s *Supervisor) supervise() {
	defer close(s.done)
	for {
		s.mu.Lock()
		proxy := s.proxy
		s.mu.Unlock()

		err := proxy.Run() // blocks for the life of the connection
		s.setErr(err)
		proxy.Close()

		select {
		case <-s.stop:
			return
		default:
		}

		// Redial with backoff.
		tries := 0
		for {
			select {
			case <-s.stop:
				return
			case <-time.After(s.backoff):
			}
			next, err := s.connect()
			if err == nil {
				if rerr := s.restore(next); rerr != nil {
					s.setErr(rerr)
					next.Close()
					continue
				}
				s.reconnects.Add(1)
				if next.Resumed() {
					s.resumes.Add(1)
				}
				break
			}
			s.setErr(err)
			tries++
			if s.maxTry > 0 && tries >= s.maxTry {
				return
			}
		}
	}
}

// restore re-attaches devices and re-applies the selection to a fresh
// proxy, then installs it. Restoration is all-or-nothing: a failure
// leaves the supervisor's remembered state and installed proxy untouched
// (the caller discards next and redials), so a connection dying
// mid-restore can never half-apply selections.
//
// On a resumed connection the server preserved the whole session, so the
// new proxy adopts the previous connection's shadow framebuffer and the
// output selection is restored with an incremental request — the resync
// carries only the damage accumulated while detached.
func (s *Supervisor) restore(next *Proxy) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("core: supervisor closed during restore")
	}
	for _, d := range s.inputs {
		if err := next.AttachInput(d); err != nil {
			return err
		}
	}
	for _, d := range s.outputs {
		if err := next.AttachOutput(d); err != nil {
			return err
		}
	}
	if s.selIn != "" {
		if err := next.SelectInput(s.selIn); err != nil {
			return err
		}
	}
	resumed := next.Resumed()
	if resumed {
		next.Client().AdoptShadow(s.proxy.Client())
	}
	if s.selOut != "" {
		if err := next.restoreOutput(s.selOut, resumed); err != nil {
			return err
		}
	}
	s.proxy = next
	s.token = next.SessionToken()
	return nil
}
