package core_test

import (
	"sync"
	"testing"
	"time"

	"uniint/internal/core"
	"uniint/internal/device"
	"uniint/internal/toolkit"
)

// fakeDevice is a minimal input device with a caller-owned event channel
// and plug-in, for tests that need to control translation timing.
type fakeDevice struct {
	id     string
	plugin core.InputPlugin
	ch     chan core.RawEvent
}

func (d *fakeDevice) ID() string                    { return d.id }
func (d *fakeDevice) Class() string                 { return "fake" }
func (d *fakeDevice) InputPlugin() core.InputPlugin { return d.plugin }
func (d *fakeDevice) Events() <-chan core.RawEvent  { return d.ch }

// gatePlugin blocks inside Translate until its gate opens, signalling
// entry — the in-flight-translation window the switch barrier must cover.
type gatePlugin struct {
	entered chan struct{}
	gate    chan struct{}
	key     uint32
}

func (p *gatePlugin) Name() string  { return "gate" }
func (p *gatePlugin) Bind(w, h int) {}
func (p *gatePlugin) Translate(ev core.RawEvent) []core.UniEvent {
	if p.entered != nil {
		p.entered <- struct{}{}
	}
	if p.gate != nil {
		<-p.gate
	}
	return core.KeyTap(p.key)
}

// TestPumpStopsOnForwardError is the regression test for the silently-
// dropped-events bug: pumpInput used to discard forward() errors, so
// after a connection failure every subsequent event vanished without a
// trace. Now the loss is counted and the pump stops.
func TestPumpStopsOnForwardError(t *testing.T) {
	_, proxy := stack(t)
	phone := device.NewPhone("ph-1")
	defer phone.Close()
	if err := proxy.AttachInput(phone); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectInput("ph-1"); err != nil {
		t.Fatal(err)
	}
	// Healthy path first, so the failure below is unambiguous.
	phone.PressKey("ok")
	waitCond(t, "healthy forward", func() bool { return proxy.Stats().UniversalSent >= 2 })

	// Kill the transport out from under the proxy.
	proxy.Client().Close()

	phone.PressKey("ok")
	waitCond(t, "forward error accounted", func() bool {
		return proxy.Stats().ForwardErrors > 0
	})

	// The pump must have stopped: further device events are no longer
	// consumed (rawEvents stops advancing), not silently swallowed.
	raw := proxy.Stats().RawEvents
	phone.PressKey("ok")
	time.Sleep(30 * time.Millisecond)
	if got := proxy.Stats().RawEvents; got != raw {
		t.Errorf("pump still draining after fatal error: rawEvents %d -> %d", raw, got)
	}

	// Inject surfaces the failure to its caller too.
	if err := proxy.Inject("ph-1", core.RawEvent{Kind: core.EvKeypad, Code: "ok", Down: true}); err == nil {
		t.Error("Inject after connection death returned nil error")
	}
	if proxy.Stats().UniversalSent != 2 {
		t.Errorf("events counted as sent after connection death: %d", proxy.Stats().UniversalSent)
	}
}

// TestSelectInputBarrierCoversInFlightTranslation is the regression test
// for the mid-switch leak: SelectInput used to return while an event from
// the previously selected device was still being translated, so the stale
// event was forwarded after the switch. The selection barrier now waits
// out in-flight translation (the presentMu pattern, input side).
func TestSelectInputBarrierCoversInFlightTranslation(t *testing.T) {
	_, proxy := stack(t)
	slow := &gatePlugin{entered: make(chan struct{}), gate: make(chan struct{}), key: 'a'}
	a := &fakeDevice{id: "a", plugin: slow, ch: make(chan core.RawEvent, 8)}
	b := &fakeDevice{id: "b", plugin: &gatePlugin{key: 'b'}, ch: make(chan core.RawEvent, 8)}
	if err := proxy.AttachInput(a); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AttachInput(b); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectInput("a"); err != nil {
		t.Fatal(err)
	}

	a.ch <- core.RawEvent{}
	<-slow.entered // a's event is now mid-translation

	selDone := make(chan struct{})
	go func() {
		if err := proxy.SelectInput("b"); err != nil {
			t.Error(err)
		}
		close(selDone)
	}()
	select {
	case <-selDone:
		t.Fatal("SelectInput returned while a's event was still in flight")
	case <-time.After(30 * time.Millisecond):
	}

	close(slow.gate) // translation completes, forward happens, barrier lifts
	select {
	case <-selDone:
	case <-time.After(2 * time.Second):
		t.Fatal("SelectInput did not return after in-flight event drained")
	}
	// The in-flight event was admitted under the old selection and was
	// forwarded before the switch completed — never after.
	waitCond(t, "in-flight forward", func() bool { return proxy.Stats().UniversalSent == 2 })

	// After the switch, a's events are dropped, not forwarded.
	dropped := proxy.Stats().DroppedRaw
	a.ch <- core.RawEvent{}
	waitCond(t, "post-switch drop", func() bool { return proxy.Stats().DroppedRaw > dropped })
	if got := proxy.Stats().UniversalSent; got != 2 {
		t.Errorf("deselected device forwarded after switch: uniSent = %d", got)
	}
}

// TestDetachInputBarrierCoversInFlightTranslation: like the switch
// barrier, DetachInput must not return while the detached device's event
// is still being translated/forwarded.
func TestDetachInputBarrierCoversInFlightTranslation(t *testing.T) {
	_, proxy := stack(t)
	slow := &gatePlugin{entered: make(chan struct{}), gate: make(chan struct{}), key: 'a'}
	a := &fakeDevice{id: "a", plugin: slow, ch: make(chan core.RawEvent, 8)}
	if err := proxy.AttachInput(a); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectInput("a"); err != nil {
		t.Fatal(err)
	}
	a.ch <- core.RawEvent{}
	<-slow.entered

	detDone := make(chan struct{})
	go func() {
		if err := proxy.DetachInput("a"); err != nil {
			t.Error(err)
		}
		close(detDone)
	}()
	select {
	case <-detDone:
		t.Fatal("DetachInput returned while the device's event was in flight")
	case <-time.After(30 * time.Millisecond):
	}

	close(slow.gate)
	select {
	case <-detDone:
	case <-time.After(2 * time.Second):
		t.Fatal("DetachInput did not return after in-flight event drained")
	}
	if proxy.ActiveInput() != "" {
		t.Error("selection not cleared by detach")
	}
	// Nothing further from the detached device is ever forwarded.
	sent := proxy.Stats().UniversalSent
	a.ch <- core.RawEvent{}
	time.Sleep(30 * time.Millisecond)
	if got := proxy.Stats().UniversalSent; got != sent {
		t.Errorf("detached device still forwarding: %d -> %d", sent, got)
	}
}

// TestSelectionSnapshotUnderFlood stresses the lock-free drop path: a
// flood on a non-selected device races selection churn and stats reads
// (meaningful under -race), and every flood event is accounted as
// dropped, never forwarded.
func TestSelectionSnapshotUnderFlood(t *testing.T) {
	_, proxy := stack(t)
	flood := &fakeDevice{id: "flood", plugin: &gatePlugin{key: 'f'}, ch: make(chan core.RawEvent, 256)}
	sel := &fakeDevice{id: "sel", plugin: &gatePlugin{key: 's'}, ch: make(chan core.RawEvent, 8)}
	if err := proxy.AttachInput(flood); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AttachInput(sel); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectInput("sel"); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			flood.ch <- core.RawEvent{}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = proxy.SelectInput("sel") // no-op re-select: churns the mutex path
			_ = proxy.ActiveInput()
		}
	}()
	wg.Wait()
	waitCond(t, "flood drained", func() bool { return proxy.Stats().DroppedRaw >= n })
	if got := proxy.Stats().UniversalSent; got != 0 {
		t.Errorf("non-selected flood forwarded %d events", got)
	}
}

// TestInjectBatchDropAccountingPerEvent: a batch injected for a
// non-selected device must count every event as raw + dropped, matching
// the selected path's per-event accounting.
func TestInjectBatchDropAccountingPerEvent(t *testing.T) {
	_, proxy := stack(t)
	a := &fakeDevice{id: "a", plugin: &gatePlugin{key: 'a'}, ch: make(chan core.RawEvent)}
	b := &fakeDevice{id: "b", plugin: &gatePlugin{key: 'b'}, ch: make(chan core.RawEvent)}
	if err := proxy.AttachInput(a); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AttachInput(b); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectInput("b"); err != nil {
		t.Fatal(err)
	}
	burst := make([]core.RawEvent, 64)
	if err := proxy.InjectBatch("a", burst); err != nil {
		t.Fatal(err)
	}
	st := proxy.Stats()
	if st.RawEvents != 64 || st.DroppedRaw != 64 {
		t.Errorf("raw=%d dropped=%d, want 64/64", st.RawEvents, st.DroppedRaw)
	}
	if st.UniversalSent != 0 {
		t.Errorf("non-selected batch forwarded %d events", st.UniversalSent)
	}
}

// TestInjectBatchBurstLandsInOrder drives a burst — click A, a pointer
// flood, click B, then keyboard activation — through the proxy in one
// batch and asserts the widget actions land in order with the flood
// coalesced away en route.
func TestInjectBatchBurstLandsInOrder(t *testing.T) {
	display, proxy := stack(t)
	var mu sync.Mutex
	var order []string
	mk := func(name string) *toolkit.Button {
		return toolkit.NewButton(name, func() { mu.Lock(); order = append(order, name); mu.Unlock() })
	}
	first, second := mk("first"), mk("second")
	root := toolkit.NewPanel(toolkit.VBox{Gap: 4, Padding: 4})
	root.Add(first, second)
	display.SetRoot(root)
	display.Render()

	pda := device.NewPDA("pda-1")
	defer pda.Close()
	if err := proxy.AttachInput(pda); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectInput("pda-1"); err != nil {
		t.Fatal(err)
	}

	// PDA coordinates are half the desktop's (the plug-in upscales 2x).
	center := func(b *toolkit.Button) (int, int) {
		r := b.Bounds()
		return (r.X + r.W/2) / 2, (r.Y + r.H/2) / 2
	}
	ax, ay := center(first)
	bx, by := center(second)

	burst := []core.RawEvent{
		{Kind: core.EvStylus, X: ax, Y: ay, Down: true},
		{Kind: core.EvStylus, X: ax, Y: ay, Down: false},
	}
	// A hover flood between the clicks: pure moves, all coalescable.
	for i := 0; i < 64; i++ {
		burst = append(burst, core.RawEvent{Kind: core.EvStylus, X: ax + i%8, Y: ay, Down: false})
	}
	burst = append(burst,
		core.RawEvent{Kind: core.EvStylus, X: bx, Y: by, Down: true},
		core.RawEvent{Kind: core.EvStylus, X: bx, Y: by, Down: false},
	)
	sent0 := proxy.Stats().UniversalSent
	if err := proxy.InjectBatch("pda-1", burst); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "both clicks", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 2
	})
	mu.Lock()
	if order[0] != "first" || order[1] != "second" {
		t.Errorf("click order = %v", order)
	}
	mu.Unlock()

	st := proxy.Stats()
	if st.EventsCoalesced < 60 {
		t.Errorf("flood not coalesced: coalesced = %d", st.EventsCoalesced)
	}
	if sent := st.UniversalSent - sent0; sent > 8 {
		t.Errorf("burst shipped %d events; flood should have collapsed", sent)
	}
	if st.BatchesFlushed == 0 {
		t.Error("no batched flush recorded")
	}
}
