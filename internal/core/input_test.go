package core

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"uniint/internal/rfb"
)

// semantic extracts the events coalescing must never lose: every key
// event and every button transition, in order, with payload. prevMask
// tracks pointer-mask continuity from the start of the stream.
func semantic(evs []rfb.InputEvent) []rfb.InputEvent {
	var out []rfb.InputEvent
	mask := uint8(0)
	for _, ev := range evs {
		if !ev.IsPointer {
			out = append(out, ev)
			continue
		}
		if ev.Pointer.Buttons != mask {
			out = append(out, ev)
		}
		mask = ev.Pointer.Buttons
	}
	return out
}

func toWire(in []UniEvent) []rfb.InputEvent {
	out := make([]rfb.InputEvent, 0, len(in))
	for _, ue := range in {
		out = append(out, rfb.InputEvent{IsPointer: ue.IsPointer, Pointer: ue.Pointer, Key: ue.Key})
	}
	return out
}

func lastPointer(evs []rfb.InputEvent) (rfb.PointerEvent, bool) {
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].IsPointer {
			return evs[i].Pointer, true
		}
	}
	return rfb.PointerEvent{}, false
}

// isSubsequence reports whether sub appears within full in order.
func isSubsequence(sub, full []rfb.InputEvent) bool {
	j := 0
	for i := 0; i < len(full) && j < len(sub); i++ {
		if full[i] == sub[j] {
			j++
		}
	}
	return j == len(sub)
}

// TestFlusherCoalescingProperties is the coalescing property test:
// randomized event streams (pure-move floods, button transitions, key
// events) through the flusher must preserve every key event and every
// button transition in order, keep the final pointer position, emit only
// events that were in the input (a subsequence), and account for exactly
// the dropped moves in the coalesced counter.
func TestFlusherCoalescingProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		var f inputFlusher
		var in []UniEvent
		mask := uint8(0)
		n := rng.Intn(80) + 1
		for i := 0; i < n; i++ {
			switch rng.Intn(10) {
			case 0, 1: // key event
				in = append(in, UniEvent{Key: rfb.KeyEvent{
					Down: rng.Intn(2) == 0, Key: uint32('a' + rng.Intn(26)),
				}})
			case 2: // button transition
				mask ^= 1 << uint(rng.Intn(3))
				in = append(in, PointerTo(rng.Intn(640), rng.Intn(480), mask))
			default: // pure move (flood material)
				in = append(in, PointerTo(rng.Intn(640), rng.Intn(480), mask))
			}
		}
		for _, ue := range in {
			f.add(ue, 0)
		}
		out := make([]rfb.InputEvent, 0, len(f.pend))
		for i := range f.pend {
			out = append(out, f.pend[i].ev)
		}
		wireIn := toWire(in)

		wantSem := semantic(wireIn)
		gotSem := semantic(out)
		if len(wantSem) != len(gotSem) {
			t.Fatalf("trial %d: semantic events %d -> %d\nin:  %+v\nout: %+v",
				trial, len(wantSem), len(gotSem), wireIn, out)
		}
		for i := range wantSem {
			if wantSem[i] != gotSem[i] {
				t.Fatalf("trial %d: semantic event %d: want %+v got %+v",
					trial, i, wantSem[i], gotSem[i])
			}
		}
		if wantP, ok := lastPointer(wireIn); ok {
			gotP, gok := lastPointer(out)
			if !gok || gotP != wantP {
				t.Fatalf("trial %d: final position lost: want %+v got %+v ok=%v",
					trial, wantP, gotP, gok)
			}
		}
		if !isSubsequence(out, wireIn) {
			t.Fatalf("trial %d: output is not a subsequence of input\nin:  %+v\nout: %+v",
				trial, wireIn, out)
		}
		if int(f.coalesced)+len(out) != len(in) {
			t.Fatalf("trial %d: accounting: coalesced %d + out %d != in %d",
				trial, f.coalesced, len(out), len(in))
		}
	}
}

// recordingHandler collects events arriving at a raw protocol server.
type recordingHandler struct {
	mu  sync.Mutex
	evs []rfb.InputEvent
}

func (h *recordingHandler) KeyEvent(ev rfb.KeyEvent) {
	h.mu.Lock()
	h.evs = append(h.evs, rfb.InputEvent{Key: ev})
	h.mu.Unlock()
}

func (h *recordingHandler) PointerEvent(ev rfb.PointerEvent) {
	h.mu.Lock()
	h.evs = append(h.evs, rfb.InputEvent{IsPointer: true, Pointer: ev})
	h.mu.Unlock()
}

func (h *recordingHandler) UpdateRequest(rfb.UpdateRequest) {}
func (h *recordingHandler) CutText(string)                  {}

func (h *recordingHandler) snapshot() []rfb.InputEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]rfb.InputEvent, len(h.evs))
	copy(out, h.evs)
	return out
}

// wireClient builds a handshaked ClientConn against a recording server.
func wireClient(t *testing.T) (*rfb.ClientConn, *recordingHandler) {
	t.Helper()
	sc, cc := net.Pipe()
	h := &recordingHandler{}
	go func() {
		s, err := rfb.NewServerConn(sc, 640, 480, "flush test")
		if err != nil {
			return
		}
		_ = s.Serve(h)
	}()
	c, err := rfb.Dial(cc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, h
}

// TestFlusherMaskContinuityAcrossFlushes pins that pure-move detection
// carries the button mask across flush boundaries: a drag continued in
// the next batch still coalesces, and the release transition after it
// still survives.
func TestFlusherMaskContinuityAcrossFlushes(t *testing.T) {
	c, h := wireClient(t)
	var f inputFlusher

	f.add(PointerTo(10, 10, 1), 0) // press (transition 0->1)
	f.add(PointerTo(20, 10, 1), 0) // drag move
	f.add(PointerTo(30, 10, 1), 0) // drag move, coalesces with previous
	sent, coalesced, err := f.flush(c)
	if err != nil || sent != 2 || coalesced != 1 {
		t.Fatalf("first flush: sent=%d coalesced=%d err=%v", sent, coalesced, err)
	}

	// Next batch: the drag continues. Mask continuity must classify these
	// as pure moves even though the press was in the previous flush.
	f.add(PointerTo(40, 10, 1), 0)
	f.add(PointerTo(50, 10, 1), 0)
	f.add(PointerTo(50, 10, 0), 0) // release (transition 1->0)
	sent, coalesced, err = f.flush(c)
	if err != nil || sent != 2 || coalesced != 1 {
		t.Fatalf("second flush: sent=%d coalesced=%d err=%v", sent, coalesced, err)
	}

	want := []rfb.InputEvent{
		{IsPointer: true, Pointer: rfb.PointerEvent{Buttons: 1, X: 10, Y: 10}},
		{IsPointer: true, Pointer: rfb.PointerEvent{Buttons: 1, X: 30, Y: 10}},
		{IsPointer: true, Pointer: rfb.PointerEvent{Buttons: 1, X: 50, Y: 10}},
		{IsPointer: true, Pointer: rfb.PointerEvent{Buttons: 0, X: 50, Y: 10}},
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(h.snapshot()) < len(want) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out; got %+v", h.snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	got := h.snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: want %+v got %+v", i, want[i], got[i])
		}
	}
}

// TestFlusherNeverCoalescesPressOrKey pins the two hard exclusions with a
// deterministic stream: a press following moves is appended (its own
// coordinates are where the widget is picked), and key events interleaved
// with moves break coalescing runs.
func TestFlusherNeverCoalescesPressOrKey(t *testing.T) {
	var f inputFlusher
	f.add(PointerTo(1, 1, 0), 0)                                // move
	f.add(PointerTo(2, 2, 0), 0)                                // move, coalesces
	f.add(PointerTo(3, 3, 1), 0)                                // press at (3,3): kept
	f.add(UniEvent{Key: rfb.KeyEvent{Down: true, Key: 'k'}}, 0) // key: kept
	f.add(PointerTo(4, 4, 1), 0)                                // drag move after key: kept (run broken)
	f.add(PointerTo(5, 5, 1), 0)                                // drag move: coalesces into previous
	f.add(PointerTo(5, 5, 0), 0)                                // release: kept

	want := []rfb.InputEvent{
		{IsPointer: true, Pointer: rfb.PointerEvent{Buttons: 0, X: 2, Y: 2}},
		{IsPointer: true, Pointer: rfb.PointerEvent{Buttons: 1, X: 3, Y: 3}},
		{Key: rfb.KeyEvent{Down: true, Key: 'k'}},
		{IsPointer: true, Pointer: rfb.PointerEvent{Buttons: 1, X: 5, Y: 5}},
		{IsPointer: true, Pointer: rfb.PointerEvent{Buttons: 0, X: 5, Y: 5}},
	}
	if len(f.pend) != len(want) {
		t.Fatalf("pend = %d events, want %d", len(f.pend), len(want))
	}
	for i := range want {
		if f.pend[i].ev != want[i] {
			t.Errorf("event %d: want %+v got %+v", i, want[i], f.pend[i].ev)
		}
	}
	if f.coalesced != 2 {
		t.Errorf("coalesced = %d, want 2", f.coalesced)
	}
}
