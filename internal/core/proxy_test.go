package core_test

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"uniint/internal/core"
	"uniint/internal/device"
	"uniint/internal/toolkit"
	"uniint/internal/uniserver"
)

// stack wires display ↔ server ↔ proxy over an in-process pipe.
func stack(t *testing.T) (*toolkit.Display, *core.Proxy) {
	t.Helper()
	display := toolkit.NewDisplay(640, 480)
	srv := uniserver.New(display, "proxy test")
	sc, cc := net.Pipe()
	serverDone := make(chan error, 1)
	go func() { serverDone <- srv.HandleConn(sc) }()

	proxy, err := core.Dial(cc)
	if err != nil {
		t.Fatal(err)
	}
	proxyDone := make(chan error, 1)
	go func() { proxyDone <- proxy.Run() }()

	t.Cleanup(func() {
		proxy.Close()
		srv.Close()
		select {
		case <-proxyDone:
		case <-time.After(2 * time.Second):
			t.Error("proxy run loop stuck")
		}
		select {
		case <-serverDone:
		case <-time.After(2 * time.Second):
			t.Error("server handler stuck")
		}
	})
	return display, proxy
}

// buttonPanel builds a root with one button and returns it plus a click
// counter accessor.
func buttonPanel(display *toolkit.Display, label string) (*toolkit.Button, func() int) {
	var mu sync.Mutex
	clicks := 0
	btn := toolkit.NewButton(label, func() { mu.Lock(); clicks++; mu.Unlock() })
	root := toolkit.NewPanel(toolkit.VBox{Gap: 4, Padding: 4})
	root.Add(btn)
	display.SetRoot(root)
	display.Render()
	return btn, func() int { mu.Lock(); defer mu.Unlock(); return clicks }
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitFrames(t *testing.T, what string, wait func(int64) core.Frame, n int64) core.Frame {
	t.Helper()
	done := make(chan core.Frame, 1)
	go func() { done <- wait(n) }()
	select {
	case f := <-done:
		return f
	case <-time.After(2 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return core.Frame{}
	}
}

func TestAttachErrors(t *testing.T) {
	_, proxy := stack(t)
	pda := device.NewPDA("pda-1")
	defer pda.Close()
	if err := proxy.AttachInput(pda); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AttachInput(pda); !errors.Is(err, core.ErrDuplicateID) {
		t.Errorf("duplicate attach = %v", err)
	}
	if err := proxy.SelectInput("nope"); !errors.Is(err, core.ErrUnknownDevice) {
		t.Errorf("select unknown = %v", err)
	}
	if err := proxy.DetachInput("nope"); !errors.Is(err, core.ErrUnknownDevice) {
		t.Errorf("detach unknown = %v", err)
	}
	if err := proxy.SelectInputByClass("voice"); !errors.Is(err, core.ErrNoSuchClass) {
		t.Errorf("select class = %v", err)
	}
	if err := proxy.AttachOutput(device.NewTVDisplay("tv-1")); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AttachOutput(device.NewTVDisplay("tv-1")); !errors.Is(err, core.ErrDuplicateID) {
		t.Errorf("duplicate output = %v", err)
	}
}

func TestPDATapClicksButton(t *testing.T) {
	display, proxy := stack(t)
	btn, clicks := buttonPanel(display, "Lamp")

	pda := device.NewPDA("pda-1")
	defer pda.Close()
	if err := proxy.AttachInput(pda); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectInput("pda-1"); err != nil {
		t.Fatal(err)
	}

	// The PDA panel is half the desktop in each dimension: tap at half
	// the button's desktop coordinates.
	b := btn.Bounds()
	pda.Tap((b.X+b.W/2)/2, (b.Y+b.H/2)/2)
	waitCond(t, "tap click", func() bool { return clicks() == 1 })

	st := proxy.Stats()
	if st.RawEvents < 2 || st.UniversalSent < 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNonSelectedInputIsDropped(t *testing.T) {
	display, proxy := stack(t)
	_, clicks := buttonPanel(display, "X")

	pda := device.NewPDA("pda-1")
	remote := device.NewRemoteControl("rem-1")
	defer pda.Close()
	defer remote.Close()
	if err := proxy.AttachInput(pda); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AttachInput(remote); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectInput("rem-1"); err != nil {
		t.Fatal(err)
	}

	// PDA taps go nowhere while the remote is selected.
	pda.Tap(10, 10)
	waitCond(t, "drop accounting", func() bool { return proxy.Stats().DroppedRaw >= 2 })
	if clicks() != 0 {
		t.Error("dropped events reached the GUI")
	}
	// Remote OK clicks the focused button.
	remote.Press("ok")
	waitCond(t, "remote click", func() bool { return clicks() == 1 })
}

func TestVoiceDrivesFocusNavigation(t *testing.T) {
	display, proxy := stack(t)
	var mu sync.Mutex
	hits := map[string]int{}
	mk := func(name string) *toolkit.Button {
		return toolkit.NewButton(name, func() { mu.Lock(); hits[name]++; mu.Unlock() })
	}
	root := toolkit.NewPanel(toolkit.VBox{Gap: 4, Padding: 4})
	root.Add(mk("first"), mk("second"))
	display.SetRoot(root)
	display.Render()

	voice := device.NewVoiceInput("v-1")
	defer voice.Close()
	if err := proxy.AttachInput(voice); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectInputByClass("voice"); err != nil {
		t.Fatal(err)
	}

	voice.Say("next")   // focus: first → second
	voice.Say("select") // activate second
	waitCond(t, "voice activation", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return hits["second"] == 1
	})
	mu.Lock()
	if hits["first"] != 0 {
		t.Errorf("hits = %v", hits)
	}
	mu.Unlock()
}

func TestOutputConversionPipeline(t *testing.T) {
	display, proxy := stack(t)
	buttonPanel(display, "content")

	pda := device.NewPDA("pda-1")
	defer pda.Close()
	if err := proxy.AttachOutput(pda); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectOutput("pda-1"); err != nil {
		t.Fatal(err)
	}
	f := waitFrames(t, "pda frame", pda.WaitFrames, 1)
	if f.W != device.PDAWidth || f.H != device.PDAHeight || f.RGB == nil {
		t.Fatalf("frame = %dx%d", f.W, f.H)
	}
	// The pixel format negotiated down to 16bpp.
	if pf := proxy.Client(); pf.BytesReceived() == 0 {
		t.Error("no protocol traffic recorded")
	}
}

func TestDynamicOutputSwitching(t *testing.T) {
	display, proxy := stack(t)
	buttonPanel(display, "content")

	pda := device.NewPDA("pda-1")
	phone := device.NewPhone("ph-1")
	tv := device.NewTVDisplay("tv-1")
	defer pda.Close()
	defer phone.Close()
	if err := proxy.AttachOutput(pda); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AttachOutput(phone); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AttachOutput(tv); err != nil {
		t.Fatal(err)
	}

	if err := proxy.SelectOutput("pda-1"); err != nil {
		t.Fatal(err)
	}
	f := waitFrames(t, "pda frame", pda.WaitFrames, 1)
	if f.RGB == nil {
		t.Fatal("pda frame should be RGB")
	}

	// Switch to the phone mid-session: a 1-bit frame must arrive without
	// restarting anything.
	if err := proxy.SelectOutput("ph-1"); err != nil {
		t.Fatal(err)
	}
	f = waitFrames(t, "phone frame", phone.WaitFrames, 1)
	if f.Bits == nil || f.W != device.PhoneWidth {
		t.Fatalf("phone frame = %+v", f)
	}

	// And to the TV.
	if err := proxy.SelectOutput("tv-1"); err != nil {
		t.Fatal(err)
	}
	f = waitFrames(t, "tv frame", tv.WaitFrames, 1)
	if f.RGB == nil || f.W != device.TVWidth {
		t.Fatalf("tv frame = %+v", f)
	}

	if proxy.Stats().OutputSwitches != 3 {
		t.Errorf("output switches = %d", proxy.Stats().OutputSwitches)
	}
	// Re-selecting the active device is not a switch.
	if err := proxy.SelectOutput("tv-1"); err != nil {
		t.Fatal(err)
	}
	if proxy.Stats().OutputSwitches != 3 {
		t.Error("re-select counted as switch")
	}
}

func TestDynamicInputSwitchingMidSession(t *testing.T) {
	// The paper's C2 scenario: the user switches from phone keypad to
	// voice without disturbing the session.
	display, proxy := stack(t)
	_, clicks := buttonPanel(display, "Play")

	phone := device.NewPhone("ph-1")
	voice := device.NewVoiceInput("v-1")
	defer phone.Close()
	defer voice.Close()
	if err := proxy.AttachInput(phone); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AttachInput(voice); err != nil {
		t.Fatal(err)
	}

	if err := proxy.SelectInput("ph-1"); err != nil {
		t.Fatal(err)
	}
	phone.PressKey("ok")
	waitCond(t, "phone click", func() bool { return clicks() == 1 })

	// Hands become busy: switch to voice.
	if err := proxy.SelectInputByClass("voice"); err != nil {
		t.Fatal(err)
	}
	if proxy.ActiveInput() != "v-1" {
		t.Fatalf("active input = %q", proxy.ActiveInput())
	}
	voice.Say("push")
	waitCond(t, "voice click", func() bool { return clicks() == 2 })

	// The phone is no longer heard.
	phone.PressKey("ok")
	time.Sleep(20 * time.Millisecond)
	if clicks() != 2 {
		t.Error("deselected phone still active")
	}
	if proxy.Stats().InputSwitches != 2 {
		t.Errorf("input switches = %d", proxy.Stats().InputSwitches)
	}
}

func TestDetachSelectedInputClearsSelection(t *testing.T) {
	_, proxy := stack(t)
	pda := device.NewPDA("pda-1")
	defer pda.Close()
	if err := proxy.AttachInput(pda); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectInput("pda-1"); err != nil {
		t.Fatal(err)
	}
	if err := proxy.DetachInput("pda-1"); err != nil {
		t.Fatal(err)
	}
	if proxy.ActiveInput() != "" {
		t.Error("selection should clear on detach")
	}
}

func TestInjectBypassesChannel(t *testing.T) {
	display, proxy := stack(t)
	_, clicks := buttonPanel(display, "X")
	remote := device.NewRemoteControl("r-1")
	defer remote.Close()
	if err := proxy.AttachInput(remote); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectInput("r-1"); err != nil {
		t.Fatal(err)
	}
	if err := proxy.Inject("r-1", core.RawEvent{Kind: core.EvButton, Code: "ok", Down: true}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "injected click", func() bool { return clicks() == 1 })
	if err := proxy.Inject("ghost", core.RawEvent{}); !errors.Is(err, core.ErrUnknownDevice) {
		t.Errorf("inject unknown = %v", err)
	}
}

func TestGUIUpdateFlowsToSelectedDisplay(t *testing.T) {
	// A server-side GUI change must reach the selected output device
	// without any input event (the appliance pushed new state).
	display, proxy := stack(t)
	lbl := toolkit.NewLabel("Counter: 0")
	root := toolkit.NewPanel(toolkit.VBox{})
	root.Add(lbl)
	display.SetRoot(root)

	tv := device.NewTVDisplay("tv-1")
	if err := proxy.AttachOutput(tv); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectOutput("tv-1"); err != nil {
		t.Fatal(err)
	}
	first := waitFrames(t, "initial frame", tv.WaitFrames, 1)

	display.Update(func() { lbl.SetText("Counter: 42") })
	f := waitFrames(t, "updated frame", tv.WaitFrames, int64(first.Seq)+1)

	// The frames must differ (text changed).
	if f.RGB.Equal(first.RGB) {
		t.Error("display change did not propagate to the device")
	}
}

func TestProxyCloseIsIdempotent(t *testing.T) {
	_, proxy := stack(t)
	pda := device.NewPDA("pda-1")
	defer pda.Close()
	if err := proxy.AttachInput(pda); err != nil {
		t.Fatal(err)
	}
	proxy.Close()
	proxy.Close()
	if err := proxy.AttachInput(device.NewPDA("pda-2")); !errors.Is(err, core.ErrProxyClosed) {
		t.Errorf("attach after close = %v", err)
	}
}

func TestOutputMirroring(t *testing.T) {
	display, proxy := stack(t)
	buttonPanel(display, "shared")

	tv := device.NewTVDisplay("tv-1")
	pda := device.NewPDA("pda-1")
	defer pda.Close()
	if err := proxy.AttachOutput(tv); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AttachOutput(pda); err != nil {
		t.Fatal(err)
	}
	// Mirror before attach must fail.
	if err := proxy.AddMirror("ghost"); !errors.Is(err, core.ErrUnknownDevice) {
		t.Errorf("mirror unknown = %v", err)
	}
	if err := proxy.SelectOutput("tv-1"); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AddMirror("pda-1"); err != nil {
		t.Fatal(err)
	}
	if got := proxy.Mirrors(); len(got) != 1 || got[0] != "pda-1" {
		t.Fatalf("mirrors = %v", got)
	}

	// One display change reaches BOTH devices, each in its own format.
	display.Update(func() {}) // no-op; force a damage-less tick is not enough
	proxy.RefreshOutput()
	tvFrame := waitFrames(t, "tv frame", tv.WaitFrames, 1)
	pdaFrame := waitFrames(t, "pda mirror frame", pda.WaitFrames, 1)
	if tvFrame.W != device.TVWidth || pdaFrame.W != device.PDAWidth {
		t.Errorf("frame sizes: tv=%d pda=%d", tvFrame.W, pdaFrame.W)
	}

	// Removing the mirror stops its feed.
	proxy.RemoveMirror("pda-1")
	before := pda.FrameCount()
	proxy.RefreshOutput()
	waitFrames(t, "tv frame after unmirror", tv.WaitFrames, int64(tvFrame.Seq)+1)
	if pda.FrameCount() != before {
		t.Error("removed mirror still receiving frames")
	}
}

func TestMirrorOfActiveDeviceNotDuplicated(t *testing.T) {
	display, proxy := stack(t)
	buttonPanel(display, "x")
	tv := device.NewTVDisplay("tv-1")
	if err := proxy.AttachOutput(tv); err != nil {
		t.Fatal(err)
	}
	if err := proxy.SelectOutput("tv-1"); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AddMirror("tv-1"); err != nil { // mirroring the primary
		t.Fatal(err)
	}
	waitFrames(t, "frame", tv.WaitFrames, 1)
	proxy.RefreshOutput()
	// Each refresh adds exactly one frame, not two.
	c1 := tv.FrameCount()
	proxy.RefreshOutput()
	if tv.FrameCount() != c1+1 {
		t.Errorf("primary mirrored twice: %d -> %d", c1, tv.FrameCount())
	}
}

func TestDetachOutputAndIDs(t *testing.T) {
	_, proxy := stack(t)
	tv := device.NewTVDisplay("tv-1")
	pda := device.NewPDA("pda-1")
	defer pda.Close()
	if err := proxy.AttachOutput(tv); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AttachOutput(pda); err != nil {
		t.Fatal(err)
	}
	if err := proxy.AttachInput(pda); err != nil {
		t.Fatal(err)
	}
	if got := len(proxy.OutputIDs()); got != 2 {
		t.Errorf("outputs = %d", got)
	}
	if got := proxy.InputIDs(); len(got) != 1 || got[0] != "pda-1" {
		t.Errorf("inputs = %v", got)
	}
	if err := proxy.SelectOutputByClass("tv"); err != nil {
		t.Fatal(err)
	}
	if proxy.ActiveOutput() != "tv-1" {
		t.Errorf("active = %q", proxy.ActiveOutput())
	}
	if err := proxy.DetachOutput("tv-1"); err != nil {
		t.Fatal(err)
	}
	if proxy.ActiveOutput() != "" {
		t.Error("detach should clear active output")
	}
	if err := proxy.DetachOutput("tv-1"); !errors.Is(err, core.ErrUnknownDevice) {
		t.Errorf("double detach = %v", err)
	}
	if err := proxy.SelectOutputByClass("tv"); !errors.Is(err, core.ErrNoSuchClass) {
		t.Errorf("select gone class = %v", err)
	}
}

func TestSupervisorOptionsAndClassSelection(t *testing.T) {
	st := newSupervisedStack(t)
	buttonPanel(st.display, "x")
	sup, err := core.NewSupervisor(st.dial,
		core.WithBackoff(time.Millisecond),
		core.WithMaxRetries(50))
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	phone := device.NewPhone("ph-1")
	tv := device.NewTVDisplay("tv-1")
	defer phone.Close()
	if err := sup.AttachInput(phone); err != nil {
		t.Fatal(err)
	}
	if err := sup.AttachOutput(tv); err != nil {
		t.Fatal(err)
	}
	if err := sup.SelectInputByClass("phone"); err != nil {
		t.Fatal(err)
	}
	if err := sup.SelectOutputByClass("tv"); err != nil {
		t.Fatal(err)
	}
	if sup.Proxy().ActiveInput() != "ph-1" || sup.Proxy().ActiveOutput() != "tv-1" {
		t.Error("class selection failed")
	}
	// Class selections survive reconnects too.
	st.dropLink()
	waitCond(t, "reconnect", func() bool { return sup.Reconnects() == 1 })
	if sup.Proxy().ActiveInput() != "ph-1" || sup.Proxy().ActiveOutput() != "tv-1" {
		t.Error("class selection not restored")
	}
}
