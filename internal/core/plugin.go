package core

import "uniint/internal/gfx"

// InputPlugin translates device-native events into universal input events.
// The paper: "The input plug-in module contains a code to translate events
// received from the input device to mouse or keyboard events."
//
// A plug-in may be stateful (a gesture recognizer accumulating strokes);
// the proxy guarantees Translate is called from a single goroutine per
// device.
type InputPlugin interface {
	// Name identifies the plug-in module.
	Name() string
	// Bind tells the plug-in the server desktop geometry so positional
	// device events can be mapped into desktop coordinates. Called once
	// when the device attaches, before any Translate.
	Bind(serverW, serverH int)
	// Translate converts one device event into zero or more universal
	// events, in order.
	Translate(ev RawEvent) []UniEvent
}

// Frame is a converted output image in the target device's native depth.
// Exactly one of RGB or Bits is non-nil.
type Frame struct {
	W, H int
	// RGB carries frames for color devices (possibly quantized).
	RGB *gfx.Framebuffer
	// Bits carries frames for 1-bit devices (cellular phone LCDs).
	Bits *gfx.Bitmap
	// Seq numbers frames per output device, starting at 1.
	Seq uint64
}

// OutputPlugin converts server framebuffers into device frames. The paper:
// "The output plug-in module contains a code to convert bitmap images
// received from a UniInt server to images that can be displayed on the
// screen of the target output device."
type OutputPlugin interface {
	// Name identifies the plug-in module.
	Name() string
	// Convert renders the full server framebuffer into a device frame.
	// It runs with the proxy's shadow framebuffer locked and must not
	// retain fb.
	Convert(fb *gfx.Framebuffer) Frame
	// PixelFormat returns the wire pixel format the proxy should request
	// from the server while this device is selected — a phone-class
	// device has no use for 32-bit color, and the cheaper format saves
	// protocol bandwidth (measured in experiment E8).
	PixelFormat() gfx.PixelFormat
}

// InputDevice is an input interaction device attached to the proxy. The
// device delivers its plug-in module at attach time and exposes a stream
// of native events.
type InputDevice interface {
	// ID uniquely names this device instance ("pda-1").
	ID() string
	// Class names the device category: "pda", "phone", "voice",
	// "gesture", "remote". Selection policies match on class.
	Class() string
	// InputPlugin returns the translation module the device transmits to
	// the proxy.
	InputPlugin() InputPlugin
	// Events returns the device's native event stream. The channel is
	// owned by the device and closed when the device shuts down.
	Events() <-chan RawEvent
}

// OutputDevice is an output interaction device attached to the proxy.
type OutputDevice interface {
	// ID uniquely names this device instance ("tv-display-1").
	ID() string
	// Class names the device category: "pda", "phone", "tv".
	Class() string
	// OutputPlugin returns the conversion module the device transmits to
	// the proxy.
	OutputPlugin() OutputPlugin
	// Present delivers a converted frame. Implementations must not block:
	// slow devices drop to latest-wins.
	Present(f Frame)
}
