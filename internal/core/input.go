package core

import "uniint/internal/rfb"

// maxInputBatch caps how many universal events accumulate before a flush
// is forced, so a device that produces events faster than the transport
// drains them still ships regularly instead of growing the batch forever.
const maxInputBatch = 64

// pendingEvent is one universal event waiting in the flusher, tagged with
// whether it is a pure pointer move — a pointer event whose button mask
// equals the mask of the event stream just before it. Only pure moves are
// coalescable; button transitions and key events always survive.
type pendingEvent struct {
	ev   rfb.InputEvent
	move bool
}

// inputFlusher batches translated universal events so a burst becomes one
// transport write, coalescing consecutive pointer moves while it does:
// a run of pure moves collapses to its final position. It is not
// self-locking — the proxy serializes access under inMu (the same mutex
// that forms the select/detach barrier).
type inputFlusher struct {
	pend []pendingEvent
	wire []rfb.InputEvent // flush scratch, reused every flush
	mask uint8            // button mask after the last buffered pointer event

	coalesced int64 // moves absorbed since the last flush
}

// add buffers one universal event. A pointer event that changes no
// buttons ("pure move") replaces a pure-move tail with the same mask —
// the coalescing rule: intermediate positions vanish, the final position,
// every button transition and every key event survive, in order. A
// nonzero tid tags the event as a sampled interaction; the tag survives
// coalescing (an untraced tail absorbing a traced move adopts its id, so
// the position that ultimately ships carries the trace).
func (f *inputFlusher) add(ue UniEvent, tid uint64) {
	if !ue.IsPointer {
		f.pend = append(f.pend, pendingEvent{ev: rfb.InputEvent{Key: ue.Key, TraceID: tid}})
		return
	}
	move := ue.Pointer.Buttons == f.mask
	f.mask = ue.Pointer.Buttons
	if move && len(f.pend) > 0 {
		if t := &f.pend[len(f.pend)-1]; t.ev.IsPointer && t.move && t.ev.Pointer.Buttons == ue.Pointer.Buttons {
			t.ev.Pointer = ue.Pointer
			if t.ev.TraceID == 0 {
				t.ev.TraceID = tid
			}
			f.coalesced++
			return
		}
	}
	f.pend = append(f.pend, pendingEvent{
		ev:   rfb.InputEvent{IsPointer: true, Pointer: ue.Pointer, TraceID: tid},
		move: move,
	})
}

// len reports how many events are waiting.
func (f *inputFlusher) len() int { return len(f.pend) }

// full reports whether the batch has reached the forced-flush threshold.
func (f *inputFlusher) full() bool { return len(f.pend) >= maxInputBatch }

// flush transmits the buffered events as one batched write and resets the
// buffer. It returns how many events were attempted and how many moves
// were coalesced away since the previous flush; on error the attempted
// events are lost (the connection is going down) and the buffer is still
// reset so a reconnecting caller starts clean.
func (f *inputFlusher) flush(c *rfb.ClientConn) (sent, coalesced int64, err error) {
	coalesced = f.coalesced
	f.coalesced = 0
	if len(f.pend) == 0 {
		return 0, coalesced, nil
	}
	f.wire = f.wire[:0]
	for i := range f.pend {
		f.wire = append(f.wire, f.pend[i].ev)
	}
	sent = int64(len(f.wire))
	f.pend = f.pend[:0]
	err = c.WriteEvents(f.wire)
	return sent, coalesced, err
}
