// Package core implements the paper's primary contribution: the UniInt
// (Universal Interaction) proxy.
//
// The proxy replaces the viewer of a thin-client system (paper §2.2). It
// converts bitmap images received from a UniInt server according to the
// characteristics of the selected output device, and converts events
// received from the selected input device into the universal mouse/keyboard
// events of the universal interaction protocol. Conversion in both
// directions is performed by plug-in modules that the interaction devices
// hand to the proxy when they attach — the paper ships these as mobile
// code; here they are Go values implementing the plug-in interfaces (see
// DESIGN.md's substitution table).
//
// The proxy also owns device selection: input and output devices are
// chosen independently (characteristic C1) and can be switched dynamically
// while the session continues (characteristic C2), typically driven by the
// situation engine in internal/situation.
package core

import "uniint/internal/rfb"

// RawEvent is an event in a device's native vocabulary, before the input
// plug-in translates it. Exactly which fields are meaningful depends on
// Kind; plug-ins are written against their own device's conventions.
type RawEvent struct {
	// Kind names the device-specific event class: "stylus", "keypad",
	// "utterance", "stroke", "button".
	Kind string
	// X, Y carry positional payload (stylus/touch coordinates).
	X, Y int
	// Down distinguishes press/release for contact and button events.
	Down bool
	// Code carries symbolic payload: keypad key name, spoken utterance,
	// gesture stroke name, remote button name.
	Code string
}

// Raw event kinds produced by the device simulators.
const (
	EvStylus    = "stylus"    // X,Y + Down (touch contact)
	EvKeypad    = "keypad"    // Code = "0".."9", "*", "#", "up", "down", "ok" + Down
	EvUtterance = "utterance" // Code = recognized sentence
	EvStroke    = "stroke"    // Code = gesture name ("swipe_left", "circle", …)
	EvButton    = "button"    // Code = remote button name + Down
)

// UniEvent is one universal input event: either a pointer event or a key
// event of the universal interaction protocol.
type UniEvent struct {
	IsPointer bool
	Pointer   rfb.PointerEvent
	Key       rfb.KeyEvent
}

// KeyPress builds the press half of a key event.
func KeyPress(key uint32) UniEvent {
	return UniEvent{Key: rfb.KeyEvent{Down: true, Key: key}}
}

// KeyRelease builds the release half of a key event.
func KeyRelease(key uint32) UniEvent {
	return UniEvent{Key: rfb.KeyEvent{Down: false, Key: key}}
}

// KeyTap builds a press+release pair.
func KeyTap(key uint32) []UniEvent {
	return []UniEvent{KeyPress(key), KeyRelease(key)}
}

// PointerTo builds a pointer event at (x, y) with the given button mask.
func PointerTo(x, y int, buttons uint8) UniEvent {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	return UniEvent{IsPointer: true, Pointer: rfb.PointerEvent{
		Buttons: buttons, X: uint16(x), Y: uint16(y),
	}}
}

// Click builds a press+release pointer pair at (x, y).
func Click(x, y int) []UniEvent {
	return []UniEvent{PointerTo(x, y, 1), PointerTo(x, y, 0)}
}
