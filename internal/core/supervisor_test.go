package core_test

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uniint/internal/core"
	"uniint/internal/device"
	"uniint/internal/netsim"
	"uniint/internal/toolkit"
	"uniint/internal/uniserver"
)

// supervisedStack runs a server whose dial function hands out fresh
// shaped links, returning the current link for failure injection.
type supervisedStack struct {
	display *toolkit.Display
	srv     *uniserver.Server

	mu   sync.Mutex
	link *netsim.Conn
}

func newSupervisedStack(t *testing.T) *supervisedStack {
	t.Helper()
	st := &supervisedStack{
		display: toolkit.NewDisplay(640, 480),
	}
	st.srv = uniserver.New(st.display, "supervised")
	t.Cleanup(st.srv.Close)
	return st
}

// dial is the Supervisor's DialFunc: each call builds a new pipe to the
// server and remembers the client side for DropLink.
func (st *supervisedStack) dial() (net.Conn, error) {
	sc, cc := net.Pipe()
	go st.srv.HandleConn(sc)
	link := netsim.Wrap(cc)
	st.mu.Lock()
	st.link = link
	st.mu.Unlock()
	return link, nil
}

func (st *supervisedStack) dropLink() {
	st.mu.Lock()
	link := st.link
	st.mu.Unlock()
	if link != nil {
		link.DropLink()
	}
}

func TestSupervisorReconnectsAndRestores(t *testing.T) {
	st := newSupervisedStack(t)
	_, clicks := buttonPanel(st.display, "Lamp")

	sup, err := core.NewSupervisor(st.dial)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	phone := device.NewPhone("phone-1")
	tv := device.NewTVDisplay("tv-1")
	defer phone.Close()
	if err := sup.AttachInput(phone); err != nil {
		t.Fatal(err)
	}
	if err := sup.AttachOutput(tv); err != nil {
		t.Fatal(err)
	}
	if err := sup.SelectInput("phone-1"); err != nil {
		t.Fatal(err)
	}
	if err := sup.SelectOutput("tv-1"); err != nil {
		t.Fatal(err)
	}

	// Working session before the failure.
	phone.PressKey("ok")
	waitCond(t, "click before failure", func() bool { return clicks() == 1 })
	waitFrames(t, "frame before failure", tv.WaitFrames, 1)

	// The link dies.
	st.dropLink()
	waitCond(t, "reconnect", func() bool { return sup.Reconnects() == 1 })

	// The same devices keep working: selection was restored and the
	// device plug-ins were re-transmitted to the new proxy.
	deadline := time.Now().Add(2 * time.Second)
	for clicks() < 2 && time.Now().Before(deadline) {
		phone.PressKey("ok")
		time.Sleep(10 * time.Millisecond)
	}
	if clicks() < 2 {
		t.Fatal("input did not survive reconnect")
	}
	if sup.Proxy().ActiveInput() != "phone-1" || sup.Proxy().ActiveOutput() != "tv-1" {
		t.Errorf("selection not restored: in=%q out=%q",
			sup.Proxy().ActiveInput(), sup.Proxy().ActiveOutput())
	}
	if sup.LastError() == nil {
		t.Error("link failure should be recorded")
	}
}

func TestSupervisorSurvivesRepeatedFailures(t *testing.T) {
	st := newSupervisedStack(t)
	_, clicks := buttonPanel(st.display, "X")

	sup, err := core.NewSupervisor(st.dial)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	remote := device.NewRemoteControl("rem-1")
	defer remote.Close()
	if err := sup.AttachInput(remote); err != nil {
		t.Fatal(err)
	}
	if err := sup.SelectInput("rem-1"); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 3; round++ {
		st.dropLink()
		waitCond(t, "reconnect", func() bool { return sup.Reconnects() >= int64(round) })
	}
	// Still alive after three failures.
	before := clicks()
	deadline := time.Now().Add(2 * time.Second)
	for clicks() == before && time.Now().Before(deadline) {
		remote.Press("ok")
		time.Sleep(10 * time.Millisecond)
	}
	if clicks() == before {
		t.Fatal("session dead after repeated failures")
	}
}

func TestSupervisorCloseStopsReconnecting(t *testing.T) {
	st := newSupervisedStack(t)
	sup, err := core.NewSupervisor(st.dial)
	if err != nil {
		t.Fatal(err)
	}
	sup.Close()
	sup.Close() // idempotent
	if err := sup.AttachInput(device.NewPDA("p")); err == nil {
		t.Error("attach after close should fail")
	}
	n := sup.Reconnects()
	time.Sleep(30 * time.Millisecond)
	if sup.Reconnects() != n {
		t.Error("supervisor still reconnecting after close")
	}
}

func TestSupervisorWorksOverShapedLink(t *testing.T) {
	// A constrained home link: 5ms latency. The session stays usable.
	st := newSupervisedStack(t)
	_, clicks := buttonPanel(st.display, "X")

	dial := func() (net.Conn, error) {
		sc, cc := net.Pipe()
		go st.srv.HandleConn(sc)
		return netsim.Wrap(cc, netsim.WithLatency(5*time.Millisecond)), nil
	}
	sup, err := core.NewSupervisor(dial)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	voice := device.NewVoiceInput("v-1")
	defer voice.Close()
	if err := sup.AttachInput(voice); err != nil {
		t.Fatal(err)
	}
	if err := sup.SelectInput("v-1"); err != nil {
		t.Fatal(err)
	}
	voice.Say("select")
	waitCond(t, "click over shaped link", func() bool { return clicks() == 1 })
}

// TestSupervisorResumesParkedSession: the reconnect after a link failure
// presents the session token, reclaims the parked server-side session
// and reports the resume.
func TestSupervisorResumesParkedSession(t *testing.T) {
	st := newSupervisedStack(t)
	_, clicks := buttonPanel(st.display, "Lamp")

	sup, err := core.NewSupervisor(st.dial)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	phone := device.NewPhone("phone-1")
	defer phone.Close()
	if err := sup.AttachInput(phone); err != nil {
		t.Fatal(err)
	}
	if err := sup.SelectInput("phone-1"); err != nil {
		t.Fatal(err)
	}
	token := sup.Proxy().SessionToken()
	if token == "" {
		t.Fatal("no session token issued")
	}

	st.dropLink()
	waitCond(t, "reconnect", func() bool { return sup.Reconnects() == 1 })
	if got := sup.Resumes(); got != 1 {
		t.Fatalf("Resumes() = %d, want 1 (reconnect should reclaim the parked session)", got)
	}
	if !sup.Proxy().Resumed() {
		t.Fatal("proxy should report a resumed connection")
	}
	if got := sup.Proxy().SessionToken(); got != token {
		t.Fatalf("session re-keyed across resume: %q != %q", got, token)
	}

	// The session still works end to end.
	deadline := time.Now().Add(2 * time.Second)
	for clicks() < 1 && time.Now().Before(deadline) {
		phone.PressKey("ok")
		time.Sleep(10 * time.Millisecond)
	}
	if clicks() < 1 {
		t.Fatal("input dead after resume")
	}
}

// TestSupervisorRestoreSurvivesMidRestoreDeath: connections that die
// partway through restore (injected byte-budget kills truncating the
// restore traffic at varying offsets) must not half-apply selections —
// whenever the supervisor finally lands on a healthy link, both
// selections are in place and the session works.
func TestSupervisorRestoreSurvivesMidRestoreDeath(t *testing.T) {
	st := newSupervisedStack(t)
	_, clicks := buttonPanel(st.display, "Lamp")

	// Dial plan: first connection healthy; the next few die after a
	// seeded byte budget chosen to land inside handshake or restore;
	// then healthy again. The injector truncates the killing write.
	inj := netsim.NewInjector(netsim.FaultConfig{
		Seed:         11,
		DropAfterMin: 40,
		DropAfterMax: 400,
		Truncate:     true,
	})
	var dialCount atomic.Int64
	dial := func() (net.Conn, error) {
		n := dialCount.Add(1)
		sc, cc := net.Pipe()
		go st.srv.HandleConn(sc)
		link := netsim.Wrap(cc)
		if n >= 2 && n <= 4 {
			link = inj.Wrap(cc)
		}
		st.mu.Lock()
		st.link = link
		st.mu.Unlock()
		return link, nil
	}

	sup, err := core.NewSupervisor(dial, core.WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	phone := device.NewPhone("phone-1")
	tv := device.NewTVDisplay("tv-1")
	defer phone.Close()
	if err := sup.AttachInput(phone); err != nil {
		t.Fatal(err)
	}
	if err := sup.AttachOutput(tv); err != nil {
		t.Fatal(err)
	}
	if err := sup.SelectInput("phone-1"); err != nil {
		t.Fatal(err)
	}
	if err := sup.SelectOutput("tv-1"); err != nil {
		t.Fatal(err)
	}

	st.dropLink()
	// The supervisor chews through the faulty dials. A faulty link can
	// survive its own handshake and die later — keep pressing keys so
	// traffic burns every kill budget until a healthy link is up.
	deadline := time.Now().Add(5 * time.Second)
	for !(sup.Reconnects() >= 1 && dialCount.Load() >= 5) {
		if time.Now().After(deadline) {
			t.Fatalf("stuck: dials=%d reconnects=%d", dialCount.Load(), sup.Reconnects())
		}
		phone.PressKey("ok")
		time.Sleep(5 * time.Millisecond)
	}
	if sup.LastError() == nil {
		t.Error("mid-restore failures should populate LastError")
	}

	// No half-application: both selections present, never one without
	// the other, and the session is live.
	proxy := sup.Proxy()
	if in, out := proxy.ActiveInput(), proxy.ActiveOutput(); in != "phone-1" || out != "tv-1" {
		t.Fatalf("selections half-applied: in=%q out=%q", in, out)
	}
	before := clicks()
	deadline = time.Now().Add(2 * time.Second)
	for clicks() == before && time.Now().Before(deadline) {
		phone.PressKey("ok")
		time.Sleep(10 * time.Millisecond)
	}
	if clicks() == before {
		t.Fatal("session dead after mid-restore failures")
	}
}
