package fed

import "sync"

// Event is one membership change.
type Event struct {
	// Node is the member the event concerns.
	Node string
	// Join is true for a join, false for a leave.
	Join bool
}

// Registry is the federation's membership source of truth: a static
// member list plus join/leave notifications to subscribers. It is
// deliberately minimal — a gossip or consensus layer can replace the
// static list later without changing the subscriber contract, which is
// all the Cluster depends on.
type Registry struct {
	mu      sync.Mutex
	members map[string]bool
	subs    []func(Event)
}

// NewRegistry builds a registry seeded with a static member list.
func NewRegistry(static ...string) *Registry {
	r := &Registry{members: make(map[string]bool, len(static))}
	for _, n := range static {
		r.members[n] = true
	}
	return r
}

// Join adds a member and notifies subscribers (no-op if present).
func (r *Registry) Join(node string) {
	r.mu.Lock()
	if r.members[node] {
		r.mu.Unlock()
		return
	}
	r.members[node] = true
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(Event{Node: node, Join: true})
	}
}

// Leave removes a member and notifies subscribers (no-op if absent).
func (r *Registry) Leave(node string) {
	r.mu.Lock()
	if !r.members[node] {
		r.mu.Unlock()
		return
	}
	delete(r.members, node)
	subs := r.subs
	r.mu.Unlock()
	for _, fn := range subs {
		fn(Event{Node: node, Join: false})
	}
}

// Members returns the current member set (order unspecified).
func (r *Registry) Members() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	return out
}

// Contains reports whether node is a member.
func (r *Registry) Contains(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[node]
}

// Subscribe registers fn for future membership events. Notifications run
// synchronously on the Join/Leave caller, in subscription order.
func (r *Registry) Subscribe(fn func(Event)) {
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}
