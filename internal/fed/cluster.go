package fed

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"uniint/internal/hub"
	"uniint/internal/metrics"
	"uniint/internal/rfb"
	"uniint/internal/trace"
)

// Errors returned by the cluster.
var (
	ErrNoNodes      = errors.New("fed: no member nodes")
	ErrUnknownNode  = errors.New("fed: unknown node")
	ErrDuplicate    = errors.New("fed: node already a member")
	ErrNotEvacuated = errors.New("fed: home still has pinned connections")
)

// DefaultDetachTimeout bounds how long a migration waits for a home's
// live sessions to force-park before giving up on the move.
const DefaultDetachTimeout = 5 * time.Second

// Node is one federation member: a named hub process (in this repo's
// in-process form, a *hub.Hub; a remote transport slots in behind the
// same surface later).
type Node struct {
	Name string
	Hub  *hub.Hub
}

// Options configures a Cluster.
type Options struct {
	// Metrics receives the federation instruments (default
	// metrics.Default()).
	Metrics *metrics.Registry
	// DetachTimeout bounds the force-park wait per migrated home
	// (default DefaultDetachTimeout).
	DetachTimeout time.Duration
}

// Cluster is the hub-of-hubs front: it owns the rendezvous ring and the
// membership registry, routes inbound connections to the member node
// owning the preamble's home, and moves sessions between nodes when the
// topology changes — rebalance on join, evacuation on drain. Routing
// state swaps atomically (immutable Ring under a mutex), so connections
// arriving mid-migration land on the new owner and find their parked
// session already installed or arriving; a resume that outraces its
// record degrades to a full join, never an error.
type Cluster struct {
	reg    *Registry
	detach time.Duration

	mu    sync.Mutex
	nodes map[string]*Node
	ring  *Ring

	mRoutes         *metrics.Counter
	mTokenRoutes    *metrics.Counter
	mRouteMisses    *metrics.Counter
	mMigrations     *metrics.Counter
	mMigrationBytes *metrics.Counter
}

// NewCluster creates an empty cluster; add members with AddNode.
func NewCluster(opts Options) *Cluster {
	if opts.Metrics == nil {
		opts.Metrics = metrics.Default()
	}
	if opts.DetachTimeout <= 0 {
		opts.DetachTimeout = DefaultDetachTimeout
	}
	return &Cluster{
		reg:    NewRegistry(),
		detach: opts.DetachTimeout,
		nodes:  make(map[string]*Node),
		ring:   NewRing(),

		mRoutes:         opts.Metrics.Counter("fed_routes_total"),
		mTokenRoutes:    opts.Metrics.Counter("fed_token_routes_total"),
		mRouteMisses:    opts.Metrics.Counter("fed_route_misses_total"),
		mMigrations:     opts.Metrics.Counter("fed_migrations_total"),
		mMigrationBytes: opts.Metrics.Counter("fed_migration_bytes_total"),
	}
}

// Registry returns the cluster's membership registry (subscribe to it
// for join/leave notifications).
func (c *Cluster) Registry() *Registry { return c.reg }

// Members returns the current member names (ring order: sorted).
func (c *Cluster) Members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.ring.Nodes()...)
}

// Owner returns the member currently owning homeID.
func (c *Cluster) Owner(homeID string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Owner(homeID)
}

// node returns the named member (nil if absent).
func (c *Cluster) node(name string) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[name]
}

// AddNode joins a member to the cluster and rebalances: the ring change
// hands the new node its rendezvous slice of the keyspace, and every
// resident home in that slice migrates in from the node that held it.
// New connections for moved homes route to the new owner the moment the
// ring swaps — before their sessions finish shipping — which is safe: a
// resume that beats its migration record degrades to a fresh join.
func (c *Cluster) AddNode(name string, h *hub.Hub) error {
	if name == "" || h == nil {
		return fmt.Errorf("%w: empty node", ErrUnknownNode)
	}
	n := &Node{Name: name, Hub: h}
	c.mu.Lock()
	if _, dup := c.nodes[name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicate, name)
	}
	c.nodes[name] = n
	c.ring = c.ring.With(name)
	ring := c.ring
	others := make([]*Node, 0, len(c.nodes)-1)
	for _, o := range c.nodes {
		if o != n {
			others = append(others, o)
		}
	}
	c.mu.Unlock()
	c.reg.Join(name)

	var firstErr error
	for _, from := range others {
		for _, homeID := range from.Hub.HomeIDs() {
			owner, _ := ring.Owner(homeID)
			if owner != name {
				continue
			}
			if err := c.migrate(homeID, from, n); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Drain evacuates a member for deploy: the node leaves the ring first
// (new connections route to the survivors immediately), then every
// resident home — live sessions force-parked, parked sessions shipped —
// migrates to its new rendezvous owner, and the node is removed. The
// node's hub is NOT closed or connection-drained here: hub.Drain remains
// the process-shutdown path; fed drain is ownership evacuation, after
// which the caller may close the hub at leisure.
func (c *Cluster) Drain(name string) error {
	c.mu.Lock()
	n := c.nodes[name]
	if n == nil {
		c.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownNode, name)
	}
	c.ring = c.ring.Without(name)
	ring := c.ring
	c.mu.Unlock()
	c.reg.Leave(name)

	var firstErr error
	for _, homeID := range n.Hub.HomeIDs() {
		owner, ok := ring.Owner(homeID)
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: draining the last node strands %s", ErrNoNodes, homeID)
			}
			break
		}
		if err := c.migrate(homeID, n, c.node(owner)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.mu.Lock()
	delete(c.nodes, name)
	c.mu.Unlock()
	return firstErr
}

// MigrateHome moves one home's sessions from one member to another by
// name — the targeted form of what Drain and AddNode do in bulk. The
// ring is untouched, so this is for operator-directed moves of homes the
// ring already (or imminently) assigns to the target.
func (c *Cluster) MigrateHome(homeID, fromName, toName string) error {
	from, to := c.node(fromName), c.node(toName)
	if from == nil {
		return fmt.Errorf("%w: %s", ErrUnknownNode, fromName)
	}
	if to == nil {
		return fmt.Errorf("%w: %s", ErrUnknownNode, toName)
	}
	return c.migrate(homeID, from, to)
}

// migrate is the live-migration pipeline for one home:
//
//	force-park live sessions → export each lot entry → encode (the bytes
//	that would cross the wire) → decode → install on the target →
//	release the source's registry entry.
//
// The target home is admitted before the first record ships, so a
// redialing client can never observe a window where neither node hosts
// the home. The source host closes only if it is a different object
// from the target's (a shared-host factory — both hubs handing out one
// underlying stack — must not have its home torn down by a move).
func (c *Cluster) migrate(homeID string, from, to *Node) error {
	host, err := from.Hub.Get(homeID)
	if err != nil {
		return nil // not resident: nothing to move
	}
	t0 := time.Now()
	if err := host.DetachSessions(c.detach); err != nil {
		return fmt.Errorf("fed: migrate %s: %w", homeID, err)
	}
	dst, err := to.Hub.Admit(homeID)
	if err != nil {
		return fmt.Errorf("fed: migrate %s: admit on %s: %w", homeID, to.Name, err)
	}
	for _, tok := range host.ParkedTokens() {
		rec, ok := host.ExportParked(tok)
		if !ok {
			continue // claimed (a resume is mid-flight on the source) or expired
		}
		b, err := rec.Encode()
		if err != nil {
			return fmt.Errorf("fed: migrate %s: %w", homeID, err)
		}
		c.mMigrationBytes.Add(int64(len(b)))
		shipped, err := rfb.DecodeMigration(b)
		if err != nil {
			return fmt.Errorf("fed: migrate %s: %w", homeID, err)
		}
		if err := dst.ImportParked(shipped); err != nil {
			return fmt.Errorf("fed: migrate %s: import on %s: %w", homeID, to.Name, err)
		}
	}
	// Release the source's registry entry. A straggler connection pinning
	// the entry (racing the detach) blocks release; it unwinds promptly
	// because its transport was just closed, so retry briefly.
	released := false
	var src hub.Host
	for deadline := time.Now().Add(c.detach); ; {
		if src, released = from.Hub.Release(homeID); released {
			break
		}
		if _, err := from.Hub.Get(homeID); err != nil {
			break // someone else (eviction) removed it; nothing to close
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: %s on %s", ErrNotEvacuated, homeID, from.Name)
		}
		time.Sleep(time.Millisecond)
	}
	if released && src != dst {
		src.Close()
	}
	c.mMigrations.Inc()
	if tid := trace.Start(); tid != 0 {
		trace.Record(tid, trace.StageMigrate, t0.UnixNano(), time.Now().UnixNano())
	}
	return nil
}

// ServeConn reads the routing preamble from conn, picks the owning
// member, and hands the still-virgin protocol stream to that node's hub
// (which skips its own preamble read). TokenHome preambles scan members
// for the node whose detach lot holds the session. Blocks for the life
// of the connection.
func (c *Cluster) ServeConn(conn net.Conn) error {
	_ = conn.SetReadDeadline(time.Now().Add(hub.PreambleTimeout))
	p, err := hub.ParsePreamble(conn)
	if err != nil {
		conn.Close()
		return err
	}
	_ = conn.SetReadDeadline(time.Time{})

	var n *Node
	if p.HomeID == hub.TokenHome {
		n = c.findToken(p.Token)
		if n == nil {
			c.mRouteMisses.Inc()
			conn.Close()
			return fmt.Errorf("fed: no member holds session token")
		}
		c.mTokenRoutes.Inc()
	} else {
		c.mu.Lock()
		owner, ok := c.ring.Owner(p.HomeID)
		if ok {
			n = c.nodes[owner]
		}
		c.mu.Unlock()
		if n == nil {
			c.mRouteMisses.Inc()
			conn.Close()
			return fmt.Errorf("%w: cannot route %s", ErrNoNodes, p.HomeID)
		}
		c.mRoutes.Inc()
	}
	return n.Hub.ServePreamble(p, conn)
}

// findToken scans members for the node parking the session token —
// O(nodes × resident homes), roam-back path only.
func (c *Cluster) findToken(token string) *Node {
	c.mu.Lock()
	nodes := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		if _, ok := n.Hub.FindToken(token); ok {
			return n
		}
	}
	return nil
}

// Serve accepts connections from ln until the listener closes.
func (c *Cluster) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		// goroutine-ok: Serve is the blocking-transport accept loop; routed
		// conns are served by the member hub's HandleConn for the conn's life.
		go func() { _ = c.ServeConn(conn) }()
	}
}
