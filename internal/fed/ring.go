// Package fed is the hub-of-hubs federation tier: a front router
// spreading home-ids across N member hub nodes by rendezvous hashing, a
// lightweight membership registry, and live migration of parked sessions
// between nodes — the detach lot (internal/uniserver) made a parked
// session a small serializable object, and this package ships that
// object so topology change (deploys, rebalances, node loss) is
// invisible to a reconnecting client: it redials through the router,
// lands on whichever node now owns its home, and resumes with the same
// incremental resync an in-place reconnect gets.
//
// The paper's prototype binds one home to one server process; the
// ROADMAP's north star is millions of users, where many hub processes
// and continuous topology change are the normal case. Federation keeps
// the paper's claim intact one level up: the per-home stacks (and the
// protocol) stay unmodified — routing and migration live entirely in
// front of them.
package fed

import "sort"

// Ring assigns home-ids to member nodes by rendezvous (highest-random-
// weight) hashing: every (node, home) pair gets a pseudo-random score
// and the home belongs to the highest-scoring node. Unlike a mod-N hash,
// adding or removing one node moves only the homes that node wins or
// held — about 1/N of the keyspace — which is exactly the slice a
// rebalance has to migrate.
//
// A Ring is immutable; With/Without return modified copies, so a router
// can swap rings atomically while migrations drain the delta.
type Ring struct {
	nodes []string
}

// NewRing builds a ring over the given member nodes.
func NewRing(nodes ...string) *Ring {
	r := &Ring{nodes: append([]string(nil), nodes...)}
	sort.Strings(r.nodes)
	return r
}

// score is FNV-1a over "node\x00home" pushed through a 64-bit avalanche
// finalizer: cheap and allocation-free. Raw FNV is too weakly mixed for
// rendezvous comparison over short, similar keys (sequential home-ids
// skew ownership badly); the fmix64 steps restore uniform high bits.
func score(node, homeID string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime64
	}
	h *= prime64 // the "\x00" separator byte (XOR with zero elided)
	for i := 0; i < len(homeID); i++ {
		h ^= uint64(homeID[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Owner returns the member responsible for homeID, or ("", false) on an
// empty ring. Ties (astronomically unlikely with 64-bit scores) break by
// node-name order, so every router computes the same owner.
func (r *Ring) Owner(homeID string) (string, bool) {
	if r == nil || len(r.nodes) == 0 {
		return "", false
	}
	best, bestScore := "", uint64(0)
	for _, n := range r.nodes {
		if s := score(n, homeID); best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best, true
}

// Nodes returns the members (sorted; the slice is the ring's own).
func (r *Ring) Nodes() []string {
	if r == nil {
		return nil
	}
	return r.nodes
}

// Len returns the member count.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.nodes)
}

// With returns a ring with node added (no-op copy if already a member).
func (r *Ring) With(node string) *Ring {
	for _, n := range r.Nodes() {
		if n == node {
			return NewRing(r.nodes...)
		}
	}
	return NewRing(append(append([]string(nil), r.Nodes()...), node)...)
}

// Without returns a ring with node removed.
func (r *Ring) Without(node string) *Ring {
	out := make([]string, 0, r.Len())
	for _, n := range r.Nodes() {
		if n != node {
			out = append(out, n)
		}
	}
	return NewRing(out...)
}
