package fed

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"uniint/internal/hub"
	"uniint/internal/metrics"
	"uniint/internal/rfb"
)

func TestRingOwnerCoversAndBalances(t *testing.T) {
	nodes := []string{"alpha", "beta", "gamma", "delta"}
	r := NewRing(nodes...)
	counts := map[string]int{}
	const homes = 4000
	for i := 0; i < homes; i++ {
		owner, ok := r.Owner(fmt.Sprintf("home-%04d", i))
		if !ok {
			t.Fatalf("home-%04d unowned", i)
		}
		counts[owner]++
	}
	for _, n := range nodes {
		got := counts[n]
		if got < homes/len(nodes)/2 || got > homes/len(nodes)*2 {
			t.Errorf("node %s owns %d of %d homes — rendezvous badly skewed", n, got, homes)
		}
	}
}

// Rendezvous property: removing a node relocates ONLY the homes that
// node owned; everything else keeps its owner.
func TestRingMinimalDisruption(t *testing.T) {
	full := NewRing("alpha", "beta", "gamma")
	smaller := full.Without("beta")
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("home-%04d", i)
		before, _ := full.Owner(id)
		after, _ := smaller.Owner(id)
		if before != "beta" && after != before {
			t.Fatalf("%s moved %s→%s though beta never owned it", id, before, after)
		}
		if before == "beta" && after == "beta" {
			t.Fatalf("%s still owned by removed node", id)
		}
	}
	if back := smaller.With("beta"); back.Len() != 3 {
		t.Fatalf("With after Without: %d nodes", back.Len())
	}
}

func TestRegistryNotifies(t *testing.T) {
	r := NewRegistry("alpha")
	var got []Event
	r.Subscribe(func(e Event) { got = append(got, e) })
	r.Join("alpha") // already present: no event
	r.Join("beta")
	r.Leave("alpha")
	r.Leave("alpha") // already gone: no event
	want := []Event{{Node: "beta", Join: true}, {Node: "alpha", Join: false}}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if !r.Contains("beta") || r.Contains("alpha") {
		t.Fatalf("membership state wrong: %v", r.Members())
	}
}

// stubHost is a minimal hub.Host whose detach lot is a map of shipped
// migration records — enough to exercise the cluster's route and
// migrate paths without a full session stack.
type stubHost struct {
	node string // which factory built it (routing assertions)
	id   string

	mu     sync.Mutex
	parked map[string]*rfb.MigrationRecord
	closed bool
}

func (s *stubHost) HandleConn(conn net.Conn) error {
	defer conn.Close()
	fmt.Fprintf(conn, "%s/%s\n", s.node, s.id)
	return nil
}
func (s *stubHost) AttachEdge(conn net.Conn, onClose func()) error {
	conn.Close()
	return hub.ErrNoEdge
}
func (s *stubHost) Parked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.parked)
}
func (s *stubHost) HasParked(token string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.parked[token]
	return ok
}
func (s *stubHost) ParkedTokens() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.parked))
	for tok := range s.parked {
		out = append(out, tok)
	}
	return out
}
func (s *stubHost) ExportParked(token string) (*rfb.MigrationRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.parked[token]
	if ok {
		delete(s.parked, token)
	}
	return rec, ok
}
func (s *stubHost) ImportParked(rec *rfb.MigrationRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.parked == nil {
		s.parked = make(map[string]*rfb.MigrationRecord)
	}
	s.parked[rec.Token] = rec
	return nil
}
func (s *stubHost) DetachSessions(time.Duration) error { return nil }
func (s *stubHost) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

func stubHub(t *testing.T, node string, reg *metrics.Registry) *hub.Hub {
	t.Helper()
	h, err := hub.New(hub.Options{
		Factory: func(id string) (hub.Host, error) {
			return &stubHost{node: node, id: id, parked: map[string]*rfb.MigrationRecord{}}, nil
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatalf("hub.New(%s): %v", node, err)
	}
	return h
}

func TestClusterRoutesByRing(t *testing.T) {
	mreg := metrics.NewRegistry()
	c := NewCluster(Options{Metrics: mreg})
	hubs := map[string]*hub.Hub{}
	for _, n := range []string{"alpha", "beta"} {
		hubs[n] = stubHub(t, n, mreg)
		if err := c.AddNode(n, hubs[n]); err != nil {
			t.Fatalf("AddNode(%s): %v", n, err)
		}
		defer hubs[n].Close()
	}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("home-%d", i)
		owner, ok := c.Owner(id)
		if !ok {
			t.Fatalf("no owner for %s", id)
		}
		client, server := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- c.ServeConn(server) }()
		if err := hub.WritePreamble(client, id); err != nil {
			t.Fatalf("preamble: %v", err)
		}
		line, err := bufio.NewReader(client).ReadString('\n')
		if err != nil {
			t.Fatalf("read reply: %v", err)
		}
		want := fmt.Sprintf("%s/%s\n", owner, id)
		if line != want {
			t.Fatalf("connection for %s served by %q, ring says %q", id, line, want)
		}
		client.Close()
		if err := <-done; err != nil {
			t.Fatalf("ServeConn: %v", err)
		}
	}
	if got := mreg.Counter("fed_routes_total").Value(); got != 8 {
		t.Fatalf("fed_routes_total = %d, want 8", got)
	}
}

func TestClusterDrainMigratesParked(t *testing.T) {
	mreg := metrics.NewRegistry()
	c := NewCluster(Options{Metrics: mreg})
	ha, hb := stubHub(t, "alpha", mreg), stubHub(t, "beta", mreg)
	defer ha.Close()
	defer hb.Close()
	if err := c.AddNode("alpha", ha); err != nil {
		t.Fatal(err)
	}

	const homeID = "kitchen"
	host, err := ha.Admit(homeID)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	src := host.(*stubHost)
	rec := &rfb.MigrationRecord{Token: "feedface00000000deadbeef", W: 64, H: 48,
		RemainingTTL: 30 * time.Second}
	if err := host.ImportParked(rec); err != nil {
		t.Fatalf("seed park: %v", err)
	}

	if err := c.AddNode("beta", hb); err != nil {
		t.Fatalf("AddNode(beta): %v", err)
	}
	if err := c.Drain("alpha"); err != nil {
		t.Fatalf("Drain(alpha): %v", err)
	}

	// The home and its parked session now live on beta, alpha's copy is
	// closed, and the router only knows beta.
	moved, err := hb.Get(homeID)
	if err != nil {
		t.Fatalf("home did not arrive on beta: %v", err)
	}
	if !moved.HasParked(rec.Token) {
		t.Fatal("parked session did not migrate")
	}
	if got := moved.(*stubHost).node; got != "beta" {
		t.Fatalf("migrated home hosted by %q", got)
	}
	if _, err := ha.Get(homeID); err == nil {
		t.Fatal("source hub still hosts the home")
	}
	src.mu.Lock()
	closed := src.closed
	src.mu.Unlock()
	if !closed {
		t.Fatal("evacuated source host not closed")
	}
	if owner, ok := c.Owner(homeID); !ok || owner != "beta" {
		t.Fatalf("post-drain owner = %q, %v", owner, ok)
	}
	if got := mreg.Counter("fed_migrations_total").Value(); got < 1 {
		t.Fatalf("fed_migrations_total = %d", got)
	}
	if got := mreg.Counter("fed_migration_bytes_total").Value(); got <= 0 {
		t.Fatalf("fed_migration_bytes_total = %d", got)
	}
	// Token routing finds the migrated session through the front router.
	if n := c.findToken(rec.Token); n == nil || n.Name != "beta" {
		t.Fatalf("findToken routed to %v", n)
	}
}

func TestClusterRejectsDuplicateAndUnknown(t *testing.T) {
	mreg := metrics.NewRegistry()
	c := NewCluster(Options{Metrics: mreg})
	h := stubHub(t, "solo", mreg)
	defer h.Close()
	if err := c.AddNode("solo", h); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode("solo", h); err == nil {
		t.Fatal("duplicate AddNode accepted")
	}
	if err := c.Drain("ghost"); err == nil {
		t.Fatal("Drain of unknown node accepted")
	}
	if err := c.MigrateHome("home", "solo", "ghost"); err == nil {
		t.Fatal("MigrateHome to unknown node accepted")
	}
}
