package device

import (
	"uniint/internal/core"
	"uniint/internal/rfb"
)

// RemoteControl is the sofa device of the paper's second scenario: "if
// s/he is watching TV on a sofa, a remote controller may be better." It is
// input-only; the television screen is the natural matching output.
type RemoteControl struct {
	id string
	em *emitter
}

var _ core.InputDevice = (*RemoteControl)(nil)

// NewRemoteControl creates a remote-control simulator.
func NewRemoteControl(id string) *RemoteControl {
	return &RemoteControl{id: id, em: newEmitter(64)}
}

// ID implements core.InputDevice.
func (r *RemoteControl) ID() string { return r.id }

// Class implements core.InputDevice.
func (r *RemoteControl) Class() string { return "remote" }

// InputPlugin implements core.InputDevice.
func (r *RemoteControl) InputPlugin() core.InputPlugin { return &remoteInputPlugin{} }

// Events implements core.InputDevice.
func (r *RemoteControl) Events() <-chan core.RawEvent { return r.em.events() }

// Close shuts the device down.
func (r *RemoteControl) Close() { r.em.close() }

// Dropped reports events lost to backpressure.
func (r *RemoteControl) Dropped() int64 { return r.em.Dropped() }

// Press simulates a full press+release of a named button. Valid names:
// "up", "down", "left", "right", "ok", "back", plus digits "0".."9".
func (r *RemoteControl) Press(button string) {
	r.em.emit(core.RawEvent{Kind: core.EvButton, Code: button, Down: true})
	r.em.emit(core.RawEvent{Kind: core.EvButton, Code: button, Down: false})
}

// Hold simulates pressing a button without releasing (auto-repeat is the
// proxy's concern in real hardware; not modeled).
func (r *RemoteControl) Hold(button string) {
	r.em.emit(core.RawEvent{Kind: core.EvButton, Code: button, Down: true})
}

// Release simulates releasing a held button.
func (r *RemoteControl) Release(button string) {
	r.em.emit(core.RawEvent{Kind: core.EvButton, Code: button, Down: false})
}

// remoteInputPlugin maps remote buttons onto universal keyboard events.
type remoteInputPlugin struct{}

var _ core.InputPlugin = (*remoteInputPlugin)(nil)

func (remoteInputPlugin) Name() string { return "remote-ir" }

func (remoteInputPlugin) Bind(int, int) {}

var remoteKeymap = map[string]uint32{
	"up":    rfb.KeyUp,
	"down":  rfb.KeyDown,
	"left":  rfb.KeyLeft,
	"right": rfb.KeyRight,
	"ok":    rfb.KeyReturn,
	"back":  rfb.KeyEscape,
}

func (remoteInputPlugin) Translate(ev core.RawEvent) []core.UniEvent {
	if ev.Kind != core.EvButton {
		return nil
	}
	key, ok := remoteKeymap[ev.Code]
	if !ok {
		if len(ev.Code) == 1 && ev.Code[0] >= '0' && ev.Code[0] <= '9' {
			key = uint32(ev.Code[0])
		} else {
			return nil
		}
	}
	if ev.Down {
		return []core.UniEvent{core.KeyPress(key)}
	}
	return []core.UniEvent{core.KeyRelease(key)}
}
