// Package device simulates the advanced interaction devices of the paper:
// PDAs, cellular phones, TV displays, voice input, gesture input and
// remote controllers. Each device carries the input and/or output plug-in
// module it "transmits" to the UniInt proxy when selected.
//
// The real hardware (wireless PDAs, phone handsets, microphones, cameras)
// is a hardware gate for reproduction; these simulators expose the same
// event vocabularies and display constraints (geometry, color depth,
// keypad-only navigation), so every proxy conversion path is exercised
// faithfully. See DESIGN.md's substitution table.
package device

import (
	"sync"
	"sync/atomic"

	"uniint/internal/core"
)

// emitter is the shared event-source half of an input device: a bounded
// stream with drop-on-overflow semantics (real input hardware is lossy
// under backpressure, and the proxy must never be able to deadlock a
// device).
type emitter struct {
	ch      chan core.RawEvent
	dropped atomic.Int64
	closed  atomic.Bool
	mu      sync.Mutex
}

func newEmitter(buffer int) *emitter {
	if buffer < 1 {
		buffer = 64
	}
	return &emitter{ch: make(chan core.RawEvent, buffer)}
}

// emit enqueues ev, dropping it when the consumer lags or the device is
// closed.
func (e *emitter) emit(ev core.RawEvent) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		e.dropped.Add(1)
		return
	}
	select {
	case e.ch <- ev:
	default:
		e.dropped.Add(1)
	}
}

// events returns the consumer side.
func (e *emitter) events() <-chan core.RawEvent { return e.ch }

// close ends the stream.
func (e *emitter) close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Swap(true) {
		return
	}
	close(e.ch)
}

// Dropped reports how many events were lost to backpressure.
func (e *emitter) Dropped() int64 { return e.dropped.Load() }

// screen is the shared display half of an output device: it keeps the
// latest presented frame (latest-wins, never blocking the proxy) and lets
// tests wait for a frame sequence number.
type screen struct {
	mu    sync.Mutex
	cond  *sync.Cond
	frame core.Frame
	count int64
}

func newScreen() *screen {
	s := &screen{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// present implements the device side of core.OutputDevice.Present.
func (s *screen) present(f core.Frame) {
	s.mu.Lock()
	s.frame = f
	s.count++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Latest returns the most recent frame (zero Frame if none yet).
func (s *screen) Latest() core.Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frame
}

// FrameCount returns how many frames have been presented.
func (s *screen) FrameCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// WaitFrames blocks until at least n frames have been presented.
func (s *screen) WaitFrames(n int64) core.Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.count < n {
		s.cond.Wait()
	}
	return s.frame
}
