package device

import (
	"testing"

	"uniint/internal/core"
	"uniint/internal/gfx"
	"uniint/internal/rfb"
)

func collect(ch <-chan core.RawEvent, n int) []core.RawEvent {
	out := make([]core.RawEvent, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, <-ch)
	}
	return out
}

func TestPDAStylusTranslation(t *testing.T) {
	pda := NewPDA("pda-1")
	defer pda.Close()
	pl := pda.InputPlugin()
	pl.Bind(640, 480) // server is 2x the PDA panel

	pda.Tap(100, 50)
	evs := collect(pda.Events(), 2)

	down := pl.Translate(evs[0])
	if len(down) != 1 || !down[0].IsPointer {
		t.Fatalf("down = %+v", down)
	}
	if down[0].Pointer.X != 200 || down[0].Pointer.Y != 100 {
		t.Errorf("scaled coords = (%d,%d), want (200,100)", down[0].Pointer.X, down[0].Pointer.Y)
	}
	if down[0].Pointer.Buttons != 1 {
		t.Error("down event should press button 0")
	}
	up := pl.Translate(evs[1])
	if up[0].Pointer.Buttons != 0 {
		t.Error("up event should release buttons")
	}
}

func TestPDAOutputPluginGeometry(t *testing.T) {
	pl := NewPDA("p").OutputPlugin()
	fb := gfx.NewFramebuffer(640, 480)
	fb.Clear(gfx.Blue)
	f := pl.Convert(fb)
	if f.W != PDAWidth || f.H != PDAHeight || f.RGB == nil || f.Bits != nil {
		t.Fatalf("frame = %dx%d rgb=%v", f.W, f.H, f.RGB != nil)
	}
	if f.RGB.At(10, 10) != gfx.Blue {
		t.Error("content lost in conversion")
	}
	if pl.PixelFormat().BitsPerPixel != 16 {
		t.Error("PDA should request 16bpp")
	}
}

func TestPhoneKeypadTranslation(t *testing.T) {
	phone := NewPhone("ph-1")
	defer phone.Close()
	pl := phone.InputPlugin()
	pl.Bind(640, 480)

	tests := []struct {
		key  string
		want uint32
	}{
		{"up", rfb.KeyUp}, {"down", rfb.KeyDown}, {"ok", rfb.KeyReturn},
		{"2", rfb.KeyUp}, {"8", rfb.KeyDown}, {"5", rfb.KeyReturn},
		{"4", rfb.KeyLeft}, {"6", rfb.KeyRight}, {"#", rfb.KeyTab},
		{"7", '7'}, // unmapped digit passes through
	}
	for _, tt := range tests {
		phone.PressKey(tt.key)
		evs := collect(phone.Events(), 2)
		down := pl.Translate(evs[0])
		up := pl.Translate(evs[1])
		if len(down) != 1 || down[0].IsPointer || down[0].Key.Key != tt.want || !down[0].Key.Down {
			t.Errorf("key %q down = %+v, want key %x", tt.key, down, tt.want)
		}
		if len(up) != 1 || up[0].Key.Down {
			t.Errorf("key %q up = %+v", tt.key, up)
		}
	}
}

func TestPhoneOutputPluginDithers(t *testing.T) {
	pl := NewPhone("p").OutputPlugin()
	fb := gfx.NewFramebuffer(640, 480)
	fb.Clear(gfx.RGB(128, 128, 128))
	f := pl.Convert(fb)
	if f.W != PhoneWidth || f.H != PhoneHeight || f.Bits == nil || f.RGB != nil {
		t.Fatalf("frame = %+v", f)
	}
	ones := f.Bits.Ones()
	total := PhoneWidth * PhoneHeight
	if ones < total*35/100 || ones > total*65/100 {
		t.Errorf("mid-gray dither coverage = %d/%d", ones, total)
	}
	if pl.PixelFormat().BitsPerPixel != 8 {
		t.Error("phone should request 8bpp")
	}
}

func TestTVDisplayPassthrough(t *testing.T) {
	tv := NewTVDisplay("tv-1")
	pl := tv.OutputPlugin()
	fb := gfx.NewFramebuffer(640, 480)
	fb.Fill(gfx.R(10, 10, 5, 5), gfx.Red)
	f := pl.Convert(fb)
	if f.W != TVWidth || f.H != TVHeight {
		t.Fatalf("geometry %dx%d", f.W, f.H)
	}
	if !f.RGB.Equal(fb) {
		t.Error("TV conversion should be lossless at native size")
	}
	// The clone must be independent of the source.
	fb.Clear(gfx.Black)
	if f.RGB.At(10, 10) != gfx.Red {
		t.Error("frame aliases the source framebuffer")
	}
}

func TestVoiceGrammar(t *testing.T) {
	tests := []struct {
		utterance string
		want      []uint32
		ok        bool
	}{
		{"next", []uint32{rfb.KeyTab}, true},
		{"please select", []uint32{rfb.KeyReturn}, true},
		{"move down", []uint32{rfb.KeyTab}, true},
		{"turn it up", []uint32{rfb.KeyRight}, true},
		{"NEXT", []uint32{rfb.KeyTab}, true}, // case-insensitive
		{"next twice", []uint32{rfb.KeyTab, rfb.KeyTab}, true},
		{"increase three times", []uint32{rfb.KeyRight, rfb.KeyRight, rfb.KeyRight}, true},
		{"pressure cooker", nil, false}, // word boundaries: no "press"
		{"", nil, false},
		{"sing me a song", nil, false},
	}
	for _, tt := range tests {
		got, ok := RecognizeUtterance(tt.utterance)
		if ok != tt.ok {
			t.Errorf("%q: ok = %v, want %v", tt.utterance, ok, tt.ok)
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("%q: keys = %v, want %v", tt.utterance, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%q: keys = %v, want %v", tt.utterance, got, tt.want)
				break
			}
		}
	}
}

func TestVoicePluginCountsRecognition(t *testing.T) {
	v := NewVoiceInput("v-1")
	defer v.Close()
	pl := v.InputPlugin()
	pl.Bind(640, 480)

	v.Say("select")
	v.Say("gibberish phrase")
	evs := collect(v.Events(), 2)

	out := pl.Translate(evs[0])
	if len(out) != 2 { // press + release
		t.Fatalf("select produced %d events", len(out))
	}
	if out := pl.Translate(evs[1]); out != nil {
		t.Fatalf("gibberish produced events: %+v", out)
	}
	if v.Recognized() != 1 || v.Rejected() != 1 {
		t.Errorf("recognized=%d rejected=%d", v.Recognized(), v.Rejected())
	}
}

func TestClassifyStroke(t *testing.T) {
	line := func(x0, y0, x1, y1, n int) []Point {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: x0 + (x1-x0)*i/(n-1), Y: y0 + (y1-y0)*i/(n-1)}
		}
		return pts
	}
	circle := func(cx, cy, r, n int) []Point {
		pts := make([]Point, 0, n+1)
		// Octagonal approximation avoids pulling in math.
		offsets := [][2]int{{r, 0}, {r * 7 / 10, r * 7 / 10}, {0, r}, {-r * 7 / 10, r * 7 / 10},
			{-r, 0}, {-r * 7 / 10, -r * 7 / 10}, {0, -r}, {r * 7 / 10, -r * 7 / 10}, {r, 0}}
		for _, o := range offsets {
			pts = append(pts, Point{X: cx + o[0], Y: cy + o[1]})
		}
		return pts
	}

	tests := []struct {
		name   string
		points []Point
		want   string
		ok     bool
	}{
		{"tap", []Point{{50, 50}, {51, 51}, {50, 52}}, StrokeTap, true},
		{"swipe right", line(10, 50, 90, 52, 10), StrokeSwipeRight, true},
		{"swipe left", line(90, 50, 10, 48, 10), StrokeSwipeLeft, true},
		{"swipe down", line(50, 10, 53, 90, 10), StrokeSwipeDown, true},
		{"swipe up", line(50, 90, 47, 10, 10), StrokeSwipeUp, true},
		{"circle", circle(50, 50, 30, 16), StrokeCircle, true},
		{"diagonal ambiguous", line(0, 0, 50, 50, 10), "", false},
		{"empty", nil, "", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := ClassifyStroke(tt.points)
			if ok != tt.ok || got != tt.want {
				t.Errorf("ClassifyStroke = %q/%v, want %q/%v", got, ok, tt.want, tt.ok)
			}
		})
	}
}

func TestGestureDeviceClassifiesAndEmits(t *testing.T) {
	g := NewGestureInput("g-1")
	defer g.Close()
	pl := g.InputPlugin()
	pl.Bind(640, 480)

	g.Stroke([]Point{{50, 90}, {50, 60}, {49, 30}, {50, 10}})
	ev := <-g.Events()
	if ev.Code != StrokeSwipeUp {
		t.Fatalf("stroke = %q", ev.Code)
	}
	out := pl.Translate(ev)
	if len(out) != 2 || out[0].Key.Key != rfb.KeyUp {
		t.Fatalf("events = %+v", out)
	}
	// Unclassifiable strokes never reach the stream.
	g.Stroke([]Point{{0, 0}, {30, 30}})
	if g.Unknown() != 1 {
		t.Errorf("unknown = %d", g.Unknown())
	}
	if g.Classified() != 1 {
		t.Errorf("classified = %d", g.Classified())
	}
}

func TestRemoteTranslation(t *testing.T) {
	r := NewRemoteControl("r-1")
	defer r.Close()
	pl := r.InputPlugin()
	pl.Bind(640, 480)

	r.Press("ok")
	evs := collect(r.Events(), 2)
	down := pl.Translate(evs[0])
	if len(down) != 1 || down[0].Key.Key != rfb.KeyReturn || !down[0].Key.Down {
		t.Fatalf("ok down = %+v", down)
	}
	// Unknown button names produce nothing.
	if out := pl.Translate(core.RawEvent{Kind: core.EvButton, Code: "nonsense", Down: true}); out != nil {
		t.Errorf("unknown button events = %+v", out)
	}
	// Digits pass through.
	if out := pl.Translate(core.RawEvent{Kind: core.EvButton, Code: "3", Down: true}); len(out) != 1 || out[0].Key.Key != '3' {
		t.Errorf("digit = %+v", out)
	}
}

func TestEmitterDropsWhenFull(t *testing.T) {
	e := newEmitter(2)
	for i := 0; i < 5; i++ {
		e.emit(core.RawEvent{Kind: "x"})
	}
	if e.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", e.Dropped())
	}
	e.close()
	e.emit(core.RawEvent{Kind: "x"}) // after close: counted, not delivered
	if e.Dropped() != 4 {
		t.Errorf("dropped after close = %d", e.Dropped())
	}
	// Channel is closed after draining buffered events.
	n := 0
	for range e.events() {
		n++
	}
	if n != 2 {
		t.Errorf("delivered = %d", n)
	}
}

func TestScreenLatestWins(t *testing.T) {
	s := newScreen()
	done := make(chan core.Frame, 1)
	go func() { done <- s.WaitFrames(3) }()
	for i := 1; i <= 3; i++ {
		s.present(core.Frame{Seq: uint64(i)})
	}
	f := <-done
	if f.Seq != 3 {
		t.Errorf("latest seq = %d", f.Seq)
	}
	if s.FrameCount() != 3 {
		t.Errorf("count = %d", s.FrameCount())
	}
}
