package device

import (
	"uniint/internal/core"
	"uniint/internal/gfx"
)

// PDA display geometry (a Compaq iPAQ-class handheld of the paper's era).
const (
	PDAWidth  = 320
	PDAHeight = 240
)

// PDA is a stylus-operated handheld that serves as input and output
// interaction device simultaneously — the paper's first example of a user
// selecting "their PDAs for their input/output interaction".
type PDA struct {
	id string
	em *emitter
	sc *screen
}

var (
	_ core.InputDevice  = (*PDA)(nil)
	_ core.OutputDevice = (*PDA)(nil)
)

// NewPDA creates a PDA simulator.
func NewPDA(id string) *PDA {
	return &PDA{id: id, em: newEmitter(128), sc: newScreen()}
}

// ID implements core.InputDevice/core.OutputDevice.
func (p *PDA) ID() string { return p.id }

// Class implements core.InputDevice/core.OutputDevice.
func (p *PDA) Class() string { return "pda" }

// InputPlugin implements core.InputDevice.
func (p *PDA) InputPlugin() core.InputPlugin {
	return &pdaInputPlugin{devW: PDAWidth, devH: PDAHeight}
}

// OutputPlugin implements core.OutputDevice.
func (p *PDA) OutputPlugin() core.OutputPlugin { return pdaOutputPlugin{} }

// Events implements core.InputDevice.
func (p *PDA) Events() <-chan core.RawEvent { return p.em.events() }

// Present implements core.OutputDevice.
func (p *PDA) Present(f core.Frame) { p.sc.present(f) }

// Latest returns the most recent frame on the PDA's screen.
func (p *PDA) Latest() core.Frame { return p.sc.Latest() }

// FrameCount returns the number of frames presented so far.
func (p *PDA) FrameCount() int64 { return p.sc.FrameCount() }

// WaitFrames blocks until n frames have been presented.
func (p *PDA) WaitFrames(n int64) core.Frame { return p.sc.WaitFrames(n) }

// Dropped reports input events lost to backpressure.
func (p *PDA) Dropped() int64 { return p.em.Dropped() }

// Close shuts the device down; its event stream ends.
func (p *PDA) Close() { p.em.close() }

// TouchDown simulates the stylus making contact at device coordinates.
func (p *PDA) TouchDown(x, y int) {
	p.em.emit(core.RawEvent{Kind: core.EvStylus, X: x, Y: y, Down: true})
}

// TouchMove simulates dragging the stylus.
func (p *PDA) TouchMove(x, y int) {
	p.em.emit(core.RawEvent{Kind: core.EvStylus, X: x, Y: y, Down: true})
}

// TouchUp simulates lifting the stylus.
func (p *PDA) TouchUp(x, y int) {
	p.em.emit(core.RawEvent{Kind: core.EvStylus, X: x, Y: y, Down: false})
}

// Tap simulates a complete stylus tap.
func (p *PDA) Tap(x, y int) {
	p.TouchDown(x, y)
	p.TouchUp(x, y)
}

// pdaInputPlugin maps stylus contact in PDA screen coordinates onto
// pointer events in server desktop coordinates, inverting the output
// plug-in's scaling.
type pdaInputPlugin struct {
	devW, devH int
	srvW, srvH int
}

var _ core.InputPlugin = (*pdaInputPlugin)(nil)

func (pl *pdaInputPlugin) Name() string { return "pda-stylus" }

func (pl *pdaInputPlugin) Bind(w, h int) { pl.srvW, pl.srvH = w, h }

func (pl *pdaInputPlugin) Translate(ev core.RawEvent) []core.UniEvent {
	if ev.Kind != core.EvStylus || pl.srvW == 0 || pl.srvH == 0 {
		return nil
	}
	x := ev.X * pl.srvW / pl.devW
	y := ev.Y * pl.srvH / pl.devH
	var buttons uint8
	if ev.Down {
		buttons = 1
	}
	return []core.UniEvent{core.PointerTo(x, y, buttons)}
}

// pdaOutputPlugin downscales the desktop to the PDA panel with box
// filtering (keeping text legible) and asks for 16-bit wire pixels.
type pdaOutputPlugin struct{}

var _ core.OutputPlugin = pdaOutputPlugin{}

func (pdaOutputPlugin) Name() string { return "pda-lcd" }

func (pdaOutputPlugin) PixelFormat() gfx.PixelFormat { return gfx.PF16() }

func (pdaOutputPlugin) Convert(fb *gfx.Framebuffer) core.Frame {
	scaled := gfx.ScaleBox(fb, PDAWidth, PDAHeight)
	return core.Frame{W: PDAWidth, H: PDAHeight, RGB: scaled}
}
