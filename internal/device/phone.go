package device

import (
	"uniint/internal/core"
	"uniint/internal/gfx"
	"uniint/internal/rfb"
)

// Cellular phone display geometry (a 2002-era handset LCD).
const (
	PhoneWidth  = 96
	PhoneHeight = 64
)

// Phone is a cellular phone: a 12-key keypad for input and a tiny 1-bit
// LCD for output. The paper's second characteristic is motivated by
// exactly this device: "the user may choose his/her cellular phones as
// their input interaction devices, and television displays as his/her
// output interaction devices."
type Phone struct {
	id string
	em *emitter
	sc *screen
}

var (
	_ core.InputDevice  = (*Phone)(nil)
	_ core.OutputDevice = (*Phone)(nil)
)

// NewPhone creates a phone simulator.
func NewPhone(id string) *Phone {
	return &Phone{id: id, em: newEmitter(64), sc: newScreen()}
}

// ID implements core.InputDevice/core.OutputDevice.
func (p *Phone) ID() string { return p.id }

// Class implements core.InputDevice/core.OutputDevice.
func (p *Phone) Class() string { return "phone" }

// InputPlugin implements core.InputDevice.
func (p *Phone) InputPlugin() core.InputPlugin { return &phoneInputPlugin{} }

// OutputPlugin implements core.OutputDevice.
func (p *Phone) OutputPlugin() core.OutputPlugin { return phoneOutputPlugin{} }

// Events implements core.InputDevice.
func (p *Phone) Events() <-chan core.RawEvent { return p.em.events() }

// Present implements core.OutputDevice.
func (p *Phone) Present(f core.Frame) { p.sc.present(f) }

// Latest returns the most recent LCD frame.
func (p *Phone) Latest() core.Frame { return p.sc.Latest() }

// FrameCount returns the number of frames presented.
func (p *Phone) FrameCount() int64 { return p.sc.FrameCount() }

// WaitFrames blocks until n frames have been presented.
func (p *Phone) WaitFrames(n int64) core.Frame { return p.sc.WaitFrames(n) }

// Dropped reports input events lost to backpressure.
func (p *Phone) Dropped() int64 { return p.em.Dropped() }

// Close shuts the device down.
func (p *Phone) Close() { p.em.close() }

// PressKey simulates pressing and releasing a keypad key. Valid names:
// "0".."9", "*", "#", "up", "down", "left", "right", "ok".
func (p *Phone) PressKey(name string) {
	p.em.emit(core.RawEvent{Kind: core.EvKeypad, Code: name, Down: true})
	p.em.emit(core.RawEvent{Kind: core.EvKeypad, Code: name, Down: false})
}

// phoneInputPlugin maps keypad keys onto the universal keyboard
// navigation vocabulary. The composed control panel is fully operable by
// focus traversal (Tab/arrows) plus Enter, so a 12-key handset can drive
// any appliance GUI — without the GUI knowing a phone exists.
//
// Layout follows the classic phone-joystick convention: 2=up, 8=down,
// 4=left, 6=right, 5=ok, plus dedicated navigation keys on newer handsets.
type phoneInputPlugin struct{}

var _ core.InputPlugin = (*phoneInputPlugin)(nil)

func (phoneInputPlugin) Name() string { return "phone-keypad" }

func (phoneInputPlugin) Bind(int, int) {}

// phoneKeymap maps keypad names to universal key symbols.
var phoneKeymap = map[string]uint32{
	"up":    rfb.KeyUp,
	"down":  rfb.KeyDown,
	"left":  rfb.KeyLeft,
	"right": rfb.KeyRight,
	"ok":    rfb.KeyReturn,
	"2":     rfb.KeyUp,
	"8":     rfb.KeyDown,
	"4":     rfb.KeyLeft,
	"6":     rfb.KeyRight,
	"5":     rfb.KeyReturn,
	"*":     rfb.KeyEscape,
	"#":     rfb.KeyTab,
}

func (phoneInputPlugin) Translate(ev core.RawEvent) []core.UniEvent {
	if ev.Kind != core.EvKeypad {
		return nil
	}
	key, ok := phoneKeymap[ev.Code]
	if !ok {
		// Unmapped digits pass through as their ASCII code points so
		// number-entry widgets still work.
		if len(ev.Code) == 1 && ev.Code[0] >= '0' && ev.Code[0] <= '9' {
			key = uint32(ev.Code[0])
		} else {
			return nil
		}
	}
	if ev.Down {
		return []core.UniEvent{core.KeyPress(key)}
	}
	return []core.UniEvent{core.KeyRelease(key)}
}

// phoneOutputPlugin crushes the desktop onto the 96×64 1-bit LCD:
// box-downscale, then Floyd–Steinberg dithering. It requests 8-bit wire
// pixels — the cheapest true-color format — since the LCD discards color
// anyway (bandwidth effect measured in E8).
type phoneOutputPlugin struct{}

var _ core.OutputPlugin = phoneOutputPlugin{}

func (phoneOutputPlugin) Name() string { return "phone-lcd" }

func (phoneOutputPlugin) PixelFormat() gfx.PixelFormat { return gfx.PF8() }

func (phoneOutputPlugin) Convert(fb *gfx.Framebuffer) core.Frame {
	scaled := gfx.ScaleBox(fb, PhoneWidth, PhoneHeight)
	bits := gfx.FloydSteinberg(scaled)
	return core.Frame{W: PhoneWidth, H: PhoneHeight, Bits: bits}
}
