package device

import (
	"testing"

	"uniint/internal/core"
	"uniint/internal/gfx"
	"uniint/internal/rfb"
)

func TestDeviceIdentities(t *testing.T) {
	tests := []struct {
		id, class string
		in        core.InputDevice
		out       core.OutputDevice
	}{
		{"pda-x", "pda", NewPDA("pda-x"), NewPDA("pda-x")},
		{"ph-x", "phone", NewPhone("ph-x"), NewPhone("ph-x")},
		{"v-x", "voice", NewVoiceInput("v-x"), nil},
		{"g-x", "gesture", NewGestureInput("g-x"), nil},
		{"r-x", "remote", NewRemoteControl("r-x"), nil},
		{"tv-x", "tv", nil, NewTVDisplay("tv-x")},
	}
	for _, tt := range tests {
		if tt.in != nil {
			if tt.in.ID() != tt.id || tt.in.Class() != tt.class {
				t.Errorf("input %s: id=%q class=%q", tt.id, tt.in.ID(), tt.in.Class())
			}
			if tt.in.InputPlugin().Name() == "" {
				t.Errorf("%s: empty plugin name", tt.id)
			}
			// Bind must be safe for every plugin.
			tt.in.InputPlugin().Bind(640, 480)
		}
		if tt.out != nil {
			if tt.out.ID() != tt.id || tt.out.Class() != tt.class {
				t.Errorf("output %s: id=%q class=%q", tt.id, tt.out.ID(), tt.out.Class())
			}
			if tt.out.OutputPlugin().Name() == "" {
				t.Errorf("%s: empty plugin name", tt.id)
			}
			if !tt.out.OutputPlugin().PixelFormat().Valid() {
				t.Errorf("%s: invalid pixel format", tt.id)
			}
		}
	}
}

func TestScreenBackedDevices(t *testing.T) {
	frame := core.Frame{W: 10, H: 10, RGB: gfx.NewFramebuffer(10, 10), Seq: 1}
	devs := []interface {
		Present(core.Frame)
		Latest() core.Frame
		FrameCount() int64
		WaitFrames(int64) core.Frame
	}{
		NewPDA("p"), NewPhone("f"), NewTVDisplay("t"),
	}
	for _, d := range devs {
		d.Present(frame)
		if d.FrameCount() != 1 || d.Latest().Seq != 1 {
			t.Errorf("%T: count=%d seq=%d", d, d.FrameCount(), d.Latest().Seq)
		}
		if got := d.WaitFrames(1); got.Seq != 1 {
			t.Errorf("%T: wait seq=%d", d, got.Seq)
		}
	}
}

func TestPDATouchMoveDrag(t *testing.T) {
	pda := NewPDA("p")
	defer pda.Close()
	pl := pda.InputPlugin()
	pl.Bind(640, 480)
	pda.TouchDown(10, 10)
	pda.TouchMove(20, 10)
	pda.TouchUp(20, 10)
	evs := collect(pda.Events(), 3)
	mid := pl.Translate(evs[1])
	if len(mid) != 1 || mid[0].Pointer.Buttons != 1 {
		t.Errorf("drag should keep the button held: %+v", mid)
	}
	if pda.Dropped() != 0 {
		t.Errorf("dropped = %d", pda.Dropped())
	}
}

func TestRemoteHoldRelease(t *testing.T) {
	r := NewRemoteControl("r")
	defer r.Close()
	pl := r.InputPlugin()
	pl.Bind(640, 480)
	r.Hold("down")
	r.Release("down")
	evs := collect(r.Events(), 2)
	down := pl.Translate(evs[0])
	up := pl.Translate(evs[1])
	if !down[0].Key.Down || up[0].Key.Down {
		t.Error("hold/release should map to press/release")
	}
	if down[0].Key.Key != rfb.KeyDown {
		t.Errorf("key = %x", down[0].Key.Key)
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d", r.Dropped())
	}
}

func TestTVDisplayScalesOddSources(t *testing.T) {
	pl := NewTVDisplay("t").OutputPlugin()
	src := gfx.NewFramebuffer(320, 200) // not the TV's native size
	src.Clear(gfx.Green)
	f := pl.Convert(src)
	if f.W != TVWidth || f.H != TVHeight {
		t.Fatalf("geometry %dx%d", f.W, f.H)
	}
	if f.RGB.At(100, 100) != gfx.Green {
		t.Error("scaled content lost")
	}
}

func TestPluginsIgnoreForeignEventKinds(t *testing.T) {
	// Every input plug-in must ignore event kinds it does not own —
	// the proxy shares one RawEvent vocabulary across devices.
	foreign := []core.RawEvent{
		{Kind: core.EvStylus, X: 1, Y: 1, Down: true},
		{Kind: core.EvKeypad, Code: "ok", Down: true},
		{Kind: core.EvUtterance, Code: "select"},
		{Kind: core.EvStroke, Code: StrokeTap},
		{Kind: core.EvButton, Code: "ok", Down: true},
	}
	owners := map[string]core.InputPlugin{
		core.EvStylus:    NewPDA("p").InputPlugin(),
		core.EvKeypad:    NewPhone("f").InputPlugin(),
		core.EvUtterance: NewVoiceInput("v").InputPlugin(),
		core.EvStroke:    NewGestureInput("g").InputPlugin(),
		core.EvButton:    NewRemoteControl("r").InputPlugin(),
	}
	for kind, pl := range owners {
		pl.Bind(640, 480)
		for _, ev := range foreign {
			got := pl.Translate(ev)
			if ev.Kind == kind {
				if len(got) == 0 {
					t.Errorf("%s plugin ignored its own event", kind)
				}
			} else if len(got) != 0 {
				t.Errorf("%s plugin consumed foreign %s event", kind, ev.Kind)
			}
		}
	}
}
