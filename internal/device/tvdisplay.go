package device

import (
	"uniint/internal/core"
	"uniint/internal/gfx"
)

// TV display geometry.
const (
	TVWidth  = 640
	TVHeight = 480
)

// TVDisplay is an output-only interaction device: the living-room
// television screen used as the GUI surface while input comes from a
// phone, remote or voice (characteristic C1: independent choice).
type TVDisplay struct {
	id string
	sc *screen
}

var _ core.OutputDevice = (*TVDisplay)(nil)

// NewTVDisplay creates a TV display simulator.
func NewTVDisplay(id string) *TVDisplay {
	return &TVDisplay{id: id, sc: newScreen()}
}

// ID implements core.OutputDevice.
func (t *TVDisplay) ID() string { return t.id }

// Class implements core.OutputDevice.
func (t *TVDisplay) Class() string { return "tv" }

// OutputPlugin implements core.OutputDevice.
func (t *TVDisplay) OutputPlugin() core.OutputPlugin { return tvOutputPlugin{} }

// Present implements core.OutputDevice.
func (t *TVDisplay) Present(f core.Frame) { t.sc.present(f) }

// Latest returns the most recent frame.
func (t *TVDisplay) Latest() core.Frame { return t.sc.Latest() }

// FrameCount returns the number of frames presented.
func (t *TVDisplay) FrameCount() int64 { return t.sc.FrameCount() }

// WaitFrames blocks until n frames have been presented.
func (t *TVDisplay) WaitFrames(n int64) core.Frame { return t.sc.WaitFrames(n) }

// tvOutputPlugin is the passthrough conversion: the TV panel matches the
// server desktop, so frames are cloned (the proxy's shadow buffer cannot
// be retained) at full 32-bit color.
type tvOutputPlugin struct{}

var _ core.OutputPlugin = tvOutputPlugin{}

func (tvOutputPlugin) Name() string { return "tv-screen" }

func (tvOutputPlugin) PixelFormat() gfx.PixelFormat { return gfx.PF32() }

func (tvOutputPlugin) Convert(fb *gfx.Framebuffer) core.Frame {
	if fb.W() == TVWidth && fb.H() == TVHeight {
		return core.Frame{W: TVWidth, H: TVHeight, RGB: fb.Clone()}
	}
	scaled := gfx.ScaleNearest(fb, TVWidth, TVHeight)
	return core.Frame{W: TVWidth, H: TVHeight, RGB: scaled}
}
