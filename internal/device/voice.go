package device

import (
	"strings"
	"sync/atomic"

	"uniint/internal/core"
	"uniint/internal/rfb"
)

// VoiceInput is the hands-free input device of the paper's kitchen
// scenario: "if a user is cooking a dish, s/he likes to control appliances
// via voices." Utterances are recognized against a small command grammar
// and translated into universal keyboard navigation.
//
// Real speech DSP is a hardware/data gate; the simulator consumes text
// transcripts, which exercises the same recognition-grammar → universal
// event pipeline (DESIGN.md substitution table).
type VoiceInput struct {
	id         string
	em         *emitter
	recognized atomic.Int64
	rejected   atomic.Int64
}

var _ core.InputDevice = (*VoiceInput)(nil)

// NewVoiceInput creates a voice input simulator.
func NewVoiceInput(id string) *VoiceInput {
	return &VoiceInput{id: id, em: newEmitter(32)}
}

// ID implements core.InputDevice.
func (v *VoiceInput) ID() string { return v.id }

// Class implements core.InputDevice.
func (v *VoiceInput) Class() string { return "voice" }

// InputPlugin implements core.InputDevice.
func (v *VoiceInput) InputPlugin() core.InputPlugin {
	return &voiceInputPlugin{dev: v}
}

// Events implements core.InputDevice.
func (v *VoiceInput) Events() <-chan core.RawEvent { return v.em.events() }

// Close shuts the device down.
func (v *VoiceInput) Close() { v.em.close() }

// Dropped reports events lost to backpressure.
func (v *VoiceInput) Dropped() int64 { return v.em.Dropped() }

// Recognized reports utterances the grammar accepted.
func (v *VoiceInput) Recognized() int64 { return v.recognized.Load() }

// Rejected reports utterances outside the grammar.
func (v *VoiceInput) Rejected() int64 { return v.rejected.Load() }

// Say simulates the user speaking a sentence.
func (v *VoiceInput) Say(utterance string) {
	v.em.emit(core.RawEvent{Kind: core.EvUtterance, Code: utterance})
}

// voiceCommand pairs a grammar phrase set with its key output.
type voiceCommand struct {
	phrases []string
	keys    []uint32
}

// voiceGrammar is the recognition grammar: keyword-spotted phrases mapped
// to universal keyboard navigation. Longer phrases match first.
var voiceGrammar = []voiceCommand{
	{[]string{"move down", "next control", "next"}, []uint32{rfb.KeyTab}},
	{[]string{"move up", "previous control", "previous", "back"}, []uint32{rfb.KeyUp}},
	{[]string{"turn it up", "increase", "more", "right"}, []uint32{rfb.KeyRight}},
	{[]string{"turn it down", "decrease", "less", "left"}, []uint32{rfb.KeyLeft}},
	{[]string{"select", "okay", "press", "push", "activate", "toggle"}, []uint32{rfb.KeyReturn}},
	{[]string{"escape", "cancel"}, []uint32{rfb.KeyEscape}},
}

// RecognizeUtterance applies the grammar to a transcript, returning the
// key sequence and whether anything matched. It is exported so experiment
// E10 can benchmark the recognizer in isolation.
func RecognizeUtterance(utterance string) ([]uint32, bool) {
	text := strings.ToLower(strings.TrimSpace(utterance))
	if text == "" {
		return nil, false
	}
	// Repetition suffix: "... twice"/"... three times" repeats the command.
	repeat := 1
	switch {
	case strings.HasSuffix(text, " twice"):
		repeat, text = 2, strings.TrimSuffix(text, " twice")
	case strings.HasSuffix(text, " three times"):
		repeat, text = 3, strings.TrimSuffix(text, " three times")
	}
	for _, cmd := range voiceGrammar {
		for _, p := range cmd.phrases {
			if containsPhrase(text, p) {
				out := make([]uint32, 0, len(cmd.keys)*repeat)
				for i := 0; i < repeat; i++ {
					out = append(out, cmd.keys...)
				}
				return out, true
			}
		}
	}
	return nil, false
}

// containsPhrase reports whether phrase appears in text on word
// boundaries (keyword spotting, not substring matching — "pressure" must
// not trigger "press").
func containsPhrase(text, phrase string) bool {
	tw := strings.Fields(text)
	pw := strings.Fields(phrase)
	if len(pw) == 0 || len(pw) > len(tw) {
		return false
	}
	for i := 0; i+len(pw) <= len(tw); i++ {
		match := true
		for j, w := range pw {
			if tw[i+j] != w {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// voiceInputPlugin runs the grammar and emits key taps.
type voiceInputPlugin struct {
	dev *VoiceInput
}

var _ core.InputPlugin = (*voiceInputPlugin)(nil)

func (pl *voiceInputPlugin) Name() string { return "voice-grammar" }

func (pl *voiceInputPlugin) Bind(int, int) {}

func (pl *voiceInputPlugin) Translate(ev core.RawEvent) []core.UniEvent {
	if ev.Kind != core.EvUtterance {
		return nil
	}
	keys, ok := RecognizeUtterance(ev.Code)
	if !ok {
		pl.dev.rejected.Add(1)
		return nil
	}
	pl.dev.recognized.Add(1)
	out := make([]core.UniEvent, 0, len(keys)*2)
	for _, k := range keys {
		out = append(out, core.KeyTap(k)...)
	}
	return out
}
