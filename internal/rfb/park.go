package rfb

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"

	"uniint/internal/gfx"
)

// Parked-session compression. A parked session's memory is dominated by
// its WireState shadow framebuffer (w·h·4 bytes of mostly-flat GUI
// pixels); a detach lot full of roaming users holds one per absent
// client. PackedShadow is the cold form: the shadow serialized in PF32
// wire layout and deflated — against the same preset dictionary the
// EncZlibDict wire encoding uses when the session's pixel format matches
// the shadow's native 32-bit layout, so theme fills and glyph rows
// compress from the first byte. The tile window and validity flag are
// deliberately NOT preserved: every resume calls WireState.Reset anyway
// (the reconnecting client's tile memory is fresh), so the shadow pixels
// are the only state worth freezing.

// PackedShadow is an immutable compressed snapshot of a WireState.
type PackedShadow struct {
	w, h  int
	pf    gfx.PixelFormat
	pfSet bool
	dict  bool // compressed against the PF32 preset dictionary
	comp  []byte
	raw   int // serialized size before compression (w*h*4)
}

// RawBytes returns the uncompressed size of the packed shadow.
func (p *PackedShadow) RawBytes() int { return p.raw }

// PixelFormat returns the client-negotiated pixel format captured at pack
// time, and whether one was negotiated at all (the migration record
// carries both so a shipped session resumes with identical wire state).
func (p *PackedShadow) PixelFormat() (gfx.PixelFormat, bool) { return p.pf, p.pfSet }

// CompressedBytes returns the deflated size actually held.
func (p *PackedShadow) CompressedBytes() int { return len(p.comp) }

// ShadowBytes returns the resident size of the live shadow framebuffer —
// what packing would free. (Colors are 4 bytes each.)
func (ws *WireState) ShadowBytes() int { return ws.shadow.W() * ws.shadow.H() * 4 }

// packScratch bounds the serialization chunk fed to the deflater per
// write, keeping Pack's transient footprint independent of geometry.
const packScratch = 32 << 10

// Pack compresses the shadow into its cold form. The WireState is only
// read — the caller guarantees no writer turn runs concurrently (parked
// sessions have no writer; the lot serializes pack against claim).
func (ws *WireState) Pack() (*PackedShadow, error) {
	p := &PackedShadow{
		w: ws.shadow.W(), h: ws.shadow.H(),
		pf: ws.pf, pfSet: ws.pfSet,
		raw: ws.ShadowBytes(),
	}
	// The preset dictionary is built in the session's wire pixel layout;
	// it matches the serialized shadow only when that layout IS the
	// shadow's native little-endian 32-bit form. Other formats (a 16bpp
	// PDA client) compress cold rather than against a mismatched dict.
	pf32 := gfx.PF32()
	p.dict = !ws.pfSet || ws.pf == pf32
	var buf bytes.Buffer
	var zw *zlib.Writer
	var err error
	if p.dict {
		zw, err = zlib.NewWriterLevelDict(&buf, zlib.DefaultCompression, dictFor(pf32))
	} else {
		zw, err = zlib.NewWriterLevel(&buf, zlib.DefaultCompression)
	}
	if err != nil {
		return nil, err
	}
	var scratch [packScratch]byte
	n := 0
	for _, c := range ws.shadow.Pix() {
		// PF32 wire layout: little-endian, identity component mapping —
		// a byte-lossless serialization of the Color value.
		scratch[n] = byte(c)
		scratch[n+1] = byte(c >> 8)
		scratch[n+2] = byte(c >> 16)
		scratch[n+3] = byte(c >> 24)
		n += 4
		if n == packScratch {
			if _, err := zw.Write(scratch[:n]); err != nil {
				return nil, err
			}
			n = 0
		}
	}
	if n > 0 {
		if _, err := zw.Write(scratch[:n]); err != nil {
			return nil, err
		}
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	p.comp = buf.Bytes()
	return p, nil
}

// Unpack rebuilds a live WireState from the cold form: a fresh tile
// window and a distrusted-but-byte-identical shadow, exactly the state a
// resumed session needs before its revalidating repaint. cache is the
// shared tile store for the new state (may be nil).
func (p *PackedShadow) Unpack(cache *TileCache) (*WireState, error) {
	var zr io.ReadCloser
	var err error
	if p.dict {
		zr, err = zlib.NewReaderDict(bytes.NewReader(p.comp), dictFor(gfx.PF32()))
	} else {
		zr, err = zlib.NewReader(bytes.NewReader(p.comp))
	}
	if err != nil {
		return nil, fmt.Errorf("rfb: unpack shadow: %w", err)
	}
	defer zr.Close()
	ws := NewWireState(cache, p.w, p.h)
	pix := ws.shadow.Pix()
	var scratch [packScratch]byte
	i := 0
	for i < len(pix) {
		want := (len(pix) - i) * 4
		if want > packScratch {
			want = packScratch
		}
		if _, err := io.ReadFull(zr, scratch[:want]); err != nil {
			return nil, fmt.Errorf("rfb: unpack shadow: %w", err)
		}
		for o := 0; o < want; o += 4 {
			pix[i] = gfx.Color(uint32(scratch[o]) | uint32(scratch[o+1])<<8 |
				uint32(scratch[o+2])<<16 | uint32(scratch[o+3])<<24)
			i++
		}
	}
	if n, _ := zr.Read(scratch[:1]); n != 0 {
		return nil, fmt.Errorf("rfb: unpack shadow: trailing bytes")
	}
	ws.pf, ws.pfSet = p.pf, p.pfSet
	ws.valid = false // the client's adoption of its old shadow is unknowable
	return ws, nil
}
