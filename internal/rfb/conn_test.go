package rfb

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"uniint/internal/gfx"
)

// testServerHandler records everything the server-side read loop delivers.
type testServerHandler struct {
	mu       sync.Mutex
	keys     []KeyEvent
	pointers []PointerEvent
	requests []UpdateRequest
	cuts     []string
	gotReq   chan struct{}
	gotKey   chan struct{}
}

func newTestServerHandler() *testServerHandler {
	return &testServerHandler{
		gotReq: make(chan struct{}, 16),
		gotKey: make(chan struct{}, 16),
	}
}

func (h *testServerHandler) KeyEvent(ev KeyEvent) {
	h.mu.Lock()
	h.keys = append(h.keys, ev)
	h.mu.Unlock()
	h.gotKey <- struct{}{}
}

func (h *testServerHandler) PointerEvent(ev PointerEvent) {
	h.mu.Lock()
	h.pointers = append(h.pointers, ev)
	h.mu.Unlock()
}

func (h *testServerHandler) UpdateRequest(req UpdateRequest) {
	h.mu.Lock()
	h.requests = append(h.requests, req)
	h.mu.Unlock()
	h.gotReq <- struct{}{}
}

func (h *testServerHandler) CutText(s string) {
	h.mu.Lock()
	h.cuts = append(h.cuts, s)
	h.mu.Unlock()
}

// testClientHandler records update notifications.
type testClientHandler struct {
	mu      sync.Mutex
	updates [][]gfx.Rect
	bells   int
	gotUpd  chan struct{}
}

func newTestClientHandler() *testClientHandler {
	return &testClientHandler{gotUpd: make(chan struct{}, 16)}
}

func (h *testClientHandler) Updated(rects []gfx.Rect) {
	// The slice is reused by the read loop; copy to retain (the
	// ClientHandler contract).
	cp := make([]gfx.Rect, len(rects))
	copy(cp, rects)
	h.mu.Lock()
	h.updates = append(h.updates, cp)
	h.mu.Unlock()
	h.gotUpd <- struct{}{}
}

func (h *testClientHandler) Bell() {
	h.mu.Lock()
	h.bells++
	h.mu.Unlock()
}

func (h *testClientHandler) CutText(string) {}

// pipePair builds a connected server/client pair over net.Pipe, with both
// read loops running. Cleanup is registered on t.
func pipePair(t *testing.T, w, h int) (*ServerConn, *ClientConn, *testServerHandler, *testClientHandler) {
	t.Helper()
	sc, cc := net.Pipe()
	var (
		server *ServerConn
		serr   error
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, serr = NewServerConn(sc, w, h, "test desktop")
	}()
	client, cerr := Dial(cc)
	wg.Wait()
	if serr != nil {
		t.Fatalf("server handshake: %v", serr)
	}
	if cerr != nil {
		t.Fatalf("client handshake: %v", cerr)
	}

	sh := newTestServerHandler()
	ch := newTestClientHandler()
	done := make(chan struct{}, 2)
	go func() { server.Serve(sh); done <- struct{}{} }()
	go func() { client.Run(ch); done <- struct{}{} }()
	t.Cleanup(func() {
		server.Close()
		client.Close()
		for i := 0; i < 2; i++ {
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Error("read loop did not exit")
				return
			}
		}
	})
	return server, client, sh, ch
}

func waitSig(t *testing.T, ch chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
}

func TestHandshake(t *testing.T) {
	_, client, _, _ := pipePair(t, 320, 240)
	if client.Name() != "test desktop" {
		t.Errorf("name = %q", client.Name())
	}
	w, h := client.Size()
	if w != 320 || h != 240 {
		t.Errorf("size = %dx%d", w, h)
	}
}

func TestKeyAndPointerFlow(t *testing.T) {
	_, client, sh, _ := pipePair(t, 100, 100)
	if err := client.SendKey(KeyEvent{Down: true, Key: KeyReturn}); err != nil {
		t.Fatal(err)
	}
	waitSig(t, sh.gotKey, "key event")
	if err := client.SendPointer(PointerEvent{Buttons: 1, X: 10, Y: 20}); err != nil {
		t.Fatal(err)
	}
	if err := client.SendKey(KeyEvent{Down: false, Key: KeyReturn}); err != nil {
		t.Fatal(err)
	}
	waitSig(t, sh.gotKey, "key release")

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.keys) != 2 || sh.keys[0].Key != KeyReturn || !sh.keys[0].Down || sh.keys[1].Down {
		t.Errorf("keys = %+v", sh.keys)
	}
	if len(sh.pointers) != 1 || sh.pointers[0].X != 10 || sh.pointers[0].Y != 20 || !sh.pointers[0].Pressed(0) {
		t.Errorf("pointers = %+v", sh.pointers)
	}
}

func TestUpdateRequestAndUpdateDelivery(t *testing.T) {
	server, client, sh, ch := pipePair(t, 64, 64)

	if err := client.SetEncodings([]int32{EncHextile, EncRaw}); err != nil {
		t.Fatal(err)
	}
	if err := client.RequestUpdate(false, gfx.R(0, 0, 64, 64)); err != nil {
		t.Fatal(err)
	}
	waitSig(t, sh.gotReq, "update request")

	sh.mu.Lock()
	req := sh.requests[0]
	sh.mu.Unlock()
	if req.Incremental || req.Region != gfx.R(0, 0, 64, 64) {
		t.Errorf("request = %+v", req)
	}
	// Wait for the SetEncodings to land (it shares the ordered stream with
	// the request we already observed, so it has landed).
	if got := server.PreferredEncoding(); got != EncHextile {
		t.Errorf("preferred encoding = %s", EncodingName(got))
	}

	fb := makeGUIFrame(64, 64)
	if err := server.SendUpdate(fb, []gfx.Rect{fb.Bounds()}); err != nil {
		t.Fatal(err)
	}
	waitSig(t, ch.gotUpd, "framebuffer update")

	shadow := client.Snapshot(gfx.R(0, 0, 64, 64))
	if !shadow.Equal(fb) {
		t.Error("shadow framebuffer does not match server content")
	}
	if server.UpdatesSent() != 1 || client.UpdatesReceived() != 1 {
		t.Errorf("update counters: sent=%d recv=%d", server.UpdatesSent(), client.UpdatesReceived())
	}
}

func TestPixelFormatSwitch(t *testing.T) {
	server, client, _, ch := pipePair(t, 32, 32)
	if err := client.SetPixelFormat(gfx.PF16()); err != nil {
		t.Fatal(err)
	}
	// Order a full update; the server must have seen the new format by the
	// time it processes a later message, so send the request after.
	if err := client.RequestUpdate(false, gfx.R(0, 0, 32, 32)); err != nil {
		t.Fatal(err)
	}
	fb := gfx.NewFramebuffer(32, 32)
	fb.Clear(gfx.RGB(200, 100, 50))
	// Give the server read loop a moment to apply SetPixelFormat.
	deadline := time.Now().Add(time.Second)
	for server.PixelFormat().BitsPerPixel != 16 {
		if time.Now().After(deadline) {
			t.Fatal("server never saw pixel format change")
		}
		time.Sleep(time.Millisecond)
	}
	if err := server.SendUpdate(fb, []gfx.Rect{fb.Bounds()}); err != nil {
		t.Fatal(err)
	}
	waitSig(t, ch.gotUpd, "16bpp update")
	got := client.Snapshot(gfx.R(0, 0, 1, 1)).At(0, 0)
	want := gfx.PF16().Decode(gfx.PF16().Encode(gfx.RGB(200, 100, 50)))
	if got != want {
		t.Errorf("16bpp round trip = %06x, want %06x", got, want)
	}
	// 16bpp payload should be roughly half of 32bpp.
	if server.BytesSent() > 3000 {
		t.Errorf("16bpp update used %d bytes", server.BytesSent())
	}
}

func TestCopyRectMessage(t *testing.T) {
	server, client, _, ch := pipePair(t, 32, 32)
	fb := gfx.NewFramebuffer(32, 32)
	fb.Fill(gfx.R(0, 0, 8, 8), gfx.Red)
	if err := server.SendUpdate(fb, []gfx.Rect{fb.Bounds()}); err != nil {
		t.Fatal(err)
	}
	waitSig(t, ch.gotUpd, "initial update")
	// Move the red square to (16,16) via CopyRect only.
	if err := server.SendUpdateRects(nil, []UpdateRect{{
		Rect: gfx.R(16, 16, 8, 8), Encoding: EncCopyRect, CopySrcX: 0, CopySrcY: 0,
	}}); err != nil {
		t.Fatal(err)
	}
	waitSig(t, ch.gotUpd, "copyrect update")
	if got := client.Snapshot(gfx.R(16, 16, 1, 1)).At(0, 0); got != gfx.Red {
		t.Errorf("copyrect target = %06x", got)
	}
}

func TestBellAndCutText(t *testing.T) {
	server, client, sh, ch := pipePair(t, 16, 16)
	if err := server.Bell(); err != nil {
		t.Fatal(err)
	}
	if err := client.SendCutText("hello appliances"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		sh.mu.Lock()
		cuts := len(sh.cuts)
		sh.mu.Unlock()
		ch.mu.Lock()
		bells := ch.bells
		ch.mu.Unlock()
		if cuts == 1 && bells == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cuts=%d bells=%d", cuts, bells)
		}
		time.Sleep(time.Millisecond)
	}
	sh.mu.Lock()
	if sh.cuts[0] != "hello appliances" {
		t.Errorf("cut text = %q", sh.cuts[0])
	}
	sh.mu.Unlock()
}

func TestHandshakeRejectsBadVersion(t *testing.T) {
	sc, cc := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := NewServerConn(sc, 10, 10, "x")
		done <- err
	}()
	// Read the server version then answer garbage.
	buf := make([]byte, len(ProtocolVersion))
	if _, err := io.ReadFull(cc, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Write([]byte("GARBAGE 9.99\n"[:len(ProtocolVersion)])); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrBadVersion) {
			t.Errorf("err = %v, want ErrBadVersion", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handshake did not fail")
	}
	cc.Close()
}

func TestServeRejectsUnknownMessage(t *testing.T) {
	server, client, _, _ := pipePair(t, 16, 16)
	_ = server
	// Inject a bogus message type directly.
	client.wmu.Lock()
	client.bw.Write([]byte{0xEE})
	client.bw.Flush()
	client.wmu.Unlock()
	// The server read loop exits via cleanup; nothing to assert beyond not
	// hanging — covered by pipePair's cleanup timeout.
}

func TestServerCutTextToClient(t *testing.T) {
	server, _, _, ch := pipePair(t, 16, 16)
	if err := server.SendCutText("from server"); err != nil {
		t.Fatal(err)
	}
	// The recorder discards text, but the message must not desync the
	// stream: a bell after it still arrives.
	if err := server.Bell(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		ch.mu.Lock()
		bells := ch.bells
		ch.mu.Unlock()
		if bells == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream desynced after cut text")
		}
		time.Sleep(time.Millisecond)
	}
	if server.BytesReceived() < 0 || server.BytesSent() == 0 {
		t.Error("byte counters not tracking")
	}
}

func TestMidStreamPixelFormatSwitchNoDesync(t *testing.T) {
	// The generation-tagged format switch: stream many updates while
	// flipping formats; every update must decode under the format it was
	// encoded with, and the connection must stay alive.
	server, client, sh, ch := pipePair(t, 64, 64)
	fb := makeGUIFrame(64, 64)

	formats := []gfx.PixelFormat{gfx.PF32(), gfx.PF16(), gfx.PF8(), gfx.PF16()}
	for round, pf := range formats {
		if err := client.SetPixelFormat(pf); err != nil {
			t.Fatal(err)
		}
		if err := client.RequestUpdate(false, gfx.R(0, 0, 64, 64)); err != nil {
			t.Fatal(err)
		}
		waitSig(t, sh.gotReq, "request")
		if err := server.SendUpdate(fb, []gfx.Rect{fb.Bounds()}); err != nil {
			t.Fatal(err)
		}
		waitSig(t, ch.gotUpd, "update")
		// Shadow content matches the format's quantization.
		want := quantize(fb, pf)
		got := client.Snapshot(gfx.R(0, 0, 64, 64))
		if !got.Equal(want) {
			t.Fatalf("round %d: shadow mismatch under %dbpp", round, pf.BitsPerPixel)
		}
	}
	if client.UpdatesReceived() != int64(len(formats)) {
		t.Errorf("updates = %d", client.UpdatesReceived())
	}
	// WithFramebuffer exposes the decoded shadow.
	saw := false
	client.WithFramebuffer(func(f *gfx.Framebuffer) { saw = f.W() == 64 })
	if !saw {
		t.Error("WithFramebuffer broken")
	}
	if client.BytesSent() == 0 || client.BytesReceived() == 0 {
		t.Error("client byte counters not tracking")
	}
}

func TestEncodingNames(t *testing.T) {
	names := map[int32]string{
		EncRaw: "raw", EncCopyRect: "copyrect", EncRRE: "rre",
		EncHextile: "hextile", EncZlib: "zlib", 99: "enc(99)",
	}
	for enc, want := range names {
		if got := EncodingName(enc); got != want {
			t.Errorf("EncodingName(%d) = %q, want %q", enc, got, want)
		}
	}
	if !IsPrintable('x') || IsPrintable(KeyReturn) {
		t.Error("IsPrintable wrong")
	}
	for _, k := range []uint32{KeyBackSpace, KeyTab, KeyEscape, KeyLeft, KeyUp,
		KeyRight, KeyDown, KeyPageUp, KeyPageDown, KeyHome, KeyEnd,
		KeyShiftL, KeyControlL, 0xFFFE, 0} {
		if KeyName(k) == "" {
			t.Errorf("empty name for %#x", k)
		}
	}
}
