package rfb

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"

	"uniint/internal/gfx"
)

// encodeRect serializes the pixels of fb inside r using the given encoding
// and appends the wire bytes to dst. The rectangle header is NOT included.
// sc provides the caller-owned scratch (run buffers, color census, zlib
// machinery); the steady-state encode path allocates nothing beyond dst's
// amortized growth.
func encodeRect(dst []byte, enc int32, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat, sc *encodeScratch) ([]byte, error) {
	switch enc {
	case EncRaw:
		return encodeRaw(dst, fb, r, pf), nil
	case EncRRE:
		return encodeRRE(dst, fb, r, pf, sc), nil
	case EncHextile:
		return encodeHextile(dst, fb, r, pf, sc), nil
	case EncZlib:
		return encodeZlib(dst, fb, r, pf, sc)
	case EncZlibDict:
		return encodeZlibDict(dst, fb, r, pf, sc)
	default:
		return nil, fmt.Errorf("rfb: cannot encode with %s", EncodingName(enc))
	}
}

// decodeRect reads one rectangle body from rd and paints it into fb at r.
// dsc provides the reusable decode buffers (rows, zlib staging); pass a
// connection-owned scratch on streaming paths.
func decodeRect(rd io.Reader, enc int32, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat, dsc *decodeScratch) error {
	switch enc {
	case EncRaw:
		return decodeRaw(rd, fb, r, pf, dsc)
	case EncRRE:
		return decodeRRE(rd, fb, r, pf)
	case EncHextile:
		return decodeHextile(rd, fb, r, pf, dsc)
	case EncZlib:
		return decodeZlib(rd, fb, r, pf, dsc)
	case EncZlibDict:
		return decodeZlibDict(rd, fb, r, pf, dsc)
	case EncTileInstall:
		return decodeTileInstall(rd, fb, r, pf, dsc)
	case EncTileRef:
		return decodeTileRef(rd, fb, r, dsc)
	default:
		return fmt.Errorf("rfb: cannot decode %s: %w", EncodingName(enc), ErrBadMessage)
	}
}

// --- Raw ---------------------------------------------------------------

func encodeRaw(dst []byte, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat) []byte {
	bpp := pf.BytesPerPixel()
	need := r.W * r.H * bpp
	start := len(dst)
	dst = append(dst, make([]byte, need)...) // recognized append-make: grows dst in place
	out := dst[start:]
	i := 0
	for y := r.Y; y < r.MaxY(); y++ {
		row := fb.Pix()[y*fb.W()+r.X : y*fb.W()+r.MaxX()]
		for _, c := range row {
			i += putPixel(out[i:], pf, c)
		}
	}
	return dst
}

func decodeRaw(rd io.Reader, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat, dsc *decodeScratch) error {
	bpp := pf.BytesPerPixel()
	var buf []byte
	if dsc != nil {
		dsc.row = grow(dsc.row, r.W*bpp)
		buf = dsc.row
	} else {
		buf = make([]byte, r.W*bpp)
	}
	for y := r.Y; y < r.MaxY(); y++ {
		if _, err := io.ReadFull(rd, buf); err != nil {
			return err
		}
		i := 0
		for x := r.X; x < r.MaxX(); x++ {
			c, n := getPixel(buf[i:], pf)
			i += n
			fb.Set(x, y, c)
		}
	}
	return nil
}

// --- RRE ----------------------------------------------------------------
//
// Rise-and-run-length encoding: a background color plus a list of solid
// subrectangles. The encoder picks the most frequent color as background
// and emits one height-1 subrectangle per maximal non-background run.

// dominantColor runs a census over the rect through the scratch histogram
// and returns the most frequent color. On saturated content (more distinct
// colors than the table holds) the result is approximate, which costs
// compression ratio but never correctness.
func dominantColor(fb *gfx.Framebuffer, r gfx.Rect, sc *encodeScratch) gfx.Color {
	sc.hist.reset()
	for y := r.Y; y < r.MaxY(); y++ {
		row := fb.Pix()[y*fb.W()+r.X : y*fb.W()+r.MaxX()]
		for _, c := range row {
			sc.hist.add(c)
		}
	}
	bg, _ := sc.hist.max()
	return bg
}

// scanRuns appends one height-1 subrectangle per maximal non-bg run of
// rect-local coordinates to sc.subs (reset first) and returns the slice.
func scanRuns(fb *gfx.Framebuffer, r gfx.Rect, bg gfx.Color, sc *encodeScratch) []rreSub {
	subs := sc.subs[:0]
	for y := 0; y < r.H; y++ {
		row := fb.Pix()[(r.Y+y)*fb.W()+r.X : (r.Y+y)*fb.W()+r.MaxX()]
		x := 0
		for x < r.W {
			c := row[x]
			if c == bg {
				x++
				continue
			}
			x0 := x
			for x < r.W && row[x] == c {
				x++
			}
			subs = append(subs, rreSub{c: c, x: x0, y: y, w: x - x0, h: 1})
		}
	}
	sc.subs = subs
	return subs
}

func encodeRRE(dst []byte, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat, sc *encodeScratch) []byte {
	bg := dominantColor(fb, r, sc)
	subs := scanRuns(fb, r, bg, sc)

	var hdr [4]byte
	be.PutUint32(hdr[:], uint32(len(subs)))
	dst = append(dst, hdr[:]...)
	var px [4]byte
	n := putPixel(px[:], pf, bg)
	dst = append(dst, px[:n]...)
	var geo [8]byte
	for _, s := range subs {
		n := putPixel(px[:], pf, s.c)
		dst = append(dst, px[:n]...)
		be.PutUint16(geo[0:], uint16(s.x))
		be.PutUint16(geo[2:], uint16(s.y))
		be.PutUint16(geo[4:], uint16(s.w))
		be.PutUint16(geo[6:], uint16(s.h))
		dst = append(dst, geo[:]...)
	}
	return dst
}

func decodeRRE(rd io.Reader, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat) error {
	nsub, err := readU32(rd)
	if err != nil {
		return err
	}
	if nsub > uint32(r.Area()) {
		return fmt.Errorf("rfb: rre subrect count %d exceeds area: %w", nsub, ErrBadMessage)
	}
	bpp := pf.BytesPerPixel()
	var bufArr [12]byte
	buf := bufArr[:bpp+8]
	if _, err := io.ReadFull(rd, buf[:bpp]); err != nil {
		return err
	}
	bg, _ := getPixel(buf, pf)
	fb.Fill(r, bg)
	for i := uint32(0); i < nsub; i++ {
		if _, err := io.ReadFull(rd, buf); err != nil {
			return err
		}
		c, _ := getPixel(buf, pf)
		sx := int(be.Uint16(buf[bpp:]))
		sy := int(be.Uint16(buf[bpp+2:]))
		sw := int(be.Uint16(buf[bpp+4:]))
		sh := int(be.Uint16(buf[bpp+6:]))
		fb.Fill(gfx.R(r.X+sx, r.Y+sy, sw, sh).Intersect(r), c)
	}
	return nil
}

// --- Hextile -------------------------------------------------------------
//
// The rectangle is split into 16×16 tiles, each encoded independently with
// a subencoding mask. This implementation always specifies the background
// (and foreground where applicable) explicitly, which the specification
// permits.

const (
	hextileRaw        = 1
	hextileBackground = 2
	hextileForeground = 4
	hextileAnySubrect = 8
	hextileColoured   = 16
)

func encodeHextile(dst []byte, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat, sc *encodeScratch) []byte {
	for ty := r.Y; ty < r.MaxY(); ty += 16 {
		th := min(16, r.MaxY()-ty)
		for tx := r.X; tx < r.MaxX(); tx += 16 {
			tw := min(16, r.MaxX()-tx)
			tile := gfx.R(tx, ty, tw, th)
			dst = encodeHextileTile(dst, fb, tile, pf, sc)
		}
	}
	return dst
}

func encodeHextileTile(dst []byte, fb *gfx.Framebuffer, tile gfx.Rect, pf gfx.PixelFormat, sc *encodeScratch) []byte {
	// Census of tile colors. A tile holds at most 256 pixels, far below
	// the census capacity, so distinct counts are exact here.
	sc.hist.reset()
	for y := tile.Y; y < tile.MaxY(); y++ {
		row := fb.Pix()[y*fb.W()+tile.X : y*fb.W()+tile.MaxX()]
		for _, c := range row {
			sc.hist.add(c)
		}
	}
	bg, _ := sc.hist.max()
	distinct := sc.hist.distinct

	runs := scanRuns(fb, tile, bg, sc)

	bpp := pf.BytesPerPixel()
	var px [4]byte
	switch {
	case distinct == 1:
		dst = append(dst, hextileBackground)
		n := putPixel(px[:], pf, bg)
		dst = append(dst, px[:n]...)

	case distinct == 2 && len(runs) <= 255:
		fg := sc.hist.other(bg)
		dst = append(dst, hextileBackground|hextileForeground|hextileAnySubrect)
		n := putPixel(px[:], pf, bg)
		dst = append(dst, px[:n]...)
		n = putPixel(px[:], pf, fg)
		dst = append(dst, px[:n]...)
		dst = append(dst, uint8(len(runs)))
		for _, s := range runs {
			dst = append(dst, uint8(s.x<<4|s.y), uint8((s.w-1)<<4|(s.h-1)))
		}

	default:
		colouredSize := 1 + bpp + 1 + len(runs)*(bpp+2)
		rawSize := 1 + tile.Area()*bpp
		if len(runs) <= 255 && colouredSize < rawSize {
			dst = append(dst, hextileBackground|hextileAnySubrect|hextileColoured)
			n := putPixel(px[:], pf, bg)
			dst = append(dst, px[:n]...)
			dst = append(dst, uint8(len(runs)))
			for _, s := range runs {
				n := putPixel(px[:], pf, s.c)
				dst = append(dst, px[:n]...)
				dst = append(dst, uint8(s.x<<4|s.y), uint8((s.w-1)<<4|(s.h-1)))
			}
		} else {
			dst = append(dst, hextileRaw)
			dst = encodeRaw(dst, fb, tile, pf)
		}
	}
	return dst
}

func decodeHextile(rd io.Reader, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat, dsc *decodeScratch) error {
	bpp := pf.BytesPerPixel()
	var buf [4]byte
	var bg, fg gfx.Color
	for ty := r.Y; ty < r.MaxY(); ty += 16 {
		th := min(16, r.MaxY()-ty)
		for tx := r.X; tx < r.MaxX(); tx += 16 {
			tw := min(16, r.MaxX()-tx)
			tile := gfx.R(tx, ty, tw, th)
			mask, err := readU8(rd)
			if err != nil {
				return err
			}
			if mask&hextileRaw != 0 {
				if err := decodeRaw(rd, fb, tile, pf, dsc); err != nil {
					return err
				}
				continue
			}
			if mask&hextileBackground != 0 {
				if _, err := io.ReadFull(rd, buf[:bpp]); err != nil {
					return err
				}
				bg, _ = getPixel(buf[:], pf)
			}
			if mask&hextileForeground != 0 {
				if _, err := io.ReadFull(rd, buf[:bpp]); err != nil {
					return err
				}
				fg, _ = getPixel(buf[:], pf)
			}
			fb.Fill(tile, bg)
			if mask&hextileAnySubrect == 0 {
				continue
			}
			nsub, err := readU8(rd)
			if err != nil {
				return err
			}
			coloured := mask&hextileColoured != 0
			for i := 0; i < int(nsub); i++ {
				c := fg
				if coloured {
					if _, err := io.ReadFull(rd, buf[:bpp]); err != nil {
						return err
					}
					c, _ = getPixel(buf[:], pf)
				}
				if _, err := io.ReadFull(rd, buf[:2]); err != nil {
					return err
				}
				sx := int(buf[0] >> 4)
				sy := int(buf[0] & 0xF)
				sw := int(buf[1]>>4) + 1
				sh := int(buf[1]&0xF) + 1
				fb.Fill(gfx.R(tile.X+sx, tile.Y+sy, sw, sh).Intersect(tile), c)
			}
		}
	}
	return nil
}

// --- Zlib ----------------------------------------------------------------

func encodeZlib(dst []byte, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat, sc *encodeScratch) ([]byte, error) {
	sc.raw = encodeRaw(sc.raw[:0], fb, r, pf)
	sc.zbuf.Reset()
	if sc.zw == nil {
		sc.zw = zlib.NewWriter(&sc.zbuf)
	} else {
		sc.zw.Reset(&sc.zbuf)
	}
	if _, err := sc.zw.Write(sc.raw); err != nil {
		return nil, fmt.Errorf("rfb: zlib encode: %w", err)
	}
	if err := sc.zw.Close(); err != nil {
		return nil, fmt.Errorf("rfb: zlib close: %w", err)
	}
	var hdr [4]byte
	be.PutUint32(hdr[:], uint32(sc.zbuf.Len()))
	dst = append(dst, hdr[:]...)
	dst = append(dst, sc.zbuf.Bytes()...)
	return dst, nil
}

func decodeZlib(rd io.Reader, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat, dsc *decodeScratch) error {
	return decodeZlibBody(rd, fb, r, pf, dsc, nil)
}

// decodeZlibBody reads one length-prefixed zlib stream and paints the
// decompressed raw pre-image into fb at r. dict is the preset dictionary
// the stream's FDICT header demands (nil for plain EncZlib); the stdlib
// reader verifies the dictionary checksum against the header.
func decodeZlibBody(rd io.Reader, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat, dsc *decodeScratch, dict []byte) error {
	n, err := readU32(rd)
	if err != nil {
		return err
	}
	const maxZlibRect = 64 << 20
	if n > maxZlibRect {
		return fmt.Errorf("rfb: zlib rect of %d bytes: %w", n, ErrBadMessage)
	}
	if dsc == nil {
		dsc = &decodeScratch{}
	}
	dsc.comp = grow(dsc.comp, int(n))
	if _, err := io.ReadFull(rd, dsc.comp); err != nil {
		return err
	}
	if dsc.zrr == nil {
		dsc.zrr = bytes.NewReader(dsc.comp)
	} else {
		dsc.zrr.Reset(dsc.comp)
	}
	if dsc.zr == nil {
		zr, err := zlib.NewReaderDict(dsc.zrr, dict)
		if err != nil {
			return fmt.Errorf("rfb: zlib decode: %w", err)
		}
		dsc.zr = zr.(zlibResetter)
	} else if err := dsc.zr.Reset(dsc.zrr, dict); err != nil {
		return fmt.Errorf("rfb: zlib decode: %w", err)
	}
	return decodeRaw(dsc.zr, fb, r, pf, dsc)
}

// --- ZlibDict ------------------------------------------------------------
//
// Same wire shape as Zlib (u32 length + one independent zlib stream), but
// the stream is compressed against the preset per-format dictionary both
// ends derive from the toolkit (dict.go), announced through zlib's FDICT
// header.

func encodeZlibDict(dst []byte, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat, sc *encodeScratch) ([]byte, error) {
	sc.raw = encodeRaw(sc.raw[:0], fb, r, pf)
	sc.zbuf.Reset()
	if sc.zwd == nil || sc.zwdPF != pf {
		zw, err := zlib.NewWriterLevelDict(&sc.zbuf, zlib.DefaultCompression, dictFor(pf))
		if err != nil {
			return nil, fmt.Errorf("rfb: zlib-dict encode: %w", err)
		}
		sc.zwd, sc.zwdPF = zw, pf
	} else {
		sc.zwd.Reset(&sc.zbuf)
	}
	if _, err := sc.zwd.Write(sc.raw); err != nil {
		return nil, fmt.Errorf("rfb: zlib-dict encode: %w", err)
	}
	if err := sc.zwd.Close(); err != nil {
		return nil, fmt.Errorf("rfb: zlib-dict close: %w", err)
	}
	var hdr [4]byte
	be.PutUint32(hdr[:], uint32(sc.zbuf.Len()))
	dst = append(dst, hdr[:]...)
	dst = append(dst, sc.zbuf.Bytes()...)
	mDictRects.Inc()
	mDictBytes.Add(int64(4 + sc.zbuf.Len()))
	return dst, nil
}

func decodeZlibDict(rd io.Reader, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat, dsc *decodeScratch) error {
	return decodeZlibBody(rd, fb, r, pf, dsc, dictFor(pf))
}

// --- Tile install / ref --------------------------------------------------
//
// EncTileInstall: u64 content hash + s32 inner encoding + inner body. The
// inner body paints the rectangle like any update, and the decoded pixels
// are additionally retained in the connection's tile memory under the
// hash. EncTileRef: u64 hash alone; the remembered pixels are replayed.
// Both ends run the same fixed-capacity LRU over the install/ref stream
// (tilecache.go), so a ref only ever names a tile still remembered.

func decodeTileInstall(rd io.Reader, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat, dsc *decodeScratch) error {
	hash, err := readU64(rd)
	if err != nil {
		return err
	}
	encU, err := readU32(rd)
	if err != nil {
		return err
	}
	inner := int32(encU)
	switch inner {
	case EncRaw, EncRRE, EncHextile:
	default:
		return fmt.Errorf("rfb: tile install with inner %s: %w", EncodingName(inner), ErrBadMessage)
	}
	if !rectInside(r, fb) {
		return fmt.Errorf("rfb: tile install outside framebuffer: %w", ErrBadMessage)
	}
	if err := decodeRect(rd, inner, fb, r, pf, dsc); err != nil {
		return err
	}
	if dsc != nil {
		dsc.tiles.install(hash, fb, r)
	}
	return nil
}

func decodeTileRef(rd io.Reader, fb *gfx.Framebuffer, r gfx.Rect, dsc *decodeScratch) error {
	hash, err := readU64(rd)
	if err != nil {
		return err
	}
	if !rectInside(r, fb) {
		return fmt.Errorf("rfb: tile ref outside framebuffer: %w", ErrBadMessage)
	}
	if dsc == nil || !dsc.tiles.replay(hash, fb, r) {
		return fmt.Errorf("rfb: tile ref to unknown tile %016x: %w", hash, ErrBadMessage)
	}
	return nil
}

// rectInside reports whether r lies fully inside fb — the precondition for
// the tile encodings' direct pixel-slice access.
func rectInside(r gfx.Rect, fb *gfx.Framebuffer) bool {
	return !r.Empty() && r.X >= 0 && r.Y >= 0 && r.MaxX() <= fb.W() && r.MaxY() <= fb.H()
}
