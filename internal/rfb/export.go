package rfb

import (
	"io"

	"uniint/internal/gfx"
)

// EncodeRectBytes encodes one rectangle body (without the 12-byte wire
// header) using the given encoding and pixel format, returning a fresh
// buffer. It is the convenience entry point for one-off encodes; hot
// loops should use EncodeRectInto with a reused destination buffer.
func EncodeRectBytes(enc int32, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat) ([]byte, error) {
	return EncodeRectInto(nil, enc, fb, r, pf)
}

// EncodeRectInto encodes one rectangle body like EncodeRectBytes but
// appends to dst, which may be a reused buffer (pass dst[:0] across
// calls). The encode runs on pooled scratch; with a warmed-up dst the
// steady state performs zero allocations for the raw, RRE and hextile
// encodings.
func EncodeRectInto(dst []byte, enc int32, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat) ([]byte, error) {
	sc := getScratch()
	defer putScratch(sc)
	return encodeRect(dst, enc, fb, r, pf, sc)
}

// DecodeRectBytes decodes one rectangle body produced by EncodeRectBytes
// into fb at r.
func DecodeRectBytes(rd io.Reader, enc int32, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat) error {
	var dsc decodeScratch
	return decodeRect(rd, enc, fb, r, pf, &dsc)
}
