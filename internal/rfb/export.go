package rfb

import (
	"io"

	"uniint/internal/gfx"
)

// EncodeRectBytes encodes one rectangle body (without the 12-byte wire
// header) using the given encoding and pixel format. It is the entry
// point the experiment harness (bench_test.go, cmd/unibench) uses to
// measure encodings outside a live connection.
func EncodeRectBytes(enc int32, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat) ([]byte, error) {
	return encodeRect(nil, enc, fb, r, pf)
}

// DecodeRectBytes decodes one rectangle body produced by EncodeRectBytes
// into fb at r.
func DecodeRectBytes(rd io.Reader, enc int32, fb *gfx.Framebuffer, r gfx.Rect, pf gfx.PixelFormat) error {
	return decodeRect(rd, enc, fb, r, pf)
}
