package rfb

import (
	"bytes"
	"math/rand"
	"testing"

	"uniint/internal/gfx"
)

// gradientFrame fills a frame with pixels unique per coordinate, so no
// two regions ever match by accident — worst case for CopyRect search,
// ideal for asserting where a match was found.
func gradientFrame(w, h int) *gfx.Framebuffer {
	f := gfx.NewFramebuffer(w, h)
	pix := f.Pix()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pix[y*w+x] = gfx.RGB(uint8(x), uint8(y), uint8(x*31+y*17))
		}
	}
	return f
}

const allEncBits = encBitRaw | encBitRRE | encBitHextile | encBitZlib |
	encBitZlibDict | encBitCopyRect | encBitTileRef | encBitTileInstall

// TestCopyRectSourceMustBeInsideShadow: a candidate source rectangle that
// hangs partially outside the shadow references client pixels the server
// cannot know, so the search must skip it even when the visible part
// matches perfectly.
func TestCopyRectSourceMustBeInsideShadow(t *testing.T) {
	const w, h = 96, 96
	pf := gfx.PF32()
	shadow := gradientFrame(w, h)
	ws := NewWireState(nil, w, h)
	full := &UpdateRect{Rect: shadow.Bounds(), Encoding: EncRaw}
	ws.commit(shadow, full)

	// New content: every row shifted down by 8 — row y now shows what the
	// client holds at y-8. For a rect at the top edge the matching source
	// (y offset -8) starts above the shadow; rows 0..7 get fresh content
	// that exists nowhere in the shadow.
	next := gfx.NewFramebuffer(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if y < 8 {
				next.Pix()[y*w+x] = gfx.RGB(200, uint8(x), uint8(y))
			} else {
				next.Pix()[y*w+x] = shadow.At(x, y-8)
			}
		}
	}

	sc := getScratch()
	defer putScratch(sc)
	mask := uint8(encBitRaw | encBitCopyRect) // no tile bits: isolate the copy path

	// Top-edge rect: only plausible source is out of bounds — no CopyRect.
	ur := &UpdateRect{Rect: gfx.R(0, 0, 64, 32), Encoding: EncAdaptive}
	_, enc, err := ws.selectAndEncode(nil, next, ur, pf, mask, EncRaw, sc)
	if err != nil {
		t.Fatal(err)
	}
	if enc == EncCopyRect {
		t.Fatalf("CopyRect chosen with source rows %d..%d outside the shadow", -8, 32-8)
	}

	// Interior rect: source fully inside — the same shift is now usable.
	ur = &UpdateRect{Rect: gfx.R(0, 16, 64, 32), Encoding: EncAdaptive}
	_, enc, err = ws.selectAndEncode(nil, next, ur, pf, mask, EncRaw, sc)
	if err != nil {
		t.Fatal(err)
	}
	if enc != EncCopyRect {
		t.Fatalf("interior shifted rect encoded as %s, want CopyRect", EncodingName(enc))
	}
	if ur.CopySrcX != 0 || ur.CopySrcY != 8 {
		t.Fatalf("CopyRect source (%d,%d), want (0,8)", ur.CopySrcX, ur.CopySrcY)
	}
}

// TestWireStateResetForcesReinstall: Reset models a resumed session — the
// reconnecting client's tile memory is empty and its framebuffer unknown,
// so previously referenced tiles must re-install and CopyRect must stay
// off until a full-bounds repaint revalidates the shadow.
func TestWireStateResetForcesReinstall(t *testing.T) {
	const w, h = 64, 64
	pf := gfx.PF32()
	fb := gradientFrame(w, h)
	ws := NewWireState(nil, w, h)
	sc := getScratch()
	defer putScratch(sc)

	r := gfx.R(8, 8, 40, 20)
	encodeOnce := func() int32 {
		ur := &UpdateRect{Rect: r, Encoding: EncAdaptive}
		_, enc, err := ws.selectAndEncode(nil, fb, ur, pf, allEncBits, EncRaw, sc)
		if err != nil {
			t.Fatal(err)
		}
		ws.commit(fb, ur)
		return enc
	}

	if enc := encodeOnce(); enc != EncTileInstall {
		t.Fatalf("first sight encoded as %s, want TileInstall", EncodingName(enc))
	}
	if enc := encodeOnce(); enc != EncTileRef {
		t.Fatalf("second sight encoded as %s, want TileRef", EncodingName(enc))
	}

	ws.Reset()
	if enc := encodeOnce(); enc != EncTileInstall {
		t.Fatalf("post-Reset sight encoded as %s, want TileInstall (client memory is fresh)", EncodingName(enc))
	}

	// The shadow is distrusted after Reset: identical content that would
	// self-copy must not choose CopyRect until a full-bounds rect ships.
	big := gfx.R(0, 0, 64, 40)
	ur := &UpdateRect{Rect: big, Encoding: EncAdaptive}
	_, enc, err := ws.selectAndEncode(nil, fb, ur, pf, encBitRaw|encBitCopyRect, EncRaw, sc)
	if err != nil {
		t.Fatal(err)
	}
	if enc == EncCopyRect {
		t.Fatal("CopyRect chosen against a distrusted shadow")
	}
	ws.commit(fb, ur)

	fullUR := &UpdateRect{Rect: fb.Bounds(), Encoding: EncRaw}
	ws.commit(fb, fullUR)
	ur = &UpdateRect{Rect: big, Encoding: EncAdaptive}
	_, enc, err = ws.selectAndEncode(nil, fb, ur, pf, encBitRaw|encBitCopyRect, EncRaw, sc)
	if err != nil {
		t.Fatal(err)
	}
	if enc != EncCopyRect {
		t.Fatalf("unchanged content after revalidation encoded as %s, want CopyRect self-copy", EncodingName(enc))
	}
}

// TestTileCacheEvictionUnderPressure: the shared cache honors its byte
// budget by evicting least-recently-used bodies, and a session whose tile
// was evicted re-encodes a byte-identical install body (the encoders are
// deterministic), so eviction costs CPU, never correctness.
func TestTileCacheEvictionUnderPressure(t *testing.T) {
	const w, h = 64, 64
	pf := gfx.PF32()
	fb := gradientFrame(w, h)
	r := gfx.R(4, 4, 48, 24)

	install := func(tc *TileCache) []byte {
		ws := NewWireState(tc, w, h)
		sc := getScratch()
		defer putScratch(sc)
		ur := &UpdateRect{Rect: r, Encoding: EncAdaptive}
		body, enc, err := ws.selectAndEncode(nil, fb, ur, pf, allEncBits, EncRaw, sc)
		if err != nil {
			t.Fatal(err)
		}
		if enc != EncTileInstall {
			t.Fatalf("encoded as %s, want TileInstall", EncodingName(enc))
		}
		return body
	}

	tc := NewTileCache(1 << 10)
	first := install(tc)
	if tc.Len() != 1 {
		t.Fatalf("cache holds %d tiles after one install, want 1", tc.Len())
	}

	// Memory pressure: filler bodies blow the 1KB budget many times over,
	// evicting the real tile.
	filler := make([]byte, 300)
	for i := range filler {
		filler[i] = byte(i)
	}
	for i := 0; i < 32; i++ {
		tc.Put(tileKey{hash: uint64(i) + 1e6, pf: pf}, EncRaw, filler)
	}
	if got := tc.Bytes(); got > 1<<10 {
		t.Fatalf("cache holds %d bytes, budget is %d", got, 1<<10)
	}
	if _, _, ok := tc.Get(tileKey{hash: hashTile(fb, r), pf: pf}); ok {
		t.Fatal("original tile survived 32 filler installs in a ~3-body budget")
	}

	// A second session (fresh window) reinstalls the evicted tile; the
	// re-encoded body is byte-identical to the first.
	second := install(tc)
	if !bytes.Equal(first, second) {
		t.Fatalf("reinstalled body differs from original: %d vs %d bytes", len(second), len(first))
	}
}

// TestTileWindowClientLockstep: drive a random install/ref stream through
// the server's hash window and the client's pixel memory, past eviction
// churn several times the window capacity. The protocol invariant under
// test: every hash the server window still holds (every EncTileRef it
// would emit) is replayable from the client memory.
func TestTileWindowClientLockstep(t *testing.T) {
	const w, h = 16, 16
	fb := gradientFrame(w, h)
	r := gfx.R(0, 0, 8, 8)

	var win tileWindow
	win.init()
	var ct clientTiles

	rng := rand.New(rand.NewSource(11))
	hashes := make([]uint64, 3*tileWindowCap)
	for i := range hashes {
		hashes[i] = uint64(i) + 7
	}
	refs := 0
	for i := 0; i < 8*tileWindowCap; i++ {
		hh := hashes[rng.Intn(len(hashes))]
		if win.touch(hh) {
			refs++
			if !ct.replay(hh, fb, r) {
				t.Fatalf("op %d: server window holds %x but client memory does not", i, hh)
			}
		} else {
			win.install(hh)
			ct.install(hh, fb, r)
		}
	}
	if refs == 0 {
		t.Fatal("stream produced no refs — the test exercised nothing")
	}
	if len(ct.entries) > tileWindowCap {
		t.Fatalf("client memory grew to %d entries, cap is %d", len(ct.entries), tileWindowCap)
	}
}

// TestWireEncodingsDecodeIdenticalToRaw: for random frames and rects, the
// new wire forms (dictionary zlib, tile install, tile ref) paint exactly
// the pixels a raw encode of the same rect paints.
func TestWireEncodingsDecodeIdenticalToRaw(t *testing.T) {
	formats := []gfx.PixelFormat{gfx.PF32(), gfx.PF16(), gfx.PF8()}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		w := 33 + rng.Intn(48)
		h := 33 + rng.Intn(48)
		frame := randomFrame(rng, w, h)
		r := gfx.R(rng.Intn(w/2), rng.Intn(h/2), 1+rng.Intn(w/2), 1+rng.Intn(h/2)).
			Intersect(frame.Bounds())
		if r.Empty() {
			continue
		}
		for _, pf := range formats {
			// Reference: what a raw round-trip paints.
			want := gfx.NewFramebuffer(w, h)
			raw, err := EncodeRectInto(nil, EncRaw, frame, r, pf)
			if err != nil {
				t.Fatal(err)
			}
			if err := decodeRect(bytes.NewReader(raw), EncRaw, want, r, pf, nil); err != nil {
				t.Fatal(err)
			}

			check := func(name string, got *gfx.Framebuffer) {
				t.Helper()
				for y := r.Y; y < r.MaxY(); y++ {
					for x := r.X; x < r.MaxX(); x++ {
						if got.At(x, y) != want.At(x, y) {
							t.Fatalf("trial %d pf %d-bit %s: pixel (%d,%d) = %06x, raw paints %06x",
								trial, pf.BitsPerPixel, name, x, y, got.At(x, y), want.At(x, y))
						}
					}
				}
			}

			// Dictionary zlib.
			zd, err := EncodeRectInto(nil, EncZlibDict, frame, r, pf)
			if err != nil {
				t.Fatal(err)
			}
			got := gfx.NewFramebuffer(w, h)
			if err := decodeRect(bytes.NewReader(zd), EncZlibDict, got, r, pf, &decodeScratch{}); err != nil {
				t.Fatal(err)
			}
			check("zlibdict", got)

			// Tile install, then a ref replaying it elsewhere-in-time: decode
			// both against one connection scratch (shared tile memory).
			ws := NewWireState(nil, w, h)
			sc := getScratch()
			ur := &UpdateRect{Rect: r, Encoding: EncAdaptive}
			inst, enc, err := ws.selectAndEncode(nil, frame, ur, pf, allEncBits, EncRaw, sc)
			putScratch(sc)
			if err != nil {
				t.Fatal(err)
			}
			if enc != EncTileInstall {
				// Rect exceeded tile bounds for this trial; the adaptive pick
				// is covered by the existing round-trip property.
				continue
			}
			dsc := &decodeScratch{}
			got = gfx.NewFramebuffer(w, h)
			if err := decodeRect(bytes.NewReader(inst), EncTileInstall, got, r, pf, dsc); err != nil {
				t.Fatal(err)
			}
			check("tileinstall", got)

			ref := make([]byte, 8)
			be.PutUint64(ref, hashTile(frame, r))
			got = gfx.NewFramebuffer(w, h)
			if err := decodeRect(bytes.NewReader(ref), EncTileRef, got, r, pf, dsc); err != nil {
				t.Fatal(err)
			}
			check("tileref", got)
		}
	}
}

// TestTileRefUnknownHashRejected: a ref naming a hash the connection never
// installed is a protocol violation, not a silent black rectangle.
func TestTileRefUnknownHashRejected(t *testing.T) {
	fb := gfx.NewFramebuffer(32, 32)
	ref := make([]byte, 8)
	be.PutUint64(ref, 0xDEADBEEF)
	err := decodeRect(bytes.NewReader(ref), EncTileRef, fb, gfx.R(0, 0, 8, 8), gfx.PF32(), &decodeScratch{})
	if err == nil {
		t.Fatal("unknown tile ref decoded without error")
	}
}
