package rfb

import (
	"math/rand"
	"testing"

	"uniint/internal/gfx"
)

func TestAdaptiveEncodingPicksByContent(t *testing.T) {
	flat := gfx.NewFramebuffer(128, 128)
	flat.Clear(gfx.Blue)
	if enc := AdaptiveEncoding(flat, flat.Bounds()); enc != EncRRE {
		t.Errorf("flat content: picked %s, want rre", EncodingName(enc))
	}

	gui := makeGUIFrame(128, 128)
	if enc := AdaptiveEncoding(gui, gui.Bounds()); enc != EncHextile {
		t.Errorf("gui content: picked %s, want hextile", EncodingName(enc))
	}

	noise := makeNoiseFrame(128, 128, 5)
	if enc := AdaptiveEncoding(noise, noise.Bounds()); enc != EncRaw {
		t.Errorf("noise content: picked %s, want raw", EncodingName(enc))
	}
}

// TestAdaptiveNeverWorseThanStaticHextile: on each content class, the
// adaptive pick's output is within a small factor of the best static
// choice — the whole point of probing content.
func TestAdaptiveBeatsOrMatchesWorstStaticChoice(t *testing.T) {
	pf := gfx.PF32()
	frames := map[string]*gfx.Framebuffer{
		"flat":  func() *gfx.Framebuffer { f := gfx.NewFramebuffer(160, 120); f.Clear(gfx.Gray); return f }(),
		"gui":   makeGUIFrame(160, 120),
		"noise": makeNoiseFrame(160, 120, 77),
	}
	for name, frame := range frames {
		r := frame.Bounds()
		pick := AdaptiveEncoding(frame, r)
		picked, err := EncodeRectBytes(pick, frame, r, pf)
		if err != nil {
			t.Fatal(err)
		}
		best := -1
		for _, enc := range []int32{EncRaw, EncRRE, EncHextile} {
			body, err := EncodeRectBytes(enc, frame, r, pf)
			if err != nil {
				t.Fatal(err)
			}
			if best < 0 || len(body) < best {
				best = len(body)
			}
		}
		// Allow some slack: the probe is approximate by design.
		if len(picked) > best*3/2+64 {
			t.Errorf("%s: adaptive pick %s = %d bytes, best static = %d",
				name, EncodingName(pick), len(picked), best)
		}
	}
}

func TestChooseEncodingRespectsClientMask(t *testing.T) {
	flat := gfx.NewFramebuffer(64, 64)
	flat.Clear(gfx.Red)
	sc := getScratch()
	defer putScratch(sc)

	// Only raw advertised: no room to adapt, fallback wins.
	if enc := chooseEncoding(flat, flat.Bounds(), encBitRaw, EncRaw, sc); enc != EncRaw {
		t.Errorf("raw-only mask: %s", EncodingName(enc))
	}
	// Raw+hextile advertised, flat content: RRE not allowed, hextile picked.
	if enc := chooseEncoding(flat, flat.Bounds(), encBitRaw|encBitHextile, EncRaw, sc); enc != EncHextile {
		t.Errorf("no-rre mask on flat: %s", EncodingName(enc))
	}
	// GUI content with RRE but no hextile advertised: RRE, not raw.
	gui := makeGUIFrame(64, 64)
	if enc := chooseEncoding(gui, gfx.R(8, 30, 40, 20), encBitRaw|encBitRRE, EncRaw, sc); enc != EncRRE {
		t.Errorf("no-hextile mask on gui: %s", EncodingName(enc))
	}
	// Noise with no raw advertised: hextile (bounded expansion fallback).
	noise := makeNoiseFrame(64, 64, 3)
	if enc := chooseEncoding(noise, noise.Bounds(), encBitRRE|encBitHextile, EncRRE, sc); enc != EncHextile {
		t.Errorf("no-raw mask on noise: %s", EncodingName(enc))
	}
	// nil framebuffer (copyrect-only updates): fallback.
	if enc := chooseEncoding(nil, gfx.R(0, 0, 8, 8), encBitRaw|encBitRRE|encBitHextile, EncZlib, sc); enc != EncZlib {
		t.Errorf("nil fb: %s", EncodingName(enc))
	}
}

// TestAdaptiveProbeBounded: the probe samples a bounded pixel count even
// on huge rects.
func TestAdaptiveProbeBounded(t *testing.T) {
	big := gfx.NewFramebuffer(2048, 2048)
	rng := rand.New(rand.NewSource(1))
	pix := big.Pix()
	for i := range pix {
		pix[i] = gfx.Color(rng.Uint32() & 0xFFFFFF)
	}
	sc := getScratch()
	defer putScratch(sc)
	before := mProbePixels.Value()
	probeDistinct(big, big.Bounds(), sc)
	sampled := mProbePixels.Value() - before
	// 16×16 grid plus rounding: well under 4 × the budget.
	if sampled > 4*adaptiveProbeBudget {
		t.Errorf("probe sampled %d pixels on a 4M-pixel rect", sampled)
	}
}
