package rfb

import (
	"errors"
	"testing"

	"uniint/internal/gfx"

	"uniint/internal/netsim"
)

// edgeHandshake runs the server half of an edge handshake against a
// scripted client hello and returns both ends.
func edgeHandshake(t *testing.T, token string, ex TokenExchange) (*netsim.EventConn, *ServerConn) {
	t.Helper()
	client, server := netsim.EventPipe()
	if _, err := client.Write(ClientHello(token)); err != nil {
		t.Fatal(err)
	}
	sc, err := NewEdgeServerConn(server, 160, 120, "edge test", ex)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	return client, sc
}

func TestEdgeHandshake(t *testing.T) {
	var presented string
	client, sc := edgeHandshake(t, "tok-123", func(p string) (string, bool) {
		presented = p
		return "issued-456", true
	})
	if presented != "tok-123" {
		t.Fatalf("presented token %q", presented)
	}
	if sc.Token() != "issued-456" || !sc.Resumed() {
		t.Fatalf("token %q resumed %v", sc.Token(), sc.Resumed())
	}
	// The client end holds the server's complete handshake output.
	if client.Buffered() == 0 {
		t.Fatal("no server handshake bytes delivered")
	}
}

// clientMsgs builds a byte script of client messages for Feed tests.
func clientMsgs() []byte {
	var b []byte
	// SetEncodings: raw only.
	b = append(b, msgSetEncodings, 0, 0, 1)
	b = append(b, 0, 0, 0, byte(EncRaw))
	// KeyEvent down 'a' (0x61).
	b = append(b, msgKeyEvent, 1, 0, 0, 0, 0, 0, 0x61)
	// PointerEvent buttons=1 at (10, 20).
	b = append(b, msgPointerEvent, 1, 0, 10, 0, 20)
	// FramebufferRequest incremental over (1,2)-(3,4).
	b = append(b, msgFramebufferRequest, 1, 0, 1, 0, 2, 0, 3, 0, 4)
	// ClientCutText "hi".
	b = append(b, msgClientCutText, 0, 0, 0, 0, 0, 0, 2, 'h', 'i')
	return b
}

func checkFeedResults(t *testing.T, h *testServerHandler) {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.keys) != 1 || !h.keys[0].Down || h.keys[0].Key != 0x61 {
		t.Errorf("keys = %+v", h.keys)
	}
	if len(h.pointers) != 1 || h.pointers[0].X != 10 || h.pointers[0].Y != 20 || h.pointers[0].Buttons != 1 {
		t.Errorf("pointers = %+v", h.pointers)
	}
	if len(h.requests) != 1 || !h.requests[0].Incremental || h.requests[0].Region != gfx.R(1, 2, 3, 4) {
		t.Errorf("requests = %+v", h.requests)
	}
	if len(h.cuts) != 1 || h.cuts[0] != "hi" {
		t.Errorf("cuts = %+v", h.cuts)
	}
}

func TestFeedParsesWholeScript(t *testing.T) {
	_, sc := edgeHandshake(t, "", nil)
	h := newTestServerHandler()
	if err := sc.Feed(clientMsgs(), h); err != nil {
		t.Fatal(err)
	}
	checkFeedResults(t, h)
	if got := sc.PreferredEncoding(); got != EncRaw {
		t.Errorf("PreferredEncoding = %d", got)
	}
}

func TestFeedByteByByte(t *testing.T) {
	// Every message boundary lands mid-feed: the partial-message retention
	// path must reassemble the identical stream.
	_, sc := edgeHandshake(t, "", nil)
	h := newTestServerHandler()
	for _, c := range clientMsgs() {
		if err := sc.Feed([]byte{c}, h); err != nil {
			t.Fatal(err)
		}
	}
	checkFeedResults(t, h)
}

func TestFeedPipelinedPastHandshake(t *testing.T) {
	// Messages written before the server handshake even ran are retained
	// by the handshake reader drain and parsed by the first Feed.
	client, server := netsim.EventPipe()
	script := append(ClientHello(""), clientMsgs()...)
	if _, err := client.Write(script); err != nil {
		t.Fatal(err)
	}
	sc, err := NewEdgeServerConn(server, 160, 120, "edge test", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	h := newTestServerHandler()
	if err := sc.Feed(nil, h); err != nil {
		t.Fatal(err)
	}
	checkFeedResults(t, h)
}

func TestFeedTraceContextAndPixelFormat(t *testing.T) {
	_, sc := edgeHandshake(t, "", nil)
	h := newTestServerHandler()
	var b []byte
	b = append(b, msgTraceContext)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 42) // trace id
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 7)  // client send time
	// SetPixelFormat to 16bpp.
	b = append(b, msgSetPixelFormat, 0, 0, 0)
	pfb := make([]byte, 16)
	pf := gfx.PF16()
	pfb[0] = pf.BitsPerPixel
	pfb[1] = pf.Depth
	if pf.BigEndian {
		pfb[2] = 1
	}
	pfb[3] = 1 // true color
	be.PutUint16(pfb[4:], pf.RedMax)
	be.PutUint16(pfb[6:], pf.GreenMax)
	be.PutUint16(pfb[8:], pf.BlueMax)
	pfb[10], pfb[11], pfb[12] = pf.RedShift, pf.GreenShift, pf.BlueShift
	b = append(b, pfb...)
	if err := sc.Feed(b, h); err != nil {
		t.Fatal(err)
	}
	if id, at := sc.TakeTraceContext(); id != 42 || at != 7 {
		t.Errorf("trace context = %d, %d", id, at)
	}
	if got := sc.PixelFormat(); got.BitsPerPixel != 16 {
		t.Errorf("pixel format bpp = %d", got.BitsPerPixel)
	}
}

func TestFeedRejectsUnknownMessage(t *testing.T) {
	_, sc := edgeHandshake(t, "", nil)
	if err := sc.Feed([]byte{0xEE}, newTestServerHandler()); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("err = %v, want ErrBadMessage", err)
	}
}
