package rfb

// Universal key symbols. Printable ASCII characters map to their own code
// points; function and editing keys use the X11 keysym values that RFB
// inherited, so any thin-client-aware toolkit interprets them identically.
const (
	KeyBackSpace uint32 = 0xFF08
	KeyTab       uint32 = 0xFF09
	KeyReturn    uint32 = 0xFF0D
	KeyEscape    uint32 = 0xFF1B
	KeyLeft      uint32 = 0xFF51
	KeyUp        uint32 = 0xFF52
	KeyRight     uint32 = 0xFF53
	KeyDown      uint32 = 0xFF54
	KeyPageUp    uint32 = 0xFF55
	KeyPageDown  uint32 = 0xFF56
	KeyHome      uint32 = 0xFF50
	KeyEnd       uint32 = 0xFF57
	KeyF1        uint32 = 0xFFBE
	KeyF2        uint32 = 0xFFBF
	KeyF3        uint32 = 0xFFC0
	KeyF4        uint32 = 0xFFC1
	KeyShiftL    uint32 = 0xFFE1
	KeyControlL  uint32 = 0xFFE3
)

// KeyName returns a readable name for a key symbol (used in logs and the
// device simulators' debug output).
func KeyName(k uint32) string {
	switch k {
	case KeyBackSpace:
		return "BackSpace"
	case KeyTab:
		return "Tab"
	case KeyReturn:
		return "Return"
	case KeyEscape:
		return "Escape"
	case KeyLeft:
		return "Left"
	case KeyUp:
		return "Up"
	case KeyRight:
		return "Right"
	case KeyDown:
		return "Down"
	case KeyPageUp:
		return "PageUp"
	case KeyPageDown:
		return "PageDown"
	case KeyHome:
		return "Home"
	case KeyEnd:
		return "End"
	case KeyShiftL:
		return "Shift"
	case KeyControlL:
		return "Control"
	}
	if k >= 0x20 && k < 0x7F {
		return string(rune(k))
	}
	return "key(" + KeyName0x(k) + ")"
}

// KeyName0x formats a key symbol as hex without pulling in fmt on hot paths.
func KeyName0x(k uint32) string {
	const hex = "0123456789abcdef"
	b := make([]byte, 0, 10)
	b = append(b, '0', 'x')
	started := false
	for i := 28; i >= 0; i -= 4 {
		d := byte(k >> uint(i) & 0xF)
		if d != 0 || started || i == 0 {
			b = append(b, hex[d])
			started = true
		}
	}
	return string(b)
}

// IsPrintable reports whether k is a printable ASCII key symbol.
func IsPrintable(k uint32) bool { return k >= 0x20 && k < 0x7F }
