package rfb

import (
	"testing"
	"time"

	"uniint/internal/gfx"
)

func testShadow(t *testing.T, w, h int) *PackedShadow {
	t.Helper()
	ws := NewWireState(nil, w, h)
	pix := ws.shadow.Pix()
	for i := range pix {
		pix[i] = gfx.Color(uint32(i)*2654435761 + 7)
	}
	p, err := ws.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return p
}

func TestMigrationRecordRoundTrip(t *testing.T) {
	shadow := testShadow(t, 64, 48)
	rec := &MigrationRecord{
		Token: "a0b1c2d3e4f5a6b7c8d9e0f1",
		W:     64, H: 48,
		PF:     gfx.PF16(),
		PFSet:  true,
		Shadow: shadow,
		Dirty:  []gfx.Rect{gfx.R(0, 0, 10, 10), gfx.R(30, 20, 4, 6)},
		Pending: UpdateRequest{
			Incremental: true,
			Region:      gfx.R(0, 0, 64, 48),
		},
		HasPending: true,
		Events: []MigEvent{
			{Key: KeyEvent{Down: true, Key: 0xff0d}},
			{Key: KeyEvent{Down: false, Key: 0xff0d}},
			{Pointer: true, Ptr: PointerEvent{Buttons: 1, X: 12, Y: 34}},
			{Pointer: true, Move: true, Ptr: PointerEvent{X: 13, Y: 35}},
		},
		LastPtrMask:  1,
		RemainingTTL: 31500 * time.Millisecond,
		DetachedFor:  1200 * time.Millisecond,
	}
	b, err := rec.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeMigration(b)
	if err != nil {
		t.Fatalf("DecodeMigration: %v", err)
	}
	if got.Token != rec.Token || got.W != rec.W || got.H != rec.H {
		t.Fatalf("identity mismatch: %+v", got)
	}
	if !got.PFSet || got.PF != rec.PF {
		t.Fatalf("pixel format mismatch: %+v vs %+v", got.PF, rec.PF)
	}
	if !got.HasPending || got.Pending != rec.Pending {
		t.Fatalf("pending mismatch: %+v", got.Pending)
	}
	if len(got.Dirty) != len(rec.Dirty) {
		t.Fatalf("dirty count mismatch: %d", len(got.Dirty))
	}
	for i := range rec.Dirty {
		if got.Dirty[i] != rec.Dirty[i] {
			t.Fatalf("dirty[%d] = %+v, want %+v", i, got.Dirty[i], rec.Dirty[i])
		}
	}
	if len(got.Events) != len(rec.Events) {
		t.Fatalf("event count mismatch: %d", len(got.Events))
	}
	for i := range rec.Events {
		if got.Events[i] != rec.Events[i] {
			t.Fatalf("event[%d] = %+v, want %+v", i, got.Events[i], rec.Events[i])
		}
	}
	if got.LastPtrMask != rec.LastPtrMask {
		t.Fatalf("ptr mask mismatch: %d", got.LastPtrMask)
	}
	if got.RemainingTTL != rec.RemainingTTL || got.DetachedFor != rec.DetachedFor {
		t.Fatalf("timing mismatch: ttl %v detached %v", got.RemainingTTL, got.DetachedFor)
	}
	if got.Shadow == nil {
		t.Fatal("shadow lost")
	}
	if got.Shadow.RawBytes() != shadow.RawBytes() ||
		got.Shadow.CompressedBytes() != shadow.CompressedBytes() {
		t.Fatalf("shadow sizes: raw %d/%d comp %d/%d", got.Shadow.RawBytes(),
			shadow.RawBytes(), got.Shadow.CompressedBytes(), shadow.CompressedBytes())
	}
	// The shipped shadow must unpack to byte-identical pixels.
	a, err := shadow.Unpack(nil)
	if err != nil {
		t.Fatalf("Unpack original: %v", err)
	}
	bws, err := got.Shadow.Unpack(nil)
	if err != nil {
		t.Fatalf("Unpack decoded: %v", err)
	}
	if !a.shadow.Equal(bws.shadow) {
		t.Fatal("shadow pixels diverged across encode/decode")
	}
}

func TestMigrationRecordNoShadow(t *testing.T) {
	rec := &MigrationRecord{Token: "t0", W: 8, H: 8}
	b, err := rec.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeMigration(b)
	if err != nil {
		t.Fatalf("DecodeMigration: %v", err)
	}
	if got.Shadow != nil || got.HasPending || len(got.Events) != 0 || len(got.Dirty) != 0 {
		t.Fatalf("empty record gained state: %+v", got)
	}
}

func TestMigrationRecordRejectsGarbage(t *testing.T) {
	rec := &MigrationRecord{Token: "tok", W: 16, H: 16, Shadow: testShadow(t, 16, 16)}
	good, err := rec.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"bad magic": append([]byte("UNIMIG/9"), good[8:]...),
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte(nil), good...), 0),
	}
	for name, b := range cases {
		if _, err := DecodeMigration(b); err == nil {
			t.Errorf("%s: decode accepted corrupt record", name)
		}
	}
	if _, err := (&MigrationRecord{Token: ""}).Encode(); err == nil {
		t.Error("Encode accepted empty token")
	}
	if _, err := (&MigrationRecord{Token: "t", W: 1 << 17, H: 4}).Encode(); err == nil {
		t.Error("Encode accepted oversized geometry")
	}
}
