package rfb

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"uniint/internal/gfx"
)

// randomFrame builds a frame mixing solid runs and noise — adversarial
// for the run-length encoders without being pure noise.
func randomFrame(rng *rand.Rand, w, h int) *gfx.Framebuffer {
	f := gfx.NewFramebuffer(w, h)
	pix := f.Pix()
	i := 0
	for i < len(pix) {
		run := 1 + rng.Intn(40)
		var c gfx.Color
		if rng.Intn(4) == 0 {
			c = gfx.Color(rng.Uint32() & 0xFFFFFF)
		} else {
			// A small palette keeps runs frequent.
			palette := []gfx.Color{gfx.Black, gfx.White, gfx.Gray, gfx.Blue, gfx.Red}
			c = palette[rng.Intn(len(palette))]
		}
		for j := 0; j < run && i < len(pix); j++ {
			pix[i] = c
			i++
		}
	}
	return f
}

// TestEncodingRoundTripProperty: for random frames, random sub-rects and
// every encoding/pixel-format pair, decode(encode(x)) == quantize(x).
func TestEncodingRoundTripProperty(t *testing.T) {
	encodings := []int32{EncRaw, EncRRE, EncHextile, EncZlib}
	formats := []gfx.PixelFormat{gfx.PF32(), gfx.PF16(), gfx.PF8()}

	prop := func(seed int64, rx, ry, rw, rh uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 17 + int(rx%3)*16 // odd widths cross tile boundaries
		h := 17 + int(ry%3)*16
		frame := randomFrame(rng, w, h)
		r := gfx.R(int(rx)%w, int(ry)%h, int(rw)%w+1, int(rh)%h+1).
			Intersect(frame.Bounds())
		if r.Empty() {
			return true
		}
		for _, pf := range formats {
			// The wire quantizes: compare against the quantized source.
			want := gfx.NewFramebuffer(w, h)
			for i, c := range frame.Pix() {
				want.Pix()[i] = pf.Decode(pf.Encode(c))
			}
			for _, enc := range encodings {
				body, err := EncodeRectInto(nil, enc, frame, r, pf)
				if err != nil {
					return false
				}
				dst := gfx.NewFramebuffer(w, h)
				if err := decodeRect(bytes.NewReader(body), enc, dst, r, pf, nil); err != nil {
					return false
				}
				for y := r.Y; y < r.MaxY(); y++ {
					for x := r.X; x < r.MaxX(); x++ {
						if dst.At(x, y) != want.At(x, y) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestHextileBoundedExpansionProperty: hextile never exceeds raw by more
// than one mask byte per 16×16 tile, on any input.
func TestHextileBoundedExpansionProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frame := randomFrame(rng, 64, 48)
		pf := gfx.PF32()
		r := frame.Bounds()
		raw, err := EncodeRectInto(nil, EncRaw, frame, r, pf)
		if err != nil {
			return false
		}
		hex, err := EncodeRectInto(nil, EncHextile, frame, r, pf)
		if err != nil {
			return false
		}
		tiles := ((r.W + 15) / 16) * ((r.H + 15) / 16)
		return len(hex) <= len(raw)+tiles
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPixelSerializationProperty: putPixel/getPixel round-trip for every
// format at quantization precision.
func TestPixelSerializationProperty(t *testing.T) {
	formats := []gfx.PixelFormat{gfx.PF32(), gfx.PF16(), gfx.PF8()}
	buf := make([]byte, 4)
	prop := func(r, g, b uint8, bigEndian bool) bool {
		for _, pf := range formats {
			pf.BigEndian = bigEndian
			c := gfx.RGB(r, g, b)
			want := pf.Decode(pf.Encode(c))
			n := putPixel(buf, pf, c)
			if n != pf.BytesPerPixel() {
				return false
			}
			got, m := getPixel(buf, pf)
			if m != n || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestKeyNameTotality: KeyName never panics and never returns empty for
// any 32-bit key symbol.
func TestKeyNameTotality(t *testing.T) {
	prop := func(k uint32) bool { return KeyName(k) != "" }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	// Spot checks.
	if KeyName(KeyReturn) != "Return" || KeyName('a') != "a" {
		t.Errorf("names: %q %q", KeyName(KeyReturn), KeyName('a'))
	}
}
