package rfb

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"uniint/internal/gfx"
)

// Edge connections: the readiness-driven alternative to Serve. A blocking
// read loop pins one goroutine (and its stack) per session for life; an
// edge connection instead has bytes pushed into Feed whenever its
// transport signals readability, so an idle session costs no goroutine
// and no pinned read buffer — the connection-side half of the budgeted
// event runtime.

// edgeReaderPool holds the small buffered readers edge handshakes borrow.
// The reader is returned as soon as the handshake completes (its buffered
// remainder moves into the connection's feed buffer), so an edge session
// pins no read buffer afterwards — unlike Serve connections, whose 32 KB
// reader lives as long as they do.
var edgeReaderPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 4<<10) },
}

// NewEdgeServerConn performs the server handshake for a readiness-driven
// connection. It blocks on the handshake reads (brief when the client
// pipelined its half — see ClientHello) but, unlike NewServerConnToken,
// the returned connection holds no reader: client messages arrive through
// Feed, pushed by whoever owns the transport's readiness callback. Bytes
// the client pipelined past the handshake are retained and parsed by the
// first Feed call.
func NewEdgeServerConn(conn net.Conn, width, height int, name string, ex TokenExchange) (*ServerConn, error) {
	s := &ServerConn{
		conn:   conn,
		pf:     gfx.PF32(),
		width:  width,
		height: height,
		name:   name,
	}
	br := edgeReaderPool.Get().(*bufio.Reader)
	br.Reset(conn)
	s.br = br
	err := s.handshake(ex)
	if err == nil {
		if n := br.Buffered(); n > 0 {
			// The client pipelined protocol messages behind its handshake;
			// move them into the feed buffer so no byte is stranded in the
			// reader being returned to the pool.
			peek, _ := br.Peek(n)
			s.feed = append(s.feed, peek...)
		}
	}
	s.br = nil
	br.Reset(nil)
	edgeReaderPool.Put(br)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return s, nil
}

// Feed parses the client messages in data — prepended with any partial
// message retained from earlier feeds — and dispatches each complete one
// to h, exactly as Serve would. A trailing partial message is retained
// for the next call. Feed is not safe for concurrent use with itself or
// Serve; edge sessions call it from their (at-most-once-queued) read turn.
// A non-nil error means the stream is unrecoverable and the connection
// should be torn down.
func (s *ServerConn) Feed(data []byte, h ServerHandler) error {
	buf := data
	if len(s.feed) > 0 {
		s.feed = append(s.feed, data...)
		buf = s.feed
	}
	off := 0
	for off < len(buf) {
		n, err := s.parseClientMessage(buf[off:], h)
		if err != nil {
			s.feed = s.feed[:0]
			return err
		}
		if n == 0 {
			break // incomplete message: wait for more bytes
		}
		off += n
	}
	rest := buf[off:]
	if len(s.feed) > 0 {
		s.feed = s.feed[:copy(s.feed, rest)]
	} else if len(rest) > 0 {
		s.feed = append(s.feed, rest...)
	}
	return nil
}

// parseClientMessage parses one client message from the front of b,
// returning the bytes consumed (0: b holds only a partial message). The
// wire layouts and handler dispatches mirror Serve's switch exactly.
func (s *ServerConn) parseClientMessage(b []byte, h ServerHandler) (int, error) {
	switch b[0] {
	case msgSetPixelFormat: // type + 3 padding + 16 pixel format
		if len(b) < 20 {
			return 0, nil
		}
		pf := pixelFormatFrom(b[4:20])
		if !pf.Valid() {
			return 0, fmt.Errorf("rfb: client sent invalid pixel format: %w", ErrBadMessage)
		}
		s.bytesReceived.Add(20)
		s.smu.Lock()
		s.pf = pf
		s.pfGen++
		s.smu.Unlock()
		return 20, nil

	case msgSetEncodings: // type + padding + u16 count + count*u32
		if len(b) < 4 {
			return 0, nil
		}
		n := int(be.Uint16(b[2:]))
		total := 4 + 4*n
		if len(b) < total {
			return 0, nil
		}
		encs := make([]int32, n)
		for i := range encs {
			encs[i] = int32(be.Uint32(b[4+4*i:]))
		}
		s.bytesReceived.Add(int64(total))
		s.smu.Lock()
		s.encodings = encs
		s.encMask = encodingMask(encs)
		s.smu.Unlock()
		return total, nil

	case msgFramebufferRequest: // type + incremental + 4×u16 geometry
		if len(b) < 10 {
			return 0, nil
		}
		s.bytesReceived.Add(10)
		h.UpdateRequest(UpdateRequest{
			Incremental: b[1] != 0,
			Region: gfx.R(
				int(be.Uint16(b[2:])), int(be.Uint16(b[4:])),
				int(be.Uint16(b[6:])), int(be.Uint16(b[8:])),
			),
		})
		return 10, nil

	case msgKeyEvent: // type + down + 2 padding + u32 keysym
		if len(b) < 8 {
			return 0, nil
		}
		s.bytesReceived.Add(8)
		h.KeyEvent(KeyEvent{Down: b[1] != 0, Key: be.Uint32(b[4:])})
		return 8, nil

	case msgPointerEvent: // type + button mask + 2×u16 position
		if len(b) < 6 {
			return 0, nil
		}
		s.bytesReceived.Add(6)
		h.PointerEvent(PointerEvent{Buttons: b[1], X: be.Uint16(b[2:]), Y: be.Uint16(b[4:])})
		return 6, nil

	case msgTraceContext: // type + u64 trace id + u64 client send time
		if len(b) < 17 {
			return 0, nil
		}
		s.bytesReceived.Add(17)
		s.traceID = be.Uint64(b[1:])
		s.traceAt = int64(be.Uint64(b[9:]))
		return 17, nil

	case msgClientCutText: // type + 3 padding + u32 length + text
		if len(b) < 8 {
			return 0, nil
		}
		n := be.Uint32(b[4:])
		if n > 1<<20 {
			return 0, fmt.Errorf("rfb: cut text of %d bytes: %w", n, ErrBadMessage)
		}
		total := 8 + int(n)
		if len(b) < total {
			return 0, nil
		}
		s.bytesReceived.Add(int64(total))
		h.CutText(string(b[8:total]))
		return total, nil

	default:
		return 0, fmt.Errorf("rfb: unknown client message %d: %w", b[0], ErrBadMessage)
	}
}

// ClientHello returns the client's entire half of the handshake as one
// pipelined byte string: protocol version, ClientInit (shared) and the
// resume-token extension (empty token: fresh session). The server's
// handshake reads never block once these bytes are buffered, which is
// what lets an edge client complete a handshake with no goroutine of its
// own — write the hello, attach the other end, read ServerInit at leisure.
func ClientHello(token string) []byte {
	if len(token) > MaxTokenLen {
		token = token[:MaxTokenLen]
	}
	b := make([]byte, 0, len(ProtocolVersion)+2+len(token))
	b = append(b, ProtocolVersion...)
	b = append(b, 1) // ClientInit: shared
	b = append(b, uint8(len(token)))
	b = append(b, token...)
	return b
}
