package rfb

import (
	"uniint/internal/gfx"
	"uniint/internal/metrics"
)

// The adaptive encoder picks a rectangle encoding from the rectangle's
// actual content instead of honoring only the client's static preference
// order. A bounded probe samples the rectangle on a coarse grid (at most
// adaptiveProbeBudget pixels regardless of rectangle size), counts
// distinct colors through the pooled census table, and classifies the
// content:
//
//	1 distinct color          → RRE (background + zero subrectangles)
//	low color count (GUI-ish) → Hextile (tiles exploit 2D locality)
//	high color count (noise)  → Raw (run encodings would expand and burn CPU)
//
// The probe's cost is bounded and metered: rfb_adaptive_probe_pixels_total
// counts sampled pixels, rfb_adaptive_pick_*_total count decisions.

// EncAdaptive is a server-side pseudo-encoding: an UpdateRect carrying it
// asks PrepareUpdate to choose raw/RRE/hextile per rectangle from the
// rectangle's content, restricted to what the client advertised. It never
// appears on the wire.
const EncAdaptive int32 = -256

// adaptiveProbeBudget caps the number of pixels the probe samples per
// rectangle, bounding the decision cost for arbitrarily large rects.
const adaptiveProbeBudget = 256

// adaptiveMaxHextileColors is the distinct-color threshold separating
// GUI-like content (flat fills, bevels, text on solid grounds) from
// photographic/noise content.
const adaptiveMaxHextileColors = 24

// Encoding capability bits, derived from the client's SetEncodings.
// Exactly eight bits: the mask lives in a uint8.
const (
	encBitRaw = 1 << iota
	encBitRRE
	encBitHextile
	encBitZlib
	encBitZlibDict
	encBitCopyRect
	encBitTileRef
	encBitTileInstall
)

var (
	mProbePixels = metrics.Default().Counter("rfb_adaptive_probe_pixels_total")
	mPickRaw     = metrics.Default().Counter("rfb_adaptive_pick_raw_total")
	mPickRRE     = metrics.Default().Counter("rfb_adaptive_pick_rre_total")
	mPickHextile = metrics.Default().Counter("rfb_adaptive_pick_hextile_total")
)

func countPick(enc int32) {
	switch enc {
	case EncRaw:
		mPickRaw.Inc()
	case EncRRE:
		mPickRRE.Inc()
	case EncHextile:
		mPickHextile.Inc()
	}
}

// encodingMask maps an advertised encoding list to capability bits.
func encodingMask(encs []int32) uint8 {
	var m uint8
	for _, e := range encs {
		switch e {
		case EncRaw:
			m |= encBitRaw
		case EncRRE:
			m |= encBitRRE
		case EncHextile:
			m |= encBitHextile
		case EncZlib:
			m |= encBitZlib
		case EncZlibDict:
			m |= encBitZlibDict
		case EncCopyRect:
			m |= encBitCopyRect
		case EncTileRef:
			m |= encBitTileRef
		case EncTileInstall:
			m |= encBitTileInstall
		}
	}
	return m
}

// probeDistinct samples r on a coarse grid (≤ adaptiveProbeBudget pixels)
// and returns the number of distinct colors seen.
func probeDistinct(fb *gfx.Framebuffer, r gfx.Rect, sc *encodeScratch) int {
	// Stride so that sampled columns × sampled rows ≈ the budget: a
	// 16×16 grid over the rect, degenerating to every pixel for rects
	// at or below 16 pixels per side.
	sx := (r.W + 15) / 16
	sy := (r.H + 15) / 16
	sc.hist.reset()
	sampled := 0
	for y := r.Y; y < r.MaxY(); y += sy {
		row := fb.Pix()[y*fb.W()+r.X : y*fb.W()+r.MaxX()]
		for x := 0; x < r.W; x += sx {
			sc.hist.add(row[x])
			sampled++
		}
	}
	mProbePixels.Add(int64(sampled))
	return sc.hist.distinct
}

// chooseEncoding picks the encoding for one rectangle. mask restricts the
// choice to client-advertised encodings; fallback is used when the mask
// leaves no room to adapt.
func chooseEncoding(fb *gfx.Framebuffer, r gfx.Rect, mask uint8, fallback int32, sc *encodeScratch) int32 {
	adaptable := mask & (encBitRaw | encBitRRE | encBitHextile)
	if fb == nil || adaptable == 0 || adaptable&(adaptable-1) == 0 {
		// Zero or one usable encoding: nothing to adapt between.
		return fallback
	}
	distinct := probeDistinct(fb, r, sc)
	var pick int32
	switch {
	case distinct <= 1 && mask&encBitRRE != 0:
		pick = EncRRE
	case distinct <= adaptiveMaxHextileColors && mask&encBitHextile != 0:
		pick = EncHextile
	case distinct <= adaptiveMaxHextileColors && mask&encBitRRE != 0:
		// No hextile advertised, but low-color content still compresses
		// well under RRE's run scan — far better than falling through
		// to raw.
		pick = EncRRE
	case mask&encBitRaw != 0:
		pick = EncRaw
	case mask&encBitHextile != 0:
		// No raw advertised: hextile's per-tile raw fallback bounds the
		// expansion on noisy content.
		pick = EncHextile
	case mask&encBitRRE != 0:
		pick = EncRRE
	default:
		return fallback
	}
	countPick(pick)
	return pick
}

// AdaptiveEncoding exposes the content probe outside a live connection
// (benchmarks, tests): it picks among raw, RRE and hextile for the given
// rectangle as a server with a fully-capable client would.
func AdaptiveEncoding(fb *gfx.Framebuffer, r gfx.Rect) int32 {
	sc := getScratch()
	defer putScratch(sc)
	return chooseEncoding(fb, r, encBitRaw|encBitRRE|encBitHextile, EncRaw, sc)
}
