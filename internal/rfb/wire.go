// Package rfb implements the universal interaction protocol: the wire
// protocol carried between the UniInt server and the UniInt proxy.
//
// The paper adopts the protocol of a stateless thin-client system (it names
// Citrix MetaFrame, Microsoft Terminal Server, Sun Ray and AT&T VNC) as the
// "universal interaction protocol": bitmap rectangles flow from server to
// viewer, keyboard and mouse events flow from viewer to server. This package
// reproduces the RFB 3.3 message vocabulary — versioned handshake,
// SetPixelFormat, SetEncodings, FramebufferUpdateRequest, FramebufferUpdate,
// KeyEvent, PointerEvent, Bell and CutText — together with the Raw,
// CopyRect, RRE, Hextile and Zlib rectangle encodings.
//
// One documented deviation: the real Zlib encoding shares a single zlib
// stream across every rectangle of a connection; this implementation uses an
// independent stream per rectangle (length-prefixed), which simplifies
// recovery and testing at a small compression-ratio cost. EXPERIMENTS.md E2
// quantifies the encodings against each other.
package rfb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"uniint/internal/gfx"
)

// ProtocolVersion is exchanged during the handshake. The layout matches
// RFB's "RFB 003.003\n" 12-byte version string.
const ProtocolVersion = "UII 001.000\n"

// Security types offered by the server after the version exchange.
const (
	secInvalid uint32 = 0
	secNone    uint32 = 1
)

// Client-to-server message types.
const (
	msgSetPixelFormat     uint8 = 0
	msgSetEncodings       uint8 = 2
	msgFramebufferRequest uint8 = 3
	msgKeyEvent           uint8 = 4
	msgPointerEvent       uint8 = 5
	msgClientCutText      uint8 = 6
	// msgTraceContext is a protocol extension (type 7 is unused by RFB
	// 3.3's client vocabulary, mirroring the resume-token handshake
	// extension): it attaches an interaction trace id to the NEXT input
	// event on the stream. Payload: 8-byte trace id + 8-byte client send
	// time (UnixNano), so the server can span the wire hop. Servers that
	// never see it behave identically; proxies only emit it for sampled
	// interactions.
	msgTraceContext uint8 = 7
)

// Server-to-client message types.
const (
	msgFramebufferUpdate uint8 = 0
	msgBell              uint8 = 2
	msgServerCutText     uint8 = 3
)

// Rectangle encodings. Values match RFB where the encodings exist there.
const (
	EncRaw      int32 = 0
	EncCopyRect int32 = 1
	EncRRE      int32 = 2
	EncHextile  int32 = 5
	EncZlib     int32 = 6
)

// Wire-efficiency tier encodings (protocol extensions; values live above
// RFB's assigned range). A client opts in through SetEncodings like any
// other encoding; servers never emit them unadvertised.
const (
	// EncZlibDict is zlib with a preset dictionary: the body is a u32
	// length followed by an independent zlib stream whose FDICT dictionary
	// is the static per-pixel-format dictionary both ends derive from the
	// toolkit's glyph rows and theme colors (see dict.go). Repeated text
	// and widget chrome match the dictionary on the very first update,
	// before any history exists.
	EncZlibDict int32 = 100
	// EncTileInstall carries a content-addressed tile: u64 FNV-1a hash of
	// the tile pixels, an s32 inner encoding, and the inner body. The
	// client decodes the inner body AND retains the decoded pixels in its
	// tile window under the hash, so a later EncTileRef can replay them.
	EncTileInstall int32 = 101
	// EncTileRef replays a previously installed tile: the body is just the
	// u64 hash. Rect geometry must match the installed tile's geometry.
	EncTileRef int32 = 102
)

// EncodingName returns a human-readable name for an encoding constant.
func EncodingName(e int32) string {
	switch e {
	case EncRaw:
		return "raw"
	case EncCopyRect:
		return "copyrect"
	case EncRRE:
		return "rre"
	case EncHextile:
		return "hextile"
	case EncZlib:
		return "zlib"
	case EncZlibDict:
		return "zlibdict"
	case EncTileInstall:
		return "tileinstall"
	case EncTileRef:
		return "tileref"
	default:
		return fmt.Sprintf("enc(%d)", e)
	}
}

// Errors shared by both connection ends.
var (
	ErrBadVersion  = errors.New("rfb: unsupported protocol version")
	ErrBadSecurity = errors.New("rfb: unsupported security type")
	ErrBadMessage  = errors.New("rfb: malformed message")
	ErrClosed      = errors.New("rfb: connection closed")
)

// KeyEvent is a universal input event: a key press or release. Key values
// use the keysym constants from keys.go (printable ASCII maps to itself).
type KeyEvent struct {
	Down bool
	Key  uint32
}

// PointerEvent is a universal input event: pointer position plus a button
// bitmask (bit 0 = left, bit 1 = middle, bit 2 = right).
type PointerEvent struct {
	Buttons uint8
	X, Y    uint16
}

// Pressed reports whether the given button (0-based) is down.
func (p PointerEvent) Pressed(button uint) bool { return p.Buttons&(1<<button) != 0 }

// UpdateRequest is the client's demand for screen contents. When
// Incremental is true the server may send only damaged areas; otherwise it
// must resend the full region.
type UpdateRequest struct {
	Incremental bool
	Region      gfx.Rect
}

// writeAll writes the whole buffer or fails.
func writeAll(w io.Writer, b []byte) error {
	_, err := w.Write(b)
	return err
}

func writeU8(w io.Writer, v uint8) error { return writeAll(w, []byte{v}) }
func writeU16(w io.Writer, v uint16) error {
	var b [2]byte
	be.PutUint16(b[:], v)
	return writeAll(w, b[:])
}
func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	be.PutUint32(b[:], v)
	return writeAll(w, b[:])
}

func readU8(r io.Reader) (uint8, error) {
	var b [1]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

func readU16(r io.Reader) (uint16, error) {
	var b [2]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return be.Uint16(b[:]), nil
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return be.Uint32(b[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return be.Uint64(b[:]), nil
}

// be is the wire byte order for message headers (network order, as in RFB).
var be = binary.BigEndian

// pixelFormat wire layout is RFB's exact 16-byte SetPixelFormat payload.
func writePixelFormat(w io.Writer, pf gfx.PixelFormat) error {
	b := make([]byte, 16)
	b[0] = pf.BitsPerPixel
	b[1] = pf.Depth
	if pf.BigEndian {
		b[2] = 1
	}
	if pf.TrueColor {
		b[3] = 1
	}
	be.PutUint16(b[4:], pf.RedMax)
	be.PutUint16(b[6:], pf.GreenMax)
	be.PutUint16(b[8:], pf.BlueMax)
	b[10] = pf.RedShift
	b[11] = pf.GreenShift
	b[12] = pf.BlueShift
	// b[13:16] padding
	return writeAll(w, b)
}

func readPixelFormat(r io.Reader) (gfx.PixelFormat, error) {
	b := make([]byte, 16)
	if _, err := io.ReadFull(r, b); err != nil {
		return gfx.PixelFormat{}, err
	}
	return pixelFormatFrom(b), nil
}

// pixelFormatFrom decodes the 16-byte wire pixel format from b.
func pixelFormatFrom(b []byte) gfx.PixelFormat {
	return gfx.PixelFormat{
		BitsPerPixel: b[0],
		Depth:        b[1],
		BigEndian:    b[2] != 0,
		TrueColor:    b[3] != 0,
		RedMax:       be.Uint16(b[4:]),
		GreenMax:     be.Uint16(b[6:]),
		BlueMax:      be.Uint16(b[8:]),
		RedShift:     b[10],
		GreenShift:   b[11],
		BlueShift:    b[12],
	}
}

// putPixel serializes one pixel in pf into b, returning the byte count.
func putPixel(b []byte, pf gfx.PixelFormat, c gfx.Color) int {
	v := pf.Encode(c)
	switch pf.BitsPerPixel {
	case 8:
		b[0] = uint8(v)
		return 1
	case 16:
		if pf.BigEndian {
			be.PutUint16(b, uint16(v))
		} else {
			binary.LittleEndian.PutUint16(b, uint16(v))
		}
		return 2
	default: // 32
		if pf.BigEndian {
			be.PutUint32(b, v)
		} else {
			binary.LittleEndian.PutUint32(b, v)
		}
		return 4
	}
}

// getPixel deserializes one pixel in pf from b, returning the color and the
// byte count consumed.
func getPixel(b []byte, pf gfx.PixelFormat) (gfx.Color, int) {
	switch pf.BitsPerPixel {
	case 8:
		return pf.Decode(uint32(b[0])), 1
	case 16:
		var v uint16
		if pf.BigEndian {
			v = be.Uint16(b)
		} else {
			v = binary.LittleEndian.Uint16(b)
		}
		return pf.Decode(uint32(v)), 2
	default:
		var v uint32
		if pf.BigEndian {
			v = be.Uint32(b)
		} else {
			v = binary.LittleEndian.Uint32(b)
		}
		return pf.Decode(v), 4
	}
}
