package rfb

import (
	"fmt"
	"time"

	"uniint/internal/gfx"
)

// Session migration record. Federation ships a parked session between
// hub nodes as one self-contained byte blob: everything the detach lot
// holds for an absent client — the compressed shadow framebuffer, the
// resume token, accumulated damage, the parked update request, and the
// queued-but-undispatched input — in a versioned big-endian layout
// (documented in docs/WIRE.md). The record deliberately reuses the wire
// protocol's own codecs (the 16-byte pixel-format block, the PackedShadow
// zlib stream) so migration cannot drift from what the session would have
// sent a client.

// Migration record framing constants (layout in docs/WIRE.md).
const (
	// MigMagic opens every migration record: version bumps change the magic.
	MigMagic = "UNIMIG/1"
	// MigFlagPending marks a parked update request present in the record.
	MigFlagPending = 1 << 0
	// MigFlagPF marks a client-negotiated pixel format (PFSet).
	MigFlagPF = 1 << 1
	// MigFlagIncremental carries the parked request's incremental bit.
	MigFlagIncremental = 1 << 2
	// MigFlagDict marks the shadow stream as compressed against the PF32
	// preset dictionary (PackedShadow's dict bit).
	MigFlagDict = 1 << 3
	// MigFlagShadow marks a shadow framebuffer stream present.
	MigFlagShadow = 1 << 4
	// MigEventKey tags a queued key event (payload: down u8, keysym u32).
	MigEventKey = 1
	// MigEventPointer tags a queued pointer click/press event
	// (payload: buttons u8, x u16, y u16).
	MigEventPointer = 2
	// MigEventMove tags a queued pointer move event (same payload as
	// MigEventPointer; moves are coalescable, clicks are not).
	MigEventMove = 3
)

// MigEvent is one queued input event inside a migration record — the
// session-independent core of the lot's input queue (enqueue timestamps
// and trace ids are node-local and reset on import).
type MigEvent struct {
	// Pointer selects which payload is live: Ptr when true, Key when false.
	Pointer bool
	// Move marks a coalescable pointer move (meaningful when Pointer).
	Move bool
	// Key is the key event payload.
	Key KeyEvent
	// Ptr is the pointer event payload.
	Ptr PointerEvent
}

// MigrationRecord is one parked session in portable form.
type MigrationRecord struct {
	// Token is the session resume token the client will redial with.
	Token string
	// W, H are the session geometry (resume requires a geometry match).
	W, H int
	// PF is the client-negotiated pixel format; meaningful when PFSet.
	PF    gfx.PixelFormat
	PFSet bool
	// Shadow is the compressed shadow framebuffer (nil only for a
	// session that never painted).
	Shadow *PackedShadow
	// Dirty is the damage accumulated while parked.
	Dirty []gfx.Rect
	// Pending is the update request the client parked with; meaningful
	// when HasPending.
	Pending    UpdateRequest
	HasPending bool
	// Events is the queued-but-undispatched input.
	Events []MigEvent
	// LastPtrMask is the last dispatched pointer button mask (move
	// coalescing state).
	LastPtrMask uint8
	// RemainingTTL is how much park time the session had left on the
	// source node; the target arms its lot deadline with it so migration
	// never extends a session's life.
	RemainingTTL time.Duration
	// DetachedFor is how long the session had already been parked, so
	// the target's detach-duration accounting stays truthful.
	DetachedFor time.Duration
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// clampMS converts a duration to whole milliseconds clamped to u32 —
// park TTLs are tens of seconds, so the clamp is purely defensive.
func clampMS(d time.Duration) uint32 {
	ms := d.Milliseconds()
	if ms < 0 {
		return 0
	}
	if ms > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(ms)
}

// Encode serializes the record (layout in docs/WIRE.md).
func (m *MigrationRecord) Encode() ([]byte, error) {
	if len(m.Token) == 0 || len(m.Token) > MaxTokenLen {
		return nil, fmt.Errorf("rfb: migration record: bad token length %d", len(m.Token))
	}
	if m.W < 0 || m.W > 0xffff || m.H < 0 || m.H > 0xffff {
		return nil, fmt.Errorf("rfb: migration record: bad geometry %dx%d", m.W, m.H)
	}
	if len(m.Dirty) > 0xffff || len(m.Events) > 0xffff {
		return nil, fmt.Errorf("rfb: migration record: too much parked state (%d rects, %d events)",
			len(m.Dirty), len(m.Events))
	}
	var flags byte
	if m.HasPending {
		flags |= MigFlagPending
	}
	if m.PFSet {
		flags |= MigFlagPF
	}
	if m.HasPending && m.Pending.Incremental {
		flags |= MigFlagIncremental
	}
	if m.Shadow != nil {
		flags |= MigFlagShadow
		if m.Shadow.dict {
			flags |= MigFlagDict
		}
	}
	size := len(MigMagic) + 3 + len(m.Token) + 4 + 16 + 8 + 8 +
		2 + 8*len(m.Dirty) + 2 + 6*len(m.Events)
	if m.Shadow != nil {
		size += 8 + len(m.Shadow.comp)
	}
	b := make([]byte, 0, size)
	b = append(b, MigMagic...)
	b = append(b, flags, m.LastPtrMask, byte(len(m.Token)))
	b = append(b, m.Token...)
	b = appendU16(b, uint16(m.W))
	b = appendU16(b, uint16(m.H))
	var pfb [16]byte
	pfb[0] = m.PF.BitsPerPixel
	pfb[1] = m.PF.Depth
	if m.PF.BigEndian {
		pfb[2] = 1
	}
	if m.PF.TrueColor {
		pfb[3] = 1
	}
	be.PutUint16(pfb[4:], m.PF.RedMax)
	be.PutUint16(pfb[6:], m.PF.GreenMax)
	be.PutUint16(pfb[8:], m.PF.BlueMax)
	pfb[10], pfb[11], pfb[12] = m.PF.RedShift, m.PF.GreenShift, m.PF.BlueShift
	b = append(b, pfb[:]...)
	b = appendU32(b, clampMS(m.RemainingTTL))
	b = appendU32(b, clampMS(m.DetachedFor))
	r := m.Pending.Region
	b = appendU16(b, uint16(r.X))
	b = appendU16(b, uint16(r.Y))
	b = appendU16(b, uint16(r.W))
	b = appendU16(b, uint16(r.H))
	b = appendU16(b, uint16(len(m.Dirty)))
	for _, d := range m.Dirty {
		b = appendU16(b, uint16(d.X))
		b = appendU16(b, uint16(d.Y))
		b = appendU16(b, uint16(d.W))
		b = appendU16(b, uint16(d.H))
	}
	b = appendU16(b, uint16(len(m.Events)))
	for _, ev := range m.Events {
		if ev.Pointer {
			kind := byte(MigEventPointer)
			if ev.Move {
				kind = MigEventMove
			}
			b = append(b, kind, ev.Ptr.Buttons)
			b = appendU16(b, ev.Ptr.X)
			b = appendU16(b, ev.Ptr.Y)
		} else {
			down := byte(0)
			if ev.Key.Down {
				down = 1
			}
			b = append(b, MigEventKey, down)
			b = appendU32(b, ev.Key.Key)
		}
	}
	if m.Shadow != nil {
		b = appendU32(b, uint32(m.Shadow.raw))
		b = appendU32(b, uint32(len(m.Shadow.comp)))
		b = append(b, m.Shadow.comp...)
	}
	return b, nil
}

// migDecoder is a bounds-checked cursor over an encoded record.
type migDecoder struct {
	b   []byte
	off int
}

func (d *migDecoder) need(n int) ([]byte, error) {
	if len(d.b)-d.off < n {
		return nil, fmt.Errorf("rfb: migration record truncated at offset %d (need %d bytes)", d.off, n)
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s, nil
}

func (d *migDecoder) u16() (uint16, error) {
	s, err := d.need(2)
	if err != nil {
		return 0, err
	}
	return be.Uint16(s), nil
}

func (d *migDecoder) u32() (uint32, error) {
	s, err := d.need(4)
	if err != nil {
		return 0, err
	}
	return be.Uint32(s), nil
}

// DecodeMigration parses an encoded migration record, validating framing
// and rejecting trailing bytes.
func DecodeMigration(b []byte) (*MigrationRecord, error) {
	d := &migDecoder{b: b}
	magic, err := d.need(len(MigMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != MigMagic {
		return nil, fmt.Errorf("rfb: migration record: bad magic %q", magic)
	}
	hdr, err := d.need(3)
	if err != nil {
		return nil, err
	}
	flags, lastMask, tokenLen := hdr[0], hdr[1], int(hdr[2])
	if tokenLen == 0 {
		return nil, fmt.Errorf("rfb: migration record: empty token")
	}
	tok, err := d.need(tokenLen)
	if err != nil {
		return nil, err
	}
	m := &MigrationRecord{
		Token:       string(tok),
		LastPtrMask: lastMask,
		PFSet:       flags&MigFlagPF != 0,
		HasPending:  flags&MigFlagPending != 0,
	}
	w, err := d.u16()
	if err != nil {
		return nil, err
	}
	h, err := d.u16()
	if err != nil {
		return nil, err
	}
	m.W, m.H = int(w), int(h)
	pfb, err := d.need(16)
	if err != nil {
		return nil, err
	}
	m.PF = pixelFormatFrom(pfb)
	ttl, err := d.u32()
	if err != nil {
		return nil, err
	}
	det, err := d.u32()
	if err != nil {
		return nil, err
	}
	m.RemainingTTL = time.Duration(ttl) * time.Millisecond
	m.DetachedFor = time.Duration(det) * time.Millisecond
	var pr [4]uint16
	for i := range pr {
		if pr[i], err = d.u16(); err != nil {
			return nil, err
		}
	}
	if m.HasPending {
		m.Pending = UpdateRequest{
			Incremental: flags&MigFlagIncremental != 0,
			Region:      gfx.R(int(pr[0]), int(pr[1]), int(pr[2]), int(pr[3])),
		}
	}
	nDirty, err := d.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nDirty); i++ {
		var rr [4]uint16
		for j := range rr {
			if rr[j], err = d.u16(); err != nil {
				return nil, err
			}
		}
		m.Dirty = append(m.Dirty, gfx.R(int(rr[0]), int(rr[1]), int(rr[2]), int(rr[3])))
	}
	nEvents, err := d.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nEvents); i++ {
		eh, err := d.need(2)
		if err != nil {
			return nil, err
		}
		switch eh[0] {
		case MigEventKey:
			key, err := d.u32()
			if err != nil {
				return nil, err
			}
			m.Events = append(m.Events, MigEvent{Key: KeyEvent{Down: eh[1] != 0, Key: key}})
		case MigEventPointer, MigEventMove:
			x, err := d.u16()
			if err != nil {
				return nil, err
			}
			y, err := d.u16()
			if err != nil {
				return nil, err
			}
			m.Events = append(m.Events, MigEvent{
				Pointer: true,
				Move:    eh[0] == MigEventMove,
				Ptr:     PointerEvent{Buttons: eh[1], X: x, Y: y},
			})
		default:
			return nil, fmt.Errorf("rfb: migration record: unknown event kind %d", eh[0])
		}
	}
	if flags&MigFlagShadow != 0 {
		raw, err := d.u32()
		if err != nil {
			return nil, err
		}
		compLen, err := d.u32()
		if err != nil {
			return nil, err
		}
		comp, err := d.need(int(compLen))
		if err != nil {
			return nil, err
		}
		m.Shadow = &PackedShadow{
			w: m.W, h: m.H,
			pf: m.PF, pfSet: m.PFSet,
			dict: flags&MigFlagDict != 0,
			comp: append([]byte(nil), comp...),
			raw:  int(raw),
		}
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("rfb: migration record: %d trailing bytes", len(b)-d.off)
	}
	return m, nil
}
