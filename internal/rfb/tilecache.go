package rfb

import (
	"sync"

	"uniint/internal/gfx"
	"uniint/internal/metrics"
)

// The tile tier turns cross-session redundancy into wire savings: a hub
// serving many near-identical homes renders the same button bodies and
// ticker labels over and over, and after the first session has paid the
// encode cost, every other session can ship an 8-byte content-hash
// reference instead of pixels.
//
// Two structures cooperate:
//
//   - TileCache (process-wide, shared across sessions): content hash →
//     encoded tile body, so the Nth session emitting an EncTileInstall for
//     a tile some other session already encoded reuses the bytes without
//     re-running the encoder. Bounded by a byte budget with LRU eviction.
//
//   - tileWindow (per session, inside WireState) mirrored by clientTiles
//     (per connection, inside decodeScratch): a fixed-capacity LRU over
//     tile hashes that both ends maintain with identical operations driven
//     by the in-order update stream. The server emits EncTileRef only for
//     hashes still in its window; because the client applies the same
//     insert/touch/evict sequence, such hashes are guaranteed to still be
//     in the client's memory. The capacity is therefore a protocol
//     constant: changing it is a wire-protocol change.

// tileWindowCap is the mirrored per-session tile LRU capacity (in tiles).
// Protocol constant — see docs/WIRE.md. Sized above the distinct-tile
// working set of a busy control panel (~1.3k tiles for the 12-widget
// churn workload) so steady state is all references.
const tileWindowCap = 2048

// Tile eligibility bounds: rectangles beyond these are full-screen-ish
// repaints whose pixel memory would evict many small widget tiles for one
// unlikely-to-repeat hash.
const (
	tileMaxArea   = 16384
	tileMaxHeight = 128
)

// DefaultTileCacheBudget is the default byte budget of a shared TileCache:
// encoded widget tiles are a few hundred bytes, so 64MB holds on the order
// of a hundred thousand distinct tiles.
const DefaultTileCacheBudget = 64 << 20

var (
	mTileCacheHits      = metrics.Default().Counter("rfb_tilecache_hits_total")
	mTileCacheMisses    = metrics.Default().Counter("rfb_tilecache_misses_total")
	mTileCacheEvictions = metrics.Default().Counter("rfb_tilecache_evictions_total")
	mTileCacheBytes     = metrics.Default().Gauge("rfb_tilecache_bytes")
	mTileCacheEntries   = metrics.Default().Gauge("rfb_tilecache_entries")

	mTileRefsSent     = metrics.Default().Counter("rfb_tilecache_refs_sent_total")
	mTileInstallsSent = metrics.Default().Counter("rfb_tilecache_installs_sent_total")
)

// tileKey addresses an encoded tile body: the content hash plus the pixel
// format the body was encoded under (the same pixels serialize differently
// per format).
type tileKey struct {
	hash uint64
	pf   gfx.PixelFormat
}

// tileEntry is one cached encoded body on the cache's intrusive LRU list.
type tileEntry struct {
	key        tileKey
	enc        int32  // inner encoding of the body
	body       []byte // encoded body, immutable once cached
	prev, next *tileEntry
}

// TileCache is the process-wide content-addressed store of encoded tile
// bodies, safe for concurrent use by every session of a hub. Bodies are
// immutable, so Get may return the slice itself without copying; Put
// copies its input.
type TileCache struct {
	mu      sync.Mutex
	entries map[tileKey]*tileEntry
	head    *tileEntry // most recently used
	tail    *tileEntry // least recently used
	bytes   int64
	budget  int64
}

// NewTileCache returns a cache bounded by budget bytes of encoded tile
// bodies; budget <= 0 selects DefaultTileCacheBudget.
func NewTileCache(budget int64) *TileCache {
	if budget <= 0 {
		budget = DefaultTileCacheBudget
	}
	return &TileCache{entries: map[tileKey]*tileEntry{}, budget: budget}
}

// Get returns the cached encoded body for key, marking it recently used.
// The returned slice is immutable shared storage — callers copy it into
// their output buffer and never write to it.
func (tc *TileCache) Get(key tileKey) (enc int32, body []byte, ok bool) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	e := tc.entries[key]
	if e == nil {
		mTileCacheMisses.Inc()
		return 0, nil, false
	}
	tc.moveToFront(e)
	mTileCacheHits.Inc()
	return e.enc, e.body, true
}

// Put caches an encoded body (copied) under key and evicts least-recently
// used entries until the byte budget holds. Re-putting an existing key
// refreshes its recency but keeps the first body.
func (tc *TileCache) Put(key tileKey, enc int32, body []byte) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if e := tc.entries[key]; e != nil {
		tc.moveToFront(e)
		return
	}
	e := &tileEntry{key: key, enc: enc, body: append([]byte(nil), body...)}
	tc.entries[key] = e
	tc.pushFront(e)
	tc.bytes += int64(len(e.body))
	for tc.bytes > tc.budget && tc.tail != nil && tc.tail != e {
		tc.evictLocked(tc.tail)
	}
	mTileCacheBytes.Set(tc.bytes)
	mTileCacheEntries.Set(int64(len(tc.entries)))
}

// Len returns the number of cached tiles.
func (tc *TileCache) Len() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.entries)
}

// Bytes returns the cached body bytes currently held.
func (tc *TileCache) Bytes() int64 {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.bytes
}

func (tc *TileCache) evictLocked(e *tileEntry) {
	tc.unlink(e)
	delete(tc.entries, e.key)
	tc.bytes -= int64(len(e.body))
	mTileCacheEvictions.Inc()
}

func (tc *TileCache) pushFront(e *tileEntry) {
	e.prev = nil
	e.next = tc.head
	if tc.head != nil {
		tc.head.prev = e
	}
	tc.head = e
	if tc.tail == nil {
		tc.tail = e
	}
}

func (tc *TileCache) unlink(e *tileEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		tc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		tc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (tc *TileCache) moveToFront(e *tileEntry) {
	if tc.head == e {
		return
	}
	tc.unlink(e)
	tc.pushFront(e)
}

// hashTile content-addresses the pixels of fb inside r with FNV-1a 64,
// mixing in the geometry so equal pixel sequences of different shapes
// collide no more than chance. At 64 bits the birthday collision odds for
// a hub-sized tile population (~10^5 tiles) are ~1e-9 — accepted and
// documented in docs/WIRE.md; a collision paints one stale widget body
// until its next content change.
func hashTile(fb *gfx.Framebuffer, r gfx.Rect) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(r.W)) * prime64
	h = (h ^ uint64(r.H)) * prime64
	w := fb.W()
	pix := fb.Pix()
	for y := r.Y; y < r.MaxY(); y++ {
		row := pix[y*w+r.X : y*w+r.MaxX()]
		for _, c := range row {
			h = (h ^ uint64(c)) * prime64
		}
	}
	return h
}

// --- Server-side session window (hashes only) ---------------------------

// twSlot is one node of the server window's intrusive LRU (index-linked so
// the whole window is two allocations, made once per session).
type twSlot struct {
	hash       uint64
	prev, next int32 // slot indices; -1 terminates
}

// tileWindow is the server's model of the client's tile memory: a
// fixed-capacity LRU over hashes, mutated only by operations that are also
// encoded on the wire (install, ref) so both ends stay in lockstep.
type tileWindow struct {
	slots []twSlot
	index map[uint64]int32
	head  int32
	tail  int32
	free  int32 // head of the free slot list (linked through next)
}

func (w *tileWindow) init() {
	if w.slots == nil {
		w.slots = make([]twSlot, tileWindowCap)
		w.index = make(map[uint64]int32, tileWindowCap)
	}
	clear(w.index)
	w.head, w.tail = -1, -1
	for i := range w.slots {
		w.slots[i].next = int32(i + 1)
	}
	w.slots[len(w.slots)-1].next = -1
	w.free = 0
}

// touch reports whether h is in the window, marking it most recently used.
// A true return licenses an EncTileRef for h.
func (w *tileWindow) touch(h uint64) bool {
	i, ok := w.index[h]
	if !ok {
		return false
	}
	w.moveToFront(i)
	return true
}

// install records h as most recently used, evicting the least recently
// used hash when the window is full. Mirrors the client's handling of
// EncTileInstall.
func (w *tileWindow) install(h uint64) {
	if i, ok := w.index[h]; ok {
		w.moveToFront(i)
		return
	}
	var i int32
	if w.free >= 0 {
		i = w.free
		w.free = w.slots[i].next
	} else {
		i = w.tail
		w.unlink(i)
		delete(w.index, w.slots[i].hash)
	}
	w.slots[i].hash = h
	w.index[h] = i
	w.pushFront(i)
}

func (w *tileWindow) pushFront(i int32) {
	s := &w.slots[i]
	s.prev, s.next = -1, w.head
	if w.head >= 0 {
		w.slots[w.head].prev = i
	}
	w.head = i
	if w.tail < 0 {
		w.tail = i
	}
}

func (w *tileWindow) unlink(i int32) {
	s := &w.slots[i]
	if s.prev >= 0 {
		w.slots[s.prev].next = s.next
	} else {
		w.head = s.next
	}
	if s.next >= 0 {
		w.slots[s.next].prev = s.prev
	} else {
		w.tail = s.prev
	}
	s.prev, s.next = -1, -1
}

func (w *tileWindow) moveToFront(i int32) {
	if w.head == i {
		return
	}
	w.unlink(i)
	w.pushFront(i)
}

// --- Client-side tile memory (decoded pixels) ---------------------------

// ctEntry is one remembered tile: the decoded pixels plus geometry.
type ctEntry struct {
	hash       uint64
	w, h       int
	pix        []gfx.Color // reused across evictions via grow-style resize
	prev, next *ctEntry
}

// clientTiles is the client's tile memory, the mirror of the server's
// tileWindow: same capacity, same LRU discipline, mutated by the decoded
// EncTileInstall/EncTileRef stream in the same order the server mutated
// its window, so every EncTileRef the server emits resolves here.
type clientTiles struct {
	entries map[uint64]*ctEntry
	head    *ctEntry
	tail    *ctEntry
}

// install remembers the pixels of fb inside r under hash. Re-installing an
// existing hash overwrites the remembered pixels (the server re-installs
// after its window state was reset).
func (ct *clientTiles) install(hash uint64, fb *gfx.Framebuffer, r gfx.Rect) {
	if ct.entries == nil {
		ct.entries = make(map[uint64]*ctEntry, tileWindowCap)
	}
	e := ct.entries[hash]
	if e == nil {
		if len(ct.entries) >= tileWindowCap {
			// Evict LRU, reusing its node and pixel buffer.
			e = ct.tail
			ct.unlink(e)
			delete(ct.entries, e.hash)
		} else {
			e = &ctEntry{}
		}
		e.hash = hash
		ct.entries[hash] = e
		ct.pushFront(e)
	} else {
		ct.moveToFront(e)
	}
	e.w, e.h = r.W, r.H
	need := r.W * r.H
	if cap(e.pix) < need {
		e.pix = make([]gfx.Color, need)
	}
	e.pix = e.pix[:need]
	w := fb.W()
	pix := fb.Pix()
	for y := 0; y < r.H; y++ {
		copy(e.pix[y*r.W:(y+1)*r.W], pix[(r.Y+y)*w+r.X:(r.Y+y)*w+r.MaxX()])
	}
}

// replay paints the remembered tile for hash into fb at r, marking it
// recently used. False means the hash is unknown or the geometry differs —
// a protocol violation by the server.
func (ct *clientTiles) replay(hash uint64, fb *gfx.Framebuffer, r gfx.Rect) bool {
	e := ct.entries[hash]
	if e == nil || e.w != r.W || e.h != r.H {
		return false
	}
	ct.moveToFront(e)
	w := fb.W()
	pix := fb.Pix()
	for y := 0; y < r.H; y++ {
		copy(pix[(r.Y+y)*w+r.X:(r.Y+y)*w+r.MaxX()], e.pix[y*r.W:(y+1)*r.W])
	}
	return true
}

func (ct *clientTiles) pushFront(e *ctEntry) {
	e.prev, e.next = nil, ct.head
	if ct.head != nil {
		ct.head.prev = e
	}
	ct.head = e
	if ct.tail == nil {
		ct.tail = e
	}
}

func (ct *clientTiles) unlink(e *ctEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		ct.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		ct.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (ct *clientTiles) moveToFront(e *ctEntry) {
	if ct.head == e {
		return
	}
	ct.unlink(e)
	ct.pushFront(e)
}
