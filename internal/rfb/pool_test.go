package rfb

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"uniint/internal/gfx"
)

// TestPooledEncodeRoundTripProperty guards the pooled encode path against
// scratch-buffer aliasing: random rects are encoded back to back through
// the same reused destination buffer and pooled scratch (the exact reuse
// pattern of the steady-state server), the wire bytes are retained, and
// only then decoded. If an encoder leaked a reference into pooled scratch,
// the later encodes would corrupt the earlier bodies.
func TestPooledEncodeRoundTripProperty(t *testing.T) {
	encodings := []int32{EncRaw, EncRRE, EncHextile}
	formats := []gfx.PixelFormat{gfx.PF32(), gfx.PF16(), gfx.PF8()}

	prop := func(seed int64, geo [6]uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 33 + int(geo[0]%3)*16
		h := 33 + int(geo[1]%3)*16
		frame := randomFrame(rng, w, h)

		// Three random non-empty rects (may overlap, cross tiles).
		var rects []gfx.Rect
		for i := 0; i < 3; i++ {
			r := gfx.R(int(geo[i%6])%w, int(geo[(i+1)%6])%h,
				int(geo[(i+2)%6])%w+1, int(geo[(i+3)%6])%h+1).
				Intersect(frame.Bounds())
			if !r.Empty() {
				rects = append(rects, r)
			}
		}
		if len(rects) == 0 {
			return true
		}

		for _, pf := range formats {
			want := gfx.NewFramebuffer(w, h)
			for i, c := range frame.Pix() {
				want.Pix()[i] = pf.Decode(pf.Encode(c))
			}
			for _, enc := range encodings {
				// Encode every rect into ONE shared buffer on ONE scratch
				// before decoding any of them.
				sc := getScratch()
				var buf []byte
				var spans [][2]int
				for _, r := range rects {
					start := len(buf)
					out, err := encodeRect(buf, enc, frame, r, pf, sc)
					if err != nil {
						putScratch(sc)
						return false
					}
					buf = out
					spans = append(spans, [2]int{start, len(buf)})
				}
				putScratch(sc)

				dst := gfx.NewFramebuffer(w, h)
				for i, r := range rects {
					body := buf[spans[i][0]:spans[i][1]]
					if err := decodeRect(bytes.NewReader(body), enc, dst, r, pf, nil); err != nil {
						return false
					}
				}
				for _, r := range rects {
					for y := r.Y; y < r.MaxY(); y++ {
						for x := r.X; x < r.MaxX(); x++ {
							if dst.At(x, y) != want.At(x, y) {
								return false
							}
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestScratchReuseAcrossEncodings: one scratch sequentially runs every
// encoder (the adaptive path does exactly this) without cross-talk.
func TestScratchReuseAcrossEncodings(t *testing.T) {
	frame := makeGUIFrame(100, 80)
	pf := gfx.PF32()
	r := frame.Bounds()

	sc := getScratch()
	defer putScratch(sc)
	var ref [][]byte
	for _, enc := range []int32{EncRaw, EncRRE, EncHextile, EncZlib} {
		body, err := encodeRect(nil, enc, frame, r, pf, sc)
		if err != nil {
			t.Fatal(err)
		}
		ref = append(ref, body)
	}
	// Re-encode on the same scratch; output must be byte-identical.
	for i, enc := range []int32{EncRaw, EncRRE, EncHextile, EncZlib} {
		body, err := encodeRect(nil, enc, frame, r, pf, sc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, ref[i]) {
			t.Errorf("%s: scratch reuse changed output (%d vs %d bytes)",
				EncodingName(enc), len(body), len(ref[i]))
		}
	}
}

// TestColorHistExactUnderCapacity: the census counts exactly while under
// table capacity, across generations.
func TestColorHistExactUnderCapacity(t *testing.T) {
	var h colorHist
	for gen := 0; gen < 3; gen++ {
		h.reset()
		for i := 0; i < 300; i++ {
			h.add(gfx.Color(i % 30))
		}
		if h.distinct != 30 {
			t.Fatalf("gen %d: distinct = %d, want 30", gen, h.distinct)
		}
		if c, n := h.max(); n != 10 {
			t.Fatalf("gen %d: max = (%v,%d), want count 10", gen, c, n)
		}
		if h.saturated {
			t.Fatalf("gen %d: unexpectedly saturated", gen)
		}
	}
}

// TestColorHistSaturationIsSafe: far more distinct colors than capacity
// must not panic and must keep a usable (approximate) max.
func TestColorHistSaturationIsSafe(t *testing.T) {
	var h colorHist
	h.reset()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100000; i++ {
		h.add(gfx.Color(rng.Uint32() & 0xFFFFFF))
	}
	if h.distinct == 0 {
		t.Fatal("census lost everything")
	}
	if _, n := h.max(); n < 1 {
		t.Fatal("max unusable after saturation")
	}
}

func TestPreparedUpdateReleaseIdempotent(t *testing.T) {
	var p *PreparedUpdate
	p.Release() // nil-safe
	sc := getScratch()
	sc.prep.sc = sc
	p = &sc.prep
	p.Release()
	p.Release() // double release is a no-op (sc cleared by putScratch)
}
