package rfb

import (
	"testing"

	"uniint/internal/gfx"
)

// fillShadow writes a deterministic pseudo-random pattern (xorshift) into
// every shadow pixel, including values with the unused top byte set, so a
// round-trip must be byte-lossless, not merely 24-bit-lossless.
func fillShadow(ws *WireState, seed uint32) {
	x := seed | 1
	pix := ws.shadow.Pix()
	for i := range pix {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		pix[i] = gfx.Color(x)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		pf       gfx.PixelFormat
		pfSet    bool
		wantDict bool
	}{
		{"unset-pf", gfx.PixelFormat{}, false, true},
		{"pf32", gfx.PF32(), true, true},
		{"pf16", gfx.PF16(), true, false},
		{"pf8", gfx.PF8(), true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ws := NewWireState(nil, 64, 48)
			fillShadow(ws, 0xDECAF)
			ws.pf, ws.pfSet = tc.pf, tc.pfSet
			want := append([]gfx.Color(nil), ws.shadow.Pix()...)

			p, err := ws.Pack()
			if err != nil {
				t.Fatal(err)
			}
			if p.dict != tc.wantDict {
				t.Errorf("dict = %v, want %v", p.dict, tc.wantDict)
			}
			if p.RawBytes() != 64*48*4 {
				t.Errorf("RawBytes = %d", p.RawBytes())
			}

			got, err := p.Unpack(nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range got.shadow.Pix() {
				if c != want[i] {
					t.Fatalf("pixel %d: %08x, want %08x", i, uint32(c), uint32(want[i]))
				}
			}
			if got.valid {
				t.Error("unpacked shadow claims validity")
			}
			if got.pf != tc.pf || got.pfSet != tc.pfSet {
				t.Errorf("pf round-trip: %+v set=%v", got.pf, got.pfSet)
			}
		})
	}
}

func TestPackCompressionRatio(t *testing.T) {
	// GUI-like content — theme fills plus glyph-row text — must shrink at
	// least 3x; this is the acceptance floor for cold parked sessions.
	ws := NewWireState(nil, 160, 120)
	pix := ws.shadow.Pix()
	for i := range pix {
		pix[i] = gfx.LightGray
	}
	for y := 20; y < 27; y++ { // a band of text-ish alternation
		for x := 0; x < 160; x++ {
			if x%3 == 0 {
				pix[y*160+x] = gfx.Black
			}
		}
	}
	p, err := ws.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if p.CompressedBytes()*3 > p.RawBytes() {
		t.Fatalf("compressed %d bytes of %d raw: under 3x", p.CompressedBytes(), p.RawBytes())
	}
}

func TestUnpackRejectsCorruptStream(t *testing.T) {
	ws := NewWireState(nil, 32, 32)
	fillShadow(ws, 7)
	p, err := ws.Pack()
	if err != nil {
		t.Fatal(err)
	}
	trunc := &PackedShadow{w: p.w, h: p.h, dict: p.dict, comp: p.comp[:len(p.comp)/2], raw: p.raw}
	if _, err := trunc.Unpack(nil); err == nil {
		t.Fatal("truncated stream unpacked cleanly")
	}
	// A geometry lie (more pixels in the stream than the header claims)
	// must be caught, not silently dropped.
	lying := &PackedShadow{w: 16, h: 16, dict: p.dict, comp: p.comp, raw: 16 * 16 * 4}
	if _, err := lying.Unpack(nil); err == nil {
		t.Fatal("oversized stream unpacked cleanly")
	}
}
