package rfb

import (
	"sync"

	"uniint/internal/gfx"
	"uniint/internal/metrics"
)

// The zlib-dict encoding (EncZlibDict) compresses each rectangle against a
// preset dictionary instead of starting cold, so the first occurrence of a
// glyph row or a theme-colored fill already has 32KB of history to match.
// Both ends derive the SAME dictionary deterministically from the toolkit:
// it is never transmitted, only its adler32 checksum crosses the wire (in
// the zlib FDICT header, where the decoder verifies it).
//
// Dictionary layout, least to most valuable (zlib favors bytes near the
// end of the dictionary with shorter match distances):
//
//  1. 64-pixel runs of each theme color — matches fills, bevels, borders.
//  2. Every printable-ASCII glyph row (GlyphW wire pixels: the 5 glyph
//     columns plus 1 spacing column) rendered as Black-on-LightGray, the
//     toolkit's dominant text pairing — matches label/button/toggle text.
//
// The dictionary depends only on the pixel format, so one copy per format
// is built lazily and shared by every connection in the process.

var (
	mDictBuilds = metrics.Default().Counter("rfb_dict_builds_total")
	mDictRects  = metrics.Default().Counter("rfb_dict_rects_total")
	mDictBytes  = metrics.Default().Counter("rfb_dict_bytes_total")
)

// dictThemeColors are the fill colors seeded as runs, most common last so
// they sit closest to the compressed data.
var dictThemeColors = []gfx.Color{
	gfx.Red, gfx.Yellow, gfx.Green, gfx.Blue,
	gfx.DarkGray, gfx.Gray, gfx.Navy, gfx.Black,
	gfx.White, gfx.LightGray,
}

// dictColorRun is the length in pixels of each theme-color run.
const dictColorRun = 64

var (
	dictMu   sync.Mutex
	dictByPF = map[gfx.PixelFormat][]byte{}
)

// dictFor returns the preset dictionary for pf, building and caching it on
// first use. The returned slice is shared and must not be mutated.
func dictFor(pf gfx.PixelFormat) []byte {
	dictMu.Lock()
	defer dictMu.Unlock()
	if d, ok := dictByPF[pf]; ok {
		return d
	}
	d := buildDict(pf)
	dictByPF[pf] = d
	mDictBuilds.Inc()
	return d
}

// buildDict renders the dictionary content for pf. Deterministic: the
// client and server builds must be byte-identical or the FDICT checksum in
// every EncZlibDict stream fails.
func buildDict(pf gfx.PixelFormat) []byte {
	bpp := pf.BytesPerPixel()
	nGlyphs := 0x7F - 0x20 // printable ASCII
	size := len(dictThemeColors)*dictColorRun*bpp + nGlyphs*7*gfx.GlyphW*bpp
	d := make([]byte, 0, size)
	var px [4]byte

	for _, c := range dictThemeColors {
		n := putPixel(px[:], pf, c)
		for i := 0; i < dictColorRun; i++ {
			d = append(d, px[:n]...)
		}
	}

	// Glyph rows as the text renderer emits them: fg where the glyph mask
	// has a pixel, bg elsewhere, including the inter-glyph spacing column.
	fg, bg := gfx.Black, gfx.LightGray
	for ch := byte(0x20); ch < 0x7F; ch++ {
		for row := 0; row < 7; row++ {
			mask := gfx.GlyphRowMask(ch, row)
			for col := 0; col < gfx.GlyphW; col++ {
				c := bg
				if mask&(1<<uint(col)) != 0 {
					c = fg
				}
				n := putPixel(px[:], pf, c)
				d = append(d, px[:n]...)
			}
		}
	}
	return d
}
