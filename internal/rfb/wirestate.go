package rfb

import (
	"uniint/internal/gfx"
	"uniint/internal/metrics"
)

// WireState is the server's per-session model of what the client currently
// holds: a shadow of the client's framebuffer (for CopyRect detection) and
// a mirror of the client's tile memory (for EncTileRef). PrepareUpdateWire
// consults it to pick the cheapest wire form of each rectangle and commits
// every encoded rectangle into it, keeping the model exact as long as the
// prepared updates are sent in order.
//
// A WireState belongs to one session and is not safe for concurrent use;
// the session's writer goroutine owns it. It survives detach/resume with
// the session (parked alongside the dirty state), but Reset must be called
// whenever the client's actual state diverges from the model: on resume
// (the reconnecting client has a fresh tile memory), after an encode error,
// and after a failed send.
type WireState struct {
	shadow *gfx.Framebuffer
	valid  bool // shadow == client framebuffer
	win    tileWindow
	cache  *TileCache // shared across sessions; may be nil
	pf     gfx.PixelFormat
	pfSet  bool
}

// NewWireState creates the wire model for a session whose client
// framebuffer is w×h. cache is the hub-wide shared tile store (nil for a
// standalone session: tile encodings still work, bodies are just never
// shared across sessions). A fresh client framebuffer is zero-filled
// (black), exactly like the fresh shadow, so the model starts valid.
func NewWireState(cache *TileCache, w, h int) *WireState {
	ws := &WireState{shadow: gfx.NewFramebuffer(w, h), valid: true, cache: cache}
	ws.win.init()
	return ws
}

// Reset discards every assumption about the client: the tile window is
// cleared (subsequent tiles re-install) and the shadow is distrusted until
// a rectangle covering the full framebuffer ships again (no CopyRect until
// then). The shadow pixels themselves are kept — only their validity flag
// drops — so a parked session's shadow still seeds the next comparison
// after the revalidating repaint.
func (ws *WireState) Reset() {
	ws.valid = false
	ws.win.init()
	ws.pfSet = false
}

// CopyRect detection constants. The search covers small displacements on
// one axis at a time — the scroll/move patterns a widget toolkit actually
// produces — and only for rectangles big enough that the 4-byte CopyRect
// body beats re-encoding by a useful margin.
const (
	copyMinArea    = 1024
	copySearchSpan = 32 // max |offset| tried per axis, in pixels
	copyProbeWidth = 32 // pixels compared per probe row before full verify
)

var (
	mCopyHits        = metrics.Default().Counter("rfb_copyrect_hits_total")
	mCopyProbePixels = metrics.Default().Counter("rfb_copyrect_probe_pixels_total")
	mDictPicks       = metrics.Default().Counter("rfb_dict_picks_total")
)

// zlibDictMinArea gates the hextile→zlib-dict upgrade: below it the zlib
// stream overhead (header + FDICT id + flush) eats the dictionary's gain.
const zlibDictMinArea = 4096

// selectAndEncode resolves one EncAdaptive rectangle against the wire
// model and appends its encoded body to dst, returning the chosen
// encoding. It tries, in order of bytes saved: CopyRect off the shadow
// (4-byte body), a tile reference (8-byte body), a tile install (shared
// encoded body reused across sessions), then the content-adaptive
// encodings with a dictionary-zlib upgrade for large GUI-like rects. ur's
// CopySrc fields are filled when EncCopyRect is chosen. The caller commits
// the rectangle afterwards (commit).
func (ws *WireState) selectAndEncode(dst []byte, fb *gfx.Framebuffer, ur *UpdateRect, pf gfx.PixelFormat, mask uint8, fallback int32, sc *encodeScratch) ([]byte, int32, error) {
	if !ws.pfSet || ws.pf != pf {
		// Tiles installed under another format decode to different client
		// pixels; drop the window so everything re-installs under pf.
		ws.win.init()
		ws.pf, ws.pfSet = pf, true
	}
	r := ur.Rect
	inShadow := !r.Empty() && r.X >= 0 && r.Y >= 0 &&
		r.MaxX() <= ws.shadow.W() && r.MaxY() <= ws.shadow.H()

	if mask&encBitCopyRect != 0 && ws.valid && inShadow && r.Area() >= copyMinArea {
		if sx, sy, ok := ws.findCopy(fb, r); ok {
			ur.CopySrcX, ur.CopySrcY = sx, sy
			var b [4]byte
			be.PutUint16(b[0:], uint16(sx))
			be.PutUint16(b[2:], uint16(sy))
			mCopyHits.Inc()
			return append(dst, b[:]...), EncCopyRect, nil
		}
	}

	const tileBits = encBitTileRef | encBitTileInstall
	if mask&tileBits == tileBits && inShadow &&
		r.Area() <= tileMaxArea && r.H <= tileMaxHeight {
		h := hashTile(fb, r)
		if ws.win.touch(h) {
			var b [8]byte
			be.PutUint64(b[:], h)
			mTileRefsSent.Inc()
			return append(dst, b[:]...), EncTileRef, nil
		}
		dst, err := ws.encodeInstall(dst, fb, r, h, pf, mask, sc)
		if err != nil {
			return nil, 0, err
		}
		ws.win.install(h)
		mTileInstallsSent.Inc()
		return dst, EncTileInstall, nil
	}

	enc := chooseEncoding(fb, r, mask, fallback, sc)
	if mask&encBitZlibDict != 0 && r.Area() >= zlibDictMinArea &&
		(enc == EncHextile || enc == EncZlib) {
		enc = EncZlibDict
		mDictPicks.Inc()
	}
	dst, err := encodeRect(dst, enc, fb, r, pf, sc)
	return dst, enc, err
}

// encodeInstall appends an EncTileInstall body: the content hash, the
// inner encoding id, and the inner body — taken from the shared cache when
// another session (or an earlier window generation) already encoded this
// tile, freshly encoded and published to the cache otherwise.
func (ws *WireState) encodeInstall(dst []byte, fb *gfx.Framebuffer, r gfx.Rect, h uint64, pf gfx.PixelFormat, mask uint8, sc *encodeScratch) ([]byte, error) {
	var hb [8]byte
	be.PutUint64(hb[:], h)
	key := tileKey{hash: h, pf: pf}
	if ws.cache != nil {
		if enc, body, ok := ws.cache.Get(key); ok {
			dst = append(dst, hb[:]...)
			var eb [4]byte
			be.PutUint32(eb[:], uint32(enc))
			dst = append(dst, eb[:]...)
			return append(dst, body...), nil
		}
	}
	// Inner bodies stick to the unconditionally-decodable encodings so a
	// cached body never depends on optional capabilities; advertising
	// EncTileInstall implies decoding raw/RRE/hextile inner bodies.
	inner := chooseEncoding(fb, r, mask&(encBitRaw|encBitRRE|encBitHextile), EncRaw, sc)
	switch inner {
	case EncRaw, EncRRE, EncHextile:
	default:
		inner = EncRaw
	}
	dst = append(dst, hb[:]...)
	var eb [4]byte
	be.PutUint32(eb[:], uint32(inner))
	dst = append(dst, eb[:]...)
	bodyStart := len(dst)
	dst, err := encodeRect(dst, inner, fb, r, pf, sc)
	if err != nil {
		return nil, err
	}
	if ws.cache != nil {
		ws.cache.Put(key, inner, dst[bodyStart:])
	}
	return dst, nil
}

// findCopy searches the shadow for existing client pixels equal to the new
// content of r, returning the source origin on a hit. Offset (0,0) is
// tried first — content that did not actually change (over-wide damage
// coalescing) degenerates to a 4-byte self-copy. The source rectangle must
// lie fully inside the shadow: partially-visible source pixels are
// unknowable client state and are never referenced.
func (ws *WireState) findCopy(fb *gfx.Framebuffer, r gfx.Rect) (sx, sy int, ok bool) {
	if ws.matchesShadow(fb, r, r.X, r.Y) {
		return r.X, r.Y, true
	}
	for d := 1; d <= copySearchSpan; d++ {
		for _, off := range [4][2]int{{0, -d}, {0, d}, {-d, 0}, {d, 0}} {
			sx, sy := r.X+off[0], r.Y+off[1]
			if sx < 0 || sy < 0 || sx+r.W > ws.shadow.W() || sy+r.H > ws.shadow.H() {
				continue
			}
			if ws.matchesShadow(fb, r, sx, sy) {
				return sx, sy, true
			}
		}
	}
	return 0, 0, false
}

// matchesShadow reports whether the shadow pixels at (sx,sy) equal fb's
// pixels inside r. Three bounded probe rows reject non-matches almost
// free; only candidates passing the probe pay a full verify.
func (ws *WireState) matchesShadow(fb *gfx.Framebuffer, r gfx.Rect, sx, sy int) bool {
	pw := min(r.W, copyProbeWidth)
	probeRows := [3]int{0, r.H / 2, r.H - 1}
	probed := 0
	for _, py := range probeRows {
		if !ws.rowsEqual(fb, r, sx, sy, py, pw) {
			mCopyProbePixels.Add(int64(probed + pw))
			return false
		}
		probed += pw
	}
	mCopyProbePixels.Add(int64(probed))
	for y := 0; y < r.H; y++ {
		if !ws.rowsEqual(fb, r, sx, sy, y, r.W) {
			return false
		}
	}
	return true
}

// rowsEqual compares the first w pixels of row y (rect-local) of fb's r
// against the shadow row at (sx, sy+y).
func (ws *WireState) rowsEqual(fb *gfx.Framebuffer, r gfx.Rect, sx, sy, y, w int) bool {
	frow := fb.Pix()[(r.Y+y)*fb.W()+r.X : (r.Y+y)*fb.W()+r.X+w]
	srow := ws.shadow.Pix()[(sy+y)*ws.shadow.W()+sx : (sy+y)*ws.shadow.W()+sx+w]
	for i, c := range frow {
		if srow[i] != c {
			return false
		}
	}
	return true
}

// commit applies one encoded rectangle to the shadow, mirroring what the
// client's decode will do: CopyRect moves shadow pixels, everything else
// blits the freshly-encoded framebuffer content. A rectangle covering the
// full framebuffer revalidates a distrusted shadow — after it, the client
// provably holds exactly the shadow again.
func (ws *WireState) commit(fb *gfx.Framebuffer, ur *UpdateRect) {
	r := ur.Rect
	if ur.Encoding == EncCopyRect {
		ws.shadow.CopyRect(r.X, r.Y, gfx.R(ur.CopySrcX, ur.CopySrcY, r.W, r.H))
		return
	}
	if fb == nil {
		return
	}
	ws.shadow.Blit(r.X, r.Y, fb, r)
	if !ws.valid && r.X <= 0 && r.Y <= 0 &&
		r.MaxX() >= ws.shadow.W() && r.MaxY() >= ws.shadow.H() {
		ws.valid = true
	}
}
