package rfb

import (
	"bytes"
	"math/rand"
	"testing"

	"uniint/internal/gfx"
)

// makeGUIFrame paints a control-panel-like image: flat panels, borders and
// text — the content class the protocol actually carries.
func makeGUIFrame(w, h int) *gfx.Framebuffer {
	f := gfx.NewFramebuffer(w, h)
	f.Clear(gfx.LightGray)
	f.Fill(gfx.R(0, 0, w, 18), gfx.Navy)
	gfx.DrawText(f, 4, 5, "TV + VCR Control Panel", gfx.White)
	for i := 0; i < 4; i++ {
		r := gfx.R(8+i*(w/4), 30, w/4-16, 24)
		f.Fill(r, gfx.Gray)
		f.Bevel(r, false)
		gfx.DrawText(f, r.X+4, r.Y+8, "Btn", gfx.Black)
	}
	f.Fill(gfx.R(10, 70, w-20, 12), gfx.White)
	f.Fill(gfx.R(10, 70, (w-20)/3, 12), gfx.Blue)
	return f
}

// makeNoiseFrame paints uncompressible noise — worst case for RRE/Hextile.
func makeNoiseFrame(w, h int, seed int64) *gfx.Framebuffer {
	rng := rand.New(rand.NewSource(seed))
	f := gfx.NewFramebuffer(w, h)
	for i := range f.Pix() {
		f.Pix()[i] = gfx.Color(rng.Uint32() & 0xFFFFFF)
	}
	return f
}

func frameClasses() map[string]*gfx.Framebuffer {
	return map[string]*gfx.Framebuffer{
		"gui":   makeGUIFrame(160, 120),
		"noise": makeNoiseFrame(160, 120, 42),
		"flat": func() *gfx.Framebuffer {
			f := gfx.NewFramebuffer(160, 120)
			f.Clear(gfx.Blue)
			return f
		}(),
	}
}

func pixelFormats() map[string]gfx.PixelFormat {
	return map[string]gfx.PixelFormat{
		"pf32": gfx.PF32(),
		"pf16": gfx.PF16(),
		"pf8":  gfx.PF8(),
	}
}

// quantize maps a frame through a pixel format the way the wire does, so
// round-trip comparisons are exact.
func quantize(f *gfx.Framebuffer, pf gfx.PixelFormat) *gfx.Framebuffer {
	q := gfx.NewFramebuffer(f.W(), f.H())
	for i, c := range f.Pix() {
		q.Pix()[i] = pf.Decode(pf.Encode(c))
	}
	return q
}

func TestEncodingRoundTrip(t *testing.T) {
	encodings := []int32{EncRaw, EncRRE, EncHextile, EncZlib}
	rects := []gfx.Rect{
		gfx.R(0, 0, 160, 120),   // full frame
		gfx.R(7, 9, 100, 50),    // interior, odd offsets
		gfx.R(0, 0, 16, 16),     // exactly one hextile tile
		gfx.R(3, 3, 17, 17),     // crosses tile boundaries
		gfx.R(150, 110, 10, 10), // bottom-right corner
		gfx.R(5, 5, 1, 1),       // single pixel
	}
	for fname, frame := range frameClasses() {
		for pfname, pf := range pixelFormats() {
			want := quantize(frame, pf)
			for _, enc := range encodings {
				for _, r := range rects {
					body, err := EncodeRectInto(nil, enc, frame, r, pf)
					if err != nil {
						t.Fatalf("%s/%s/%s: encode: %v", fname, pfname, EncodingName(enc), err)
					}
					dst := gfx.NewFramebuffer(frame.W(), frame.H())
					if err := decodeRect(bytes.NewReader(body), enc, dst, r, pf, nil); err != nil {
						t.Fatalf("%s/%s/%s %v: decode: %v", fname, pfname, EncodingName(enc), r, err)
					}
					for y := r.Y; y < r.MaxY(); y++ {
						for x := r.X; x < r.MaxX(); x++ {
							if dst.At(x, y) != want.At(x, y) {
								t.Fatalf("%s/%s/%s %v: pixel (%d,%d) = %06x, want %06x",
									fname, pfname, EncodingName(enc), r,
									x, y, dst.At(x, y), want.At(x, y))
							}
						}
					}
				}
			}
		}
	}
}

func TestEncodingDoesNotTouchOutside(t *testing.T) {
	frame := makeGUIFrame(64, 64)
	r := gfx.R(16, 16, 20, 20)
	for _, enc := range []int32{EncRaw, EncRRE, EncHextile, EncZlib} {
		body, err := EncodeRectInto(nil, enc, frame, r, gfx.PF32())
		if err != nil {
			t.Fatal(err)
		}
		dst := gfx.NewFramebuffer(64, 64)
		dst.Clear(gfx.Red)
		if err := decodeRect(bytes.NewReader(body), enc, dst, r, gfx.PF32(), nil); err != nil {
			t.Fatal(err)
		}
		for y := 0; y < 64; y++ {
			for x := 0; x < 64; x++ {
				if !r.Contains(x, y) && dst.At(x, y) != gfx.Red {
					t.Fatalf("%s painted outside rect at (%d,%d)", EncodingName(enc), x, y)
				}
			}
		}
	}
}

func TestCompactEncodingsBeatRawOnGUI(t *testing.T) {
	frame := makeGUIFrame(320, 240)
	r := frame.Bounds()
	pf := gfx.PF32()
	raw, err := EncodeRectInto(nil, EncRaw, frame, r, pf)
	if err != nil {
		t.Fatal(err)
	}
	for _, enc := range []int32{EncRRE, EncHextile, EncZlib} {
		body, err := EncodeRectInto(nil, enc, frame, r, pf)
		if err != nil {
			t.Fatal(err)
		}
		if len(body) >= len(raw) {
			t.Errorf("%s (%d bytes) should beat raw (%d bytes) on GUI content",
				EncodingName(enc), len(body), len(raw))
		}
	}
}

func TestHextileNeverBlowsUpOnNoise(t *testing.T) {
	// On noise, hextile must fall back to raw tiles and stay within a
	// small overhead of raw (1 mask byte per 16x16 tile).
	frame := makeNoiseFrame(160, 128, 7)
	pf := gfx.PF32()
	r := frame.Bounds()
	raw, _ := EncodeRectInto(nil, EncRaw, frame, r, pf)
	hex, err := EncodeRectInto(nil, EncHextile, frame, r, pf)
	if err != nil {
		t.Fatal(err)
	}
	tiles := ((r.W + 15) / 16) * ((r.H + 15) / 16)
	if len(hex) > len(raw)+tiles {
		t.Errorf("hextile on noise = %d bytes, raw = %d (+%d tiles allowed)",
			len(hex), len(raw), tiles)
	}
}

func TestDecodeRREBadCount(t *testing.T) {
	// A subrect count far beyond the rect area must be rejected.
	var buf bytes.Buffer
	writeU32(&buf, 1<<30)
	dst := gfx.NewFramebuffer(8, 8)
	err := decodeRect(&buf, EncRRE, dst, gfx.R(0, 0, 8, 8), gfx.PF32(), nil)
	if err == nil {
		t.Fatal("expected error on absurd RRE subrect count")
	}
}

func TestUnknownEncoding(t *testing.T) {
	if _, err := EncodeRectInto(nil, 999, gfx.NewFramebuffer(4, 4), gfx.R(0, 0, 4, 4), gfx.PF32()); err == nil {
		t.Error("encode with unknown encoding should fail")
	}
	if err := decodeRect(bytes.NewReader(nil), 999, gfx.NewFramebuffer(4, 4), gfx.R(0, 0, 4, 4), gfx.PF32(), nil); err == nil {
		t.Error("decode with unknown encoding should fail")
	}
}

func BenchmarkEncode(b *testing.B) {
	frames := map[string]*gfx.Framebuffer{
		"gui":   makeGUIFrame(640, 480),
		"noise": makeNoiseFrame(640, 480, 3),
	}
	for fname, frame := range frames {
		for _, enc := range []int32{EncRaw, EncRRE, EncHextile, EncZlib} {
			b.Run(fname+"/"+EncodingName(enc), func(b *testing.B) {
				pf := gfx.PF32()
				r := frame.Bounds()
				var body []byte
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var err error
					body, err = EncodeRectInto(body[:0], enc, frame, r, pf)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(body)), "bytes/frame")
			})
		}
	}
}
