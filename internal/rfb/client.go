package rfb

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"uniint/internal/gfx"
)

// ClientHandler receives server-to-client traffic after it has been applied
// to the client's shadow framebuffer. The UniInt proxy implements this to
// feed its output-conversion pipeline. Methods run on the Run goroutine.
type ClientHandler interface {
	// Updated is called after rects have been painted into the shadow
	// framebuffer. Use ClientConn.WithFramebuffer to read pixels. The
	// rects slice is reused for the next update; handlers that need the
	// rectangles past the call must copy them.
	Updated(rects []gfx.Rect)
	// Bell is called when the server rings the bell.
	Bell()
	// CutText delivers server clipboard text.
	CutText(text string)
}

// ClientConn is the proxy end of a universal interaction connection: it
// maintains a shadow of the server's framebuffer and forwards universal
// input events upstream.
type ClientConn struct {
	conn net.Conn
	br   *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer
	ws  [24]byte // write-path scratch (guarded by wmu): a stack array
	// passed through io.Writer escapes to the heap per call, which on the
	// event hot path would mean one allocation per input event.

	rs [16]byte // read-path scratch (Run goroutine only), same rationale

	fmu     sync.Mutex // guards fb, the format table and the decode scratch
	fb      *gfx.Framebuffer
	pfGen   uint8                     // generation of the last requested format
	pfByGen map[uint8]gfx.PixelFormat // decode formats by generation tag
	dsc     decodeScratch             // reusable decode buffers
	rects   []gfx.Rect                // reusable per-update rect list
	cr      countReader               // reusable byte-counting shim over br

	name      string
	presented string // resume token offered in ClientInit
	token     string // session token issued by the server
	resumed   bool   // the server accepted the presented token

	bytesSent     atomic.Int64
	bytesReceived atomic.Int64
	updatesRecv   atomic.Int64
}

// Dial performs the client side of the handshake over conn. On return the
// shadow framebuffer is allocated with the server's geometry.
func Dial(conn net.Conn) (*ClientConn, error) {
	return DialResume(conn, "")
}

// DialResume is Dial presenting a resume token from a previous session:
// a server with a parked session for the token reclaims it instead of
// starting cold. Resumed reports the verdict; Token carries the session
// token to present on the next reconnect. An empty token is a plain Dial.
func DialResume(conn net.Conn, token string) (*ClientConn, error) {
	if len(token) > MaxTokenLen {
		return nil, fmt.Errorf("rfb: resume token of %d bytes: %w", len(token), ErrBadMessage)
	}
	c := &ClientConn{
		conn:      conn,
		br:        bufio.NewReaderSize(conn, 64<<10),
		bw:        bufio.NewWriterSize(conn, 16<<10),
		pfByGen:   map[uint8]gfx.PixelFormat{0: gfx.PF32()},
		presented: token,
	}
	if err := c.handshake(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *ClientConn) handshake() error {
	ver := make([]byte, len(ProtocolVersion))
	if _, err := io.ReadFull(c.br, ver); err != nil {
		return fmt.Errorf("read server version: %w", err)
	}
	if string(ver) != ProtocolVersion {
		return ErrBadVersion
	}
	if err := writeAll(c.bw, []byte(ProtocolVersion)); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	sec, err := readU32(c.br)
	if err != nil {
		return fmt.Errorf("read security: %w", err)
	}
	if sec != secNone {
		return ErrBadSecurity
	}
	// ClientInit: request shared session, then the resume-token
	// extension (length-prefixed; zero length for a fresh session).
	if err := writeU8(c.bw, 1); err != nil {
		return err
	}
	if err := writeU8(c.bw, uint8(len(c.presented))); err != nil {
		return err
	}
	if err := writeAll(c.bw, []byte(c.presented)); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	w, err := readU16(c.br)
	if err != nil {
		return err
	}
	h, err := readU16(c.br)
	if err != nil {
		return err
	}
	pf, err := readPixelFormat(c.br)
	if err != nil {
		return err
	}
	nameLen, err := readU32(c.br)
	if err != nil {
		return err
	}
	if nameLen > 1<<16 {
		return fmt.Errorf("rfb: desktop name of %d bytes: %w", nameLen, ErrBadMessage)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(c.br, name); err != nil {
		return err
	}
	// ServerInit resume extension: the resumed verdict and the issued
	// session token.
	res, err := readU8(c.br)
	if err != nil {
		return fmt.Errorf("read resume verdict: %w", err)
	}
	tlen, err := readU8(c.br)
	if err != nil {
		return fmt.Errorf("read session token: %w", err)
	}
	var token []byte
	if tlen > 0 {
		token = make([]byte, tlen)
		if _, err := io.ReadFull(c.br, token); err != nil {
			return fmt.Errorf("read session token: %w", err)
		}
	}
	c.fb = gfx.NewFramebuffer(int(w), int(h))
	c.pfByGen[0] = pf
	c.name = string(name)
	c.resumed = res != 0
	c.token = string(token)
	return nil
}

// Name returns the desktop name announced by the server.
func (c *ClientConn) Name() string { return c.name }

// Token returns the session token the server issued during the
// handshake; present it via DialResume on the next reconnect to reclaim
// the parked session ("" when the server issues no tokens).
func (c *ClientConn) Token() string { return c.token }

// Resumed reports whether the server reclaimed a parked session for the
// presented token. When true, the server retains the pre-disconnect
// session state and will ship only damage accumulated while detached —
// the client should keep its shadow framebuffer (AdoptShadow) instead of
// demanding a full repaint.
func (c *ClientConn) Resumed() bool { return c.resumed }

// AdoptShadow copies the previous connection's shadow framebuffer into
// this one, re-establishing the pre-disconnect pixels a resumed session
// builds its incremental resync on. It reports whether the adoption
// happened (geometries must match). prev must no longer be running.
func (c *ClientConn) AdoptShadow(prev *ClientConn) bool {
	if prev == nil || prev == c {
		return false
	}
	c.fmu.Lock()
	defer c.fmu.Unlock()
	prev.fmu.Lock()
	defer prev.fmu.Unlock()
	if prev.fb.W() != c.fb.W() || prev.fb.H() != c.fb.H() {
		return false
	}
	copy(c.fb.Pix(), prev.fb.Pix())
	return true
}

// Size returns the server framebuffer geometry.
func (c *ClientConn) Size() (w, h int) {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.fb.W(), c.fb.H()
}

// WithFramebuffer runs fn with the shadow framebuffer locked. fn must not
// retain the pointer or call back into the connection.
func (c *ClientConn) WithFramebuffer(fn func(fb *gfx.Framebuffer)) {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	fn(c.fb)
}

// Snapshot returns a copy of the region r of the shadow framebuffer.
func (c *ClientConn) Snapshot(r gfx.Rect) *gfx.Framebuffer {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.fb.SubImage(r)
}

// BytesSent returns the total bytes written to the server.
func (c *ClientConn) BytesSent() int64 { return c.bytesSent.Load() }

// BytesReceived returns the total bytes read from the server.
func (c *ClientConn) BytesReceived() int64 { return c.bytesReceived.Load() }

// UpdatesReceived returns the number of FramebufferUpdate messages applied.
func (c *ClientConn) UpdatesReceived() int64 { return c.updatesRecv.Load() }

// Close tears down the transport; Run will return afterwards.
func (c *ClientConn) Close() error { return c.conn.Close() }

// SetPixelFormat asks the server to ship subsequent updates in pf. The
// switch is safe mid-stream: every FramebufferUpdate carries the
// generation of the format it was encoded under, so in-flight updates
// still decode with the format they were produced with.
func (c *ClientConn) SetPixelFormat(pf gfx.PixelFormat) error {
	if !pf.Valid() {
		return fmt.Errorf("rfb: invalid pixel format: %w", ErrBadMessage)
	}
	// Register the next generation before the message can possibly be
	// answered.
	c.fmu.Lock()
	c.pfGen++
	c.pfByGen[c.pfGen] = pf
	// Prune stale generations; only a handful can be in flight at once.
	// Generation 0 (the ServerInit format) is kept as the fallback.
	for g := range c.pfByGen {
		if g != 0 && c.pfGen-g > 16 {
			delete(c.pfByGen, g)
		}
	}
	c.fmu.Unlock()

	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := writeU8(c.bw, msgSetPixelFormat); err != nil {
		return err
	}
	if err := writeAll(c.bw, []byte{0, 0, 0}); err != nil {
		return err
	}
	if err := writePixelFormat(c.bw, pf); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	c.bytesSent.Add(20)
	return nil
}

// formatFor resolves the decode format for an update's generation tag,
// falling back to the most recently requested format. Caller holds fmu.
func (c *ClientConn) formatFor(gen uint8) gfx.PixelFormat {
	if pf, ok := c.pfByGen[gen]; ok {
		return pf
	}
	if pf, ok := c.pfByGen[c.pfGen]; ok {
		return pf
	}
	return gfx.PF32()
}

// SetEncodings advertises the encodings the proxy can decode, in
// preference order.
func (c *ClientConn) SetEncodings(encs []int32) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := writeU8(c.bw, msgSetEncodings); err != nil {
		return err
	}
	if err := writeU8(c.bw, 0); err != nil {
		return err
	}
	if err := writeU16(c.bw, uint16(len(encs))); err != nil {
		return err
	}
	for _, e := range encs {
		if err := writeU32(c.bw, uint32(e)); err != nil {
			return err
		}
	}
	c.bytesSent.Add(int64(4 + 4*len(encs)))
	return c.bw.Flush()
}

// RequestUpdate demands framebuffer contents for region r. With
// incremental true, the server may send only what changed.
func (c *ClientConn) RequestUpdate(incremental bool, r gfx.Rect) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	b := c.ws[:10]
	b[0] = msgFramebufferRequest
	if incremental {
		b[1] = 1
	} else {
		b[1] = 0
	}
	be.PutUint16(b[2:], uint16(r.X))
	be.PutUint16(b[4:], uint16(r.Y))
	be.PutUint16(b[6:], uint16(r.W))
	be.PutUint16(b[8:], uint16(r.H))
	if err := writeAll(c.bw, b); err != nil {
		return err
	}
	c.bytesSent.Add(10)
	return c.bw.Flush()
}

// SendKey forwards a universal keyboard event to the server.
func (c *ClientConn) SendKey(ev KeyEvent) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.putKeyLocked(ev); err != nil {
		return err
	}
	c.bytesSent.Add(8)
	return c.bw.Flush()
}

// InputEvent is one universal input event in batch form: exactly one of
// the pointer/key halves is meaningful, selected by IsPointer. It exists
// so a burst of translated events can cross the write path together (see
// WriteEvents). A nonzero TraceID marks the event as a sampled
// interaction: WriteEvents prefixes it with a trace-context extension
// message carrying the id and the send timestamp.
type InputEvent struct {
	IsPointer bool
	Pointer   PointerEvent
	Key       KeyEvent
	TraceID   uint64
}

// WriteEvents appends every event to the send buffer and flushes once, so
// a burst of translated device events costs one transport write instead
// of one per event. Events are transmitted in slice order.
func (c *ClientConn) WriteEvents(evs []InputEvent) error {
	if len(evs) == 0 {
		return nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var n int64
	// Count what was actually buffered even on a mid-batch error, so the
	// byte accounting matches the single-event senders (which count
	// before flushing).
	defer func() { c.bytesSent.Add(n) }()
	for i := range evs {
		ev := &evs[i]
		if ev.TraceID != 0 {
			if err := c.putTraceLocked(ev.TraceID); err != nil {
				return err
			}
			n += 17
		}
		if ev.IsPointer {
			if err := c.putPointerLocked(ev.Pointer); err != nil {
				return err
			}
			n += 6
		} else {
			if err := c.putKeyLocked(ev.Key); err != nil {
				return err
			}
			n += 8
		}
	}
	return c.bw.Flush()
}

// putTraceLocked buffers a trace-context extension message without
// flushing (wmu held): the next input event on the stream belongs to the
// sampled interaction id. The send timestamp is taken here, at the last
// moment before the bytes enter the transport buffer.
func (c *ClientConn) putTraceLocked(id uint64) error {
	b := c.ws[:17]
	b[0] = msgTraceContext
	be.PutUint64(b[1:], id)
	be.PutUint64(b[9:], uint64(time.Now().UnixNano()))
	return writeAll(c.bw, b)
}

// putKeyLocked buffers a key event without flushing (wmu held).
func (c *ClientConn) putKeyLocked(ev KeyEvent) error {
	b := c.ws[:8]
	b[0] = msgKeyEvent
	if ev.Down {
		b[1] = 1
	} else {
		b[1] = 0
	}
	b[2], b[3] = 0, 0
	be.PutUint32(b[4:], ev.Key)
	return writeAll(c.bw, b)
}

// putPointerLocked buffers a pointer event without flushing (wmu held).
func (c *ClientConn) putPointerLocked(ev PointerEvent) error {
	b := c.ws[:6]
	b[0] = msgPointerEvent
	b[1] = ev.Buttons
	be.PutUint16(b[2:], ev.X)
	be.PutUint16(b[4:], ev.Y)
	return writeAll(c.bw, b)
}

// SendPointer forwards a universal pointer event to the server.
func (c *ClientConn) SendPointer(ev PointerEvent) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.putPointerLocked(ev); err != nil {
		return err
	}
	c.bytesSent.Add(6)
	return c.bw.Flush()
}

// SendCutText ships clipboard text to the server.
func (c *ClientConn) SendCutText(text string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := writeU8(c.bw, msgClientCutText); err != nil {
		return err
	}
	if err := writeAll(c.bw, []byte{0, 0, 0}); err != nil {
		return err
	}
	if err := writeU32(c.bw, uint32(len(text))); err != nil {
		return err
	}
	if err := writeAll(c.bw, []byte(text)); err != nil {
		return err
	}
	c.bytesSent.Add(int64(8 + len(text)))
	return c.bw.Flush()
}

// Run reads server messages until the connection fails, applying updates
// to the shadow framebuffer and notifying h. It always returns a non-nil
// error; io.EOF means orderly shutdown.
func (c *ClientConn) Run(h ClientHandler) error {
	for {
		t, err := c.br.ReadByte() // concrete call: no per-message escape
		if err != nil {
			return err
		}
		c.bytesReceived.Add(1)
		switch t {
		case msgFramebufferUpdate:
			if _, err := io.ReadFull(c.br, c.rs[:3]); err != nil {
				return err
			}
			gen := c.rs[0] // format generation in the pad byte
			n := be.Uint16(c.rs[1:3])
			c.bytesReceived.Add(3)
			c.fmu.Lock()
			rects := c.rects[:0]
			pf := c.formatFor(gen)
			for i := 0; i < int(n); i++ {
				hdr := c.rs[:12]
				if _, err := io.ReadFull(c.br, hdr); err != nil {
					c.fmu.Unlock()
					return err
				}
				r := gfx.R(
					int(be.Uint16(hdr[0:])), int(be.Uint16(hdr[2:])),
					int(be.Uint16(hdr[4:])), int(be.Uint16(hdr[6:])),
				)
				enc := int32(be.Uint32(hdr[8:]))
				c.bytesReceived.Add(12)
				if enc == EncCopyRect {
					src := c.rs[12:16]
					if _, err := io.ReadFull(c.br, src); err != nil {
						c.fmu.Unlock()
						return err
					}
					c.bytesReceived.Add(4)
					c.fb.CopyRect(r.X, r.Y, gfx.R(
						int(be.Uint16(src[0:])), int(be.Uint16(src[2:])), r.W, r.H))
				} else {
					c.cr.r, c.cr.n = c.br, 0
					if err := decodeRect(&c.cr, enc, c.fb, r, pf, &c.dsc); err != nil {
						c.fmu.Unlock()
						return err
					}
					c.bytesReceived.Add(c.cr.n)
				}
				rects = append(rects, r)
			}
			c.rects = rects
			c.fmu.Unlock()
			c.updatesRecv.Add(1)
			if h != nil {
				// rects is reused for the next update; the ClientHandler
				// contract requires handlers to copy it to retain it.
				h.Updated(rects)
			}

		case msgBell:
			if h != nil {
				h.Bell()
			}

		case msgServerCutText:
			if _, err := io.ReadFull(c.br, c.rs[:3]); err != nil {
				return err
			}
			n, err := readU32(c.br)
			if err != nil {
				return err
			}
			if n > 1<<20 {
				return fmt.Errorf("rfb: cut text of %d bytes: %w", n, ErrBadMessage)
			}
			txt := make([]byte, n)
			if _, err := io.ReadFull(c.br, txt); err != nil {
				return err
			}
			c.bytesReceived.Add(int64(7 + n))
			if h != nil {
				h.CutText(string(txt))
			}

		default:
			return fmt.Errorf("rfb: unknown server message %d: %w", t, ErrBadMessage)
		}
	}
}

// countReader counts bytes flowing through it.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
