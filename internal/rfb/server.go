package rfb

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"uniint/internal/gfx"
)

// ServerHandler receives the universal input events and update demands
// arriving from the proxy. Implementations are provided by the UniInt
// server (internal/uniserver), which injects the events into the window
// system. Methods are called sequentially from the connection's read loop.
type ServerHandler interface {
	// KeyEvent delivers a universal keyboard event.
	KeyEvent(ev KeyEvent)
	// PointerEvent delivers a universal pointer event.
	PointerEvent(ev PointerEvent)
	// UpdateRequest delivers the client's demand for framebuffer contents.
	UpdateRequest(req UpdateRequest)
	// CutText delivers client-side clipboard text.
	CutText(text string)
}

// TokenExchange resolves the resume token a connecting client presented
// (empty for a fresh session) into the token the session will carry and
// whether the connection reclaims a parked server-side session. It runs
// during the handshake, between ClientInit and ServerInit, so the
// resolution is visible to the client in the same round trip.
type TokenExchange func(presented string) (issued string, resumed bool)

// MaxTokenLen bounds the resume token carried in the handshake (one
// length byte on the wire).
const MaxTokenLen = 255

// ServerConn is the server end of a universal interaction connection. It is
// created after a successful handshake and serves exactly one proxy.
//
// Writes (SendUpdate, Bell, …) may be issued from any goroutine; the read
// loop (Serve) runs on its own goroutine and invokes the handler.
type ServerConn struct {
	conn net.Conn
	br   *bufio.Reader
	rs   [16]byte // read-path scratch (Serve goroutine only): a stack
	// array passed through io.Reader escapes to the heap per call, which
	// on the input hot path would mean allocations on every event.

	wmu sync.Mutex  // serializes writes and guards cw
	cw  countWriter // reusable byte-counting shim over the wire buffer

	smu       sync.Mutex // guards negotiated state
	pf        gfx.PixelFormat
	pfGen     uint8 // bumped on every SetPixelFormat; tags updates
	encodings []int32
	encMask   uint8 // capability bits derived from encodings

	width, height int
	name          string
	token         string // session token issued during the handshake
	resumed       bool   // the client reclaimed a parked session

	bytesSent     atomic.Int64
	bytesReceived atomic.Int64
	updatesSent   atomic.Int64

	// Pending trace context (Serve goroutine only, like rs): set by a
	// trace-context extension message, consumed by the next input event's
	// handler via TakeTraceContext.
	traceID uint64
	traceAt int64

	// feed retains a partial client message between Feed calls (edge
	// connections only; read-turn-serialized like rs). Empty in steady
	// state — it grows only while a message straddles a readiness window.
	feed []byte
}

// NewServerConn performs the server side of the handshake over conn and
// returns a ready connection. width/height/name describe the served
// desktop (the home appliance application's control panel surface). No
// resume token is issued; session parking needs NewServerConnToken.
func NewServerConn(conn net.Conn, width, height int, name string) (*ServerConn, error) {
	return NewServerConnToken(conn, width, height, name, nil)
}

// NewServerConnToken is NewServerConn with a resume-token exchange: the
// token the client presented in ClientInit is resolved through ex, and
// the issued token plus the resumed verdict travel back in ServerInit. A
// nil ex issues no token and never resumes.
func NewServerConnToken(conn net.Conn, width, height int, name string, ex TokenExchange) (*ServerConn, error) {
	s := &ServerConn{
		conn:   conn,
		br:     bufio.NewReaderSize(conn, 32<<10),
		pf:     gfx.PF32(),
		width:  width,
		height: height,
		name:   name,
	}
	if err := s.handshake(ex); err != nil {
		conn.Close()
		return nil, err
	}
	return s, nil
}

// wireBufSize is the write-side buffer: large enough that a typical
// FramebufferUpdate flushes in one transport write.
const wireBufSize = 64 << 10

// wireBufPool holds the write-side buffers. A connection checks one out
// per write operation (under wmu) instead of pinning one for its lifetime,
// so buffered write memory scales with concurrent sends — O(active
// writers) — rather than with connections: the dominant per-idle-session
// cost at fleet scale.
var wireBufPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(io.Discard, wireBufSize) },
}

// getWire checks a write buffer out of the pool, aimed at w.
func getWire(w io.Writer) *bufio.Writer {
	bw := wireBufPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

// putWire returns a write buffer, dropping any unflushed bytes (a failed
// send leaves some; the connection is dead at that point) and its sticky
// error along with the transport reference.
func putWire(bw *bufio.Writer) {
	bw.Reset(io.Discard)
	wireBufPool.Put(bw)
}

func (s *ServerConn) handshake(ex TokenExchange) error {
	bw := getWire(s.conn)
	err := s.handshakeWire(bw, ex)
	putWire(bw)
	return err
}

func (s *ServerConn) handshakeWire(bw *bufio.Writer, ex TokenExchange) error {
	// Version exchange.
	if err := writeAll(bw, []byte(ProtocolVersion)); err != nil {
		return fmt.Errorf("send version: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	ver := make([]byte, len(ProtocolVersion))
	if _, err := io.ReadFull(s.br, ver); err != nil {
		return fmt.Errorf("read client version: %w", err)
	}
	if string(ver) != ProtocolVersion {
		return ErrBadVersion
	}
	// Security: none.
	if err := writeU32(bw, secNone); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// ClientInit (shared flag, ignored) plus the resume-token extension:
	// a length-prefixed token the client carried over from a previous
	// connection (zero length for a fresh session).
	if _, err := readU8(s.br); err != nil {
		return fmt.Errorf("read client init: %w", err)
	}
	tlen, err := readU8(s.br)
	if err != nil {
		return fmt.Errorf("read resume token: %w", err)
	}
	var presented string
	if tlen > 0 {
		tok := make([]byte, tlen)
		if _, err := io.ReadFull(s.br, tok); err != nil {
			return fmt.Errorf("read resume token: %w", err)
		}
		presented = string(tok)
	}
	if ex != nil {
		s.token, s.resumed = ex(presented)
		if len(s.token) > MaxTokenLen {
			return fmt.Errorf("rfb: issued token of %d bytes: %w", len(s.token), ErrBadMessage)
		}
	}
	// ServerInit.
	if err := writeU16(bw, uint16(s.width)); err != nil {
		return err
	}
	if err := writeU16(bw, uint16(s.height)); err != nil {
		return err
	}
	if err := writePixelFormat(bw, s.pf); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(s.name))); err != nil {
		return err
	}
	if err := writeAll(bw, []byte(s.name)); err != nil {
		return err
	}
	// ServerInit resume extension: the resumed verdict plus the issued
	// session token (zero length when no exchange is installed).
	var resumed uint8
	if s.resumed {
		resumed = 1
	}
	if err := writeU8(bw, resumed); err != nil {
		return err
	}
	if err := writeU8(bw, uint8(len(s.token))); err != nil {
		return err
	}
	if err := writeAll(bw, []byte(s.token)); err != nil {
		return err
	}
	return bw.Flush()
}

// TakeTraceContext returns and clears the trace context attached to the
// input event currently being dispatched: the sampled interaction's id
// and the client-side send timestamp (UnixNano). It is only meaningful
// from inside a ServerHandler callback (the Serve goroutine); (0, 0)
// means the event is untraced.
func (s *ServerConn) TakeTraceContext() (id uint64, sentAt int64) {
	id, sentAt = s.traceID, s.traceAt
	s.traceID, s.traceAt = 0, 0
	return id, sentAt
}

// Token returns the session token issued during the handshake ("" when
// the connection was created without a token exchange).
func (s *ServerConn) Token() string { return s.token }

// Resumed reports whether the client reclaimed a parked session during
// the handshake.
func (s *ServerConn) Resumed() bool { return s.resumed }

// PixelFormat returns the pixel format currently requested by the client.
func (s *ServerConn) PixelFormat() gfx.PixelFormat {
	s.smu.Lock()
	defer s.smu.Unlock()
	return s.pf
}

// pixelFormatGen returns the format together with its generation number.
// Every FramebufferUpdate is tagged with the generation it was encoded
// under (in the header's padding byte), so the client can decode in-flight
// updates correctly across a format switch — the race a mid-session
// SetPixelFormat would otherwise create on a streaming connection.
func (s *ServerConn) pixelFormatGen() (gfx.PixelFormat, uint8) {
	s.smu.Lock()
	defer s.smu.Unlock()
	return s.pf, s.pfGen
}

// Encodings returns the client's advertised encodings in preference order.
func (s *ServerConn) Encodings() []int32 {
	s.smu.Lock()
	defer s.smu.Unlock()
	out := make([]int32, len(s.encodings))
	copy(out, s.encodings)
	return out
}

// PreferredEncoding returns the first client-advertised encoding this
// server can produce, falling back to Raw.
func (s *ServerConn) PreferredEncoding() int32 {
	s.smu.Lock()
	defer s.smu.Unlock()
	return s.preferredLocked()
}

// preferredLocked is PreferredEncoding with smu already held (alloc-free,
// unlike Encodings which copies).
func (s *ServerConn) preferredLocked() int32 {
	for _, e := range s.encodings {
		switch e {
		case EncRaw, EncRRE, EncHextile, EncZlib, EncZlibDict:
			return e
		}
	}
	return EncRaw
}

// BytesSent returns the total bytes written to the client so far.
func (s *ServerConn) BytesSent() int64 { return s.bytesSent.Load() }

// BytesReceived returns the total bytes read from the client so far.
func (s *ServerConn) BytesReceived() int64 { return s.bytesReceived.Load() }

// UpdatesSent returns the number of FramebufferUpdate messages sent.
func (s *ServerConn) UpdatesSent() int64 { return s.updatesSent.Load() }

// Close tears down the transport; Serve will return afterwards.
func (s *ServerConn) Close() error { return s.conn.Close() }

// Serve reads client messages until the connection fails or closes,
// dispatching each to h. It always returns a non-nil error; io.EOF and
// closed-connection errors mean an orderly shutdown.
func (s *ServerConn) Serve(h ServerHandler) error {
	for {
		t, err := s.br.ReadByte() // concrete call: no per-message escape
		if err != nil {
			return err
		}
		s.bytesReceived.Add(1)
		switch t {
		case msgSetPixelFormat:
			if _, err := io.ReadFull(s.br, s.rs[:3]); err != nil {
				return err
			}
			pf, err := readPixelFormat(s.br)
			if err != nil {
				return err
			}
			s.bytesReceived.Add(19)
			if !pf.Valid() {
				return fmt.Errorf("rfb: client sent invalid pixel format: %w", ErrBadMessage)
			}
			s.smu.Lock()
			s.pf = pf
			s.pfGen++
			s.smu.Unlock()

		case msgSetEncodings:
			if _, err := readU8(s.br); err != nil {
				return err
			}
			n, err := readU16(s.br)
			if err != nil {
				return err
			}
			encs := make([]int32, n)
			for i := range encs {
				v, err := readU32(s.br)
				if err != nil {
					return err
				}
				encs[i] = int32(v)
			}
			s.bytesReceived.Add(int64(3 + 4*int(n)))
			s.smu.Lock()
			s.encodings = encs
			s.encMask = encodingMask(encs)
			s.smu.Unlock()

		case msgFramebufferRequest:
			b := s.rs[:9] // incremental flag + geometry
			if _, err := io.ReadFull(s.br, b); err != nil {
				return err
			}
			s.bytesReceived.Add(9)
			h.UpdateRequest(UpdateRequest{
				Incremental: b[0] != 0,
				Region: gfx.R(
					int(be.Uint16(b[1:])), int(be.Uint16(b[3:])),
					int(be.Uint16(b[5:])), int(be.Uint16(b[7:])),
				),
			})

		case msgKeyEvent:
			b := s.rs[:7] // down flag + padding + keysym
			if _, err := io.ReadFull(s.br, b); err != nil {
				return err
			}
			s.bytesReceived.Add(7)
			h.KeyEvent(KeyEvent{Down: b[0] != 0, Key: be.Uint32(b[3:])})

		case msgPointerEvent:
			b := s.rs[:5] // button mask + position
			if _, err := io.ReadFull(s.br, b); err != nil {
				return err
			}
			s.bytesReceived.Add(5)
			h.PointerEvent(PointerEvent{Buttons: b[0], X: be.Uint16(b[1:]), Y: be.Uint16(b[3:])})

		case msgTraceContext:
			b := s.rs[:16] // trace id + client send time
			if _, err := io.ReadFull(s.br, b); err != nil {
				return err
			}
			s.bytesReceived.Add(16)
			s.traceID = be.Uint64(b[0:])
			s.traceAt = int64(be.Uint64(b[8:]))

		case msgClientCutText:
			if _, err := io.ReadFull(s.br, s.rs[:3]); err != nil {
				return err
			}
			n, err := readU32(s.br)
			if err != nil {
				return err
			}
			if n > 1<<20 {
				return fmt.Errorf("rfb: cut text of %d bytes: %w", n, ErrBadMessage)
			}
			txt := make([]byte, n)
			if _, err := io.ReadFull(s.br, txt); err != nil {
				return err
			}
			s.bytesReceived.Add(int64(7 + n))
			h.CutText(string(txt))

		default:
			return fmt.Errorf("rfb: unknown client message %d: %w", t, ErrBadMessage)
		}
	}
}

// UpdateRect pairs a damage rectangle with the encoding to ship it with.
type UpdateRect struct {
	Rect     gfx.Rect
	Encoding int32
	// CopySrcX/CopySrcY are used only when Encoding == EncCopyRect.
	CopySrcX, CopySrcY int
}

// SendUpdate ships the given rectangles of fb to the client in one
// FramebufferUpdate message, choosing the encoding for each rectangle
// adaptively from its content (falling back to the client's preference
// when the client advertised too little to adapt). Rectangles are clipped
// to the framebuffer.
func (s *ServerConn) SendUpdate(fb *gfx.Framebuffer, rects []gfx.Rect) error {
	urs := make([]UpdateRect, 0, len(rects))
	for _, r := range rects {
		r = r.Intersect(fb.Bounds())
		if r.Empty() {
			continue
		}
		urs = append(urs, UpdateRect{Rect: r, Encoding: EncAdaptive})
	}
	return s.SendUpdateRects(fb, urs)
}

// SendUpdateRects ships explicitly described rectangles (including
// CopyRect moves). fb may be nil when every rectangle is a CopyRect.
func (s *ServerConn) SendUpdateRects(fb *gfx.Framebuffer, rects []UpdateRect) error {
	prep, err := s.PrepareUpdate(fb, rects)
	if err != nil {
		return err
	}
	return s.SendPrepared(prep)
}

// PreparedUpdate is an encoded-but-unsent FramebufferUpdate. Preparing
// (CPU-bound, reads the framebuffer) and sending (blocking I/O) are split
// so callers can encode while holding a framebuffer lock and transmit
// after releasing it.
//
// A PreparedUpdate is backed by pooled scratch: every rectangle body lives
// in one shared buffer, and SendPrepared (or Release) returns the storage
// to the pool. A PreparedUpdate must therefore be transmitted or released
// exactly once and never touched afterwards.
type PreparedUpdate struct {
	rects []UpdateRect
	spans [][2]int // [start,end) offsets of each body in buf
	buf   []byte
	pfGen uint8
	sc    *encodeScratch // owning scratch; nil once consumed
}

// Empty reports whether the update carries no rectangles.
func (p *PreparedUpdate) Empty() bool { return p == nil || len(p.rects) == 0 }

// Size returns the update's on-wire size in bytes (message header plus
// per-rectangle headers and encoded bodies) — the bandwidth-side metric
// of an update before it is transmitted.
func (p *PreparedUpdate) Size() int {
	if p.Empty() {
		return 0
	}
	return 4 + 12*len(p.rects) + len(p.buf)
}

// Release returns the update's pooled storage without transmitting it.
// Safe to call on a nil or already-consumed update.
func (p *PreparedUpdate) Release() {
	if p == nil || p.sc == nil {
		return
	}
	putScratch(p.sc)
}

// PrepareUpdate encodes the given rectangles against fb using the client's
// current pixel format, resolving EncAdaptive per rectangle from its
// content. fb may be nil when every rectangle is a CopyRect. The returned
// update is backed by pooled scratch; pass it to SendPrepared or Release
// it.
func (s *ServerConn) PrepareUpdate(fb *gfx.Framebuffer, rects []UpdateRect) (*PreparedUpdate, error) {
	return s.prepareUpdate(fb, rects, nil)
}

// PrepareUpdateWire is PrepareUpdate with the wire-efficiency tier: ws
// tracks what this session's client already holds, letting EncAdaptive
// rectangles resolve to CopyRect moves, tile references/installs and
// dictionary-zlib in addition to the content-adaptive encodings — always
// restricted to what the client advertised. Every encoded rectangle is
// committed into ws, so prepared updates must be sent to the client in
// preparation order; call ws.Reset after a failed send or prepare.
func (s *ServerConn) PrepareUpdateWire(fb *gfx.Framebuffer, rects []UpdateRect, ws *WireState) (*PreparedUpdate, error) {
	return s.prepareUpdate(fb, rects, ws)
}

func (s *ServerConn) prepareUpdate(fb *gfx.Framebuffer, rects []UpdateRect, ws *WireState) (*PreparedUpdate, error) {
	pf, gen := s.pixelFormatGen()
	s.smu.Lock()
	mask := s.encMask
	fallback := s.preferredLocked()
	s.smu.Unlock()

	sc := getScratch()
	prep := &sc.prep
	prep.sc = sc
	prep.pfGen = gen
	prep.rects = append(prep.rects[:0], rects...)
	prep.spans = prep.spans[:0]
	prep.buf = prep.buf[:0]
	for i := range prep.rects {
		ur := &prep.rects[i]
		start := len(prep.buf)
		switch {
		case ur.Encoding == EncCopyRect:
			var b [4]byte
			be.PutUint16(b[0:], uint16(ur.CopySrcX))
			be.PutUint16(b[2:], uint16(ur.CopySrcY))
			prep.buf = append(prep.buf, b[:]...)

		case ur.Encoding == EncAdaptive && ws != nil && fb != nil:
			buf, enc, err := ws.selectAndEncode(prep.buf, fb, ur, pf, mask, fallback, sc)
			if err != nil {
				prep.Release()
				ws.Reset()
				return nil, err
			}
			prep.buf = buf
			ur.Encoding = enc

		default:
			if ur.Encoding == EncAdaptive {
				ur.Encoding = chooseEncoding(fb, ur.Rect, mask, fallback, sc)
			}
			buf, err := encodeRect(prep.buf, ur.Encoding, fb, ur.Rect, pf, sc)
			if err != nil {
				prep.Release()
				if ws != nil {
					ws.Reset()
				}
				return nil, err
			}
			prep.buf = buf
		}
		prep.spans = append(prep.spans, [2]int{start, len(prep.buf)})
		countEncodedBytes(ur.Encoding, len(prep.buf)-start)
		if ws != nil {
			ws.commit(fb, ur)
		}
	}
	return prep, nil
}

// SendPrepared transmits a previously prepared update and releases its
// pooled storage (also on error); the update must not be used afterwards.
func (s *ServerConn) SendPrepared(prep *PreparedUpdate) error {
	defer prep.Release()
	if prep.Empty() {
		return nil
	}
	s.wmu.Lock()
	bw := getWire(s.conn)
	err := s.sendPreparedWire(bw, prep)
	putWire(bw)
	s.wmu.Unlock()
	return err
}

func (s *ServerConn) sendPreparedWire(bw *bufio.Writer, prep *PreparedUpdate) error {
	cw := &s.cw
	cw.w, cw.n = bw, 0
	if err := writeU8(cw, msgFramebufferUpdate); err != nil {
		return err
	}
	// The padding byte of RFB carries the pixel-format generation here.
	if err := writeU8(cw, prep.pfGen); err != nil {
		return err
	}
	if err := writeU16(cw, uint16(len(prep.rects))); err != nil {
		return err
	}
	for i, ur := range prep.rects {
		var hdr [12]byte
		be.PutUint16(hdr[0:], uint16(ur.Rect.X))
		be.PutUint16(hdr[2:], uint16(ur.Rect.Y))
		be.PutUint16(hdr[4:], uint16(ur.Rect.W))
		be.PutUint16(hdr[6:], uint16(ur.Rect.H))
		be.PutUint32(hdr[8:], uint32(ur.Encoding))
		if err := writeAll(cw, hdr[:]); err != nil {
			return err
		}
		span := prep.spans[i]
		if err := writeAll(cw, prep.buf[span[0]:span[1]]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	s.bytesSent.Add(cw.n)
	s.updatesSent.Add(1)
	return nil
}

// SendEmptyUpdate transmits a FramebufferUpdate with zero rectangles, so
// that a request whose region clips to nothing still receives exactly one
// reply (demand-driven clients pair requests with updates).
func (s *ServerConn) SendEmptyUpdate() error {
	_, gen := s.pixelFormatGen()
	s.wmu.Lock()
	bw := getWire(s.conn)
	err := sendEmptyWire(bw, gen)
	putWire(bw)
	if err == nil {
		s.bytesSent.Add(4)
		s.updatesSent.Add(1)
	}
	s.wmu.Unlock()
	return err
}

func sendEmptyWire(bw *bufio.Writer, gen uint8) error {
	if err := writeU8(bw, msgFramebufferUpdate); err != nil {
		return err
	}
	if err := writeU8(bw, gen); err != nil {
		return err
	}
	if err := writeU16(bw, 0); err != nil {
		return err
	}
	return bw.Flush()
}

// Bell rings the client's bell (used by appliances to signal attention).
func (s *ServerConn) Bell() error {
	s.wmu.Lock()
	bw := getWire(s.conn)
	err := writeU8(bw, msgBell)
	if err == nil {
		err = bw.Flush()
	}
	putWire(bw)
	if err == nil {
		s.bytesSent.Add(1)
	}
	s.wmu.Unlock()
	return err
}

// SendCutText ships server-side clipboard text to the client.
func (s *ServerConn) SendCutText(text string) error {
	s.wmu.Lock()
	bw := getWire(s.conn)
	err := sendCutTextWire(bw, text)
	putWire(bw)
	if err == nil {
		s.bytesSent.Add(int64(8 + len(text)))
	}
	s.wmu.Unlock()
	return err
}

func sendCutTextWire(bw *bufio.Writer, text string) error {
	if err := writeU8(bw, msgServerCutText); err != nil {
		return err
	}
	if err := writeAll(bw, []byte{0, 0, 0}); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(text))); err != nil {
		return err
	}
	if err := writeAll(bw, []byte(text)); err != nil {
		return err
	}
	return bw.Flush()
}

// countWriter counts bytes flowing through it.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
