package rfb

import (
	"bytes"
	"compress/zlib"
	"sync"

	"uniint/internal/gfx"
	"uniint/internal/metrics"
)

// The update pipeline's per-encode working set lives in pooled scratch
// buffers so the steady-state hot loop (damage → encode → write) performs
// zero allocations. One encodeScratch carries everything an encode pass
// needs: the output buffer, the run/subrectangle scratch shared by RRE and
// hextile, the color census table used by both the encoders and the
// adaptive probe, and the reusable zlib machinery.
//
// Scratches are handed out by getScratch/putScratch around a sync.Pool.
// The pool's hit rate is exported through the rfb_scratch_pool_* counters:
// hit rate = 1 - misses/gets.

// Pre-resolved instruments; the hot path touches only atomics.
var (
	mPoolGets   = metrics.Default().Counter("rfb_scratch_pool_gets_total")
	mPoolMisses = metrics.Default().Counter("rfb_scratch_pool_misses_total")

	mBytesRaw         = metrics.Default().Counter("rfb_encode_raw_bytes_total")
	mBytesRRE         = metrics.Default().Counter("rfb_encode_rre_bytes_total")
	mBytesHextile     = metrics.Default().Counter("rfb_encode_hextile_bytes_total")
	mBytesZlib        = metrics.Default().Counter("rfb_encode_zlib_bytes_total")
	mBytesCopy        = metrics.Default().Counter("rfb_encode_copyrect_bytes_total")
	mBytesZlibDict    = metrics.Default().Counter("rfb_encode_zlibdict_bytes_total")
	mBytesTileInstall = metrics.Default().Counter("rfb_encode_tileinstall_bytes_total")
	mBytesTileRef     = metrics.Default().Counter("rfb_encode_tileref_bytes_total")
)

// countEncodedBytes attributes one rectangle body to its encoding's
// bytes-out counter.
func countEncodedBytes(enc int32, n int) {
	switch enc {
	case EncRaw:
		mBytesRaw.Add(int64(n))
	case EncRRE:
		mBytesRRE.Add(int64(n))
	case EncHextile:
		mBytesHextile.Add(int64(n))
	case EncZlib:
		mBytesZlib.Add(int64(n))
	case EncCopyRect:
		mBytesCopy.Add(int64(n))
	case EncZlibDict:
		mBytesZlibDict.Add(int64(n))
	case EncTileInstall:
		mBytesTileInstall.Add(int64(n))
	case EncTileRef:
		mBytesTileRef.Add(int64(n))
	}
}

// rreSub is one solid subrectangle found by the run scanners.
type rreSub struct {
	c          gfx.Color
	x, y, w, h int
}

// histSize is the color census capacity: a power of two comfortably above
// the 256 pixels of a hextile tile and the adaptive probe's sample budget,
// so those censuses are exact. Bigger rects (RRE background scans) may
// saturate the table; saturation only degrades the background choice, not
// correctness.
const histSize = 1024

// maxHistProbe bounds the open-addressing walk so a census over
// adversarial content stays O(1) per pixel.
const maxHistProbe = 16

// colorHist is a generation-tagged open-addressing color counter. Reset is
// O(1): it bumps the generation, invalidating every slot lazily.
type colorHist struct {
	keys   [histSize]gfx.Color
	counts [histSize]int32
	gens   [histSize]uint32
	gen    uint32

	distinct  int  // number of live slots
	saturated bool // at least one color was dropped
}

func (h *colorHist) reset() {
	h.gen++
	if h.gen == 0 { // generation wrapped: hard-clear the tags once
		h.gens = [histSize]uint32{}
		h.gen = 1
	}
	h.distinct = 0
	h.saturated = false
}

func hashColor(c gfx.Color) uint32 {
	return uint32(c) * 2654435761 // Knuth multiplicative hash
}

// add counts one pixel. Returns the color's slot count after the add, or 0
// when the table is saturated and the color was dropped.
func (h *colorHist) add(c gfx.Color) int32 {
	i := hashColor(c) & (histSize - 1)
	for p := 0; p < maxHistProbe; p++ {
		if h.gens[i] != h.gen {
			h.gens[i] = h.gen
			h.keys[i] = c
			h.counts[i] = 1
			h.distinct++
			return 1
		}
		if h.keys[i] == c {
			h.counts[i]++
			return h.counts[i]
		}
		i = (i + 1) & (histSize - 1)
	}
	h.saturated = true
	return 0
}

// max returns the most frequent counted color.
func (h *colorHist) max() (gfx.Color, int32) {
	var best gfx.Color
	var bestN int32 = -1
	if h.distinct == 0 {
		return best, 0
	}
	seen := 0
	for i := 0; i < histSize && seen < h.distinct; i++ {
		if h.gens[i] != h.gen {
			continue
		}
		seen++
		if h.counts[i] > bestN || (h.counts[i] == bestN && h.keys[i] < best) {
			best, bestN = h.keys[i], h.counts[i]
		}
	}
	return best, bestN
}

// other returns a live color different from c (used for the hextile
// two-color fast path).
func (h *colorHist) other(c gfx.Color) gfx.Color {
	seen := 0
	for i := 0; i < histSize && seen < h.distinct; i++ {
		if h.gens[i] != h.gen {
			continue
		}
		seen++
		if h.keys[i] != c {
			return h.keys[i]
		}
	}
	return c
}

// encodeScratch is the pooled working set of one encode pass.
type encodeScratch struct {
	prep PreparedUpdate // reused PreparedUpdate shell (bodies live in prep.buf)
	subs []rreSub       // RRE / hextile run scratch
	hist colorHist      // color census (encoders + adaptive probe)

	raw  []byte       // zlib: staging buffer for the raw pre-image
	zbuf bytes.Buffer // zlib: compressed output staging
	zw   *zlib.Writer // zlib: reusable compressor

	// zlib-dict compressor: Reset retains the preset dictionary, so the
	// writer is only rebuilt when the pixel format (and with it the
	// dictionary) changes.
	zwd   *zlib.Writer
	zwdPF gfx.PixelFormat
}

var scratchPool = sync.Pool{
	New: func() any {
		mPoolMisses.Inc()
		return &encodeScratch{}
	},
}

func getScratch() *encodeScratch {
	mPoolGets.Inc()
	return scratchPool.Get().(*encodeScratch)
}

func putScratch(sc *encodeScratch) {
	if sc == nil {
		return
	}
	sc.prep.sc = nil
	scratchPool.Put(sc)
}

// decodeScratch is the client-side counterpart: reusable buffers for the
// decode loop so a streaming viewer does not allocate per rectangle.
type decodeScratch struct {
	row  []byte        // raw: one row of wire pixels
	comp []byte        // zlib: compressed body staging
	zr   zlibResetter  // zlib: reusable decompressor
	zrr  *bytes.Reader // zlib: reusable source reader

	tiles clientTiles // tile encodings: the connection's tile memory
}

// zlibResetter is the stdlib's resettable zlib reader (zlib.NewReader
// always returns it; the interface is split out for testability).
type zlibResetter interface {
	zlib.Resetter
	Read([]byte) (int, error)
	Close() error
}

// grow returns b with at least n capacity and length n.
func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}
