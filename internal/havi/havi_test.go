package havi

import (
	"errors"
	"sync"
	"testing"
)

func testControls() []Control {
	return []Control{
		{ID: "power", Label: "Power", Kind: ControlToggle},
		{ID: "volume", Label: "Volume", Kind: ControlRange, Min: 0, Max: 100, Init: 25},
		{ID: "mute", Label: "Mute", Kind: ControlToggle},
		{ID: "play", Label: "Play", Kind: ControlAction},
		{ID: "counter", Label: "Counter", Kind: ControlReadout},
		{ID: "input", Label: "Input", Kind: ControlSelect, Options: []string{"tuner", "aux"}},
	}
}

func TestSEIDString(t *testing.T) {
	id := SEID{GUID: 0xAB, Handle: 3}
	if got := id.String(); got != "00000000000000ab/3" {
		t.Errorf("String = %q", got)
	}
	g, err := ParseGUID(GUID(0xAB).String())
	if err != nil || g != 0xAB {
		t.Errorf("ParseGUID round trip: %v %v", g, err)
	}
	if _, err := ParseGUID("not-hex"); err == nil {
		t.Error("ParseGUID should reject garbage")
	}
}

func TestDispatcherOrderAndIdle(t *testing.T) {
	d := newDispatcher()
	defer d.stop()
	var mu sync.Mutex
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		d.post(func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		})
	}
	d.waitIdle()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 100 {
		t.Fatalf("executed %d of 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order violated at %d: %d", i, v)
		}
	}
}

func TestDispatcherStopRejectsPosts(t *testing.T) {
	d := newDispatcher()
	d.stop()
	if d.post(func() {}) {
		t.Error("post after stop should fail")
	}
	d.stop() // double-stop must be safe
}

func TestBaseFCMValidation(t *testing.T) {
	if _, err := NewBaseFCM("x", []Control{{ID: "", Kind: ControlToggle}}); err == nil {
		t.Error("empty control id should fail")
	}
	if _, err := NewBaseFCM("x", []Control{{ID: "r", Kind: ControlRange, Min: 5, Max: 1}}); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := NewBaseFCM("x", []Control{{ID: "s", Kind: ControlSelect}}); err == nil {
		t.Error("select without options should fail")
	}
	if _, err := NewBaseFCM("x", []Control{
		{ID: "a", Kind: ControlToggle}, {ID: "a", Kind: ControlToggle},
	}); err == nil {
		t.Error("duplicate ids should fail")
	}
}

func TestBaseFCMGetSetDo(t *testing.T) {
	f, err := NewBaseFCM("test", testControls())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Get("volume"); v != 25 {
		t.Errorf("init volume = %d", v)
	}
	if err := f.Set("volume", 60); err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Get("volume"); v != 60 {
		t.Errorf("volume = %d", v)
	}
	// Range violations.
	if err := f.Set("volume", 101); !errors.Is(err, ErrBadValue) {
		t.Errorf("over-max err = %v", err)
	}
	if err := f.Set("volume", -1); !errors.Is(err, ErrBadValue) {
		t.Errorf("under-min err = %v", err)
	}
	// Toggle accepts only 0/1.
	if err := f.Set("power", 2); !errors.Is(err, ErrBadValue) {
		t.Errorf("toggle=2 err = %v", err)
	}
	if err := f.Set("power", 1); err != nil {
		t.Fatal(err)
	}
	// Readout is read-only.
	if err := f.Set("counter", 5); !errors.Is(err, ErrReadOnly) {
		t.Errorf("readout set err = %v", err)
	}
	// Action must go through Do.
	if err := f.Set("play", 1); !errors.Is(err, ErrNotAction) {
		t.Errorf("action set err = %v", err)
	}
	if err := f.Do("volume"); !errors.Is(err, ErrNotAction) {
		t.Errorf("do on range err = %v", err)
	}
	if err := f.Do("nope"); !errors.Is(err, ErrUnknownControl) {
		t.Errorf("do unknown err = %v", err)
	}
	// Select bounds.
	if err := f.Set("input", 2); !errors.Is(err, ErrBadValue) {
		t.Errorf("select out of range err = %v", err)
	}
	if err := f.Set("input", 1); err != nil {
		t.Fatal(err)
	}
}

func TestBaseFCMHooks(t *testing.T) {
	f, err := NewBaseFCM("vcr", testControls())
	if err != nil {
		t.Fatal(err)
	}
	f.SetHooks(
		func(f *BaseFCM, id string, v int) error {
			// Power must be on before anything else changes.
			if id != "power" && f.GetLocked("power") == 0 {
				return ErrRejected
			}
			return nil
		},
		func(f *BaseFCM, id string) error {
			if f.GetLocked("power") == 0 {
				return ErrRejected
			}
			f.SetLockedInternal("counter", f.GetLocked("counter")+1)
			return nil
		},
	)
	if err := f.Set("volume", 10); !errors.Is(err, ErrRejected) {
		t.Errorf("set with power off = %v", err)
	}
	if err := f.Do("play"); !errors.Is(err, ErrRejected) {
		t.Errorf("do with power off = %v", err)
	}
	if err := f.Set("power", 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Do("play"); err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Get("counter"); v != 1 {
		t.Errorf("counter = %d", v)
	}
}

func TestFCMChangeEvents(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	f, _ := NewBaseFCM("amp", testControls())
	d := NewDCM("Living Amp", "amplifier")
	d.AddFCM(f)
	if _, err := n.Attach(d); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var events []Event
	n.Events().Subscribe(EventFCMChanged, func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if err := f.Set("volume", 42); err != nil {
		t.Fatal(err)
	}
	// Setting to the same value must not fire again.
	if err := f.Set("volume", 42); err != nil {
		t.Fatal(err)
	}
	n.WaitIdle()

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Key != "volume" || events[0].Value != 42 || events[0].Source != f.SEID() {
		t.Errorf("event = %+v", events[0])
	}
}

func TestMessageSystemCallAndSend(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	f, _ := NewBaseFCM("amp", testControls())
	d := NewDCM("Amp", "amplifier")
	d.AddFCM(f)
	if _, err := n.Attach(d); err != nil {
		t.Fatal(err)
	}

	// Describe over the message system.
	rep, err := n.Messages().Call(Message{Dst: f.SEID(), Op: OpDescribe})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Str != "amp" {
		t.Errorf("kind = %q", rep.Str)
	}
	ctls, err := UnmarshalControls(rep.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctls) != len(testControls()) {
		t.Errorf("controls = %d", len(ctls))
	}

	// Set then get through messages.
	if _, err := n.Messages().Call(Message{Dst: f.SEID(), Op: OpSet, Key: "volume", Value: 77}); err != nil {
		t.Fatal(err)
	}
	rep, err = n.Messages().Call(Message{Dst: f.SEID(), Op: OpGet, Key: "volume"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Value != 77 {
		t.Errorf("volume via message = %d", rep.Value)
	}

	// Async send.
	if err := n.Messages().Send(Message{Dst: f.SEID(), Op: OpSet, Key: "volume", Value: 5}); err != nil {
		t.Fatal(err)
	}
	n.WaitIdle()
	if v, _ := f.Get("volume"); v != 5 {
		t.Errorf("async volume = %d", v)
	}

	// Unknown destination and op.
	if _, err := n.Messages().Call(Message{Dst: SEID{GUID: 99, Handle: 99}, Op: OpGet}); !errors.Is(err, ErrUnknownElement) {
		t.Errorf("unknown dst err = %v", err)
	}
	if _, err := n.Messages().Call(Message{Dst: f.SEID(), Op: "bogus"}); !errors.Is(err, ErrUnknownOp) {
		t.Errorf("unknown op err = %v", err)
	}
}

func TestRegistryQuery(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	for i, class := range []string{"tv", "vcr", "tv"} {
		f, _ := NewBaseFCM("dummy", testControls())
		d := NewDCM(class+"-dev", class)
		d.AddFCM(f)
		if _, err := n.Attach(d); err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
	}
	dcms := n.Registry().Query(map[string]string{"type": "dcm"})
	if len(dcms) != 3 {
		t.Fatalf("dcms = %d", len(dcms))
	}
	tvs := n.Registry().Query(map[string]string{"type": "dcm", "class": "tv"})
	if len(tvs) != 2 {
		t.Fatalf("tvs = %d", len(tvs))
	}
	all := n.Registry().Query(nil)
	if len(all) != 6 { // 3 DCMs + 3 FCMs
		t.Fatalf("all = %d", len(all))
	}
	// Results are sorted by SEID.
	for i := 1; i < len(all); i++ {
		a, b := all[i-1].SEID, all[i].SEID
		if a.GUID > b.GUID || (a.GUID == b.GUID && a.Handle >= b.Handle) {
			t.Fatal("query results not sorted")
		}
	}
}

func TestRegistryReturnsCopies(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	d := NewDCM("TV", "tv")
	if _, err := n.Attach(d); err != nil {
		t.Fatal(err)
	}
	got := n.Registry().Query(map[string]string{"type": "dcm"})
	got[0].Attrs["name"] = "EVIL"
	again := n.Registry().Query(map[string]string{"type": "dcm"})
	if again[0].Attrs["name"] != "TV" {
		t.Error("registry state was mutated through a query result")
	}
}

func TestAttachDetachLifecycle(t *testing.T) {
	n := NewNetwork()
	defer n.Close()

	var mu sync.Mutex
	counts := map[string]int{}
	n.Events().Subscribe("", func(ev Event) {
		mu.Lock()
		counts[ev.Type]++
		mu.Unlock()
	})

	f, _ := NewBaseFCM("tuner", testControls())
	d := NewDCM("TV", "tv")
	d.AddFCM(f)
	guid, err := n.Attach(d)
	if err != nil {
		t.Fatal(err)
	}
	n.WaitIdle()
	if n.Registry().Count() != 2 {
		t.Fatalf("registry count after attach = %d", n.Registry().Count())
	}
	if !n.Messages().Lookup(f.SEID()) {
		t.Fatal("FCM not registered with message system")
	}

	// Double attach of an online device must fail.
	if _, err := n.Attach(d); err == nil {
		t.Fatal("double attach should fail")
	}

	n.Detach(guid)
	n.WaitIdle()
	if n.Registry().Count() != 0 {
		t.Fatalf("registry count after detach = %d", n.Registry().Count())
	}
	if n.Messages().Lookup(f.SEID()) {
		t.Fatal("FCM still registered after detach")
	}

	// Re-attach with the same GUID (device replugged).
	if _, err := n.Attach(d); err != nil {
		t.Fatal(err)
	}
	n.WaitIdle()
	if n.Registry().Count() != 2 {
		t.Fatalf("registry count after re-attach = %d", n.Registry().Count())
	}

	mu.Lock()
	defer mu.Unlock()
	if counts[EventDeviceAttached] != 2 || counts[EventDeviceDetached] != 1 {
		t.Errorf("attach/detach events = %d/%d", counts[EventDeviceAttached], counts[EventDeviceDetached])
	}
	if counts[EventBusReset] != 3 {
		t.Errorf("bus resets = %d, want 3", counts[EventBusReset])
	}
}

func TestRegistryWatch(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	var mu sync.Mutex
	var changes []Change
	id := n.Registry().Watch(func(c Change) {
		mu.Lock()
		changes = append(changes, c)
		mu.Unlock()
	})
	d := NewDCM("Lamp", "lamp")
	guid, _ := n.Attach(d)
	n.Detach(guid)
	n.WaitIdle()

	mu.Lock()
	if len(changes) != 2 || changes[0].Kind != EntryAdded || changes[1].Kind != EntryRemoved {
		t.Errorf("changes = %+v", changes)
	}
	mu.Unlock()

	n.Registry().Unwatch(id)
	if _, err := n.Attach(d); err != nil {
		t.Fatal(err)
	}
	n.WaitIdle()
	mu.Lock()
	if len(changes) != 2 {
		t.Error("unwatched watcher still fired")
	}
	mu.Unlock()
}

func TestEventSubscribeByType(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	var mu sync.Mutex
	var typed, all int
	n.Events().Subscribe(EventBusReset, func(Event) {
		mu.Lock()
		typed++
		mu.Unlock()
	})
	subAll := n.Events().Subscribe("", func(Event) {
		mu.Lock()
		all++
		mu.Unlock()
	})
	n.Events().Post(Event{Type: EventBusReset})
	n.Events().Post(Event{Type: EventFCMChanged})
	n.WaitIdle()
	mu.Lock()
	if typed != 1 || all != 2 {
		t.Errorf("typed=%d all=%d", typed, all)
	}
	mu.Unlock()
	n.Events().Unsubscribe(subAll)
	n.Events().Post(Event{Type: EventFCMChanged})
	n.WaitIdle()
	mu.Lock()
	if all != 2 {
		t.Error("unsubscribed handler fired")
	}
	mu.Unlock()
}

func TestNetworkCloseIsIdempotentAndFinal(t *testing.T) {
	n := NewNetwork()
	d := NewDCM("TV", "tv")
	if _, err := n.Attach(d); err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close() // must not panic or deadlock
	if _, err := n.Attach(NewDCM("X", "tv")); !errors.Is(err, ErrClosed) {
		t.Errorf("attach after close = %v", err)
	}
}

func TestConcurrentFCMAccess(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	f, _ := NewBaseFCM("amp", testControls())
	d := NewDCM("Amp", "amplifier")
	d.AddFCM(f)
	if _, err := n.Attach(d); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = f.Set("volume", (g*200+i)%101)
				_, _ = f.Get("volume")
				_, _ = n.Messages().Call(Message{Dst: f.SEID(), Op: OpGet, Key: "volume"})
			}
		}()
	}
	wg.Wait()
	n.WaitIdle()
	v, err := f.Get("volume")
	if err != nil || v < 0 || v > 100 {
		t.Errorf("final volume = %d, %v", v, err)
	}
}
