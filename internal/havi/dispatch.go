package havi

import "sync"

// dispatcher is a single-worker FIFO executor shared by the asynchronous
// paths of the message system, registry watches and event manager. A single
// ordered queue gives the whole middleware a deterministic delivery order,
// and WaitIdle gives tests and benchmarks a quiescence point.
type dispatcher struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []func()
	pending int // queued + currently executing
	closed  bool
	done    chan struct{}
}

func newDispatcher() *dispatcher {
	d := &dispatcher{done: make(chan struct{})}
	d.cond = sync.NewCond(&d.mu)
	go d.run()
	return d
}

func (d *dispatcher) run() {
	defer close(d.done)
	for {
		d.mu.Lock()
		for len(d.queue) == 0 && !d.closed {
			d.cond.Wait()
		}
		if d.closed && len(d.queue) == 0 {
			d.mu.Unlock()
			return
		}
		fn := d.queue[0]
		d.queue = d.queue[1:]
		d.mu.Unlock()

		fn()

		d.mu.Lock()
		d.pending--
		d.cond.Broadcast()
		d.mu.Unlock()
	}
}

// post enqueues fn; returns false when the dispatcher is closed.
func (d *dispatcher) post(fn func()) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	d.queue = append(d.queue, fn)
	d.pending++
	d.cond.Broadcast()
	return true
}

// waitIdle blocks until every posted function has finished executing.
// Functions posted while waiting are also waited for.
func (d *dispatcher) waitIdle() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.pending > 0 {
		d.cond.Wait()
	}
}

// stop drains the queue and terminates the worker.
func (d *dispatcher) stop() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		<-d.done
		return
	}
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
	<-d.done
}
