package stream

import (
	"errors"
	"sync"
	"testing"

	"uniint/internal/appliance"
	"uniint/internal/havi"
)

// rig builds a home with a TV and a VCR and registers the natural
// endpoints: tuner video out, display video in, VCR AV in (record) and
// AV out (playback).
type rig struct {
	home    *appliance.Home
	mgr     *Manager
	tunerO  Endpoint
	dispI   Endpoint
	vcrIn   Endpoint
	vcrOut  Endpoint
	tvGUID  havi.GUID
	vcrGUID havi.GUID
	tv      *appliance.TV
	vcr     *appliance.VCR
}

func newRig(t *testing.T, capacity int) *rig {
	t.Helper()
	home := appliance.NewHome()
	t.Cleanup(home.Close)
	tv := appliance.NewTV("TV")
	vcr := appliance.NewVCR("VCR")
	tvGUID, err := home.Add(tv)
	if err != nil {
		t.Fatal(err)
	}
	vcrGUID, err := home.Add(vcr)
	if err != nil {
		t.Fatal(err)
	}
	home.Network().WaitIdle()

	mgr := NewManager(home.Network(), capacity)
	r := &rig{
		home: home, mgr: mgr, tv: tv, vcr: vcr,
		tvGUID: tvGUID, vcrGUID: vcrGUID,
		tunerO: Endpoint{SEID: tv.Tuner().SEID(), Plug: 0, Output: true, Media: Video},
		dispI:  Endpoint{SEID: tv.Display().SEID(), Plug: 0, Output: false, Media: Video},
		vcrIn:  Endpoint{SEID: vcr.Deck().SEID(), Plug: 0, Output: false, Media: AV},
		vcrOut: Endpoint{SEID: vcr.Deck().SEID(), Plug: 1, Output: true, Media: AV},
	}
	for _, e := range []Endpoint{r.tunerO, r.dispI, r.vcrIn, r.vcrOut} {
		if err := mgr.RegisterEndpoint(e); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestConnectTunerToDisplay(t *testing.T) {
	r := newRig(t, 100)
	conn, err := r.mgr.Connect(r.tunerO, r.dispI, 30)
	if err != nil {
		t.Fatal(err)
	}
	if conn.Media != Video || conn.Bandwidth != 30 {
		t.Errorf("conn = %+v", conn)
	}
	if r.mgr.Reserved() != 30 || r.mgr.Available() != 70 {
		t.Errorf("reserved/available = %d/%d", r.mgr.Reserved(), r.mgr.Available())
	}
	if got := r.mgr.Connections(); len(got) != 1 || got[0].ID != conn.ID {
		t.Errorf("connections = %+v", got)
	}
	if c, ok := r.mgr.ConnectionFor(r.tunerO); !ok || c.ID != conn.ID {
		t.Error("ConnectionFor(source) failed")
	}
	if err := r.mgr.Drop(conn.ID); err != nil {
		t.Fatal(err)
	}
	if r.mgr.Reserved() != 0 || len(r.mgr.Connections()) != 0 {
		t.Error("drop did not release resources")
	}
	if err := r.mgr.Drop(conn.ID); !errors.Is(err, ErrUnknownConnection) {
		t.Errorf("double drop = %v", err)
	}
}

func TestConnectValidation(t *testing.T) {
	r := newRig(t, 100)
	// Unknown endpoints.
	ghost := Endpoint{SEID: havi.SEID{GUID: 999, Handle: 9}, Output: true, Media: Video}
	if _, err := r.mgr.Connect(ghost, r.dispI, 1); !errors.Is(err, ErrUnknownEndpoint) {
		t.Errorf("unknown source = %v", err)
	}
	if _, err := r.mgr.Connect(r.tunerO, ghost, 1); !errors.Is(err, ErrUnknownEndpoint) {
		t.Errorf("unknown sink = %v", err)
	}
	// Direction: sink as source.
	if _, err := r.mgr.Connect(r.dispI, r.tunerO, 1); !errors.Is(err, ErrDirectionMismatch) {
		t.Errorf("direction = %v", err)
	}
	// Media: audio-only sink cannot take video.
	audioSink := Endpoint{SEID: r.tv.Speaker().SEID(), Plug: 0, Output: false, Media: Audio}
	if err := r.mgr.RegisterEndpoint(audioSink); err != nil {
		t.Fatal(err)
	}
	if _, err := r.mgr.Connect(r.tunerO, audioSink, 1); !errors.Is(err, ErrMediaMismatch) {
		t.Errorf("media = %v", err)
	}
	// AV sink accepts video (the VCR records the tuner).
	if _, err := r.mgr.Connect(r.tunerO, r.vcrIn, 10); err != nil {
		t.Errorf("av sink should accept video: %v", err)
	}
}

func TestEndpointExclusivity(t *testing.T) {
	r := newRig(t, 100)
	if _, err := r.mgr.Connect(r.tunerO, r.dispI, 10); err != nil {
		t.Fatal(err)
	}
	// The tuner's output plug is busy: recording it too must fail.
	if _, err := r.mgr.Connect(r.tunerO, r.vcrIn, 10); !errors.Is(err, ErrBusy) {
		t.Errorf("busy source = %v", err)
	}
	// Playback to the busy display must fail.
	if _, err := r.mgr.Connect(r.vcrOut, r.dispI, 10); !errors.Is(err, ErrBusy) {
		t.Errorf("busy sink = %v", err)
	}
}

func TestBandwidthAdmission(t *testing.T) {
	r := newRig(t, 50)
	if _, err := r.mgr.Connect(r.tunerO, r.dispI, 40); err != nil {
		t.Fatal(err)
	}
	// Only 10 units left: a 20-unit stream is refused.
	if _, err := r.mgr.Connect(r.vcrOut, r.vcrIn, 20); !errors.Is(err, ErrBandwidth) {
		t.Errorf("admission = %v", err)
	}
	// A 10-unit playback into the VCR's own record plug is directionally
	// and media-wise fine, and fits.
	if _, err := r.mgr.Connect(r.vcrOut, r.vcrIn, 10); err != nil {
		t.Errorf("fitting stream refused: %v", err)
	}
	if r.mgr.Available() != 0 {
		t.Errorf("available = %d", r.mgr.Available())
	}
}

func TestDeviceDetachTearsDownStreams(t *testing.T) {
	r := newRig(t, 100)
	conn, err := r.mgr.Connect(r.tunerO, r.vcrIn, 25)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var stopped []havi.Event
	r.home.Network().Events().Subscribe(EventStreamStopped, func(ev havi.Event) {
		mu.Lock()
		stopped = append(stopped, ev)
		mu.Unlock()
	})

	// Unplug the VCR: the recording stream must die and its bandwidth
	// must come back.
	r.home.Remove(r.vcr)
	r.home.Network().WaitIdle()

	if len(r.mgr.Connections()) != 0 {
		t.Fatal("stream survived device detach")
	}
	if r.mgr.Reserved() != 0 {
		t.Errorf("reserved = %d", r.mgr.Reserved())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(stopped) != 1 || stopped[0].Value != int(conn.ID) || stopped[0].Str != "device detached" {
		t.Errorf("stopped events = %+v", stopped)
	}
	// The detached device's endpoints are forgotten.
	if _, err := r.mgr.Connect(r.vcrOut, r.dispI, 1); !errors.Is(err, ErrUnknownEndpoint) {
		t.Errorf("stale endpoint usable: %v", err)
	}
	// The TV's endpoints survive.
	if _, err := r.mgr.Connect(r.tunerO, r.dispI, 1); err != nil {
		t.Errorf("surviving endpoints broken: %v", err)
	}
}

func TestStreamEvents(t *testing.T) {
	r := newRig(t, 100)
	var mu sync.Mutex
	counts := map[string]int{}
	for _, typ := range []string{EventStreamStarted, EventStreamStopped} {
		typ := typ
		r.home.Network().Events().Subscribe(typ, func(havi.Event) {
			mu.Lock()
			counts[typ]++
			mu.Unlock()
		})
	}
	conn, err := r.mgr.Connect(r.tunerO, r.dispI, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mgr.Drop(conn.ID); err != nil {
		t.Fatal(err)
	}
	r.home.Network().WaitIdle()
	mu.Lock()
	defer mu.Unlock()
	if counts[EventStreamStarted] != 1 || counts[EventStreamStopped] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestUnregisterEndpointDropsConnection(t *testing.T) {
	r := newRig(t, 100)
	if _, err := r.mgr.Connect(r.tunerO, r.dispI, 5); err != nil {
		t.Fatal(err)
	}
	r.mgr.UnregisterEndpoint(r.dispI)
	if len(r.mgr.Connections()) != 0 {
		t.Error("connection survived endpoint unregistration")
	}
	if got := len(r.mgr.Endpoints()); got != 3 {
		t.Errorf("endpoints = %d", got)
	}
}

func TestEndpointsSorted(t *testing.T) {
	r := newRig(t, 100)
	eps := r.mgr.Endpoints()
	for i := 1; i < len(eps); i++ {
		a, b := eps[i-1], eps[i]
		if a.SEID.GUID > b.SEID.GUID {
			t.Fatal("endpoints not sorted by GUID")
		}
	}
}
