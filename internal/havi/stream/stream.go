// Package stream implements the HAVi stream manager: the middleware
// service that establishes logical audio/video connections between
// functional components (a tuner sourcing a broadcast into a display, a
// VCR recording the tuner's output) over the shared home bus.
//
// The paper's prototype is integrated with the authors' HAVi home
// computing system for audio/visual appliances (Nakajima, Middleware
// 2001); control panels start and stop exactly these streams. The manager
// models the architectural surface: typed endpoints, per-connection
// bandwidth reservation against the bus budget, connection lifecycle, and
// automatic teardown when a device leaves the bus.
package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"uniint/internal/havi"
)

// MediaType classifies a stream payload.
type MediaType int

// Media types.
const (
	Audio MediaType = iota + 1
	Video
	AV // multiplexed audio+video
)

// String returns the lowercase media name.
func (m MediaType) String() string {
	switch m {
	case Audio:
		return "audio"
	case Video:
		return "video"
	case AV:
		return "av"
	default:
		return fmt.Sprintf("media(%d)", int(m))
	}
}

// Endpoint describes one streaming plug of an FCM, registered by the
// appliance when it joins.
type Endpoint struct {
	SEID   havi.SEID
	Plug   int  // plug index on the element (an FCM may have several)
	Output bool // true = source plug, false = sink plug
	Media  MediaType
}

func (e Endpoint) key() endpointKey {
	return endpointKey{seid: e.SEID, plug: e.Plug, output: e.Output}
}

type endpointKey struct {
	seid   havi.SEID
	plug   int
	output bool
}

// ConnectionID names an established stream.
type ConnectionID int

// Connection is one established stream between a source and a sink plug.
type Connection struct {
	ID        ConnectionID
	Source    Endpoint
	Sink      Endpoint
	Media     MediaType
	Bandwidth int // reserved units
}

// Errors returned by the stream manager.
var (
	ErrUnknownEndpoint   = errors.New("stream: unknown endpoint")
	ErrDirectionMismatch = errors.New("stream: endpoint direction mismatch")
	ErrMediaMismatch     = errors.New("stream: media type mismatch")
	ErrBusy              = errors.New("stream: endpoint already connected")
	ErrBandwidth         = errors.New("stream: insufficient bus bandwidth")
	ErrUnknownConnection = errors.New("stream: unknown connection")
)

// Event types posted by the manager.
const (
	// EventStreamStarted fires after a connection is established.
	// Value = connection id.
	EventStreamStarted = "stream.started"
	// EventStreamStopped fires after a connection is dropped.
	// Value = connection id, Str = reason ("drop" or "device detached").
	EventStreamStopped = "stream.stopped"
)

// Manager is the stream manager for one home network.
type Manager struct {
	events *havi.EventManager

	mu        sync.Mutex
	capacity  int // total bus bandwidth units (e.g. 1394 isochronous budget)
	reserved  int
	endpoints map[endpointKey]Endpoint
	inUse     map[endpointKey]ConnectionID
	conns     map[ConnectionID]Connection
	nextID    ConnectionID
}

// NewManager creates a stream manager over the network's event manager,
// with the given total bus bandwidth budget (units are abstract; the
// classic 1394 budget is ~80% of 125 µs cycles, modeled here as 100).
// The manager subscribes to device-detached events to tear down streams
// whose endpoints leave the bus.
func NewManager(net *havi.Network, capacity int) *Manager {
	if capacity < 1 {
		capacity = 100
	}
	m := &Manager{
		events:    net.Events(),
		capacity:  capacity,
		endpoints: make(map[endpointKey]Endpoint),
		inUse:     make(map[endpointKey]ConnectionID),
		conns:     make(map[ConnectionID]Connection),
	}
	net.Events().Subscribe(havi.EventDeviceDetached, func(ev havi.Event) {
		m.dropDevice(ev.Source.GUID)
	})
	return m
}

// RegisterEndpoint announces a streaming plug. Re-registration replaces
// the previous descriptor.
func (m *Manager) RegisterEndpoint(e Endpoint) error {
	if e.SEID.Zero() {
		return fmt.Errorf("%w: zero SEID", ErrUnknownEndpoint)
	}
	if e.Media == 0 {
		return fmt.Errorf("%w: endpoint without media type", ErrMediaMismatch)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.endpoints[e.key()] = e
	return nil
}

// UnregisterEndpoint withdraws a plug; an active connection through it is
// dropped.
func (m *Manager) UnregisterEndpoint(e Endpoint) {
	m.mu.Lock()
	id, active := m.inUse[e.key()]
	delete(m.endpoints, e.key())
	m.mu.Unlock()
	if active {
		_ = m.Drop(id)
	}
}

// Endpoints lists registered endpoints, sorted for determinism.
func (m *Manager) Endpoints() []Endpoint {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Endpoint, 0, len(m.endpoints))
	for _, e := range m.endpoints {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.SEID.GUID != b.SEID.GUID {
			return a.SEID.GUID < b.SEID.GUID
		}
		if a.SEID.Handle != b.SEID.Handle {
			return a.SEID.Handle < b.SEID.Handle
		}
		if a.Plug != b.Plug {
			return a.Plug < b.Plug
		}
		return a.Output && !b.Output
	})
	return out
}

// Connect establishes a stream from source to sink, reserving bandwidth
// units against the bus budget. Both endpoints must be registered, free,
// directionally correct, and media-compatible (AV sinks accept any
// media; otherwise types must match).
func (m *Manager) Connect(source, sink Endpoint, bandwidth int) (Connection, error) {
	if bandwidth < 1 {
		bandwidth = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	src, ok := m.endpoints[source.key()]
	if !ok {
		return Connection{}, fmt.Errorf("%w: source %s/%d", ErrUnknownEndpoint, source.SEID, source.Plug)
	}
	snk, ok := m.endpoints[sink.key()]
	if !ok {
		return Connection{}, fmt.Errorf("%w: sink %s/%d", ErrUnknownEndpoint, sink.SEID, sink.Plug)
	}
	if !src.Output || snk.Output {
		return Connection{}, ErrDirectionMismatch
	}
	// Compatible when the types match, the sink is AV (it demuxes), or
	// the source is AV (the sink consumes its component). Only pure
	// audio↔video pairings are rejected.
	if src.Media != snk.Media && src.Media != AV && snk.Media != AV {
		return Connection{}, fmt.Errorf("%w: %s -> %s", ErrMediaMismatch, src.Media, snk.Media)
	}
	if _, busy := m.inUse[src.key()]; busy {
		return Connection{}, fmt.Errorf("%w: source %s/%d", ErrBusy, src.SEID, src.Plug)
	}
	if _, busy := m.inUse[snk.key()]; busy {
		return Connection{}, fmt.Errorf("%w: sink %s/%d", ErrBusy, snk.SEID, snk.Plug)
	}
	if m.reserved+bandwidth > m.capacity {
		return Connection{}, fmt.Errorf("%w: %d requested, %d of %d free",
			ErrBandwidth, bandwidth, m.capacity-m.reserved, m.capacity)
	}

	m.nextID++
	conn := Connection{
		ID:        m.nextID,
		Source:    src,
		Sink:      snk,
		Media:     src.Media,
		Bandwidth: bandwidth,
	}
	m.conns[conn.ID] = conn
	m.inUse[src.key()] = conn.ID
	m.inUse[snk.key()] = conn.ID
	m.reserved += bandwidth

	m.events.Post(havi.Event{
		Type: EventStreamStarted, Source: src.SEID, Value: int(conn.ID),
		Str: conn.Media.String(),
	})
	return conn, nil
}

// Drop tears a connection down and releases its bandwidth.
func (m *Manager) Drop(id ConnectionID) error {
	return m.drop(id, "drop")
}

func (m *Manager) drop(id ConnectionID, reason string) error {
	m.mu.Lock()
	conn, ok := m.conns[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownConnection, id)
	}
	delete(m.conns, id)
	delete(m.inUse, conn.Source.key())
	delete(m.inUse, conn.Sink.key())
	m.reserved -= conn.Bandwidth
	m.mu.Unlock()

	m.events.Post(havi.Event{
		Type: EventStreamStopped, Source: conn.Source.SEID,
		Value: int(id), Str: reason,
	})
	return nil
}

// dropDevice tears down every connection touching a device that left the
// bus, and forgets its endpoints.
func (m *Manager) dropDevice(guid havi.GUID) {
	m.mu.Lock()
	var doomed []ConnectionID
	for id, c := range m.conns {
		if c.Source.SEID.GUID == guid || c.Sink.SEID.GUID == guid {
			doomed = append(doomed, id)
		}
	}
	for k := range m.endpoints {
		if k.seid.GUID == guid {
			delete(m.endpoints, k)
		}
	}
	m.mu.Unlock()
	sort.Slice(doomed, func(i, j int) bool { return doomed[i] < doomed[j] })
	for _, id := range doomed {
		_ = m.drop(id, "device detached")
	}
}

// Connections lists active connections sorted by id.
func (m *Manager) Connections() []Connection {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Connection, 0, len(m.conns))
	for _, c := range m.conns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ConnectionFor returns the active connection using the endpoint, if any.
func (m *Manager) ConnectionFor(e Endpoint) (Connection, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.inUse[e.key()]
	if !ok {
		return Connection{}, false
	}
	return m.conns[id], true
}

// Available returns the unreserved bus bandwidth.
func (m *Manager) Available() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.capacity - m.reserved
}

// Reserved returns the currently reserved bandwidth.
func (m *Manager) Reserved() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reserved
}
