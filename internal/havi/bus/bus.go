// Package bus simulates the hot-pluggable IEEE-1394-like home network bus
// beneath the HAVi middleware. Devices own persistent GUIDs (like EUI-64s);
// connecting or disconnecting any device triggers a bus reset that
// renumbers physical IDs and re-announces the topology to listeners, which
// is the discovery mechanism the home appliance application's dynamic GUI
// regeneration hangs off.
//
// The package deliberately does not import the havi package: the middleware
// observes the bus, not the other way around.
package bus

import (
	"sort"
	"sync"
)

// Node describes one connected device after a reset.
type Node struct {
	GUID uint64 // persistent device id
	Phy  int    // physical id assigned by the last reset (0-based)
}

// Reset is the topology snapshot delivered to listeners after every
// connect/disconnect.
type Reset struct {
	Generation int
	Nodes      []Node
}

// Bus is a software home-network bus. The zero value is not usable; create
// with New.
type Bus struct {
	mu        sync.Mutex
	gen       int
	nextGUID  uint64
	connected map[uint64]bool
	listeners map[int]func(Reset)
	nextSub   int
}

// New creates an empty bus.
func New() *Bus {
	return &Bus{
		connected: make(map[uint64]bool),
		listeners: make(map[int]func(Reset)),
	}
}

// AllocGUID hands out a fresh persistent device id. Devices keep their
// GUID across connect/disconnect cycles.
func (b *Bus) AllocGUID() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextGUID++
	// Shape the id like a vendor-prefixed EUI-64 so logs look plausible.
	return 0x00A0DE<<40 | b.nextGUID
}

// Connect attaches the device with the given GUID and triggers a bus
// reset. Connecting an already-connected GUID still triggers a reset (a
// cable re-seat), matching real 1394 behaviour.
func (b *Bus) Connect(guid uint64) Reset {
	b.mu.Lock()
	b.connected[guid] = true
	r := b.resetLocked()
	fns := b.listenersLocked()
	b.mu.Unlock()
	for _, fn := range fns {
		fn(r)
	}
	return r
}

// Disconnect removes the device and triggers a bus reset. Disconnecting an
// unknown GUID is a no-op returning the current topology.
func (b *Bus) Disconnect(guid uint64) Reset {
	b.mu.Lock()
	if !b.connected[guid] {
		r := b.snapshotLocked()
		b.mu.Unlock()
		return r
	}
	delete(b.connected, guid)
	r := b.resetLocked()
	fns := b.listenersLocked()
	b.mu.Unlock()
	for _, fn := range fns {
		fn(r)
	}
	return r
}

// resetLocked bumps the generation and renumbers phy ids.
func (b *Bus) resetLocked() Reset {
	b.gen++
	return b.snapshotLocked()
}

func (b *Bus) snapshotLocked() Reset {
	guids := make([]uint64, 0, len(b.connected))
	for g := range b.connected {
		guids = append(guids, g)
	}
	sort.Slice(guids, func(i, j int) bool { return guids[i] < guids[j] })
	nodes := make([]Node, len(guids))
	for i, g := range guids {
		nodes[i] = Node{GUID: g, Phy: i}
	}
	return Reset{Generation: b.gen, Nodes: nodes}
}

func (b *Bus) listenersLocked() []func(Reset) {
	ids := make([]int, 0, len(b.listeners))
	for id := range b.listeners {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fns := make([]func(Reset), 0, len(ids))
	for _, id := range ids {
		fns = append(fns, b.listeners[id])
	}
	return fns
}

// OnReset subscribes fn to bus resets; fn runs synchronously on the
// goroutine performing the connect/disconnect. Returns an id for Remove.
func (b *Bus) OnReset(fn func(Reset)) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextSub++
	b.listeners[b.nextSub] = fn
	return b.nextSub
}

// RemoveListener cancels an OnReset subscription.
func (b *Bus) RemoveListener(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.listeners, id)
}

// Nodes returns the current topology.
func (b *Bus) Nodes() []Node {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.snapshotLocked().Nodes
}

// Generation returns the current bus generation (number of resets so far).
func (b *Bus) Generation() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gen
}

// Connected reports whether guid is currently on the bus.
func (b *Bus) Connected(guid uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.connected[guid]
}
