package bus

import (
	"sync"
	"testing"
)

func TestAllocGUIDUnique(t *testing.T) {
	b := New()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		g := b.AllocGUID()
		if seen[g] {
			t.Fatalf("duplicate guid %x", g)
		}
		seen[g] = true
	}
}

func TestConnectDisconnectTopology(t *testing.T) {
	b := New()
	g1, g2 := b.AllocGUID(), b.AllocGUID()

	r := b.Connect(g1)
	if r.Generation != 1 || len(r.Nodes) != 1 {
		t.Fatalf("after first connect: %+v", r)
	}
	r = b.Connect(g2)
	if r.Generation != 2 || len(r.Nodes) != 2 {
		t.Fatalf("after second connect: %+v", r)
	}
	// Phy ids are 0-based and dense.
	for i, n := range r.Nodes {
		if n.Phy != i {
			t.Errorf("node %d phy = %d", i, n.Phy)
		}
	}
	if !b.Connected(g1) || !b.Connected(g2) {
		t.Error("connected query wrong")
	}

	r = b.Disconnect(g1)
	if r.Generation != 3 || len(r.Nodes) != 1 || r.Nodes[0].GUID != g2 {
		t.Fatalf("after disconnect: %+v", r)
	}
	if b.Connected(g1) {
		t.Error("g1 should be gone")
	}
	// Disconnecting an absent device does not reset.
	r = b.Disconnect(g1)
	if r.Generation != 3 {
		t.Errorf("no-op disconnect bumped generation to %d", r.Generation)
	}
}

func TestResetListeners(t *testing.T) {
	b := New()
	var mu sync.Mutex
	var gens []int
	id := b.OnReset(func(r Reset) {
		mu.Lock()
		gens = append(gens, r.Generation)
		mu.Unlock()
	})
	g := b.AllocGUID()
	b.Connect(g)
	b.Disconnect(g)
	b.RemoveListener(id)
	b.Connect(g)

	mu.Lock()
	defer mu.Unlock()
	if len(gens) != 2 || gens[0] != 1 || gens[1] != 2 {
		t.Errorf("gens = %v", gens)
	}
}

func TestReconnectSameGUIDTriggersReset(t *testing.T) {
	b := New()
	g := b.AllocGUID()
	b.Connect(g)
	r := b.Connect(g) // cable re-seat
	if r.Generation != 2 || len(r.Nodes) != 1 {
		t.Errorf("re-seat: %+v", r)
	}
}

func TestConcurrentBusOps(t *testing.T) {
	b := New()
	guids := make([]uint64, 32)
	for i := range guids {
		guids[i] = b.AllocGUID()
	}
	var wg sync.WaitGroup
	for _, g := range guids {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.Connect(g)
				b.Disconnect(g)
			}
		}()
	}
	wg.Wait()
	if len(b.Nodes()) != 0 {
		t.Errorf("nodes left: %d", len(b.Nodes()))
	}
}
