package havi

import (
	"errors"
	"fmt"
	"sync"
)

// FCM is a functional component module: one controllable function block of
// an appliance (tuner, VCR transport, amplifier, …). FCMs are addressed by
// SEID and publish a DDI control surface.
type FCM interface {
	// Kind returns the FCM class ("tuner", "vcr", "amplifier", …).
	Kind() string
	// SEID returns the element address (assigned when the DCM attaches).
	SEID() SEID
	// Controls returns the DDI control surface.
	Controls() []Control
	// Get returns the current value of a control.
	Get(id string) (int, error)
	// Set changes a settable control (toggle/range/select).
	Set(id string, v int) error
	// Do triggers an action control.
	Do(id string) error
}

// FCM message operations (the vocabulary the home application speaks).
const (
	OpDescribe = "fcm.describe" // reply Data = JSON []Control, Str = kind
	OpGet      = "fcm.get"      // Key = control id; reply Value
	OpSet      = "fcm.set"      // Key = control id, Value = new value
	OpDo       = "fcm.do"       // Key = action id
)

// Errors returned by FCM control access.
var (
	ErrUnknownControl = errors.New("havi: unknown control")
	ErrReadOnly       = errors.New("havi: control is read-only")
	ErrNotAction      = errors.New("havi: control is not an action")
	ErrBadValue       = errors.New("havi: value out of range")
	ErrRejected       = errors.New("havi: command rejected in current state")
)

// BaseFCM is the reusable FCM core: a control table, a value store, range
// validation and change events. Concrete FCMs (internal/havi/fcm) configure
// it with descriptors and hooks.
type BaseFCM struct {
	kind string

	mu     sync.Mutex
	seid   SEID
	ctls   []Control
	index  map[string]int
	values map[string]int
	events *EventManager

	// onSet validates/reacts to a set before it lands; returning an error
	// rejects the change. May adjust other values via SetLockedInternal.
	onSet func(f *BaseFCM, id string, v int) error
	// onDo executes an action; the BaseFCM posts no event itself for
	// actions (the hook mutates values as needed).
	onDo func(f *BaseFCM, id string) error
}

var _ FCM = (*BaseFCM)(nil)

// NewBaseFCM builds an FCM with the given kind and control surface.
// Control Init values seed the value store. Descriptors are validated.
func NewBaseFCM(kind string, controls []Control) (*BaseFCM, error) {
	f := &BaseFCM{
		kind:   kind,
		ctls:   make([]Control, len(controls)),
		index:  make(map[string]int, len(controls)),
		values: make(map[string]int, len(controls)),
	}
	copy(f.ctls, controls)
	for i, c := range f.ctls {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if _, dup := f.index[c.ID]; dup {
			return nil, fmt.Errorf("havi: duplicate control id %q", c.ID)
		}
		f.index[c.ID] = i
		f.values[c.ID] = c.Init
	}
	return f, nil
}

// SetHooks installs the state-machine hooks (called before construction
// completes; not safe after the FCM is attached).
func (f *BaseFCM) SetHooks(onSet func(*BaseFCM, string, int) error, onDo func(*BaseFCM, string) error) {
	f.onSet = onSet
	f.onDo = onDo
}

// Kind implements FCM.
func (f *BaseFCM) Kind() string { return f.kind }

// SEID implements FCM.
func (f *BaseFCM) SEID() SEID {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seid
}

// bind assigns the SEID and event sink; called by the DCM at attach time.
func (f *BaseFCM) bind(id SEID, events *EventManager) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seid = id
	f.events = events
}

// Controls implements FCM.
func (f *BaseFCM) Controls() []Control {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Control, len(f.ctls))
	copy(out, f.ctls)
	return out
}

// Control returns one descriptor by id.
func (f *BaseFCM) Control(id string) (Control, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	i, ok := f.index[id]
	if !ok {
		return Control{}, false
	}
	return f.ctls[i], true
}

// Get implements FCM.
func (f *BaseFCM) Get(id string) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.values[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s.%s", ErrUnknownControl, f.kind, id)
	}
	return v, nil
}

// Set implements FCM.
func (f *BaseFCM) Set(id string, v int) error {
	f.mu.Lock()
	i, ok := f.index[id]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s.%s", ErrUnknownControl, f.kind, id)
	}
	c := f.ctls[i]
	switch c.Kind {
	case ControlReadout:
		f.mu.Unlock()
		return fmt.Errorf("%w: %s.%s", ErrReadOnly, f.kind, id)
	case ControlAction:
		f.mu.Unlock()
		return fmt.Errorf("%w: %s.%s (use Do)", ErrNotAction, f.kind, id)
	case ControlToggle:
		if v != 0 && v != 1 {
			f.mu.Unlock()
			return fmt.Errorf("%w: %s.%s=%d", ErrBadValue, f.kind, id, v)
		}
	case ControlRange:
		if v < c.Min || v > c.Max {
			f.mu.Unlock()
			return fmt.Errorf("%w: %s.%s=%d not in [%d,%d]", ErrBadValue, f.kind, id, v, c.Min, c.Max)
		}
	case ControlSelect:
		if v < 0 || v >= len(c.Options) {
			f.mu.Unlock()
			return fmt.Errorf("%w: %s.%s=%d", ErrBadValue, f.kind, id, v)
		}
	}
	if f.onSet != nil {
		if err := f.onSet(f, id, v); err != nil {
			f.mu.Unlock()
			return err
		}
	}
	changed := f.values[id] != v
	f.values[id] = v
	seid := f.seid
	events := f.events
	f.mu.Unlock()

	if changed && events != nil {
		events.Post(Event{Type: EventFCMChanged, Source: seid, Key: id, Value: v})
	}
	return nil
}

// Do implements FCM.
func (f *BaseFCM) Do(id string) error {
	f.mu.Lock()
	i, ok := f.index[id]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s.%s", ErrUnknownControl, f.kind, id)
	}
	if f.ctls[i].Kind != ControlAction {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s.%s", ErrNotAction, f.kind, id)
	}
	if f.onDo == nil {
		f.mu.Unlock()
		return nil
	}
	err := f.onDo(f, id)
	f.mu.Unlock()
	return err
}

// SetLockedInternal updates a value from inside a hook (lock already
// held), bypassing writability checks. The change event is posted
// immediately; the event manager is asynchronous, so subscribers never
// observe the lock held. Must only be called from onSet/onDo hooks.
func (f *BaseFCM) SetLockedInternal(id string, v int) {
	if f.values[id] == v {
		return
	}
	f.values[id] = v
	if f.events != nil {
		f.events.Post(Event{Type: EventFCMChanged, Source: f.seid, Key: id, Value: v})
	}
}

// SetInternal updates a value bypassing hooks and writability checks —
// used by appliance simulators for genuine hardware state (a tape
// finishing rewind). Range checks still apply silently via clamping.
func (f *BaseFCM) SetInternal(id string, v int) {
	f.mu.Lock()
	i, ok := f.index[id]
	if !ok {
		f.mu.Unlock()
		return
	}
	c := f.ctls[i]
	if c.Kind == ControlRange {
		if v < c.Min {
			v = c.Min
		}
		if v > c.Max {
			v = c.Max
		}
	}
	changed := f.values[id] != v
	f.values[id] = v
	seid := f.seid
	events := f.events
	f.mu.Unlock()
	if changed && events != nil {
		events.Post(Event{Type: EventFCMChanged, Source: seid, Key: id, Value: v})
	}
}

// GetLocked reads a value from inside a hook (lock already held).
func (f *BaseFCM) GetLocked(id string) int { return f.values[id] }

// HandleMessage implements Handler, exposing the FCM over the message
// system with the fcm.* operation vocabulary.
func (f *BaseFCM) HandleMessage(m Message) (Reply, error) {
	switch m.Op {
	case OpDescribe:
		data, err := MarshalControls(f.Controls())
		if err != nil {
			return Reply{}, err
		}
		return Reply{Str: f.kind, Data: data}, nil
	case OpGet:
		v, err := f.Get(m.Key)
		if err != nil {
			return Reply{}, err
		}
		return Reply{Value: v}, nil
	case OpSet:
		return Reply{}, f.Set(m.Key, m.Value)
	case OpDo:
		return Reply{}, f.Do(m.Key)
	default:
		return Reply{}, fmt.Errorf("%w: %q", ErrUnknownOp, m.Op)
	}
}
