package havi

import (
	"sort"
	"sync"
)

// Entry is one registry record: a software element and its attributes.
// Conventional attribute keys: "type" ("dcm"/"fcm"/"app"), "class"
// (appliance class for DCMs), "kind" (FCM kind), "name", "guid".
type Entry struct {
	SEID  SEID
	Attrs map[string]string
}

// clone deep-copies the entry so callers cannot mutate registry state.
func (e Entry) clone() Entry {
	attrs := make(map[string]string, len(e.Attrs))
	for k, v := range e.Attrs {
		attrs[k] = v
	}
	return Entry{SEID: e.SEID, Attrs: attrs}
}

// ChangeKind discriminates registry change notifications.
type ChangeKind int

// Registry change kinds.
const (
	EntryAdded ChangeKind = iota + 1
	EntryRemoved
)

// Change describes one registry mutation, delivered to watchers.
type Change struct {
	Kind  ChangeKind
	Entry Entry
}

// Registry is the attribute-based lookup service software elements use to
// discover each other: the home appliance application queries it for DCMs
// and FCMs of the currently connected appliances.
type Registry struct {
	mu       sync.RWMutex
	entries  map[SEID]Entry
	watchers map[int]func(Change)
	nextID   int
	disp     *dispatcher
}

func newRegistry(disp *dispatcher) *Registry {
	return &Registry{
		entries:  make(map[SEID]Entry),
		watchers: make(map[int]func(Change)),
		disp:     disp,
	}
}

// Register adds (or replaces) an entry and notifies watchers.
func (r *Registry) Register(e Entry) {
	e = e.clone()
	r.mu.Lock()
	_, replacing := r.entries[e.SEID]
	r.entries[e.SEID] = e
	r.mu.Unlock()
	if replacing {
		r.notify(Change{Kind: EntryRemoved, Entry: e})
	}
	r.notify(Change{Kind: EntryAdded, Entry: e})
}

// Unregister removes an entry; unknown SEIDs are ignored.
func (r *Registry) Unregister(id SEID) {
	r.mu.Lock()
	e, ok := r.entries[id]
	if ok {
		delete(r.entries, id)
	}
	r.mu.Unlock()
	if ok {
		r.notify(Change{Kind: EntryRemoved, Entry: e})
	}
}

func (r *Registry) notify(c Change) {
	r.mu.RLock()
	fns := make([]func(Change), 0, len(r.watchers))
	for _, fn := range r.watchers {
		fns = append(fns, fn)
	}
	r.mu.RUnlock()
	for _, fn := range fns {
		fn := fn
		r.disp.post(func() { fn(c) })
	}
}

// Query returns every entry whose attributes include all of match's
// key/value pairs (logical AND of equality terms; an empty match returns
// everything). Results are sorted by SEID for determinism.
func (r *Registry) Query(match map[string]string) []Entry {
	r.mu.RLock()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		ok := true
		for k, v := range match {
			if e.Attrs[k] != v {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, e.clone())
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].SEID.GUID != out[j].SEID.GUID {
			return out[i].SEID.GUID < out[j].SEID.GUID
		}
		return out[i].SEID.Handle < out[j].SEID.Handle
	})
	return out
}

// Get returns the entry for id, if present.
func (r *Registry) Get(id SEID) (Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[id]
	if !ok {
		return Entry{}, false
	}
	return e.clone(), true
}

// Count returns the number of registered entries.
func (r *Registry) Count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Watch subscribes fn to registry changes; the returned id cancels via
// Unwatch. Notifications arrive asynchronously in registration order.
func (r *Registry) Watch(fn func(Change)) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	r.watchers[r.nextID] = fn
	return r.nextID
}

// Unwatch cancels a Watch subscription.
func (r *Registry) Unwatch(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.watchers, id)
}
