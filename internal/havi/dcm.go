package havi

import (
	"fmt"
	"sync"
)

// DCM is a device control module: the software face of one appliance. It
// owns the appliance's FCMs and registers everything with the middleware
// when the device joins the bus.
type DCM struct {
	mu    sync.Mutex
	name  string
	class string // appliance class: "tv", "vcr", "amplifier", "aircon", "lamp"
	guid  GUID
	fcms  []*BaseFCM
}

// NewDCM creates a device control module. class names the appliance
// category the home application groups panels by.
func NewDCM(name, class string) *DCM {
	return &DCM{name: name, class: class}
}

// Name returns the human-readable device name.
func (d *DCM) Name() string { return d.name }

// Class returns the appliance class.
func (d *DCM) Class() string { return d.class }

// GUID returns the bus-assigned device id (zero before attachment).
func (d *DCM) GUID() GUID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.guid
}

// SEID returns the DCM's own element address.
func (d *DCM) SEID() SEID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return SEID{GUID: d.guid, Handle: HandleDCM}
}

// AddFCM attaches a functional component to the device. Must be called
// before the device joins the network.
func (d *DCM) AddFCM(f *BaseFCM) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fcms = append(d.fcms, f)
}

// FCMs returns the device's functional components.
func (d *DCM) FCMs() []*BaseFCM {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*BaseFCM, len(d.fcms))
	copy(out, d.fcms)
	return out
}

// FCMByKind returns the first FCM of the given kind, if any.
func (d *DCM) FCMByKind(kind string) (*BaseFCM, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, f := range d.fcms {
		if f.Kind() == kind {
			return f, true
		}
	}
	return nil, false
}

// HandleMessage implements Handler for the DCM element itself.
func (d *DCM) HandleMessage(m Message) (Reply, error) {
	switch m.Op {
	case "dcm.info":
		return Reply{Str: d.class + "/" + d.name, Value: len(d.FCMs())}, nil
	default:
		return Reply{}, fmt.Errorf("%w: %q", ErrUnknownOp, m.Op)
	}
}

// bind assigns the bus GUID and wires FCM SEIDs + event sinks.
func (d *DCM) bind(guid GUID, events *EventManager) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.guid = guid
	for i, f := range d.fcms {
		f.bind(SEID{GUID: guid, Handle: HandleFirstFCM + uint32(i)}, events)
	}
}

// register enrolls the DCM and its FCMs with the registry and message
// system. Called by the Network with the GUID already bound.
func (d *DCM) register(reg *Registry, ms *MessageSystem) error {
	d.mu.Lock()
	guid := d.guid
	name, class := d.name, d.class
	fcms := make([]*BaseFCM, len(d.fcms))
	copy(fcms, d.fcms)
	d.mu.Unlock()

	if guid == 0 {
		return fmt.Errorf("havi: register %q before bus attach: %w", name, ErrUnknownElement)
	}
	dcmID := SEID{GUID: guid, Handle: HandleDCM}
	if err := ms.Register(dcmID, d); err != nil {
		return err
	}
	reg.Register(Entry{SEID: dcmID, Attrs: map[string]string{
		"type":  "dcm",
		"class": class,
		"name":  name,
		"guid":  guid.String(),
	}})
	for _, f := range fcms {
		if err := ms.Register(f.SEID(), f); err != nil {
			return err
		}
		reg.Register(Entry{SEID: f.SEID(), Attrs: map[string]string{
			"type": "fcm",
			"kind": f.Kind(),
			"name": name,
			"guid": guid.String(),
		}})
	}
	return nil
}

// unregister withdraws the DCM and its FCMs.
func (d *DCM) unregister(reg *Registry, ms *MessageSystem) {
	d.mu.Lock()
	guid := d.guid
	fcms := make([]*BaseFCM, len(d.fcms))
	copy(fcms, d.fcms)
	d.mu.Unlock()
	for _, f := range fcms {
		reg.Unregister(f.SEID())
		ms.Unregister(f.SEID())
	}
	dcmID := SEID{GUID: guid, Handle: HandleDCM}
	reg.Unregister(dcmID)
	ms.Unregister(dcmID)
}
