// Package fcm provides the concrete functional component modules (FCMs)
// used by the appliance simulators: tuner, VCR transport, amplifier, AV
// display, air conditioner, lamp and clock. Each is a havi.BaseFCM
// configured with a DDI control surface and state-machine hooks enforcing
// the appliance's semantics (a VCR will not play without a tape; nothing
// but power can be changed while a device is off).
package fcm

import "uniint/internal/havi"

// Control ids shared by several FCM kinds.
const (
	CtlPower = "power"
)

// requirePower is a set-hook fragment: every control except power itself
// requires the device to be on.
func requirePower(f *havi.BaseFCM, id string) error {
	if id != CtlPower && f.GetLocked(CtlPower) == 0 {
		return havi.ErrRejected
	}
	return nil
}

// mustFCM panics on descriptor construction errors. Descriptors in this
// package are compile-time constants, so a failure is a programming error
// caught by the package's own tests.
func mustFCM(f *havi.BaseFCM, err error) *havi.BaseFCM {
	if err != nil {
		panic("fcm: invalid built-in descriptor: " + err.Error())
	}
	return f
}
