package fcm

import "uniint/internal/havi"

// AV display control ids.
const (
	DisplayBrightness = "brightness"
	DisplayContrast   = "contrast"
	DisplaySource     = "source"
)

// DisplaySources are the selectable video inputs.
var DisplaySources = []string{"tuner", "vcr", "aux"}

// NewAVDisplay builds the display FCM of a television: picture controls
// and source selection, gated on power.
func NewAVDisplay() *havi.BaseFCM {
	f := mustFCM(havi.NewBaseFCM("display", []havi.Control{
		{ID: CtlPower, Label: "Power", Kind: havi.ControlToggle},
		{ID: DisplayBrightness, Label: "Bright", Kind: havi.ControlRange, Min: 0, Max: 100, Init: 50},
		{ID: DisplayContrast, Label: "Contrast", Kind: havi.ControlRange, Min: 0, Max: 100, Init: 50},
		{ID: DisplaySource, Label: "Source", Kind: havi.ControlSelect, Options: DisplaySources},
	}))
	f.SetHooks(
		func(f *havi.BaseFCM, id string, v int) error { return requirePower(f, id) },
		nil,
	)
	return f
}
