package fcm

import (
	"errors"
	"testing"
	"testing/quick"

	"uniint/internal/havi"
)

func TestAllDescriptorsValid(t *testing.T) {
	// Construction panics on invalid descriptors; building each kind is
	// the validation.
	builders := map[string]func() *havi.BaseFCM{
		"tuner": NewTuner, "vcr": NewVCR, "amplifier": NewAmplifier,
		"display": NewAVDisplay, "aircon": NewAircon, "lamp": NewLamp,
		"clock": NewClock,
	}
	for kind, build := range builders {
		f := build()
		if f.Kind() != kind {
			t.Errorf("kind = %q, want %q", f.Kind(), kind)
		}
		for _, c := range f.Controls() {
			if err := c.Validate(); err != nil {
				t.Errorf("%s/%s: %v", kind, c.ID, err)
			}
		}
	}
}

func TestPowerGating(t *testing.T) {
	for _, build := range []func() *havi.BaseFCM{NewTuner, NewAmplifier, NewAVDisplay, NewAircon, NewLamp} {
		f := build()
		// Find a settable non-power control.
		for _, c := range f.Controls() {
			if c.ID == CtlPower || (c.Kind != havi.ControlRange && c.Kind != havi.ControlSelect && c.Kind != havi.ControlToggle) {
				continue
			}
			v := c.Min
			if err := f.Set(c.ID, v); !errors.Is(err, havi.ErrRejected) {
				t.Errorf("%s.%s set while off = %v, want ErrRejected", f.Kind(), c.ID, err)
			}
			if err := f.Set(CtlPower, 1); err != nil {
				t.Fatalf("%s power on: %v", f.Kind(), err)
			}
			if err := f.Set(c.ID, v); err != nil {
				t.Errorf("%s.%s set while on = %v", f.Kind(), c.ID, err)
			}
			break
		}
	}
}

func TestTunerScanWraps(t *testing.T) {
	f := NewTuner()
	if err := f.Set(CtlPower, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Set(TunerChannel, TunerMaxChannel); err != nil {
		t.Fatal(err)
	}
	if err := f.Do(TunerScanUp); err != nil {
		t.Fatal(err)
	}
	if ch, _ := f.Get(TunerChannel); ch != TunerMinChannel {
		t.Errorf("scan up from max = %d", ch)
	}
	if err := f.Do(TunerScanDown); err != nil {
		t.Fatal(err)
	}
	if ch, _ := f.Get(TunerChannel); ch != TunerMaxChannel {
		t.Errorf("scan down from min = %d", ch)
	}
}

func TestTunerSignalTracksTuning(t *testing.T) {
	f := NewTuner()
	f.Set(CtlPower, 1)
	f.Set(TunerChannel, 10)
	s10, _ := f.Get(TunerSignal)
	if want := signalFor(10, 0); s10 != want {
		t.Errorf("signal = %d, want %d", s10, want)
	}
	f.Set(TunerBand, 2)
	s10c, _ := f.Get(TunerSignal)
	if want := signalFor(10, 2); s10c != want {
		t.Errorf("signal after band change = %d, want %d", s10c, want)
	}
	// Signal is a deterministic function.
	prop := func(ch uint8, band uint8) bool {
		c := int(ch%99) + 1
		b := int(band % 3)
		s := signalFor(c, b)
		return s >= 0 && s <= 100 && s == signalFor(c, b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTunerScanRequiresPower(t *testing.T) {
	f := NewTuner()
	if err := f.Do(TunerScanUp); !errors.Is(err, havi.ErrRejected) {
		t.Errorf("scan while off = %v", err)
	}
}

func TestVCRTransportStateMachine(t *testing.T) {
	f := NewVCR()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	reject := func(err error) {
		t.Helper()
		if !errors.Is(err, havi.ErrRejected) {
			t.Fatalf("want ErrRejected, got %v", err)
		}
	}
	state := func() int { v, _ := f.Get(VCRTransport); return v }

	// Everything rejected while off.
	reject(f.Do(VCRPlay))
	must(f.Set(CtlPower, 1))
	// No tape: transport commands rejected, load allowed.
	reject(f.Do(VCRPlay))
	reject(f.Do(VCRRecord))
	reject(f.Do(VCREject))
	must(f.Do(VCRLoad))
	reject(f.Do(VCRLoad)) // double load
	// Play.
	must(f.Do(VCRPlay))
	if state() != TransportPlay {
		t.Fatalf("state = %d", state())
	}
	// Pause from play.
	must(f.Do(VCRPause))
	if state() != TransportPause {
		t.Fatalf("state = %d", state())
	}
	// Record from pause is allowed; record from play is not.
	must(f.Do(VCRRecord))
	if state() != TransportRecord {
		t.Fatalf("state = %d", state())
	}
	must(f.Do(VCRPlay))
	reject(f.Do(VCRRecord))
	// Pause only from play/record.
	must(f.Do(VCRStop))
	reject(f.Do(VCRPause))
	// Eject stops and removes tape.
	must(f.Do(VCRPlay))
	must(f.Do(VCREject))
	if state() != TransportStop {
		t.Fatalf("state after eject = %d", state())
	}
	if tape, _ := f.Get(VCRTape); tape != 0 {
		t.Fatal("tape still present after eject")
	}
	// Power off stops the transport.
	must(f.Do(VCRLoad))
	must(f.Do(VCRPlay))
	must(f.Set(CtlPower, 0))
	if state() != TransportStop {
		t.Fatalf("state after power off = %d", state())
	}
}

func TestVCRTickCounterAndTapeEnds(t *testing.T) {
	f := NewVCR()
	f.Set(CtlPower, 1)
	f.Do(VCRLoad)
	f.Do(VCRPlay)
	for i := 0; i < 10; i++ {
		TickVCR(f)
	}
	if c, _ := f.Get(VCRCounter); c != 10 {
		t.Errorf("counter = %d", c)
	}
	// Fast-forward to the end of the tape.
	f.Do(VCRFastFwd)
	for i := 0; i < VCRTapeLength; i++ {
		TickVCR(f)
	}
	if c, _ := f.Get(VCRCounter); c != VCRTapeLength {
		t.Errorf("counter at end = %d", c)
	}
	if s, _ := f.Get(VCRTransport); s != TransportStop {
		t.Error("deck should stop at tape end")
	}
	// Rewind to the start.
	f.Do(VCRRewind)
	for i := 0; i < VCRTapeLength; i++ {
		TickVCR(f)
	}
	if c, _ := f.Get(VCRCounter); c != 0 {
		t.Errorf("counter at start = %d", c)
	}
	if s, _ := f.Get(VCRTransport); s != TransportStop {
		t.Error("deck should stop at tape start")
	}
	// Tick does nothing while powered off.
	f.Set(CtlPower, 0)
	TickVCR(f)
	if c, _ := f.Get(VCRCounter); c != 0 {
		t.Error("tick advanced counter while off")
	}
}

func TestAmplifierVolumeUpUnmutes(t *testing.T) {
	f := NewAmplifier()
	f.Set(CtlPower, 1)
	f.Set(AmpMute, 1)
	f.Set(AmpVolume, 50)
	if m, _ := f.Get(AmpMute); m != 0 {
		t.Error("raising volume should cancel mute")
	}
	// Lowering the volume keeps mute.
	f.Set(AmpMute, 1)
	f.Set(AmpVolume, 10)
	if m, _ := f.Get(AmpMute); m != 1 {
		t.Error("lowering volume should keep mute")
	}
}

func TestAirconThermalModel(t *testing.T) {
	f := NewAircon()
	room := func() int { v, _ := f.Get(AirconRoom); return v }
	start := room()
	// Off: drifts toward ambient 28.
	for i := 0; i < 40; i++ {
		TickAircon(f)
	}
	if room() != 28 {
		t.Errorf("ambient drift: room = %d (start %d)", room(), start)
	}
	// Cooling toward 20.
	f.Set(CtlPower, 1)
	f.Set(AirconMode, ModeCool)
	f.Set(AirconTarget, 20)
	for i := 0; i < 40; i++ {
		TickAircon(f)
	}
	if room() != 20 {
		t.Errorf("cooling: room = %d", room())
	}
	// Fan mode does not hold the temperature: drifts back to 28.
	f.Set(AirconMode, ModeFan)
	for i := 0; i < 40; i++ {
		TickAircon(f)
	}
	if room() != 28 {
		t.Errorf("fan mode drift: room = %d", room())
	}
}

func TestClockTickAndAlarm(t *testing.T) {
	f := NewClock()
	f.Set(ClockAlarmOn, 1)
	f.Set(ClockAlarmHr, 0)
	f.Set(ClockAlarmMin, 2)
	TickClock(f) // 00:01
	if r, _ := f.Get(ClockRinging); r != 0 {
		t.Error("alarm fired early")
	}
	TickClock(f) // 00:02
	if r, _ := f.Get(ClockRinging); r != 1 {
		t.Error("alarm did not fire")
	}
	// Disabling the alarm clears ringing.
	f.Set(ClockAlarmOn, 0)
	if r, _ := f.Get(ClockRinging); r != 0 {
		t.Error("ringing not cleared")
	}
	// Midnight rollover.
	f2 := NewClock()
	for i := 0; i < 24*60; i++ {
		TickClock(f2)
	}
	h, _ := f2.Get(ClockHour)
	m, _ := f2.Get(ClockMinute)
	if h != 0 || m != 0 {
		t.Errorf("after 24h: %02d:%02d", h, m)
	}
}

func TestLampDimming(t *testing.T) {
	f := NewLamp()
	if err := f.Set(LampLevel, 50); !errors.Is(err, havi.ErrRejected) {
		t.Errorf("dim while off = %v", err)
	}
	f.Set(CtlPower, 1)
	if err := f.Set(LampLevel, 50); err != nil {
		t.Fatal(err)
	}
	if err := f.Set(LampLevel, 0); !errors.Is(err, havi.ErrBadValue) {
		t.Errorf("level 0 = %v", err)
	}
}

func TestVCRTimerRecording(t *testing.T) {
	deck := NewVCR()
	clock := NewClock()
	deck.Set(CtlPower, 1)
	deck.Do(VCRLoad)
	// Program a recording at 00:03 and power the deck down.
	deck.Set(VCRTimerHr, 0)
	deck.Set(VCRTimerMin, 3)
	deck.Set(VCRTimerOn, 1)
	deck.Set(CtlPower, 0)

	step := func() { TickClock(clock); CheckVCRTimer(deck, clock); TickVCR(deck) }
	step() // 00:01
	step() // 00:02
	if st, _ := deck.Get(VCRTransport); st != TransportStop {
		t.Fatal("recording started early")
	}
	step() // 00:03 — timer fires
	if p, _ := deck.Get(CtlPower); p != 1 {
		t.Fatal("timer should power the deck on")
	}
	if st, _ := deck.Get(VCRTransport); st != TransportRecord {
		t.Fatalf("transport = %d, want record", st)
	}
	if on, _ := deck.Get(VCRTimerOn); on != 0 {
		t.Fatal("timer should disarm after firing")
	}
	// The tape is moving on subsequent ticks.
	before, _ := deck.Get(VCRCounter)
	step()
	after, _ := deck.Get(VCRCounter)
	if after != before+1 {
		t.Errorf("counter %d -> %d", before, after)
	}
}

func TestVCRTimerNeedsTape(t *testing.T) {
	deck := NewVCR()
	clock := NewClock()
	deck.Set(CtlPower, 1)
	deck.Set(VCRTimerMin, 1) // 00:01
	deck.Set(VCRTimerOn, 1)
	TickClock(clock) // 00:01, no tape
	CheckVCRTimer(deck, clock)
	if st, _ := deck.Get(VCRTransport); st != TransportStop {
		t.Fatal("recorded without a tape")
	}
	if on, _ := deck.Get(VCRTimerOn); on != 1 {
		t.Fatal("timer should stay armed when the slot is missed")
	}
}

func TestVCRTimerDoesNotInterruptPlayback(t *testing.T) {
	deck := NewVCR()
	clock := NewClock()
	deck.Set(CtlPower, 1)
	deck.Do(VCRLoad)
	deck.Do(VCRPlay)
	deck.Set(VCRTimerMin, 1)
	deck.Set(VCRTimerOn, 1)
	TickClock(clock) // 00:01 while playing
	CheckVCRTimer(deck, clock)
	if st, _ := deck.Get(VCRTransport); st != TransportPlay {
		t.Fatal("timer interrupted playback")
	}
}
