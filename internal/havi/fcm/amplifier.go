package fcm

import "uniint/internal/havi"

// Amplifier control ids.
const (
	AmpVolume  = "volume"
	AmpMute    = "mute"
	AmpInput   = "input"
	AmpBalance = "balance"
)

// AmpInputs are the selectable input sources.
var AmpInputs = []string{"tv", "vcr", "tuner", "aux"}

// NewAmplifier builds an audio amplifier FCM: volume, mute, input
// selection and balance, all gated on power.
func NewAmplifier() *havi.BaseFCM {
	f := mustFCM(havi.NewBaseFCM("amplifier", []havi.Control{
		{ID: CtlPower, Label: "Power", Kind: havi.ControlToggle},
		{ID: AmpVolume, Label: "Volume", Kind: havi.ControlRange, Min: 0, Max: 100, Init: 30},
		{ID: AmpMute, Label: "Mute", Kind: havi.ControlToggle},
		{ID: AmpInput, Label: "Input", Kind: havi.ControlSelect, Options: AmpInputs},
		{ID: AmpBalance, Label: "Balance", Kind: havi.ControlRange, Min: -10, Max: 10},
	}))
	f.SetHooks(
		func(f *havi.BaseFCM, id string, v int) error {
			if err := requirePower(f, id); err != nil {
				return err
			}
			// Raising the volume cancels mute, like real hardware.
			if id == AmpVolume && v > f.GetLocked(AmpVolume) {
				f.SetLockedInternal(AmpMute, 0)
			}
			return nil
		},
		nil,
	)
	return f
}
