package fcm

import "uniint/internal/havi"

// Air conditioner control ids.
const (
	AirconTarget = "target"
	AirconMode   = "mode"
	AirconFan    = "fan"
	AirconSwing  = "swing"
	AirconRoom   = "room"
)

// Aircon modes and fan speeds.
var (
	AirconModes = []string{"cool", "heat", "dry", "fan"}
	AirconFans  = []string{"auto", "low", "med", "high"}
)

// Aircon mode values.
const (
	ModeCool = iota
	ModeHeat
	ModeDry
	ModeFan
)

// Target temperature bounds (degrees Celsius).
const (
	AirconMinTarget = 16
	AirconMaxTarget = 30
)

// NewAircon builds an air-conditioner FCM. Room temperature is a readout
// driven by TickAircon's first-order thermal model.
func NewAircon() *havi.BaseFCM {
	f := mustFCM(havi.NewBaseFCM("aircon", []havi.Control{
		{ID: CtlPower, Label: "Power", Kind: havi.ControlToggle},
		{ID: AirconTarget, Label: "Target C", Kind: havi.ControlRange,
			Min: AirconMinTarget, Max: AirconMaxTarget, Init: 24},
		{ID: AirconMode, Label: "Mode", Kind: havi.ControlSelect, Options: AirconModes},
		{ID: AirconFan, Label: "Fan", Kind: havi.ControlSelect, Options: AirconFans},
		{ID: AirconSwing, Label: "Swing", Kind: havi.ControlToggle},
		{ID: AirconRoom, Label: "Room C", Kind: havi.ControlReadout, Init: 28},
	}))
	f.SetHooks(
		func(f *havi.BaseFCM, id string, v int) error { return requirePower(f, id) },
		nil,
	)
	return f
}

// TickAircon advances the thermal simulation one time unit: when powered
// and in cool/heat mode, room temperature moves one degree toward the
// target; otherwise it drifts one degree toward the ambient 28C.
func TickAircon(f *havi.BaseFCM) {
	room, _ := f.Get(AirconRoom)
	power, _ := f.Get(CtlPower)
	mode, _ := f.Get(AirconMode)
	goal := 28 // ambient drift when off or in dry/fan mode
	if power == 1 && (mode == ModeCool || mode == ModeHeat) {
		goal, _ = f.Get(AirconTarget)
	}
	switch {
	case room < goal:
		room++
	case room > goal:
		room--
	}
	f.SetInternal(AirconRoom, room)
}
