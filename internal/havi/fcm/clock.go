package fcm

import "uniint/internal/havi"

// Clock control ids.
const (
	ClockHour     = "hour"
	ClockMinute   = "minute"
	ClockAlarmOn  = "alarm_on"
	ClockAlarmHr  = "alarm_hour"
	ClockAlarmMin = "alarm_minute"
	ClockRinging  = "ringing"
)

// NewClock builds a clock FCM: time readouts advanced by TickClock, plus
// a settable alarm. The ringing readout goes to 1 when the alarm fires
// and is cleared by disabling the alarm.
func NewClock() *havi.BaseFCM {
	f := mustFCM(havi.NewBaseFCM("clock", []havi.Control{
		{ID: ClockHour, Label: "Hour", Kind: havi.ControlReadout},
		{ID: ClockMinute, Label: "Min", Kind: havi.ControlReadout},
		{ID: ClockAlarmOn, Label: "Alarm", Kind: havi.ControlToggle},
		{ID: ClockAlarmHr, Label: "Alarm H", Kind: havi.ControlRange, Min: 0, Max: 23, Init: 7},
		{ID: ClockAlarmMin, Label: "Alarm M", Kind: havi.ControlRange, Min: 0, Max: 59},
		{ID: ClockRinging, Label: "Ringing", Kind: havi.ControlReadout},
	}))
	f.SetHooks(
		func(f *havi.BaseFCM, id string, v int) error {
			if id == ClockAlarmOn && v == 0 {
				f.SetLockedInternal(ClockRinging, 0)
			}
			return nil
		},
		nil,
	)
	return f
}

// TickClock advances the clock one minute and fires the alarm when the
// time matches.
func TickClock(f *havi.BaseFCM) {
	h, _ := f.Get(ClockHour)
	m, _ := f.Get(ClockMinute)
	m++
	if m >= 60 {
		m = 0
		h = (h + 1) % 24
	}
	f.SetInternal(ClockMinute, m)
	f.SetInternal(ClockHour, h)
	on, _ := f.Get(ClockAlarmOn)
	ah, _ := f.Get(ClockAlarmHr)
	am, _ := f.Get(ClockAlarmMin)
	if on == 1 && h == ah && m == am {
		f.SetInternal(ClockRinging, 1)
	}
}
