package fcm

import "uniint/internal/havi"

// Lamp control ids.
const (
	LampLevel = "level"
)

// NewLamp builds a dimmable lamp FCM — the simplest appliance in the
// house, and the one the quickstart example toggles.
func NewLamp() *havi.BaseFCM {
	f := mustFCM(havi.NewBaseFCM("lamp", []havi.Control{
		{ID: CtlPower, Label: "Power", Kind: havi.ControlToggle},
		{ID: LampLevel, Label: "Level", Kind: havi.ControlRange, Min: 1, Max: 100, Init: 100},
	}))
	f.SetHooks(
		func(f *havi.BaseFCM, id string, v int) error { return requirePower(f, id) },
		nil,
	)
	return f
}
