package fcm

import "uniint/internal/havi"

// VCR control ids.
const (
	VCRTransport = "transport"
	VCRCounter   = "counter"
	VCRTape      = "tape"
	VCRPlay      = "play"
	VCRStop      = "stop"
	VCRRecord    = "record"
	VCRPause     = "pause"
	VCRRewind    = "rewind"
	VCRFastFwd   = "fastfwd"
	VCREject     = "eject"
	VCRLoad      = "load"
	// Timer-recording controls: when the timer is armed and the deck's
	// clock reaches the programmed time, the deck starts recording
	// (appliance.VCR wires the clock to CheckVCRTimer).
	VCRTimerOn  = "timer_on"
	VCRTimerHr  = "timer_hour"
	VCRTimerMin = "timer_minute"
)

// Transport states (values of the VCRTransport readout).
const (
	TransportStop = iota
	TransportPlay
	TransportRecord
	TransportPause
	TransportRewind
	TransportFastFwd
)

// TransportNames label the transport readout values.
var TransportNames = []string{"stop", "play", "record", "pause", "rewind", "fastfwd"}

// Tape length in counter units.
const VCRTapeLength = 9999

// NewVCR builds a VCR transport FCM with the full deck state machine:
// transport commands require power and (except eject/load) a loaded tape;
// pause is only reachable from play or record; eject stops the transport.
func NewVCR() *havi.BaseFCM {
	f := mustFCM(havi.NewBaseFCM("vcr", []havi.Control{
		{ID: CtlPower, Label: "Power", Kind: havi.ControlToggle},
		{ID: VCRTransport, Label: "Transport", Kind: havi.ControlReadout, Options: TransportNames},
		{ID: VCRCounter, Label: "Counter", Kind: havi.ControlReadout},
		{ID: VCRTape, Label: "Tape", Kind: havi.ControlReadout},
		{ID: VCRPlay, Label: "Play", Kind: havi.ControlAction},
		{ID: VCRStop, Label: "Stop", Kind: havi.ControlAction},
		{ID: VCRRecord, Label: "Rec", Kind: havi.ControlAction},
		{ID: VCRPause, Label: "Pause", Kind: havi.ControlAction},
		{ID: VCRRewind, Label: "Rew", Kind: havi.ControlAction},
		{ID: VCRFastFwd, Label: "FF", Kind: havi.ControlAction},
		{ID: VCREject, Label: "Eject", Kind: havi.ControlAction},
		{ID: VCRLoad, Label: "Load", Kind: havi.ControlAction},
		{ID: VCRTimerOn, Label: "Timer", Kind: havi.ControlToggle},
		{ID: VCRTimerHr, Label: "Rec H", Kind: havi.ControlRange, Min: 0, Max: 23},
		{ID: VCRTimerMin, Label: "Rec M", Kind: havi.ControlRange, Min: 0, Max: 59},
	}))
	f.SetHooks(
		func(f *havi.BaseFCM, id string, v int) error {
			if err := requirePower(f, id); err != nil {
				return err
			}
			// Powering off stops the transport.
			if id == CtlPower && v == 0 {
				f.SetLockedInternal(VCRTransport, TransportStop)
			}
			return nil
		},
		func(f *havi.BaseFCM, id string) error {
			if f.GetLocked(CtlPower) == 0 {
				return havi.ErrRejected
			}
			tape := f.GetLocked(VCRTape) == 1
			state := f.GetLocked(VCRTransport)
			switch id {
			case VCRLoad:
				if tape {
					return havi.ErrRejected
				}
				f.SetLockedInternal(VCRTape, 1)
				f.SetLockedInternal(VCRCounter, 0)
				return nil
			case VCREject:
				if !tape {
					return havi.ErrRejected
				}
				f.SetLockedInternal(VCRTransport, TransportStop)
				f.SetLockedInternal(VCRTape, 0)
				return nil
			case VCRStop:
				f.SetLockedInternal(VCRTransport, TransportStop)
				return nil
			}
			if !tape {
				return havi.ErrRejected
			}
			switch id {
			case VCRPlay:
				f.SetLockedInternal(VCRTransport, TransportPlay)
			case VCRRecord:
				if state != TransportStop && state != TransportPause {
					return havi.ErrRejected
				}
				f.SetLockedInternal(VCRTransport, TransportRecord)
			case VCRPause:
				if state != TransportPlay && state != TransportRecord {
					return havi.ErrRejected
				}
				f.SetLockedInternal(VCRTransport, TransportPause)
			case VCRRewind:
				f.SetLockedInternal(VCRTransport, TransportRewind)
			case VCRFastFwd:
				f.SetLockedInternal(VCRTransport, TransportFastFwd)
			}
			return nil
		},
	)
	return f
}

// CheckVCRTimer implements timer recording: when the deck's timer is
// armed and the clock FCM shows the programmed time, the deck powers on
// (if needed), starts recording and disarms the timer. Recording only
// starts with a tape present and the transport stopped or paused — a
// deck already playing keeps playing and the timer stays armed until the
// transport is free (real decks retry within the minute).
func CheckVCRTimer(deck, clock *havi.BaseFCM) {
	on, _ := deck.Get(VCRTimerOn)
	if on != 1 {
		return
	}
	th, _ := deck.Get(VCRTimerHr)
	tm, _ := deck.Get(VCRTimerMin)
	h, _ := clock.Get(ClockHour)
	m, _ := clock.Get(ClockMinute)
	if h != th || m != tm {
		return
	}
	if tape, _ := deck.Get(VCRTape); tape != 1 {
		return // nothing to record onto; stay armed (and miss the slot)
	}
	if st, _ := deck.Get(VCRTransport); st != TransportStop && st != TransportPause {
		return
	}
	deck.SetInternal(CtlPower, 1)
	deck.SetInternal(VCRTransport, TransportRecord)
	deck.SetInternal(VCRTimerOn, 0)
}

// TickVCR advances the simulated tape mechanism by one time unit: the
// counter moves according to the transport state, and hitting either end
// of the tape stops the deck. Appliance simulators call this from their
// clock loop.
func TickVCR(f *havi.BaseFCM) {
	if v, err := f.Get(CtlPower); err != nil || v == 0 {
		return
	}
	state, _ := f.Get(VCRTransport)
	counter, _ := f.Get(VCRCounter)
	var d int
	switch state {
	case TransportPlay, TransportRecord:
		d = 1
	case TransportFastFwd:
		d = 25
	case TransportRewind:
		d = -25
	default:
		return
	}
	counter += d
	stopped := false
	if counter <= 0 {
		counter, stopped = 0, true
	}
	if counter >= VCRTapeLength {
		counter, stopped = VCRTapeLength, true
	}
	f.SetInternal(VCRCounter, counter)
	if stopped {
		f.SetInternal(VCRTransport, TransportStop)
	}
}
