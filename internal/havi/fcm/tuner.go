package fcm

import "uniint/internal/havi"

// Tuner control ids.
const (
	TunerChannel  = "channel"
	TunerBand     = "band"
	TunerScanUp   = "scan_up"
	TunerScanDown = "scan_down"
	TunerSignal   = "signal"
)

// Tuner channel bounds.
const (
	TunerMinChannel = 1
	TunerMaxChannel = 99
)

// TunerBands are the selectable frequency bands.
var TunerBands = []string{"vhf", "uhf", "cable"}

// NewTuner builds a TV/radio tuner FCM. Scanning wraps around the channel
// range; the signal readout is a deterministic function of channel and
// band, standing in for real RF reception.
func NewTuner() *havi.BaseFCM {
	f := mustFCM(havi.NewBaseFCM("tuner", []havi.Control{
		{ID: CtlPower, Label: "Power", Kind: havi.ControlToggle},
		{ID: TunerChannel, Label: "Channel", Kind: havi.ControlRange,
			Min: TunerMinChannel, Max: TunerMaxChannel, Init: TunerMinChannel},
		{ID: TunerBand, Label: "Band", Kind: havi.ControlSelect, Options: TunerBands},
		{ID: TunerScanUp, Label: "Scan +", Kind: havi.ControlAction},
		{ID: TunerScanDown, Label: "Scan -", Kind: havi.ControlAction},
		{ID: TunerSignal, Label: "Signal", Kind: havi.ControlReadout},
	}))
	f.SetHooks(
		func(f *havi.BaseFCM, id string, v int) error {
			if err := requirePower(f, id); err != nil {
				return err
			}
			if id == TunerChannel || id == TunerBand {
				ch, band := f.GetLocked(TunerChannel), f.GetLocked(TunerBand)
				if id == TunerChannel {
					ch = v
				} else {
					band = v
				}
				f.SetLockedInternal(TunerSignal, signalFor(ch, band))
			}
			return nil
		},
		func(f *havi.BaseFCM, id string) error {
			if f.GetLocked(CtlPower) == 0 {
				return havi.ErrRejected
			}
			ch := f.GetLocked(TunerChannel)
			switch id {
			case TunerScanUp:
				ch++
				if ch > TunerMaxChannel {
					ch = TunerMinChannel
				}
			case TunerScanDown:
				ch--
				if ch < TunerMinChannel {
					ch = TunerMaxChannel
				}
			}
			f.SetLockedInternal(TunerChannel, ch)
			f.SetLockedInternal(TunerSignal, signalFor(ch, f.GetLocked(TunerBand)))
			return nil
		},
	)
	return f
}

// signalFor is the synthetic reception model: a deterministic pseudo-random
// strength in 0..100 so that benchmarks and tests are reproducible.
func signalFor(channel, band int) int {
	x := uint32(channel*2654435761) ^ uint32(band*40503)
	x ^= x >> 13
	x *= 0x5bd1e995
	x ^= x >> 15
	return int(x % 101)
}
