package havi

import (
	"fmt"
	"sync"

	"uniint/internal/havi/bus"
)

// Network assembles the middleware: the bus, the registry, the message
// system and the event manager. Appliances join by attaching their DCM;
// the network listens for bus resets and keeps the registry consistent
// with the physical topology, posting device.attached/detached events that
// drive the home application's GUI regeneration.
type Network struct {
	bus    *bus.Bus
	disp   *dispatcher
	reg    *Registry
	ms     *MessageSystem
	em     *EventManager
	busSub int

	mu      sync.Mutex
	devices map[GUID]*DCM // all known devices (attached or not)
	online  map[GUID]bool // currently registered with the middleware
	closed  bool
}

// NewNetwork creates an empty home network.
func NewNetwork() *Network {
	disp := newDispatcher()
	n := &Network{
		bus:     bus.New(),
		disp:    disp,
		reg:     newRegistry(disp),
		ms:      newMessageSystem(disp),
		em:      newEventManager(disp),
		devices: make(map[GUID]*DCM),
		online:  make(map[GUID]bool),
	}
	n.busSub = n.bus.OnReset(n.handleReset)
	return n
}

// Registry returns the middleware registry.
func (n *Network) Registry() *Registry { return n.reg }

// Messages returns the message system.
func (n *Network) Messages() *MessageSystem { return n.ms }

// Events returns the event manager.
func (n *Network) Events() *EventManager { return n.em }

// Bus returns the underlying bus simulation.
func (n *Network) Bus() *bus.Bus { return n.bus }

// Attach introduces an appliance to the network: the device gets a GUID
// (on first attach), joins the bus, and the resulting bus reset registers
// its DCM and FCMs. Returns the assigned GUID.
func (n *Network) Attach(d *DCM) (GUID, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, ErrClosed
	}
	guid := d.GUID()
	if guid == 0 {
		guid = GUID(n.bus.AllocGUID())
		d.bind(guid, n.em)
	}
	if _, dup := n.devices[guid]; dup && n.online[guid] {
		n.mu.Unlock()
		return guid, fmt.Errorf("havi: device %s already attached", guid)
	}
	n.devices[guid] = d
	n.mu.Unlock()

	n.bus.Connect(uint64(guid)) // triggers handleReset synchronously
	return guid, nil
}

// Detach unplugs the device from the bus; its elements unregister.
func (n *Network) Detach(guid GUID) {
	n.bus.Disconnect(uint64(guid))
}

// handleReset reconciles middleware registration with the bus topology.
func (n *Network) handleReset(r bus.Reset) {
	present := make(map[GUID]bool, len(r.Nodes))
	for _, node := range r.Nodes {
		present[GUID(node.GUID)] = true
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	var toRegister, toUnregister []*DCM
	for guid, d := range n.devices {
		switch {
		case present[guid] && !n.online[guid]:
			n.online[guid] = true
			toRegister = append(toRegister, d)
		case !present[guid] && n.online[guid]:
			delete(n.online, guid)
			toUnregister = append(toUnregister, d)
		}
	}
	n.mu.Unlock()

	for _, d := range toUnregister {
		d.unregister(n.reg, n.ms)
		n.em.Post(Event{
			Type:   EventDeviceDetached,
			Source: d.SEID(),
			Str:    d.Class(),
		})
	}
	for _, d := range toRegister {
		if err := d.register(n.reg, n.ms); err != nil {
			// Registration of a bound device cannot fail in practice;
			// surface loudly in development builds via the event stream.
			n.em.Post(Event{Type: "error", Str: err.Error()})
			continue
		}
		n.em.Post(Event{
			Type:   EventDeviceAttached,
			Source: d.SEID(),
			Str:    d.Class(),
		})
	}
	n.em.Post(Event{Type: EventBusReset, Value: r.Generation})
}

// WaitIdle blocks until all queued asynchronous work (events, watches,
// async sends) has been delivered. Tests and benchmarks use it as a
// deterministic quiescence point.
func (n *Network) WaitIdle() { n.disp.waitIdle() }

// Close shuts the middleware down: remaining devices are unregistered and
// the dispatcher drains and stops.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	var online []*DCM
	for guid, d := range n.devices {
		if n.online[guid] {
			online = append(online, d)
		}
	}
	n.online = make(map[GUID]bool)
	n.mu.Unlock()

	n.bus.RemoveListener(n.busSub)
	for _, d := range online {
		d.unregister(n.reg, n.ms)
	}
	n.disp.stop()
}
