package havi

import "sync"

// Event is a middleware notification. Type uses dotted names; well-known
// types are declared below. Key/Value/Str carry the payload.
type Event struct {
	Type   string
	Source SEID
	Key    string
	Value  int
	Str    string
}

// Well-known event types.
const (
	// EventFCMChanged fires when an FCM control changes value.
	// Key = control id, Value = new value.
	EventFCMChanged = "fcm.changed"
	// EventBusReset fires after the bus topology changed and devices were
	// re-enumerated. Value = generation number.
	EventBusReset = "bus.reset"
	// EventDeviceAttached fires when a DCM finishes registering.
	// Str = appliance class.
	EventDeviceAttached = "device.attached"
	// EventDeviceDetached fires when a DCM is withdrawn.
	EventDeviceDetached = "device.detached"
)

// EventManager fans events out to subscribers. Delivery is asynchronous
// through the middleware dispatcher: subscribers run one at a time, in
// subscription order, off the poster's goroutine — so a GUI callback may
// post an event that ultimately mutates the GUI without deadlocking.
type EventManager struct {
	mu     sync.RWMutex
	subs   map[int]*subscription
	nextID int
	disp   *dispatcher
}

type subscription struct {
	typ string // "" subscribes to every type
	fn  func(Event)
}

func newEventManager(disp *dispatcher) *EventManager {
	return &EventManager{subs: make(map[int]*subscription), disp: disp}
}

// Subscribe registers fn for events of the given type; an empty type
// subscribes to everything. Returns a subscription id for Unsubscribe.
func (em *EventManager) Subscribe(typ string, fn func(Event)) int {
	em.mu.Lock()
	defer em.mu.Unlock()
	em.nextID++
	em.subs[em.nextID] = &subscription{typ: typ, fn: fn}
	return em.nextID
}

// Unsubscribe cancels a subscription.
func (em *EventManager) Unsubscribe(id int) {
	em.mu.Lock()
	defer em.mu.Unlock()
	delete(em.subs, id)
}

// Post delivers ev to matching subscribers asynchronously. Events posted
// after shutdown are dropped.
func (em *EventManager) Post(ev Event) {
	em.mu.RLock()
	// Collect in id order for deterministic delivery.
	ids := make([]int, 0, len(em.subs))
	for id := range em.subs {
		ids = append(ids, id)
	}
	// Insertion sort: subscriber counts are small.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	fns := make([]func(Event), 0, len(ids))
	for _, id := range ids {
		s := em.subs[id]
		if s.typ == "" || s.typ == ev.Type {
			fns = append(fns, s.fn)
		}
	}
	em.mu.RUnlock()
	for _, fn := range fns {
		fn := fn
		em.disp.post(func() { fn(ev) })
	}
}
