// Package havi implements the home-networking middleware substrate the
// paper's prototype runs on: a HAVi-style (Home Audio/Video
// Interoperability) architecture with software elements addressed by SEIDs,
// an asynchronous message system, an attribute registry, an event manager,
// and device/functional-component modules (DCMs/FCMs) whose control
// surfaces are described by data-driven interaction (DDI) descriptors.
//
// The paper's home computing system (Nakajima, Middleware 2001) implements
// HAVi on commodity operating systems; the home appliance application
// discovers appliances through the registry and drives them through
// messages. This package reproduces that architectural surface in-process;
// internal/havi/bus supplies the hot-pluggable IEEE-1394-like bus.
package havi

import (
	"fmt"
	"strconv"
)

// GUID identifies a device (a bus node) globally, like the 1394 EUI-64.
type GUID uint64

// String renders the GUID in the conventional hex form.
func (g GUID) String() string { return fmt.Sprintf("%016x", uint64(g)) }

// ParseGUID parses the hex form produced by String.
func ParseGUID(s string) (GUID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("parse guid %q: %w", s, err)
	}
	return GUID(v), nil
}

// SEID addresses one software element: a device GUID plus a local handle.
// Handle 1 is the DCM by convention; FCMs use 2 and up.
type SEID struct {
	GUID   GUID
	Handle uint32
}

// String renders the SEID as guid/handle.
func (s SEID) String() string {
	return fmt.Sprintf("%016x/%d", uint64(s.GUID), s.Handle)
}

// Zero reports whether the SEID is unassigned.
func (s SEID) Zero() bool { return s.GUID == 0 && s.Handle == 0 }

// Well-known handle values.
const (
	HandleDCM      uint32 = 1
	HandleFirstFCM uint32 = 2
)
