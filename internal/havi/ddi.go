package havi

import (
	"encoding/json"
	"fmt"
)

// ControlKind classifies a DDI (data-driven interaction) element. HAVi's
// level-1 user interface works exactly this way: an FCM publishes abstract
// control descriptors and a controller renders them with its own widgets —
// which is how the home appliance application auto-generates control
// panels for whatever appliances are currently reachable.
type ControlKind int

// DDI element kinds.
const (
	// ControlToggle is a two-state switch (power, mute).
	ControlToggle ControlKind = iota + 1
	// ControlRange is a bounded integer value (volume, channel, target
	// temperature).
	ControlRange
	// ControlAction is a momentary command (play, stop, eject).
	ControlAction
	// ControlReadout is a read-only value (tape counter, room temp).
	ControlReadout
	// ControlSelect is a choice among Options (input source).
	ControlSelect
)

// String returns the kind's DDI name.
func (k ControlKind) String() string {
	switch k {
	case ControlToggle:
		return "toggle"
	case ControlRange:
		return "range"
	case ControlAction:
		return "action"
	case ControlReadout:
		return "readout"
	case ControlSelect:
		return "select"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Control is one DDI element of an FCM's control surface.
type Control struct {
	ID      string      `json:"id"`
	Label   string      `json:"label"`
	Kind    ControlKind `json:"kind"`
	Min     int         `json:"min,omitempty"`
	Max     int         `json:"max,omitempty"`
	Step    int         `json:"step,omitempty"`
	Init    int         `json:"init,omitempty"`
	Options []string    `json:"options,omitempty"`
}

// Validate checks descriptor consistency.
func (c Control) Validate() error {
	if c.ID == "" {
		return fmt.Errorf("havi: control without id")
	}
	switch c.Kind {
	case ControlToggle, ControlAction, ControlReadout:
	case ControlRange:
		if c.Max < c.Min {
			return fmt.Errorf("havi: control %q: max %d < min %d", c.ID, c.Max, c.Min)
		}
	case ControlSelect:
		if len(c.Options) == 0 {
			return fmt.Errorf("havi: control %q: select without options", c.ID)
		}
	default:
		return fmt.Errorf("havi: control %q: unknown kind %d", c.ID, int(c.Kind))
	}
	return nil
}

// MarshalControls encodes a DDI control list for transport in a Message's
// Data field.
func MarshalControls(cs []Control) ([]byte, error) {
	b, err := json.Marshal(cs)
	if err != nil {
		return nil, fmt.Errorf("havi: marshal controls: %w", err)
	}
	return b, nil
}

// UnmarshalControls decodes a DDI control list from a Message's Data field.
func UnmarshalControls(b []byte) ([]Control, error) {
	var cs []Control
	if err := json.Unmarshal(b, &cs); err != nil {
		return nil, fmt.Errorf("havi: unmarshal controls: %w", err)
	}
	return cs, nil
}
