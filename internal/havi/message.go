package havi

import (
	"errors"
	"fmt"
	"sync"
)

// Message is one unit of software-element communication. Op selects the
// operation; Key/Value carry simple control arguments; Data carries opaque
// payloads (JSON for structured results such as DDI descriptors).
type Message struct {
	Src, Dst SEID
	Op       string
	Key      string
	Value    int
	Data     []byte
}

// Reply is the synchronous answer to a Call.
type Reply struct {
	Value int
	Str   string
	Data  []byte
}

// Handler processes messages addressed to one software element. Handlers
// are invoked sequentially per element for async sends, and directly on the
// caller's goroutine for Call.
type Handler interface {
	HandleMessage(m Message) (Reply, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m Message) (Reply, error)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(m Message) (Reply, error) { return f(m) }

// Errors returned by the message system.
var (
	ErrUnknownElement = errors.New("havi: unknown software element")
	ErrUnknownOp      = errors.New("havi: unknown operation")
	ErrClosed         = errors.New("havi: middleware closed")
)

// MessageSystem routes messages between registered software elements.
type MessageSystem struct {
	mu       sync.RWMutex
	elements map[SEID]Handler
	disp     *dispatcher
}

func newMessageSystem(disp *dispatcher) *MessageSystem {
	return &MessageSystem{
		elements: make(map[SEID]Handler),
		disp:     disp,
	}
}

// Register binds a handler to a SEID. Re-registering an existing SEID
// replaces the handler (the element rejoined after a bus reset).
func (ms *MessageSystem) Register(id SEID, h Handler) error {
	if id.Zero() {
		return fmt.Errorf("havi: register zero SEID: %w", ErrUnknownElement)
	}
	if h == nil {
		return errors.New("havi: nil handler")
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.elements[id] = h
	return nil
}

// Unregister removes the element. Unknown SEIDs are ignored.
func (ms *MessageSystem) Unregister(id SEID) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	delete(ms.elements, id)
}

// Lookup reports whether an element is currently registered.
func (ms *MessageSystem) Lookup(id SEID) bool {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	_, ok := ms.elements[id]
	return ok
}

// Count returns the number of registered elements.
func (ms *MessageSystem) Count() int {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	return len(ms.elements)
}

// Call delivers m synchronously and returns the element's reply.
func (ms *MessageSystem) Call(m Message) (Reply, error) {
	ms.mu.RLock()
	h, ok := ms.elements[m.Dst]
	ms.mu.RUnlock()
	if !ok {
		return Reply{}, fmt.Errorf("havi: call %s op %q: %w", m.Dst, m.Op, ErrUnknownElement)
	}
	return h.HandleMessage(m)
}

// Send delivers m asynchronously through the middleware dispatcher; the
// reply (and any error) is discarded. Returns ErrClosed after shutdown and
// ErrUnknownElement when the destination does not exist at enqueue time.
func (ms *MessageSystem) Send(m Message) error {
	ms.mu.RLock()
	h, ok := ms.elements[m.Dst]
	ms.mu.RUnlock()
	if !ok {
		return fmt.Errorf("havi: send %s op %q: %w", m.Dst, m.Op, ErrUnknownElement)
	}
	if !ms.disp.post(func() { _, _ = h.HandleMessage(m) }) {
		return ErrClosed
	}
	return nil
}
