package netsim

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestPassthrough(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte("hello"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("got %q", buf)
	}
}

func TestLatencyShaping(t *testing.T) {
	a, b := Pipe(WithLatency(20 * time.Millisecond))
	defer a.Close()
	defer b.Close()
	start := time.Now()
	go a.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
}

func TestThroughputShaping(t *testing.T) {
	// 10 KB/s: a 1000-byte write should take ~100ms of serialization.
	a, b := Pipe(WithThroughput(10_000))
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 1000)
	start := time.Now()
	go a.Write(payload)
	buf := make([]byte, 1000)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("throughput cap not applied: %v", elapsed)
	}
}

func TestDropLink(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	a.DropLink()
	if !a.Dropped() {
		t.Fatal("link should report dropped")
	}
	if _, err := a.Write([]byte("x")); err == nil {
		t.Error("write after drop should fail")
	}
	// The peer's reads fail too (inner transport closed).
	buf := make([]byte, 1)
	if _, err := b.Read(buf); err == nil {
		t.Error("peer read after drop should fail")
	}
	a.DropLink() // idempotent
}

// TestReadShapingSymmetric is the regression test for the asymmetric-link
// bug: only Write used to be shaped, so a singly-wrapped connection
// delayed egress but delivered ingress instantly. A Wrap-ped conn must
// now delay both directions.
func TestReadShapingSymmetric(t *testing.T) {
	inner, peer := net.Pipe()
	c := Wrap(inner, WithLatency(20*time.Millisecond))
	defer c.Close()
	defer peer.Close()

	// Ingress: the unshaped peer writes, the wrapped side reads — the
	// delay must appear on delivery.
	go peer.Write([]byte("x"))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("read direction not shaped: %v", elapsed)
	}

	// Egress still shaped as before.
	done := make(chan struct{})
	go func() { io.ReadFull(peer, buf); close(done) }()
	start = time.Now()
	if _, err := c.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	<-done
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("write direction not shaped: %v", elapsed)
	}
}

// TestPipeShapesOncePerDirection pins the complementary property: a Pipe
// (both ends wrapped) applies the configured latency exactly once per
// transfer, not once at the writer and again at the reader.
func TestPipeShapesOncePerDirection(t *testing.T) {
	a, b := Pipe(WithLatency(20 * time.Millisecond))
	defer a.Close()
	defer b.Close()
	go a.Write([]byte("x"))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 15*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
	if elapsed > 38*time.Millisecond {
		t.Errorf("latency applied twice (double shaping): %v", elapsed)
	}
}

func TestInjectorDeterministicDrop(t *testing.T) {
	run := func() (int64, int) {
		in := NewInjector(FaultConfig{Seed: 7, DropAfterMin: 10, DropAfterMax: 40})
		inner, peer := net.Pipe()
		defer peer.Close()
		c := in.Wrap(inner)
		defer c.Close()
		go io.Copy(io.Discard, peer)
		total := 0
		for i := 0; i < 100; i++ {
			n, err := c.Write([]byte("0123456789"))
			total += n
			if err != nil {
				break
			}
		}
		return in.ScheduledDrops(), total
	}
	drops1, total1 := run()
	drops2, total2 := run()
	if drops1 != 1 || total1 >= 1000 {
		t.Fatalf("scheduled drop did not fire: drops=%d total=%d", drops1, total1)
	}
	if drops1 != drops2 || total1 != total2 {
		t.Errorf("injector not deterministic: (%d,%d) vs (%d,%d)", drops1, total1, drops2, total2)
	}
}

func TestInjectorHandshakeDrop(t *testing.T) {
	in := NewInjector(FaultConfig{Seed: 3, HandshakeDropEvery: 2, HandshakeBytes: 16})
	for i := 1; i <= 4; i++ {
		inner, peer := net.Pipe()
		c := in.Wrap(inner)
		go io.Copy(io.Discard, peer)
		_, err := c.Write(make([]byte, 64)) // larger than the handshake window
		if i%2 == 0 && err == nil {
			t.Errorf("conn %d: expected handshake-window drop", i)
		}
		if i%2 == 1 && err != nil {
			t.Errorf("conn %d: unexpected drop: %v", i, err)
		}
		c.Close()
		peer.Close()
	}
}

func TestInjectorTruncateOnKill(t *testing.T) {
	in := NewInjector(FaultConfig{Seed: 1, DropAfterMin: 5, DropAfterMax: 5, Truncate: true})
	inner, peer := net.Pipe()
	defer peer.Close()
	c := in.Wrap(inner)
	defer c.Close()

	got := make(chan int, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := io.ReadFull(peer, buf)
		got <- n
	}()
	n, err := c.Write(make([]byte, 16))
	if err == nil {
		t.Fatal("killing write should report the failure")
	}
	if n != 5 {
		t.Errorf("truncated write reported %d bytes, want 5", n)
	}
	if delivered := <-got; delivered != 5 {
		t.Errorf("peer received %d bytes, want the 5-byte prefix", delivered)
	}
}

func TestInjectorJitterDeterministic(t *testing.T) {
	elapsed := func() time.Duration {
		in := NewInjector(FaultConfig{Seed: 9, Jitter: 4 * time.Millisecond})
		inner, peer := net.Pipe()
		defer peer.Close()
		c := in.Wrap(inner)
		defer c.Close()
		go io.Copy(io.Discard, peer)
		start := time.Now()
		for i := 0; i < 8; i++ {
			if _, err := c.Write([]byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	d1, d2 := elapsed(), elapsed()
	if d1 == 0 {
		t.Fatal("jitter produced no delay")
	}
	diff := d1 - d2
	if diff < 0 {
		diff = -diff
	}
	// Same seed, same op sequence: the scheduled jitter sums are equal;
	// allow generous scheduler slop around them.
	if diff > 15*time.Millisecond {
		t.Errorf("jitter not deterministic: %v vs %v", d1, d2)
	}
}

func TestConnInterface(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	var _ net.Conn = a
	if a.LocalAddr() == nil || a.RemoteAddr() == nil {
		t.Error("addresses should pass through")
	}
	if err := a.SetDeadline(time.Now().Add(time.Second)); err != nil {
		t.Errorf("deadline: %v", err)
	}
}
