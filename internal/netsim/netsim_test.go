package netsim

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestPassthrough(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte("hello"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("got %q", buf)
	}
}

func TestLatencyShaping(t *testing.T) {
	a, b := Pipe(WithLatency(20 * time.Millisecond))
	defer a.Close()
	defer b.Close()
	start := time.Now()
	go a.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
}

func TestThroughputShaping(t *testing.T) {
	// 10 KB/s: a 1000-byte write should take ~100ms of serialization.
	a, b := Pipe(WithThroughput(10_000))
	defer a.Close()
	defer b.Close()
	payload := make([]byte, 1000)
	start := time.Now()
	go a.Write(payload)
	buf := make([]byte, 1000)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("throughput cap not applied: %v", elapsed)
	}
}

func TestDropLink(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	a.DropLink()
	if !a.Dropped() {
		t.Fatal("link should report dropped")
	}
	if _, err := a.Write([]byte("x")); err == nil {
		t.Error("write after drop should fail")
	}
	// The peer's reads fail too (inner transport closed).
	buf := make([]byte, 1)
	if _, err := b.Read(buf); err == nil {
		t.Error("peer read after drop should fail")
	}
	a.DropLink() // idempotent
}

func TestConnInterface(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	var _ net.Conn = a
	if a.LocalAddr() == nil || a.RemoteAddr() == nil {
		t.Error("addresses should pass through")
	}
	if err := a.SetDeadline(time.Now().Add(time.Second)); err != nil {
		t.Errorf("deadline: %v", err)
	}
}
