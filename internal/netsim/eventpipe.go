package netsim

import (
	"io"
	"net"
	"sync"
	"time"
)

// EventPipe creates an in-process duplex connection for readiness-driven
// ("edge") servers: instead of a goroutine parked in a blocking Read, the
// consumer registers an OnReadable callback and drains buffered bytes with
// non-blocking ReadAvailable calls — the transport shape the budgeted
// event runtime's zero-goroutine-per-session path needs.
//
// Writes never block (each direction buffers without bound), so a
// fully scripted peer can pipeline its whole conversation — e.g. the
// client half of a handshake — before the other side ever reads.
// Blocking Read also works (net.Conn compliance), which is how the
// server-side handshake runs on the attaching goroutine.
func EventPipe() (*EventConn, *EventConn) {
	a := &EventConn{}
	b := &EventConn{}
	a.cond = sync.NewCond(&a.mu)
	b.cond = sync.NewCond(&b.mu)
	a.peer, b.peer = b, a
	return a, b
}

// EventConn is one end of an EventPipe. The inbound buffer (bytes the
// peer wrote) lives on the receiving end; Write touches only the peer's
// state, so each direction is independent.
type EventConn struct {
	peer *EventConn

	mu       sync.Mutex
	cond     *sync.Cond // blocking Read waits here
	buf      []byte     // inbound bytes; consumed from start
	start    int
	closed   bool   // no more inbound bytes will arrive (EOF after drain)
	readable func() // readiness callback; invoked outside mu
}

// Write appends p to the peer's inbound buffer and fires its readiness
// callback. It never blocks; after either end closes it fails with
// io.ErrClosedPipe.
func (c *EventConn) Write(p []byte) (int, error) {
	q := c.peer
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	q.buf = append(q.buf, p...)
	cb := q.readable
	q.cond.Broadcast()
	q.mu.Unlock()
	if cb != nil {
		cb()
	}
	return len(p), nil
}

// Read blocks until inbound bytes are available (or the pipe closes),
// then copies as many as fit. Used by handshakes running on the attaching
// goroutine; steady-state edge consumers use ReadAvailable instead.
func (c *EventConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	for c.start >= len(c.buf) && !c.closed {
		c.cond.Wait()
	}
	n, err := c.consumeLocked(p)
	c.mu.Unlock()
	return n, err
}

// ReadAvailable copies buffered inbound bytes into p without blocking.
// It returns (0, nil) when the buffer is empty and the pipe is open —
// the "drained, wait for the next readiness callback" signal — and
// (0, io.EOF) once the pipe is closed and drained.
func (c *EventConn) ReadAvailable(p []byte) (int, error) {
	c.mu.Lock()
	n, err := c.consumeLocked(p)
	c.mu.Unlock()
	return n, err
}

func (c *EventConn) consumeLocked(p []byte) (int, error) {
	if c.start >= len(c.buf) {
		if c.closed {
			return 0, io.EOF
		}
		return 0, nil
	}
	n := copy(p, c.buf[c.start:])
	c.start += n
	if c.start == len(c.buf) {
		c.buf = c.buf[:0]
		c.start = 0
	}
	return n, nil
}

// OnReadable installs the readiness callback, replacing any previous one.
// It fires after every Write that lands inbound bytes and once at close;
// if bytes are already buffered (or the pipe already closed) it fires
// immediately, so no arrival is lost to registration order. The callback
// runs on the writer's goroutine and must not block (a run-queue kick is
// the intended body).
func (c *EventConn) OnReadable(fn func()) {
	c.mu.Lock()
	c.readable = fn
	pending := c.start < len(c.buf) || c.closed
	c.mu.Unlock()
	if pending && fn != nil {
		fn()
	}
}

// Close shuts both directions down, like net.Pipe: each end's readers
// drain what is buffered and then see io.EOF, writers fail immediately,
// and both readiness callbacks fire so event-driven consumers observe
// the close without polling.
func (c *EventConn) Close() error {
	c.closeInbound()
	c.peer.closeInbound()
	return nil
}

func (c *EventConn) closeInbound() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	cb := c.readable
	c.cond.Broadcast()
	c.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// Buffered returns the number of inbound bytes waiting to be read.
func (c *EventConn) Buffered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf) - c.start
}

type eventAddr struct{}

func (eventAddr) Network() string { return "eventpipe" }
func (eventAddr) String() string  { return "eventpipe" }

// LocalAddr implements net.Conn.
func (c *EventConn) LocalAddr() net.Addr { return eventAddr{} }

// RemoteAddr implements net.Conn.
func (c *EventConn) RemoteAddr() net.Addr { return eventAddr{} }

// SetDeadline implements net.Conn as a no-op: edge servers bound their
// handshakes with wheel timers that close the conn, not read deadlines.
func (c *EventConn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline implements net.Conn as a no-op.
func (c *EventConn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline implements net.Conn as a no-op.
func (c *EventConn) SetWriteDeadline(time.Time) error { return nil }
