package netsim

import (
	"io"
	"sync/atomic"
	"testing"
	"time"
)

func TestEventPipeWriteRead(t *testing.T) {
	a, b := EventPipe()
	defer a.Close()
	if _, err := a.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("Read = %q, %v", buf[:n], err)
	}
}

func TestEventPipeReadAvailableNonBlocking(t *testing.T) {
	a, b := EventPipe()
	buf := make([]byte, 16)
	// Empty and open: (0, nil), no block.
	if n, err := b.ReadAvailable(buf); n != 0 || err != nil {
		t.Fatalf("empty ReadAvailable = %d, %v", n, err)
	}
	a.Write([]byte("xy"))
	if n, err := b.ReadAvailable(buf); n != 2 || err != nil {
		t.Fatalf("ReadAvailable = %d, %v", n, err)
	}
	// Closed and drained: io.EOF.
	a.Write([]byte("z"))
	a.Close()
	if n, _ := b.ReadAvailable(buf); n != 1 || buf[0] != 'z' {
		t.Fatal("buffered byte lost at close")
	}
	if _, err := b.ReadAvailable(buf); err != io.EOF {
		t.Fatalf("after close: err = %v, want io.EOF", err)
	}
}

func TestEventPipeOnReadable(t *testing.T) {
	a, b := EventPipe()
	defer a.Close()
	var fires atomic.Int64
	b.OnReadable(func() { fires.Add(1) })
	if fires.Load() != 0 {
		t.Fatal("fired with nothing buffered")
	}
	a.Write([]byte("x"))
	if fires.Load() != 1 {
		t.Fatalf("fires after write = %d", fires.Load())
	}
	// Registration with bytes already pending fires immediately.
	var late atomic.Int64
	b.OnReadable(func() { late.Add(1) })
	if late.Load() != 1 {
		t.Fatal("late registration did not fire for pending bytes")
	}
}

func TestEventPipeCloseFiresReadableAndWakesRead(t *testing.T) {
	a, b := EventPipe()
	var fires atomic.Int64
	b.OnReadable(func() { fires.Add(1) })
	done := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 4))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("blocked Read woke with %v, want io.EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Read not woken by close")
	}
	if fires.Load() == 0 {
		t.Fatal("close did not fire readable callback")
	}
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}
