// Package netsim provides transport simulation for testing the universal
// interaction stack under realistic home-network conditions: added
// latency, bandwidth caps and injected link failures over any net.Conn.
//
// The paper's devices talk over early-2000s home links (802.11b, HomeRF,
// 1394 bridges); the experiments in EXPERIMENTS.md use in-process pipes
// for determinism, while the failure-injection tests use this package to
// prove the session-continuity machinery (core.Supervisor and the
// uniserver detach lot). The Injector turns the same shaping layer into a
// deterministic chaos source: seeded mid-stream link drops, drops during
// the handshake window, latency jitter, and byte truncation on kill.
package netsim

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Conn wraps a net.Conn with simulated link properties. The zero
// Latency/Throughput leave the respective property unshaped.
//
// A Conn created by Wrap shapes BOTH directions: writes are delayed
// before reaching the inner transport and reads are delayed before being
// delivered, so a single wrap point simulates a symmetric link. Conns
// created by Pipe shape egress only — each pipe end delays its own
// writes, the peer end delays the opposite direction, and the link stays
// symmetric without shaping any byte twice.
type Conn struct {
	inner net.Conn

	latency    time.Duration
	throughput int  // bytes per second, 0 = unlimited
	shapeRead  bool // delay delivery of reads (single-wrap symmetric mode)

	dropped atomic.Bool

	// Fault schedule (nil when the conn is not injector-managed).
	// budget counts down toward the scheduled mid-stream kill; jmu/jrng
	// produce deterministic per-op latency jitter.
	budget   atomic.Int64 // bytes remaining before the scheduled drop; <0 = no schedule
	truncate bool         // deliver a prefix of the killing write before dropping
	jmu      sync.Mutex
	jrng     *rand.Rand
	jitter   time.Duration
}

// Option configures a simulated link.
type Option func(*Conn)

// WithLatency adds a fixed one-way delay to every transfer.
func WithLatency(d time.Duration) Option {
	return func(c *Conn) { c.latency = d }
}

// WithThroughput caps the link at bytesPerSecond by delaying transfers
// according to their serialization time.
func WithThroughput(bytesPerSecond int) Option {
	return func(c *Conn) { c.throughput = bytesPerSecond }
}

// Wrap shapes an existing connection symmetrically: latency and
// serialization delay apply to both writes and reads, so wrapping one end
// of a transport is enough to simulate the whole link.
func Wrap(inner net.Conn, opts ...Option) *Conn {
	c := &Conn{inner: inner, shapeRead: true}
	c.budget.Store(-1)
	for _, o := range opts {
		o(c)
	}
	return c
}

// Pipe returns an in-process connection pair forming one shaped link.
// Each end shapes its egress only — the peer's wrap covers the other
// direction — so the configured latency is applied exactly once per
// transfer in each direction.
func Pipe(opts ...Option) (*Conn, *Conn) {
	a, b := net.Pipe()
	ca, cb := Wrap(a, opts...), Wrap(b, opts...)
	ca.shapeRead = false
	cb.shapeRead = false
	return ca, cb
}

var _ net.Conn = (*Conn)(nil)

// delay sleeps out the link's latency, serialization time for n bytes,
// and (under an injector schedule) deterministic jitter.
func (c *Conn) delay(n int) {
	d := c.latency
	if c.throughput > 0 {
		d += time.Duration(int64(n) * int64(time.Second) / int64(c.throughput))
	}
	if c.jitter > 0 {
		c.jmu.Lock()
		d += time.Duration(c.jrng.Int63n(int64(c.jitter)))
		c.jmu.Unlock()
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// spend consumes n bytes of the fault budget and reports how many of them
// may still be transferred before the scheduled drop fires (n when no
// drop is scheduled).
func (c *Conn) spend(n int) int {
	for {
		left := c.budget.Load()
		if left < 0 {
			return n
		}
		allowed := n
		if int64(allowed) > left {
			allowed = int(left)
		}
		if c.budget.CompareAndSwap(left, left-int64(allowed)) {
			return allowed
		}
	}
}

// Read implements net.Conn. Under symmetric shaping (Wrap) delivery is
// delayed by the link's latency and serialization time; under an injector
// schedule the bytes count against the kill budget.
func (c *Conn) Read(p []byte) (int, error) {
	if c.dropped.Load() {
		return 0, net.ErrClosed
	}
	n, err := c.inner.Read(p)
	if n > 0 && c.shapeRead {
		c.delay(n)
	}
	if n > 0 {
		if allowed := c.spend(n); allowed < n {
			// The scheduled kill fires mid-read: deliver the prefix (the
			// peer's in-flight bytes truncate) and drop the link.
			c.DropLink()
			return allowed, nil // next Read reports the failure
		}
	}
	return n, err
}

// Write implements net.Conn, applying latency and serialization delay
// before forwarding. Under an injector schedule, the write that exhausts
// the kill budget is truncated (a prefix reaches the peer when the
// schedule says so) and the link drops.
func (c *Conn) Write(p []byte) (int, error) {
	if c.dropped.Load() {
		return 0, net.ErrClosed
	}
	allowed := c.spend(len(p))
	if allowed < len(p) {
		n := 0
		if c.truncate && allowed > 0 {
			c.delay(allowed)
			n, _ = c.inner.Write(p[:allowed])
		}
		c.DropLink()
		return n, net.ErrClosed
	}
	c.delay(len(p))
	return c.inner.Write(p)
}

// DropLink simulates an abrupt link failure: both directions error from
// now on and the inner transport closes.
func (c *Conn) DropLink() {
	if c.dropped.Swap(true) {
		return
	}
	c.inner.Close()
}

// Dropped reports whether the link has failed.
func (c *Conn) Dropped() bool { return c.dropped.Load() }

// Close implements net.Conn.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// FaultConfig describes a deterministic fault schedule. Every field is
// optional; the zero value injects nothing.
type FaultConfig struct {
	// Seed makes the whole schedule reproducible: the same seed and the
	// same sequence of Wrap calls yield the same drops and jitter.
	Seed int64
	// DropAfterMin/Max bound the number of bytes a connection carries
	// (both directions combined) before its link is killed, drawn
	// per-connection from [Min, Max]. Zero Max disables mid-stream drops.
	DropAfterMin, DropAfterMax int64
	// HandshakeDropEvery kills every Nth connection within its first
	// HandshakeBytes bytes — the drop-during-handshake fault. Zero
	// disables it.
	HandshakeDropEvery int
	// HandshakeBytes is the size of the handshake window for
	// HandshakeDropEvery (default 64 bytes: inside the version/security
	// exchange).
	HandshakeBytes int64
	// Jitter adds a uniform [0, Jitter) delay to every shaped transfer,
	// drawn from the connection's seeded stream.
	Jitter time.Duration
	// Truncate delivers a prefix of the killing write to the peer instead
	// of dropping it whole — the torn-frame case a real link kill
	// produces.
	Truncate bool
}

// Injector hands out fault-scheduled connections. It is safe for
// concurrent use; determinism is per wrap order (concurrent wrappers
// should derive order from their own workload structure).
type Injector struct {
	cfg FaultConfig

	mu  sync.Mutex
	rng *rand.Rand
	n   int64 // connections wrapped

	drops atomic.Int64 // scheduled kills armed
}

// NewInjector creates a deterministic fault injector from cfg.
func NewInjector(cfg FaultConfig) *Injector {
	if cfg.HandshakeBytes <= 0 {
		cfg.HandshakeBytes = 64
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Wrap shapes conn and arms its fault schedule: a deterministic kill
// budget (possibly inside the handshake window) and per-transfer jitter.
func (in *Injector) Wrap(conn net.Conn, opts ...Option) *Conn {
	c := Wrap(conn, opts...)
	in.mu.Lock()
	in.n++
	nth := in.n
	budget := int64(-1)
	if in.cfg.HandshakeDropEvery > 0 && nth%int64(in.cfg.HandshakeDropEvery) == 0 {
		budget = in.rng.Int63n(in.cfg.HandshakeBytes) + 1
	} else if in.cfg.DropAfterMax > 0 {
		span := in.cfg.DropAfterMax - in.cfg.DropAfterMin
		budget = in.cfg.DropAfterMin
		if span > 0 {
			budget += in.rng.Int63n(span + 1)
		}
	}
	jseed := in.rng.Int63()
	in.mu.Unlock()

	c.budget.Store(budget)
	c.truncate = in.cfg.Truncate
	if in.cfg.Jitter > 0 {
		c.jitter = in.cfg.Jitter
		c.jrng = rand.New(rand.NewSource(jseed))
	}
	if budget >= 0 {
		in.drops.Add(1)
	}
	return c
}

// Conns reports how many connections the injector has wrapped.
func (in *Injector) Conns() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.n
}

// ScheduledDrops reports how many wrapped connections were armed with a
// kill budget.
func (in *Injector) ScheduledDrops() int64 { return in.drops.Load() }
